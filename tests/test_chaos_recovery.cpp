// Chaos suite (ctest label "chaos"): crash-recovery churn on a durable
// cluster. Brokers are repeatedly killed under concurrent publish load and
// restarted from their data directories; subscribers never re-subscribe —
// recovery plus the client's re-attach handshake must keep every
// subscription live, and each incarnation's epoch must climb. CI's
// crash-recovery job runs this under ASan via `ctest -L chaos -R Recovery`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "net/cluster.h"
#include "overlay/topologies.h"
#include "util/rng.h"
#include "workload/stock_schema.h"

namespace subsum::net {
namespace {

using namespace std::chrono_literals;
using model::EventBuilder;
using model::Op;
using model::Schema;
using model::SubId;
using model::SubscriptionBuilder;
using overlay::BrokerId;

RpcPolicy tight_policy() {
  RpcPolicy p;
  p.connect_timeout = 200ms;
  p.io_timeout = 1000ms;
  p.backoff = {5ms, 40ms, 2};
  return p;
}

ClientOptions tight_client() {
  ClientOptions o;
  o.connect_timeout = 500ms;
  o.rpc_timeout = 30000ms;
  o.backoff = {5ms, 40ms, 4};
  return o;
}

std::string scratch_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = ::testing::TempDir() + "subsum_chaos/" +
                          info->test_suite_name() + "." + info->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Kill/recover churn under load on a durable 5-broker line: every round a
// random non-origin broker dies mid-publish-stream and restarts from disk.
// No client ever re-subscribes — polls re-attach after each crash. At the
// end, every subscriber must still receive fresh events on its original
// subscription id, and every broker's summary image must equal a clean
// rebuild of its recovered subscription set.
TEST(ChaosRecovery, CrashRestartChurnUnderLoadKeepsSubscriptionsLive) {
  const Schema s = workload::stock_schema();
  const overlay::Graph g = overlay::line(5);
  const size_t n = g.size();
  Cluster cluster(s, g, core::GeneralizePolicy::kSafe, tight_policy(), scratch_dir());

  const auto sub = SubscriptionBuilder(s).where("symbol", Op::kEq, "boom").build();
  std::vector<std::unique_ptr<Client>> clients(n);
  std::vector<SubId> ids(n);
  for (BrokerId b = 0; b < n; ++b) {
    clients[b] = cluster.connect(b, tight_client());
    ids[b] = clients[b]->subscribe(sub);
  }
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  std::vector<std::vector<std::byte>> images(n);
  for (BrokerId b = 0; b < n; ++b) images[b] = cluster.node(b).own_summary_wire();

  // Background publish load from broker 0 for the whole churn phase.
  std::atomic<bool> stop_load{false};
  std::atomic<int> published{0};
  std::thread load([&] {
    auto pub = cluster.connect(0, tight_client());
    while (!stop_load) {
      try {
        pub->publish(
            EventBuilder(s).set("symbol", "boom").set("volume", int64_t{-1}).build());
        ++published;
      } catch (const std::exception&) {
        // The publish raced a kill; reconnect happens on the next call.
      }
      std::this_thread::sleep_for(10ms);
    }
  });

  util::Rng rng(2004);
  for (int round = 0; round < 6; ++round) {
    const auto victim = static_cast<BrokerId>(1 + rng.below(n - 1));  // never 0
    const uint64_t epoch_before = cluster.node(victim).epoch();
    cluster.kill(victim);
    std::this_thread::sleep_for(30ms);  // let in-flight walks hit the corpse
    cluster.restart(victim);

    // Recovery invariants per incarnation: epoch climbed, the subscription
    // survived, and its summary image is bit-identical to before the crash.
    EXPECT_EQ(cluster.node(victim).epoch(), epoch_before + 1);
    EXPECT_TRUE(cluster.node(victim).recovery().recovered);
    EXPECT_EQ(cluster.node(victim).snapshot().local_subs, 1u);
    EXPECT_EQ(cluster.node(victim).own_summary_wire(), images[victim]);

    // The subscriber re-attaches on its next poll — never re-subscribes.
    (void)clients[victim]->next_notification(100ms);
    (void)cluster.run_propagation_period();
  }
  stop_load = true;
  load.join();
  EXPECT_GT(published.load(), 0);

  // Settle: flush redelivery queues and drain load-phase notifications.
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  for (auto& c : clients) {
    try {
      while (c->next_notification(50ms)) {
      }
    } catch (const NetError&) {
      (void)c->next_notification(50ms);  // one more poll completes the re-attach
    }
  }

  // Steady state: a fresh event reaches every original subscription id.
  clients[0]->publish(
      EventBuilder(s).set("symbol", "boom").set("volume", int64_t{999}).build());
  const auto volume_attr = s.id_of("volume");
  for (BrokerId b = 0; b < n; ++b) {
    std::optional<NotifyMsg> note;
    // Skip any residual load-phase deliveries still in flight.
    do {
      note = clients[b]->next_notification(5000ms);
      ASSERT_TRUE(note.has_value()) << "subscriber " << b << " lost its subscription";
    } while (note->event.find(volume_attr)->as_int() != 999);
    EXPECT_EQ(note->ids, std::vector<SubId>{ids[b]});
  }
}

}  // namespace
}  // namespace subsum::net
