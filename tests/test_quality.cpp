// Summary-quality probes (core/quality.h): event-content hashing, the
// deterministic shadow sample, false-positive counters against the exact
// oracle on the ablation workloads, walk-efficiency folding, and the
// model-drift / row-occupancy exports — plus the SimSystem integration
// (identical counters for sequential and sharded publishing).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/matcher.h"
#include "core/quality.h"
#include "core/serialize.h"
#include "model/event.h"
#include "model/subscription.h"
#include "obs/metrics.h"
#include "overlay/topologies.h"
#include "routing/event_router.h"
#include "sim/system.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace subsum {
namespace {

#ifdef SUBSUM_NO_TELEMETRY
#define SKIP_WITHOUT_TELEMETRY() \
  GTEST_SKIP() << "telemetry compiled out (SUBSUM_NO_TELEMETRY)"
#else
#define SKIP_WITHOUT_TELEMETRY() (void)0
#endif

using model::SubId;
using overlay::BrokerId;

// --- event_hash / SampleConfig ----------------------------------------------

TEST(EventHash, DependsOnlyOnContent) {
  const auto schema = workload::stock_schema();
  const auto price = schema.id_of("price");
  const auto symbol = schema.id_of("symbol");
  const auto a = model::EventBuilder(schema).set(price, 10.0).set(symbol, "x").build();
  const auto b = model::EventBuilder(schema).set(price, 10.0).set(symbol, "x").build();
  EXPECT_EQ(core::event_hash(a), core::event_hash(b));  // identity-free

  const auto c = model::EventBuilder(schema).set(price, 11.0).set(symbol, "x").build();
  const auto d = model::EventBuilder(schema).set(price, 10.0).set(symbol, "y").build();
  const auto e = model::EventBuilder(schema).set(price, 10.0).build();
  EXPECT_NE(core::event_hash(a), core::event_hash(c));
  EXPECT_NE(core::event_hash(a), core::event_hash(d));
  EXPECT_NE(core::event_hash(a), core::event_hash(e));
}

TEST(SampleConfig, Shift0IsEverythingAndFractionRoughlyScales) {
  const core::SampleConfig all{0};
  for (uint64_t h : {0ull, 1ull, 63ull, ~0ull}) EXPECT_TRUE(all.selects(h));

  // On a real workload the 1-in-2^shift sample lands near its nominal
  // fraction (FNV spreads the low bits well).
  const auto schema = workload::stock_schema();
  workload::SubscriptionGenerator gen(schema, {}, 17);
  workload::EventGenerator egen(schema, gen.pools(), {}, 18);
  const core::SampleConfig cfg{4};  // 1/16
  size_t selected = 0;
  const size_t total = 4096;
  for (size_t i = 0; i < total; ++i) {
    if (cfg.selects(core::event_hash(egen.next()))) ++selected;
  }
  EXPECT_GT(selected, total / 16 / 2);
  EXPECT_LT(selected, total / 16 * 2);
}

// --- QualityProbe counters --------------------------------------------------

TEST(QualityProbe, CountersPrecisionAndClamp) {
  SKIP_WITHOUT_TELEMETRY();
  obs::MetricsRegistry reg;
  const core::QualityProbe probe(reg, core::SampleConfig{0});
  EXPECT_EQ(probe.precision(), 1.0);  // before any sample

  probe.record(10, 7);
  probe.record(5, 5);
  EXPECT_EQ(reg.counter_value("subsum_quality_sampled_events_total"), 2u);
  EXPECT_EQ(reg.counter_value("subsum_quality_candidate_ids_total"), 15u);
  EXPECT_EQ(reg.counter_value("subsum_quality_exact_ids_total"), 12u);
  EXPECT_EQ(reg.counter_value("subsum_summary_false_positive_ids_total"), 3u);
  EXPECT_EQ(reg.counter_value("subsum_quality_engine_divergence_total"), 0u);
  EXPECT_DOUBLE_EQ(probe.precision(), 12.0 / 15.0);
  EXPECT_DOUBLE_EQ(reg.fgauge("subsum_summary_precision")->value(), 12.0 / 15.0);

  // exact > candidates is impossible by construction (summaries never lose
  // matches): the probe clamps and flags it as engine divergence.
  probe.record(3, 9);
  EXPECT_EQ(reg.counter_value("subsum_quality_engine_divergence_total"), 1u);
  EXPECT_EQ(reg.counter_value("subsum_quality_exact_ids_total"), 15u);
  EXPECT_EQ(reg.counter_value("subsum_summary_false_positive_ids_total"), 3u);
}

TEST(QualityProbe, NoTelemetryCompilesTheOracleBranchOut) {
  obs::MetricsRegistry reg;
  const core::QualityProbe probe(reg, core::SampleConfig{0});
  const auto schema = workload::stock_schema();
  const auto e = model::EventBuilder(schema).set("price", 1.0).build();
#ifdef SUBSUM_NO_TELEMETRY
  EXPECT_FALSE(probe.should_sample(e));  // constant false: oracle is dead code
#else
  EXPECT_TRUE(probe.should_sample(e));  // shift 0 samples everything
#endif
}

// --- FP counters vs the exact oracle (the ablation workloads) ---------------

/// Reduced ablation-(b) workload: the wide canonical range first, then
/// tight windows inside it — coarse AACS absorbs the windows into the wide
/// row and over-approximates.
TEST(QualityProbe, FpCounterMatchesCoarseAacsOracle) {
  SKIP_WITHOUT_TELEMETRY();
  const auto schema = workload::stock_schema();
  const auto price = schema.id_of("price");
  core::BrokerSummary summary(schema, core::GeneralizePolicy::kSafe,
                              core::AacsMode::kCoarse);
  core::NaiveMatcher naive;
  util::Rng rng(21);
  uint32_t next = 0;
  auto install = [&](double lo, double hi) {
    auto sub = model::SubscriptionBuilder(schema)
                   .where(price, model::Op::kGe, lo)
                   .where(price, model::Op::kLe, hi)
                   .build();
    const SubId id{0, next++, sub.mask()};
    summary.add(sub, id);
    naive.add({id, std::move(sub)});
  };
  install(0.0, 100.0);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.range_f64(0.0, 95.0);
    install(a, a + 5.0);
  }

  obs::MetricsRegistry reg;
  const core::QualityProbe probe(reg, core::SampleConfig{0});
  uint64_t oracle_fp = 0;
  for (int i = 0; i < 200; ++i) {
    const auto e =
        model::EventBuilder(schema).set(price, rng.range_f64(0.0, 100.0)).build();
    const auto cand = core::match(summary, e);
    const auto exact = naive.match(e);
    ASSERT_GE(cand.size(), exact.size());  // summaries never lose matches
    oracle_fp += cand.size() - exact.size();
    ASSERT_TRUE(probe.should_sample(e));
    probe.record(cand.size(), exact.size());
  }
  EXPECT_GT(oracle_fp, 0u);  // coarse absorption really over-approximates here
  EXPECT_EQ(reg.counter_value("subsum_summary_false_positive_ids_total"), oracle_fp);
  EXPECT_EQ(reg.counter_value("subsum_quality_engine_divergence_total"), 0u);
  EXPECT_LT(probe.precision(), 1.0);
}

/// Reduced ablation-(c) workload: skewed string equalities/prefixes under
/// kAggressive generalization — the summary trades rows for string FPs.
TEST(QualityProbe, FpCounterMatchesAggressiveSacsOracle) {
  SKIP_WITHOUT_TELEMETRY();
  const auto schema = workload::stock_schema();
  const auto symbol = schema.id_of("symbol");
  core::BrokerSummary summary(schema, core::GeneralizePolicy::kAggressive,
                              core::AacsMode::kCoarse);
  core::NaiveMatcher naive;
  util::Rng rng(31);
  uint32_t next = 0;
  auto install = [&](model::Op op, const std::string& operand) {
    auto sub = model::SubscriptionBuilder(schema).where(symbol, op, operand).build();
    const SubId id{0, next++, sub.mask()};
    summary.add(sub, id);
    naive.add({id, std::move(sub)});
  };
  for (int i = 0; i < 300; ++i) {
    const auto k = rng.below(16);
    const double roll = rng.uniform01();
    if (roll < 0.6) {
      install(model::Op::kEq, "s" + std::to_string(k) + "-" + std::to_string(rng.below(40)));
    } else if (roll < 0.9) {
      install(model::Op::kPrefix, "s" + std::to_string(k));
    } else {
      install(model::Op::kNe, "s" + std::to_string(k) + "-0");
    }
  }

  obs::MetricsRegistry reg;
  const core::QualityProbe probe(reg, core::SampleConfig{0});
  uint64_t oracle_fp = 0;
  for (int i = 0; i < 200; ++i) {
    const auto e = model::EventBuilder(schema)
                       .set(symbol, "s" + std::to_string(rng.below(16)) + "-" +
                                        std::to_string(rng.below(40)))
                       .build();
    const auto cand = core::match(summary, e);
    const auto exact = naive.match(e);
    ASSERT_GE(cand.size(), exact.size());
    oracle_fp += cand.size() - exact.size();
    probe.record(cand.size(), exact.size());
  }
  EXPECT_GT(oracle_fp, 0u);
  EXPECT_EQ(reg.counter_value("subsum_summary_false_positive_ids_total"), oracle_fp);
  EXPECT_EQ(reg.counter_value("subsum_quality_engine_divergence_total"), 0u);
}

// --- WalkMetrics ------------------------------------------------------------

TEST(WalkMetrics, FoldAccumulatesRouteResults) {
  SKIP_WITHOUT_TELEMETRY();
  obs::MetricsRegistry reg;
  const routing::WalkMetrics wm(reg);
  routing::RouteResult r;
  r.visited = {0, 1, 2};
  r.forward_hops = 2;
  r.delivery_hops = 4;
  r.skipped = {5};
  r.undeliverable.resize(2);
  wm.fold(r);
  wm.fold(r);
  EXPECT_EQ(reg.counter_value("subsum_walk_total"), 2u);
  EXPECT_EQ(reg.counter_value("subsum_walk_visits_total"), 6u);
  EXPECT_EQ(reg.counter_value("subsum_walk_forward_hops_total"), 4u);
  EXPECT_EQ(reg.counter_value("subsum_walk_delivery_hops_total"), 8u);
  EXPECT_EQ(reg.counter_value("subsum_walk_reselects_total"), 2u);
  EXPECT_EQ(reg.counter_value("subsum_walk_undeliverable_total"), 4u);
}

// --- model drift / row occupancy exports ------------------------------------

core::BrokerSummary small_summary(const model::Schema& schema) {
  core::BrokerSummary summary(schema, core::GeneralizePolicy::kSafe,
                              core::AacsMode::kCoarse);
  workload::SubscriptionGenerator gen(schema, {}, 7);
  for (uint32_t i = 0; i < 50; ++i) {
    const auto sub = gen.next();
    summary.add(sub, SubId{0, i, sub.mask()});
  }
  return summary;
}

TEST(QualityExports, ModelDriftGaugesAndRatio) {
  SKIP_WITHOUT_TELEMETRY();
  const auto schema = workload::stock_schema();
  const auto summary = small_summary(schema);
  const core::WireConfig wire{model::SubIdCodec(24, 1000, schema.attr_count()), 4};

  obs::MetricsRegistry reg;
  const double drift = core::export_model_drift(reg, summary, wire);
  EXPECT_GT(drift, 0.0);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("subsum_summary_wire_bytes "), std::string::npos);
  EXPECT_NE(text.find("subsum_summary_model_bytes "), std::string::npos);
  EXPECT_NE(text.find("subsum_summary_model_drift_ratio "), std::string::npos);
  EXPECT_DOUBLE_EQ(reg.fgauge("subsum_summary_model_drift_ratio")->value(), drift);
  // wire / model recomputed exactly:
  const double wire_b = static_cast<double>(reg.gauge("subsum_summary_wire_bytes")->value());
  const double model_b = static_cast<double>(reg.gauge("subsum_summary_model_bytes")->value());
  EXPECT_DOUBLE_EQ(drift, wire_b / model_b);
  EXPECT_EQ(static_cast<size_t>(wire_b), core::wire_size(summary, wire));

  // The labeled variant lands on distinct series (SimSystem: one registry,
  // many brokers).
  core::export_model_drift(reg, summary, wire, {}, "3");
  const std::string text2 = reg.prometheus_text();
  EXPECT_NE(text2.find("subsum_summary_model_drift_ratio{broker=\"3\"}"),
            std::string::npos);
}

TEST(QualityExports, RowOccupancyIsASnapshotNotAnAccumulation) {
  const auto schema = workload::stock_schema();
  const auto summary = small_summary(schema);
  obs::MetricsRegistry reg;
  core::export_row_occupancy(reg, summary);
  const std::string once = reg.prometheus_text();
  // Histogram families expand per-series: name_count{attr="..."} etc.
  EXPECT_NE(once.find("subsum_summary_row_ids_count{attr="), std::string::npos);
  // Re-exporting the same summary resets and repopulates: identical text.
  core::export_row_occupancy(reg, summary);
  EXPECT_EQ(reg.prometheus_text(), once);
}

// --- SimSystem integration --------------------------------------------------

sim::SystemConfig quality_cfg() {
  sim::SystemConfig cfg;
  cfg.schema = workload::stock_schema();
  cfg.graph = overlay::cable_wireless_24();
  cfg.arith_mode = core::AacsMode::kCoarse;  // over-approximates -> FPs exist
  cfg.policy = core::GeneralizePolicy::kAggressive;
  cfg.quality_sample_shift = 2;  // 1/4 of events, deterministic by content
  return cfg;
}

std::vector<model::Event> quality_events(const model::Schema& schema, size_t n) {
  workload::SubscriptionGenerator gen(schema, {}, 91);
  workload::EventGenerator egen(schema, gen.pools(), {}, 92);
  std::vector<model::Event> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) events.push_back(egen.next());
  return events;
}

void subscribe_workload(sim::SimSystem& sys) {
  workload::SubGenParams sp;
  sp.subsumption = 0.5;
  workload::SubscriptionGenerator gen(sys.schema(), sp, 90);
  for (BrokerId b = 0; b < sys.broker_count(); ++b) {
    for (int i = 0; i < 8; ++i) sys.subscribe(b, gen.next());
  }
  sys.run_propagation_period();
}

TEST(SimQuality, SampledSetIsDeterministicAcrossShardings) {
  const auto cfg = quality_cfg();
  const auto events = quality_events(cfg.schema, 96);

  sim::SimSystem sequential(cfg);
  subscribe_workload(sequential);
  for (size_t i = 0; i < events.size(); ++i) {
    sequential.publish(static_cast<BrokerId>(i % sequential.broker_count()), events[i]);
  }

  sim::SimSystem sharded(quality_cfg());
  subscribe_workload(sharded);
  util::ThreadPool pool(4);
  for (size_t i = 0; i < events.size(); ++i) {
    // Same origins as above, but each publish runs through the sharded path.
    const auto origin = static_cast<BrokerId>(i % sharded.broker_count());
    sharded.publish_batch(origin, std::span(&events[i], 1), pool);
  }

  const char* kQuality[] = {
      "subsum_quality_sampled_events_total", "subsum_quality_candidate_ids_total",
      "subsum_quality_exact_ids_total",      "subsum_summary_false_positive_ids_total",
      "subsum_quality_engine_divergence_total"};
  for (const char* name : kQuality) {
    EXPECT_EQ(sequential.metrics().counter_value(name),
              sharded.metrics().counter_value(name))
        << name;
  }
#ifndef SUBSUM_NO_TELEMETRY
  // The sampled set is exactly the events whose content hash the config
  // selects — independent of sharding, origin, or arrival order.
  uint64_t expected_sampled = 0;
  const core::SampleConfig sample{cfg.quality_sample_shift};
  for (const auto& e : events) {
    if (sample.selects(core::event_hash(e))) ++expected_sampled;
  }
  EXPECT_GT(expected_sampled, 0u);
  EXPECT_EQ(sequential.metrics().counter_value("subsum_quality_sampled_events_total"),
            expected_sampled);
  EXPECT_EQ(sequential.metrics().counter_value("subsum_quality_engine_divergence_total"),
            0u);
#endif
}

TEST(SimQuality, ExpositionCarriesWalkQualityAndPerBrokerSeries) {
  SKIP_WITHOUT_TELEMETRY();
  sim::SimSystem sys(quality_cfg());
  subscribe_workload(sys);
  const auto events = quality_events(sys.schema(), 32);
  for (size_t i = 0; i < events.size(); ++i) {
    sys.publish(static_cast<BrokerId>(i % sys.broker_count()), events[i]);
  }
  const std::string text = sys.metrics().prometheus_text();
  EXPECT_NE(text.find("subsum_walk_total "), std::string::npos);
  EXPECT_NE(text.find("subsum_walk_visits_total "), std::string::npos);
  EXPECT_NE(text.find("subsum_quality_sampled_events_total "), std::string::npos);
  EXPECT_NE(text.find("subsum_summary_precision "), std::string::npos);
  // Per-broker drift/occupancy series, refreshed by run_propagation_period.
  EXPECT_NE(text.find("subsum_summary_model_drift_ratio{broker=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("subsum_summary_row_ids"), std::string::npos);
  EXPECT_EQ(sys.metrics().counter_value("subsum_walk_total"), events.size());

#ifndef SUBSUM_NO_TELEMETRY
  // The probe's precision gauge reflects the sampled ratio exactly.
  const double precision = sys.quality_probe().precision();
  EXPECT_GT(precision, 0.0);
  EXPECT_LE(precision, 1.0);
#endif
}

}  // namespace
}  // namespace subsum
