#include <gtest/gtest.h>

#include "core/matcher.h"
#include "core/summary.h"
#include "model/subscription.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace subsum::workload {
namespace {

using model::Schema;
using model::SubId;

TEST(StockSchema, Shape) {
  const Schema s = stock_schema();
  EXPECT_EQ(s.attr_count(), 10u);
  EXPECT_EQ(s.arithmetic_count(), 6u);
  EXPECT_EQ(s.string_count(), 4u);
  EXPECT_EQ(s.type_of(s.id_of("price")), model::AttrType::kFloat);
  EXPECT_EQ(s.type_of(s.id_of("when")), model::AttrType::kInt);
  EXPECT_EQ(s.type_of(s.id_of("currency")), model::AttrType::kString);
}

TEST(ValuePools, DisjointCanonicalRanges) {
  const Schema s = stock_schema();
  const ValuePools p = ValuePools::make(s, 2, 32);
  for (model::AttrId a = 0; a < s.attr_count(); ++a) {
    if (!is_arithmetic(s.type_of(a))) continue;
    ASSERT_EQ(p.arith[a].ranges.size(), 2u);
    const auto& r = p.arith[a].ranges;
    EXPECT_LT(r[0].second, r[1].first);  // disjoint and ordered
  }
  for (model::AttrId a = 0; a < s.attr_count(); ++a) {
    if (is_arithmetic(s.type_of(a))) continue;
    EXPECT_EQ(p.strings[a].size(), 32u);
    EXPECT_FALSE(p.prefixes[a].empty());
  }
}

TEST(SubscriptionGenerator, ProducesValidMix) {
  const Schema s = stock_schema();
  SubGenParams params;
  params.arith_attrs = 2;
  params.string_attrs = 3;
  SubscriptionGenerator gen(s, params, 1);
  for (int i = 0; i < 100; ++i) {
    const auto sub = gen.next();
    size_t arith = 0, str = 0;
    for (model::AttrId a = 0; a < s.attr_count(); ++a) {
      if (!(sub.mask() & model::attr_bit(a))) continue;
      (is_arithmetic(s.type_of(a)) ? arith : str) += 1;
    }
    EXPECT_EQ(arith, 2u);
    EXPECT_EQ(str, 3u);
  }
}

TEST(SubscriptionGenerator, DeterministicBySeed) {
  const Schema s = stock_schema();
  SubscriptionGenerator a(s, {}, 9);
  SubscriptionGenerator b(s, {}, 9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SubscriptionGenerator, RejectsImpossibleMix) {
  const Schema s = stock_schema();
  SubGenParams params;
  params.string_attrs = 5;  // schema has only 4 string attributes
  EXPECT_THROW(SubscriptionGenerator(s, params, 1), std::invalid_argument);
}

TEST(SubscriptionGenerator, SubsumptionKnobShrinksSummaries) {
  // Higher subsumption probability => more value reuse => fewer AACS/SACS
  // rows for the same number of subscriptions. This is the exact mechanism
  // behind the paper's figures 8 and 11.
  const Schema s = stock_schema();
  auto rows_at = [&](double subsumption) {
    SubGenParams params;
    params.subsumption = subsumption;
    SubscriptionGenerator gen(s, params, 42);
    core::BrokerSummary summary(s);
    for (uint32_t i = 0; i < 400; ++i) {
      const auto sub = gen.next();
      summary.add(sub, SubId{0, i, sub.mask()});
    }
    const auto st = summary.stats();
    return st.nsr + st.ne + st.nr;
  };
  const size_t low = rows_at(0.1);
  const size_t high = rows_at(0.9);
  EXPECT_LT(high, low / 2);
}

TEST(EventGenerator, ProducesValidEvents) {
  const Schema s = stock_schema();
  SubscriptionGenerator gen(s, {}, 3);
  EventGenParams ep;
  ep.arith_attrs = 2;
  ep.string_attrs = 3;
  EventGenerator events(s, gen.pools(), ep, 4);
  for (int i = 0; i < 100; ++i) {
    const auto e = events.next();
    EXPECT_EQ(e.size(), 5u);
  }
}

TEST(EventGenerator, HitRateControlsMatches) {
  const Schema s = stock_schema();
  SubGenParams sp;
  sp.subsumption = 0.9;
  sp.pool_size = 4;  // small pools so pooled equalities actually collide
  SubscriptionGenerator gen(s, sp, 5);
  core::BrokerSummary summary(s);
  core::NaiveMatcher naive;
  for (uint32_t i = 0; i < 200; ++i) {
    auto sub = gen.next();
    const SubId id{0, i, sub.mask()};
    summary.add(sub, id);
    naive.add({id, std::move(sub)});
  }
  auto matches_at = [&](double hit_rate) {
    EventGenParams ep;
    ep.hit_rate = hit_rate;
    ep.arith_attrs = 6;  // full events: attribute coverage never the blocker
    ep.string_attrs = 4;
    EventGenerator events(s, gen.pools(), ep, 6);
    size_t total = 0;
    for (int i = 0; i < 300; ++i) total += naive.match(events.next()).size();
    return total;
  };
  EXPECT_GT(matches_at(0.95), matches_at(0.2));
  EXPECT_GT(matches_at(0.95), 0u);
}

TEST(EventGenerator, ZipfSkewConcentratesValues) {
  const Schema s = stock_schema();
  SubscriptionGenerator gen(s, {}, 7);
  const auto symbol = s.id_of("symbol");

  auto top_share = [&](double exponent) {
    EventGenParams ep;
    ep.hit_rate = 1.0;
    ep.zipf_exponent = exponent;
    EventGenerator events(s, gen.pools(), ep, 8);
    std::map<std::string, int> counts;
    int total = 0;
    for (int i = 0; i < 3000; ++i) {
      const auto e = events.next();
      if (const auto* v = e.find(symbol)) {
        ++counts[v->as_string()];
        ++total;
      }
    }
    int best = 0;
    for (const auto& [k, c] : counts) best = std::max(best, c);
    return static_cast<double>(best) / total;
  };
  // Uniform over 64 pooled values ~ 1.6% per value; Zipf(1.2) concentrates.
  EXPECT_LT(top_share(0.0), 0.08);
  EXPECT_GT(top_share(1.2), 0.2);
}

}  // namespace
}  // namespace subsum::workload
