// Fault-tolerance layer: backoff schedules, socket deadlines, the
// FaultInjector proxy, all-or-nothing summary merges under partial frames,
// propagation reports under churn, degraded BROCLI walks past dead
// brokers, queued redelivery, and client reconnect semantics.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/cluster.h"
#include "net/fault_injector.h"
#include "overlay/topologies.h"
#include "util/backoff.h"
#include "util/bytes.h"
#include "workload/stock_schema.h"

namespace subsum::net {
namespace {

using namespace std::chrono_literals;
using model::EventBuilder;
using model::Op;
using model::Schema;
using model::SubId;
using model::SubscriptionBuilder;
using overlay::BrokerId;

Schema schema_v() { return workload::stock_schema(); }

/// Small deadlines so failure paths resolve in milliseconds, not seconds.
RpcPolicy tight_policy() {
  RpcPolicy p;
  p.connect_timeout = 250ms;
  p.io_timeout = 1000ms;
  p.backoff = {5ms, 40ms, 2};
  return p;
}

ClientOptions tight_client() {
  ClientOptions o;
  o.connect_timeout = 500ms;
  o.rpc_timeout = 20000ms;
  o.backoff = {5ms, 40ms, 4};
  return o;
}

// --- util::Backoff ----------------------------------------------------------

TEST(Backoff, DelaysStayWithinBaseAndCap) {
  util::Backoff b({10ms, 50ms, 6}, 42);
  int delays = 0;
  while (auto d = b.next_delay()) {
    EXPECT_GE(*d, 10ms);
    EXPECT_LE(*d, 50ms);
    ++delays;
  }
  EXPECT_EQ(delays, 5);  // 6 attempts total = 5 sleeps between them
  EXPECT_EQ(b.attempts_started(), 6);
  EXPECT_FALSE(b.next_delay().has_value());  // stays exhausted
  b.reset();
  EXPECT_TRUE(b.next_delay().has_value());
}

TEST(Backoff, DeterministicGivenSeed) {
  util::Backoff a({10ms, 400ms, 8}, 7);
  util::Backoff b({10ms, 400ms, 8}, 7);
  while (true) {
    const auto da = a.next_delay();
    const auto db = b.next_delay();
    EXPECT_EQ(da, db);
    if (!da) break;
  }
}

TEST(Backoff, SingleAttemptNeverRetries) {
  util::Backoff b({10ms, 50ms, 1}, 0);
  EXPECT_FALSE(b.next_delay().has_value());
}

TEST(Backoff, RetryHelperRethrowsAfterBudget) {
  int calls = 0;
  EXPECT_THROW(util::retry<NetError>({1ms, 2ms, 3}, 0,
                                     [&]() -> int {
                                       ++calls;
                                       throw NetError("always");
                                     }),
               NetError);
  EXPECT_EQ(calls, 3);
}

// --- socket deadlines -------------------------------------------------------

TEST(SocketDeadline, RecvTimesOutInsteadOfBlocking) {
  Listener listener(0);
  Socket c = connect_local(listener.port());
  c.set_recv_timeout(100ms);
  std::byte buf[1];
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)c.recv_exact(buf), NetTimeout);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, 80ms);
  EXPECT_LT(elapsed, 2s);
}

TEST(SocketDeadline, TimedConnectSucceedsAndRefusalIsFast) {
  Listener listener(0);
  // The poll-based connect path must work for a healthy target.
  Socket ok = connect_local(listener.port(), 500ms);
  EXPECT_TRUE(ok.valid());

  uint16_t dead_port;
  {
    Listener doomed(0);
    dead_port = doomed.port();
  }
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(connect_local(dead_port, 500ms), NetError);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 400ms);  // refused, not timed out
}

// --- FaultInjector ----------------------------------------------------------

TEST(FaultInjector, PassThroughIsTransparent) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1), core::GeneralizePolicy::kSafe, tight_policy());
  FaultInjector inj(cluster.port_of(0));

  Client client(inj.port(), s, tight_client());
  const auto id = client.subscribe(
      SubscriptionBuilder(s).where("symbol", Op::kEq, "proxy").build());
  client.publish(EventBuilder(s).set("symbol", "proxy").build());
  const auto note = client.next_notification(2000ms);
  ASSERT_TRUE(note.has_value());
  EXPECT_EQ(note->ids, std::vector<SubId>{id});
  EXPECT_GT(inj.forwarded_bytes(), 0u);
}

TEST(FaultInjector, BlackholeHitsTheDeadlineNotForever) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1), core::GeneralizePolicy::kSafe, tight_policy());
  FaultInjector inj(cluster.port_of(0));
  inj.set_mode(FaultInjector::Mode::kBlackhole);

  Socket c = connect_local(inj.port(), 500ms);
  c.set_recv_timeout(200ms);
  send_frame(c, MsgKind::kStats, {});
  EXPECT_THROW((void)recv_frame(c), NetTimeout);
}

TEST(FaultInjector, DropRefusesNewConnections) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1), core::GeneralizePolicy::kSafe, tight_policy());
  FaultInjector inj(cluster.port_of(0));
  inj.set_mode(FaultInjector::Mode::kDrop);

  // The TCP connect itself succeeds (the listener accepts), but the
  // injector closes immediately: the first read sees EOF.
  Socket c = connect_local(inj.port(), 500ms);
  c.set_recv_timeout(2000ms);
  EXPECT_FALSE(recv_frame(c).has_value());
}

// --- all-or-nothing summary merges (satellite: partial kSummary) ------------

TEST(SummaryIntegrity, PartialFrameThenCloseLeavesHeldIntact) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, tight_policy());
  auto c1 = cluster.connect(1);
  c1->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "keep").build());
  const auto before = cluster.node(1).snapshot();

  {
    // A kSummary frame header announcing 100 payload bytes, but only 10
    // arrive before the connection dies mid-frame.
    Socket raw = connect_local(cluster.port_of(1), 500ms);
    util::BufWriter w;
    w.put_u32(100);
    w.put_u8(static_cast<uint8_t>(MsgKind::kSummary));
    for (int i = 0; i < 10; ++i) w.put_u8(0xAB);
    raw.send_all(w.bytes());
  }  // close mid-frame
  std::this_thread::sleep_for(50ms);

  const auto after = cluster.node(1).snapshot();
  EXPECT_EQ(after.merged_brokers, before.merged_brokers);
  EXPECT_EQ(after.held_wire_bytes, before.held_wire_bytes);
  EXPECT_EQ(after.local_subs, before.local_subs);

  // A real propagation still merges cleanly afterwards.
  const auto report = cluster.run_propagation_period();
  EXPECT_TRUE(report.complete());
  auto c0 = cluster.connect(0);
  c0->publish(EventBuilder(s).set("symbol", "keep").build());
  EXPECT_TRUE(c1->next_notification(2000ms).has_value());
}

TEST(SummaryIntegrity, CorruptPayloadRejectedWithoutMutation) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, tight_policy());
  const auto before = cluster.node(0).snapshot();

  Socket raw = connect_local(cluster.port_of(0), 500ms);
  const std::vector<std::byte> junk(37, std::byte{0xFF});
  send_frame(raw, MsgKind::kSummary, junk);
  // The broker drops the connection on the decode error (no ack).
  raw.set_recv_timeout(2000ms);
  try {
    (void)recv_frame(raw);
  } catch (const NetError&) {
  }

  const auto after = cluster.node(0).snapshot();
  EXPECT_EQ(after.merged_brokers, before.merged_brokers);
  EXPECT_EQ(after.held_wire_bytes, before.held_wire_bytes);
}

TEST(SummaryIntegrity, TruncatedPeerSummaryMergesNothingThenHeals) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, tight_policy());
  auto c0 = cluster.connect(0);
  c0->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "heal").build());

  // Interpose on broker 0 -> broker 1 only; cut every frame after 3 bytes.
  FaultInjector inj(cluster.port_of(1));
  inj.set_mode(FaultInjector::Mode::kTruncate);
  inj.set_truncate_after(3);
  cluster.node(0).set_peer_ports({cluster.port_of(0), inj.port()});

  const auto before = cluster.node(1).snapshot();
  const auto report = cluster.run_propagation_period();
  // Broker 0's summary send died mid-frame; broker 1 must hold its old
  // state (merge is all-or-nothing) and both brokers still acked their
  // triggers.
  EXPECT_TRUE(report.complete());
  const auto after = cluster.node(1).snapshot();
  EXPECT_EQ(after.merged_brokers, before.merged_brokers);
  EXPECT_EQ(after.held_wire_bytes, before.held_wire_bytes);

  // Heal the link: the state-based resend completes the merge.
  inj.set_mode(FaultInjector::Mode::kPass);
  EXPECT_TRUE(cluster.run_propagation_period().complete());
  EXPECT_EQ(cluster.node(1).snapshot().merged_brokers, 2u);
}

// --- propagation under churn (satellite: report + continue) -----------------

TEST(ClusterFault, PropagationReportsDeadBrokerAndContinues) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(3), core::GeneralizePolicy::kSafe, tight_policy());
  cluster.kill(1);
  EXPECT_FALSE(cluster.alive(1));

  const auto report = cluster.run_propagation_period();
  EXPECT_EQ(report.unreachable, std::vector<BrokerId>{1});

  // Live brokers finished the round and still serve traffic.
  auto c0 = cluster.connect(0);
  const auto id = c0->subscribe(
      SubscriptionBuilder(s).where("symbol", Op::kEq, "alive").build());
  c0->publish(EventBuilder(s).set("symbol", "alive").build());
  const auto note = c0->next_notification(2000ms);
  ASSERT_TRUE(note.has_value());
  EXPECT_EQ(note->ids, std::vector<SubId>{id});
}

// --- degraded BROCLI walk (tentpole) ----------------------------------------

TEST(ClusterFault, WalkSkipsDeadBrokerAndStillDeliversEverywhereReachable) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::fig7_tree(), core::GeneralizePolicy::kSafe, tight_policy());

  auto c3 = cluster.connect(3);
  auto c7 = cluster.connect(7);
  auto c12 = cluster.connect(12);
  auto publisher = cluster.connect(0);
  const auto sub = SubscriptionBuilder(s).where("symbol", Op::kEq, "evt").build();
  const SubId id3 = c3->subscribe(sub);
  const SubId id7 = c7->subscribe(sub);
  const SubId id12 = c12->subscribe(sub);
  ASSERT_TRUE(cluster.run_propagation_period().complete());

  // Node 10 is the walk's gateway to brokers 11/12 (it merged their
  // summaries). Killing it forces the walk to degrade: skip 10, visit the
  // leaves directly, and still deliver to broker 12's subscriber.
  cluster.kill(10);
  const auto t0 = std::chrono::steady_clock::now();
  publisher->publish(EventBuilder(s).set("symbol", "evt").build());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Dead-peer detection is ECONNREFUSED + the small backoff budget, far
  // under 2x the per-hop deadline budget.
  EXPECT_LT(elapsed, 2 * tight_policy().io_timeout);

  EXPECT_EQ(c3->next_notification(2000ms)->ids, std::vector<SubId>{id3});
  EXPECT_EQ(c7->next_notification(2000ms)->ids, std::vector<SubId>{id7});
  EXPECT_EQ(c12->next_notification(2000ms)->ids, std::vector<SubId>{id12});

  // Restart + one propagation period re-heals the broker's summaries.
  cluster.restart(10);
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  EXPECT_GE(cluster.node(10).snapshot().merged_brokers, 3u);

  publisher->publish(EventBuilder(s).set("symbol", "evt").build());
  EXPECT_EQ(c3->next_notification(2000ms)->ids, std::vector<SubId>{id3});
  EXPECT_EQ(c7->next_notification(2000ms)->ids, std::vector<SubId>{id7});
  EXPECT_EQ(c12->next_notification(2000ms)->ids, std::vector<SubId>{id12});
}

// --- queued redelivery (tentpole) -------------------------------------------

TEST(ClusterFault, FailedDeliveryIsQueuedAndRedeliveredAfterRestart) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, tight_policy());
  const auto sub = SubscriptionBuilder(s).where("symbol", Op::kEq, "redo").build();
  {
    auto doomed = cluster.connect(1);
    doomed->subscribe(sub);
    ASSERT_TRUE(cluster.run_propagation_period().complete());
  }
  cluster.kill(1);

  auto publisher = cluster.connect(0);
  publisher->publish(EventBuilder(s).set("symbol", "redo").build());
  EXPECT_EQ(cluster.node(0).snapshot().pending_redeliveries, 1u);

  cluster.restart(1);
  auto revived = cluster.connect(1);
  // Re-subscribing the same subscription reclaims the same id (the
  // restarted broker's local counter reset), so the queued delivery's ids
  // pass the exact home re-filter.
  const SubId id = revived->subscribe(sub);
  cluster.run_propagation_period();  // flushes broker 0's redelivery queue

  const auto note = revived->next_notification(2000ms);
  ASSERT_TRUE(note.has_value());
  EXPECT_EQ(note->ids, std::vector<SubId>{id});
  EXPECT_EQ(cluster.node(0).snapshot().pending_redeliveries, 0u);
}

// --- client fault semantics (satellites) ------------------------------------

TEST(ClientFault, NextNotificationSurfacesClosedConnection) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1), core::GeneralizePolicy::kSafe, tight_policy());
  auto client = cluster.connect(0);
  client->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "x").build());
  cluster.kill(0);
  // The dead connection must surface as an error, not as an endless
  // stream of empty optionals.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client->next_notification(10000ms), NetError);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);  // woke on close, not timeout
}

TEST(ClientFault, QueuedNotificationsDrainBeforeClosedSurfaces) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1), core::GeneralizePolicy::kSafe, tight_policy());
  auto client = cluster.connect(0);
  const auto id = client->subscribe(
      SubscriptionBuilder(s).where("symbol", Op::kEq, "q").build());
  client->publish(EventBuilder(s).set("symbol", "q").build());
  // The notification was written before publish() returned; wait until the
  // reader has queued it before killing the broker.
  const auto note = client->next_notification(2000ms);
  ASSERT_TRUE(note.has_value());
  EXPECT_EQ(note->ids, std::vector<SubId>{id});
  cluster.kill(0);
  EXPECT_THROW((void)client->next_notification(1000ms), NetError);
}

TEST(ClientFault, ReconnectsAfterBrokerRestart) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1), core::GeneralizePolicy::kSafe, tight_policy());
  auto client = cluster.connect(0, tight_client());
  client->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "v1").build());

  cluster.kill(0);
  cluster.restart(0);
  std::this_thread::sleep_for(50ms);  // let the reader observe the EOF

  // The old subscription died with the broker; the client transparently
  // reconnects and a fresh subscribe works on the same object.
  const auto id = client->subscribe(
      SubscriptionBuilder(s).where("symbol", Op::kEq, "v2").build());
  client->publish(EventBuilder(s).set("symbol", "v2").build());
  const auto note = client->next_notification(2000ms);
  ASSERT_TRUE(note.has_value());
  EXPECT_EQ(note->ids, std::vector<SubId>{id});
}

TEST(ClientFault, ReconnectDisabledStillThrows) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1), core::GeneralizePolicy::kSafe, tight_policy());
  ClientOptions opts = tight_client();
  opts.auto_reconnect = false;
  auto client = cluster.connect(0, opts);
  cluster.kill(0);
  cluster.restart(0);
  std::this_thread::sleep_for(50ms);
  EXPECT_THROW(client->subscribe(
                   SubscriptionBuilder(s).where("symbol", Op::kEq, "z").build()),
               NetError);
}

}  // namespace
}  // namespace subsum::net
