// End-to-end tracing: deterministic span logs in the simulator (virtual
// time, salt-0 trace ids) and causal traces across a real TCP cluster,
// including retry spans on a blackholed link and the kStats/kTrace RPCs.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <vector>

#include "net/cluster.h"
#include "net/fault_injector.h"
#include "overlay/topologies.h"
#include "sim/system.h"
#include "util/thread_pool.h"
#include "workload/stock_schema.h"

namespace subsum {
namespace {

#ifdef SUBSUM_NO_TELEMETRY
#define SKIP_WITHOUT_TELEMETRY() \
  GTEST_SKIP() << "telemetry compiled out (SUBSUM_NO_TELEMETRY)"
#else
#define SKIP_WITHOUT_TELEMETRY() (void)0
#endif

using namespace std::chrono_literals;
using model::EventBuilder;
using model::Op;
using model::Schema;
using model::SubscriptionBuilder;

// --- simulator: deterministic span logs -------------------------------------

sim::SystemConfig traced_config() {
  sim::SystemConfig cfg;
  cfg.schema = workload::stock_schema();
  cfg.graph = overlay::fig7_tree();
  cfg.trace = true;
  return cfg;
}

/// One fixed fig-7 scenario: subscribe at 3 and 7, propagate, publish a
/// matching and a non-matching event at 0. Returns the ring's JSONL.
std::string run_scenario() {
  sim::SimSystem sys(traced_config());
  const auto sub =
      SubscriptionBuilder(sys.schema()).where("symbol", Op::kEq, "OTE").build();
  sys.subscribe(3, sub);
  sys.subscribe(7, sub);
  sys.run_propagation_period();
  sys.publish(0, EventBuilder(sys.schema()).set("symbol", "OTE").build());
  sys.publish(0, EventBuilder(sys.schema()).set("symbol", "MISS").build());
  const auto spans = sys.trace_ring().snapshot();
  return obs::to_jsonl(spans);
}

TEST(SimTrace, TwoRunsProduceByteIdenticalSpanLogs) {
  SKIP_WITHOUT_TELEMETRY();
  const std::string a = run_scenario();
  const std::string b = run_scenario();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(SimTrace, WalkPhasesAppearInCausalOrder) {
  SKIP_WITHOUT_TELEMETRY();
  sim::SimSystem sys(traced_config());
  const auto sub =
      SubscriptionBuilder(sys.schema()).where("symbol", Op::kEq, "OTE").build();
  sys.subscribe(3, sub);
  sys.run_propagation_period();
  const auto out =
      sys.publish(0, EventBuilder(sys.schema()).set("symbol", "OTE").build());
  ASSERT_EQ(out.delivered.size(), 1u);

  const auto spans = sys.trace_ring().snapshot();
  ASSERT_FALSE(spans.empty());
  // One trace id across the whole walk; virtual time is the span index.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].trace, spans[0].trace);
    EXPECT_EQ(spans[i].t_us, i);
  }
  // The walk starts with a recv at the origin and ends having delivered
  // to the subscriber's home broker.
  EXPECT_EQ(spans[0].phase, obs::Phase::kRecv);
  EXPECT_EQ(spans[0].broker, 0u);
  const auto deliver = std::find_if(spans.begin(), spans.end(), [](const obs::Span& s) {
    return s.phase == obs::Phase::kDeliver;
  });
  ASSERT_NE(deliver, spans.end());
  EXPECT_EQ(deliver->peer, 3u);
}

TEST(SimTrace, UntracedSystemRecordsNothing) {
  sim::SystemConfig cfg = traced_config();
  cfg.trace = false;
  sim::SimSystem sys(cfg);
  sys.publish(0, EventBuilder(sys.schema()).set("symbol", "OTE").build());
  EXPECT_TRUE(sys.trace_ring().snapshot().empty());
}

TEST(SimTrace, PublishBatchSpansMatchSequentialPublish) {
  std::vector<model::Event> events;
  sim::SimSystem seq(traced_config());
  for (const char* sym : {"OTE", "MISS", "OTE", "AAA", "OTE", "BBB"}) {
    events.push_back(EventBuilder(seq.schema()).set("symbol", sym).build());
  }
  sim::SimSystem par(traced_config());
  for (auto* sys : {&seq, &par}) {
    const auto sub =
        SubscriptionBuilder(sys->schema()).where("symbol", Op::kEq, "OTE").build();
    sys->subscribe(3, sub);
    sys->subscribe(9, sub);
    sys->run_propagation_period();
  }

  for (const auto& e : events) seq.publish(0, e);
  util::ThreadPool pool(4);
  par.publish_batch(0, events, pool);

  // Sharded walks fold their spans back in event order at the barrier, so
  // the ring is byte-identical to the sequential loop.
  EXPECT_EQ(obs::to_jsonl(par.trace_ring().snapshot()),
            obs::to_jsonl(seq.trace_ring().snapshot()));
}

// --- TCP cluster: causal traces, retries, RPCs ------------------------------

net::RpcPolicy tight_policy() {
  net::RpcPolicy p;
  p.connect_timeout = 250ms;
  p.io_timeout = 1000ms;
  p.backoff = {5ms, 40ms, 2};
  return p;
}

TEST(ClusterTrace, PublishReturnsTraceAndSpansSpanBrokers) {
  SKIP_WITHOUT_TELEMETRY();
  const Schema s = workload::stock_schema();
  net::Cluster cluster(s, overlay::line(3));
  auto c2 = cluster.connect(2);
  const auto id = c2->subscribe(
      SubscriptionBuilder(s).where("symbol", Op::kEq, "OTE").build());
  ASSERT_TRUE(cluster.run_propagation_period().complete());

  auto publisher = cluster.connect(0);
  const uint64_t trace =
      publisher->publish(EventBuilder(s).set("symbol", "OTE").build());
  ASSERT_NE(trace, 0u);
  ASSERT_TRUE(c2->next_notification(2000ms).has_value());

  // Pull the trace from every broker and merge.
  std::vector<obs::Span> all;
  for (overlay::BrokerId b = 0; b < cluster.size(); ++b) {
    auto spans = cluster.connect(b)->fetch_trace(trace);
    all.insert(all.end(), spans.begin(), spans.end());
  }
  ASSERT_FALSE(all.empty());
  for (const auto& sp : all) EXPECT_EQ(sp.trace, trace);

  std::set<uint32_t> brokers;
  bool saw_recv = false, saw_match = false, saw_deliver = false;
  for (const auto& sp : all) {
    brokers.insert(sp.broker);
    saw_recv |= sp.phase == obs::Phase::kRecv;
    saw_match |= sp.phase == obs::Phase::kMatch;
    saw_deliver |= sp.phase == obs::Phase::kDeliver;
  }
  EXPECT_GE(brokers.size(), 2u);  // a complete publish->deliver trace
  EXPECT_TRUE(saw_recv);
  EXPECT_TRUE(saw_match);
  EXPECT_TRUE(saw_deliver);
  // The subscriber's home broker logged the delivery.
  EXPECT_TRUE(std::any_of(all.begin(), all.end(), [&](const obs::Span& sp) {
    return sp.broker == id.broker && sp.phase == obs::Phase::kDeliver;
  }));
}

TEST(ClusterTrace, FetchAllAndMaxSpansCap) {
  SKIP_WITHOUT_TELEMETRY();
  const Schema s = workload::stock_schema();
  net::Cluster cluster(s, overlay::Graph(1));
  auto client = cluster.connect(0);
  client->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "A").build());
  for (int i = 0; i < 3; ++i) {
    client->publish(EventBuilder(s).set("symbol", "A").build());
  }
  const auto all = client->fetch_trace();  // trace 0 = everything retained
  EXPECT_GE(all.size(), 9u);              // 3 x (recv + match + deliver)
  const auto capped = client->fetch_trace(0, 2);
  ASSERT_EQ(capped.size(), 2u);
  // The cap keeps the newest spans.
  EXPECT_EQ(capped.back(), all.back());
  // An unknown trace id has no spans.
  EXPECT_TRUE(client->fetch_trace(0xdeadbeefu).empty());
}

TEST(ClusterTrace, BlackholedPeerGetsRetrySpansAndCounters) {
  SKIP_WITHOUT_TELEMETRY();
  const Schema s = workload::stock_schema();
  net::Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe,
                       tight_policy());
  {
    auto doomed = cluster.connect(1);
    doomed->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "hole").build());
    ASSERT_TRUE(cluster.run_propagation_period().complete());
  }

  // Interpose on broker 0 -> broker 1 only and swallow every byte.
  net::FaultInjector inj(cluster.port_of(1));
  inj.set_mode(net::FaultInjector::Mode::kBlackhole);
  cluster.node(0).set_peer_ports({cluster.port_of(0), inj.port()});

  auto publisher = cluster.connect(0);
  const uint64_t trace =
      publisher->publish(EventBuilder(s).set("symbol", "hole").build());
  ASSERT_NE(trace, 0u);

  // Every failed attempt bumped the per-peer retry counter — and only the
  // injected peer's.
  EXPECT_GE(cluster.node(0).metrics().counter_value(
                "subsum_peer_rpc_retries_total{peer=\"1\"}"),
            1u);
  EXPECT_EQ(cluster.node(0).metrics().counter_value(
                "subsum_peer_rpc_retries_total{peer=\"0\"}"),
            0u);

  const auto spans = cluster.node(0).trace_ring().for_trace(trace);
  const auto retries = std::count_if(spans.begin(), spans.end(), [](const obs::Span& sp) {
    return sp.phase == obs::Phase::kRetry;
  });
  EXPECT_GE(retries, 1);
  for (const auto& sp : spans) {
    if (sp.phase == obs::Phase::kRetry) {
      EXPECT_EQ(sp.peer, 1u);
    }
  }
  // The failed delivery was queued for redelivery.
  EXPECT_EQ(cluster.node(0).snapshot().pending_redeliveries, 1u);
}

TEST(ClusterTrace, StatsRpcReturnsPrometheusText) {
  SKIP_WITHOUT_TELEMETRY();
  const Schema s = workload::stock_schema();
  net::Cluster cluster(s, overlay::Graph(1));
  auto client = cluster.connect(0);
  client->publish(EventBuilder(s).set("symbol", "X").build());

  const std::string text = client->stats_text();
  EXPECT_NE(text.find("# TYPE subsum_publishes_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_publishes_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE subsum_match_latency_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_match_latency_us_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_local_subs"), std::string::npos);
}

}  // namespace
}  // namespace subsum
