// Durability layer: CRC-32C vectors, WAL framing and torn-tail replay,
// snapshot compaction, corruption fallback, and epoch monotonicity.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "model/sub_id.h"
#include "store/broker_store.h"
#include "store/wal.h"
#include "util/crc32c.h"
#include "workload/stock_schema.h"

namespace subsum::store {
namespace {

namespace fs = std::filesystem;
using model::Op;
using model::Schema;
using model::SubId;
using model::SubscriptionBuilder;

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

/// Fresh per-test scratch directory under the gtest temp root.
std::string scratch_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = ::testing::TempDir() + "subsum_store/" +
                          info->test_suite_name() + "." + info->name();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void append_raw(const std::string& path, const std::vector<std::byte>& junk) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(junk.data()),
            static_cast<std::streamsize>(junk.size()));
}

void corrupt_byte(const std::string& path, size_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(c ^ 0x5A));
}

// --- crc32c -----------------------------------------------------------------

TEST(Crc32c, KnownVectors) {
  // RFC 3720 (iSCSI) test vectors for CRC-32C.
  EXPECT_EQ(util::crc32c(bytes_of("123456789")), 0xE3069283u);
  EXPECT_EQ(util::crc32c(std::vector<std::byte>(32, std::byte{0})), 0x8A9136AAu);
  EXPECT_EQ(util::crc32c(std::vector<std::byte>(32, std::byte{0xFF})), 0x62A8AB43u);
  EXPECT_EQ(util::crc32c({}), 0u);
}

TEST(Crc32c, SeedChainsAcrossSplits) {
  const auto whole = bytes_of("the quick brown fox jumps over the lazy dog");
  const uint32_t expect = util::crc32c(whole);
  for (size_t cut = 0; cut <= whole.size(); ++cut) {
    const std::span<const std::byte> all(whole);
    const uint32_t chained = util::crc32c(all.subspan(cut), util::crc32c(all.first(cut)));
    EXPECT_EQ(chained, expect) << "split at " << cut;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  auto data = bytes_of("subscription summarization");
  const uint32_t clean = util::crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= std::byte{1};
    EXPECT_NE(util::crc32c(data), clean);
    data[i] ^= std::byte{1};
  }
}

// --- WAL --------------------------------------------------------------------

TEST(Wal, RoundTripsRecords) {
  const std::string dir = scratch_dir();
  const std::string path = dir + "/wal";
  {
    WalWriter w(path);
    w.append(bytes_of("alpha"));
    w.append(bytes_of(""));  // empty payloads are legal records
    w.append(bytes_of("gamma"));
    w.sync();
    EXPECT_EQ(w.appended(), 3u);
  }
  const WalReplay rep = replay_wal(path);
  ASSERT_EQ(rep.records.size(), 3u);
  EXPECT_EQ(rep.records[0], bytes_of("alpha"));
  EXPECT_EQ(rep.records[1], bytes_of(""));
  EXPECT_EQ(rep.records[2], bytes_of("gamma"));
  EXPECT_FALSE(rep.torn_tail);
  EXPECT_EQ(rep.valid_bytes, fs::file_size(path));
}

TEST(Wal, MissingFileYieldsEmptyReplay) {
  const WalReplay rep = replay_wal(scratch_dir() + "/nope");
  EXPECT_TRUE(rep.records.empty());
  EXPECT_FALSE(rep.torn_tail);
}

TEST(Wal, TornTailAtEveryOffsetKeepsIntactPrefix) {
  const std::string dir = scratch_dir();
  const std::string good = dir + "/wal";
  {
    WalWriter w(good);
    w.append(bytes_of("first"));
    w.append(bytes_of("second record, a bit longer"));
    w.sync();
  }
  std::vector<std::byte> full;
  {
    std::ifstream in(good, std::ios::binary | std::ios::ate);
    full.resize(static_cast<size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(full.data()), static_cast<std::streamsize>(full.size()));
  }
  const size_t first_len = 8 + 5;  // header + "first"
  for (size_t cut = 0; cut < full.size(); ++cut) {
    const std::string torn = dir + "/torn";
    fs::remove(torn);
    {
      std::ofstream out(torn, std::ios::binary);
      out.write(reinterpret_cast<const char*>(full.data()), static_cast<std::streamsize>(cut));
    }
    const WalReplay rep = replay_wal(torn);
    if (cut < first_len) {
      EXPECT_TRUE(rep.records.empty()) << "cut " << cut;
      EXPECT_EQ(rep.valid_bytes, 0u);
    } else {
      ASSERT_EQ(rep.records.size(), 1u) << "cut " << cut;
      EXPECT_EQ(rep.records[0], bytes_of("first"));
      EXPECT_EQ(rep.valid_bytes, first_len);
    }
    // A cut exactly on a record boundary leaves a shorter-but-intact log.
    EXPECT_EQ(rep.torn_tail, cut != 0 && cut != first_len && cut != full.size())
        << "cut " << cut;
  }
}

TEST(Wal, CorruptPayloadStopsReplayAtLastIntactRecord) {
  const std::string dir = scratch_dir();
  const std::string path = dir + "/wal";
  {
    WalWriter w(path);
    w.append(bytes_of("keep me"));
    w.append(bytes_of("corrupt me"));
    w.sync();
  }
  corrupt_byte(path, 8 + 7 + 8 + 2);  // a payload byte of the second record
  const WalReplay rep = replay_wal(path);
  ASSERT_EQ(rep.records.size(), 1u);
  EXPECT_EQ(rep.records[0], bytes_of("keep me"));
  EXPECT_TRUE(rep.torn_tail);
  EXPECT_EQ(rep.valid_bytes, 8u + 7u);
}

TEST(Wal, TruncateTornTailThenAppendRecoversCleanly) {
  const std::string dir = scratch_dir();
  const std::string path = dir + "/wal";
  {
    WalWriter w(path);
    w.append(bytes_of("stable"));
    w.sync();
  }
  append_raw(path, std::vector<std::byte>(5, std::byte{0xEE}));  // torn header
  const WalReplay torn = replay_wal(path);
  ASSERT_TRUE(torn.torn_tail);
  {
    // The recovery sequence: truncate to the intact prefix, then append.
    WalWriter w(path);
    w.truncate(torn.valid_bytes);
    w.append(bytes_of("after recovery"));
    w.sync();
  }
  const WalReplay rep = replay_wal(path);
  ASSERT_EQ(rep.records.size(), 2u);
  EXPECT_EQ(rep.records[0], bytes_of("stable"));
  EXPECT_EQ(rep.records[1], bytes_of("after recovery"));
  EXPECT_FALSE(rep.torn_tail);
}

TEST(Wal, ResetEmptiesTheLog) {
  const std::string dir = scratch_dir();
  const std::string path = dir + "/wal";
  WalWriter w(path);
  w.append(bytes_of("gone"));
  w.sync();
  w.reset();
  EXPECT_EQ(w.appended(), 0u);
  EXPECT_TRUE(replay_wal(path).records.empty());
}

// --- BrokerStore ------------------------------------------------------------

struct StoreFixture {
  Schema schema = workload::stock_schema();
  core::WireConfig wire{model::SubIdCodec(24, 1u << 20, schema.attr_count()), 8};

  std::unique_ptr<BrokerStore> make(const std::string& dir) {
    return std::make_unique<BrokerStore>(dir, schema, core::GeneralizePolicy::kSafe, wire);
  }

  model::OwnedSubscription sub(uint32_t local, const std::string& sym) {
    auto s = SubscriptionBuilder(schema).where("symbol", Op::kEq, sym).build();
    return {SubId{0, local, s.mask()}, std::move(s)};
  }
};

TEST(BrokerStore, EpochBumpsOnEveryOpen) {
  StoreFixture fx;
  const std::string dir = scratch_dir();
  for (uint64_t expect = 1; expect <= 4; ++expect) {
    auto store = fx.make(dir);
    const DurableState st = store->open();
    EXPECT_EQ(st.epoch, expect);
    EXPECT_EQ(store->epoch(), expect);
  }
}

TEST(BrokerStore, SubscriptionsSurviveReopen) {
  StoreFixture fx;
  const std::string dir = scratch_dir();
  {
    auto store = fx.make(dir);
    store->open();
    store->log_subscribe(fx.sub(0, "AAA"));
    store->log_subscribe(fx.sub(1, "BBB"));
    store->log_unsubscribe(SubId{0, 0, fx.sub(0, "AAA").id.attrs});
    store->commit();
  }
  auto store = fx.make(dir);
  const DurableState st = store->open();
  ASSERT_EQ(st.subs.size(), 1u);
  EXPECT_EQ(st.subs[0].id.local, 1u);
  EXPECT_EQ(st.next_local, 2u);
  EXPECT_FALSE(st.wal_torn);
  EXPECT_FALSE(st.snapshot_fell_back);
  ASSERT_TRUE(st.held.has_value());
  // The recovered held summary routes exactly like a fresh rebuild.
  const auto rebuilt = core::BrokerSummary::rebuild(fx.schema, core::GeneralizePolicy::kSafe,
                                                    st.subs);
  EXPECT_EQ(core::encode_summary(*st.held, fx.wire), core::encode_summary(rebuilt, fx.wire));
}

TEST(BrokerStore, SnapshotCompactsAndTailReplays) {
  StoreFixture fx;
  const std::string dir = scratch_dir();
  {
    auto store = fx.make(dir);
    store->open();
    std::vector<model::OwnedSubscription> subs{fx.sub(0, "AAA"), fx.sub(1, "BBB")};
    for (const auto& os : subs) store->log_subscribe(os);
    store->commit();
    EXPECT_EQ(store->wal_records(), 2u);

    BrokerStore::SnapshotInput in;
    in.next_local = 2;
    in.subs = &subs;
    in.merged_brokers = {0, 2};
    in.merged_epochs = {store->epoch(), 7};
    const auto held = core::BrokerSummary::rebuild(fx.schema, core::GeneralizePolicy::kSafe,
                                                   subs);
    in.held = &held;
    store->write_snapshot(in);
    EXPECT_EQ(store->wal_records(), 0u);  // log truncated

    store->log_subscribe(fx.sub(2, "CCC"));  // tail past the snapshot
    store->commit();
  }
  auto store = fx.make(dir);
  const DurableState st = store->open();
  ASSERT_EQ(st.subs.size(), 3u);
  EXPECT_EQ(st.next_local, 3u);
  EXPECT_TRUE(st.own_image_verified);
  EXPECT_EQ(st.merged_brokers, (std::vector<overlay::BrokerId>{0, 2}));
  ASSERT_EQ(st.merged_epochs.size(), 2u);
  EXPECT_EQ(st.merged_epochs[1], 7u);
}

TEST(BrokerStore, ReplayIsIdempotentWhenLogOutlivesSnapshot) {
  // Simulates a crash between the snapshot rename and the WAL truncate:
  // the snapshot already contains the records still sitting in the log.
  StoreFixture fx;
  const std::string dir = scratch_dir();
  std::vector<std::byte> wal_image;
  {
    auto store = fx.make(dir);
    store->open();
    std::vector<model::OwnedSubscription> subs{fx.sub(0, "AAA"), fx.sub(1, "BBB")};
    for (const auto& os : subs) store->log_subscribe(os);
    store->commit();
    std::ifstream in(dir + "/wal", std::ios::binary | std::ios::ate);
    wal_image.resize(static_cast<size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(wal_image.data()),
            static_cast<std::streamsize>(wal_image.size()));

    BrokerStore::SnapshotInput ss;
    ss.next_local = 2;
    ss.subs = &subs;
    ss.merged_brokers = {0};
    ss.merged_epochs = {store->epoch()};
    const auto held = core::BrokerSummary::rebuild(fx.schema, core::GeneralizePolicy::kSafe,
                                                   subs);
    ss.held = &held;
    store->write_snapshot(ss);
  }
  append_raw(dir + "/wal", wal_image);  // "truncate never happened"
  auto store = fx.make(dir);
  const DurableState st = store->open();
  EXPECT_EQ(st.subs.size(), 2u);  // not 4: duplicates skipped
  EXPECT_EQ(st.next_local, 2u);
}

TEST(BrokerStore, CorruptSnapshotFallsBackToLogReplay) {
  StoreFixture fx;
  const std::string dir = scratch_dir();
  {
    auto store = fx.make(dir);
    store->open();
    std::vector<model::OwnedSubscription> subs{fx.sub(0, "AAA")};
    store->log_subscribe(subs[0]);
    store->commit();
    BrokerStore::SnapshotInput in;
    in.next_local = 1;
    in.subs = &subs;
    in.merged_brokers = {0};
    in.merged_epochs = {store->epoch()};
    const auto held = core::BrokerSummary::rebuild(fx.schema, core::GeneralizePolicy::kSafe,
                                                   subs);
    in.held = &held;
    store->write_snapshot(in);
    store->log_subscribe(fx.sub(1, "BBB"));  // survives in the log tail
    store->commit();
  }
  corrupt_byte(dir + "/snapshot", fs::file_size(dir + "/snapshot") / 2);
  auto store = fx.make(dir);
  const DurableState st = store->open();  // must not throw
  EXPECT_TRUE(st.snapshot_fell_back);
  EXPECT_FALSE(st.own_image_verified);
  // Degraded but consistent: only the post-snapshot tail is in the log.
  ASSERT_EQ(st.subs.size(), 1u);
  EXPECT_EQ(st.subs[0].id.local, 1u);
}

TEST(BrokerStore, TruncatedSnapshotAndBadMagicFallBack) {
  StoreFixture fx;
  for (const bool truncate : {true, false}) {
    const std::string dir = scratch_dir() + (truncate ? "/t" : "/m");
    fs::create_directories(dir);
    {
      auto store = fx.make(dir);
      store->open();
      std::vector<model::OwnedSubscription> subs{fx.sub(0, "AAA")};
      store->log_subscribe(subs[0]);
      store->commit();
      BrokerStore::SnapshotInput in;
      in.next_local = 1;
      in.subs = &subs;
      in.merged_brokers = {0};
      in.merged_epochs = {store->epoch()};
      const auto held = core::BrokerSummary::rebuild(fx.schema, core::GeneralizePolicy::kSafe,
                                                     subs);
      in.held = &held;
      store->write_snapshot(in);
    }
    if (truncate) {
      fs::resize_file(dir + "/snapshot", fs::file_size(dir + "/snapshot") - 3);
    } else {
      corrupt_byte(dir + "/snapshot", 0);  // magic byte
    }
    auto store = fx.make(dir);
    const DurableState st = store->open();
    EXPECT_TRUE(st.snapshot_fell_back);
    EXPECT_TRUE(st.subs.empty());  // log was truncated at compaction
  }
}

TEST(BrokerStore, TornWalTailIsDiscardedAndLogHealed) {
  StoreFixture fx;
  const std::string dir = scratch_dir();
  {
    auto store = fx.make(dir);
    store->open();
    store->log_subscribe(fx.sub(0, "AAA"));
    store->commit();
  }
  append_raw(dir + "/wal", std::vector<std::byte>(11, std::byte{0x99}));
  {
    auto store = fx.make(dir);
    const DurableState st = store->open();
    EXPECT_TRUE(st.wal_torn);
    ASSERT_EQ(st.subs.size(), 1u);
    store->log_subscribe(fx.sub(1, "BBB"));  // appends after the healed tail
    store->commit();
  }
  auto store = fx.make(dir);
  const DurableState st = store->open();
  EXPECT_FALSE(st.wal_torn);
  EXPECT_EQ(st.subs.size(), 2u);
}

TEST(BrokerStore, CorruptEpochFileIsDistrustedNotFatal) {
  StoreFixture fx;
  const std::string dir = scratch_dir();
  {
    auto store = fx.make(dir);
    store->open();
  }
  corrupt_byte(dir + "/epoch", 3);
  auto store = fx.make(dir);
  const DurableState st = store->open();
  EXPECT_GE(st.epoch, 1u);  // restarts from scratch rather than crashing
}

}  // namespace
}  // namespace subsum::store
