// Client/Cluster lifecycle edges: close semantics, double stop, EOF
// mid-frame, and notification queues surviving connection shutdown.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/cluster.h"
#include "overlay/topologies.h"
#include "workload/stock_schema.h"

namespace subsum::net {
namespace {

using namespace std::chrono_literals;
using model::Op;
using model::Schema;
using model::SubscriptionBuilder;

Schema schema_v() { return workload::stock_schema(); }

TEST(ClientEdge, RpcAfterCloseThrows) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1));
  auto client = cluster.connect(0);
  client->close();
  EXPECT_THROW(
      client->subscribe(SubscriptionBuilder(s).where("price", Op::kGt, 1.0).build()),
      NetError);
  EXPECT_THROW(client->publish(model::EventBuilder(s).set("price", 1.0).build()),
               NetError);
}

TEST(ClientEdge, CloseIsIdempotent) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1));
  auto client = cluster.connect(0);
  client->close();
  EXPECT_NO_THROW(client->close());
}

TEST(ClientEdge, QueuedNotificationsSurviveUntilDrained) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1));
  auto subscriber = cluster.connect(0);
  subscriber->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "q").build());
  auto publisher = cluster.connect(0);
  for (int i = 0; i < 5; ++i) {
    publisher->publish(
        model::EventBuilder(s).set("symbol", "q").set("volume", int64_t{i}).build());
  }
  // All five are queued (publish is synchronous); drain without waiting.
  int got = 0;
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (got < 5 && std::chrono::steady_clock::now() < deadline) {
    got += static_cast<int>(subscriber->drain_notifications().size());
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(got, 5);
}

TEST(ClientEdge, NextNotificationTimesOutCleanly) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1));
  auto client = cluster.connect(0);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(client->next_notification(50ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 40ms);
}

TEST(ClusterEdge, StopIsIdempotentAndKillsRpcs) {
  const Schema s = schema_v();
  auto cluster = std::make_unique<Cluster>(s, overlay::line(2));
  auto client = cluster->connect(0);
  client->subscribe(SubscriptionBuilder(s).where("price", Op::kGt, 1.0).build());
  cluster->stop();
  cluster->stop();  // no-op
  // RPCs now fail rather than hang.
  EXPECT_THROW(
      {
        client->subscribe(SubscriptionBuilder(s).where("price", Op::kGt, 2.0).build());
        client->subscribe(SubscriptionBuilder(s).where("price", Op::kGt, 3.0).build());
      },
      NetError);
}

TEST(FramingEdge, PeerClosingMidFrameRaises) {
  Listener listener(0);
  std::thread server([&] {
    auto sock = listener.accept();
    ASSERT_TRUE(sock.has_value());
    // Announce a 100-byte payload but send only 3 bytes, then close.
    util::BufWriter w;
    w.put_u32(100);
    w.put_u8(static_cast<uint8_t>(MsgKind::kPublish));
    w.put_u8(1);
    w.put_u8(2);
    w.put_u8(3);
    sock->send_all(w.bytes());
  });
  Socket c = connect_local(listener.port());
  EXPECT_THROW((void)recv_frame(c), NetError);
  server.join();
}

TEST(FramingEdge, DeclaredOversizePayloadRejectedBeforeAllocation) {
  Listener listener(0);
  std::thread server([&] {
    auto sock = listener.accept();
    ASSERT_TRUE(sock.has_value());
    util::BufWriter w;
    w.put_u32(0xFFFFFFFF);  // 4 GiB claim
    w.put_u8(static_cast<uint8_t>(MsgKind::kPublish));
    sock->send_all(w.bytes());
    // Keep the socket open so the reader sees the header, not EOF.
    std::this_thread::sleep_for(100ms);
  });
  Socket c = connect_local(listener.port());
  EXPECT_THROW((void)recv_frame(c), NetError);
  server.join();
}

}  // namespace
}  // namespace subsum::net
