// Chaos suite (ctest label "chaos"): randomized kill/restart churn on the
// paper's Fig. 7 13-broker tree, plus a blackholed-link publish bound.
// These run longer than the unit tier and exercise every fault path at
// once: degraded walks, redelivery queues, propagation reports, client
// reconnects, and state-based self-healing.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <vector>

#include "net/cluster.h"
#include "net/fault_injector.h"
#include "overlay/topologies.h"
#include "util/rng.h"
#include "workload/stock_schema.h"

namespace subsum::net {
namespace {

using namespace std::chrono_literals;
using model::EventBuilder;
using model::Op;
using model::Schema;
using model::SubId;
using model::SubscriptionBuilder;
using overlay::BrokerId;

RpcPolicy tight_policy() {
  RpcPolicy p;
  p.connect_timeout = 200ms;
  p.io_timeout = 1000ms;
  p.backoff = {5ms, 40ms, 2};
  return p;
}

ClientOptions tight_client() {
  ClientOptions o;
  o.connect_timeout = 500ms;
  o.rpc_timeout = 30000ms;
  o.backoff = {5ms, 40ms, 4};
  return o;
}

// Five propagation periods of churn on fig-7: each period two random
// brokers die, a publish happens mid-churn, propagation runs (reporting
// exactly the dead pair), both brokers restart and their subscribers
// re-subscribe. After two healing periods, an event published at EVERY
// broker must reach EVERY subscriber exactly once.
TEST(Chaos, KillRestartChurnOnFig7Tree) {
  const Schema s = workload::stock_schema();
  const overlay::Graph g = overlay::fig7_tree();
  const size_t n = g.size();
  Cluster cluster(s, g, core::GeneralizePolicy::kSafe, tight_policy());

  const auto sub = SubscriptionBuilder(s).where("symbol", Op::kEq, "chaos").build();
  std::vector<std::unique_ptr<Client>> clients(n);
  std::vector<SubId> ids(n);
  for (BrokerId b = 0; b < n; ++b) {
    clients[b] = cluster.connect(b, tight_client());
    ids[b] = clients[b]->subscribe(sub);
  }
  ASSERT_TRUE(cluster.run_propagation_period().complete());

  util::Rng rng(77);
  for (int period = 0; period < 5; ++period) {
    const auto a = static_cast<BrokerId>(rng.below(n));
    BrokerId c = a;
    while (c == a) c = static_cast<BrokerId>(rng.below(n));
    cluster.kill(a);
    cluster.kill(c);
    clients[a].reset();
    clients[c].reset();

    // Publishing mid-churn must complete (degraded walk + queued
    // redeliveries), not hang; deliveries to dead brokers are best-effort.
    BrokerId origin = 0;
    while (origin == a || origin == c) ++origin;
    clients[origin]->publish(
        EventBuilder(s).set("symbol", "chaos").set("volume", int64_t{period}).build());

    const auto report = cluster.run_propagation_period();
    for (BrokerId dead : report.unreachable) {
      EXPECT_TRUE(dead == a || dead == c) << "unexpected unreachable broker " << dead;
    }

    cluster.restart(a);
    cluster.restart(c);
    for (BrokerId b : {a, c}) {
      clients[b] = cluster.connect(b, tight_client());
      // The restarted broker's id counter reset, so the identical
      // subscription reclaims its old id and stale rows on peers stay
      // consistent.
      EXPECT_EQ(clients[b]->subscribe(sub), ids[b]);
    }
  }

  // Heal: two full periods re-propagate every summary and flush any
  // queued redeliveries from the churn phase.
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  for (auto& c : clients) (void)c->drain_notifications();

  // Steady state: one event per origin broker, delivered exactly once to
  // all 13 subscribers.
  for (BrokerId b = 0; b < n; ++b) {
    clients[b]->publish(
        EventBuilder(s).set("symbol", "chaos").set("volume", int64_t{100 + b}).build());
  }
  const auto volume_attr = s.id_of("volume");
  for (BrokerId b = 0; b < n; ++b) {
    std::multiset<int64_t> got;
    while (got.size() < n) {
      const auto note = clients[b]->next_notification(5000ms);
      ASSERT_TRUE(note.has_value()) << "subscriber " << b << " missing events; got "
                                    << got.size() << " of " << n;
      ASSERT_EQ(note->ids, std::vector<SubId>{ids[b]});
      const auto* v = note->event.find(volume_attr);
      ASSERT_NE(v, nullptr);
      got.insert(v->as_int());
    }
    std::multiset<int64_t> want;
    for (BrokerId o = 0; o < n; ++o) want.insert(100 + o);
    EXPECT_EQ(got, want) << "subscriber " << b << " saw duplicates or wrong events";
  }
  // No strays beyond the expected set.
  EXPECT_FALSE(clients[0]->next_notification(100ms).has_value());
}

// A blackholed inter-broker link must bound the publish (deadline + capped
// retries, well under 2x the per-hop budget), queue the delivery, and
// redeliver once the link heals.
TEST(Chaos, BlackholedLinkBoundsPublishThenRedelivers) {
  const Schema s = workload::stock_schema();
  const RpcPolicy rpc = tight_policy();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, rpc);

  auto subscriber = cluster.connect(1, tight_client());
  const SubId id = subscriber->subscribe(
      SubscriptionBuilder(s).where("symbol", Op::kEq, "hole").build());
  ASSERT_TRUE(cluster.run_propagation_period().complete());

  // Interpose on broker 0 -> broker 1 and swallow everything.
  FaultInjector inj(cluster.port_of(1));
  inj.set_mode(FaultInjector::Mode::kBlackhole);
  cluster.node(0).set_peer_ports({cluster.port_of(0), inj.port()});

  auto publisher = cluster.connect(0, tight_client());
  const auto t0 = std::chrono::steady_clock::now();
  publisher->publish(EventBuilder(s).set("symbol", "hole").build());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Budget per dead-peer encounter: max_attempts blocked round-trips plus
  // backoff sleeps. The walk hits the blackhole for the kDeliver; assert
  // the 2x bound on the total budget.
  const auto budget = rpc.backoff.max_attempts * (rpc.connect_timeout + rpc.io_timeout) +
                      rpc.backoff.max_attempts * rpc.backoff.cap;
  EXPECT_LT(elapsed, 2 * budget);
  EXPECT_GE(elapsed, rpc.io_timeout);  // it really waited out a deadline
  EXPECT_EQ(cluster.node(0).snapshot().pending_redeliveries, 1u);
  EXPECT_FALSE(subscriber->next_notification(100ms).has_value());

  // Heal the link; the next propagation period flushes the queue.
  inj.set_mode(FaultInjector::Mode::kPass);
  inj.sever_connections();
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  const auto note = subscriber->next_notification(2000ms);
  ASSERT_TRUE(note.has_value());
  EXPECT_EQ(note->ids, std::vector<SubId>{id});
  EXPECT_EQ(cluster.node(0).snapshot().pending_redeliveries, 0u);
}

}  // namespace
}  // namespace subsum::net
