#!/usr/bin/env bash
# Crash-recovery test of the CLI tools: a 2-broker deployment where broker 1
# runs with --data-dir, gets SIGKILLed (kill -9, no shutdown hooks), and is
# restarted on the same directory. The subscriber (running with --retry 1)
# must receive a post-restart event WITHOUT re-subscribing, and the restarted
# broker must report a recovered subscription and a bumped epoch.
# Usage: cli_recovery.sh <build_dir>
set -u

BUILD=${1:?usage: cli_recovery.sh <build_dir>}
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$WORK"' EXIT

cat > "$WORK/deploy.conf" <<EOF
attribute exchange string
attribute symbol string
attribute sector string
attribute currency string
attribute when int
attribute price float
attribute volume int
attribute high float
attribute low float
attribute open float
topology line 2
EOF

start_broker1() {
  "$BUILD/tools/subsum_broker" --config "$WORK/deploy.conf" --id 1 \
      --port $((BASE+1)) --peers "$PORTS" --data-dir "$WORK/broker1-data" \
      >> "$WORK/broker1.log" 2>&1 &
  B1=$!
}

# Random base port with retry on clashes (see cli_smoke.sh).
started=0
for attempt in 1 2 3 4 5; do
  BASE=$(( 10000 + (RANDOM % 20000) ))
  PORTS="$BASE,$((BASE+1))"

  "$BUILD/tools/subsum_broker" --config "$WORK/deploy.conf" --id 0 \
      --port $BASE --peers "$PORTS" --propagate-every 1 \
      > "$WORK/broker0.log" 2>&1 &
  : > "$WORK/broker1.log"
  start_broker1

  started=1
  for i in 0 1; do
    ok=0
    for _ in $(seq 1 50); do
      if grep -q "listening" "$WORK/broker$i.log" 2>/dev/null; then ok=1; break; fi
      if grep -q "broker failed" "$WORK/broker$i.log" 2>/dev/null; then break; fi
      sleep 0.1
    done
    [ "$ok" = 1 ] || { started=0; break; }
  done
  [ "$started" = 1 ] && break
  echo "attempt $attempt: port clash at base $BASE, retrying"
  kill $(jobs -p) 2>/dev/null
  wait 2>/dev/null
  rm -rf "$WORK/broker1-data"
done
[ "$started" = 1 ] || { echo "brokers failed to start"; cat "$WORK"/broker*.log; exit 1; }

grep -q "epoch 1" "$WORK/broker1.log" || {
  echo "durable broker did not report its epoch:"; cat "$WORK/broker1.log"; exit 1; }

# Subscriber on the durable broker; --retry 1 rides out the crash window.
timeout 90 "$BUILD/tools/subsum_sub" --config "$WORK/deploy.conf" --port $((BASE+1)) \
    --count 1 --retry 1 'symbol = OTE AND price > 8.00' > "$WORK/sub.log" 2>&1 &
SUB=$!

# Wait for the subscription to land and one propagation period to spread it.
for _ in $(seq 1 50); do
  grep -q "subscribed" "$WORK/sub.log" 2>/dev/null && break
  sleep 0.1
done
grep -q "subscribed" "$WORK/sub.log" || {
  echo "subscriber failed to subscribe:"; cat "$WORK/sub.log"; exit 1; }
sleep 2.5

# The crash: no SIGTERM, no atexit — the WAL is all that survives.
kill -9 "$B1"
wait "$B1" 2>/dev/null

start_broker1
for _ in $(seq 1 50); do
  grep -q "epoch 2" "$WORK/broker1.log" 2>/dev/null && break
  sleep 0.1
done
grep -q "epoch 2 (recovered 1 subscriptions" "$WORK/broker1.log" || {
  echo "restarted broker did not recover:"; cat "$WORK/broker1.log"; exit 1; }

# Give the subscriber a poll cycle to reconnect + re-attach, then publish
# from broker 0. The pre-crash subscription must fire — no re-subscribe ran.
sleep 1
timeout 30 "$BUILD/tools/subsum_pub" --config "$WORK/deploy.conf" --port $BASE \
    'price = 8.40, symbol = OTE' > "$WORK/pub.log" 2>&1 \
    || { echo "publish failed or timed out"; cat "$WORK/pub.log"; exit 1; }

for _ in $(seq 1 60); do
  kill -0 "$SUB" 2>/dev/null || break
  sleep 0.25
done
if kill -0 "$SUB" 2>/dev/null; then
  echo "subscriber never got the post-recovery notification"
  cat "$WORK/sub.log" "$WORK"/broker*.log; exit 1
fi

grep -q 'event .*OTE.* -> S(1.0)' "$WORK/sub.log" || {
  echo "unexpected subscriber output:"; cat "$WORK/sub.log"; exit 1; }

echo "cli recovery test passed"
exit 0
