#include <gtest/gtest.h>

#include "core/interval.h"
#include "util/rng.h"

namespace subsum::core {
namespace {

using model::Op;

TEST(Pos, Ordering) {
  EXPECT_LT(Pos::at(1.0), Pos::at(2.0));
  EXPECT_LT((Pos{1.0, -1}), (Pos{1.0, 0}));
  EXPECT_LT((Pos{1.0, 0}), (Pos{1.0, +1}));
  EXPECT_LT((Pos{1.0, +1}), (Pos{2.0, -1}));
  EXPECT_LT(Pos::neg_inf(), Pos::at(-1e300));
  EXPECT_LT(Pos::at(1e300), Pos::pos_inf());
}

TEST(Pos, SuccPred) {
  EXPECT_EQ(Pos::at(5.0).succ(), (Pos{5.0, +1}));
  EXPECT_EQ(Pos::at(5.0).pred(), (Pos{5.0, -1}));
  EXPECT_EQ((Pos{5.0, -1}).succ(), Pos::at(5.0));
}

TEST(Interval, Contains) {
  const Interval closed{Pos::at(1), Pos::at(2)};  // [1, 2]
  EXPECT_TRUE(closed.contains(1));
  EXPECT_TRUE(closed.contains(1.5));
  EXPECT_TRUE(closed.contains(2));
  EXPECT_FALSE(closed.contains(0.999));
  EXPECT_FALSE(closed.contains(2.001));

  const Interval open{Pos::at(1).succ(), Pos::at(2).pred()};  // (1, 2)
  EXPECT_FALSE(open.contains(1));
  EXPECT_FALSE(open.contains(2));
  EXPECT_TRUE(open.contains(1.5));
}

TEST(Interval, Factories) {
  EXPECT_TRUE(Interval::all().contains(0));
  EXPECT_TRUE(Interval::all().contains(-1e308));
  EXPECT_TRUE(Interval::point(3).contains(3));
  EXPECT_FALSE(Interval::point(3).contains(3.0001));
  EXPECT_TRUE(Interval::point(3).is_point());
  EXPECT_TRUE(Interval::less_than(5).contains(4.999));
  EXPECT_FALSE(Interval::less_than(5).contains(5));
  EXPECT_TRUE(Interval::at_most(5).contains(5));
  EXPECT_TRUE(Interval::greater_than(5).contains(5.001));
  EXPECT_FALSE(Interval::greater_than(5).contains(5));
  EXPECT_TRUE(Interval::at_least(5).contains(5));
}

TEST(Interval, OverlapsAndTouches) {
  const Interval a{Pos::at(1), Pos::at(2)};
  const Interval b{Pos::at(2), Pos::at(3)};
  EXPECT_TRUE(a.overlaps(b));  // share point 2
  const Interval c{Pos::at(2).succ(), Pos::at(3)};  // (2, 3]
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(a.touches(c));  // [1,2] U (2,3] = [1,3]
  const Interval d{Pos::at(3), Pos::at(4)};
  EXPECT_FALSE(a.touches(d));
  // (-inf, 2) and (2, inf) do NOT touch: 2 itself is missing.
  EXPECT_FALSE(Interval::less_than(2).touches(Interval::greater_than(2)));
  // (-inf, 2) and [2, inf) touch.
  EXPECT_TRUE(Interval::less_than(2).touches(Interval::at_least(2)));
}

TEST(IntervalSet, FromConstraint) {
  EXPECT_TRUE(IntervalSet::from_constraint(Op::kEq, 5).contains(5));
  EXPECT_FALSE(IntervalSet::from_constraint(Op::kEq, 5).contains(5.1));

  const auto ne = IntervalSet::from_constraint(Op::kNe, 5);
  EXPECT_EQ(ne.intervals().size(), 2u);
  EXPECT_TRUE(ne.contains(4.999));
  EXPECT_FALSE(ne.contains(5));
  EXPECT_TRUE(ne.contains(5.001));

  EXPECT_TRUE(IntervalSet::from_constraint(Op::kLt, 5).contains(-1e308));
  EXPECT_FALSE(IntervalSet::from_constraint(Op::kLt, 5).contains(5));
  EXPECT_TRUE(IntervalSet::from_constraint(Op::kLe, 5).contains(5));
  EXPECT_TRUE(IntervalSet::from_constraint(Op::kGt, 5).contains(1e308));
  EXPECT_FALSE(IntervalSet::from_constraint(Op::kGt, 5).contains(5));
  EXPECT_TRUE(IntervalSet::from_constraint(Op::kGe, 5).contains(5));

  EXPECT_THROW(IntervalSet::from_constraint(Op::kPrefix, 5), std::invalid_argument);
}

TEST(IntervalSet, NormalizationMergesTouching) {
  // [1,2] U (2,3] U [5,6] -> [1,3], [5,6]
  const auto s = IntervalSet::of({{Pos::at(5), Pos::at(6)},
                                  {Pos::at(1), Pos::at(2)},
                                  {Pos::at(2).succ(), Pos::at(3)}});
  ASSERT_EQ(s.intervals().size(), 2u);
  EXPECT_EQ(s.intervals()[0], (Interval{Pos::at(1), Pos::at(3)}));
  EXPECT_EQ(s.intervals()[1], (Interval{Pos::at(5), Pos::at(6)}));
}

TEST(IntervalSet, NormalizationKeepsHoles) {
  // (-inf,2) U (2,inf) stays two intervals.
  const auto s = IntervalSet::of({Interval::less_than(2), Interval::greater_than(2)});
  EXPECT_EQ(s.intervals().size(), 2u);
}

TEST(IntervalSet, IntersectBasics) {
  const auto a = IntervalSet::from_constraint(Op::kGt, 8.30);
  const auto b = IntervalSet::from_constraint(Op::kLt, 8.70);
  const auto both = a.intersect(b);  // (8.30, 8.70)
  EXPECT_TRUE(both.contains(8.40));
  EXPECT_FALSE(both.contains(8.30));
  EXPECT_FALSE(both.contains(8.70));
  EXPECT_FALSE(both.contains(9.0));
}

TEST(IntervalSet, IntersectEmptyResult) {
  const auto a = IntervalSet::from_constraint(Op::kGt, 10.0);
  const auto b = IntervalSet::from_constraint(Op::kLt, 5.0);
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(IntervalSet, IntersectWithNe) {
  // x > 1 AND x != 3: hole at 3.
  const auto s = IntervalSet::from_constraint(Op::kGt, 1.0)
                     .intersect(IntervalSet::from_constraint(Op::kNe, 3.0));
  EXPECT_EQ(s.intervals().size(), 2u);
  EXPECT_TRUE(s.contains(2));
  EXPECT_FALSE(s.contains(3));
  EXPECT_TRUE(s.contains(4));
  EXPECT_FALSE(s.contains(1));
}

TEST(IntervalSet, EqIntersectNeIsEmpty) {
  const auto s = IntervalSet::from_constraint(Op::kEq, 3.0)
                     .intersect(IntervalSet::from_constraint(Op::kNe, 3.0));
  EXPECT_TRUE(s.empty());
}

// Property: intersection of random constraint sets agrees with evaluating
// the constraints directly on sample points.
class IntervalSetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSetProperty, IntersectionAgreesWithDirectEvaluation) {
  util::Rng rng(GetParam());
  const Op ops[] = {Op::kEq, Op::kNe, Op::kLt, Op::kLe, Op::kGt, Op::kGe};
  for (int trial = 0; trial < 200; ++trial) {
    const size_t k = 1 + rng.below(3);
    std::vector<std::pair<Op, double>> cs;
    IntervalSet set = IntervalSet::all();
    for (size_t i = 0; i < k; ++i) {
      // Small integer operands make coincidences (the interesting cases)
      // frequent.
      const Op op = ops[rng.below(6)];
      const double v = static_cast<double>(rng.range_i64(-3, 3));
      cs.emplace_back(op, v);
      set = set.intersect(IntervalSet::from_constraint(op, v));
    }
    for (double x = -4.0; x <= 4.0; x += 0.5) {
      bool direct = true;
      for (const auto& [op, v] : cs) {
        switch (op) {
          case Op::kEq: direct &= (x == v); break;
          case Op::kNe: direct &= (x != v); break;
          case Op::kLt: direct &= (x < v); break;
          case Op::kLe: direct &= (x <= v); break;
          case Op::kGt: direct &= (x > v); break;
          case Op::kGe: direct &= (x >= v); break;
          default: break;
        }
      }
      EXPECT_EQ(set.contains(x), direct) << "x=" << x << " set=" << set.to_string();
    }
    // Invariant: intervals sorted, disjoint, non-touching.
    const auto& ivs = set.intervals();
    for (size_t i = 0; i + 1 < ivs.size(); ++i) {
      EXPECT_LT(ivs[i].hi, ivs[i + 1].lo);
      EXPECT_FALSE(ivs[i].touches(ivs[i + 1]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace subsum::core
