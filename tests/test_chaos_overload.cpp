// Chaos suite (ctest label "chaos"; CI job chaos-overload runs -R Overload):
// graceful degradation under a publish storm with a stalled consumer. A
// subscriber on the fig-7 tree stops draining its socket (FaultInjector
// stall_reads: real TCP backpressure, not a simulated drop) while a
// publisher storms 10x the steady rate. The governor must bound every
// queue (peak accounted bytes under budget), keep healthy subscribers
// receiving, shed ONLY data-plane classes — the control-plane shed counter
// stays zero on every broker — and, once the stall lifts, converge every
// summary link within two quiet periods.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "net/cluster.h"
#include "net/fault_injector.h"
#include "net/governor.h"
#include "overlay/topologies.h"
#include "util/rng.h"
#include "workload/stock_schema.h"

namespace subsum::net {
namespace {

using namespace std::chrono_literals;
using model::EventBuilder;
using model::Op;
using model::Schema;
using model::SubscriptionBuilder;
using overlay::BrokerId;

RpcPolicy tight_policy() {
  RpcPolicy p;
  p.connect_timeout = 200ms;
  p.io_timeout = 1000ms;
  p.backoff = {5ms, 40ms, 2};
  return p;
}

ClientOptions tight_client() {
  ClientOptions o;
  o.connect_timeout = 500ms;
  o.rpc_timeout = 30000ms;
  o.backoff = {5ms, 40ms, 4};
  return o;
}

TEST(OverloadChaos, StormWithStalledConsumerDegradesGracefullyAndConverges) {
  const Schema s = workload::stock_schema();
  const overlay::Graph g = overlay::fig7_tree();
  const size_t n = g.size();
  constexpr size_t kBudget = 1u << 20;
  Cluster cluster(s, g, core::GeneralizePolicy::kSafe, tight_policy(), {},
                  [](BrokerConfig& cfg) {
                    cfg.governor.conn_queue_max_bytes = 128u << 10;
                    cfg.governor.write_stall_timeout = 500ms;
                    cfg.governor.memory_budget_bytes = kBudget;
                    // Bound kernel-side buffering so the stalled proxy
                    // backpressures the writer within tens of KB.
                    cfg.governor.conn_sndbuf_bytes = 64u << 10;
                  });

  // Stalled consumer: a real client whose whole connection runs through a
  // fault-injector proxy. Subscribing happens while the path is healthy;
  // then the proxy stops draining and the broker-side writer faces genuine
  // TCP backpressure.
  const BrokerId stall_broker = 2;
  auto inj = std::make_unique<FaultInjector>(cluster.port_of(stall_broker));
  auto stalled = std::make_unique<Client>(inj->port(), s, tight_client());
  stalled->subscribe(
      SubscriptionBuilder(s).where("symbol", Op::kEq, "storm").build());

  // Healthy subscribers on other brokers, matching the same storm.
  std::vector<std::unique_ptr<Client>> healthy;
  const std::vector<BrokerId> healthy_brokers = {0, 4, 6};
  for (BrokerId b : healthy_brokers) {
    auto c = cluster.connect(b, tight_client());
    c->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "storm").build());
    healthy.push_back(std::move(c));
  }
  // One propagation period spreads the summaries so remote walks route.
  ASSERT_TRUE(cluster.run_propagation_period().complete());

  // Storm: 10x the steady rate (no pacing at all), big payloads, while the
  // stalled consumer's proxy refuses to drain for the whole storm.
  inj->stall_reads(20'000ms);
  ASSERT_TRUE(inj->stalled());
  auto publisher = cluster.connect(1, tight_client());
  const std::string blob(16u << 10, 's');
  constexpr int kEvents = 60;
  for (int i = 0; i < kEvents; ++i) {
    publisher->publish(EventBuilder(s)
                           .set("symbol", "storm")
                           .set("exchange", blob)
                           .set("volume", int64_t{i})
                           .build());
  }

  // Healthy subscribers kept receiving through the storm (drop-oldest may
  // cost a transient backlog, never a starvation).
  for (size_t h = 0; h < healthy.size(); ++h) {
    int got = 0;
    while (got < kEvents) {
      const auto note = healthy[h]->next_notification(got == 0 ? 5000ms : 2000ms);
      if (!note.has_value()) break;
      ++got;
    }
    EXPECT_GE(got, kEvents / 2)
        << "healthy subscriber on broker " << healthy_brokers[h] << " starved";
  }

  // Queue accounting stayed under the global budget on every broker, and
  // control traffic was never shed anywhere.
  uint64_t notify_sheds = 0;
  for (BrokerId b = 0; b < n; ++b) {
    const Governor& gov = cluster.node(b).governor();
    EXPECT_LE(gov.peak_usage(), kBudget) << "broker " << b << " blew its budget";
    EXPECT_EQ(gov.shed_count(Governor::Shed::kControl), 0u)
        << "broker " << b << " shed control traffic";
    notify_sheds += gov.shed_count(Governor::Shed::kNotify);
  }
  // The stalled consumer actually forced the slow-consumer policy to act.
  EXPECT_GT(notify_sheds, 0u);

  // Heal: lift the stall, drop the stalled client (its connection may
  // already have been cut by the write deadline), and require full summary
  // convergence within two quiet periods — overload must not have wounded
  // the control plane.
  inj->stall_reads(0ms);
  stalled->close();
  stalled.reset();
  inj->stop();
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  for (BrokerId receiver = 0; receiver < n; ++receiver) {
    for (const auto& [sender, shadow_digest] : cluster.node(receiver).shadow_digests()) {
      EXPECT_EQ(shadow_digest, cluster.node(sender).held_digest())
          << "link " << sender << " -> " << receiver << " diverged";
    }
  }
}

}  // namespace
}  // namespace subsum::net
