#include <gtest/gtest.h>

#include <algorithm>

#include "overlay/topologies.h"
#include "sim/system.h"
#include "util/rng.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace subsum::sim {
namespace {

using model::Event;
using model::EventBuilder;
using model::Op;
using model::SubId;
using model::Subscription;
using model::SubscriptionBuilder;
using overlay::BrokerId;

SystemConfig make_config(overlay::Graph g) {
  SystemConfig cfg;
  cfg.schema = workload::stock_schema();
  cfg.graph = std::move(g);
  return cfg;
}

TEST(SimSystem, LocalMatchBeforePropagation) {
  SimSystem sys(make_config(overlay::fig7_tree()));
  const auto sub =
      SubscriptionBuilder(sys.schema()).where("symbol", Op::kEq, "OTE").build();
  const SubId id = sys.subscribe(3, sub);
  EXPECT_EQ(id.broker, 3u);

  // Published at the home broker: matches immediately (local knowledge).
  const auto e = EventBuilder(sys.schema()).set("symbol", "OTE").build();
  const auto at_home = sys.publish(3, e);
  EXPECT_EQ(at_home.delivered, std::vector<SubId>{id});

  // Published elsewhere before any propagation period: the BROCLI walk
  // still finds the match (completeness is unconditional), but it has to
  // visit every broker because all Merged_Brokers sets are singletons.
  const auto remote = sys.publish(0, e);
  EXPECT_EQ(remote.delivered, std::vector<SubId>{id});
  EXPECT_EQ(remote.route.visited.size(), sys.broker_count());

  // After the period the same publish needs far fewer visits: that is the
  // hop saving of multi-broker summaries (paper fig 10).
  sys.run_propagation_period();
  const auto after = sys.publish(0, e);
  EXPECT_EQ(after.delivered, std::vector<SubId>{id});
  EXPECT_LT(after.route.visited.size(), remote.route.visited.size() / 2);
}

TEST(SimSystem, SubIdsAssignedSequentially) {
  SimSystem sys(make_config(overlay::fig7_tree()));
  const auto sub =
      SubscriptionBuilder(sys.schema()).where("price", Op::kGt, 1.0).build();
  EXPECT_EQ(sys.subscribe(2, sub).local, 0u);
  EXPECT_EQ(sys.subscribe(2, sub).local, 1u);
  EXPECT_EQ(sys.subscribe(5, sub).local, 0u);
  EXPECT_THROW(sys.subscribe(99, sub), std::invalid_argument);
}

TEST(SimSystem, UnsubscribeStopsDeliveryEverywhere) {
  SimSystem sys(make_config(overlay::fig7_tree()));
  const auto sub =
      SubscriptionBuilder(sys.schema()).where("symbol", Op::kEq, "OTE").build();
  const SubId id = sys.subscribe(3, sub);
  sys.run_propagation_period();

  const auto e = EventBuilder(sys.schema()).set("symbol", "OTE").build();
  ASSERT_EQ(sys.publish(0, e).delivered.size(), 1u);

  sys.unsubscribe(id);
  // Home broker stops matching immediately.
  EXPECT_TRUE(sys.publish(3, e).delivered.empty());
  // Remote copies disappear with the next maintenance period; even before
  // that, the home re-filter drops the stale candidate.
  EXPECT_TRUE(sys.publish(0, e).delivered.empty());
  sys.run_propagation_period();
  EXPECT_TRUE(sys.publish(0, e).delivered.empty());
  EXPECT_TRUE(sys.publish(0, e).candidates.empty()) << "stale summary rows remain";
}

TEST(SimSystem, AccountingLedger) {
  SimSystem sys(make_config(overlay::fig7_tree()));
  const auto sub =
      SubscriptionBuilder(sys.schema()).where("symbol", Op::kEq, "OTE").build();
  sys.subscribe(3, sub);
  EXPECT_EQ(sys.accounting().total_messages(), 0u);
  sys.run_propagation_period();
  EXPECT_EQ(sys.accounting().messages(MsgType::kSummary), 10u);  // fig-7 hops
  EXPECT_GT(sys.accounting().bytes(MsgType::kSummary), 0u);

  const auto e = EventBuilder(sys.schema()).set("symbol", "OTE").build();
  sys.publish(0, e);
  EXPECT_GT(sys.accounting().messages(MsgType::kEventForward), 0u);
  EXPECT_EQ(sys.accounting().messages(MsgType::kEventDelivery), 1u);
}

TEST(SimSystem, CandidatesSupersetOfDelivered) {
  SimSystem sys(make_config(overlay::fig7_tree()));
  // A generalizing prefix subscription plus an equality one: SACS merges
  // them into the prefix row, creating a false-positive candidate.
  const auto wide =
      SubscriptionBuilder(sys.schema()).where("symbol", Op::kPrefix, "m").build();
  const auto narrow =
      SubscriptionBuilder(sys.schema()).where("symbol", Op::kEq, "microsoft").build();
  sys.subscribe(3, wide);
  const SubId narrow_id = sys.subscribe(3, narrow);
  sys.run_propagation_period();

  const auto e = EventBuilder(sys.schema()).set("symbol", "mango").build();
  const auto out = sys.publish(0, e);
  // "mango" satisfies the prefix but not "microsoft": candidate, not
  // delivered.
  EXPECT_TRUE(std::find(out.candidates.begin(), out.candidates.end(), narrow_id) !=
              out.candidates.end());
  EXPECT_TRUE(std::find(out.delivered.begin(), out.delivered.end(), narrow_id) ==
              out.delivered.end());
  EXPECT_TRUE(std::includes(out.candidates.begin(), out.candidates.end(),
                            out.delivered.begin(), out.delivered.end()));
}

TEST(SimSystem, SummaryStorageBytesGrow) {
  SimSystem sys(make_config(overlay::cable_wireless_24()));
  const size_t before = sys.summary_storage_bytes();
  workload::SubscriptionGenerator gen(sys.schema(), {}, 17);
  for (BrokerId b = 0; b < sys.broker_count(); ++b) {
    for (int i = 0; i < 5; ++i) sys.subscribe(b, gen.next());
  }
  sys.run_propagation_period();
  EXPECT_GT(sys.summary_storage_bytes(), before);
}

// End-to-end exactness: the distributed system delivers exactly what a
// global naive matcher over all subscriptions would, for any workload,
// origin, and number of propagation periods.
struct E2ECase {
  uint64_t seed;
  double subsumption;
  int periods;
};

class SimSystemE2E : public ::testing::TestWithParam<E2ECase> {};

TEST_P(SimSystemE2E, DeliveredEqualsGlobalOracle) {
  const auto param = GetParam();
  SimSystem sys(make_config(overlay::cable_wireless_24()));
  workload::SubGenParams sp;
  sp.subsumption = param.subsumption;
  workload::SubscriptionGenerator gen(sys.schema(), sp, param.seed);
  workload::EventGenerator events(sys.schema(), gen.pools(), {}, param.seed + 1);
  util::Rng rng(param.seed + 2);

  core::NaiveMatcher oracle;
  for (int period = 0; period < param.periods; ++period) {
    for (int i = 0; i < 40; ++i) {
      const auto home = static_cast<BrokerId>(rng.below(sys.broker_count()));
      Subscription sub = gen.next();
      const SubId id = sys.subscribe(home, sub);
      oracle.add({id, std::move(sub)});
    }
    sys.run_propagation_period();
  }

  size_t total = 0;
  for (int i = 0; i < 60; ++i) {
    // Half the events derive from a stored subscription so matches occur.
    Event e = events.next();
    if (i % 2 == 1) {
      const auto& os = oracle.subs()[rng.below(oracle.size())];
      if (auto derived = workload::matching_event(sys.schema(), os.sub)) {
        e = *std::move(derived);
      }
    }
    const auto origin = static_cast<BrokerId>(rng.below(sys.broker_count()));
    const auto out = sys.publish(origin, e);
    EXPECT_EQ(out.delivered, oracle.match(e)) << "event " << i;
    EXPECT_TRUE(std::includes(out.candidates.begin(), out.candidates.end(),
                              out.delivered.begin(), out.delivered.end()));
    total += out.delivered.size();
  }
  EXPECT_GT(total, 0u) << "vacuous workload";
}

INSTANTIATE_TEST_SUITE_P(Cases, SimSystemE2E,
                         ::testing::Values(E2ECase{1, 0.1, 1}, E2ECase{2, 0.5, 2},
                                           E2ECase{3, 0.9, 3}, E2ECase{4, 0.7, 1}));

TEST(SimSystem, UnsubscribeChurnKeepsOracleEquality) {
  SimSystem sys(make_config(overlay::fig7_tree()));
  workload::SubGenParams sp;
  sp.subsumption = 0.6;
  workload::SubscriptionGenerator gen(sys.schema(), sp, 123);
  workload::EventGenerator events(sys.schema(), gen.pools(), {}, 124);
  util::Rng rng(125);

  core::NaiveMatcher oracle;
  std::vector<SubId> live;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 25; ++i) {
      const auto home = static_cast<BrokerId>(rng.below(sys.broker_count()));
      Subscription sub = gen.next();
      const SubId id = sys.subscribe(home, sub);
      oracle.add({id, std::move(sub)});
      live.push_back(id);
    }
    for (int i = 0; i < 10 && !live.empty(); ++i) {
      const size_t at = rng.below(live.size());
      sys.unsubscribe(live[at]);
      oracle.remove(live[at]);
      live.erase(live.begin() + static_cast<long>(at));
    }
    sys.run_propagation_period();
    for (int i = 0; i < 20; ++i) {
      const Event e = events.next();
      const auto out = sys.publish(static_cast<BrokerId>(rng.below(sys.broker_count())), e);
      EXPECT_EQ(out.delivered, oracle.match(e));
    }
  }
}

TEST(SimSystem, SingleBrokerSystemWorks) {
  SimSystem sys(make_config(overlay::Graph(1)));
  const auto sub =
      SubscriptionBuilder(sys.schema()).where("price", Op::kGt, 1.0).build();
  const SubId id = sys.subscribe(0, sub);
  const auto out = sys.publish(0, EventBuilder(sys.schema()).set("price", 2.0).build());
  EXPECT_EQ(out.delivered, std::vector<SubId>{id});
  EXPECT_EQ(out.route.total_hops(), 0u);
}

}  // namespace
}  // namespace subsum::sim
