#include <gtest/gtest.h>

#include <algorithm>

#include "core/matcher.h"
#include "core/summary.h"
#include "model/event.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace subsum::core {
namespace {

using model::Event;
using model::EventBuilder;
using model::Op;
using model::Schema;
using model::SubId;
using model::Subscription;
using model::SubscriptionBuilder;

Schema schema_v() { return workload::stock_schema(); }

TEST(BrokerSummary, PaperExample1EndToEnd) {
  // Figures 2-4 + the worked example of §3.3: broker A has S1, S2; the
  // figure-2 event matches S1 only (S2 wants 4 attributes, only 2 satisfied).
  const Schema s = schema_v();
  BrokerSummary summary(s);

  const Subscription s1 = SubscriptionBuilder(s)
                              .where("exchange", Op::kSuffix, "SE")  // N*SE
                              .where("symbol", Op::kEq, "OTE")
                              .where("price", Op::kLt, 8.70)
                              .where("price", Op::kGt, 8.30)
                              .build();
  const Subscription s2 = SubscriptionBuilder(s)
                              .where("symbol", Op::kPrefix, "OT")
                              .where("price", Op::kEq, 8.20)
                              .where("volume", Op::kGt, int64_t{130000})
                              .where("low", Op::kLt, 8.05)
                              .build();
  const SubId id1{0, 1, s1.mask()};
  const SubId id2{0, 2, s2.mask()};
  summary.add(s1, id1);
  summary.add(s2, id2);

  // AACS for price: one range row (8.30, 8.70) + one equality row 8.20.
  EXPECT_EQ(summary.aacs(s.id_of("price")).nsr(), 1u);
  EXPECT_EQ(summary.aacs(s.id_of("price")).ne(), 1u);

  const Event e = EventBuilder(s)
                      .set("exchange", "NYSE")
                      .set("symbol", "OTE")
                      .set("when", int64_t{1057057525})
                      .set("price", 8.40)
                      .set("volume", int64_t{132700})
                      .set("high", 8.80)
                      .set("low", 8.22)
                      .build();

  MatchDiag diag;
  const auto matched = match(summary, e, &diag);
  EXPECT_EQ(matched, std::vector<SubId>{id1});
  // Step-1 collects: exchange->S1, symbol->S1+S2, price->S1, volume->S2.
  EXPECT_EQ(diag.ids_collected, 5u);
  EXPECT_EQ(diag.unique_ids, 2u);
  EXPECT_EQ(diag.attrs_satisfied, 4u);
}

TEST(BrokerSummary, IdMaskMustMatchSubscription) {
  const Schema s = schema_v();
  BrokerSummary summary(s);
  const Subscription sub = SubscriptionBuilder(s).where("price", Op::kGt, 1.0).build();
  EXPECT_THROW(summary.add(sub, SubId{0, 1, 0}), std::invalid_argument);
}

TEST(BrokerSummary, TypedAccessorsThrowOnWrongKind) {
  const Schema s = schema_v();
  const BrokerSummary summary(s);
  EXPECT_THROW((void)summary.aacs(s.id_of("symbol")), model::TypeError);
  EXPECT_THROW((void)summary.sacs(s.id_of("price")), model::TypeError);
  EXPECT_NO_THROW((void)summary.aacs(s.id_of("price")));
  EXPECT_NO_THROW((void)summary.sacs(s.id_of("symbol")));
}

TEST(BrokerSummary, UnsatisfiableArithmeticNeverMatches) {
  const Schema s = schema_v();
  BrokerSummary summary(s);
  const Subscription sub = SubscriptionBuilder(s)
                               .where("price", Op::kGt, 10.0)
                               .where("price", Op::kLt, 5.0)
                               .build();
  summary.add(sub, SubId{0, 1, sub.mask()});
  EXPECT_TRUE(match(summary, EventBuilder(s).set("price", 7.0).build()).empty());
  EXPECT_TRUE(summary.aacs(s.id_of("price")).empty());
}

TEST(BrokerSummary, RemoveErasesEverywhere) {
  const Schema s = schema_v();
  BrokerSummary summary(s);
  const Subscription sub = SubscriptionBuilder(s)
                               .where("price", Op::kGt, 1.0)
                               .where("symbol", Op::kEq, "OTE")
                               .build();
  const SubId id{0, 1, sub.mask()};
  summary.add(sub, id);
  EXPECT_FALSE(summary.empty());
  summary.remove(id);
  EXPECT_TRUE(summary.empty());
}

TEST(BrokerSummary, EventAttributeSubsetRule) {
  const Schema s = schema_v();
  BrokerSummary summary(s);
  const Subscription sub = SubscriptionBuilder(s)
                               .where("price", Op::kGt, 1.0)
                               .where("symbol", Op::kEq, "OTE")
                               .build();
  const SubId id{0, 1, sub.mask()};
  summary.add(sub, id);
  // Event carries only price: counter 1 < popcount(c3) 2 -> no match.
  EXPECT_TRUE(match(summary, EventBuilder(s).set("price", 2.0).build()).empty());
  // Both satisfied -> match, extra attributes allowed.
  EXPECT_EQ(match(summary, EventBuilder(s)
                               .set("price", 2.0)
                               .set("symbol", "OTE")
                               .set("volume", 1)
                               .build()),
            std::vector<SubId>{id});
}

TEST(BrokerSummary, MergeCombinesBrokers) {
  const Schema s = schema_v();
  BrokerSummary a(s), b(s);
  const Subscription sub1 = SubscriptionBuilder(s).where("price", Op::kGt, 1.0).build();
  const Subscription sub2 = SubscriptionBuilder(s).where("price", Op::kLt, 5.0).build();
  const SubId id1{1, 0, sub1.mask()};
  const SubId id2{2, 0, sub2.mask()};
  a.add(sub1, id1);
  b.add(sub2, id2);
  a.merge(b);
  const auto m = match(a, EventBuilder(s).set("price", 3.0).build());
  EXPECT_EQ(m, (std::vector<SubId>{id1, id2}));
}

TEST(BrokerSummary, MergeRequiresSameSchema) {
  const Schema s1 = schema_v();
  const Schema s2({{"x", model::AttrType::kInt}});
  BrokerSummary a(s1), b(s2);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(BrokerSummary, RebuildShedsGeneralizationSlack) {
  const Schema s = schema_v();
  BrokerSummary summary(s);
  std::vector<model::OwnedSubscription> subs;

  const Subscription wide = SubscriptionBuilder(s).where("symbol", Op::kPrefix, "m").build();
  const Subscription narrow = SubscriptionBuilder(s).where("symbol", Op::kEq, "microsoft").build();
  const SubId wide_id{0, 0, wide.mask()};
  const SubId narrow_id{0, 1, narrow.mask()};
  summary.add(wide, wide_id);
  summary.add(narrow, narrow_id);
  subs.push_back({wide_id, wide});
  subs.push_back({narrow_id, narrow});

  // Remove the generalizing subscription; the lossy row lingers...
  summary.remove(wide_id);
  subs.erase(subs.begin());
  const auto lingering = match(summary, EventBuilder(s).set("symbol", "mango").build());
  EXPECT_EQ(lingering, std::vector<SubId>{narrow_id});  // false positive

  // ...until rebuild restores exactness.
  const BrokerSummary fresh = BrokerSummary::rebuild(s, GeneralizePolicy::kSafe, subs);
  EXPECT_TRUE(match(fresh, EventBuilder(s).set("symbol", "mango").build()).empty());
  EXPECT_EQ(match(fresh, EventBuilder(s).set("symbol", "microsoft").build()),
            std::vector<SubId>{narrow_id});
}

TEST(BrokerSummary, StatsAggregation) {
  const Schema s = schema_v();
  BrokerSummary summary(s);
  const Subscription sub = SubscriptionBuilder(s)
                               .where("price", Op::kGt, 8.30)
                               .where("price", Op::kLt, 8.70)
                               .where("volume", Op::kEq, int64_t{100})
                               .where("symbol", Op::kPrefix, "OT")
                               .build();
  summary.add(sub, SubId{0, 0, sub.mask()});
  const SummaryStats st = summary.stats();
  EXPECT_EQ(st.nsr, 1u);
  EXPECT_EQ(st.ne, 1u);
  EXPECT_EQ(st.nr, 1u);
  EXPECT_EQ(st.la_entries, 2u);
  EXPECT_EQ(st.ls_entries, 1u);
  EXPECT_EQ(st.value_bytes, 2u);
}

// ---------------------------------------------------------------------------
// The central correctness property (paper §3.3): summary matching never
// loses a match (no false negatives); with arithmetic-only subscriptions it
// is exact.
// ---------------------------------------------------------------------------

struct PropertyCase {
  uint64_t seed;
  double subsumption;
  GeneralizePolicy policy;
};

class MatchProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(MatchProperty, SupersetOfExactAndCountersConsistent) {
  const auto& param = GetParam();
  const Schema s = schema_v();
  workload::SubGenParams sp;
  sp.subsumption = param.subsumption;
  workload::SubscriptionGenerator gen(s, sp, param.seed);
  workload::EventGenerator events(s, gen.pools(), {}, param.seed ^ 0xABCDEF);

  BrokerSummary summary(s, param.policy);
  NaiveMatcher naive;
  for (uint32_t i = 0; i < 300; ++i) {
    Subscription sub = gen.next();
    const SubId id{0, i, sub.mask()};
    summary.add(sub, id);
    naive.add({id, std::move(sub)});
  }

  util::Rng rng(param.seed * 1009);
  size_t exact_total = 0;
  for (int i = 0; i < 300; ++i) {
    // Alternate purely random events with events derived from a stored
    // subscription, so the non-vacuity check below has teeth.
    Event e = events.next();
    if (i % 2 == 1) {
      const auto& os = naive.subs()[rng.below(naive.size())];
      if (auto derived = workload::matching_event(s, os.sub)) e = *std::move(derived);
    }
    const auto approx = match(summary, e);
    const auto exact = naive.match(e);
    exact_total += exact.size();
    // No false negatives, ever.
    EXPECT_TRUE(std::includes(approx.begin(), approx.end(), exact.begin(), exact.end()))
        << "summary match lost an exact match";
    // Every reported id must at least satisfy its arithmetic constraints
    // exactly (AACS is exact; only SACS may over-approximate).
    for (const auto& id : approx) {
      for (const auto& os : naive.subs()) {
        if (!(os.id == id)) continue;
        for (const auto& c : os.sub.constraints()) {
          if (!is_arithmetic(s.type_of(c.attr))) continue;
          const model::Value* v = e.find(c.attr);
          ASSERT_NE(v, nullptr);
          // The whole arithmetic region must hold, i.e. all constraints on
          // that attribute.
        }
      }
    }
  }
  EXPECT_GT(exact_total, 0u) << "workload produced no matches; property vacuous";
}

TEST_P(MatchProperty, ArithmeticOnlySubscriptionsAreExact) {
  const auto& param = GetParam();
  const Schema s = schema_v();
  workload::SubGenParams sp;
  sp.subsumption = param.subsumption;
  sp.arith_attrs = 3;
  sp.string_attrs = 0;
  workload::SubscriptionGenerator gen(s, sp, param.seed * 31);
  workload::EventGenParams ep;
  ep.arith_attrs = 5;
  ep.string_attrs = 0;
  workload::EventGenerator events(s, gen.pools(), ep, param.seed * 31 + 1);

  BrokerSummary summary(s, param.policy);
  NaiveMatcher naive;
  for (uint32_t i = 0; i < 300; ++i) {
    Subscription sub = gen.next();
    const SubId id{0, i, sub.mask()};
    summary.add(sub, id);
    naive.add({id, std::move(sub)});
  }
  util::Rng rng(param.seed * 2003);
  size_t matched_total = 0;
  for (int i = 0; i < 300; ++i) {
    Event e = events.next();
    if (i % 2 == 1) {
      const auto& os = naive.subs()[rng.below(naive.size())];
      if (auto derived = workload::matching_event(s, os.sub)) e = *std::move(derived);
    }
    const auto approx = match(summary, e);
    const auto exact = naive.match(e);
    EXPECT_EQ(approx, exact);
    matched_total += exact.size();
  }
  EXPECT_GT(matched_total, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MatchProperty,
    ::testing::Values(PropertyCase{1, 0.1, GeneralizePolicy::kSafe},
                      PropertyCase{2, 0.5, GeneralizePolicy::kSafe},
                      PropertyCase{3, 0.9, GeneralizePolicy::kSafe},
                      PropertyCase{4, 0.5, GeneralizePolicy::kNone},
                      PropertyCase{5, 0.5, GeneralizePolicy::kAggressive},
                      PropertyCase{6, 0.9, GeneralizePolicy::kAggressive}));

// Removal property: after removing a random subset, matching agrees with
// the naive oracle on the survivors (no stale ids).
TEST(MatchMaintenance, RemovalLeavesNoStaleIds) {
  const Schema s = schema_v();
  workload::SubGenParams sp;
  sp.subsumption = 0.6;
  workload::SubscriptionGenerator gen(s, sp, 77);
  workload::EventGenerator events(s, gen.pools(), {}, 78);

  BrokerSummary summary(s, GeneralizePolicy::kNone);  // kNone keeps removal exact
  NaiveMatcher naive;
  std::vector<SubId> ids;
  for (uint32_t i = 0; i < 200; ++i) {
    Subscription sub = gen.next();
    const SubId id{0, i, sub.mask()};
    summary.add(sub, id);
    naive.add({id, std::move(sub)});
    ids.push_back(id);
  }
  util::Rng rng(99);
  for (int k = 0; k < 100; ++k) {
    const size_t at = rng.below(ids.size());
    summary.remove(ids[at]);
    naive.remove(ids[at]);
    ids.erase(ids.begin() + static_cast<long>(at));
  }
  for (int i = 0; i < 100; ++i) {
    const Event e = events.next();
    const auto approx = match(summary, e);
    const auto exact = naive.match(e);
    EXPECT_TRUE(std::includes(approx.begin(), approx.end(), exact.begin(), exact.end()));
    for (const auto& id : approx) {
      EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), id))
          << "matched a removed subscription";
    }
  }
}

}  // namespace
}  // namespace subsum::core
