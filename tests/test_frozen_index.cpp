// Differential suite for the frozen matching core (core/frozen_index.h).
//
// The contract under test: for ANY summary and event, the frozen index's
// match_into produces ids and MatchDiag bit-identical to match_reference()
// and to the classic engine match_into_unindexed() — across both AACS
// modes, shard counts {1, 2, 8}, scalar vs. vectorized kernels, combo
// cache on/off, and across every invalidating mutation (remove, merge,
// remove_broker). CI runs this file under ASan/UBSan and once more in the
// -DSUBSUM_FORCE_SCALAR=ON leg.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/frozen_index.h"
#include "core/matcher.h"
#include "core/simd.h"
#include "core/summary.h"
#include "model/event.h"
#include "obs/metrics.h"
#include "overlay/topologies.h"
#include "sim/system.h"
#include "util/rng.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace subsum::core {
namespace {

using model::Event;
using model::Schema;
using model::SubId;

// RAII: tests mutate the process-global index options and the SIMD
// dispatch level; always restore so ordering between tests cannot matter.
struct OptionsGuard {
  IndexOptions saved = index_options();
  simd::Level level = simd::active_level();
  ~OptionsGuard() {
    set_index_options(saved);
    simd::set_level_for_test(level);
  }
};

struct Workload {
  Schema schema;
  BrokerSummary summary;
  std::vector<Event> events;
};

/// A randomized multi-broker summary plus an event stream drawn from the
/// same value pools (so events hit rows at a realistic rate).
Workload make_workload(AacsMode mode, size_t n_subs, size_t n_events, uint64_t seed,
                       double subsumption = 0.9) {
  Workload w{workload::stock_schema(), BrokerSummary(), {}};
  w.summary = BrokerSummary(w.schema, GeneralizePolicy::kSafe, mode);

  workload::SubGenParams sp;
  sp.subsumption = subsumption;
  sp.pool_size = 4;          // small pools so pooled equalities actually collide
  sp.range_tightness = 0.5;  // exercise AACS splitting / coarse absorption
  workload::SubscriptionGenerator subs(w.schema, sp, seed);
  for (size_t i = 0; i < n_subs; ++i) {
    const auto sub = subs.next();
    // Four brokers, so the classic engine's one-broker dense gate is
    // exercised alongside the scan/heap paths.
    w.summary.add(sub, SubId{static_cast<uint32_t>(i % 4),
                             static_cast<uint32_t>(i / 4), sub.mask()});
  }

  workload::EventGenParams ep;
  ep.arith_attrs = 6;  // full events: attribute coverage never the blocker
  ep.string_attrs = 4;
  ep.hit_rate = 0.95;
  workload::EventGenerator events(w.schema, subs.pools(), ep, seed ^ 0xE5E5E5E5ULL);
  for (size_t i = 0; i < n_events; ++i) w.events.push_back(events.next());
  return w;
}

void expect_diag_eq(const MatchDiag& a, const MatchDiag& b, const char* what) {
  EXPECT_EQ(a.ids_collected, b.ids_collected) << what;
  EXPECT_EQ(a.unique_ids, b.unique_ids) << what;
  EXPECT_EQ(a.attrs_satisfied, b.attrs_satisfied) << what;
}

/// Runs every event through the three engines and pins ids + diag equal.
/// Returns how many events produced a nonempty match (test sanity).
size_t run_differential(const Workload& w, MatchScratch& scratch) {
  // The frozen path must actually be active for the comparison to mean
  // anything; fail loudly if the index refused to build.
  const auto idx = w.summary.frozen_for_match();
  EXPECT_NE(idx, nullptr) << "index did not engage; min_id_entries too high?";

  size_t nonempty = 0;
  MatchScratch classic;  // separate scratch: no shared state with frozen
  for (const Event& e : w.events) {
    MatchDiag dr, df, du;
    const auto ref = match_reference(w.summary, e, &dr);
    const auto frozen = match_into(w.summary, e, scratch, &df);
    EXPECT_EQ(std::vector<SubId>(frozen.begin(), frozen.end()), ref);
    expect_diag_eq(df, dr, "frozen vs reference");
    const auto classic_ids = match_into_unindexed(w.summary, e, classic, &du);
    EXPECT_EQ(std::vector<SubId>(classic_ids.begin(), classic_ids.end()), ref);
    expect_diag_eq(du, dr, "classic vs reference");
    if (!ref.empty()) ++nonempty;
  }
  return nonempty;
}

TEST(FrozenIndex, DifferentialAcrossModesShardsAndKernels) {
  OptionsGuard guard;
  const std::vector<simd::Level> levels = [] {
    std::vector<simd::Level> out{simd::Level::kScalar};
    if (simd::detected_level() != simd::Level::kScalar) out.push_back(simd::detected_level());
    return out;
  }();

  for (const AacsMode mode : {AacsMode::kExact, AacsMode::kCoarse}) {
    for (const uint32_t shards : {1u, 2u, 8u}) {
      set_index_options({.min_id_entries = 0, .shard_count = shards});
      const Workload w =
          make_workload(mode, /*n_subs=*/600, /*n_events=*/120,
                        /*seed=*/0xABCD0000u + shards + (mode == AacsMode::kCoarse ? 77 : 0));
      for (const simd::Level level : levels) {
        simd::set_level_for_test(level);
        MatchScratch scratch;
        const size_t nonempty = run_differential(w, scratch);
        EXPECT_GT(nonempty, 0u) << "workload produced no matches at all";
      }
    }
  }
}

TEST(FrozenIndex, ShardCountRequestIsAnUpperBound) {
  OptionsGuard guard;
  set_index_options({.min_id_entries = 0, .shard_count = 8});
  const Workload w = make_workload(AacsMode::kExact, 600, 0, 42);
  const auto idx = w.summary.frozen_for_match();
  ASSERT_NE(idx, nullptr);
  EXPECT_LE(idx->shard_count(), 8u);
  EXPECT_GE(idx->shard_count(), 1u);
  // Static layout accounting: per-shard entries sum to the arena size.
  uint64_t sum = 0;
  for (uint32_t s = 0; s < idx->shard_count(); ++s) sum += idx->shard_entries(s);
  EXPECT_EQ(sum, idx->entry_count());
  uint64_t row_sum = 0;
  idx->for_each_shard_row([&](uint32_t shard, uint64_t ids) {
    EXPECT_LT(shard, idx->shard_count());
    row_sum += ids;
  });
  EXPECT_EQ(row_sum, idx->entry_count());
}

TEST(FrozenIndex, VisitCountersAccumulateAndDrain) {
  OptionsGuard guard;
  set_index_options({.min_id_entries = 0, .shard_count = 2});
  const Workload w = make_workload(AacsMode::kExact, 600, 60, 7);
  const auto idx = w.summary.frozen_for_match();
  ASSERT_NE(idx, nullptr);
  MatchScratch scratch;
  scratch.use_combo_cache = false;  // cached answers skip the counter sweep
  size_t nonempty = 0;
  for (const Event& e : w.events) {
    if (!match_into(w.summary, e, scratch, nullptr).empty()) ++nonempty;
  }
  ASSERT_GT(nonempty, 0u);
  uint64_t visits = 0;
  for (uint32_t s = 0; s < idx->shard_count(); ++s) visits += idx->drain_shard_visits(s);
  EXPECT_GT(visits, 0u);
  // Drained: a second drain with no matches in between reads zero.
  for (uint32_t s = 0; s < idx->shard_count(); ++s) {
    EXPECT_EQ(idx->drain_shard_visits(s), 0u);
  }
}

TEST(FrozenIndex, MutationsInvalidateAndResultsStayExact) {
  OptionsGuard guard;
  set_index_options({.min_id_entries = 0, .shard_count = 0});
  Workload w = make_workload(AacsMode::kExact, 500, 60, 99);
  MatchScratch scratch;

  const auto before = w.summary.frozen_for_match();
  ASSERT_NE(before, nullptr);
  const uint64_t v0 = w.summary.version();

  // remove_broker(): version bumps, stale index leaves the match path,
  // results keep matching the (mutated) reference.
  w.summary.remove_broker(3);
  EXPECT_GT(w.summary.version(), v0);
  for (const Event& e : w.events) {
    MatchDiag dr, df;
    const auto ref = match_reference(w.summary, e, &dr);
    const auto got = match_into(w.summary, e, scratch, &df);
    ASSERT_EQ(std::vector<SubId>(got.begin(), got.end()), ref);
    expect_diag_eq(df, dr, "post-remove");
    for (const SubId& id : got) EXPECT_NE(id.broker, 3u);
  }

  // merge(): fold a second summary in; differential still holds (the
  // dirty-match counter above will have triggered at least one rebuild,
  // so both the stale-classic window and the rebuilt index are covered).
  const Workload other = make_workload(AacsMode::kExact, 300, 0, 1234);
  w.summary.merge(other.summary);
  for (const Event& e : w.events) {
    MatchDiag dr, df;
    const auto ref = match_reference(w.summary, e, &dr);
    const auto got = match_into(w.summary, e, scratch, &df);
    ASSERT_EQ(std::vector<SubId>(got.begin(), got.end()), ref);
    expect_diag_eq(df, dr, "post-merge");
  }
}

TEST(FrozenIndex, RebuildAfterDirtyThresholdProducesFreshIndex) {
  OptionsGuard guard;
  set_index_options({.min_id_entries = 0, .shard_count = 0});
  Workload w = make_workload(AacsMode::kExact, 500, 0, 5);
  const auto idx0 = w.summary.frozen_for_match();
  ASSERT_NE(idx0, nullptr);

  w.summary.remove_broker(2);  // invalidate
  // Below the dirty threshold the engine serves classic; drive enough
  // matches through to cross it (threshold is max(64, approx/1024)).
  MatchScratch scratch;
  const Event probe = make_workload(AacsMode::kExact, 1, 1, 5).events.at(0);
  for (int i = 0; i < 200; ++i) (void)match_into(w.summary, probe, scratch, nullptr);
  const auto idx1 = w.summary.frozen_if_built();
  ASSERT_NE(idx1, nullptr);
  EXPECT_EQ(idx1->summary_version(), w.summary.version());
  EXPECT_NE(idx1->build_id(), idx0->build_id());
}

TEST(FrozenIndex, ComboCacheHitsAreExactAndSurviveInvalidation) {
  OptionsGuard guard;
  set_index_options({.min_id_entries = 0, .shard_count = 2});
  Workload w = make_workload(AacsMode::kCoarse, 500, 40, 321);
  MatchScratch cached, cold;
  cold.use_combo_cache = false;

  // Two passes with the cache on: pass 2 is answered from the cache and
  // must agree with the cold scratch and the reference, diag included.
  for (int pass = 0; pass < 2; ++pass) {
    for (const Event& e : w.events) {
      MatchDiag dr, dc, dn;
      const auto ref = match_reference(w.summary, e, &dr);
      const auto hot = match_into(w.summary, e, cached, &dc);
      ASSERT_EQ(std::vector<SubId>(hot.begin(), hot.end()), ref);
      expect_diag_eq(dc, dr, "combo cache");
      const auto raw = match_into(w.summary, e, cold, &dn);
      ASSERT_EQ(std::vector<SubId>(raw.begin(), raw.end()), ref);
      expect_diag_eq(dn, dr, "combo cache off");
    }
  }
  EXPECT_FALSE(cached.combo_cache.empty());

  // After a mutation the rebuilt index has a new build id, so stale cache
  // entries can never be returned (they are keyed by build id).
  w.summary.remove_broker(1);
  for (int i = 0; i < 200; ++i) (void)match_into(w.summary, w.events[0], cached, nullptr);
  for (const Event& e : w.events) {
    const auto ref = match_reference(w.summary, e, nullptr);
    const auto got = match_into(w.summary, e, cached, nullptr);
    ASSERT_EQ(std::vector<SubId>(got.begin(), got.end()), ref);
  }
}

TEST(FrozenIndex, CounterEpochWrapStaysExact) {
  OptionsGuard guard;
  set_index_options({.min_id_entries = 0, .shard_count = 1});
  const Workload w = make_workload(AacsMode::kExact, 500, 80, 777);
  MatchScratch scratch;
  scratch.use_combo_cache = false;  // every event must sweep the counters
  // Park the epoch just below the 24-bit wrap; the sweep bumps it per
  // counter block, so the wrap (full zero-fill + epoch reset) happens in
  // the middle of this event stream.
  scratch.dense_epoch = (1u << 24) - 3;
  for (const Event& e : w.events) {
    const auto ref = match_reference(w.summary, e, nullptr);
    const auto got = match_into(w.summary, e, scratch, nullptr);
    ASSERT_EQ(std::vector<SubId>(got.begin(), got.end()), ref);
  }
  EXPECT_LT(scratch.dense_epoch, 1u << 24);
}

TEST(FrozenIndex, LegacyDenseEpochWrapStaysExact) {
  // Same wrap property for the classic engine's dense fast path (its
  // cells share the scratch with the frozen sweep).
  const Workload w = make_workload(AacsMode::kExact, 400, 80, 778);
  MatchScratch scratch;
  scratch.dense_epoch = (1u << 24) - 3;
  for (const Event& e : w.events) {
    const auto ref = match_reference(w.summary, e, nullptr);
    const auto got = match_into_unindexed(w.summary, e, scratch, nullptr);
    ASSERT_EQ(std::vector<SubId>(got.begin(), got.end()), ref);
  }
}

TEST(FrozenIndex, BelowThresholdSummariesKeepClassicEngine) {
  OptionsGuard guard;
  set_index_options({.min_id_entries = 4096, .shard_count = 0});
  const Workload w = make_workload(AacsMode::kExact, 50, 20, 11);
  EXPECT_EQ(w.summary.frozen_for_match(), nullptr);
  MatchScratch scratch;
  for (const Event& e : w.events) {
    const auto ref = match_reference(w.summary, e, nullptr);
    const auto got = match_into(w.summary, e, scratch, nullptr);
    ASSERT_EQ(std::vector<SubId>(got.begin(), got.end()), ref);
  }
}

TEST(FrozenIndex, SimdKernelVariantsAgreeOnRandomInputs) {
  OptionsGuard guard;
  util::Rng rng(0xFEED);
  const std::vector<simd::Level> levels = [] {
    std::vector<simd::Level> out{simd::Level::kScalar};
    if (simd::detected_level() >= simd::Level::kSse2) out.push_back(simd::Level::kSse2);
    if (simd::detected_level() >= simd::Level::kAvx2) out.push_back(simd::Level::kAvx2);
    return out;
  }();

  for (int iter = 0; iter < 50; ++iter) {
    const size_t n = rng.below(257);  // covers remainders around vector widths
    std::vector<uint32_t> entries(n);
    const uint32_t mask = 255;
    std::vector<uint32_t> cells_proto(mask + 1);
    const uint32_t tag = static_cast<uint32_t>(rng.below(1u << 24)) << 8;
    // Entries mimic one counter block: slots inside a single 2^shift
    // window (so cell indexes are distinct — the gather-safety invariant),
    // strictly increasing after the dedup below.
    for (auto& e : entries) {
      e = (static_cast<uint32_t>(rng.below(mask + 1)) << 6) |
          static_cast<uint32_t>(rng.below(4));
    }
    std::sort(entries.begin(), entries.end());
    entries.erase(std::unique(entries.begin(), entries.end(),
                              [](uint32_t a, uint32_t b) { return a >> 6 == b >> 6; }),
                  entries.end());
    for (auto& c : cells_proto) c = tag + static_cast<uint32_t>(rng.below(5));

    std::vector<std::vector<uint32_t>> req1_out, match_out, match_cells;
    std::vector<uint32_t> mins;
    for (const simd::Level level : levels) {
      simd::set_level_for_test(level);
      std::vector<uint32_t> out(entries.size() + 1, 0xDEADBEEF);
      const size_t w1 = simd::emit_req1(entries.data(), entries.size(), out.data());
      req1_out.emplace_back(out.begin(), out.begin() + static_cast<long>(w1));

      std::vector<uint32_t> cells = cells_proto;
      std::vector<uint32_t> out2(entries.size() + 1, 0xDEADBEEF);
      const size_t w2 = simd::emit_matches(entries.data(), entries.size(), cells.data(),
                                           mask, tag, out2.data());
      match_out.emplace_back(out2.begin(), out2.begin() + static_cast<long>(w2));
      match_cells.push_back(std::move(cells));

      if (!entries.empty()) mins.push_back(simd::min_u32(entries.data(), entries.size()));
    }
    for (size_t i = 1; i < levels.size(); ++i) {
      EXPECT_EQ(req1_out[i], req1_out[0]) << "emit_req1 level " << static_cast<int>(levels[i]);
      EXPECT_EQ(match_out[i], match_out[0])
          << "emit_matches level " << static_cast<int>(levels[i]);
      EXPECT_EQ(match_cells[i], match_cells[0])
          << "emit_matches cells level " << static_cast<int>(levels[i]);
    }
    for (size_t i = 1; i < mins.size(); ++i) EXPECT_EQ(mins[i], mins[0]);
  }
}

TEST(FrozenIndex, QualityProbeDivergenceStaysZeroWithIndexEngaged) {
  OptionsGuard guard;
  set_index_options({.min_id_entries = 0, .shard_count = 2});

  sim::SystemConfig cfg;
  cfg.schema = workload::stock_schema();
  cfg.graph = overlay::line(3);
  cfg.quality_sample_shift = 0;  // probe every publish
  sim::SimSystem sys(cfg);

  workload::SubGenParams sp;
  sp.subsumption = 0.4;
  workload::SubscriptionGenerator subs(cfg.schema, sp, 2024);
  for (size_t i = 0; i < 240; ++i) {
    sys.subscribe(i % sys.broker_count(), subs.next());
  }
  (void)sys.run_propagation_period();

  workload::EventGenerator events(cfg.schema, subs.pools(), {}, 4048);
  for (size_t i = 0; i < 150; ++i) {
    (void)sys.publish(i % sys.broker_count(), events.next());
  }

  // The index must have actually served matches...
  bool engaged = false;
  for (size_t b = 0; b < sys.broker_count(); ++b) {
    if (sys.state().held[b].frozen_if_built()) engaged = true;
  }
  EXPECT_TRUE(engaged);
  // ...and the per-publish match-vs-reference differential never fired.
  const auto text = sys.metrics().prometheus_text();
  EXPECT_NE(text.find("subsum_quality_engine_divergence_total 0"), std::string::npos)
      << text;
}

}  // namespace
}  // namespace subsum::core
