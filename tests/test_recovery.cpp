// Crash recovery end-to-end: durable clusters serving pre-crash
// subscriptions after kill+restart, bit-identical summary reconstruction,
// epoch-based zombie-state eviction, bounded shutdown under retry storms,
// and TTL-expired redelivery accounting.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/serialize.h"
#include "net/cluster.h"
#include "overlay/topologies.h"
#include "util/bytes.h"
#include "workload/stock_schema.h"

namespace subsum::net {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;
using model::EventBuilder;
using model::Op;
using model::Schema;
using model::SubId;
using model::SubscriptionBuilder;
using overlay::BrokerId;

Schema schema_v() { return workload::stock_schema(); }

RpcPolicy tight_policy() {
  RpcPolicy p;
  p.connect_timeout = 250ms;
  p.io_timeout = 1000ms;
  p.backoff = {5ms, 40ms, 2};
  return p;
}

ClientOptions tight_client() {
  ClientOptions o;
  o.connect_timeout = 500ms;
  o.rpc_timeout = 20000ms;
  o.backoff = {5ms, 40ms, 4};
  return o;
}

/// Fresh per-test data directory under the gtest temp root.
std::string scratch_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = ::testing::TempDir() + "subsum_recovery/" +
                          info->test_suite_name() + "." + info->name();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// --- durable restart (satellite: serve pre-crash subscriptions) -------------

TEST(DurableCluster, RestartServesPreCrashSubscriptionsWithoutResubscribe) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, tight_policy(),
                  scratch_dir());
  EXPECT_EQ(cluster.node(1).epoch(), 1u);

  auto subscriber = cluster.connect(1, tight_client());
  const SubId id = subscriber->subscribe(
      SubscriptionBuilder(s).where("symbol", Op::kEq, "crash").build());
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  const auto own_before = cluster.node(1).own_summary_wire();

  cluster.kill(1);
  cluster.restart(1);
  std::this_thread::sleep_for(50ms);  // let the reader observe the EOF

  // The restarted broker recovered the subscription from its store.
  EXPECT_EQ(cluster.node(1).epoch(), 2u);
  EXPECT_TRUE(cluster.node(1).recovery().recovered);
  EXPECT_EQ(cluster.node(1).snapshot().local_subs, 1u);
  // Bit-identical: the recovered state rebuilds the exact same summary image.
  EXPECT_EQ(cluster.node(1).own_summary_wire(), own_before);

  // The poll triggers the client's reconnect + re-attach; no re-subscribe.
  EXPECT_FALSE(subscriber->next_notification(100ms).has_value());
  EXPECT_EQ(subscriber->owned_subscriptions(), std::vector<SubId>{id});

  auto publisher = cluster.connect(0, tight_client());
  publisher->publish(EventBuilder(s).set("symbol", "crash").build());
  const auto note = subscriber->next_notification(2000ms);
  ASSERT_TRUE(note.has_value());
  EXPECT_EQ(note->ids, std::vector<SubId>{id});
}

TEST(DurableCluster, EpochKeepsClimbingAcrossRestarts) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1), core::GeneralizePolicy::kSafe, tight_policy(),
                  scratch_dir());
  for (uint64_t expect = 1; expect <= 3; ++expect) {
    EXPECT_EQ(cluster.node(0).epoch(), expect);
    EXPECT_EQ(cluster.node(0).snapshot().epoch, expect);
    cluster.kill(0);
    cluster.restart(0);
  }
}

TEST(DurableCluster, EphemeralClusterStaysAtEpochZero) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1), core::GeneralizePolicy::kSafe, tight_policy());
  EXPECT_EQ(cluster.node(0).epoch(), 0u);
  cluster.kill(0);
  cluster.restart(0);
  EXPECT_EQ(cluster.node(0).epoch(), 0u);
}

// --- epoch staleness (acceptance: discard pre-crash held state) -------------

TEST(EpochStaleness, HigherEpochAnnouncementEvictsZombieRowsAndStaleOnesAreDropped) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, tight_policy(),
                  scratch_dir());
  const size_t empty_bytes = cluster.node(0).snapshot().held_wire_bytes;

  auto c1 = cluster.connect(1, tight_client());
  c1->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "zombie").build());
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  const size_t with_row = cluster.node(0).snapshot().held_wire_bytes;
  ASSERT_GT(with_row, empty_bytes);  // broker 0 now holds broker 1's row

  // Broker 1's next incarnation announces an EMPTY summary at a higher
  // epoch (as after losing its store): broker 0 must discard every row it
  // held on broker 1's behalf before merging.
  const core::WireConfig wire{
      model::SubIdCodec(2, uint64_t{1} << 20, s.attr_count()), 8};
  SummaryMsg fresh;
  fresh.from = 1;
  fresh.merged_brokers = {1};
  fresh.epochs = {2};
  fresh.summary = core::encode_summary(core::BrokerSummary(s), wire, /*epoch=*/2);
  {
    Socket raw = connect_local(cluster.port_of(0), 500ms);
    raw.set_recv_timeout(2000ms);
    send_frame(raw, MsgKind::kSummary, encode(fresh));
    const auto ack = recv_frame(raw);
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->kind, MsgKind::kSummaryAck);
  }
#ifndef SUBSUM_NO_TELEMETRY
  EXPECT_EQ(cluster.node(0).metrics().counter_value("subsum_summary_peer_superseded_total"), 1u);
#endif
  EXPECT_EQ(cluster.node(0).snapshot().held_wire_bytes, empty_bytes);

  // A zombie of the OLD incarnation re-announcing the row is now stale:
  // dropped wholesale, nothing resurrected.
  SummaryMsg stale = fresh;
  stale.epochs = {1};
  stale.summary = cluster.node(1).own_summary_wire();  // old row image
  stale.summary = core::encode_summary(
      core::decode_summary(stale.summary, s), wire, /*epoch=*/1);
  {
    Socket raw = connect_local(cluster.port_of(0), 500ms);
    raw.set_recv_timeout(2000ms);
    send_frame(raw, MsgKind::kSummary, encode(stale));
    const auto ack = recv_frame(raw);
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->kind, MsgKind::kSummaryAck);
  }
#ifndef SUBSUM_NO_TELEMETRY
  EXPECT_EQ(cluster.node(0).metrics().counter_value("subsum_summary_stale_dropped_total"), 1u);
#endif
  EXPECT_EQ(cluster.node(0).snapshot().held_wire_bytes, empty_bytes);
}

// --- damaged stores at the node level ---------------------------------------

TEST(NodeRecovery, TornWalTailIsDiscardedNotFatal) {
  const Schema s = schema_v();
  const std::string dir = scratch_dir();
  BrokerConfig cfg;
  cfg.schema = s;
  cfg.graph = overlay::Graph(1);
  cfg.rpc = tight_policy();
  cfg.data_dir = dir;
  {
    BrokerNode node(cfg);
    Client client(node.port(), s, tight_client());
    client.subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "keep").build());
    client.close();
    node.stop();
  }
  {
    std::ofstream wal(dir + "/wal", std::ios::binary | std::ios::app);
    const char junk[7] = {22, 0, 0, 0, 1, 2, 3};  // header promising more bytes
    wal.write(junk, sizeof junk);
  }
  BrokerNode node(cfg);
  EXPECT_TRUE(node.recovery().wal_torn);
  EXPECT_EQ(node.snapshot().local_subs, 1u);
  EXPECT_EQ(node.epoch(), 2u);
  node.stop();
}

TEST(NodeRecovery, CorruptSnapshotFallsBackToLogAndKeepsServing) {
  const Schema s = schema_v();
  const std::string dir = scratch_dir();
  BrokerConfig cfg;
  cfg.schema = s;
  cfg.graph = overlay::Graph(1);
  cfg.rpc = tight_policy();
  cfg.data_dir = dir;
  cfg.snapshot_wal_threshold = 2;  // compact on the second record
  {
    BrokerNode node(cfg);
    Client client(node.port(), s, tight_client());
    client.subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "a").build());
    client.subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "b").build());
#ifndef SUBSUM_NO_TELEMETRY
    EXPECT_GE(node.metrics().counter_value("subsum_store_compactions_total"), 1u);
#endif
    client.subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "c").build());
    client.close();
    node.stop();
  }
  {
    std::fstream f(dir + "/snapshot", std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(fs::file_size(dir + "/snapshot") / 2));
    f.put('\x5A');
  }
  BrokerNode node(cfg);
  // Degraded (the compacted prefix is gone) but alive and consistent.
  EXPECT_TRUE(node.recovery().snapshot_fell_back);
  EXPECT_EQ(node.snapshot().local_subs, 1u);  // only the post-snapshot tail

  Client client(node.port(), s, tight_client());
  const SubId id =
      client.subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "d").build());
  client.publish(EventBuilder(s).set("symbol", "d").build());
  const auto note = client.next_notification(2000ms);
  ASSERT_TRUE(note.has_value());
  EXPECT_EQ(note->ids, std::vector<SubId>{id});
  client.close();
  node.stop();
}

// --- bounded shutdown (satellite: interruptible retry sleeps) ---------------

TEST(Shutdown, StopInterruptsBackoffSleepsInsteadOfWaitingThemOut) {
  const Schema s = schema_v();
  RpcPolicy slow = tight_policy();
  // A retry schedule totalling ~15s of sleep: shutdown must not serve it.
  slow.backoff = {1000ms, 2000ms, 10};
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, slow);

  auto doomed = cluster.connect(1, tight_client());
  doomed->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "stuck").build());
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  cluster.kill(1);

  // The publish finds broker 1 dead and enters the backoff-paced retry
  // loop inside broker 0's handler thread.
  std::thread publisher([&] {
    try {
      auto c0 = cluster.connect(0, tight_client());
      c0->publish(EventBuilder(s).set("symbol", "stuck").build());
    } catch (const std::exception&) {
      // Expected: broker 0 goes down mid-publish.
    }
  });
  std::this_thread::sleep_for(300ms);  // let the retry loop start sleeping

  const auto t0 = std::chrono::steady_clock::now();
  cluster.kill(0);  // joins the handler parked in the retry sleep
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, 3s) << "stop() waited out a backoff schedule";
  publisher.join();
}

// --- TTL-expired redeliveries are counted (satellite) -----------------------

TEST(Redelivery, TtlExpiryIsCountedAndQueueDrains) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, tight_policy());
  {
    auto doomed = cluster.connect(1, tight_client());
    doomed->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "ttl").build());
    ASSERT_TRUE(cluster.run_propagation_period().complete());
  }
  cluster.kill(1);

  auto publisher = cluster.connect(0, tight_client());
  publisher->publish(EventBuilder(s).set("symbol", "ttl").build());
  ASSERT_EQ(cluster.node(0).snapshot().pending_redeliveries, 1u);
  EXPECT_EQ(cluster.node(0).metrics().counter_value("subsum_redelivery_dropped_ttl_total"), 0u);

  // Each period retries the queued delivery against the dead owner and
  // decrements its ttl (default 8); it must age out — counted, not silent.
  for (int period = 0; period < 9; ++period) (void)cluster.run_propagation_period();
  EXPECT_EQ(cluster.node(0).snapshot().pending_redeliveries, 0u);
#ifndef SUBSUM_NO_TELEMETRY
  EXPECT_EQ(cluster.node(0).metrics().counter_value("subsum_redelivery_dropped_ttl_total"), 1u);
#endif
}

}  // namespace
}  // namespace subsum::net
