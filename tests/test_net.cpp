#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <thread>

#include "net/cluster.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "overlay/topologies.h"
#include "sim/system.h"
#include "util/rng.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace subsum::net {
namespace {

using namespace std::chrono_literals;
using model::EventBuilder;
using model::Op;
using model::Schema;
using model::SubId;
using model::Subscription;
using model::SubscriptionBuilder;
using overlay::BrokerId;

Schema schema_v() { return workload::stock_schema(); }

TEST(Socket, ListenerConnectSendRecv) {
  Listener listener(0);
  ASSERT_GT(listener.port(), 0);
  std::thread server([&] {
    auto s = listener.accept();
    ASSERT_TRUE(s.has_value());
    std::byte buf[5];
    ASSERT_TRUE(s->recv_exact(buf));
    s->send_all(buf);  // echo
  });
  Socket c = connect_local(listener.port());
  const std::byte msg[5] = {std::byte{1}, std::byte{2}, std::byte{3}, std::byte{4},
                            std::byte{5}};
  c.send_all(msg);
  std::byte back[5];
  ASSERT_TRUE(c.recv_exact(back));
  EXPECT_TRUE(std::equal(std::begin(msg), std::end(msg), std::begin(back)));
  server.join();
}

TEST(Socket, CleanEofReturnsFalse) {
  Listener listener(0);
  std::thread server([&] {
    auto s = listener.accept();
    ASSERT_TRUE(s.has_value());
    // Close immediately.
  });
  Socket c = connect_local(listener.port());
  server.join();
  std::byte buf[1];
  EXPECT_FALSE(c.recv_exact(buf));
}

TEST(Socket, ConnectRefusedThrows) {
  // Grab a port, then close it so nothing is listening.
  uint16_t dead_port;
  {
    Listener l(0);
    dead_port = l.port();
  }
  EXPECT_THROW(connect_local(dead_port), NetError);
}

TEST(Framing, RoundTrip) {
  Listener listener(0);
  std::thread server([&] {
    auto s = listener.accept();
    ASSERT_TRUE(s.has_value());
    auto f = recv_frame(*s);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->kind, MsgKind::kPublish);
    send_frame(*s, MsgKind::kPublishAck, f->payload);
  });
  Socket c = connect_local(listener.port());
  const std::vector<std::byte> payload = {std::byte{9}, std::byte{8}};
  send_frame(c, MsgKind::kPublish, payload);
  auto reply = recv_frame(c);
  server.join();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->kind, MsgKind::kPublishAck);
  EXPECT_EQ(reply->payload, payload);
}

TEST(Framing, EmptyPayloadAndEof) {
  Listener listener(0);
  std::thread server([&] {
    auto s = listener.accept();
    ASSERT_TRUE(s.has_value());
    auto f = recv_frame(*s);
    ASSERT_TRUE(f.has_value());
    EXPECT_TRUE(f->payload.empty());
    EXPECT_FALSE(recv_frame(*s).has_value());  // clean EOF after close
  });
  {
    Socket c = connect_local(listener.port());
    send_frame(c, MsgKind::kStats, {});
  }
  server.join();
}

TEST(Protocol, EventRoundTrip) {
  const Schema s = schema_v();
  const auto e = EventBuilder(s)
                     .set("price", 8.40)
                     .set("symbol", "OTE")
                     .set("volume", int64_t{132700})
                     .build();
  util::BufWriter w;
  put_event(w, e);
  util::BufReader r(w.bytes());
  EXPECT_EQ(get_event(r, s), e);
}

TEST(Protocol, SubscriptionRoundTrip) {
  const Schema s = schema_v();
  const auto sub = SubscriptionBuilder(s)
                       .where("price", Op::kGt, 8.30)
                       .where("price", Op::kLt, 8.70)
                       .where("symbol", Op::kPrefix, "OT")
                       .build();
  util::BufWriter w;
  put_subscription(w, sub);
  util::BufReader r(w.bytes());
  EXPECT_EQ(get_subscription(r, s), sub);
}

TEST(Protocol, SubIdRoundTrip) {
  util::BufWriter w;
  const SubId id{23, 999999, 0x3FF};
  put_sub_id(w, id);
  util::BufReader r(w.bytes());
  EXPECT_EQ(get_sub_id(r), id);
}

TEST(Protocol, RejectsUnknownAttributes) {
  const Schema s = schema_v();
  util::BufWriter w;
  w.put_varint(1);
  w.put_varint(99);  // bogus attribute id
  w.put_i64(1);
  util::BufReader r(w.bytes());
  EXPECT_THROW(get_event(r, s), util::DecodeError);
}

TEST(Protocol, BitmapHelpers) {
  auto bm = make_bitmap(13);
  EXPECT_EQ(bm.size(), 2u);
  EXPECT_FALSE(bitmap_all(bm, 13));
  for (size_t i = 0; i < 13; ++i) {
    EXPECT_FALSE(bitmap_get(bm, i));
    bitmap_set(bm, i);
    EXPECT_TRUE(bitmap_get(bm, i));
  }
  EXPECT_TRUE(bitmap_all(bm, 13));
}

TEST(Protocol, MessageRoundTrips) {
  const Schema s = schema_v();
  const auto e = EventBuilder(s).set("price", 1.5).build();

  SummaryMsg sm;
  sm.from = 7;
  sm.merged_brokers = {1, 2, 7};
  sm.removals = {SubId{1, 2, 3}};
  sm.summary = {std::byte{0xAA}, std::byte{0xBB}};
  const auto sm2 = decode_summary_msg(encode(sm));
  EXPECT_EQ(sm2.from, sm.from);
  EXPECT_EQ(sm2.merged_brokers, sm.merged_brokers);
  EXPECT_EQ(sm2.removals, sm.removals);
  EXPECT_EQ(sm2.summary, sm.summary);

  EventMsg em;
  em.origin = 3;
  em.seq = 42;
  em.brocli = make_bitmap(24);
  bitmap_set(em.brocli, 5);
  em.event = e;
  const auto em2 = decode_event_msg(encode(em, s), s);
  EXPECT_EQ(em2.origin, 3u);
  EXPECT_EQ(em2.seq, 42u);
  EXPECT_TRUE(bitmap_get(em2.brocli, 5));
  EXPECT_EQ(em2.event, e);

  DeliverMsg dm{9, {SubId{9, 1, 4}}, e};
  const auto dm2 = decode_deliver_msg(encode(dm, s), s);
  EXPECT_EQ(dm2.examined_at, 9u);
  EXPECT_EQ(dm2.ids, dm.ids);
  EXPECT_EQ(dm2.event, e);

  const auto tm = decode_trigger_msg(encode(TriggerMsg{4}));
  EXPECT_EQ(tm.iteration, 4u);
}

// ---------------------------------------------------------------------------
// Live broker tests
// ---------------------------------------------------------------------------

TEST(BrokerNode, SubscribePublishNotifySingleBroker) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1));
  auto client = cluster.connect(0);

  const auto sub = SubscriptionBuilder(s).where("symbol", Op::kEq, "OTE").build();
  const SubId id = client->subscribe(sub);
  EXPECT_EQ(id.broker, 0u);
  EXPECT_EQ(id.local, 0u);

  client->publish(EventBuilder(s).set("symbol", "OTE").set("price", 8.4).build());
  const auto note = client->next_notification(2000ms);
  ASSERT_TRUE(note.has_value());
  EXPECT_EQ(note->ids, std::vector<SubId>{id});
  ASSERT_NE(note->event.find(s.id_of("price")), nullptr);

  // Non-matching publish produces no notification.
  client->publish(EventBuilder(s).set("symbol", "X").build());
  EXPECT_FALSE(client->next_notification(100ms).has_value());
}

TEST(BrokerNode, UnsubscribeStopsNotifications) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1));
  auto client = cluster.connect(0);
  const auto sub = SubscriptionBuilder(s).where("symbol", Op::kEq, "A").build();
  const SubId id = client->subscribe(sub);
  client->unsubscribe(id);
  client->publish(EventBuilder(s).set("symbol", "A").build());
  EXPECT_FALSE(client->next_notification(100ms).has_value());
}

TEST(Cluster, Fig7EndToEndOverTcp) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::fig7_tree());

  // Paper example 3: brokers 4, 8, 13 (nodes 3, 7, 12) subscribe.
  auto c3 = cluster.connect(3);
  auto c7 = cluster.connect(7);
  auto c12 = cluster.connect(12);
  auto publisher = cluster.connect(0);

  const auto sub = SubscriptionBuilder(s).where("symbol", Op::kEq, "evt").build();
  const SubId id3 = c3->subscribe(sub);
  const SubId id7 = c7->subscribe(sub);
  const SubId id12 = c12->subscribe(sub);

  cluster.run_propagation_period();

  // Propagation left broker 4 (paper broker 5) knowing brokers 0-5.
  EXPECT_EQ(cluster.node(4).snapshot().merged_brokers, 6u);
  EXPECT_EQ(cluster.node(7).snapshot().merged_brokers, 4u);
  EXPECT_EQ(cluster.node(10).snapshot().merged_brokers, 3u);

  publisher->publish(EventBuilder(s).set("symbol", "evt").build());

  const auto n3 = c3->next_notification(2000ms);
  const auto n7 = c7->next_notification(2000ms);
  const auto n12 = c12->next_notification(2000ms);
  ASSERT_TRUE(n3 && n7 && n12);
  EXPECT_EQ(n3->ids, std::vector<SubId>{id3});
  EXPECT_EQ(n7->ids, std::vector<SubId>{id7});
  EXPECT_EQ(n12->ids, std::vector<SubId>{id12});

  // Exactly-once: no further notifications anywhere.
  EXPECT_FALSE(c3->next_notification(100ms).has_value());
  EXPECT_FALSE(c7->next_notification(100ms).has_value());
  EXPECT_FALSE(c12->next_notification(100ms).has_value());
}

TEST(Cluster, TcpMatchesSimSystemOnRandomWorkload) {
  const Schema s = schema_v();
  const auto g = overlay::fig7_tree();

  Cluster cluster(s, g);
  sim::SystemConfig sim_cfg;
  sim_cfg.schema = s;
  sim_cfg.graph = g;
  sim::SimSystem sim(sim_cfg);

  workload::SubGenParams sp;
  sp.subsumption = 0.5;
  workload::SubscriptionGenerator gen(s, sp, 2024);
  workload::EventGenerator events(s, gen.pools(), {}, 2025);
  util::Rng rng(2026);

  std::vector<std::unique_ptr<Client>> clients;
  for (BrokerId b = 0; b < g.size(); ++b) clients.push_back(cluster.connect(b));

  std::map<SubId, BrokerId> owners;
  for (int i = 0; i < 40; ++i) {
    const auto home = static_cast<BrokerId>(rng.below(g.size()));
    const Subscription sub = gen.next();
    const SubId tcp_id = clients[home]->subscribe(sub);
    const SubId sim_id = sim.subscribe(home, sub);
    EXPECT_EQ(tcp_id, sim_id);
  }
  cluster.run_propagation_period();
  sim.run_propagation_period();

  for (int i = 0; i < 20; ++i) {
    const auto e = events.next();
    const auto origin = static_cast<BrokerId>(rng.below(g.size()));
    clients[origin]->publish(e);
    const auto expected = sim.publish(origin, e);

    // publish() is synchronous end-to-end, so every notification was
    // written before it returned. Block only where something is expected;
    // drain the rest to catch spurious extras.
    std::map<BrokerId, size_t> expected_per_owner;
    for (const auto& id : expected.delivered) ++expected_per_owner[id.broker];
    std::vector<SubId> tcp_ids;
    for (const auto& [owner, want] : expected_per_owner) {
      size_t got = 0;
      while (got < want) {
        auto note = clients[owner]->next_notification(2000ms);
        ASSERT_TRUE(note.has_value()) << "missing notification at broker " << owner;
        for (const auto& id : note->ids) tcp_ids.push_back(id);
        got += note->ids.size();
      }
    }
    for (auto& c : clients) {
      for (const auto& note : c->drain_notifications()) {
        for (const auto& id : note.ids) tcp_ids.push_back(id);
      }
    }
    std::sort(tcp_ids.begin(), tcp_ids.end());
    EXPECT_EQ(tcp_ids, expected.delivered) << "event " << i;
  }
}

TEST(Cluster, SnapshotReflectsSubscriptions) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2));
  auto client = cluster.connect(0);
  const auto sub = SubscriptionBuilder(s).where("price", Op::kGt, 1.0).build();
  client->subscribe(sub);
  client->subscribe(sub);
  const auto snap = cluster.node(0).snapshot();
  EXPECT_EQ(snap.local_subs, 2u);
  EXPECT_GT(snap.held_wire_bytes, 0u);
}

TEST(Cluster, ClientConnectionDropIsTolerated) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2));
  {
    auto doomed = cluster.connect(0);
    const auto sub = SubscriptionBuilder(s).where("symbol", Op::kEq, "A").build();
    doomed->subscribe(sub);
  }  // client closes; its subscription's notifications go nowhere
  auto publisher = cluster.connect(1);
  cluster.run_propagation_period();
  // Publishing must not crash or hang even though the subscriber is gone.
  publisher->publish(EventBuilder(s).set("symbol", "A").build());
  const auto snap = cluster.node(0).snapshot();
  EXPECT_EQ(snap.local_subs, 1u);
}

}  // namespace
}  // namespace subsum::net
