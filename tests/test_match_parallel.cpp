// Property tests for the batched/parallel matching engine: the heap-merge +
// dense-counter match_into() must agree with the reference implementation
// and the naive oracle; BatchMatcher and SimSystem::publish_batch must be
// indistinguishable from the sequential loops at every thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>

#include "core/batch_matcher.h"
#include "core/matcher.h"
#include "overlay/topologies.h"
#include "sim/system.h"
#include "util/thread_pool.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace subsum {
namespace {

using core::AacsMode;
using core::BrokerSummary;
using model::Event;
using model::SubId;

struct Workload {
  model::Schema schema = workload::stock_schema();
  BrokerSummary summary;
  core::NaiveMatcher naive;
  std::vector<Event> events;

  /// `brokers` > 1 spreads ids across c1 values, defeating the
  /// single-broker dense fast path so the heap merge gets exercised.
  Workload(size_t subs, size_t brokers, AacsMode mode, double subsumption, uint64_t seed) {
    workload::SubGenParams sp;
    sp.subsumption = subsumption;
    workload::SubscriptionGenerator gen(schema, sp, seed);
    summary = BrokerSummary(schema, core::GeneralizePolicy::kSafe, mode);
    for (uint32_t i = 0; i < subs; ++i) {
      auto sub = gen.next();
      const SubId id{static_cast<model::BrokerId>(i % brokers), i, sub.mask()};
      summary.add(sub, id);
      naive.add({id, std::move(sub)});
    }
    workload::EventGenerator egen(schema, gen.pools(), {}, seed + 1);
    for (int i = 0; i < 48; ++i) events.push_back(egen.next());
  }
};

TEST(MatchEngine, AgreesWithReferenceAndOracleAcrossWorkloads) {
  for (const AacsMode mode : {AacsMode::kExact, AacsMode::kCoarse}) {
    for (const size_t brokers : {size_t{1}, size_t{5}}) {  // dense vs heap path
      for (const double subsumption : {0.1, 0.9}) {
        Workload w(400, brokers, mode, subsumption,
                   1000 + brokers * 10 + static_cast<uint64_t>(subsumption * 10));
        core::MatchScratch scratch;
        for (const Event& e : w.events) {
          core::MatchDiag dn, dr;
          const auto got = core::match_into(w.summary, e, scratch, &dn);
          const auto want = core::match_reference(w.summary, e, &dr);
          ASSERT_EQ(std::vector<SubId>(got.begin(), got.end()), want);
          EXPECT_EQ(dn.ids_collected, dr.ids_collected);
          EXPECT_EQ(dn.unique_ids, dr.unique_ids);
          EXPECT_EQ(dn.attrs_satisfied, dr.attrs_satisfied);
          // Summary matching is a superset of exact matching (safe direction).
          const auto exact = w.naive.match(e);
          ASSERT_TRUE(std::includes(want.begin(), want.end(), exact.begin(), exact.end()));
          if (mode == AacsMode::kExact) {
            // With exact AACS and no SACS generalization pressure at this
            // scale, every exact match must at least be present.
            for (const SubId& id : exact) {
              EXPECT_TRUE(std::binary_search(want.begin(), want.end(), id));
            }
          }
        }
      }
    }
  }
}

TEST(MatchEngine, ScratchReuseMatchesFreshScratch) {
  Workload w(600, 1, AacsMode::kCoarse, 0.5, 42);
  core::MatchScratch reused;
  for (const Event& e : w.events) {
    core::MatchScratch fresh;
    const auto a = core::match_into(w.summary, e, reused);
    const auto b = core::match_into(w.summary, e, fresh);
    ASSERT_EQ(std::vector<SubId>(a.begin(), a.end()),
              std::vector<SubId>(b.begin(), b.end()));
  }
}

TEST(MatchEngine, EmptySummaryAndEmptyEvent) {
  const model::Schema schema = workload::stock_schema();
  BrokerSummary summary(schema);
  core::MatchScratch scratch;
  const Event none;
  EXPECT_TRUE(core::match_into(summary, none, scratch).empty());
  Workload w(10, 1, AacsMode::kExact, 0.1, 7);
  EXPECT_TRUE(core::match_into(w.summary, none, scratch).empty());
}

TEST(BatchMatcher, EqualsSequentialAcrossThreadCounts) {
  for (const AacsMode mode : {AacsMode::kExact, AacsMode::kCoarse}) {
    Workload w(500, 3, mode, 0.3, 99);
    std::vector<std::vector<SubId>> want;
    std::vector<core::MatchDiag> want_diags;
    for (const Event& e : w.events) {
      core::MatchDiag d;
      want.push_back(core::match(w.summary, e, &d));
      want_diags.push_back(d);
    }
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{3}, size_t{8}}) {
      util::ThreadPool pool(threads);
      core::BatchMatcher bm(pool);
      std::vector<core::MatchDiag> diags;
      const auto got = bm.match_batch(w.summary, w.events, &diags);
      ASSERT_EQ(got, want) << "threads=" << threads;
      ASSERT_EQ(diags.size(), want_diags.size());
      for (size_t i = 0; i < diags.size(); ++i) {
        EXPECT_EQ(diags[i].ids_collected, want_diags[i].ids_collected);
        EXPECT_EQ(diags[i].unique_ids, want_diags[i].unique_ids);
      }
      // Re-running on the same (warm) matcher must be stable.
      std::vector<std::vector<SubId>> again;
      bm.match_batch(w.summary, w.events, again);
      EXPECT_EQ(again, want);
    }
  }
}

/// Two systems built by the same seeded script, one publishing sequentially
/// and one in batches, must be observationally identical: per-event
/// outcomes AND the accounting ledger.
TEST(PublishBatch, ByteIdenticalToSequentialLoop) {
  for (const AacsMode mode : {AacsMode::kExact, AacsMode::kCoarse}) {
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      sim::SystemConfig cfg;
      cfg.schema = workload::stock_schema();
      cfg.graph = overlay::fig7_tree();
      cfg.arith_mode = mode;
      sim::SimSystem seq(cfg), par(cfg);

      workload::SubGenParams sp;
      sp.subsumption = 0.4;
      workload::SubscriptionGenerator gen(cfg.schema, sp, 2024 + threads);
      for (uint32_t i = 0; i < 150; ++i) {
        const auto sub = gen.next();
        const auto b = static_cast<overlay::BrokerId>(i % seq.broker_count());
        seq.subscribe(b, sub);
        par.subscribe(b, sub);
      }
      seq.run_propagation_period();
      par.run_propagation_period();

      workload::EventGenerator egen(cfg.schema, gen.pools(), {}, 77);
      std::vector<Event> events;
      for (int i = 0; i < 40; ++i) events.push_back(egen.next());

      std::vector<sim::SimSystem::PublishOutcome> want;
      want.reserve(events.size());
      for (const Event& e : events) want.push_back(seq.publish(2, e));

      util::ThreadPool pool(threads);
      const auto got = par.publish_batch(2, events, pool);

      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].delivered, want[i].delivered) << "event " << i;
        EXPECT_EQ(got[i].candidates, want[i].candidates) << "event " << i;
        EXPECT_EQ(got[i].route.visited, want[i].route.visited) << "event " << i;
        EXPECT_EQ(got[i].route.forward_hops, want[i].route.forward_hops);
        EXPECT_EQ(got[i].route.delivery_hops, want[i].route.delivery_hops);
      }
      for (size_t t = 0; t < sim::kMsgTypeCount; ++t) {
        const auto mt = static_cast<sim::MsgType>(t);
        EXPECT_EQ(par.accounting().messages(mt), seq.accounting().messages(mt));
        EXPECT_EQ(par.accounting().bytes(mt), seq.accounting().bytes(mt));
      }
    }
  }
}

TEST(PublishBatch, DefaultPoolOverloadWorks) {
  sim::SystemConfig cfg;
  cfg.schema = workload::stock_schema();
  cfg.graph = overlay::ring(6);
  sim::SimSystem sys(cfg);
  const auto sub = model::SubscriptionBuilder(cfg.schema)
                       .where("symbol", model::Op::kEq, "OTE")
                       .build();
  const SubId id = sys.subscribe(1, sub);
  sys.run_propagation_period();
  const auto e = model::EventBuilder(cfg.schema).set("symbol", "OTE").build();
  const std::vector<Event> events(8, e);
  const auto out = sys.publish_batch(0, events);
  ASSERT_EQ(out.size(), events.size());
  for (const auto& o : out) EXPECT_EQ(o.delivered, std::vector<SubId>{id});
}

TEST(ThreadPool, SubmitWaitAndParallelFor) {
  for (const size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
    util::ThreadPool pool(threads);
    std::atomic<int> hits{0};
    for (int i = 0; i < 100; ++i) pool.submit([&hits] { ++hits; });
    pool.wait();
    EXPECT_EQ(hits.load(), 100);
    // wait() with nothing outstanding returns immediately.
    pool.wait();

    std::vector<int> marks(1000, 0);
    pool.parallel_for(marks.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) marks[i] = 1;
    });
    EXPECT_EQ(std::accumulate(marks.begin(), marks.end(), 0), 1000);
    pool.parallel_for(0, [&](size_t, size_t) { FAIL() << "no work expected"; });
  }
}

}  // namespace
}  // namespace subsum
