// Algebraic properties of summary merging (the basis of multi-broker
// summaries, paper §4.1). Structural equality of merged summaries is too
// strong for SACS (generalization is order-sensitive), so the properties
// are stated the way the system actually relies on them: MATCH-EQUIVALENCE
// (two summaries match the same ids for every event) plus the safety
// direction (merging never loses ids).
#include <gtest/gtest.h>

#include "core/matcher.h"
#include "core/serialize.h"
#include "util/rng.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace subsum::core {
namespace {

using model::Event;
using model::Schema;
using model::SubId;
using model::Subscription;

struct AlgebraCase {
  uint64_t seed;
  GeneralizePolicy policy;
  AacsMode mode;
};

class SummaryAlgebra : public ::testing::TestWithParam<AlgebraCase> {
 protected:
  void SetUp() override {
    schema_ = workload::stock_schema();
    workload::SubGenParams sp;
    sp.subsumption = 0.6;
    sp.range_tightness = 0.4;  // exercise splitting and absorption
    gen_.emplace(schema_, sp, GetParam().seed);
    events_.emplace(schema_, gen_->pools(), workload::EventGenParams{}, GetParam().seed + 1);
    for (int i = 0; i < 120; ++i) probe_.push_back(events_->next());
  }

  BrokerSummary make(uint32_t broker, size_t count) {
    BrokerSummary s(schema_, GetParam().policy, GetParam().mode);
    for (uint32_t i = 0; i < count; ++i) {
      const Subscription sub = gen_->next();
      s.add(sub, SubId{broker, i, sub.mask()});
    }
    return s;
  }

  void expect_match_equivalent(const BrokerSummary& a, const BrokerSummary& b,
                               const char* what) {
    for (const auto& e : probe_) {
      EXPECT_EQ(match(a, e), match(b, e)) << what;
    }
  }

  void expect_superset(const BrokerSummary& bigger, const BrokerSummary& smaller,
                       const char* what) {
    for (const auto& e : probe_) {
      const auto big = match(bigger, e);
      const auto small = match(smaller, e);
      EXPECT_TRUE(std::includes(big.begin(), big.end(), small.begin(), small.end()))
          << what;
    }
  }

  Schema schema_;
  std::optional<workload::SubscriptionGenerator> gen_;
  std::optional<workload::EventGenerator> events_;
  std::vector<Event> probe_;
};

TEST_P(SummaryAlgebra, MergeIsIdempotent) {
  const BrokerSummary a = make(1, 60);
  BrokerSummary twice = a;
  twice.merge(a);
  expect_match_equivalent(twice, a, "a U a == a");
}

bool lossless(const AlgebraCase& c) {
  return c.policy == GeneralizePolicy::kNone && c.mode == AacsMode::kExact;
}

TEST_P(SummaryAlgebra, MergeIsCommutativeUpToMatching) {
  // Exact modes commute precisely. Lossy modes are order-sensitive (which
  // covering row an id joins depends on insertion order), so there the
  // guarantee is mutual safety: both orders cover both inputs.
  const BrokerSummary a = make(1, 50);
  const BrokerSummary b = make(2, 50);
  BrokerSummary ab = a;
  ab.merge(b);
  BrokerSummary ba = b;
  ba.merge(a);
  if (lossless(GetParam())) {
    expect_match_equivalent(ab, ba, "a U b == b U a");
  } else {
    expect_superset(ab, a, "a U b ⊇ a");
    expect_superset(ab, b, "a U b ⊇ b");
    expect_superset(ba, a, "b U a ⊇ a");
    expect_superset(ba, b, "b U a ⊇ b");
  }
}

TEST_P(SummaryAlgebra, MergeIsAssociativeUpToMatching) {
  const BrokerSummary a = make(1, 35);
  const BrokerSummary b = make(2, 35);
  const BrokerSummary c = make(3, 35);
  BrokerSummary left = a;  // (a U b) U c
  left.merge(b);
  left.merge(c);
  BrokerSummary bc = b;  // a U (b U c)
  bc.merge(c);
  BrokerSummary right = a;
  right.merge(bc);
  if (lossless(GetParam())) {
    expect_match_equivalent(left, right, "(a U b) U c == a U (b U c)");
  } else {
    for (const auto* part : {&a, &b, &c}) {
      expect_superset(left, *part, "(a U b) U c covers all parts");
      expect_superset(right, *part, "a U (b U c) covers all parts");
    }
  }
}

TEST_P(SummaryAlgebra, MergeNeverLosesMatches) {
  const BrokerSummary a = make(1, 50);
  const BrokerSummary b = make(2, 50);
  BrokerSummary ab = a;
  ab.merge(b);
  expect_superset(ab, a, "a U b ⊇ a");
  expect_superset(ab, b, "a U b ⊇ b");
}

TEST_P(SummaryAlgebra, SerializationCommutesWithMerge) {
  const BrokerSummary a = make(1, 40);
  const BrokerSummary b = make(2, 40);
  const WireConfig wire{model::SubIdCodec(8, 1u << 10, schema_.attr_count()), 8};

  BrokerSummary merged = a;
  merged.merge(b);

  // decode(encode(a)) merged with decode(encode(b)) must match-equal
  // merge-then-encode-decode.
  BrokerSummary via_wire =
      decode_summary(encode_summary(a, wire), schema_, GetParam().policy, GetParam().mode);
  via_wire.merge(
      decode_summary(encode_summary(b, wire), schema_, GetParam().policy, GetParam().mode));
  const BrokerSummary direct = decode_summary(encode_summary(merged, wire), schema_,
                                              GetParam().policy, GetParam().mode);
  expect_match_equivalent(via_wire, direct, "wire∘merge == merge∘wire");
}

TEST_P(SummaryAlgebra, RemoveUndoesAddUpToMatching) {
  // Under kNone + kExact this is an exact inverse; under lossy modes the
  // leftover may only ever ADD ids (safety direction).
  BrokerSummary base = make(1, 40);
  const BrokerSummary snapshot = base;
  const Subscription extra = gen_->next();
  const SubId id{7, 999, extra.mask()};
  base.add(extra, id);
  base.remove(id);
  if (GetParam().policy == GeneralizePolicy::kNone && GetParam().mode == AacsMode::kExact) {
    expect_match_equivalent(base, snapshot, "remove(add(x)) == identity");
  } else {
    expect_superset(base, snapshot, "remove(add(x)) ⊇ identity");
  }
  // In every mode, the removed id itself must be gone.
  for (const auto& e : probe_) {
    for (const auto& m : match(base, e)) EXPECT_FALSE(m == id);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SummaryAlgebra,
    ::testing::Values(AlgebraCase{1, GeneralizePolicy::kSafe, AacsMode::kExact},
                      AlgebraCase{2, GeneralizePolicy::kSafe, AacsMode::kCoarse},
                      AlgebraCase{3, GeneralizePolicy::kNone, AacsMode::kExact},
                      AlgebraCase{4, GeneralizePolicy::kAggressive, AacsMode::kCoarse}));

}  // namespace
}  // namespace subsum::core
