// Failure injection and robustness for the TCP layer: malformed frames,
// unknown message kinds, connection storms, concurrent publishers, and
// propagation across multiple periods with churn.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/cluster.h"
#include "overlay/topologies.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "workload/stock_schema.h"

namespace subsum::net {
namespace {

using namespace std::chrono_literals;
using model::Op;
using model::Schema;
using model::SubId;
using model::SubscriptionBuilder;

Schema schema_v() { return workload::stock_schema(); }

TEST(NetRobustness, GarbageBytesDoNotKillTheBroker) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1));
  util::Rng rng(1);

  for (int trial = 0; trial < 30; ++trial) {
    try {
      Socket sock = connect_local(cluster.port_of(0));
      std::vector<std::byte> junk(1 + rng.below(64));
      for (auto& b : junk) b = std::byte{static_cast<uint8_t>(rng.below(256))};
      sock.send_all(junk);
      // Either the broker replies something or drops us; both fine.
    } catch (const NetError&) {
    }
  }
  // The broker still serves real clients.
  auto client = cluster.connect(0);
  const auto id = client->subscribe(
      SubscriptionBuilder(s).where("symbol", Op::kEq, "ok").build());
  client->publish(model::EventBuilder(s).set("symbol", "ok").build());
  const auto note = client->next_notification(2000ms);
  ASSERT_TRUE(note.has_value());
  EXPECT_EQ(note->ids, std::vector<SubId>{id});
}

TEST(NetRobustness, MalformedPayloadsRejectedPerConnection) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1));

  // Valid frame header, garbage subscribe payload: the broker must drop
  // only this connection.
  {
    Socket sock = connect_local(cluster.port_of(0));
    const std::vector<std::byte> junk = {std::byte{0xFF}, std::byte{0xFF},
                                         std::byte{0xFF}};
    send_frame(sock, MsgKind::kSubscribe, junk);
    // Server closes or errors; reading should terminate either way.
    try {
      (void)recv_frame(sock);
    } catch (const NetError&) {
    }
  }
  auto client = cluster.connect(0);
  EXPECT_NO_THROW(client->subscribe(
      SubscriptionBuilder(s).where("price", Op::kGt, 1.0).build()));
}

TEST(NetRobustness, UnknownMessageKindGetsErrorReply) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1));
  Socket sock = connect_local(cluster.port_of(0));
  send_frame(sock, static_cast<MsgKind>(55), {});
  const auto reply = recv_frame(sock);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->kind, MsgKind::kError);
}

TEST(NetRobustness, OversizedFrameRejectedClientSide) {
  // The cap guards both directions; sending is refused locally.
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1));
  Socket sock = connect_local(cluster.port_of(0));
  std::vector<std::byte> huge(kMaxFrameBytes + 1);
  EXPECT_THROW(send_frame(sock, MsgKind::kPublish, huge), NetError);
}

TEST(NetRobustness, ConnectionStorm) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2));
  for (int i = 0; i < 100; ++i) {
    Socket sock = connect_local(cluster.port_of(i % 2));
    // Immediately drop.
  }
  auto client = cluster.connect(0);
  EXPECT_NO_THROW(client->subscribe(
      SubscriptionBuilder(s).where("price", Op::kGt, 1.0).build()));
}

TEST(NetRobustness, ConcurrentPublishersAndSubscribers) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::fig7_tree());

  // One subscriber per broker on a shared topic.
  std::vector<std::unique_ptr<Client>> subs;
  std::vector<SubId> ids;
  for (overlay::BrokerId b = 0; b < cluster.size(); ++b) {
    subs.push_back(cluster.connect(b));
    ids.push_back(subs.back()->subscribe(
        SubscriptionBuilder(s).where("symbol", Op::kEq, "storm").build()));
  }
  cluster.run_propagation_period();

  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      try {
        auto client = cluster.connect(static_cast<overlay::BrokerId>(t % cluster.size()));
        for (int i = 0; i < kEventsPerThread; ++i) {
          client->publish(model::EventBuilder(s)
                              .set("symbol", "storm")
                              .set("volume", int64_t{t * 100 + i})
                              .build());
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);

  // Every subscriber got every event exactly once.
  const int expected = kThreads * kEventsPerThread;
  for (size_t b = 0; b < subs.size(); ++b) {
    int got = 0;
    while (got < expected) {
      const auto note = subs[b]->next_notification(2000ms);
      ASSERT_TRUE(note.has_value()) << "broker " << b << " saw only " << got;
      EXPECT_EQ(note->ids, std::vector<SubId>{ids[b]});
      ++got;
    }
    EXPECT_FALSE(subs[b]->next_notification(100ms).has_value()) << "duplicate at " << b;
  }
}

TEST(NetRobustness, MultiPeriodChurnOverTcp) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::fig7_tree());
  auto c3 = cluster.connect(3);
  auto publisher = cluster.connect(9);

  // Period 1: subscribe and verify delivery.
  const auto id1 = c3->subscribe(
      SubscriptionBuilder(s).where("symbol", Op::kEq, "alpha").build());
  cluster.run_propagation_period();
  publisher->publish(model::EventBuilder(s).set("symbol", "alpha").build());
  ASSERT_TRUE(c3->next_notification(2000ms).has_value());

  // Period 2: unsubscribe; the removal piggybacks on the next period.
  c3->unsubscribe(id1);
  cluster.run_propagation_period();
  publisher->publish(model::EventBuilder(s).set("symbol", "alpha").build());
  EXPECT_FALSE(c3->next_notification(200ms).has_value());

  // Period 3: a new subscription still works after the churn.
  const auto id2 = c3->subscribe(
      SubscriptionBuilder(s).where("symbol", Op::kEq, "beta").build());
  cluster.run_propagation_period();
  publisher->publish(model::EventBuilder(s).set("symbol", "beta").build());
  const auto note = c3->next_notification(2000ms);
  ASSERT_TRUE(note.has_value());
  EXPECT_EQ(note->ids, std::vector<SubId>{id2});
}

TEST(NetRobustness, Cw24ClusterEndToEnd) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::cable_wireless_24());
  auto boston = cluster.connect(23);
  auto seattle = cluster.connect(0);
  const auto id = boston->subscribe(SubscriptionBuilder(s)
                                        .where("price", Op::kGt, 100.0)
                                        .where("sector", Op::kEq, "energy")
                                        .build());
  cluster.run_propagation_period();
  seattle->publish(model::EventBuilder(s)
                       .set("price", 140.0)
                       .set("sector", "energy")
                       .build());
  const auto note = boston->next_notification(2000ms);
  ASSERT_TRUE(note.has_value());
  EXPECT_EQ(note->ids, std::vector<SubId>{id});
  seattle->publish(model::EventBuilder(s)
                       .set("price", 90.0)
                       .set("sector", "energy")
                       .build());
  EXPECT_FALSE(boston->next_notification(200ms).has_value());
}

}  // namespace
}  // namespace subsum::net
