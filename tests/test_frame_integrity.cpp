// Partial-frame property test across ALL frame kinds: a valid frame
// truncated at any byte offset — or a full-length frame of junk — must
// never crash the broker or mutate its state. Extends the kSummary-only
// integrity tests in test_fault.cpp to the whole protocol surface.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/delta.h"
#include "net/cluster.h"
#include "overlay/topologies.h"
#include "util/bytes.h"
#include "workload/stock_schema.h"

namespace subsum::net {
namespace {

using namespace std::chrono_literals;
using model::EventBuilder;
using model::Op;
using model::Schema;
using model::SubId;
using model::SubscriptionBuilder;

Schema schema_v() { return workload::stock_schema(); }

RpcPolicy tight_policy() {
  RpcPolicy p;
  p.connect_timeout = 250ms;
  p.io_timeout = 1000ms;
  p.backoff = {5ms, 40ms, 2};
  return p;
}

/// connect_local with a few retries: the test opens hundreds of
/// connections in a tight loop, which can transiently fill the accept
/// backlog.
Socket connect_patiently(uint16_t port) {
  for (int attempt = 0;; ++attempt) {
    try {
      return connect_local(port, 500ms);
    } catch (const NetError&) {
      if (attempt >= 20) throw;
      std::this_thread::sleep_for(20ms);
    }
  }
}

/// One complete wire frame: u32 len | u8 kind | payload.
std::vector<std::byte> wire_frame(MsgKind kind, std::span<const std::byte> payload) {
  util::BufWriter w;
  w.put_u32(static_cast<uint32_t>(payload.size()));
  w.put_u8(static_cast<uint8_t>(kind));
  w.put_bytes(payload);
  return std::move(w).take();
}

/// A structurally valid payload for every kind the broker can receive.
/// Acks and kNotify are client-bound; the broker treats them as unknown,
/// which must be just as harmless.
std::vector<std::pair<MsgKind, std::vector<std::byte>>> valid_payloads(
    const Schema& s, size_t brokers) {
  const auto sub = SubscriptionBuilder(s).where("symbol", Op::kEq, "probe").build();
  const auto event = EventBuilder(s).set("symbol", "probe").build();
  const SubId id{1, 0, sub.mask()};
  const core::WireConfig wire{
      model::SubIdCodec(static_cast<uint32_t>(brokers), uint64_t{1} << 20,
                        s.attr_count()),
      8};
  core::BrokerSummary summary(s);
  summary.add(sub, id);

  std::vector<std::pair<MsgKind, std::vector<std::byte>>> out;
  {
    util::BufWriter w;
    put_subscription(w, sub);
    out.emplace_back(MsgKind::kSubscribe, std::move(w).take());
  }
  out.emplace_back(MsgKind::kAttach, encode(AttachMsg{{id}}));
  {
    util::BufWriter w;
    put_sub_id(w, id);
    out.emplace_back(MsgKind::kUnsubscribe, std::move(w).take());
  }
  {
    util::BufWriter w;
    put_event(w, event);
    out.emplace_back(MsgKind::kPublish, std::move(w).take());
  }
  SummaryMsg sm;
  sm.from = 1;
  sm.merged_brokers = {1};
  sm.epochs = {0};
  sm.removals = {id};
  sm.summary = core::encode_summary(summary, wire);
  out.emplace_back(MsgKind::kSummary, encode(sm));
  EventMsg em;
  em.origin = 1;
  em.seq = 42;
  em.brocli = make_bitmap(brokers);
  bitmap_set(em.brocli, 1);
  em.event = event;
  out.emplace_back(MsgKind::kEvent, encode(em, s));
  out.emplace_back(MsgKind::kDeliver, encode(DeliverMsg{1, {id}, event}, s));
  out.emplace_back(MsgKind::kNotify, encode(NotifyMsg{{id}, event}, s));
  out.emplace_back(MsgKind::kTrigger, encode(TriggerMsg{1}));
  out.emplace_back(MsgKind::kStats, std::vector<std::byte>{});
  out.emplace_back(MsgKind::kTrace, encode(TraceRequestMsg{7, 8}));
  out.emplace_back(MsgKind::kDump, std::vector<std::byte>{});
  out.emplace_back(MsgKind::kDumpAck, std::vector<std::byte>{});
  out.emplace_back(MsgKind::kSubscribeAck, encode(SubscribeAckMsg{id}));
  out.emplace_back(MsgKind::kAttachAck, encode(AttachAckMsg{1}));
  out.emplace_back(MsgKind::kError, std::vector<std::byte>{});
  // Governor admission rejection: kError with a retry-after payload.
  out.emplace_back(MsgKind::kError, encode(ErrorMsg{ErrorMsg::kThrottled, 250}));

  // v4 soft-state frames (PROTOCOL v4): a structurally valid delta
  // announcement, a sync request, and lease renewals — plus their acks,
  // which are client/peer-bound and must be harmless as unknowns.
  {
    core::BrokerSummary grown = summary;
    const auto sub2 = SubscriptionBuilder(s).where("symbol", Op::kEq, "probe2").build();
    grown.add(sub2, SubId{1, 1, sub2.mask()});
    const core::SummaryImage base = core::extract_image(summary);
    const core::SummaryImage target = core::extract_image(grown);
    core::DeltaHeader hdr;
    hdr.base_version = 1;
    hdr.new_version = 2;
    hdr.base_digest = core::image_digest(base);
    hdr.new_digest = core::image_digest(target);
    SummaryDeltaMsg dm;
    dm.from = 1;
    dm.merged_brokers = {1};
    dm.epochs = {0};
    dm.removals = {id};
    dm.delta = core::encode_delta(core::diff_images(base, target), s, wire, hdr);
    out.emplace_back(MsgKind::kSummaryDelta, encode(dm));
  }
  out.emplace_back(MsgKind::kSummarySync, encode(SummarySyncMsg{1}));
  out.emplace_back(MsgKind::kLeaseRenew, encode(LeaseRenewMsg{{id}}));
  out.emplace_back(MsgKind::kSummaryDeltaAck,
                   encode(SummaryDeltaAckMsg{SummaryDeltaAckMsg::kApplied}));
  out.emplace_back(MsgKind::kSummarySyncAck, encode(sm));
  out.emplace_back(MsgKind::kLeaseRenewAck, encode(LeaseRenewAckMsg{1}));
  return out;
}

TEST(FrameIntegrity, AnyTruncationOfAnyKindNeverCrashesOrMutatesState) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, tight_policy());
  auto keeper = cluster.connect(1);
  const SubId kept = keeper->subscribe(
      SubscriptionBuilder(s).where("symbol", Op::kEq, "keep").build());
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  const auto before = cluster.node(1).snapshot();

  for (const auto& [kind, payload] : valid_payloads(s, cluster.size())) {
    const auto frame = wire_frame(kind, payload);
    // Every strict prefix: the frame dies inside the header or payload.
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      Socket raw = connect_patiently(cluster.port_of(1));
      raw.send_all(std::span(frame).first(cut));
    }  // abrupt close each iteration
  }
  std::this_thread::sleep_for(100ms);  // drain the handler threads

  const auto after = cluster.node(1).snapshot();
  EXPECT_EQ(after.local_subs, before.local_subs);
  EXPECT_EQ(after.merged_brokers, before.merged_brokers);
  EXPECT_EQ(after.held_wire_bytes, before.held_wire_bytes);
  EXPECT_EQ(after.pending_redeliveries, before.pending_redeliveries);

  // The broker is still fully alive: a real round-trip works.
  auto c0 = cluster.connect(0);
  c0->publish(EventBuilder(s).set("symbol", "keep").build());
  const auto note = keeper->next_notification(2000ms);
  ASSERT_TRUE(note.has_value());
  EXPECT_EQ(note->ids, std::vector<SubId>{kept});
}

TEST(FrameIntegrity, FullLengthJunkPayloadsAreRejectedWithoutMutation) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, tight_policy());
  auto keeper = cluster.connect(1);
  const SubId kept = keeper->subscribe(
      SubscriptionBuilder(s).where("symbol", Op::kEq, "keep").build());
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  const auto before = cluster.node(1).snapshot();

  // All-0xFF payloads overflow every varint/length field on decode; the
  // broker must reject the frame (dropping the connection is fine) with
  // its state untouched.
  for (const auto& [kind, payload] : valid_payloads(s, cluster.size())) {
    const std::vector<std::byte> junk(payload.size() + 16, std::byte{0xFF});
    Socket raw = connect_patiently(cluster.port_of(1));
    raw.set_recv_timeout(2000ms);
    send_frame(raw, kind, junk);
    try {
      (void)recv_frame(raw);  // ack, kError, or a dropped connection
    } catch (const NetError&) {
    }
  }
  std::this_thread::sleep_for(100ms);

  const auto after = cluster.node(1).snapshot();
  EXPECT_EQ(after.local_subs, before.local_subs);
  EXPECT_EQ(after.merged_brokers, before.merged_brokers);
  EXPECT_EQ(after.held_wire_bytes, before.held_wire_bytes);

  auto c0 = cluster.connect(0);
  c0->publish(EventBuilder(s).set("symbol", "keep").build());
  const auto note = keeper->next_notification(2000ms);
  ASSERT_TRUE(note.has_value());
  EXPECT_EQ(note->ids, std::vector<SubId>{kept});
}

}  // namespace
}  // namespace subsum::net
