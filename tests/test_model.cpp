#include <gtest/gtest.h>

#include "model/event.h"
#include "model/schema.h"
#include "model/subscription.h"
#include "model/value.h"
#include "workload/stock_schema.h"

namespace subsum::model {
namespace {

Schema test_schema() { return workload::stock_schema(); }

TEST(Value, Types) {
  EXPECT_EQ(Value(int64_t{5}).type(), AttrType::kInt);
  EXPECT_EQ(Value(5).type(), AttrType::kInt);
  EXPECT_EQ(Value(5.0).type(), AttrType::kFloat);
  EXPECT_EQ(Value("x").type(), AttrType::kString);
  EXPECT_EQ(Value(std::string("x")).type(), AttrType::kString);
}

TEST(Value, Accessors) {
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).as_float(), 2.5);
  EXPECT_EQ(Value("abc").as_string(), "abc");
  EXPECT_DOUBLE_EQ(Value(7).as_number(), 7.0);
  EXPECT_DOUBLE_EQ(Value(2.5).as_number(), 2.5);
}

TEST(Value, AccessorTypeErrors) {
  EXPECT_THROW((void)Value("x").as_int(), TypeError);
  EXPECT_THROW((void)Value(1).as_string(), TypeError);
  EXPECT_THROW((void)Value("x").as_number(), TypeError);
  EXPECT_THROW((void)Value(1.0).as_int(), TypeError);
}

TEST(Value, NoCrossTypeEquality) {
  EXPECT_FALSE(Value(1) == Value(1.0));
  EXPECT_TRUE(Value(1) == Value(int64_t{1}));
}

TEST(Value, Arithmetic) {
  EXPECT_TRUE(Value(1).is_arithmetic());
  EXPECT_TRUE(Value(1.5).is_arithmetic());
  EXPECT_FALSE(Value("s").is_arithmetic());
}

TEST(Schema, LookupAndTypes) {
  const Schema s = test_schema();
  EXPECT_EQ(s.attr_count(), 10u);
  EXPECT_EQ(s.id_of("exchange"), 0u);
  EXPECT_EQ(s.type_of(s.id_of("price")), AttrType::kFloat);
  EXPECT_EQ(s.type_of(s.id_of("volume")), AttrType::kInt);
  EXPECT_EQ(s.type_of(s.id_of("symbol")), AttrType::kString);
  EXPECT_FALSE(s.find("nope").has_value());
  EXPECT_THROW((void)s.id_of("nope"), std::out_of_range);
  EXPECT_EQ(s.arithmetic_count(), 6u);
  EXPECT_EQ(s.string_count(), 4u);
}

TEST(Schema, RejectsDuplicatesAndEmpty) {
  EXPECT_THROW(Schema({{"a", AttrType::kInt}, {"a", AttrType::kFloat}}), std::invalid_argument);
  EXPECT_THROW(Schema({{"", AttrType::kInt}}), std::invalid_argument);
}

TEST(Schema, RejectsTooManyAttributes) {
  std::vector<AttributeSpec> many;
  for (int i = 0; i < 65; ++i) many.push_back({"a" + std::to_string(i), AttrType::kInt});
  EXPECT_THROW((void)Schema(std::move(many)), std::invalid_argument);
}

TEST(Event, BuilderAndLookup) {
  const Schema s = test_schema();
  const Event e = EventBuilder(s)
                      .set("price", 8.40)
                      .set("symbol", "OTE")
                      .set("volume", int64_t{132700})
                      .build();
  EXPECT_EQ(e.size(), 3u);
  ASSERT_NE(e.find(s.id_of("price")), nullptr);
  EXPECT_DOUBLE_EQ(e.find(s.id_of("price"))->as_float(), 8.40);
  EXPECT_EQ(e.find(s.id_of("exchange")), nullptr);
  EXPECT_EQ(popcount(e.mask()), 3);
}

TEST(Event, AttributesSortedById) {
  const Schema s = test_schema();
  const Event e = EventBuilder(s).set("volume", 1).set("exchange", "NYSE").build();
  ASSERT_EQ(e.attrs().size(), 2u);
  EXPECT_LT(e.attrs()[0].attr, e.attrs()[1].attr);
}

TEST(Event, RejectsTypeMismatch) {
  const Schema s = test_schema();
  EXPECT_THROW(EventBuilder(s).set("price", "cheap").build(), TypeError);
  EXPECT_THROW(EventBuilder(s).set("symbol", 5).build(), TypeError);
  // Int attribute refuses a float value (no silent coercion).
  EXPECT_THROW(EventBuilder(s).set("volume", 1.5).build(), TypeError);
}

TEST(Event, RejectsDuplicateAttribute) {
  const Schema s = test_schema();
  EXPECT_THROW(EventBuilder(s).set("price", 1.0).set("price", 2.0).build(),
               std::invalid_argument);
}

TEST(Constraint, ArithmeticOperators) {
  const Schema s = test_schema();
  const AttrId price = s.id_of("price");
  EXPECT_TRUE((Constraint{price, Op::kEq, 8.4}.matches(Value(8.4))));
  EXPECT_FALSE((Constraint{price, Op::kEq, 8.4}.matches(Value(8.5))));
  EXPECT_TRUE((Constraint{price, Op::kNe, 8.4}.matches(Value(8.5))));
  EXPECT_TRUE((Constraint{price, Op::kLt, 8.7}.matches(Value(8.4))));
  EXPECT_FALSE((Constraint{price, Op::kLt, 8.4}.matches(Value(8.4))));
  EXPECT_TRUE((Constraint{price, Op::kLe, 8.4}.matches(Value(8.4))));
  EXPECT_TRUE((Constraint{price, Op::kGt, 8.3}.matches(Value(8.4))));
  EXPECT_TRUE((Constraint{price, Op::kGe, 8.4}.matches(Value(8.4))));
  EXPECT_FALSE((Constraint{price, Op::kGe, 8.5}.matches(Value(8.4))));
}

TEST(Constraint, StringOperators) {
  const Schema s = test_schema();
  const AttrId sym = s.id_of("symbol");
  EXPECT_TRUE((Constraint{sym, Op::kEq, "OTE"}.matches(Value("OTE"))));
  EXPECT_TRUE((Constraint{sym, Op::kNe, "OTE"}.matches(Value("X"))));
  EXPECT_TRUE((Constraint{sym, Op::kPrefix, "OT"}.matches(Value("OTE"))));
  EXPECT_FALSE((Constraint{sym, Op::kPrefix, "TE"}.matches(Value("OTE"))));
  EXPECT_TRUE((Constraint{sym, Op::kSuffix, "TE"}.matches(Value("OTE"))));
  EXPECT_TRUE((Constraint{sym, Op::kContains, "T"}.matches(Value("OTE"))));
  EXPECT_FALSE((Constraint{sym, Op::kContains, "z"}.matches(Value("OTE"))));
}

TEST(Constraint, Validation) {
  const Schema s = test_schema();
  // String operator on an arithmetic attribute.
  EXPECT_THROW(validate({s.id_of("price"), Op::kPrefix, "x"}, s), std::invalid_argument);
  // Ordering operator on a string attribute.
  EXPECT_THROW(validate({s.id_of("symbol"), Op::kLt, "x"}, s), std::invalid_argument);
  // Wrong operand type.
  EXPECT_THROW(validate({s.id_of("price"), Op::kEq, "x"}, s), TypeError);
  EXPECT_THROW(validate({s.id_of("volume"), Op::kEq, 1.5}, s), TypeError);
  EXPECT_THROW(validate({s.id_of("symbol"), Op::kEq, 5}, s), TypeError);
  // Out of range attribute.
  EXPECT_THROW(validate({99, Op::kEq, 5}, s), std::invalid_argument);
  // Valid ones pass.
  EXPECT_NO_THROW(validate({s.id_of("price"), Op::kLt, 8.7}, s));
  EXPECT_NO_THROW(validate({s.id_of("symbol"), Op::kPrefix, "OT"}, s));
}

TEST(Subscription, PaperFigure3Examples) {
  const Schema s = test_schema();
  // Subscription 1: exchange = N*SE (contains-style; we use suffix "SE"
  // with prefix "N"), symbol = OTE, 8.30 < price < 8.70.
  const Subscription s1 = SubscriptionBuilder(s)
                              .where("exchange", Op::kPrefix, "N")
                              .where("exchange", Op::kSuffix, "SE")
                              .where("symbol", Op::kEq, "OTE")
                              .where("price", Op::kLt, 8.70)
                              .where("price", Op::kGt, 8.30)
                              .build();
  // Subscription 2: symbol >* OT, price = 8.20, volume > 130000, low < 8.05.
  const Subscription s2 = SubscriptionBuilder(s)
                              .where("symbol", Op::kPrefix, "OT")
                              .where("price", Op::kEq, 8.20)
                              .where("volume", Op::kGt, int64_t{130000})
                              .where("low", Op::kLt, 8.05)
                              .build();

  // The event of figure 2.
  const Event e = EventBuilder(s)
                      .set("exchange", "NYSE")
                      .set("symbol", "OTE")
                      .set("when", int64_t{1057057525})
                      .set("price", 8.40)
                      .set("volume", int64_t{132700})
                      .set("high", 8.80)
                      .set("low", 8.22)
                      .build();

  EXPECT_TRUE(s1.matches(e));
  EXPECT_FALSE(s2.matches(e));  // price 8.40 != 8.20 and low 8.22 >= 8.05
}

TEST(Subscription, MultipleConstraintsSameAttributeAreConjunctive) {
  const Schema s = test_schema();
  const Subscription sub = SubscriptionBuilder(s)
                               .where("price", Op::kGt, 1.0)
                               .where("price", Op::kLt, 2.0)
                               .build();
  EXPECT_TRUE(sub.matches(EventBuilder(s).set("price", 1.5).build()));
  EXPECT_FALSE(sub.matches(EventBuilder(s).set("price", 2.5).build()));
  EXPECT_FALSE(sub.matches(EventBuilder(s).set("price", 0.5).build()));
}

TEST(Subscription, EventMissingConstrainedAttributeDoesNotMatch) {
  const Schema s = test_schema();
  const Subscription sub = SubscriptionBuilder(s)
                               .where("price", Op::kGt, 1.0)
                               .where("symbol", Op::kEq, "OTE")
                               .build();
  EXPECT_FALSE(sub.matches(EventBuilder(s).set("price", 2.0).build()));
}

TEST(Subscription, EventMayHaveExtraAttributes) {
  const Schema s = test_schema();
  const Subscription sub = SubscriptionBuilder(s).where("price", Op::kGt, 1.0).build();
  EXPECT_TRUE(sub.matches(
      EventBuilder(s).set("price", 2.0).set("symbol", "X").set("volume", 5).build()));
}

TEST(Subscription, MaskMatchesConstrainedAttributes) {
  const Schema s = test_schema();
  const Subscription sub = SubscriptionBuilder(s)
                               .where("price", Op::kGt, 1.0)
                               .where("price", Op::kLt, 9.0)
                               .where("symbol", Op::kEq, "A")
                               .build();
  EXPECT_EQ(sub.mask(), attr_bit(s.id_of("price")) | attr_bit(s.id_of("symbol")));
}

TEST(Subscription, RejectsEmpty) {
  const Schema s = test_schema();
  EXPECT_THROW(Subscription(s, {}), std::invalid_argument);
}

TEST(Subscription, ConstraintsOn) {
  const Schema s = test_schema();
  const Subscription sub = SubscriptionBuilder(s)
                               .where("price", Op::kGt, 1.0)
                               .where("price", Op::kLt, 2.0)
                               .where("symbol", Op::kEq, "A")
                               .build();
  EXPECT_EQ(sub.constraints_on(s.id_of("price")).size(), 2u);
  EXPECT_EQ(sub.constraints_on(s.id_of("symbol")).size(), 1u);
  EXPECT_EQ(sub.constraints_on(s.id_of("volume")).size(), 0u);
}

}  // namespace
}  // namespace subsum::model
