// obs layer: histogram bucket math and quantiles, the Prometheus text
// exposition, the bounded trace ring, JSONL span formatting, and trace-id
// minting.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/promtext.h"
#include "obs/trace.h"

namespace subsum::obs {
namespace {

// --- Counter / Gauge --------------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  Counter* c = reg.counter("subsum_things_total");
  c->inc();
  c->inc(41);
  EXPECT_EQ(c->value(), 42u);
  EXPECT_EQ(reg.counter_value("subsum_things_total"), 42u);
  EXPECT_EQ(reg.counter_value("never_registered"), 0u);

  Gauge* g = reg.gauge("subsum_depth");
  g->set(7);
  g->add(-3);
  EXPECT_EQ(g->value(), 4);
}

TEST(Metrics, HandlesAreStable) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x");
  Counter* b = reg.counter("x");
  EXPECT_EQ(a, b);  // get-or-register returns the same object
  EXPECT_NE(reg.counter("y"), a);
  EXPECT_EQ(reg.histogram("h"), reg.histogram("h"));
  EXPECT_EQ(reg.gauge("g"), reg.gauge("g"));
}

TEST(Metrics, CounterIsThreadSafe) {
  MetricsRegistry reg;
  Counter* c = reg.counter("n");
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([c] {
      for (int i = 0; i < 10000; ++i) c->inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c->value(), 40000u);
}

// --- Histogram --------------------------------------------------------------

TEST(Histogram, BucketOfIsBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~uint64_t{0}), 64u);
}

TEST(Histogram, BucketBoundIsInclusiveUpperEdge) {
  EXPECT_EQ(Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_bound(10), 1023u);
  EXPECT_EQ(Histogram::bucket_bound(64), ~uint64_t{0});
  // Every value lands in the bucket whose bound covers it.
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull, 65535ull, 65536ull}) {
    EXPECT_LE(v, Histogram::bucket_bound(Histogram::bucket_of(v))) << v;
  }
}

TEST(Histogram, CountSumAndSnapshot) {
  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(5);
  h.observe(5);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 11u);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap[0], 1u);  // the zero
  EXPECT_EQ(snap[1], 1u);  // 1
  EXPECT_EQ(snap[3], 2u);  // 5 twice (bit width 3)
  uint64_t total = 0;
  for (uint64_t b : snap) total += b;
  EXPECT_EQ(total, 4u);
}

TEST(Histogram, QuantileReturnsBucketUpperBound) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);  // empty
  for (int i = 0; i < 90; ++i) h.observe(3);    // bucket 2, bound 3
  for (int i = 0; i < 10; ++i) h.observe(100);  // bucket 7, bound 127
  EXPECT_EQ(h.quantile(0.5), 3u);
  EXPECT_EQ(h.quantile(0.9), 3u);
  EXPECT_EQ(h.quantile(0.99), 127u);
  EXPECT_EQ(h.quantile(1.0), 127u);
}

TEST(Metrics, FGaugeStoresFractionsAndExposesAsGauge) {
  MetricsRegistry reg;
  FGauge* g = reg.fgauge("subsum_ratio");
  EXPECT_EQ(g->value(), 0.0);
  g->set(0.9375);  // exact in binary, so value() round-trips bit-for-bit
  EXPECT_EQ(g->value(), 0.9375);
  EXPECT_EQ(reg.fgauge("subsum_ratio"), g);  // get-or-register, stable handle
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE subsum_ratio gauge\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_ratio 0.9375\n"), std::string::npos);
}

TEST(Histogram, EmptyQuantileIsZeroAtEveryQ) {
  Histogram h;
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), 0u) << "q=" << q;
  }
}

TEST(Histogram, ResetReturnsToEmptyState) {
  Histogram h;
  h.observe(100);
  h.observe(~uint64_t{0});
  ASSERT_EQ(h.count(), 2u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  for (uint64_t b : h.snapshot()) EXPECT_EQ(b, 0u);
}

// --- Label escaping (format 0.0.4) ------------------------------------------

TEST(Labels, EscapeLabelValuePerFormat004) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
  EXPECT_EQ(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
}

TEST(Labels, LabeledBakesEscapedLabelIntoSeriesName) {
  EXPECT_EQ(labeled("m", "k", "v"), "m{k=\"v\"}");
  EXPECT_EQ(labeled("m", "k", "a\"b"), "m{k=\"a\\\"b\"}");
}

TEST(Labels, UnescapeInvertsEscape) {
  const std::string gnarly = "quote:\" slash:\\ newline:\n tail";
  EXPECT_EQ(unescape_label_value(escape_label_value(gnarly)), gnarly);
  // An unknown escape keeps the backslash verbatim rather than eating it.
  EXPECT_EQ(unescape_label_value("a\\qb"), "a\\qb");
}

TEST(Labels, RoundTripThroughExpositionAndParser) {
  MetricsRegistry reg;
  const std::string gnarly = "quote:\" slash:\\ newline:\n tail";
  reg.counter(labeled("subsum_rt_total", "path", gnarly))->inc(5);
  const auto samples = parse_prometheus_text(reg.prometheus_text());
  bool found = false;
  for (const auto& s : samples) {
    if (s.name != "subsum_rt_total") continue;
    found = true;
    ASSERT_NE(s.label("path"), nullptr);
    EXPECT_EQ(*s.label("path"), gnarly);
    EXPECT_EQ(s.value, 5.0);
  }
  EXPECT_TRUE(found);
}

TEST(Promtext, ParsesValuesLabelsAndSkipsCommentsAndGarbage) {
  const auto samples = parse_prometheus_text(
      "# HELP x something\n"
      "# TYPE x counter\n"
      "x 3\n"
      "y{a=\"1\",b=\"two\"} 4.5 1700000000\n"
      "this line is not a sample\n"
      "z -2\n");
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "x");
  EXPECT_EQ(samples[0].value, 3.0);
  ASSERT_EQ(samples[1].labels.size(), 2u);
  EXPECT_EQ(*samples[1].label("b"), "two");
  EXPECT_EQ(samples[1].value, 4.5);
  EXPECT_EQ(samples[2].value, -2.0);
  EXPECT_EQ(samples[1].label("missing"), nullptr);
}

// --- Prometheus exposition --------------------------------------------------

TEST(Exposition, CountersGaugesAndTypeLines) {
  MetricsRegistry reg;
  reg.counter("subsum_publishes_total")->inc(3);
  reg.gauge("subsum_queue_depth")->set(-2);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE subsum_publishes_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_publishes_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE subsum_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_queue_depth -2\n"), std::string::npos);
}

TEST(Exposition, LabeledSeriesShareOneTypeLine) {
  MetricsRegistry reg;
  reg.counter("subsum_rpc_total{peer=\"0\"}")->inc(1);
  reg.counter("subsum_rpc_total{peer=\"1\"}")->inc(2);
  const std::string text = reg.prometheus_text();
  // One TYPE line for the family, both samples present with labels.
  size_t n = 0;
  for (size_t pos = 0; (pos = text.find("# TYPE subsum_rpc_total counter", pos)) !=
                       std::string::npos;
       ++pos) {
    ++n;
  }
  EXPECT_EQ(n, 1u);
  EXPECT_NE(text.find("subsum_rpc_total{peer=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_rpc_total{peer=\"1\"} 2\n"), std::string::npos);
}

TEST(Exposition, HistogramExpandsToCumulativeBuckets) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("subsum_lat_us");
  h->observe(1);
  h->observe(3);
  h->observe(3);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE subsum_lat_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_lat_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  // Cumulative: the le=3 bucket includes the le=1 observation.
  EXPECT_NE(text.find("subsum_lat_us_bucket{le=\"3\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_lat_us_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_lat_us_sum 7\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_lat_us_count 3\n"), std::string::npos);
  // Empty buckets between 3 and +Inf are elided.
  EXPECT_EQ(text.find("le=\"7\""), std::string::npos);
}

TEST(Exposition, EmptyHistogramStillHasInfBucket) {
  MetricsRegistry reg;
  reg.histogram("subsum_idle_us");
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("subsum_idle_us_bucket{le=\"+Inf\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_idle_us_count 0\n"), std::string::npos);
}

TEST(Exposition, LabeledHistogramKeepsLabelOnEverySeries) {
  MetricsRegistry reg;
  reg.histogram("subsum_rpc_us{peer=\"3\"}")->observe(2);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE subsum_rpc_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_rpc_us_bucket{peer=\"3\",le=\"3\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_rpc_us_sum{peer=\"3\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_rpc_us_count{peer=\"3\"} 1\n"), std::string::npos);
}

// --- TraceRing --------------------------------------------------------------

Span make_span(uint64_t trace, uint64_t t) {
  Span s;
  s.trace = trace;
  s.broker = 1;
  s.phase = Phase::kRecv;
  s.t_us = t;
  return s;
}

TEST(TraceRing, AppendAndSnapshotInOrder) {
  TraceRing ring(8);
  for (uint64_t i = 0; i < 3; ++i) ring.append(make_span(7, i));
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].t_us, 0u);
  EXPECT_EQ(spans[2].t_us, 2u);
  EXPECT_EQ(ring.appended(), 3u);
}

TEST(TraceRing, OverwritesOldestWhenFull) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) ring.append(make_span(7, i));
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // The newest 4, oldest first.
  EXPECT_EQ(spans[0].t_us, 6u);
  EXPECT_EQ(spans[3].t_us, 9u);
  EXPECT_EQ(ring.appended(), 10u);
}

TEST(TraceRing, ForTraceFiltersAndClearEmpties) {
  TraceRing ring(8);
  ring.append(make_span(1, 0));
  ring.append(make_span(2, 1));
  ring.append(make_span(1, 2));
  const auto only1 = ring.for_trace(1);
  ASSERT_EQ(only1.size(), 2u);
  EXPECT_EQ(only1[0].t_us, 0u);
  EXPECT_EQ(only1[1].t_us, 2u);
  EXPECT_TRUE(ring.for_trace(99).empty());
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
}

// --- JSONL ------------------------------------------------------------------

TEST(Jsonl, FixedFieldOrderAndHexTrace) {
  Span s;
  s.trace = 0xabcdef;
  s.broker = 4;
  s.phase = Phase::kMatch;
  s.t_us = 17;
  s.bytes = 3;
  const std::vector<Span> spans = {s};
  EXPECT_EQ(to_jsonl(spans),
            "{\"trace\":\"0000000000abcdef\",\"broker\":4,\"phase\":\"match\","
            "\"t_us\":17,\"bytes\":3}\n");
}

TEST(Jsonl, PeerFieldOnlyWhenPresent) {
  Span s;
  s.trace = 1;
  s.broker = 0;
  s.phase = Phase::kForward;
  s.peer = 9;
  s.t_us = 2;
  s.bytes = 0;
  const std::vector<Span> spans = {s};
  EXPECT_EQ(to_jsonl(spans),
            "{\"trace\":\"0000000000000001\",\"broker\":0,\"phase\":\"forward\","
            "\"peer\":9,\"t_us\":2,\"bytes\":0}\n");
}

TEST(Jsonl, PhaseNamesAreStable) {
  EXPECT_EQ(to_string(Phase::kRecv), "recv");
  EXPECT_EQ(to_string(Phase::kMatch), "match");
  EXPECT_EQ(to_string(Phase::kForward), "forward");
  EXPECT_EQ(to_string(Phase::kDeliver), "deliver");
  EXPECT_EQ(to_string(Phase::kRetry), "retry");
  EXPECT_EQ(to_string(Phase::kRedeliver), "redeliver");
}

// --- trace ids --------------------------------------------------------------

TEST(TraceId, DeterministicAndNeverZero) {
  EXPECT_EQ(mint_trace_id(3, 7, 0), mint_trace_id(3, 7, 0));
  EXPECT_NE(mint_trace_id(3, 7, 0), mint_trace_id(3, 8, 0));
  EXPECT_NE(mint_trace_id(3, 7, 0), mint_trace_id(4, 7, 0));
  EXPECT_NE(mint_trace_id(3, 7, 0), mint_trace_id(3, 7, 1));
  EXPECT_NE(mint_trace_id(0, 0, 0), 0u);  // 0 is reserved for "untraced"
}

}  // namespace
}  // namespace subsum::obs
