// obs layer: histogram bucket math and quantiles, the Prometheus text
// exposition, the bounded trace ring, JSONL span formatting, and trace-id
// minting.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/memacct.h"
#include "obs/metrics.h"
#include "obs/promtext.h"
#include "obs/trace.h"

namespace subsum::obs {
namespace {

// Tests that assert on recorded values cannot run when the mutation paths are
// compiled out; registration/exposition shape tests still do.
#ifdef SUBSUM_NO_TELEMETRY
#define SKIP_WITHOUT_TELEMETRY() \
  GTEST_SKIP() << "telemetry compiled out (SUBSUM_NO_TELEMETRY)"
#else
#define SKIP_WITHOUT_TELEMETRY() (void)0
#endif

// --- Counter / Gauge --------------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  SKIP_WITHOUT_TELEMETRY();
  MetricsRegistry reg;
  Counter* c = reg.counter("subsum_things_total");
  c->inc();
  c->inc(41);
  EXPECT_EQ(c->value(), 42u);
  EXPECT_EQ(reg.counter_value("subsum_things_total"), 42u);
  EXPECT_EQ(reg.counter_value("never_registered"), 0u);

  Gauge* g = reg.gauge("subsum_depth");
  g->set(7);
  g->add(-3);
  EXPECT_EQ(g->value(), 4);
}

TEST(Metrics, HandlesAreStable) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x");
  Counter* b = reg.counter("x");
  EXPECT_EQ(a, b);  // get-or-register returns the same object
  EXPECT_NE(reg.counter("y"), a);
  EXPECT_EQ(reg.histogram("h"), reg.histogram("h"));
  EXPECT_EQ(reg.gauge("g"), reg.gauge("g"));
}

TEST(Metrics, CounterIsThreadSafe) {
  SKIP_WITHOUT_TELEMETRY();
  MetricsRegistry reg;
  Counter* c = reg.counter("n");
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([c] {
      for (int i = 0; i < 10000; ++i) c->inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c->value(), 40000u);
}

// --- Histogram --------------------------------------------------------------

TEST(Histogram, BucketOfIsBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~uint64_t{0}), 64u);
}

TEST(Histogram, BucketBoundIsInclusiveUpperEdge) {
  EXPECT_EQ(Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_bound(10), 1023u);
  EXPECT_EQ(Histogram::bucket_bound(64), ~uint64_t{0});
  // Every value lands in the bucket whose bound covers it.
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull, 65535ull, 65536ull}) {
    EXPECT_LE(v, Histogram::bucket_bound(Histogram::bucket_of(v))) << v;
  }
}

TEST(Histogram, CountSumAndSnapshot) {
  SKIP_WITHOUT_TELEMETRY();
  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(5);
  h.observe(5);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 11u);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap[0], 1u);  // the zero
  EXPECT_EQ(snap[1], 1u);  // 1
  EXPECT_EQ(snap[3], 2u);  // 5 twice (bit width 3)
  uint64_t total = 0;
  for (uint64_t b : snap) total += b;
  EXPECT_EQ(total, 4u);
}

TEST(Histogram, QuantileReturnsBucketUpperBound) {
  SKIP_WITHOUT_TELEMETRY();
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);  // empty
  for (int i = 0; i < 90; ++i) h.observe(3);    // bucket 2, bound 3
  for (int i = 0; i < 10; ++i) h.observe(100);  // bucket 7, bound 127
  EXPECT_EQ(h.quantile(0.5), 3u);
  EXPECT_EQ(h.quantile(0.9), 3u);
  EXPECT_EQ(h.quantile(0.99), 127u);
  EXPECT_EQ(h.quantile(1.0), 127u);
}

TEST(Metrics, FGaugeStoresFractionsAndExposesAsGauge) {
  SKIP_WITHOUT_TELEMETRY();
  MetricsRegistry reg;
  FGauge* g = reg.fgauge("subsum_ratio");
  EXPECT_EQ(g->value(), 0.0);
  g->set(0.9375);  // exact in binary, so value() round-trips bit-for-bit
  EXPECT_EQ(g->value(), 0.9375);
  EXPECT_EQ(reg.fgauge("subsum_ratio"), g);  // get-or-register, stable handle
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE subsum_ratio gauge\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_ratio 0.9375\n"), std::string::npos);
}

TEST(Histogram, EmptyQuantileIsZeroAtEveryQ) {
  Histogram h;
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), 0u) << "q=" << q;
  }
}

TEST(Histogram, ResetReturnsToEmptyState) {
  SKIP_WITHOUT_TELEMETRY();
  Histogram h;
  h.observe(100);
  h.observe(~uint64_t{0});
  ASSERT_EQ(h.count(), 2u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  for (uint64_t b : h.snapshot()) EXPECT_EQ(b, 0u);
}

// --- Label escaping (format 0.0.4) ------------------------------------------

TEST(Labels, EscapeLabelValuePerFormat004) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
  EXPECT_EQ(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
}

TEST(Labels, LabeledBakesEscapedLabelIntoSeriesName) {
  EXPECT_EQ(labeled("m", "k", "v"), "m{k=\"v\"}");
  EXPECT_EQ(labeled("m", "k", "a\"b"), "m{k=\"a\\\"b\"}");
}

TEST(Labels, UnescapeInvertsEscape) {
  const std::string gnarly = "quote:\" slash:\\ newline:\n tail";
  EXPECT_EQ(unescape_label_value(escape_label_value(gnarly)), gnarly);
  // An unknown escape keeps the backslash verbatim rather than eating it.
  EXPECT_EQ(unescape_label_value("a\\qb"), "a\\qb");
}

TEST(Labels, RoundTripThroughExpositionAndParser) {
  SKIP_WITHOUT_TELEMETRY();
  MetricsRegistry reg;
  const std::string gnarly = "quote:\" slash:\\ newline:\n tail";
  reg.counter(labeled("subsum_rt_total", "path", gnarly))->inc(5);
  const auto samples = parse_prometheus_text(reg.prometheus_text());
  bool found = false;
  for (const auto& s : samples) {
    if (s.name != "subsum_rt_total") continue;
    found = true;
    ASSERT_NE(s.label("path"), nullptr);
    EXPECT_EQ(*s.label("path"), gnarly);
    EXPECT_EQ(s.value, 5.0);
  }
  EXPECT_TRUE(found);
}

TEST(Promtext, ParsesValuesLabelsAndSkipsCommentsAndGarbage) {
  const auto samples = parse_prometheus_text(
      "# HELP x something\n"
      "# TYPE x counter\n"
      "x 3\n"
      "y{a=\"1\",b=\"two\"} 4.5 1700000000\n"
      "this line is not a sample\n"
      "z -2\n");
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "x");
  EXPECT_EQ(samples[0].value, 3.0);
  ASSERT_EQ(samples[1].labels.size(), 2u);
  EXPECT_EQ(*samples[1].label("b"), "two");
  EXPECT_EQ(samples[1].value, 4.5);
  EXPECT_EQ(samples[2].value, -2.0);
  EXPECT_EQ(samples[1].label("missing"), nullptr);
}

// --- Prometheus exposition --------------------------------------------------

TEST(Exposition, CountersGaugesAndTypeLines) {
  SKIP_WITHOUT_TELEMETRY();
  MetricsRegistry reg;
  reg.counter("subsum_publishes_total")->inc(3);
  reg.gauge("subsum_queue_depth")->set(-2);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE subsum_publishes_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_publishes_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE subsum_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_queue_depth -2\n"), std::string::npos);
}

TEST(Exposition, LabeledSeriesShareOneTypeLine) {
  SKIP_WITHOUT_TELEMETRY();
  MetricsRegistry reg;
  reg.counter("subsum_rpc_total{peer=\"0\"}")->inc(1);
  reg.counter("subsum_rpc_total{peer=\"1\"}")->inc(2);
  const std::string text = reg.prometheus_text();
  // One TYPE line for the family, both samples present with labels.
  size_t n = 0;
  for (size_t pos = 0; (pos = text.find("# TYPE subsum_rpc_total counter", pos)) !=
                       std::string::npos;
       ++pos) {
    ++n;
  }
  EXPECT_EQ(n, 1u);
  EXPECT_NE(text.find("subsum_rpc_total{peer=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_rpc_total{peer=\"1\"} 2\n"), std::string::npos);
}

TEST(Exposition, HistogramExpandsToCumulativeBuckets) {
  SKIP_WITHOUT_TELEMETRY();
  MetricsRegistry reg;
  Histogram* h = reg.histogram("subsum_lat_us");
  h->observe(1);
  h->observe(3);
  h->observe(3);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE subsum_lat_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_lat_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  // Cumulative: the le=3 bucket includes the le=1 observation.
  EXPECT_NE(text.find("subsum_lat_us_bucket{le=\"3\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_lat_us_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_lat_us_sum 7\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_lat_us_count 3\n"), std::string::npos);
  // Empty buckets between 3 and +Inf are elided.
  EXPECT_EQ(text.find("le=\"7\""), std::string::npos);
}

TEST(Exposition, EmptyHistogramStillHasInfBucket) {
  MetricsRegistry reg;
  reg.histogram("subsum_idle_us");
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("subsum_idle_us_bucket{le=\"+Inf\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_idle_us_count 0\n"), std::string::npos);
}

TEST(Exposition, LabeledHistogramKeepsLabelOnEverySeries) {
  SKIP_WITHOUT_TELEMETRY();
  MetricsRegistry reg;
  reg.histogram("subsum_rpc_us{peer=\"3\"}")->observe(2);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE subsum_rpc_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_rpc_us_bucket{peer=\"3\",le=\"3\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_rpc_us_sum{peer=\"3\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("subsum_rpc_us_count{peer=\"3\"} 1\n"), std::string::npos);
}

// --- Exemplars --------------------------------------------------------------

TEST(Exemplar, ObserveExRetainsNewestTracePerBucket) {
  SKIP_WITHOUT_TELEMETRY();
  Histogram h;
  h.enable_exemplars();
  h.observe_ex(3, 0xAAAA);   // bucket 2
  h.observe_ex(3, 0xBBBB);   // same bucket: newest wins
  h.observe_ex(100, 0xCCCC); // bucket 7
  h.observe_ex(5, 0);        // trace 0 = untraced: must not clobber
  const auto b2 = h.exemplar(Histogram::bucket_of(3));
  EXPECT_EQ(b2.trace, 0xBBBBu);
  EXPECT_EQ(b2.value, 3u);
  const auto b7 = h.exemplar(Histogram::bucket_of(100));
  EXPECT_EQ(b7.trace, 0xCCCCu);
  EXPECT_EQ(h.exemplar(40).trace, 0u);  // untouched bucket: none
}

TEST(Exemplar, DisabledHistogramReturnsNone) {
  SKIP_WITHOUT_TELEMETRY();
  Histogram h;
  h.observe_ex(3, 0xAAAA);  // no enable_exemplars(): observation still counts
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.exemplar(Histogram::bucket_of(3)).trace, 0u);
}

TEST(Exemplar, ExposedOnBucketLinesAndParsedBack) {
  SKIP_WITHOUT_TELEMETRY();
  MetricsRegistry reg;
  Histogram* h = reg.histogram_ex("subsum_stage_latency_us{stage=\"match\"}");
  h->observe_ex(100, 0x12abcdef);
  const std::string text = reg.prometheus_text();
  // The bucket line carries the OpenMetrics-style exemplar suffix.
  EXPECT_NE(text.find("# {trace_id=\"0000000012abcdef\"} 100"), std::string::npos);
  const auto samples = parse_prometheus_text(text);
  bool found = false;
  for (const auto& s : samples) {
    if (s.name != "subsum_stage_latency_us_bucket" || s.exemplar_trace.empty()) continue;
    found = true;
    EXPECT_EQ(s.exemplar_trace, "0000000012abcdef");
    EXPECT_EQ(s.exemplar_value, 100.0);
  }
  EXPECT_TRUE(found);
}

TEST(Exemplar, PlainObserveKeepsExpositionUnchanged) {
  SKIP_WITHOUT_TELEMETRY();
  // A 0.0.4-only consumer must see byte-identical output for histograms
  // that never carried an exemplar.
  MetricsRegistry reg;
  reg.histogram("subsum_plain_us")->observe(2);
  const std::string text = reg.prometheus_text();
  EXPECT_EQ(text.find(" # {"), std::string::npos);
  EXPECT_NE(text.find("subsum_plain_us_bucket{le=\"3\"} 1\n"), std::string::npos);
}

// --- Promtext edge cases ----------------------------------------------------

TEST(Promtext, ToleratesCrlfLineEndings) {
  const auto samples = parse_prometheus_text(
      "# TYPE x counter\r\n"
      "x 3\r\n"
      "y{a=\"1\"} 4.5\r\n");
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "x");
  EXPECT_EQ(samples[0].value, 3.0);
  ASSERT_NE(samples[1].label("a"), nullptr);
  EXPECT_EQ(*samples[1].label("a"), "1");
}

TEST(Promtext, ParsesNanAndInfGaugeValues) {
  const auto samples = parse_prometheus_text(
      "a NaN\n"
      "b +Inf\n"
      "c -Inf\n");
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_TRUE(std::isnan(samples[0].value));
  EXPECT_TRUE(std::isinf(samples[1].value));
  EXPECT_GT(samples[1].value, 0);
  EXPECT_TRUE(std::isinf(samples[2].value));
  EXPECT_LT(samples[2].value, 0);
}

TEST(Promtext, TruncatedExpositionNeverThrows) {
  // Cut a real exposition at every byte offset: the parser must keep every
  // intact line and never crash on the torn tail.
  MetricsRegistry reg;
  reg.counter(labeled("subsum_cut_total", "k", "va\"l"))->inc(3);
  reg.histogram_ex("subsum_cut_us")->observe_ex(9, 0x1234);
  const std::string text = reg.prometheus_text();
  for (size_t cut = 0; cut <= text.size(); ++cut) {
    const auto samples = parse_prometheus_text(text.substr(0, cut));
    for (const auto& s : samples) EXPECT_FALSE(s.name.empty());
  }
}

TEST(Promtext, MalformedLinesAreSkippedNotFatal) {
  const auto samples = parse_prometheus_text(
      "ok 1\n"
      "{orphan=\"labels\"} 2\n"      // no metric name
      "unterminated{a=\"b 3\n"        // unclosed label quote
      "no_value{a=\"b\"}\n"           // missing value
      "trailing{a=\"b\"} \n"          // empty value
      "exemplar_no_value{le=\"1\"} 2 # {trace_id=\"ff\"}\n"  // dangling exemplar
      "ok2 4\n");
  // The well-formed lines survive; each malformed one is dropped.
  ASSERT_GE(samples.size(), 3u);
  EXPECT_EQ(samples.front().name, "ok");
  EXPECT_EQ(samples.back().name, "ok2");
  for (const auto& s : samples) {
    if (s.name == "exemplar_no_value") {
      // Value parses; the valueless exemplar is discarded, not fatal.
      EXPECT_TRUE(s.exemplar_trace.empty());
    }
  }
}

// --- TraceRing --------------------------------------------------------------

Span make_span(uint64_t trace, uint64_t t) {
  Span s;
  s.trace = trace;
  s.broker = 1;
  s.phase = Phase::kRecv;
  s.t_us = t;
  return s;
}

TEST(TraceRing, AppendAndSnapshotInOrder) {
  SKIP_WITHOUT_TELEMETRY();
  TraceRing ring(8);
  for (uint64_t i = 0; i < 3; ++i) ring.append(make_span(7, i));
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].t_us, 0u);
  EXPECT_EQ(spans[2].t_us, 2u);
  EXPECT_EQ(ring.appended(), 3u);
}

TEST(TraceRing, OverwritesOldestWhenFull) {
  SKIP_WITHOUT_TELEMETRY();
  TraceRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) ring.append(make_span(7, i));
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // The newest 4, oldest first.
  EXPECT_EQ(spans[0].t_us, 6u);
  EXPECT_EQ(spans[3].t_us, 9u);
  EXPECT_EQ(ring.appended(), 10u);
}

TEST(TraceRing, CountsSilentOverwritesAsDrops) {
  SKIP_WITHOUT_TELEMETRY();
  TraceRing ring(4);
  for (uint64_t i = 0; i < 3; ++i) ring.append(make_span(7, i));
  EXPECT_EQ(ring.dropped(), 0u);  // still under capacity
  EXPECT_EQ(ring.retained(), 3u);
  for (uint64_t i = 3; i < 10; ++i) ring.append(make_span(7, i));
  EXPECT_EQ(ring.dropped(), 6u);  // 10 appended, 4 retained
  EXPECT_EQ(ring.retained(), 4u);
  ring.clear();
  // clear() is an operator action, not data loss: drops are cumulative.
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(ring.retained(), 0u);
}

TEST(TraceRing, ForTraceFiltersAndClearEmpties) {
  SKIP_WITHOUT_TELEMETRY();
  TraceRing ring(8);
  ring.append(make_span(1, 0));
  ring.append(make_span(2, 1));
  ring.append(make_span(1, 2));
  const auto only1 = ring.for_trace(1);
  ASSERT_EQ(only1.size(), 2u);
  EXPECT_EQ(only1[0].t_us, 0u);
  EXPECT_EQ(only1[1].t_us, 2u);
  EXPECT_TRUE(ring.for_trace(99).empty());
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
}

// --- JSONL ------------------------------------------------------------------

TEST(Jsonl, FixedFieldOrderAndHexTrace) {
  Span s;
  s.trace = 0xabcdef;
  s.broker = 4;
  s.phase = Phase::kMatch;
  s.t_us = 17;
  s.bytes = 3;
  const std::vector<Span> spans = {s};
  EXPECT_EQ(to_jsonl(spans),
            "{\"trace\":\"0000000000abcdef\",\"broker\":4,\"phase\":\"match\","
            "\"t_us\":17,\"bytes\":3}\n");
}

TEST(Jsonl, PeerFieldOnlyWhenPresent) {
  Span s;
  s.trace = 1;
  s.broker = 0;
  s.phase = Phase::kForward;
  s.peer = 9;
  s.t_us = 2;
  s.bytes = 0;
  const std::vector<Span> spans = {s};
  EXPECT_EQ(to_jsonl(spans),
            "{\"trace\":\"0000000000000001\",\"broker\":0,\"phase\":\"forward\","
            "\"peer\":9,\"t_us\":2,\"bytes\":0}\n");
}

TEST(Jsonl, PhaseNamesAreStable) {
  EXPECT_EQ(to_string(Phase::kRecv), "recv");
  EXPECT_EQ(to_string(Phase::kMatch), "match");
  EXPECT_EQ(to_string(Phase::kForward), "forward");
  EXPECT_EQ(to_string(Phase::kDeliver), "deliver");
  EXPECT_EQ(to_string(Phase::kRetry), "retry");
  EXPECT_EQ(to_string(Phase::kRedeliver), "redeliver");
}

// --- trace ids --------------------------------------------------------------

TEST(TraceId, DeterministicAndNeverZero) {
  EXPECT_EQ(mint_trace_id(3, 7, 0), mint_trace_id(3, 7, 0));
  EXPECT_NE(mint_trace_id(3, 7, 0), mint_trace_id(3, 8, 0));
  EXPECT_NE(mint_trace_id(3, 7, 0), mint_trace_id(4, 7, 0));
  EXPECT_NE(mint_trace_id(3, 7, 0), mint_trace_id(3, 7, 1));
  EXPECT_NE(mint_trace_id(0, 0, 0), 0u);  // 0 is reserved for "untraced"
}

// --- per-component memory accounting (obs/memacct.h) ------------------------

TEST(MemAccount, LedgerArithmeticWorksWithoutARegistry) {
  // The ledger is policy input (governor ladder), so it must work unbound
  // and in BOTH builds — no SKIP here.
  MemAccount acct;
  acct.set(MemComponent::kIndexArenas, 1000);
  acct.add(MemComponent::kIndexArenas, 24);
  acct.add(MemComponent::kIndexArenas, -24);
  acct.set(MemComponent::kOutboundQueues, 500);
  EXPECT_EQ(acct.get(MemComponent::kIndexArenas), 1000u);
  EXPECT_EQ(acct.get(MemComponent::kOutboundQueues), 500u);
  EXPECT_EQ(acct.get(MemComponent::kWalBuffers), 0u);
  EXPECT_EQ(acct.total(), 1500u);
}

TEST(MemAccount, GovernorExternalBytesIsGrowthComponentsOnly) {
  MemAccount acct;
  // Growth components: counted.
  acct.set(MemComponent::kIndexArenas, 1);
  acct.set(MemComponent::kHeldSummary, 2);
  acct.set(MemComponent::kShadowSummaries, 4);
  acct.set(MemComponent::kWalBuffers, 8);
  acct.set(MemComponent::kSnapshotBuffers, 16);
  // Governor-streamed queues: excluded (already in usage(); counting them
  // here would double-bill the ladder).
  acct.set(MemComponent::kOutboundQueues, 1u << 20);
  acct.set(MemComponent::kRedeliveryQueue, 1u << 20);
  // Fixed-capacity rings: excluded (config-sized baseline, not load).
  acct.set(MemComponent::kTraceRing, 1u << 20);
  acct.set(MemComponent::kFlightRing, 1u << 20);
  acct.set(MemComponent::kExemplarSlots, 1u << 20);
  acct.set(MemComponent::kProfilerRing, 1u << 20);
  EXPECT_EQ(acct.governor_external_bytes(), 31u);
}

TEST(MemAccount, ComponentLabelValuesAreStable) {
  EXPECT_EQ(to_string(MemComponent::kIndexArenas), "index_arenas");
  EXPECT_EQ(to_string(MemComponent::kHeldSummary), "held_summary");
  EXPECT_EQ(to_string(MemComponent::kShadowSummaries), "shadow_summaries");
  EXPECT_EQ(to_string(MemComponent::kWalBuffers), "wal_buffers");
  EXPECT_EQ(to_string(MemComponent::kSnapshotBuffers), "snapshot_buffers");
  EXPECT_EQ(to_string(MemComponent::kOutboundQueues), "outbound_queues");
  EXPECT_EQ(to_string(MemComponent::kRedeliveryQueue), "redelivery_queue");
  EXPECT_EQ(to_string(MemComponent::kTraceRing), "trace_ring");
  EXPECT_EQ(to_string(MemComponent::kFlightRing), "flight_ring");
  EXPECT_EQ(to_string(MemComponent::kExemplarSlots), "exemplar_slots");
  EXPECT_EQ(to_string(MemComponent::kProfilerRing), "profiler_ring");
}

TEST(MemAccount, MirrorsIntoSubsumMemBytesAndRoundTripsThroughPromtext) {
  SKIP_WITHOUT_TELEMETRY();
  MetricsRegistry reg;
  MemAccount acct;
  acct.set(MemComponent::kWalBuffers, 7);  // set before bind: bind publishes it
  acct.bind_metrics(reg);
  acct.set(MemComponent::kIndexArenas, 123456);
  acct.add(MemComponent::kIndexArenas, 44);

  const auto samples = parse_prometheus_text(reg.prometheus_text());
  uint64_t found = 0;
  for (const auto& s : samples) {
    if (s.name != "subsum_mem_bytes") continue;
    const auto* comp = s.label("component");
    ASSERT_NE(comp, nullptr);
    if (*comp == "index_arenas") {
      EXPECT_EQ(s.value, 123500.0);
      ++found;
    } else if (*comp == "wal_buffers") {
      EXPECT_EQ(s.value, 7.0);
      ++found;
    }
  }
  // Every component registers at bind time, the touched ones carry their
  // ledger values — the scrape a dashboard actually sees.
  EXPECT_EQ(found, 2u);
  uint64_t series = 0;
  for (const auto& s : samples) {
    if (s.name == "subsum_mem_bytes") ++series;
  }
  EXPECT_EQ(series, kMemComponentCount);
}

TEST(ProcessStats, ProcReadIsSaneOrCleanlyAbsent) {
  const ProcessStats ps = read_process_stats();
  if (!ps.ok) GTEST_SKIP() << "no readable /proc on this platform";
  EXPECT_GT(ps.rss_bytes, 0u);
  EXPECT_GE(ps.threads, 1u);
  EXPECT_GT(ps.open_fds, 0u);
  EXPECT_GE(ps.utime_sec + ps.stime_sec, 0.0);
}

}  // namespace
}  // namespace subsum::obs
