// Cross-mode property suites: coarse AACS under arbitrary operation
// sequences must stay a sound over-approximation of exact AACS, and the
// full SimSystem must agree with the global oracle under EVERY combination
// of the configuration knobs at once.
#include <gtest/gtest.h>

#include <map>

#include "core/matcher.h"
#include "overlay/topologies.h"
#include "sim/bus.h"
#include "sim/system.h"
#include "util/rng.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace subsum {
namespace {

using core::AacsMode;
using model::SubId;
using overlay::BrokerId;

// ---------------------------------------------------------------------------
// Coarse AACS vs exact AACS under random insert/remove/merge sequences.
// ---------------------------------------------------------------------------

class CoarseVsExact : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoarseVsExact, CoarseIsAlwaysASoundOverApproximation) {
  util::Rng rng(GetParam());
  core::Aacs coarse(AacsMode::kCoarse);
  core::Aacs exact(AacsMode::kExact);
  std::vector<SubId> live;
  uint32_t next = 0;

  auto random_interval = [&] {
    const double a = static_cast<double>(rng.range_i64(-15, 15));
    const double w = static_cast<double>(rng.below(12));
    return core::Interval{core::Pos::at(a), core::Pos::at(a + w)};
  };

  for (int step = 0; step < 400; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.55 || live.empty()) {
      const SubId id{0, next++, 0};
      const auto iv = random_interval();
      coarse.insert(iv, std::vector<SubId>{id});
      exact.insert(iv, std::vector<SubId>{id});
      live.push_back(id);
    } else if (roll < 0.8) {
      const size_t at = rng.below(live.size());
      coarse.remove(live[at]);
      exact.remove(live[at]);
      live.erase(live.begin() + static_cast<long>(at));
    } else {
      // Merge a small batch (as multi-broker merging would).
      core::Aacs other_c(AacsMode::kCoarse);
      core::Aacs other_e(AacsMode::kExact);
      for (int i = 0; i < 3; ++i) {
        const SubId id{1, next++, 0};
        const auto iv = random_interval();
        other_c.insert(iv, std::vector<SubId>{id});
        other_e.insert(iv, std::vector<SubId>{id});
        live.push_back(id);
      }
      coarse.merge(other_c);
      exact.merge(other_e);
    }

    if (step % 20 != 0) continue;
    // The sound-over-approximation invariant: coarse lookups are supersets
    // of exact lookups at every point. (Piece counts are NOT comparable
    // once removals interleave: absorbed ids keep wide rows alive in
    // coarse mode while exact pieces coalesce differently.)
    for (double x = -18; x <= 30; x += 1.0) {
      const auto* e = exact.find(x);
      if (!e) continue;
      const auto* c = coarse.find(x);
      ASSERT_NE(c, nullptr) << "coarse lost a match at " << x;
      EXPECT_TRUE(std::includes(c->begin(), c->end(), e->begin(), e->end())) << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoarseVsExact, ::testing::Values(7, 14, 21, 28));

// ---------------------------------------------------------------------------
// The whole system, every knob at once, against the oracle.
// ---------------------------------------------------------------------------

struct MatrixCase {
  core::AacsMode mode;
  core::GeneralizePolicy policy;
  bool combine;
  bool immediate;
  bool virtual_degrees;
  uint8_t width;
};

class SystemMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(SystemMatrix, DeliveredEqualsOracleUnderAllKnobs) {
  const auto& p = GetParam();
  sim::SystemConfig cfg;
  cfg.schema = workload::stock_schema();
  cfg.graph = overlay::cable_wireless_24();
  cfg.arith_mode = p.mode;
  cfg.policy = p.policy;
  cfg.combine_subsumption = p.combine;
  cfg.propagation.immediate_delivery = p.immediate;
  cfg.numeric_width = p.width;
  if (p.virtual_degrees) {
    cfg.router.virtual_degrees = routing::capped_virtual_degrees(cfg.graph, 3);
    cfg.router.tie_salt = 17;
  }
  sim::SimSystem sys(std::move(cfg));

  workload::SubGenParams sp;
  sp.subsumption = 0.7;
  sp.range_tightness = p.width == 4 ? 0.0 : 0.5;  // width-4 needs pool values
  workload::SubscriptionGenerator gen(sys.schema(), sp, 1000 + p.width);
  workload::EventGenerator events(sys.schema(), gen.pools(), {}, 2000 + p.width);
  util::Rng rng(3000);

  core::NaiveMatcher oracle;
  for (int period = 0; period < 2; ++period) {
    for (int i = 0; i < 50; ++i) {
      const auto home = static_cast<BrokerId>(rng.below(sys.broker_count()));
      model::Subscription sub = gen.next();
      const SubId id = sys.subscribe(home, sub);
      oracle.add({id, std::move(sub)});
    }
    sys.run_propagation_period();
  }

  size_t matched = 0;
  for (int i = 0; i < 40; ++i) {
    model::Event e = events.next();
    if (i % 2 == 1) {
      const auto& os = oracle.subs()[rng.below(oracle.size())];
      if (auto derived = workload::matching_event(sys.schema(), os.sub)) {
        e = *std::move(derived);
      }
    }
    const auto out = sys.publish(static_cast<BrokerId>(rng.below(sys.broker_count())), e);
    EXPECT_EQ(out.delivered, oracle.match(e));
    EXPECT_TRUE(std::includes(out.candidates.begin(), out.candidates.end(),
                              out.delivered.begin(), out.delivered.end()));
    matched += out.delivered.size();
  }
  EXPECT_GT(matched, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, SystemMatrix,
    ::testing::Values(
        MatrixCase{AacsMode::kExact, core::GeneralizePolicy::kSafe, false, false, false, 8},
        MatrixCase{AacsMode::kCoarse, core::GeneralizePolicy::kSafe, false, true, false, 4},
        MatrixCase{AacsMode::kCoarse, core::GeneralizePolicy::kAggressive, true, true, true, 4},
        MatrixCase{AacsMode::kExact, core::GeneralizePolicy::kNone, true, false, true, 8},
        MatrixCase{AacsMode::kCoarse, core::GeneralizePolicy::kNone, false, true, true, 8},
        MatrixCase{AacsMode::kExact, core::GeneralizePolicy::kAggressive, true, true, false, 8}));

// ---------------------------------------------------------------------------
// Accounting ledger basics.
// ---------------------------------------------------------------------------

TEST(Accounting, RecordsPerType) {
  sim::Accounting acct;
  acct.record(sim::MsgType::kSummary, 100);
  acct.record(sim::MsgType::kSummary, 50);
  acct.record(sim::MsgType::kEventForward, 7);
  EXPECT_EQ(acct.messages(sim::MsgType::kSummary), 2u);
  EXPECT_EQ(acct.bytes(sim::MsgType::kSummary), 150u);
  EXPECT_EQ(acct.messages(sim::MsgType::kEventForward), 1u);
  EXPECT_EQ(acct.messages(sim::MsgType::kEventDelivery), 0u);
  EXPECT_EQ(acct.total_messages(), 3u);
  EXPECT_EQ(acct.total_bytes(), 157u);
  acct.reset();
  EXPECT_EQ(acct.total_messages(), 0u);
  EXPECT_EQ(acct.total_bytes(), 0u);
}

TEST(Accounting, ToStringListsEveryType) {
  sim::Accounting acct;
  acct.record(sim::MsgType::kSubForward, 1);
  const std::string out = acct.to_string();
  EXPECT_NE(out.find("summary"), std::string::npos);
  EXPECT_NE(out.find("sub-forward: 1"), std::string::npos);
  EXPECT_NE(out.find("event-forward"), std::string::npos);
  EXPECT_NE(out.find("event-delivery"), std::string::npos);
}

}  // namespace
}  // namespace subsum
