// Tests for the paper's §6 "on-going work" features implemented here:
// combined summarization + subsumption (SimSystem::combine_subsumption)
// and dynamic attribute-schema extension (extend_schema / with_schema).
#include <gtest/gtest.h>

#include "core/matcher.h"
#include "overlay/topologies.h"
#include "sim/system.h"
#include "util/rng.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace subsum {
namespace {

using model::Event;
using model::Op;
using model::Schema;
using model::SubId;
using model::Subscription;
using model::SubscriptionBuilder;
using overlay::BrokerId;

sim::SystemConfig combined_config() {
  sim::SystemConfig cfg;
  cfg.schema = workload::stock_schema();
  cfg.graph = overlay::fig7_tree();
  cfg.combine_subsumption = true;
  return cfg;
}

TEST(CombineSubsumption, CoveredSubscriptionSkipsSummaries) {
  sim::SimSystem sys(combined_config());
  const auto wide =
      SubscriptionBuilder(sys.schema()).where("price", Op::kGt, 1.0).build();
  const auto narrow = SubscriptionBuilder(sys.schema())
                          .where("price", Op::kGt, 2.0)
                          .where("price", Op::kLt, 5.0)
                          .build();
  sys.subscribe(3, wide);
  const size_t rows_after_root = sys.state().held[3].stats().nsr;
  const SubId narrow_id = sys.subscribe(3, narrow);
  // The covered subscription added nothing to the summaries.
  EXPECT_EQ(sys.state().held[3].stats().nsr, rows_after_root);
  sys.run_propagation_period();

  // But it still receives exactly its matches, from anywhere.
  const auto hit = sys.publish(0, model::EventBuilder(sys.schema()).set("price", 3.0).build());
  EXPECT_EQ(hit.delivered.size(), 2u);  // both wide and narrow
  const auto miss_narrow =
      sys.publish(0, model::EventBuilder(sys.schema()).set("price", 7.0).build());
  ASSERT_EQ(miss_narrow.delivered.size(), 1u);  // wide only
  EXPECT_NE(miss_narrow.delivered[0], narrow_id);
}

TEST(CombineSubsumption, UnsubscribingRootPromotesCovered) {
  sim::SimSystem sys(combined_config());
  const auto wide =
      SubscriptionBuilder(sys.schema()).where("price", Op::kGt, 1.0).build();
  const auto narrow = SubscriptionBuilder(sys.schema())
                          .where("price", Op::kGt, 2.0)
                          .where("price", Op::kLt, 5.0)
                          .build();
  const SubId wide_id = sys.subscribe(3, wide);
  const SubId narrow_id = sys.subscribe(3, narrow);
  sys.run_propagation_period();

  sys.unsubscribe(wide_id);
  sys.run_propagation_period();

  const auto hit = sys.publish(0, model::EventBuilder(sys.schema()).set("price", 3.0).build());
  EXPECT_EQ(hit.delivered, std::vector<SubId>{narrow_id});
  const auto miss = sys.publish(0, model::EventBuilder(sys.schema()).set("price", 9.0).build());
  EXPECT_TRUE(miss.delivered.empty());
}

TEST(CombineSubsumption, OracleEqualityOnRandomWorkload) {
  sim::SimSystem sys(combined_config());
  workload::SubGenParams sp;
  sp.subsumption = 0.8;  // high value reuse: coverage is frequent
  sp.arith_attrs = 1;
  sp.string_attrs = 1;
  sp.pool_size = 6;
  workload::SubscriptionGenerator gen(sys.schema(), sp, 901);
  workload::EventGenerator events(sys.schema(), gen.pools(), {}, 902);
  util::Rng rng(903);

  core::NaiveMatcher oracle;
  std::vector<SubId> live;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 60; ++i) {
      const auto home = static_cast<BrokerId>(rng.below(sys.broker_count()));
      Subscription sub = gen.next();
      const SubId id = sys.subscribe(home, sub);
      oracle.add({id, std::move(sub)});
      live.push_back(id);
    }
    for (int i = 0; i < 15 && !live.empty(); ++i) {
      const size_t at = rng.below(live.size());
      sys.unsubscribe(live[at]);
      oracle.remove(live[at]);
      live.erase(live.begin() + static_cast<long>(at));
    }
    sys.run_propagation_period();
    size_t matched = 0;
    for (int i = 0; i < 40; ++i) {
      Event e = events.next();
      if (i % 2 == 1 && oracle.size() > 0) {
        const auto& os = oracle.subs()[rng.below(oracle.size())];
        if (auto derived = workload::matching_event(sys.schema(), os.sub)) {
          e = *std::move(derived);
        }
      }
      const auto out = sys.publish(static_cast<BrokerId>(rng.below(sys.broker_count())), e);
      EXPECT_EQ(out.delivered, oracle.match(e));
      matched += out.delivered.size();
    }
    EXPECT_GT(matched, 0u);
  }
}

TEST(CombineSubsumption, ReducesPropagatedBytes) {
  // Identical workload, with and without the extension: high-subsumption
  // traffic should propagate measurably fewer bytes when covered
  // subscriptions are pruned.
  auto run = [&](bool combine) {
    sim::SystemConfig cfg = combined_config();
    cfg.combine_subsumption = combine;
    sim::SimSystem sys(std::move(cfg));
    workload::SubGenParams sp;
    sp.subsumption = 0.9;
    sp.arith_attrs = 1;
    sp.string_attrs = 1;
    sp.pool_size = 4;
    workload::SubscriptionGenerator gen(sys.schema(), sp, 41);
    for (BrokerId b = 0; b < sys.broker_count(); ++b) {
      for (int i = 0; i < 40; ++i) sys.subscribe(b, gen.next());
    }
    sys.run_propagation_period();
    return sys.accounting().bytes(sim::MsgType::kSummary);
  };
  const size_t with = run(true);
  const size_t without = run(false);
  EXPECT_LT(with, without);
}

TEST(SchemaExtension, ExtendPreservesIdsAndTypes) {
  const Schema base = workload::stock_schema();
  const Schema wider =
      model::extend_schema(base, {{"bid", model::AttrType::kFloat},
                                  {"venue", model::AttrType::kString}});
  EXPECT_EQ(wider.attr_count(), base.attr_count() + 2);
  for (model::AttrId a = 0; a < base.attr_count(); ++a) {
    EXPECT_EQ(wider.spec(a), base.spec(a));
  }
  EXPECT_TRUE(model::is_extension_of(wider, base));
  EXPECT_FALSE(model::is_extension_of(base, wider));
  EXPECT_THROW(model::extend_schema(base, {{"price", model::AttrType::kFloat}}),
               std::invalid_argument);  // duplicate name
}

TEST(SchemaExtension, SummaryMigratesAndKeepsMatching) {
  const Schema base = workload::stock_schema();
  core::BrokerSummary summary(base);
  const auto sub = SubscriptionBuilder(base)
                       .where("price", Op::kGt, 8.30)
                       .where("symbol", Op::kEq, "OTE")
                       .build();
  const SubId id{0, 1, sub.mask()};
  summary.add(sub, id);

  const Schema wider = model::extend_schema(base, {{"bid", model::AttrType::kFloat}});
  const core::BrokerSummary migrated = summary.with_schema(wider);

  // Old subscriptions still match, with or without the new attribute.
  const auto e = model::EventBuilder(wider)
                     .set("price", 8.4)
                     .set("symbol", "OTE")
                     .set("bid", 8.39)
                     .build();
  EXPECT_EQ(core::match(migrated, e), std::vector<SubId>{id});

  // New subscriptions can constrain the new attribute.
  core::BrokerSummary grown = migrated;
  const auto new_sub = SubscriptionBuilder(wider).where("bid", Op::kGt, 8.0).build();
  const SubId new_id{0, 2, new_sub.mask()};
  grown.add(new_sub, new_id);
  EXPECT_EQ(core::match(grown, e), (std::vector<SubId>{id, new_id}));
}

TEST(SchemaExtension, RejectsIncompatibleSchema) {
  const Schema base = workload::stock_schema();
  core::BrokerSummary summary(base);
  const Schema other({{"x", model::AttrType::kInt}});
  EXPECT_THROW((void)summary.with_schema(other), std::invalid_argument);
}

}  // namespace
}  // namespace subsum
