#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "overlay/topologies.h"
#include "routing/event_router.h"
#include "routing/propagation.h"
#include "util/rng.h"
#include "workload/stock_schema.h"

namespace subsum::routing {
namespace {

using model::Op;
using model::Schema;
using model::SubId;
using model::SubscriptionBuilder;
using overlay::BrokerId;
using overlay::Graph;

Schema schema_v() { return workload::stock_schema(); }

core::WireConfig wire_for(const Schema& s, const Graph& g) {
  return {model::SubIdCodec(static_cast<uint32_t>(g.size()), 1u << 20, s.attr_count()), 8};
}

/// Brokers in `matched` subscribe to symbol == "evt"; everyone else to a
/// private symbol. Returns the propagation state.
PropagationResult setup(const Schema& s, const Graph& g, const std::set<BrokerId>& matched) {
  std::vector<core::BrokerSummary> own;
  for (BrokerId b = 0; b < g.size(); ++b) {
    core::BrokerSummary summary(s);
    const std::string sym = matched.contains(b) ? "evt" : "b" + std::to_string(b);
    const auto sub = SubscriptionBuilder(s).where("symbol", Op::kEq, sym).build();
    summary.add(sub, SubId{b, 0, sub.mask()});
    own.push_back(std::move(summary));
  }
  return propagate(g, own, wire_for(s, g));
}

TEST(EventRouting, PaperExample3Fig7) {
  // "an event matching brokers 4, 8 and 13 arrives at broker 1":
  // 0-indexed, matching nodes {3, 7, 12}, origin node 0.
  const Schema s = schema_v();
  const Graph g = overlay::fig7_tree();
  const auto state = setup(s, g, {3, 7, 12});
  const auto e = model::EventBuilder(s).set("symbol", "evt").build();

  const auto r = route_event(g, state, 0, e);

  // Walk: broker 1 -> broker 5 -> broker 8 -> broker 11 (nodes 0,4,7,10).
  EXPECT_EQ(r.visited, (std::vector<BrokerId>{0, 4, 7, 10}));
  EXPECT_EQ(r.forward_hops, 3u);

  // Deliveries: broker 5 notifies broker 4 (node 4 -> 3); broker 8 finds
  // its own match locally; broker 11 notifies broker 13 (node 10 -> 12).
  ASSERT_EQ(r.deliveries.size(), 3u);
  EXPECT_EQ(r.deliveries[0].examined_at, 4u);
  EXPECT_EQ(r.deliveries[0].owner, 3u);
  EXPECT_EQ(r.deliveries[1].examined_at, 7u);
  EXPECT_EQ(r.deliveries[1].owner, 7u);
  EXPECT_EQ(r.deliveries[2].examined_at, 10u);
  EXPECT_EQ(r.deliveries[2].owner, 12u);
  EXPECT_EQ(r.delivery_hops, 2u);  // the broker-8 delivery is local
  EXPECT_EQ(r.total_hops(), 5u);
}

TEST(EventRouting, NoMatchStillCompletesBrocli) {
  const Schema s = schema_v();
  const Graph g = overlay::fig7_tree();
  const auto state = setup(s, g, {});
  const auto e = model::EventBuilder(s).set("symbol", "nobody").build();
  const auto r = route_event(g, state, 5, e);
  EXPECT_TRUE(r.deliveries.empty());
  EXPECT_EQ(r.delivery_hops, 0u);
  // BROCLI must still cover everyone before the walk stops.
  std::set<BrokerId> covered;
  for (BrokerId v : r.visited) {
    covered.insert(state.merged_brokers[v].begin(), state.merged_brokers[v].end());
  }
  EXPECT_EQ(covered.size(), g.size());
}

TEST(EventRouting, OriginOwnsTheOnlyMatch) {
  const Schema s = schema_v();
  const Graph g = overlay::fig7_tree();
  const auto state = setup(s, g, {0});
  const auto e = model::EventBuilder(s).set("symbol", "evt").build();
  const auto r = route_event(g, state, 0, e);
  ASSERT_EQ(r.deliveries.size(), 1u);
  EXPECT_EQ(r.deliveries[0].owner, 0u);
  EXPECT_EQ(r.delivery_hops, 0u);  // local
}

TEST(EventRouting, InvalidInputsThrow) {
  const Schema s = schema_v();
  const Graph g = overlay::fig7_tree();
  const auto state = setup(s, g, {});
  const auto e = model::EventBuilder(s).set("symbol", "x").build();
  EXPECT_THROW(route_event(g, state, 99, e), std::invalid_argument);
  RouterOptions opts;
  opts.virtual_degrees = std::vector<int>{1, 2};  // wrong size
  EXPECT_THROW(route_event(g, state, 0, e, opts), std::invalid_argument);
}

TEST(EventRouting, DownBrokerIsSkippedNotVisited) {
  const Schema s = schema_v();
  const Graph g = overlay::fig7_tree();
  const auto state = setup(s, g, {3, 7, 12});
  const auto e = model::EventBuilder(s).set("symbol", "evt").build();

  // Node 10 is normally the walk's last stop (it merged 11/12). Mark it
  // down: the walk must bypass it, keep going, and still reach broker 12's
  // subscription by visiting a live broker that knows it (12 itself).
  RouterOptions opts;
  opts.down.assign(g.size(), 0);
  opts.down[10] = 1;
  const auto r = route_event(g, state, 0, e, opts);

  EXPECT_TRUE(std::find(r.visited.begin(), r.visited.end(), 10u) == r.visited.end());
  EXPECT_EQ(r.skipped, std::vector<BrokerId>{10});
  EXPECT_TRUE(r.undeliverable.empty());  // every owner is alive
  std::set<BrokerId> owners;
  for (const auto& d : r.deliveries) owners.insert(d.owner);
  EXPECT_EQ(owners, (std::set<BrokerId>{3, 7, 12}));
}

TEST(EventRouting, DownOwnerLandsInUndeliverable) {
  const Schema s = schema_v();
  const Graph g = overlay::fig7_tree();
  const auto state = setup(s, g, {3, 7, 12});
  const auto e = model::EventBuilder(s).set("symbol", "evt").build();

  RouterOptions opts;
  opts.down.assign(g.size(), 0);
  opts.down[3] = 1;  // a pure leaf owner: never a forward target
  const auto r = route_event(g, state, 0, e, opts);

  std::set<BrokerId> owners;
  for (const auto& d : r.deliveries) owners.insert(d.owner);
  EXPECT_EQ(owners, (std::set<BrokerId>{7, 12}));
  ASSERT_EQ(r.undeliverable.size(), 1u);
  EXPECT_EQ(r.undeliverable[0].owner, 3u);
  EXPECT_EQ(r.undeliverable[0].examined_at, 4u);  // node 4 held node 3's rows
  // The undeliverable match costs no hop (nothing was sent): only the
  // node-10 -> node-12 delivery remains (broker 7's is local).
  EXPECT_EQ(r.delivery_hops, 1u);
}

TEST(EventRouting, DownValidation) {
  const Schema s = schema_v();
  const Graph g = overlay::fig7_tree();
  const auto state = setup(s, g, {});
  const auto e = model::EventBuilder(s).set("symbol", "x").build();
  RouterOptions opts;
  opts.down = {1, 0};  // wrong size
  EXPECT_THROW(route_event(g, state, 0, e, opts), std::invalid_argument);
  opts.down.assign(g.size(), 0);
  opts.down[5] = 1;
  EXPECT_THROW(route_event(g, state, 5, e, opts), std::invalid_argument);
}

// Randomized churn: live owners still get exactly-once delivery, dead
// owners' matches are quarantined, and the walk never touches a down
// broker.
TEST(EventRouting, RandomDownSetsKeepLiveDeliveryExact) {
  const Schema s = schema_v();
  util::Rng rng(4242);
  std::vector<Graph> graphs;
  graphs.push_back(overlay::fig7_tree());
  graphs.push_back(overlay::cable_wireless_24());

  for (const auto& g : graphs) {
    for (int trial = 0; trial < 20; ++trial) {
      std::set<BrokerId> matched;
      while (matched.size() < g.size() / 3) {
        matched.insert(static_cast<BrokerId>(rng.below(g.size())));
      }
      const auto state = setup(s, g, matched);
      const auto origin = static_cast<BrokerId>(rng.below(g.size()));
      RouterOptions opts;
      opts.down.assign(g.size(), 0);
      std::set<BrokerId> down;
      while (down.size() < g.size() / 4) {
        const auto b = static_cast<BrokerId>(rng.below(g.size()));
        if (b == origin) continue;
        down.insert(b);
        opts.down[b] = 1;
      }
      const auto e = model::EventBuilder(s).set("symbol", "evt").build();
      const auto r = route_event(g, state, origin, e, opts);

      for (BrokerId v : r.visited) EXPECT_FALSE(down.contains(v));
      for (BrokerId sk : r.skipped) EXPECT_TRUE(down.contains(sk));

      std::multiset<BrokerId> live_owners;
      for (const auto& d : r.deliveries) {
        EXPECT_FALSE(down.contains(d.owner));
        live_owners.insert(d.owner);
      }
      // Exactly the live matched brokers, exactly once each.
      std::set<BrokerId> want;
      for (BrokerId m : matched) {
        if (!down.contains(m)) want.insert(m);
      }
      EXPECT_EQ(std::set<BrokerId>(live_owners.begin(), live_owners.end()), want);
      EXPECT_EQ(live_owners.size(), want.size()) << "duplicate delivery under churn";
      // A down owner's match surfaces as undeliverable iff some live
      // visited broker held its rows.
      for (const auto& d : r.undeliverable) EXPECT_TRUE(down.contains(d.owner));
    }
  }
}

// Exactly-once delivery and completeness on arbitrary topologies, matched
// sets, and origins.
class RoutingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoutingProperty, ExactlyOnceAndComplete) {
  const Schema s = schema_v();
  util::Rng rng(GetParam());
  std::vector<Graph> graphs;
  graphs.push_back(overlay::cable_wireless_24());
  graphs.push_back(overlay::fig7_tree());
  graphs.push_back(overlay::random_tree(15, rng));
  graphs.push_back(overlay::ring(7));

  for (const auto& g : graphs) {
    for (int trial = 0; trial < 10; ++trial) {
      std::set<BrokerId> matched;
      const size_t m = rng.below(g.size() + 1);
      while (matched.size() < m) matched.insert(static_cast<BrokerId>(rng.below(g.size())));
      const auto state = setup(s, g, matched);
      const auto origin = static_cast<BrokerId>(rng.below(g.size()));
      const auto e = model::EventBuilder(s).set("symbol", "evt").build();
      const auto r = route_event(g, state, origin, e);

      // Every matched broker receives the event exactly once.
      std::multiset<BrokerId> owners;
      for (const auto& d : r.deliveries) {
        owners.insert(d.owner);
        EXPECT_EQ(d.ids.size(), 1u);
        for (const auto& id : d.ids) EXPECT_EQ(id.broker, d.owner);
      }
      EXPECT_EQ(std::set<BrokerId>(owners.begin(), owners.end()),
                matched);
      EXPECT_EQ(owners.size(), matched.size()) << "duplicate delivery";

      // The walk needs at most n forwards.
      EXPECT_LE(r.visited.size(), g.size());
      // No broker is examined twice.
      std::set<BrokerId> visited_set(r.visited.begin(), r.visited.end());
      EXPECT_EQ(visited_set.size(), r.visited.size());
      EXPECT_EQ(r.visited.front(), origin);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingProperty, ::testing::Values(21, 42, 63, 84));

TEST(EventRouting, HighestDegreeFirstForwarding) {
  const Schema s = schema_v();
  const Graph g = overlay::cable_wireless_24();
  const auto state = setup(s, g, {});
  const auto e = model::EventBuilder(s).set("symbol", "x").build();
  const auto r = route_event(g, state, 0, e);
  // After the origin, the first forward goes to the highest-degree broker
  // (node 11, degree 6, smallest-id tiebreak over node 15) unless already
  // covered by the origin's merged set.
  ASSERT_GE(r.visited.size(), 2u);
  const BrokerId first = r.visited[1];
  size_t best = 0;
  for (BrokerId b = 0; b < g.size(); ++b) {
    const auto& mb = state.merged_brokers[0];
    if (std::binary_search(mb.begin(), mb.end(), b)) continue;
    best = std::max(best, g.degree(b));
  }
  EXPECT_EQ(g.degree(first), best);
}

TEST(EventRouting, VirtualDegreesSpreadTheWalk) {
  const Schema s = schema_v();
  const Graph g = overlay::cable_wireless_24();
  const auto state = setup(s, g, {});
  const auto e = model::EventBuilder(s).set("symbol", "x").build();

  RouterOptions capped;
  capped.virtual_degrees = capped_virtual_degrees(g, 1);
  const auto r = route_event(g, state, 0, e, capped);
  // With all degrees capped to 1, forwarding degenerates to smallest-id
  // order among uncovered brokers; the walk still terminates and covers all.
  std::set<BrokerId> covered;
  for (BrokerId v : r.visited) {
    covered.insert(state.merged_brokers[v].begin(), state.merged_brokers[v].end());
  }
  EXPECT_EQ(covered.size(), g.size());
}

TEST(EventRouting, TieSaltChangesWalkButNotResults) {
  const Schema s = schema_v();
  const Graph g = overlay::ring(9);  // all degrees equal: maximal ties
  const auto state = setup(s, g, {2, 6});
  const auto e = model::EventBuilder(s).set("symbol", "evt").build();

  const auto base = route_event(g, state, 0, e);
  bool any_different = false;
  for (uint64_t salt = 1; salt <= 5; ++salt) {
    RouterOptions opts;
    opts.tie_salt = salt;
    const auto r = route_event(g, state, 0, e, opts);
    // Deliveries are identical regardless of the walk order.
    std::set<BrokerId> owners, base_owners;
    for (const auto& d : r.deliveries) owners.insert(d.owner);
    for (const auto& d : base.deliveries) base_owners.insert(d.owner);
    EXPECT_EQ(owners, base_owners);
    any_different |= (r.visited != base.visited);
  }
  EXPECT_TRUE(any_different) << "tie salt never rotated the walk";
}

TEST(EventRouting, CoverageStrategyNeverLongerAndStillExact) {
  const Schema s = schema_v();
  util::Rng rng(777);
  std::vector<Graph> graphs;
  graphs.push_back(overlay::cable_wireless_24());
  graphs.push_back(overlay::fig7_tree());
  graphs.push_back(overlay::random_tree(18, rng));

  for (const auto& g : graphs) {
    std::set<BrokerId> matched;
    while (matched.size() < g.size() / 4) {
      matched.insert(static_cast<BrokerId>(rng.below(g.size())));
    }
    const auto state = setup(s, g, matched);
    const auto e = model::EventBuilder(s).set("symbol", "evt").build();

    RouterOptions coverage;
    coverage.strategy = ForwardStrategy::kLargestCoverage;
    double base_total = 0, cov_total = 0;
    for (BrokerId origin = 0; origin < g.size(); ++origin) {
      const auto base = route_event(g, state, origin, e);
      const auto cov = route_event(g, state, origin, e, coverage);
      base_total += static_cast<double>(base.visited.size());
      cov_total += static_cast<double>(cov.visited.size());

      // Identical delivery semantics regardless of strategy.
      std::set<BrokerId> base_owners, cov_owners;
      for (const auto& d : base.deliveries) base_owners.insert(d.owner);
      for (const auto& d : cov.deliveries) cov_owners.insert(d.owner);
      EXPECT_EQ(base_owners, matched);
      EXPECT_EQ(cov_owners, matched);
    }
    // Greedy coverage never averages worse than degree order on these
    // topologies (it is locally optimal per step).
    EXPECT_LE(cov_total, base_total) << g.to_string();
  }
}

TEST(EventRouting, MatchedIdsAccessor) {
  const Schema s = schema_v();
  const Graph g = overlay::fig7_tree();
  const auto state = setup(s, g, {3, 7});
  const auto e = model::EventBuilder(s).set("symbol", "evt").build();
  const auto r = route_event(g, state, 0, e);
  const auto ids = r.matched_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0].broker, 3u);
  EXPECT_EQ(ids[1].broker, 7u);
}

}  // namespace
}  // namespace subsum::routing
