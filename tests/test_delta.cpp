// Soft-state delta machinery (core/delta.h, PROTOCOL v4): canonical image
// extraction, order-independent digests, diff/apply round trips under
// randomized churn, wire round trips, and the digest-mismatch detection the
// anti-entropy repair path (kSummarySync) is built on.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/delta.h"
#include "core/matcher.h"
#include "util/rng.h"
#include "workload/churn.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace subsum::core {
namespace {

using model::Schema;
using model::SubId;
using model::Subscription;

struct Fixture {
  Schema schema = workload::stock_schema();
  workload::SubscriptionGenerator gen;
  uint32_t next_local = 0;

  explicit Fixture(uint64_t seed, double subsumption = 0.6) : gen(schema, params(subsumption), seed) {}

  static workload::SubGenParams params(double subsumption) {
    workload::SubGenParams sp;
    sp.subsumption = subsumption;
    sp.range_tightness = 0.3;  // exercise AACS splitting in the images
    return sp;
  }

  /// Adds `count` generated subscriptions to `s`, returning their ids.
  std::vector<SubId> grow(BrokerSummary& s, size_t count, uint32_t broker = 0) {
    std::vector<SubId> ids;
    for (size_t i = 0; i < count; ++i) {
      const Subscription sub = gen.next();
      const SubId id{broker, next_local++, sub.mask()};
      s.add(sub, id);
      ids.push_back(id);
    }
    return ids;
  }
};

TEST(Delta, ImageRoundTripAndMergeRebuild) {
  Fixture fx(11);
  BrokerSummary s(fx.schema, GeneralizePolicy::kSafe, AacsMode::kExact);
  fx.grow(s, 80);

  const SummaryImage img = extract_image(s);
  EXPECT_FALSE(img.empty());
  const BrokerSummary rebuilt = build_summary(img, fx.schema);
  EXPECT_EQ(extract_image(rebuilt), img);
  EXPECT_EQ(summary_digest(rebuilt), image_digest(img));

  // merge_into_summary on an empty summary is build_summary.
  BrokerSummary merged(fx.schema, GeneralizePolicy::kSafe, AacsMode::kExact);
  merge_into_summary(img, merged);
  EXPECT_EQ(extract_image(merged), img);
}

TEST(Delta, DigestIsOrderIndependent) {
  Fixture fx(23);
  BrokerSummary a(fx.schema, GeneralizePolicy::kSafe, AacsMode::kExact);
  std::vector<Subscription> subs;
  std::vector<SubId> ids;
  for (size_t i = 0; i < 60; ++i) {
    subs.push_back(fx.gen.next());
    ids.push_back(SubId{0, static_cast<uint32_t>(i), subs.back().mask()});
    a.add(subs[i], ids[i]);
  }
  // Same set inserted in reverse order: same digest, regardless of the
  // insertion-history-dependent internals.
  BrokerSummary b(fx.schema, GeneralizePolicy::kSafe, AacsMode::kExact);
  for (size_t i = subs.size(); i-- > 0;) b.add(subs[i], ids[i]);
  EXPECT_EQ(summary_digest(a), summary_digest(b));

  // Removing one subscription changes it.
  b.remove(ids[17]);
  EXPECT_NE(summary_digest(a), summary_digest(b));
}

TEST(Delta, DiffOfEqualImagesIsEmpty) {
  Fixture fx(31);
  BrokerSummary s(fx.schema, GeneralizePolicy::kSafe, AacsMode::kExact);
  fx.grow(s, 40);
  const SummaryImage img = extract_image(s);
  const SummaryDelta d = diff_images(img, img);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.edit_count(), 0u);
}

/// Fuzz: random churn (adds + removes) on a summary; diff against the
/// previous image must apply to exactly the new image, digest included —
/// the invariant the delta-announcement path stakes its correctness on.
TEST(Delta, FuzzDiffApplyEqualsRebuild) {
  for (const uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    Fixture fx(seed);
    util::Rng rng(seed * 977 + 5);
    BrokerSummary s(fx.schema, GeneralizePolicy::kSafe,
                    seed % 2 ? AacsMode::kExact : AacsMode::kCoarse);
    std::vector<SubId> live = fx.grow(s, 50);

    SummaryImage shadow = extract_image(s);
    for (int round = 0; round < 12; ++round) {
      // Random adds and removes, occasionally drastic.
      const size_t adds = rng.below(20);
      const size_t removes = std::min<size_t>(rng.below(25), live.size());
      for (const SubId id : fx.grow(s, adds)) live.push_back(id);
      for (size_t i = 0; i < removes; ++i) {
        const size_t victim = rng.below(live.size());
        s.remove(live[victim]);
        live[victim] = live.back();
        live.pop_back();
      }

      const SummaryImage target = extract_image(s);
      const SummaryDelta d = diff_images(shadow, target);
      apply_delta(shadow, d);
      ASSERT_EQ(shadow, target) << "seed " << seed << " round " << round;
      ASSERT_EQ(image_digest(shadow), image_digest(target));
    }
  }
}

TEST(Delta, WireRoundTripWithHeader) {
  Fixture fx(55);
  BrokerSummary s(fx.schema, GeneralizePolicy::kSafe, AacsMode::kExact);
  const std::vector<SubId> first = fx.grow(s, 30);
  const SummaryImage before = extract_image(s);
  fx.grow(s, 10);
  for (int i = 0; i < 5; ++i) s.remove(first[static_cast<size_t>(i) * 3]);
  const SummaryImage after = extract_image(s);

  const SummaryDelta d = diff_images(before, after);
  // Width 8: the generator draws arbitrary f64 bounds (range_tightness),
  // which a 4-byte numeric wire would quantize.
  const WireConfig cfg{model::SubIdCodec(4, 4096, fx.schema.attr_count()), 8};
  DeltaHeader hdr;
  hdr.epoch = 3;
  hdr.base_version = 17;
  hdr.new_version = 29;
  hdr.base_digest = image_digest(before);
  hdr.new_digest = image_digest(after);
  const auto bytes = encode_delta(d, fx.schema, cfg, hdr);

  DeltaHeader got;
  const SummaryDelta decoded = decode_delta(bytes, fx.schema, &got);
  EXPECT_EQ(decoded, d);
  EXPECT_EQ(got.epoch, hdr.epoch);
  EXPECT_EQ(got.base_version, hdr.base_version);
  EXPECT_EQ(got.new_version, hdr.new_version);
  EXPECT_EQ(got.base_digest, hdr.base_digest);
  EXPECT_EQ(got.new_digest, hdr.new_digest);

  // Applying the decoded delta to the base lands on the advertised digest.
  SummaryImage img = before;
  apply_delta(img, decoded);
  EXPECT_EQ(image_digest(img), got.new_digest);
}

/// The repair trigger: a delta applied to the WRONG base leaves the digest
/// off the sender's stamp (detected), never crashes — apply_delta is total.
TEST(Delta, StaleBaseSurfacesAsDigestMismatch) {
  for (const uint64_t seed : {3ull, 19ull, 77ull}) {
    Fixture fx(seed, 0.5);
    util::Rng rng(seed ^ 0xABCDEF);
    BrokerSummary s(fx.schema, GeneralizePolicy::kSafe, AacsMode::kExact);
    std::vector<SubId> live = fx.grow(s, 40);
    const SummaryImage base = extract_image(s);

    // Sender moves on twice; receiver missed the first step.
    fx.grow(s, 8);
    const SummaryImage mid = extract_image(s);
    for (size_t i = 0; i < 10 && !live.empty(); ++i) {
      const size_t victim = rng.below(live.size());
      s.remove(live[victim]);
      live[victim] = live.back();
      live.pop_back();
    }
    fx.grow(s, 5);
    const SummaryImage target = extract_image(s);

    const SummaryDelta step2 = diff_images(mid, target);
    SummaryImage stale = base;  // receiver never saw `mid`
    apply_delta(stale, step2);  // must not throw
    EXPECT_NE(image_digest(stale), image_digest(target))
        << "stale apply happened to collide; seed " << seed;

    // Repair: a full image (kSummarySync) replaces the shadow outright.
    stale = target;
    EXPECT_EQ(image_digest(stale), image_digest(target));
  }
}

/// Deltas between match-relevant states keep the rebuilt summary
/// match-equivalent to the live one (safety of the shadow-merge path).
TEST(Delta, AppliedShadowIsMatchEquivalent) {
  Fixture fx(91);
  BrokerSummary s(fx.schema, GeneralizePolicy::kSafe, AacsMode::kExact);
  std::vector<SubId> live = fx.grow(s, 60);
  SummaryImage shadow = extract_image(s);
  fx.grow(s, 15);
  for (int i = 0; i < 10; ++i) {
    s.remove(live[static_cast<size_t>(i) * 3]);
  }
  apply_delta(shadow, diff_images(shadow, extract_image(s)));
  const BrokerSummary rebuilt = build_summary(shadow, fx.schema);
  EXPECT_EQ(extract_image(rebuilt), extract_image(s));
}

TEST(Delta, ChurnPermutationIsDeterministicAndComplete) {
  const auto p1 = workload::churn_permutation(257, 99);
  const auto p2 = workload::churn_permutation(257, 99);
  EXPECT_EQ(p1, p2);
  const auto p3 = workload::churn_permutation(257, 100);
  EXPECT_NE(p1, p3);
  auto sorted = p1;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Delta, ChurnStreamIsDeterministic) {
  const Schema schema = workload::stock_schema();
  workload::ChurnParams cp;
  cp.subscribe_rate = 20;
  cp.unsubscribe_rate = 15;
  cp.flash_crowd_prob = 0.3;
  workload::ChurnStream a(schema, {}, cp, 7);
  workload::ChurnStream b(schema, {}, cp, 7);
  bool saw_flash = false;
  for (int i = 0; i < 20; ++i) {
    auto pa = a.next_period();
    auto pb = b.next_period();
    EXPECT_EQ(pa.subscribes.size(), pb.subscribes.size());
    EXPECT_EQ(pa.unsubscribes, pb.unsubscribes);
    EXPECT_EQ(pa.flash_crowd, pb.flash_crowd);
    EXPECT_EQ(a.pick_victim_index(100), b.pick_victim_index(100));
    saw_flash |= pa.flash_crowd;
  }
  EXPECT_TRUE(saw_flash);
}

}  // namespace
}  // namespace subsum::core
