// obs::FlightRecorder: the seqlock ring, the CRC-framed dump format and its
// torn-tail tolerance, the merged timeline formatter, the structured logger,
// and the stage-latency registration — plus the NO_TELEMETRY contract that
// recording compiles to a no-op while dumps stay wire-valid.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/latency.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace subsum::obs {
namespace {

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const auto* p = reinterpret_cast<const std::byte*>(raw.data());
  return {p, p + raw.size()};
}

// --- ring -------------------------------------------------------------------

TEST(FlightRecorder, RecordsInOrderUpToCapacity) {
  FlightRecorder fr(3, 8, /*virtual_time=*/true);
  fr.record_at(10, FrKind::kStart, 0, 0, 5);
  fr.record_at(20, FrKind::kRungChange, 0, 2, 1000);
#ifdef SUBSUM_NO_TELEMETRY
  EXPECT_TRUE(fr.snapshot().empty());  // record_at compiles to a no-op
  GTEST_SKIP() << "records compile out under SUBSUM_NO_TELEMETRY";
#endif
  const auto recs = fr.snapshot();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].kind, FrKind::kStart);
  EXPECT_EQ(recs[0].detail, 5u);
  EXPECT_EQ(recs[0].broker, 3u);
  EXPECT_EQ(recs[1].kind, FrKind::kRungChange);
  EXPECT_EQ(recs[1].a, 0u);
  EXPECT_EQ(recs[1].b, 2u);
  EXPECT_EQ(recs[1].t_us, 20u);
#ifndef SUBSUM_NO_TELEMETRY
  EXPECT_EQ(fr.appended(), 2u);
#endif
}

TEST(FlightRecorder, OverwritesOldestBeyondCapacity) {
  FlightRecorder fr(0, 4, /*virtual_time=*/true);
  for (uint64_t i = 0; i < 10; ++i) {
    fr.record_at(i, FrKind::kPeriodBegin, 0, 0, i);
  }
#ifdef SUBSUM_NO_TELEMETRY
  EXPECT_TRUE(fr.snapshot().empty());
#else
  const auto recs = fr.snapshot();
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs.front().detail, 6u);  // newest 4, oldest first
  EXPECT_EQ(recs.back().detail, 9u);
  EXPECT_EQ(fr.appended(), 10u);
#endif
}

TEST(FlightRecorder, ConcurrentAppendsNeverTear) {
  FlightRecorder fr(0, 64, /*virtual_time=*/true);
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&fr, t] {
      for (uint32_t i = 0; i < 2000; ++i) {
        // Invariant checked below: a == b and detail == a for every record,
        // so any torn read/write shows up as a mismatched tuple.
        const uint32_t v = static_cast<uint32_t>(t) * 10000 + i;
        fr.record_at(v, FrKind::kBreakerFlip, v, v, v);
      }
    });
  }
  for (auto& t : ts) t.join();
  for (const auto& r : fr.snapshot()) {
    EXPECT_EQ(r.a, r.b);
    EXPECT_EQ(r.detail, r.a);
    EXPECT_EQ(r.t_us, r.a);
  }
#ifndef SUBSUM_NO_TELEMETRY
  EXPECT_EQ(fr.appended(), 8000u);
  EXPECT_EQ(fr.snapshot().size(), 64u);
#endif
}

// --- dump format ------------------------------------------------------------

TEST(FlightRecorder, SerializeDecodeRoundTrip) {
  FlightRecorder fr(7, 16, /*virtual_time=*/true);
  fr.record_at(1, FrKind::kStart, 0, 0, 3);
  fr.record_at(2, FrKind::kBreakerFlip, 1, 1, 0, 0xdeadbeef);
  const auto dump = decode_dump(fr.serialize());
  ASSERT_TRUE(dump.has_value());
  EXPECT_EQ(dump->version, 1u);
  EXPECT_EQ(dump->broker, 7u);
  EXPECT_EQ(dump->wall_anchor_us, 0u);  // virtual time
  EXPECT_FALSE(dump->truncated);
  EXPECT_EQ(dump->records, fr.snapshot());
#ifndef SUBSUM_NO_TELEMETRY
  ASSERT_EQ(dump->records.size(), 2u);
  EXPECT_EQ(dump->records[1].trace, 0xdeadbeefu);
#endif
}

TEST(FlightRecorder, EmptyDumpIsValid) {
  // The NO_TELEMETRY leg serializes exactly this: header, zero records.
  FlightRecorder fr(2, 8, /*virtual_time=*/true);
  const auto dump = decode_dump(fr.serialize());
  ASSERT_TRUE(dump.has_value());
  EXPECT_EQ(dump->broker, 2u);
  EXPECT_TRUE(dump->records.empty());
  EXPECT_FALSE(dump->truncated);
}

TEST(FlightRecorder, TornTailKeepsIntactPrefix) {
  FlightRecorder fr(1, 8, /*virtual_time=*/true);
  for (uint64_t i = 0; i < 4; ++i) fr.record_at(i, FrKind::kPeriodBegin, 0, 0, i);
  auto bytes = fr.serialize();
#ifdef SUBSUM_NO_TELEMETRY
  GTEST_SKIP() << "no records to tear under SUBSUM_NO_TELEMETRY";
#endif
  // Tear mid-way through the last record (crash during write(2)).
  bytes.resize(bytes.size() - 17);
  const auto dump = decode_dump(bytes);
  ASSERT_TRUE(dump.has_value());
  EXPECT_TRUE(dump->truncated);
  ASSERT_EQ(dump->records.size(), 3u);
  EXPECT_EQ(dump->records[2].detail, 2u);
}

TEST(FlightRecorder, CorruptRecordStopsAtTheFlip) {
  FlightRecorder fr(1, 8, /*virtual_time=*/true);
  for (uint64_t i = 0; i < 3; ++i) fr.record_at(i, FrKind::kPeriodBegin, 0, 0, i);
  auto bytes = fr.serialize();
#ifdef SUBSUM_NO_TELEMETRY
  GTEST_SKIP() << "no records to corrupt under SUBSUM_NO_TELEMETRY";
#endif
  // Flip one byte inside the second record's payload: its CRC fails, the
  // reader keeps record 1 and reports truncation.
  const size_t header = 8 + 4 + 32;       // magic + crc + header payload
  const size_t rec = 4 + 40;              // crc + record payload
  bytes[header + rec + 10] ^= std::byte{0xFF};
  const auto dump = decode_dump(bytes);
  ASSERT_TRUE(dump.has_value());
  EXPECT_TRUE(dump->truncated);
  ASSERT_EQ(dump->records.size(), 1u);
}

TEST(FlightRecorder, GarbageAndShortInputsAreRejectedNotFatal) {
  EXPECT_FALSE(decode_dump({}).has_value());
  std::vector<std::byte> junk(64, std::byte{0x5A});
  EXPECT_FALSE(decode_dump(junk).has_value());
  FlightRecorder fr(1, 4, /*virtual_time=*/true);
  auto bytes = fr.serialize();
  for (size_t cut = 0; cut < 8 + 4 + 32; ++cut) {
    EXPECT_FALSE(decode_dump(std::span(bytes.data(), cut)).has_value()) << cut;
  }
}

TEST(FlightRecorder, DumpToFileRoundTrips) {
  const auto dir = std::filesystem::temp_directory_path() / "subsum_fr_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "flight.bin").string();
  FlightRecorder fr(5, 8, /*virtual_time=*/true);
  fr.record_at(9, FrKind::kShutdown);
  ASSERT_TRUE(fr.dump_to(path));
  const auto dump = decode_dump(read_file(path));
  ASSERT_TRUE(dump.has_value());
  EXPECT_EQ(dump->broker, 5u);
  EXPECT_EQ(dump->records, fr.snapshot());
  std::filesystem::remove_all(dir);
}

TEST(FlightRecorder, VirtualTimeDumpsAreByteIdenticalAcrossRuns) {
  auto run = [] {
    FlightRecorder fr(1, 16, /*virtual_time=*/true);
    for (uint64_t p = 1; p <= 5; ++p) {
      fr.record_at(p * 1'000'000, FrKind::kPeriodBegin, 0, 0, p);
    }
    fr.record_at(3'000'001, FrKind::kLeaseExpired, 42, 1);
    return fr.serialize();
  };
  EXPECT_EQ(run(), run());  // the sim's reproducibility contract
}

// --- timeline ---------------------------------------------------------------

TEST(FlightRecorder, TimelineMergesBrokersByAnchoredTime) {
#ifdef SUBSUM_NO_TELEMETRY
  GTEST_SKIP() << "records compile out under SUBSUM_NO_TELEMETRY";
#endif
  FrDump a;
  a.broker = 0;
  a.records.push_back({2'000'000, 0, 7340032, 0, 1, 3, FrKind::kRungChange});
  FrDump b;
  b.broker = 1;
  b.records.push_back({1'000'000, 0xabc, 0, 1, 2, 1, FrKind::kBreakerFlip});
  const std::string tl = format_timeline(std::vector<FrDump>{a, b});
  // Broker 1's earlier record sorts first despite arriving second.
  const auto flip = tl.find("broker 1 breaker-flip");
  const auto rung = tl.find("broker 0 rung-change");
  ASSERT_NE(flip, std::string::npos) << tl;
  ASSERT_NE(rung, std::string::npos) << tl;
  EXPECT_LT(flip, rung);
  EXPECT_NE(tl.find("1->3"), std::string::npos) << tl;          // rung edge
  EXPECT_NE(tl.find("trace=0000000000000abc"), std::string::npos) << tl;
}

TEST(FlightRecorder, KindNamesAreStable) {
  EXPECT_EQ(to_string(FrKind::kStart), "start");
  EXPECT_EQ(to_string(FrKind::kRungChange), "rung-change");
  EXPECT_EQ(to_string(FrKind::kBreakerFlip), "breaker-flip");
  EXPECT_EQ(to_string(FrKind::kDropOldest), "drop-oldest");
  EXPECT_EQ(to_string(FrKind::kSlowConsumer), "slow-consumer-disconnect");
  EXPECT_EQ(to_string(FrKind::kLeaseExpired), "lease-expired");
  EXPECT_EQ(to_string(FrKind::kEpochBump), "epoch-bump");
  EXPECT_EQ(to_string(FrKind::kWalTruncateHeal), "wal-truncate-heal");
  EXPECT_EQ(to_string(FrKind::kShutdown), "shutdown");
  EXPECT_EQ(to_string(FrKind::kDump), "dump");
  EXPECT_EQ(to_string(FrKind::kFatalSignal), "fatal-signal");
  EXPECT_EQ(to_string(FrKind::kPeriodBegin), "period-begin");
}

// --- structured logger ------------------------------------------------------

std::string capture_log(LogLevel cfg, LogLevel at, const char* msg,
                        uint64_t trace = 0, std::initializer_list<LogKv> kv = {}) {
  std::FILE* f = std::tmpfile();
  Logger log;
  log.configure(cfg, f, /*broker=*/3);
  log.log(at, "test", msg, trace, kv);
  std::fflush(f);
  std::rewind(f);
  char buf[512] = {};
  const size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  return std::string(buf, n);
}

TEST(Log, EmitsJsonlWithTraceAndKv) {
  const std::string line =
      capture_log(LogLevel::kInfo, LogLevel::kWarn, "rung change", 0xab,
                  {{"old", 0}, {"new", 2}});
#ifdef SUBSUM_NO_TELEMETRY
  EXPECT_TRUE(line.empty());
#else
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"broker\":3"), std::string::npos);
  EXPECT_NE(line.find("\"component\":\"test\""), std::string::npos);
  EXPECT_NE(line.find("\"msg\":\"rung change\""), std::string::npos);
  EXPECT_NE(line.find("\"trace\":\"00000000000000ab\""), std::string::npos);
  EXPECT_NE(line.find("\"old\":0"), std::string::npos);
  EXPECT_NE(line.find("\"new\":2"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
#endif
}

TEST(Log, LevelGateAndOffByDefault) {
  EXPECT_TRUE(capture_log(LogLevel::kError, LogLevel::kWarn, "below gate").empty());
  EXPECT_TRUE(capture_log(LogLevel::kOff, LogLevel::kError, "off").empty());
  Logger unconfigured;
  EXPECT_FALSE(unconfigured.enabled(LogLevel::kError));  // silent by default
}

TEST(Log, RateLimitSuppressesAndSummarizes) {
#ifdef SUBSUM_NO_TELEMETRY
  GTEST_SKIP() << "logger compiles out under SUBSUM_NO_TELEMETRY";
#endif
  std::FILE* f = std::tmpfile();
  Logger log;
  log.configure(LogLevel::kInfo, f, 0, /*max_lines_per_sec=*/5);
  for (int i = 0; i < 50; ++i) log.log(LogLevel::kInfo, "t", "spam");
  EXPECT_EQ(log.emitted(), 5u);
  EXPECT_EQ(log.suppressed(), 45u);
  std::fclose(f);
}

TEST(Log, ParseLogLevelNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kOff);
}

TEST(Log, JsonEscapesControlCharsAndQuotes) {
  std::string out;
  json_escape("a\"b\\c\nd\te", out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te");
}

// --- stage set --------------------------------------------------------------

TEST(StageSet, RegistersEveryStageWithExemplars) {
  MetricsRegistry reg;
  StageSet stages(reg);
  stages.observe(Stage::kMatch, 7, 0x77);
  stages.observe(Stage::kE2e, 1000);
  const std::string text = reg.prometheus_text();
  for (const char* name :
       {"ingress_decode", "admission", "wal_fsync", "match", "route_hop",
        "outbound_queue", "writer_flush", "e2e"}) {
    EXPECT_NE(text.find(std::string("stage=\"") + name + "\""), std::string::npos)
        << name;
  }
#ifndef SUBSUM_NO_TELEMETRY
  EXPECT_EQ(stages.hist(Stage::kMatch)->count(), 1u);
  EXPECT_EQ(stages.hist(Stage::kMatch)
                ->exemplar(Histogram::bucket_of(7)).trace,
            0x77u);
#endif
}

TEST(StageSet, StageNamesAreStable) {
  EXPECT_EQ(to_string(Stage::kIngressDecode), "ingress_decode");
  EXPECT_EQ(to_string(Stage::kAdmission), "admission");
  EXPECT_EQ(to_string(Stage::kWalFsync), "wal_fsync");
  EXPECT_EQ(to_string(Stage::kMatch), "match");
  EXPECT_EQ(to_string(Stage::kRouteHop), "route_hop");
  EXPECT_EQ(to_string(Stage::kOutboundQueue), "outbound_queue");
  EXPECT_EQ(to_string(Stage::kWriterFlush), "writer_flush");
  EXPECT_EQ(to_string(Stage::kE2e), "e2e");
}

}  // namespace
}  // namespace subsum::obs
