// Tests for the configurable semantics added around the paper's core:
// AacsMode (coarse row absorption vs exact partition), the Algorithm-2
// propagation options (neighbor preference, delivery timing), the workload
// range_tightness knob, and the matching_event derivation helper.
#include <gtest/gtest.h>

#include <set>

#include "core/matcher.h"
#include "core/serialize.h"
#include "overlay/topologies.h"
#include "routing/event_router.h"
#include "routing/propagation.h"
#include "util/rng.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace subsum {
namespace {

using core::AacsMode;
using core::BrokerSummary;
using model::Op;
using model::Schema;
using model::SubId;
using model::Subscription;
using model::SubscriptionBuilder;
using overlay::BrokerId;

Schema schema_v() { return workload::stock_schema(); }

TEST(CoarseAacs, IncludedConstraintJoinsExistingRow) {
  core::Aacs a(AacsMode::kCoarse);
  const SubId wide{0, 1, 0};
  const SubId inner{0, 2, 0};
  a.insert(core::Interval{core::Pos::at(0), core::Pos::at(100)}, std::vector<SubId>{wide});
  a.insert(core::Interval{core::Pos::at(10), core::Pos::at(20)},
           std::vector<SubId>{inner});
  // One row; the inner constraint was absorbed.
  ASSERT_EQ(a.pieces().size(), 1u);
  EXPECT_EQ(a.pieces()[0].ids, (std::vector<SubId>{wide, inner}));
  // Lossy in the safe direction: 50 is outside [10,20] but reports inner.
  ASSERT_NE(a.find(50), nullptr);
  EXPECT_EQ(a.find(50)->size(), 2u);
}

TEST(CoarseAacs, NonIncludedConstraintSplitsExactly) {
  core::Aacs a(AacsMode::kCoarse);
  a.insert(core::Interval{core::Pos::at(0), core::Pos::at(10)},
           std::vector<SubId>{SubId{0, 1, 0}});
  // Overlapping but not included: falls back to exact splitting.
  a.insert(core::Interval{core::Pos::at(5), core::Pos::at(15)},
           std::vector<SubId>{SubId{0, 2, 0}});
  EXPECT_EQ(a.pieces().size(), 3u);
  EXPECT_EQ(a.find(12)->size(), 1u);  // only the second id out there
}

TEST(CoarseAacs, EqualityInsideRangeAbsorbed) {
  core::Aacs a(AacsMode::kCoarse);
  a.insert(core::Interval{core::Pos::at(0), core::Pos::at(10)},
           std::vector<SubId>{SubId{0, 1, 0}});
  a.insert(core::IntervalSet::from_constraint(Op::kEq, 5.0), SubId{0, 2, 0});
  // Paper: AACS_E is only for equality values NOT included in the ranges.
  EXPECT_EQ(a.pieces().size(), 1u);
  EXPECT_EQ(a.ne(), 0u);
  a.insert(core::IntervalSet::from_constraint(Op::kEq, 50.0), SubId{0, 3, 0});
  EXPECT_EQ(a.ne(), 1u);
}

TEST(CoarseAacs, NeverFalseNegative) {
  // Coarse lookups are a superset of exact lookups on any insert sequence.
  util::Rng rng(404);
  core::Aacs coarse(AacsMode::kCoarse);
  core::Aacs exact(AacsMode::kExact);
  for (uint32_t i = 0; i < 300; ++i) {
    const double a = static_cast<double>(rng.range_i64(-20, 20));
    const double b = a + static_cast<double>(rng.below(10));
    const core::Interval iv{core::Pos::at(a), core::Pos::at(b)};
    const SubId id{0, i, 0};
    coarse.insert(iv, std::vector<SubId>{id});
    exact.insert(iv, std::vector<SubId>{id});
  }
  for (double x = -25; x <= 35; x += 0.5) {
    const auto* c = coarse.find(x);
    const auto* e = exact.find(x);
    if (!e) continue;
    ASSERT_NE(c, nullptr) << x;
    EXPECT_TRUE(std::includes(c->begin(), c->end(), e->begin(), e->end())) << x;
  }
}

TEST(CoarseSummary, EndToEndSupersetAndHomeFilterExact) {
  // Wide range subscribed first, tight windows after: coarse absorption
  // triggers on every window, producing arithmetic false positives that
  // must always stay on the safe (superset) side.
  const Schema s = schema_v();
  util::Rng rng(70);
  BrokerSummary coarse(s, core::GeneralizePolicy::kSafe, AacsMode::kCoarse);
  core::NaiveMatcher naive;
  uint32_t next = 0;
  auto install = [&](Subscription sub) {
    const SubId id{0, next++, sub.mask()};
    coarse.add(sub, id);
    naive.add({id, std::move(sub)});
  };
  install(SubscriptionBuilder(s)
              .where("price", Op::kGe, 0.0)
              .where("price", Op::kLe, 100.0)
              .build());
  for (int i = 0; i < 300; ++i) {
    const double a = rng.range_f64(0.0, 90.0);
    install(SubscriptionBuilder(s)
                .where("price", Op::kGe, a)
                .where("price", Op::kLe, a + 10.0)
                .build());
  }
  size_t fp = 0;
  for (int i = 0; i < 200; ++i) {
    const auto e =
        model::EventBuilder(s).set("price", rng.range_f64(-5.0, 105.0)).build();
    const auto approx = core::match(coarse, e);
    const auto exact = naive.match(e);
    EXPECT_TRUE(std::includes(approx.begin(), approx.end(), exact.begin(), exact.end()));
    fp += approx.size() - exact.size();
  }
  // The lossy mode must actually be exercised by this workload.
  EXPECT_GT(fp, 0u);
}

TEST(RangeTightness, ZeroReusesCanonicalRanges) {
  const Schema s = schema_v();
  workload::SubGenParams sp;
  sp.subsumption = 1.0;
  sp.range_tightness = 0.0;
  workload::SubscriptionGenerator gen(s, sp, 11);
  BrokerSummary summary(s);
  for (uint32_t i = 0; i < 200; ++i) {
    const auto sub = gen.next();
    summary.add(sub, SubId{0, i, sub.mask()});
  }
  // Every arithmetic constraint is one of the nsr = 2 canonical ranges:
  // row count stays bounded by attrs * nsr even in exact mode.
  const auto st = summary.stats();
  EXPECT_LE(st.nsr, s.arithmetic_count() * 2);
  EXPECT_EQ(st.ne, 0u);
}

TEST(RangeTightness, PositiveSplitsExactPartition) {
  const Schema s = schema_v();
  workload::SubGenParams sp;
  sp.subsumption = 1.0;
  sp.range_tightness = 0.5;
  workload::SubscriptionGenerator gen(s, sp, 12);
  BrokerSummary summary(s);  // exact mode
  for (uint32_t i = 0; i < 200; ++i) {
    const auto sub = gen.next();
    summary.add(sub, SubId{0, i, sub.mask()});
  }
  EXPECT_GT(summary.stats().nsr, s.arithmetic_count() * 2);
}

TEST(MatchingEvent, SatisfiesArbitraryGeneratedSubscriptions) {
  const Schema s = schema_v();
  for (double subsumption : {0.1, 0.5, 0.9}) {
    workload::SubGenParams sp;
    sp.subsumption = subsumption;
    workload::SubscriptionGenerator gen(s, sp, 81);
    size_t produced = 0;
    for (int i = 0; i < 200; ++i) {
      const auto sub = gen.next();
      const auto e = workload::matching_event(s, sub);
      if (!e) continue;  // nullopt allowed, a lie is not
      EXPECT_TRUE(sub.matches(*e)) << sub.to_string(s) << " vs " << e->to_string(s);
      ++produced;
    }
    EXPECT_GT(produced, 150u);  // derivation succeeds for typical workloads
  }
}

TEST(MatchingEvent, HandlesTrickyConstraints) {
  const Schema s = schema_v();
  // Open float interval.
  auto sub = SubscriptionBuilder(s)
                 .where("price", Op::kGt, 1.0)
                 .where("price", Op::kLt, 1.0000001)
                 .build();
  if (auto e = workload::matching_event(s, sub)) {
    EXPECT_TRUE(sub.matches(*e));
  }

  // Integer attribute with an open interval containing integers.
  sub = SubscriptionBuilder(s)
            .where("volume", Op::kGt, int64_t{10})
            .where("volume", Op::kLt, int64_t{12})
            .build();
  auto e = workload::matching_event(s, sub);
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(sub.matches(*e));

  // Integer attribute with an open interval containing NO integer.
  sub = SubscriptionBuilder(s)
            .where("volume", Op::kGt, int64_t{10})
            .where("volume", Op::kLt, int64_t{11})
            .build();
  EXPECT_FALSE(workload::matching_event(s, sub).has_value());

  // Unsatisfiable.
  sub = SubscriptionBuilder(s)
            .where("price", Op::kGt, 5.0)
            .where("price", Op::kLt, 1.0)
            .build();
  EXPECT_FALSE(workload::matching_event(s, sub).has_value());

  // Prefix + suffix + not-equal conjunction.
  sub = SubscriptionBuilder(s)
            .where("symbol", Op::kPrefix, "AB")
            .where("symbol", Op::kSuffix, "YZ")
            .where("symbol", Op::kNe, "ABYZ")
            .build();
  e = workload::matching_event(s, sub);
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(sub.matches(*e));

  // Negative equality on a float.
  sub = SubscriptionBuilder(s).where("price", Op::kNe, 0.0).build();
  e = workload::matching_event(s, sub);
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(sub.matches(*e));
}

TEST(PropagationOptions, ImmediateDeliveryComposesChains) {
  // Line of four equal-degree middles: under deferred delivery the pairs
  // swap; under immediate delivery the chain concatenates left-to-right.
  const Schema s = schema_v();
  const auto g = overlay::line(6);
  std::vector<BrokerSummary> own;
  for (BrokerId b = 0; b < g.size(); ++b) {
    BrokerSummary summary(s);
    const auto sub =
        SubscriptionBuilder(s).where("symbol", Op::kEq, "b" + std::to_string(b)).build();
    summary.add(sub, SubId{b, 0, sub.mask()});
    own.push_back(std::move(summary));
  }
  const core::WireConfig wire{model::SubIdCodec(6, 16, s.attr_count()), 8};

  routing::PropagationOptions deferred;
  routing::PropagationOptions immediate;
  immediate.immediate_delivery = true;

  const auto d = routing::propagate(g, own, wire, deferred);
  const auto i = routing::propagate(g, own, wire, immediate);

  size_t d_best = 0, i_best = 0;
  for (BrokerId b = 0; b < g.size(); ++b) {
    d_best = std::max(d_best, d.merged_brokers[b].size());
    i_best = std::max(i_best, i.merged_brokers[b].size());
  }
  EXPECT_GT(i_best, d_best);  // chains compose: some broker knows more
  // Both remain covering and self-inclusive.
  for (const auto& result : {d, i}) {
    std::set<BrokerId> covered;
    for (const auto& mb : result.merged_brokers) covered.insert(mb.begin(), mb.end());
    EXPECT_EQ(covered.size(), g.size());
  }
}

TEST(PropagationOptions, LargestDegreePreferenceStillCovers) {
  const Schema s = schema_v();
  util::Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = overlay::random_tree(20, rng);
    std::vector<BrokerSummary> own;
    for (BrokerId b = 0; b < g.size(); ++b) {
      BrokerSummary summary(s);
      const auto sub =
          SubscriptionBuilder(s).where("symbol", Op::kEq, "b" + std::to_string(b)).build();
      summary.add(sub, SubId{b, 0, sub.mask()});
      own.push_back(std::move(summary));
    }
    const core::WireConfig wire{model::SubIdCodec(20, 16, s.attr_count()), 8};
    for (auto pref : {routing::NeighborPreference::kSmallestDegree,
                      routing::NeighborPreference::kLargestDegree}) {
      for (bool imm : {false, true}) {
        routing::PropagationOptions opts;
        opts.preference = pref;
        opts.immediate_delivery = imm;
        const auto r = routing::propagate(g, own, wire, opts);
        std::set<BrokerId> covered;
        for (const auto& mb : r.merged_brokers) covered.insert(mb.begin(), mb.end());
        EXPECT_EQ(covered.size(), g.size());
        EXPECT_LE(r.hops(), g.size());
        // Knowledge soundness under every variant.
        for (BrokerId b = 0; b < g.size(); ++b) {
          for (BrokerId x : r.merged_brokers[b]) {
            const auto e = model::EventBuilder(s)
                               .set("symbol", "b" + std::to_string(x))
                               .build();
            EXPECT_EQ(core::match(r.held[b], e).size(), 1u);
          }
        }
      }
    }
  }
}

TEST(PropagationOptions, Fig7UnchangedByImmediateDelivery) {
  // The paper's walkthrough has no same-iteration chains, so both delivery
  // semantics produce identical results on the figure-7 tree.
  const Schema s = schema_v();
  const auto g = overlay::fig7_tree();
  std::vector<BrokerSummary> own;
  for (BrokerId b = 0; b < g.size(); ++b) {
    BrokerSummary summary(s);
    const auto sub =
        SubscriptionBuilder(s).where("symbol", Op::kEq, "b" + std::to_string(b)).build();
    summary.add(sub, SubId{b, 0, sub.mask()});
    own.push_back(std::move(summary));
  }
  const core::WireConfig wire{model::SubIdCodec(13, 16, s.attr_count()), 8};
  routing::PropagationOptions immediate;
  immediate.immediate_delivery = true;
  const auto a = routing::propagate(g, own, wire);
  const auto b = routing::propagate(g, own, wire, immediate);
  EXPECT_EQ(a.merged_brokers, b.merged_brokers);
  EXPECT_EQ(a.hops(), b.hops());
}

TEST(SerializeFuzz, RandomBytesNeverCrash) {
  const Schema s = schema_v();
  util::Rng rng(616);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::byte> junk(rng.below(200));
    for (auto& b : junk) b = std::byte{static_cast<uint8_t>(rng.below(256))};
    try {
      const auto summary = core::decode_summary(junk, s);
      (void)summary;  // accidentally valid input is fine
    } catch (const util::DecodeError&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(SerializeFuzz, MutatedValidSummariesNeverCrash) {
  const Schema s = schema_v();
  workload::SubscriptionGenerator gen(s, {}, 77);
  BrokerSummary summary(s);
  for (uint32_t i = 0; i < 20; ++i) {
    const auto sub = gen.next();
    summary.add(sub, SubId{1, i, sub.mask()});
  }
  const core::WireConfig wire{model::SubIdCodec(24, 1u << 10, s.attr_count()), 8};
  const auto good = core::encode_summary(summary, wire);
  util::Rng rng(617);
  for (int trial = 0; trial < 2000; ++trial) {
    auto bad = good;
    const size_t flips = 1 + rng.below(4);
    for (size_t i = 0; i < flips; ++i) {
      bad[rng.below(bad.size())] ^= std::byte{static_cast<uint8_t>(1 + rng.below(255))};
    }
    try {
      const auto decoded = core::decode_summary(bad, s);
      (void)decoded;
    } catch (const util::DecodeError&) {
    } catch (const std::invalid_argument&) {
    } catch (const std::range_error&) {
    }
  }
}

}  // namespace
}  // namespace subsum
