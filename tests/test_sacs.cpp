#include <gtest/gtest.h>

#include <map>

#include "core/sacs.h"
#include "util/rng.h"

namespace subsum::core {
namespace {

using model::Op;
using model::SubId;

SubId sid(uint32_t n) { return SubId{0, n, 0}; }

TEST(StringPattern, Matches) {
  EXPECT_TRUE((StringPattern{Op::kEq, "OTE"}.matches("OTE")));
  EXPECT_FALSE((StringPattern{Op::kEq, "OTE"}.matches("OT")));
  EXPECT_TRUE((StringPattern{Op::kNe, "OTE"}.matches("X")));
  EXPECT_FALSE((StringPattern{Op::kNe, "OTE"}.matches("OTE")));
  EXPECT_TRUE((StringPattern{Op::kPrefix, "OT"}.matches("OTE")));
  EXPECT_TRUE((StringPattern{Op::kSuffix, "TE"}.matches("OTE")));
  EXPECT_TRUE((StringPattern{Op::kContains, "T"}.matches("OTE")));
  EXPECT_THROW((void)(StringPattern{Op::kLt, "x"}.matches("y")), std::invalid_argument);
}

TEST(StringPattern, CoversPrefix) {
  EXPECT_TRUE(covers({Op::kPrefix, "m"}, {Op::kPrefix, "micro"}));
  EXPECT_FALSE(covers({Op::kPrefix, "micro"}, {Op::kPrefix, "m"}));
  EXPECT_TRUE(covers({Op::kPrefix, "micro"}, {Op::kEq, "microsoft"}));
  EXPECT_FALSE(covers({Op::kPrefix, "micro"}, {Op::kEq, "mic"}));
  EXPECT_FALSE(covers({Op::kPrefix, "m"}, {Op::kSuffix, "m"}));
  EXPECT_FALSE(covers({Op::kPrefix, "m"}, {Op::kContains, "m"}));
}

TEST(StringPattern, CoversSuffix) {
  EXPECT_TRUE(covers({Op::kSuffix, "soft"}, {Op::kEq, "microsoft"}));
  EXPECT_TRUE(covers({Op::kSuffix, "t"}, {Op::kSuffix, "soft"}));
  EXPECT_FALSE(covers({Op::kSuffix, "soft"}, {Op::kSuffix, "t"}));
}

TEST(StringPattern, CoversContains) {
  EXPECT_TRUE(covers({Op::kContains, "cro"}, {Op::kEq, "microsoft"}));
  EXPECT_TRUE(covers({Op::kContains, "cro"}, {Op::kPrefix, "micro"}));
  EXPECT_TRUE(covers({Op::kContains, "os"}, {Op::kSuffix, "osoft"}));
  EXPECT_TRUE(covers({Op::kContains, "o"}, {Op::kContains, "cro"}));
  EXPECT_FALSE(covers({Op::kContains, "cro"}, {Op::kContains, "o"}));
  // contains("") covers everything, including Ne.
  EXPECT_TRUE(covers({Op::kContains, ""}, {Op::kNe, "x"}));
  EXPECT_FALSE(covers({Op::kContains, "x"}, {Op::kNe, "y"}));
}

TEST(StringPattern, CoversEqAndNe) {
  EXPECT_TRUE(covers({Op::kEq, "a"}, {Op::kEq, "a"}));
  EXPECT_FALSE(covers({Op::kEq, "a"}, {Op::kEq, "b"}));
  EXPECT_FALSE(covers({Op::kEq, "a"}, {Op::kPrefix, "a"}));
  EXPECT_TRUE(covers({Op::kNe, "a"}, {Op::kEq, "b"}));
  EXPECT_FALSE(covers({Op::kNe, "a"}, {Op::kEq, "a"}));
  EXPECT_TRUE(covers({Op::kNe, "a"}, {Op::kNe, "a"}));
  EXPECT_FALSE(covers({Op::kNe, "a"}, {Op::kNe, "b"}));
  // Ne("zzz") covers Prefix("a"): "zzz" does not start with "a".
  EXPECT_TRUE(covers({Op::kNe, "zzz"}, {Op::kPrefix, "a"}));
  EXPECT_FALSE(covers({Op::kNe, "abc"}, {Op::kPrefix, "a"}));
}

// Semantic soundness: whenever covers(a, b) holds, every string matching b
// matches a. Randomized over a small alphabet to force collisions.
class CoversProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoversProperty, CoversImpliesImplication) {
  util::Rng rng(GetParam());
  const Op ops[] = {Op::kEq, Op::kNe, Op::kPrefix, Op::kSuffix, Op::kContains};
  auto word = [&] {
    std::string s;
    const size_t len = rng.below(4);
    for (size_t i = 0; i < len; ++i) s += static_cast<char>('a' + rng.below(2));
    return s;
  };
  for (int trial = 0; trial < 2000; ++trial) {
    const StringPattern a{ops[rng.below(5)], word()};
    const StringPattern b{ops[rng.below(5)], word()};
    if (!covers(a, b)) continue;
    // Exhaustive universe of test strings over {a, b}^<=4.
    std::vector<std::string> universe{""};
    for (int code = 0; code < (2 + 4 + 8 + 16); ++code) {
      // enumerate strings of length 1..4 over {a,b}
      int c = code;
      size_t len = 1;
      int count = 2;
      while (c >= count) {
        c -= count;
        count *= 2;
        ++len;
      }
      std::string s;
      for (size_t i = 0; i < len; ++i) {
        s += static_cast<char>('a' + (c & 1));
        c >>= 1;
      }
      universe.push_back(s);
    }
    for (const auto& s : universe) {
      if (b.matches(s)) {
        EXPECT_TRUE(a.matches(s)) << a.to_string() << " claimed to cover " << b.to_string()
                                  << " but misses \"" << s << "\"";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoversProperty, ::testing::Values(101, 202, 303));

TEST(Sacs, PaperFigure5SharedRow) {
  // S1 and S2 both constrain symbol with >* OT: one row, two ids.
  Sacs s;
  s.insert({Op::kPrefix, "OT"}, sid(1));
  s.insert({Op::kPrefix, "OT"}, sid(2));
  ASSERT_EQ(s.nr(), 1u);
  EXPECT_EQ(s.find("OTE"), (std::vector<SubId>{sid(1), sid(2)}));
  EXPECT_TRUE(s.find("XYZ").empty());
}

TEST(Sacs, CoveredConstraintJoinsExistingRow) {
  Sacs s;
  s.insert({Op::kPrefix, "m"}, sid(1));
  s.insert({Op::kEq, "microsoft"}, sid(2));  // covered by prefix "m"
  EXPECT_EQ(s.nr(), 1u);
  // Lossy in the safe direction: "mango" now reports S2 as candidate too.
  EXPECT_EQ(s.find("mango"), (std::vector<SubId>{sid(1), sid(2)}));
}

TEST(Sacs, MoreGeneralConstraintSubstitutesRows) {
  Sacs s;
  s.insert({Op::kEq, "microsoft"}, sid(1));
  s.insert({Op::kEq, "micronet"}, sid(2));
  EXPECT_EQ(s.nr(), 2u);
  s.insert({Op::kPrefix, "micro"}, sid(3));  // covers both rows
  EXPECT_EQ(s.nr(), 1u);
  EXPECT_EQ(s.rows()[0].pattern, (StringPattern{Op::kPrefix, "micro"}));
  EXPECT_EQ(s.find("microscope"), (std::vector<SubId>{sid(1), sid(2), sid(3)}));
}

TEST(Sacs, NoFalseNegativesAfterSubstitution) {
  Sacs s;
  s.insert({Op::kEq, "microsoft"}, sid(1));
  s.insert({Op::kPrefix, "micro"}, sid(2));
  // S1's original value must still be findable.
  const auto ids = s.find("microsoft");
  EXPECT_NE(std::find(ids.begin(), ids.end(), sid(1)), ids.end());
}

TEST(Sacs, PolicyNoneKeepsDistinctRows) {
  Sacs s(GeneralizePolicy::kNone);
  s.insert({Op::kEq, "microsoft"}, sid(1));
  s.insert({Op::kPrefix, "micro"}, sid(2));
  EXPECT_EQ(s.nr(), 2u);
  // Identical patterns still share a row under kNone.
  s.insert({Op::kEq, "microsoft"}, sid(3));
  EXPECT_EQ(s.nr(), 2u);
  EXPECT_EQ(s.find("microsoft"), (std::vector<SubId>{sid(1), sid(2), sid(3)}));
}

TEST(Sacs, SafePolicyDoesNotGeneralizeUnderNe) {
  Sacs safe(GeneralizePolicy::kSafe);
  safe.insert({Op::kNe, "x"}, sid(1));
  safe.insert({Op::kEq, "abc"}, sid(2));
  EXPECT_EQ(safe.nr(), 2u);  // Eq kept separate despite Ne("x") covering it

  Sacs aggressive(GeneralizePolicy::kAggressive);
  aggressive.insert({Op::kNe, "x"}, sid(1));
  aggressive.insert({Op::kEq, "abc"}, sid(2));
  EXPECT_EQ(aggressive.nr(), 1u);
}

TEST(Sacs, FindDeduplicatesAcrossRows) {
  Sacs s;
  s.insert({Op::kPrefix, "ab"}, sid(1));
  s.insert({Op::kSuffix, "cd"}, sid(1));  // same subscription, two constraints
  EXPECT_EQ(s.nr(), 2u);
  EXPECT_EQ(s.find("abcd"), std::vector<SubId>{sid(1)});  // not twice
}

TEST(Sacs, RemoveDropsEmptyRows) {
  Sacs s;
  s.insert({Op::kPrefix, "OT"}, sid(1));
  s.insert({Op::kPrefix, "OT"}, sid(2));
  s.remove(sid(1));
  EXPECT_EQ(s.nr(), 1u);
  EXPECT_EQ(s.find("OTE"), std::vector<SubId>{sid(2)});
  s.remove(sid(2));
  EXPECT_TRUE(s.empty());
}

TEST(Sacs, MergeCombinesAndGeneralizes) {
  Sacs a, b;
  a.insert({Op::kEq, "microsoft"}, sid(1));
  b.insert({Op::kPrefix, "micro"}, sid(2));
  b.insert({Op::kEq, "oracle"}, sid(3));
  a.merge(b);
  EXPECT_EQ(a.nr(), 2u);  // "micro" absorbed "microsoft"; "oracle" separate
  EXPECT_EQ(a.find("oracle"), std::vector<SubId>{sid(3)});
  const auto ids = a.find("microsoft");
  EXPECT_EQ(ids, (std::vector<SubId>{sid(1), sid(2)}));
}

TEST(Sacs, StatsCounters) {
  Sacs s;
  s.insert({Op::kPrefix, "OT"}, sid(1));
  s.insert({Op::kPrefix, "OT"}, sid(2));
  s.insert({Op::kEq, "abcd"}, sid(3));
  EXPECT_EQ(s.nr(), 2u);
  EXPECT_EQ(s.id_entries(), 3u);
  EXPECT_EQ(s.value_bytes(), 2u + 4u);
}

}  // namespace
}  // namespace subsum::core
