#include <gtest/gtest.h>

#include <numeric>

#include "overlay/graph.h"
#include "overlay/spanning_tree.h"
#include "overlay/topologies.h"
#include "util/rng.h"

namespace subsum::overlay {
namespace {

TEST(Graph, EdgesAndDegrees) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.neighbors(1), (std::vector<BrokerId>{0, 2, 3}));
}

TEST(Graph, RejectsBadEdges) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5), std::invalid_argument);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);  // duplicate
}

TEST(Graph, BfsDistances) {
  const Graph g = line(5);
  const auto d = g.distances_from(0);
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(g.diameter(), 4);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, DisconnectedDetected) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
  EXPECT_EQ(g.diameter(), -1);
  EXPECT_EQ(g.distances_from(0)[2], -1);
}

TEST(Graph, MeanPairwiseDistanceLine3) {
  // Distances: 0-1:1, 0-2:2, 1-2:1 (each counted both directions).
  EXPECT_DOUBLE_EQ(line(3).mean_pairwise_distance(), (1 + 2 + 1 + 1 + 2 + 1) / 6.0);
}

TEST(Topologies, Fig7TreeMatchesPaper) {
  const Graph g = fig7_tree();
  EXPECT_EQ(g.size(), 13u);
  EXPECT_EQ(g.edge_count(), 12u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.max_degree(), 5u);
  // Paper: broker 5 has degree 5; leaves are 1,3,4,6,9,12,13;
  // degree-2 brokers are 2,7,10; degree-3 are 8 and 11. (0-indexed: -1.)
  EXPECT_EQ(g.degree(4), 5u);
  for (int leaf : {1, 3, 4, 6, 9, 12, 13}) EXPECT_EQ(g.degree(leaf - 1), 1u) << leaf;
  for (int d2 : {2, 7, 10}) EXPECT_EQ(g.degree(d2 - 1), 2u) << d2;
  for (int d3 : {8, 11}) EXPECT_EQ(g.degree(d3 - 1), 3u) << d3;
}

TEST(Topologies, CableWireless24Profile) {
  const Graph g = cable_wireless_24();
  EXPECT_EQ(g.size(), 24u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.max_degree(), 6u);
  const double mean_degree = 2.0 * static_cast<double>(g.edge_count()) / 24.0;
  EXPECT_GT(mean_degree, 2.5);
  EXPECT_LT(mean_degree, 3.5);
  EXPECT_LE(g.diameter(), 8);
  EXPECT_EQ(cable_wireless_24_names().size(), 24u);
}

TEST(Topologies, LineRingStarBalanced) {
  EXPECT_EQ(line(6).edge_count(), 5u);
  EXPECT_EQ(ring(6).edge_count(), 6u);
  EXPECT_EQ(ring(6).max_degree(), 2u);
  EXPECT_EQ(star(7).degree(0), 6u);
  EXPECT_EQ(star(7).max_degree(), 6u);
  const Graph b = balanced_tree(7, 2);
  EXPECT_EQ(b.edge_count(), 6u);
  EXPECT_EQ(b.degree(0), 2u);
  EXPECT_TRUE(b.connected());
  EXPECT_THROW(ring(2), std::invalid_argument);
  EXPECT_THROW(star(1), std::invalid_argument);
}

class RandomTopologyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomTopologyProperty, RandomTreesAreTrees) {
  util::Rng rng(GetParam());
  for (size_t n : {2u, 5u, 24u, 100u}) {
    const Graph g = random_tree(n, rng);
    EXPECT_EQ(g.size(), n);
    EXPECT_EQ(g.edge_count(), n - 1);
    EXPECT_TRUE(g.connected());
  }
}

TEST_P(RandomTopologyProperty, PreferentialAttachmentConnected) {
  util::Rng rng(GetParam() ^ 0x5555);
  const Graph g = preferential_attachment(50, 2, rng);
  EXPECT_EQ(g.size(), 50u);
  EXPECT_TRUE(g.connected());
  EXPECT_GE(g.edge_count(), 49u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologyProperty, ::testing::Values(1, 2, 3, 4));

TEST(SpanningTree, BfsTreeStructure) {
  const Graph g = fig7_tree();
  const SpanningTree t = bfs_tree(g, 0);
  EXPECT_EQ(t.root, 0u);
  EXPECT_EQ(t.parent[0], 0u);
  EXPECT_EQ(t.edge_count(), 12u);
  EXPECT_EQ(t.depth[0], 0);
  EXPECT_EQ(t.parent[1], 0u);  // paper broker 2's parent is broker 1
  // Depths follow the tree: broker 5 (node 4) is two hops from broker 1.
  EXPECT_EQ(t.depth[4], 2);
}

TEST(SpanningTree, SteinerEdges) {
  const Graph g = line(5);
  const SpanningTree t = bfs_tree(g, 0);
  EXPECT_EQ(t.steiner_edges({}), 0u);
  EXPECT_EQ(t.steiner_edges({0}), 0u);       // root itself
  EXPECT_EQ(t.steiner_edges({4}), 4u);       // full path
  EXPECT_EQ(t.steiner_edges({2, 4}), 4u);    // shared path counted once
  EXPECT_EQ(t.steiner_edges({1, 2}), 2u);
  EXPECT_EQ(t.steiner_edges({4, 4}), 4u);    // duplicates are free
}

TEST(SpanningTree, StarSteiner) {
  const Graph g = star(6);
  const SpanningTree t = bfs_tree(g, 0);
  EXPECT_EQ(t.steiner_edges({1, 2, 3}), 3u);
  const SpanningTree leaf = bfs_tree(g, 1);
  // From a leaf, reaching another leaf crosses the hub: 2 edges.
  EXPECT_EQ(leaf.steiner_edges({2}), 2u);
  EXPECT_EQ(leaf.steiner_edges({2, 3}), 3u);  // hub edge shared
}

TEST(SpanningTree, DisconnectedThrows) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(bfs_tree(g, 0), std::invalid_argument);
}

TEST(SpanningTree, DepthsAreShortestPaths) {
  const Graph g = cable_wireless_24();
  for (BrokerId root : {0u, 11u, 23u}) {
    const SpanningTree t = bfs_tree(g, root);
    const auto d = g.distances_from(root);
    for (BrokerId v = 0; v < g.size(); ++v) EXPECT_EQ(t.depth[v], d[v]);
  }
}

}  // namespace
}  // namespace subsum::overlay
