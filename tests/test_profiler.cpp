// Sampling CPU profiler (obs/profiler.h): folded-stack parsing, the
// kProfile RPC round trip, SIGPROF sampling under a CPU storm, ring-
// overflow drop accounting, duty-cycle attribution, and the
// -DSUBSUM_NO_TELEMETRY inert-stub contract. The profiler is process-
// wide (signal handlers are), so every test here arms it, drains it, and
// stops it before returning; ctest runs each TEST in its own process.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/cluster.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/profiler.h"
#include "overlay/topologies.h"
#include "workload/stock_schema.h"

namespace subsum::obs {
namespace {

using namespace std::chrono_literals;

// Burns CPU on the calling thread for roughly `ms` of wall time. The
// volatile sink keeps the loop from folding away; the work itself is
// irrelevant — only that the thread's CPU clock advances.
void burn_cpu_for(std::chrono::milliseconds ms) {
  volatile uint64_t sink = 0;
  const auto until = std::chrono::steady_clock::now() + ms;
  while (std::chrono::steady_clock::now() < until) {
    for (uint64_t i = 0; i < 10000; ++i) sink = sink * 6364136223846793005ULL + i;
  }
}

TEST(Folded, ParseRoundTrip) {
  const std::string text =
      "conn;handle_connection;match 42\n"
      "walk;walk_step;forward_event 7\n"
      "main 1\n";
  const auto stacks = parse_folded(text);
  ASSERT_EQ(stacks.size(), 3u);
  EXPECT_EQ(stacks[0].first, "conn;handle_connection;match");
  EXPECT_EQ(stacks[0].second, 42u);
  EXPECT_EQ(stacks[1].first, "walk;walk_step;forward_event");
  EXPECT_EQ(stacks[1].second, 7u);
  EXPECT_EQ(stacks[2].first, "main");
  EXPECT_EQ(stacks[2].second, 1u);
}

TEST(Folded, MalformedLinesAreSkipped) {
  // No count, non-numeric count, blank line, trailing garbage after the
  // count: only the well-formed lines survive.
  const std::string text =
      "conn;frame\n"
      "writer;drain notanumber\n"
      "\n"
      "accept;loop 3\n";
  const auto stacks = parse_folded(text);
  ASSERT_EQ(stacks.size(), 1u);
  EXPECT_EQ(stacks[0].first, "accept;loop");
  EXPECT_EQ(stacks[0].second, 3u);
}

TEST(Folded, RoleNamesAreStable) {
  // The folded root frames and the thread_role label values; renaming one
  // breaks dashboards, so pin them.
  EXPECT_EQ(to_string(ThreadRole::kMain), "main");
  EXPECT_EQ(to_string(ThreadRole::kAccept), "accept");
  EXPECT_EQ(to_string(ThreadRole::kConn), "conn");
  EXPECT_EQ(to_string(ThreadRole::kWriter), "writer");
  EXPECT_EQ(to_string(ThreadRole::kWalk), "walk");
  EXPECT_EQ(to_string(ThreadRole::kFsync), "fsync");
  EXPECT_EQ(to_string(ThreadRole::kOther), "other");
}

TEST(ProfileProtocol, RequestReplyRoundTrip) {
  net::ProfileRequestMsg req;
  req.action = net::ProfileRequestMsg::kStart;
  req.hz = 251;
  const auto req2 = net::decode_profile_request(net::encode(req));
  EXPECT_EQ(req2.action, net::ProfileRequestMsg::kStart);
  EXPECT_EQ(req2.hz, 251u);

  net::ProfileReplyMsg rep;
  rep.running = 1;
  rep.hz = 97;
  rep.samples = 123456789ULL;
  rep.dropped = 17;
  rep.folded = "conn;a;b 4\nmain;c 2\n";
  const auto rep2 = net::decode_profile_reply(net::encode(rep));
  EXPECT_EQ(rep2.running, 1);
  EXPECT_EQ(rep2.hz, 97u);
  EXPECT_EQ(rep2.samples, 123456789ULL);
  EXPECT_EQ(rep2.dropped, 17u);
  EXPECT_EQ(rep2.folded, rep.folded);
}

#ifndef SUBSUM_NO_TELEMETRY

TEST(Profiler, SamplesUnderCpuStorm) {
  auto& prof = Profiler::instance();
  Profiler::register_thread(ThreadRole::kMain);
  prof.set_ring_capacity(Profiler::kDefaultRingCapacity);

  const uint64_t before = prof.samples_total();
  ASSERT_TRUE(prof.start(997));  // high rate: plenty of samples per second
  EXPECT_TRUE(prof.running());
  EXPECT_EQ(prof.hz(), 997u);
  EXPECT_FALSE(prof.start(97));  // already running: second start refuses

  // A helper thread storms alongside main — two threads taking SIGPROF
  // concurrently, which is exactly the production shape (and what the
  // sanitizer jobs exercise for handler safety).
  std::thread helper([&] {
    Profiler::register_thread(ThreadRole::kConn);
    burn_cpu_for(300ms);
  });
  burn_cpu_for(300ms);
  helper.join();
  prof.stop();
  EXPECT_FALSE(prof.running());

  const uint64_t captured = prof.samples_total() - before;
  // ~0.3s of CPU per thread at 997 Hz ≈ 300 samples each; anything over a
  // handful proves the timers fired against thread CPU clocks.
  EXPECT_GT(captured, 20u);
  EXPECT_GT(prof.samples_for(ThreadRole::kMain), 0u);
  EXPECT_GT(prof.samples_for(ThreadRole::kConn), 0u);

  // Drained stacks parse, carry the role roots, and account every sample
  // that reached the ring.
  const auto stacks = parse_folded(prof.folded());
  ASSERT_FALSE(stacks.empty());
  uint64_t main_samples = 0, conn_samples = 0, total = 0;
  for (const auto& [stack, count] : stacks) {
    total += count;
    if (stack.rfind("main", 0) == 0) main_samples += count;
    if (stack.rfind("conn", 0) == 0) conn_samples += count;
  }
  EXPECT_GT(main_samples, 0u);
  EXPECT_GT(conn_samples, 0u);
  // Attribution criterion: nearly every sample roots at a named role
  // (kOther only appears for threads never registered).
  EXPECT_GE(main_samples + conn_samples, total * 9 / 10);
}

TEST(Profiler, RingOverflowCountsDrops) {
  auto& prof = Profiler::instance();
  Profiler::register_thread(ThreadRole::kMain);
  prof.set_ring_capacity(16);  // tiny: overflow is immediate under load

  const uint64_t dropped_before = prof.dropped_total();
  ASSERT_TRUE(prof.start(997));
  burn_cpu_for(400ms);  // ~400 samples into a 16-slot ring
  prof.stop();

  // The ring can only hand back what it still holds; the drain is where
  // overwritten slots are discovered and charged as drops.
  const auto stacks = parse_folded(prof.folded());
  uint64_t drained = 0;
  for (const auto& [stack, count] : stacks) drained += count;
  EXPECT_LE(drained, 16u);
  EXPECT_GT(prof.dropped_total(), dropped_before);
  // The totals still count every timer fire.
  EXPECT_GT(prof.samples_total(), prof.dropped_total());
  EXPECT_GT(prof.ring_bytes(), 0u);  // memacct's kProfilerRing input is live
}

TEST(Profiler, DutyCycleAttributesCpuToRoles) {
  auto& prof = Profiler::instance();
  Profiler::register_thread(ThreadRole::kMain);
  EXPECT_GE(prof.thread_count(), 1u);

  // Duty cycle attributes a live thread's CPU clock to its BASE role —
  // ScopedRole excursions show up in the sample mix, not here — so the
  // burn lands on kMain even while relabeled for sampling.
  double before[kThreadRoleCount];
  prof.cpu_seconds(before);
  {
    Profiler::ScopedRole walk(ThreadRole::kWalk);
    burn_cpu_for(200ms);
  }
  double after[kThreadRoleCount];
  prof.cpu_seconds(after);
  const auto main_i = static_cast<size_t>(ThreadRole::kMain);
  const auto walk_i = static_cast<size_t>(ThreadRole::kWalk);
  EXPECT_GT(after[main_i], before[main_i] + 0.05);
  EXPECT_EQ(after[walk_i], before[walk_i]);
}

TEST(Profiler, StartRejectsZeroHz) {
  auto& prof = Profiler::instance();
  EXPECT_FALSE(prof.start(0));
  EXPECT_FALSE(prof.running());
}

#else  // SUBSUM_NO_TELEMETRY

TEST(Profiler, NoTelemetryStubIsConstantOff) {
  auto& prof = Profiler::instance();
  Profiler::register_thread(ThreadRole::kMain);
  EXPECT_FALSE(prof.start(97));  // refuses: no timers, no handler, ever
  EXPECT_FALSE(prof.running());
  EXPECT_EQ(prof.hz(), 0u);
  burn_cpu_for(50ms);
  EXPECT_EQ(prof.samples_total(), 0u);
  EXPECT_EQ(prof.samples_for(ThreadRole::kMain), 0u);
  EXPECT_EQ(prof.dropped_total(), 0u);
  EXPECT_TRUE(prof.folded().empty());
  EXPECT_EQ(prof.ring_bytes(), 0u);
  EXPECT_EQ(prof.thread_count(), 0u);
  double cpu[kThreadRoleCount];
  prof.cpu_seconds(cpu);
  for (size_t i = 0; i < kThreadRoleCount; ++i) EXPECT_EQ(cpu[i], 0.0);
}

#endif  // SUBSUM_NO_TELEMETRY

// The kProfile admin RPC against a live broker, raw frames over TCP —
// the same path subsum_stats --profile drives. Works identically in both
// builds up to the point of arming: a NO_TELEMETRY broker answers every
// action with a stopped profiler and empty folded stacks.
TEST(ProfileRpc, StatusStartFetchStopAgainstLiveBroker) {
  const auto schema = workload::stock_schema();
  net::Cluster cluster(schema, overlay::Graph(1));
  net::Socket sock = net::connect_local(cluster.port_of(0));

  const auto roundtrip = [&](net::ProfileRequestMsg::Action action, uint32_t hz) {
    net::ProfileRequestMsg req;
    req.action = action;
    req.hz = hz;
    net::send_frame(sock, net::MsgKind::kProfile, net::encode(req));
    const auto frame = net::recv_frame(sock);
    EXPECT_TRUE(frame.has_value());
    EXPECT_EQ(frame->kind, net::MsgKind::kProfileAck);
    return net::decode_profile_reply(frame->payload);
  };

  const auto status = roundtrip(net::ProfileRequestMsg::kStatus, 0);
  EXPECT_EQ(status.running, 0);

  const auto started = roundtrip(net::ProfileRequestMsg::kStart, 499);
#ifndef SUBSUM_NO_TELEMETRY
  EXPECT_EQ(started.running, 1);
  EXPECT_EQ(started.hz, 499u);

  // Give the broker CPU to sample: a client hammering publishes.
  auto client = cluster.connect(0);
  const auto sub = model::SubscriptionBuilder(schema)
                       .where("symbol", model::Op::kEq, "OTE")
                       .build();
  client->subscribe(sub);
  const auto deadline = std::chrono::steady_clock::now() + 700ms;
  while (std::chrono::steady_clock::now() < deadline) {
    client->publish(model::EventBuilder(schema)
                        .set("symbol", "OTE")
                        .set("price", 8.4)
                        .build());
  }

  const auto fetched = roundtrip(net::ProfileRequestMsg::kFetch, 0);
  EXPECT_GT(fetched.samples, 0u);
  const auto stacks = parse_folded(fetched.folded);
  EXPECT_FALSE(stacks.empty());
  // Broker-side samples root at broker roles (conn/writer/walk/fsync/
  // accept/main) — the attribution the flamegraph runbook depends on.
  uint64_t named = 0, total = 0;
  for (const auto& [stack, count] : stacks) {
    total += count;
    if (stack.rfind("other", 0) != 0) named += count;
  }
  EXPECT_GE(named, total * 9 / 10);
#else
  EXPECT_EQ(started.running, 0);
  const auto fetched = roundtrip(net::ProfileRequestMsg::kFetch, 0);
  EXPECT_EQ(fetched.samples, 0u);
  EXPECT_TRUE(fetched.folded.empty());
#endif

  const auto stopped = roundtrip(net::ProfileRequestMsg::kStop, 0);
  EXPECT_EQ(stopped.running, 0);
  EXPECT_EQ(stopped.hz, 0u);
}

}  // namespace
}  // namespace subsum::obs
