// Chaos suite (ctest label "chaos"): the black-box flight recorder under a
// kill. A stalled consumer plus a publish storm drives broker 2's governor
// through its rung ladder, then the broker is killed; survivors' breakers
// open against the corpse. The acceptance bar: the dead broker's on-disk
// flight dump decodes, and the merged cross-broker timeline names the rung
// changes and breaker flips that preceded death — with zero logging
// configured anywhere.
//
// A second test pins the exemplar workflow: stage-latency histograms carry
// exemplar trace ids that resolve, via the trace RPC, to the publish's
// span chain.
#include <gtest/gtest.h>

#include <algorithm>
#include <charconv>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/cluster.h"
#include "net/fault_injector.h"
#include "obs/flight_recorder.h"
#include "obs/promtext.h"
#include "overlay/topologies.h"
#include "workload/stock_schema.h"

namespace subsum::net {
namespace {

using namespace std::chrono_literals;
using model::EventBuilder;
using model::Op;
using model::Schema;
using model::SubscriptionBuilder;
using overlay::BrokerId;

RpcPolicy tight_policy() {
  RpcPolicy p;
  p.connect_timeout = 200ms;
  p.io_timeout = 1000ms;
  p.backoff = {5ms, 40ms, 2};
  return p;
}

ClientOptions tight_client() {
  ClientOptions o;
  o.connect_timeout = 500ms;
  o.rpc_timeout = 30000ms;
  o.backoff = {5ms, 40ms, 4};
  return o;
}

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const auto* p = reinterpret_cast<const std::byte*>(raw.data());
  return {p, p + raw.size()};
}

TEST(BlackboxChaos, KilledBrokerLeavesTimelineNamingRungChangesAndBreakerFlips) {
#ifdef SUBSUM_NO_TELEMETRY
  GTEST_SKIP() << "flight records compile out under SUBSUM_NO_TELEMETRY";
#endif
  const Schema s = workload::stock_schema();
  const overlay::Graph g = overlay::fig7_tree();
  const auto dir =
      std::filesystem::temp_directory_path() / "subsum_blackbox_chaos";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // A budget equal to one connection's queue cap: a single stalled consumer
  // walks the governor through every rung. Breakers open fast (2 terminal
  // failures) and stay open (long cooldown) so the flip is a clean edge.
  Cluster cluster(s, g, core::GeneralizePolicy::kSafe, tight_policy(),
                  dir.string(), [](BrokerConfig& cfg) {
                    cfg.governor.conn_queue_max_bytes = 128u << 10;
                    cfg.governor.memory_budget_bytes = 128u << 10;
                    cfg.governor.write_stall_timeout = 2000ms;
                    cfg.governor.conn_sndbuf_bytes = 64u << 10;
                    cfg.governor.breaker_open_after = 2;
                    cfg.governor.breaker_cooldown = 60000ms;
                  });

  // Stalled consumer on broker 2: its outbound queue is the storm's sink.
  const BrokerId victim = 2;
  auto inj = std::make_unique<FaultInjector>(cluster.port_of(victim));
  auto stalled = std::make_unique<Client>(inj->port(), s, tight_client());
  stalled->subscribe(
      SubscriptionBuilder(s).where("symbol", Op::kEq, "storm").build());
  ASSERT_TRUE(cluster.run_propagation_period().complete());

  inj->stall_reads(20'000ms);
  ASSERT_TRUE(inj->stalled());
  auto publisher = cluster.connect(1, tight_client());
  const std::string blob(16u << 10, 'b');
  for (int i = 0; i < 40; ++i) {
    try {
      publisher->publish(EventBuilder(s)
                             .set("symbol", "storm")
                             .set("exchange", blob)
                             .set("volume", int64_t{i})
                             .build());
    } catch (const std::exception&) {
      // Admission rejections under deep overload are the governor working
      // as designed; the storm only needs to fill the victim's queue.
    }
  }
  // Give the victim's governor a moment to account the queued bytes.
  std::this_thread::sleep_for(200ms);

  // Death. kill() runs the clean-stop dump path, so the on-disk black box
  // must exist and decode regardless of what the storm did to the queues.
  cluster.kill(victim);
  inj->stall_reads(0ms);
  inj->stop();
  stalled.reset();

  // Survivors keep routing toward the corpse until their breakers open.
  for (int i = 0; i < 8; ++i) {
    try {
      publisher->publish(EventBuilder(s)
                             .set("symbol", "storm")
                             .set("volume", int64_t{100 + i})
                             .build());
    } catch (const std::exception&) {
    }
  }

  // The dead broker's dump, straight off disk.
  const std::string victim_path =
      (dir / ("broker-" + std::to_string(victim)) / "flight.bin").string();
  ASSERT_TRUE(std::filesystem::exists(victim_path));
  const auto victim_dump = obs::decode_dump(read_file(victim_path));
  ASSERT_TRUE(victim_dump.has_value()) << "black box unreadable";
  EXPECT_EQ(victim_dump->broker, victim);
  EXPECT_FALSE(victim_dump->records.empty());

  // Survivors' dumps: broker 0 over the wire (the kDump RPC), the rest
  // in-process. The RPC's own service shows up as a "dump" record.
  std::vector<obs::FrDump> dumps{*victim_dump};
  {
    auto c = cluster.connect(0, tight_client());
    const auto rpc_dump = obs::decode_dump(c->flight_dump());
    ASSERT_TRUE(rpc_dump.has_value()) << "kDump RPC payload unreadable";
    EXPECT_EQ(rpc_dump->broker, 0u);
    bool served = false;
    for (const auto& r : rpc_dump->records) served |= r.kind == obs::FrKind::kDump;
    EXPECT_TRUE(served) << "kDump service not recorded in its own dump";
    dumps.push_back(*rpc_dump);
  }
  for (BrokerId b = 1; b < cluster.size(); ++b) {
    if (!cluster.alive(b)) continue;
    const auto d = obs::decode_dump(cluster.node(b).flight_recorder().serialize());
    ASSERT_TRUE(d.has_value());
    dumps.push_back(*d);
  }

  const std::string timeline = obs::format_timeline(dumps);
  // The incident story an operator needs, by name: the victim's governor
  // climbing its rungs, its clean shutdown, and a survivor's breaker
  // opening against it.
  EXPECT_NE(timeline.find("broker 2 rung-change"), std::string::npos) << timeline;
  EXPECT_NE(timeline.find("broker 2 shutdown"), std::string::npos) << timeline;
  EXPECT_NE(timeline.find("breaker-flip"), std::string::npos) << timeline;
  EXPECT_NE(timeline.find("->open"), std::string::npos) << timeline;

  publisher.reset();
  cluster.stop();
  std::filesystem::remove_all(dir);
}

TEST(BlackboxChaos, StageExemplarsResolveToSpanChains) {
#ifdef SUBSUM_NO_TELEMETRY
  GTEST_SKIP() << "exemplars compile out under SUBSUM_NO_TELEMETRY";
#endif
  const Schema s = workload::stock_schema();
  Cluster cluster(s, overlay::fig7_tree(), core::GeneralizePolicy::kSafe,
                  tight_policy());

  auto sub = cluster.connect(2, tight_client());
  sub->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "XMPL").build());
  ASSERT_TRUE(cluster.run_propagation_period().complete());

  auto pub = cluster.connect(0, tight_client());
  std::vector<uint64_t> traces;
  for (int i = 0; i < 20; ++i) {
    traces.push_back(pub->publish(EventBuilder(s)
                                      .set("symbol", "XMPL")
                                      .set("volume", int64_t{i})
                                      .build()));
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(sub->next_notification(5000ms).has_value()) << "event " << i;
  }

  // The publisher broker's exposition must carry stage histograms whose
  // buckets retain exemplar trace ids.
  const auto samples =
      obs::parse_prometheus_text(cluster.node(0).metrics().prometheus_text());
  uint64_t exemplar_trace = 0;
  std::string exemplar_stage;
  for (const auto& sample : samples) {
    if (sample.name != "subsum_stage_latency_us_bucket") continue;
    if (sample.exemplar_trace.empty()) continue;
    uint64_t t = 0;
    const auto [ptr, ec] = std::from_chars(
        sample.exemplar_trace.data(),
        sample.exemplar_trace.data() + sample.exemplar_trace.size(), t, 16);
    ASSERT_EQ(ec, std::errc{}) << "unparseable exemplar " << sample.exemplar_trace;
    if (const std::string* stage = sample.label("stage"); stage != nullptr) {
      exemplar_stage = *stage;
    }
    exemplar_trace = t;
    if (exemplar_stage == "e2e") break;  // prefer the end-to-end stage
  }
  ASSERT_NE(exemplar_trace, 0u) << "no stage bucket retained an exemplar";

  // The exemplar belongs to a publish this test made, and it resolves over
  // the trace RPC to that publish's span chain — the full p99-spike ->
  // trace-id -> span-chain workflow, in one process.
  EXPECT_NE(std::find(traces.begin(), traces.end(), exemplar_trace), traces.end())
      << "exemplar trace " << std::hex << exemplar_trace
      << " is not one of this test's publishes (stage " << exemplar_stage << ")";
  const auto spans = pub->fetch_trace(exemplar_trace);
  ASSERT_FALSE(spans.empty()) << "exemplar trace did not resolve to spans";
  for (const auto& span : spans) EXPECT_EQ(span.trace, exemplar_trace);
}

}  // namespace
}  // namespace subsum::net
