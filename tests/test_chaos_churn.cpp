// Chaos suite (ctest label "chaos"; CI job chaos-churn runs -R Churn):
// soft-state convergence under churn. Poisson subscribe/unsubscribe load
// with leased subscriptions runs over the fig-7 tree while a broker is
// killed/restarted and a link is blackholed; once the faults clear and two
// quiet periods pass, every receiver's shadow digest must equal the
// sender's held digest link by link (anti-entropy convergence), with the
// delta path engaged, the repair path exercised, expired leases observed,
// and zero QualityProbe divergence.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "net/cluster.h"
#include "net/fault_injector.h"
#include "overlay/topologies.h"
#include "util/rng.h"
#include "workload/churn.h"
#include "workload/stock_schema.h"

namespace subsum::net {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;
using model::EventBuilder;
using model::Schema;
using model::SubId;
using overlay::BrokerId;

RpcPolicy tight_policy() {
  RpcPolicy p;
  p.connect_timeout = 200ms;
  p.io_timeout = 1000ms;
  p.backoff = {5ms, 40ms, 2};
  return p;
}

ClientOptions tight_client() {
  ClientOptions o;
  o.connect_timeout = 500ms;
  o.rpc_timeout = 30000ms;
  o.backoff = {5ms, 40ms, 4};
  return o;
}

std::string scratch_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = ::testing::TempDir() + "subsum_chaos_churn/" +
                          info->test_suite_name() + "." + info->name();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(ChurnChaos, ShadowDigestsConvergeAfterKillRestartAndBlackhole) {
  const Schema s = workload::stock_schema();
  const overlay::Graph g = overlay::fig7_tree();
  const size_t n = g.size();
  // Durable + probe-every-event: kill/restart recovers subscriptions AND
  // lease windows; quality divergence is checked on every published event.
  // delta_max_ratio is raised way past its production default because the
  // test's summaries are tiny — churn-sized deltas would always lose the
  // ratio test and fall back to full images, which heals too, but would
  // mask the kSummarySync repair path this test exists to exercise.
  Cluster cluster(s, g, core::GeneralizePolicy::kSafe, tight_policy(), scratch_dir(),
                  [](BrokerConfig& cfg) {
                    cfg.quality_sample_shift = 0;
                    cfg.delta_max_ratio = 64.0;
                  });

  std::vector<std::unique_ptr<Client>> clients(n);
  for (BrokerId b = 0; b < n; ++b) clients[b] = cluster.connect(b, tight_client());

  workload::ChurnParams cp;
  cp.subscribe_rate = 8.0;
  cp.unsubscribe_rate = 5.0;
  cp.flash_crowd_prob = 0.15;
  workload::ChurnStream stream(s, {}, cp, 4242);
  util::Rng rng(99);

  struct Live {
    BrokerId owner;
    SubId id;
  };
  std::vector<Live> live;

  // The victim must be an announcement RECEIVER for the repair path to be
  // reachable: pairing sends summaries up the degree gradient, so the hub
  // (broker 4, degree 5) takes deltas from brokers 1, 2, 3 and 5. Killing
  // it wipes its in-memory shadows while the senders keep their last-sent
  // bases — after restart the first delta hits an unknown base and must
  // pull a kSummarySync full image.
  const BrokerId victim_broker = 4;
  const BrokerId hole_a = 0;
  const BrokerId hole_b = g.neighbors(0).front();
  std::unique_ptr<FaultInjector> inj;

  for (int period = 0; period < 8; ++period) {
    // Fault windows: the kill lands after period 2's churn, so the victim
    // is down for period 2's propagation AND period 3's churn (restart is
    // period 3's fault step). Same shape for the period-4 blackhole.
    const bool victim_dead = period == 3;   // during the churn/unsub phase
    const bool degraded = period == 2 || period == 4;  // during run_period

    // Churn: leased and permanent subscribes to random live brokers,
    // victim picks over the live list.
    workload::ChurnPeriod plan = stream.next_period();
    for (size_t i = 0; i < plan.subscribes.size(); ++i) {
      BrokerId b = static_cast<BrokerId>(rng.below(n));
      if (victim_dead && b == victim_broker) b = (b + 1) % static_cast<BrokerId>(n);
      // Every third subscription is leased and never renewed: some leases
      // MUST expire during the run (observable via the counter below).
      const uint32_t lease = i % 3 == 0 ? 2 + static_cast<uint32_t>(rng.below(3)) : 0;
      const SubId id = lease > 0 ? clients[b]->subscribe(plan.subscribes[i], lease)
                                 : clients[b]->subscribe(plan.subscribes[i]);
      live.push_back({b, id});
    }
    for (size_t u = 0; u < plan.unsubscribes && !live.empty(); ++u) {
      const size_t at = stream.pick_victim_index(live.size());
      if (victim_dead && live[at].owner == victim_broker) continue;  // owner down
      clients[live[at].owner]->unsubscribe(live[at].id);
      live[at] = live.back();
      live.pop_back();
    }

    // Faults.
    if (period == 2) {
      cluster.kill(victim_broker);
      clients[victim_broker].reset();
    }
    if (period == 3) {
      cluster.restart(victim_broker);
      std::this_thread::sleep_for(50ms);
      clients[victim_broker] = cluster.connect(victim_broker, tight_client());
    }
    if (period == 4) {
      // Blackhole hole_a -> hole_b: announcements and deliveries on that
      // direction vanish until healed.
      inj = std::make_unique<FaultInjector>(cluster.port_of(hole_b));
      inj->set_mode(FaultInjector::Mode::kBlackhole);
      std::vector<uint16_t> ports;
      for (BrokerId b = 0; b < n; ++b) ports.push_back(cluster.port_of(b));
      ports[hole_b] = inj->port();
      cluster.node(hole_a).set_peer_ports(ports);
    }
    if (period == 5) {
      std::vector<uint16_t> ports;
      for (BrokerId b = 0; b < n; ++b) ports.push_back(cluster.port_of(b));
      cluster.node(hole_a).set_peer_ports(ports);
      inj->set_mode(FaultInjector::Mode::kPass);
      inj->sever_connections();
    }

    // Probe traffic for the quality differential (skip fault periods so
    // bounded dead-peer walks don't dominate the run time).
    if (!degraded) {
      const BrokerId origin = static_cast<BrokerId>(rng.below(n));
      if (clients[origin]) {
        clients[origin]->publish(EventBuilder(s)
                                     .set("symbol", "chrn-" + std::to_string(period))
                                     .set("volume", int64_t{period})
                                     .build());
      }
    }

    const auto report = cluster.run_propagation_period();
    if (!degraded) {
      EXPECT_TRUE(report.complete()) << "period " << period;
    }
  }

  // Faults are healed: two quiet periods (no churn) must converge every
  // link — that is the acceptance criterion for the anti-entropy design.
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  ASSERT_TRUE(cluster.run_propagation_period().complete());

  for (BrokerId receiver = 0; receiver < n; ++receiver) {
    for (const auto& [sender, shadow_digest] : cluster.node(receiver).shadow_digests()) {
      EXPECT_EQ(shadow_digest, cluster.node(sender).held_digest())
          << "link " << sender << " -> " << receiver << " diverged";
    }
  }

  // The run exercised the machinery it claims to: deltas engaged, the
  // kill/restart forced at least one kSummarySync repair pull, some leases
  // expired unrenewed — and the sampled quality probe saw ZERO divergence.
  uint64_t delta_sends = 0, syncs = 0, lease_expired = 0, divergence = 0;
  for (BrokerId b = 0; b < n; ++b) {
    const auto& m = cluster.node(b).metrics();
    delta_sends += m.counter_value("subsum_summary_delta_sends_total");
    syncs += m.counter_value("subsum_summary_sync_total");
    lease_expired += m.counter_value("subsum_lease_expired_total");
    divergence += m.counter_value("subsum_quality_engine_divergence_total");
  }
#ifndef SUBSUM_NO_TELEMETRY
  EXPECT_GT(delta_sends, 0u);
  EXPECT_GE(syncs, 1u);
  EXPECT_GT(lease_expired, 0u);
#endif
  EXPECT_EQ(divergence, 0u);
}

}  // namespace
}  // namespace subsum::net
