#include <gtest/gtest.h>

#include "core/matcher.h"
#include "core/serialize.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace subsum::core {
namespace {

using model::Op;
using model::Schema;
using model::SubId;
using model::SubIdCodec;
using model::Subscription;
using model::SubscriptionBuilder;

Schema schema_v() { return workload::stock_schema(); }

WireConfig wire8(const Schema& s) {
  return {SubIdCodec(24, 1u << 20, s.attr_count()), 8};
}

BrokerSummary sample_summary(const Schema& s) {
  BrokerSummary summary(s);
  const Subscription s1 = SubscriptionBuilder(s)
                              .where("price", Op::kGt, 8.30)
                              .where("price", Op::kLt, 8.70)
                              .where("symbol", Op::kEq, "OTE")
                              .build();
  const Subscription s2 = SubscriptionBuilder(s)
                              .where("price", Op::kEq, 8.20)
                              .where("volume", Op::kGt, int64_t{130000})
                              .where("symbol", Op::kPrefix, "OT")
                              .where("exchange", Op::kNe, "NASDAQ")
                              .build();
  const Subscription s3 = SubscriptionBuilder(s)
                              .where("when", Op::kNe, int64_t{0})
                              .where("sector", Op::kContains, "tech")
                              .build();
  summary.add(s1, SubId{3, 7, s1.mask()});
  summary.add(s2, SubId{3, 8, s2.mask()});
  summary.add(s3, SubId{11, 2, s3.mask()});
  return summary;
}

TEST(Serialize, RoundTripWidth8IsExact) {
  const Schema s = schema_v();
  const BrokerSummary summary = sample_summary(s);
  const auto bytes = encode_summary(summary, wire8(s));
  const BrokerSummary back = decode_summary(bytes, s);
  EXPECT_EQ(back, summary);
}

TEST(Serialize, RoundTripWidth4PreservesFloat32Values) {
  const Schema s = schema_v();
  BrokerSummary summary(s);
  // Values chosen exactly representable in float32.
  const Subscription sub = SubscriptionBuilder(s)
                               .where("price", Op::kGt, 8.5)
                               .where("price", Op::kLt, 10.25)
                               .where("volume", Op::kEq, int64_t{131072})
                               .build();
  summary.add(sub, SubId{0, 0, sub.mask()});
  WireConfig cfg{SubIdCodec(24, 1u << 20, s.attr_count()), 4};
  const BrokerSummary back = decode_summary(encode_summary(summary, cfg), s);
  EXPECT_EQ(back, summary);
}

TEST(Serialize, Width4RejectsOversizedIntegrals) {
  const Schema s = schema_v();
  BrokerSummary summary(s);
  const Subscription sub =
      SubscriptionBuilder(s).where("volume", Op::kEq, int64_t{1} << 40).build();
  summary.add(sub, SubId{0, 0, sub.mask()});
  WireConfig cfg{SubIdCodec(24, 1u << 20, s.attr_count()), 4};
  EXPECT_THROW(encode_summary(summary, cfg), std::range_error);
}

TEST(Serialize, Width4IsSmallerThanWidth8) {
  const Schema s = schema_v();
  const BrokerSummary summary = sample_summary(s);
  WireConfig cfg4{SubIdCodec(24, 1000, s.attr_count()), 4};
  EXPECT_LT(wire_size(summary, cfg4), wire_size(summary, wire8(s)));
}

TEST(Serialize, DecodedSummaryMatchesSameEvents) {
  const Schema s = schema_v();
  workload::SubscriptionGenerator gen(s, {}, 5);
  workload::EventGenerator events(s, gen.pools(), {}, 6);
  BrokerSummary summary(s);
  for (uint32_t i = 0; i < 100; ++i) {
    const Subscription sub = gen.next();
    summary.add(sub, SubId{2, i, sub.mask()});
  }
  const BrokerSummary back = decode_summary(encode_summary(summary, wire8(s)), s);
  for (int i = 0; i < 100; ++i) {
    const auto e = events.next();
    EXPECT_EQ(match(back, e), match(summary, e));
  }
}

TEST(Serialize, EmptySummaryRoundTrips) {
  const Schema s = schema_v();
  const BrokerSummary empty(s);
  const auto bytes = encode_summary(empty, wire8(s));
  EXPECT_EQ(decode_summary(bytes, s), empty);
  EXPECT_LT(bytes.size(), 40u);  // header + one varint 0 per attribute
}

TEST(Serialize, MalformedInputsThrow) {
  const Schema s = schema_v();
  const auto good = encode_summary(sample_summary(s), wire8(s));

  // Truncations at every prefix length must throw, never crash or accept.
  for (size_t len = 0; len < good.size(); ++len) {
    std::vector<std::byte> cut(good.begin(), good.begin() + static_cast<long>(len));
    EXPECT_THROW(decode_summary(cut, s), util::DecodeError) << "prefix " << len;
  }

  // Bad version byte.
  auto bad = good;
  bad[0] = std::byte{99};
  EXPECT_THROW(decode_summary(bad, s), util::DecodeError);

  // Trailing garbage.
  bad = good;
  bad.push_back(std::byte{0});
  EXPECT_THROW(decode_summary(bad, s), util::DecodeError);
}

TEST(Serialize, WireSizeEqualsEncodedSize) {
  const Schema s = schema_v();
  const BrokerSummary summary = sample_summary(s);
  EXPECT_EQ(wire_size(summary, wire8(s)), encode_summary(summary, wire8(s)).size());
}

TEST(PaperSize, EquationsOnKnownCounts) {
  // Equation (1): (2*nsr + ne)*sst + La*sid; equation (2): nr*ssv + Ls*sid.
  SummaryStats st;
  st.nsr = 3;
  st.ne = 2;
  st.la_entries = 10;
  st.nr = 4;
  st.ls_entries = 6;
  st.value_bytes = 17;
  const PaperSizeParams p{4, 4, 10};
  const PaperSize sz = paper_size(st, p);
  EXPECT_EQ(sz.aacs_bytes, (2 * 3 + 2) * 4 + 10 * 4);
  EXPECT_EQ(sz.sacs_bytes, 4 * 10 + 6 * 4);
  EXPECT_EQ(sz.total(), sz.aacs_bytes + sz.sacs_bytes);

  const PaperSize measured = paper_size(st, p, /*measured_ssv=*/true);
  EXPECT_EQ(measured.sacs_bytes, 17 + 6 * 4);
}

TEST(PaperSize, TracksWireSizeWithinConstantFactor) {
  // The analytic model and the real encoding should agree within a small
  // factor (the wire adds flags/varints; the model adds ssv estimation).
  const Schema s = schema_v();
  workload::SubGenParams sp;
  sp.subsumption = 0.5;
  workload::SubscriptionGenerator gen(s, sp, 9);
  BrokerSummary summary(s);
  for (uint32_t i = 0; i < 500; ++i) {
    const Subscription sub = gen.next();
    summary.add(sub, SubId{0, i, sub.mask()});
  }
  WireConfig cfg{SubIdCodec(24, 1000, s.attr_count()), 4};
  const double wire = static_cast<double>(wire_size(summary, cfg));
  const double model =
      static_cast<double>(paper_size(summary.stats(), {4, 4, 10}, true).total());
  EXPECT_GT(wire / model, 0.5);
  EXPECT_LT(wire / model, 2.0);
}

}  // namespace
}  // namespace subsum::core
