// Overload governor (net/governor.h): token-bucket determinism, circuit
// breaker transitions, the degradation ladder's strict shed ordering, the
// slow-consumer bounded-queue policy end to end, and the retry-after
// admission-control handshake between broker and client.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "net/cluster.h"
#include "net/fault_injector.h"
#include "net/governor.h"
#include "obs/memacct.h"
#include "obs/metrics.h"
#include "overlay/topologies.h"
#include "util/backoff.h"
#include "workload/stock_schema.h"

namespace subsum::net {
namespace {

using namespace std::chrono_literals;
using model::EventBuilder;
using model::Op;
using model::Schema;
using model::SubId;
using model::SubscriptionBuilder;
using overlay::BrokerId;

RpcPolicy tight_policy() {
  RpcPolicy p;
  p.connect_timeout = 200ms;
  p.io_timeout = 1000ms;
  p.backoff = {5ms, 40ms, 2};
  return p;
}

ClientOptions tight_client() {
  ClientOptions o;
  o.connect_timeout = 500ms;
  o.rpc_timeout = 30000ms;
  o.backoff = {5ms, 40ms, 4};
  return o;
}

// --- TokenBucket -------------------------------------------------------------

TEST(TokenBucket, DeterministicScheduleFromExplicitTimestamps) {
  // 2 tokens/s, burst 1: one immediate admit, then one every 500ms.
  TokenBucket tb(/*rate_per_sec=*/2, /*burst=*/1);
  uint64_t retry_ms = 0;
  EXPECT_TRUE(tb.try_acquire(0));
  EXPECT_FALSE(tb.try_acquire(0, &retry_ms));
  EXPECT_EQ(retry_ms, 500u);  // exact refill time, not a guess
  EXPECT_FALSE(tb.try_acquire(499'999, &retry_ms));
  EXPECT_EQ(retry_ms, 1u);
  EXPECT_TRUE(tb.try_acquire(500'000));
  EXPECT_FALSE(tb.try_acquire(500'000));
  // Burst capacity accrues while idle but never exceeds the burst.
  EXPECT_TRUE(tb.try_acquire(10'000'000));
  EXPECT_FALSE(tb.try_acquire(10'000'000));
}

TEST(TokenBucket, BurstAdmitsBackToBack) {
  TokenBucket tb(/*rate_per_sec=*/1, /*burst=*/3);
  EXPECT_TRUE(tb.try_acquire(0));
  EXPECT_TRUE(tb.try_acquire(0));
  EXPECT_TRUE(tb.try_acquire(0));
  EXPECT_FALSE(tb.try_acquire(0));
}

TEST(TokenBucket, RateZeroIsUnlimited) {
  TokenBucket tb(0, 0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(tb.try_acquire(0));
}

// --- CircuitBreaker ----------------------------------------------------------

TEST(CircuitBreaker, OpensAfterConsecutiveFailuresAndRecloses) {
  CircuitBreaker br(/*open_after=*/2, /*cooldown=*/100ms);
  const uint64_t t0 = 1'000'000;
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);

  br.on_failure(t0);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);  // one strike is noise
  br.on_failure(t0);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);

  EXPECT_FALSE(br.allow(t0 + 50'000));  // inside the cooldown: fail fast
  EXPECT_TRUE(br.allow(t0 + 100'000));  // cooldown over: ONE half-open probe
  EXPECT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(br.allow(t0 + 100'000));  // concurrent caller refused

  br.on_success();
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(br.allow(t0 + 100'000));
}

TEST(CircuitBreaker, FailedProbeReopensWithFreshCooldown) {
  CircuitBreaker br(1, 100ms);
  br.on_failure(0);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(br.allow(100'000));  // half-open probe
  br.on_failure(100'000);          // probe failed
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(br.allow(150'000));  // new cooldown runs from the probe failure
  EXPECT_TRUE(br.allow(200'000));
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak) {
  CircuitBreaker br(3, 100ms);
  br.on_failure(0);
  br.on_failure(0);
  br.on_success();
  br.on_failure(0);
  br.on_failure(0);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);  // streak broken at 2
  br.on_failure(0);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreaker, ZeroDisables) {
  CircuitBreaker br(0, 1ms);
  for (int i = 0; i < 10; ++i) br.on_failure(0);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(br.allow(0));
}

// --- degradation ladder ------------------------------------------------------

TEST(Governor, LadderShedsInStrictPriorityOrder) {
  GovernorConfig cfg;
  cfg.memory_budget_bytes = 1000;
  obs::MetricsRegistry m;
  Governor g(cfg, /*peers=*/0, m);
  using Shed = Governor::Shed;

  const auto shed_set = [&] {
    std::set<Shed> on;
    for (Shed c : {Shed::kProbe, Shed::kTrace, Shed::kRedelivery, Shed::kPublish,
                   Shed::kNotify, Shed::kControl}) {
      if (g.shedding(c)) on.insert(c);
    }
    return on;
  };

  EXPECT_EQ(g.rung(), 0);
  EXPECT_TRUE(shed_set().empty());

  g.add_usage(500);  // 50%
  EXPECT_EQ(g.rung(), 1);
  EXPECT_EQ(shed_set(), (std::set<Shed>{Shed::kProbe}));

  g.add_usage(150);  // 65%
  EXPECT_EQ(g.rung(), 2);
  EXPECT_EQ(shed_set(), (std::set<Shed>{Shed::kProbe, Shed::kTrace}));

  g.add_usage(150);  // 80%
  EXPECT_EQ(g.rung(), 3);
  EXPECT_EQ(shed_set(), (std::set<Shed>{Shed::kProbe, Shed::kTrace, Shed::kRedelivery}));

  g.add_usage(150);  // 95%
  EXPECT_EQ(g.rung(), 4);
  EXPECT_EQ(shed_set(),
            (std::set<Shed>{Shed::kProbe, Shed::kTrace, Shed::kRedelivery, Shed::kPublish}));
  // Rung 4 rejects publishes through admission, flagged as a shed.
  const auto adm = g.admit_publish();
  EXPECT_FALSE(adm.ok);
  EXPECT_TRUE(adm.shed);
  EXPECT_GT(adm.retry_after_ms, 0u);
  EXPECT_EQ(g.shed_count(Governor::Shed::kPublish), 1u);

  // Control traffic is NEVER shed, at any rung. Ever.
  EXPECT_FALSE(g.shedding(Shed::kControl));
  EXPECT_EQ(g.shed_count(Shed::kControl), 0u);

  // Recovery walks back down the ladder; the peak stays on record.
  g.sub_usage(950);
  EXPECT_EQ(g.rung(), 0);
  EXPECT_TRUE(shed_set().empty());
  EXPECT_TRUE(g.admit_publish().ok);
  EXPECT_EQ(g.peak_usage(), 950u);
}

TEST(Governor, ConnectionSlotsAreBounded) {
  GovernorConfig cfg;
  cfg.max_connections = 2;
  obs::MetricsRegistry m;
  Governor g(cfg, 0, m);
  EXPECT_TRUE(g.try_acquire_connection());
  EXPECT_TRUE(g.try_acquire_connection());
  EXPECT_FALSE(g.try_acquire_connection());
  g.release_connection();
  EXPECT_TRUE(g.try_acquire_connection());
  EXPECT_EQ(g.connections(), 2u);
}

// --- backoff jitter + retry-after floor (reconnect-storm satellites) ---------

TEST(BackoffJitter, DeterministicPerSeedAndBoundedByPolicy) {
  const util::BackoffPolicy policy{10ms, 500ms, 16};
  util::Backoff a(policy, 7), b(policy, 7), c(policy, 8);
  bool diverged = false;
  for (int i = 0; i < 15; ++i) {
    const auto da = a.next_delay(), db = b.next_delay(), dc = c.next_delay();
    ASSERT_TRUE(da && db && dc);
    EXPECT_EQ(*da, *db);  // same seed => same schedule
    if (*da != *dc) diverged = true;
    EXPECT_GE(*da, policy.base);  // every delay within [base, cap]
    EXPECT_LE(*da, policy.cap);
    EXPECT_GE(*dc, policy.base);
    EXPECT_LE(*dc, policy.cap);
  }
  EXPECT_TRUE(diverged);  // different seeds must not march in lockstep
}

TEST(BackoffJitter, RetryAfterFloorOverridesCapAndFeedsJitterState) {
  // cap 100ms < floor 250ms: the server's hint wins — it knows when it
  // will accept work again.
  const util::BackoffPolicy policy{10ms, 100ms, 8};
  util::Backoff b(policy, 3);
  const auto d = b.next_delay(250ms);
  ASSERT_TRUE(d);
  EXPECT_EQ(*d, 250ms);
  // Subsequent un-floored delays jitter off the raised value but respect
  // the cap again.
  const auto d2 = b.next_delay();
  ASSERT_TRUE(d2);
  EXPECT_GE(*d2, policy.base);
  EXPECT_LE(*d2, policy.cap);
}

// --- admission control end to end --------------------------------------------

Schema schema_v() { return workload::stock_schema(); }

TEST(Admission, PublishRateLimitRejectsWithRetryAfterAndClientRecovers) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1), core::GeneralizePolicy::kSafe, tight_policy(), {},
                  [](BrokerConfig& cfg) {
                    cfg.governor.publish_rate_per_sec = 4;
                    cfg.governor.publish_burst = 1;
                  });
  auto client = cluster.connect(0, tight_client());
  const auto t0 = std::chrono::steady_clock::now();
  client->publish(EventBuilder(s).set("symbol", "a").build());  // takes the token
  client->publish(EventBuilder(s).set("symbol", "b").build());  // must wait ~250ms
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, 200ms);  // the second publish honored the refill hint
#ifndef SUBSUM_NO_TELEMETRY
  EXPECT_GE(cluster.node(0).metrics().counter_value(
                "subsum_governor_rejected_publishes_total"),
            1u);
#endif
}

TEST(Admission, ExhaustedRetryBudgetSurfacesThrottledWithHint) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1), core::GeneralizePolicy::kSafe, tight_policy(), {},
                  [](BrokerConfig& cfg) {
                    cfg.governor.publish_rate_per_sec = 1;
                    cfg.governor.publish_burst = 1;
                  });
  ClientOptions opts = tight_client();
  opts.backoff.max_attempts = 1;  // no retries: the rejection surfaces raw
  auto client = cluster.connect(0, opts);
  client->publish(EventBuilder(s).set("symbol", "a").build());
  try {
    client->publish(EventBuilder(s).set("symbol", "b").build());
    FAIL() << "second publish should have been throttled";
  } catch (const Throttled& t) {
    EXPECT_EQ(t.code(), ErrorMsg::kThrottled);
    EXPECT_GT(t.retry_after_ms(), 0u);
  }
}

TEST(Admission, SubscriptionCapRejectsBeyondLimitWithoutStateChange) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1), core::GeneralizePolicy::kSafe, tight_policy(), {},
                  [](BrokerConfig& cfg) { cfg.governor.max_subscriptions = 2; });
  ClientOptions opts = tight_client();
  opts.backoff.max_attempts = 1;
  auto client = cluster.connect(0, opts);
  client->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "a").build());
  client->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "b").build());
  try {
    client->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "c").build());
    FAIL() << "third subscribe should have been rejected";
  } catch (const Throttled& t) {
    EXPECT_EQ(t.code(), ErrorMsg::kOverCapacity);
  }
  EXPECT_EQ(cluster.node(0).snapshot().local_subs, 2u);
#ifndef SUBSUM_NO_TELEMETRY
  EXPECT_GE(cluster.node(0).metrics().counter_value(
                "subsum_governor_rejected_subscribes_total"),
            1u);
#endif
  // The connection survives the rejection: unsubscribing still works.
  const auto owned = client->owned_subscriptions();
  ASSERT_EQ(owned.size(), 2u);
  client->unsubscribe(owned[0]);
  EXPECT_EQ(cluster.node(0).snapshot().local_subs, 1u);
}

TEST(Admission, ConnectionCapRefusesExcessConnections) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1), core::GeneralizePolicy::kSafe, tight_policy(), {},
                  [](BrokerConfig& cfg) { cfg.governor.max_connections = 1; });
  ClientOptions opts = tight_client();
  opts.auto_reconnect = false;
  auto first = cluster.connect(0, opts);  // holds the only slot
  first->publish(EventBuilder(s).set("symbol", "a").build());
  auto second = cluster.connect(0, opts);  // TCP accepts, governor refuses
  EXPECT_THROW(
      second->publish(EventBuilder(s).set("symbol", "b").build()),
      NetError);
#ifndef SUBSUM_NO_TELEMETRY
  EXPECT_GE(cluster.node(0).metrics().counter_value(
                "subsum_governor_rejected_connections_total"),
            1u);
#endif
  // The admitted connection is unaffected.
  first->publish(EventBuilder(s).set("symbol", "c").build());
}

// --- slow-consumer policy end to end -----------------------------------------

TEST(SlowConsumer, BoundedQueueDropsOldestThenDisconnectsStalledReader) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::Graph(1), core::GeneralizePolicy::kSafe, tight_policy(), {},
                  [](BrokerConfig& cfg) {
                    cfg.governor.conn_queue_max_bytes = 256u << 10;
                    cfg.governor.write_stall_timeout = 200ms;
                    cfg.governor.memory_budget_bytes = 1u << 20;
                    // Without the sndbuf clamp, kernel autotuning absorbs
                    // the whole storm and the writer never blocks.
                    cfg.governor.conn_sndbuf_bytes = 32u << 10;
                  });

  // The stalled consumer subscribes over a raw socket and then never reads
  // again (a real Client cannot model this: its reader thread always
  // drains the socket, absorbing any backpressure).
  Socket raw = connect_local(cluster.port_of(0));
  // Clamp the receive window: kernel autotuning would otherwise absorb
  // many MB on loopback before the broker's writer ever blocks.
  raw.set_recv_buffer(16u << 10);
  {
    util::BufWriter w;
    put_subscription(
        w, SubscriptionBuilder(s).where("symbol", Op::kEq, "storm").build());
    w.put_varint(0);  // permanent
    send_frame(raw, MsgKind::kSubscribe, w.bytes());
    const auto ack = recv_frame(raw);
    ASSERT_TRUE(ack.has_value());
    ASSERT_EQ(ack->kind, MsgKind::kSubscribeAck);
  }

  // A healthy subscriber to the same events must keep receiving.
  auto healthy = cluster.connect(0, tight_client());
  healthy->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "storm").build());

  auto publisher = cluster.connect(0, tight_client());
  const std::string blob(32u << 10, 'x');  // 32 KiB payload per event
  // Enough volume to punch through kernel socket buffering (a few hundred
  // KiB on loopback) AND the 256 KiB queue cap before the write deadline
  // cuts the stalled consumer off.
  constexpr int kEvents = 80;
  for (int i = 0; i < kEvents; ++i) {
    publisher->publish(EventBuilder(s)
                           .set("symbol", "storm")
                           .set("exchange", blob)
                           .set("volume", int64_t{i})
                           .build());
    std::this_thread::sleep_for(2ms);  // let the healthy writer keep pace
  }

  // The healthy client kept receiving throughout the storm. A transient
  // scheduler hiccup may cost it one queue's worth of frames at most; the
  // stalled consumer must never starve it.
  int got = 0;
  while (got < kEvents) {
    const auto note = healthy->next_notification(got == 0 ? 5000ms : 2000ms);
    if (!note.has_value()) break;
    ++got;
  }
  EXPECT_GE(got, kEvents - 8) << "healthy client starved";

  const Governor& gov = cluster.node(0).governor();
  // ~2.5 MiB hit a 256 KiB queue ceiling: drop-oldest must have engaged.
  EXPECT_GT(gov.shed_count(Governor::Shed::kNotify), 0u);
  // Global accounting never exceeded the budget (the per-connection cap is
  // far below it and redeliveries were idle).
  EXPECT_LE(gov.peak_usage(), 1u << 20);
  // The stalled reader was eventually disconnected by the write deadline
  // (the governor's own counter, so this holds under SUBSUM_NO_TELEMETRY).
  bool disconnected = false;
  for (int i = 0; i < 100 && !disconnected; ++i) {
    disconnected = gov.slow_disconnects() >= 1;
    if (!disconnected) std::this_thread::sleep_for(50ms);
  }
  EXPECT_TRUE(disconnected);
  // Once the writer gave up, the dead connection's queue bytes were
  // returned to the budget.
  for (int i = 0; i < 100 && gov.usage() != 0; ++i) std::this_thread::sleep_for(20ms);
  EXPECT_EQ(gov.usage(), 0u);
}

// --- fault-injector throttle determinism (satellite) -------------------------

TEST(FaultInjectorThrottle, PacesForwardedBytes) {
  // A plain echo server behind a throttled proxy: 64 KiB at 256 KiB/s must
  // take ~250ms to arrive.
  Listener srv(0);
  std::thread echo([&] {
    auto s = srv.accept();
    if (!s) return;
    std::byte buf[4096];
    try {
      for (;;) {
        const size_t n = s->recv_some(buf);
        if (n == 0) break;
        s->send_all(std::span(buf, n));
      }
    } catch (const NetError&) {
    }
  });
  FaultInjector inj(srv.port());
  inj.throttle(256u << 10);
  inj.set_seed(42);

  Socket c = connect_local(inj.port());
  const std::vector<std::byte> chunk(64u << 10, std::byte{0xab});
  const auto t0 = std::chrono::steady_clock::now();
  c.send_all(chunk);
  std::vector<std::byte> back(chunk.size());
  ASSERT_TRUE(c.recv_exact(back));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Nominal 250ms with ±25% seeded jitter: anything under ~120ms means the
  // throttle did not pace at all.
  EXPECT_GE(elapsed, 120ms);
  c.shutdown_both();
  inj.stop();
  srv.close();
  echo.join();
}

TEST(FaultInjectorThrottle, StallWindowPausesForwardingThenRecovers) {
  Listener srv(0);
  std::thread echo([&] {
    auto s = srv.accept();
    if (!s) return;
    std::byte buf[4096];
    try {
      for (;;) {
        const size_t n = s->recv_some(buf);
        if (n == 0) break;
        s->send_all(std::span(buf, n));
      }
    } catch (const NetError&) {
    }
  });
  FaultInjector inj(srv.port());
  Socket c = connect_local(inj.port());

  // Prove the path works, then stall it and show the echo stops flowing
  // for the window and resumes by itself afterwards.
  const std::byte probe[4] = {std::byte{1}, std::byte{2}, std::byte{3}, std::byte{4}};
  c.send_all(probe);
  std::byte back[4];
  ASSERT_TRUE(c.recv_exact(back));

  inj.stall_reads(300ms);
  EXPECT_TRUE(inj.stalled());
  const auto t0 = std::chrono::steady_clock::now();
  c.send_all(probe);
  ASSERT_TRUE(c.recv_exact(back));  // arrives only after the stall lifts
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 250ms);
  EXPECT_FALSE(inj.stalled());
  c.shutdown_both();
  inj.stop();
  srv.close();
  echo.join();
}

// --- memory-accounting-driven degradation (obs/memacct.h feed) ---------------

TEST(Governor, ExternalBytesDriveTheLadderLikeQueueUsage) {
  GovernorConfig cfg;
  cfg.memory_budget_bytes = 1000;
  obs::MetricsRegistry m;
  Governor g(cfg, /*peers=*/0, m);

  // Pushed component accounting climbs the same rungs as streamed queue
  // usage — deterministic injected readings, no broker needed.
  EXPECT_EQ(g.rung(), 0);
  g.set_external_bytes(500);
  EXPECT_EQ(g.rung(), 1);
  g.set_external_bytes(650);
  EXPECT_EQ(g.rung(), 2);
  g.set_external_bytes(800);
  EXPECT_EQ(g.rung(), 3);
  g.set_external_bytes(950);
  EXPECT_EQ(g.rung(), 4);
  EXPECT_FALSE(g.admit_publish().ok);

  // The ladder input is the SUM: queue usage and external accounting
  // combine, and each re-push is absolute (no accumulation).
  g.set_external_bytes(400);
  EXPECT_EQ(g.rung(), 0);
  g.add_usage(100);
  EXPECT_EQ(g.ladder_bytes(), 500u);
  EXPECT_EQ(g.rung(), 1);
  g.sub_usage(100);
  g.set_external_bytes(0);
  EXPECT_EQ(g.rung(), 0);
  EXPECT_TRUE(g.admit_publish().ok);
}

TEST(Governor, BrokerMemoryAccountingFeedsTheRung) {
  // End to end: a broker with a deliberately tiny memory budget grows its
  // held summary + frozen index past it; refresh_memory_accounting() must
  // push the summed component bytes into the governor and move the rung.
  const Schema s = workload::stock_schema();
  Cluster cluster(s, overlay::Graph(1), core::GeneralizePolicy::kSafe, {}, {},
                  [](BrokerConfig& cfg) {
                    cfg.governor.memory_budget_bytes = 4u << 10;  // 4KB
                  });
  auto& node = cluster.node(0);

  node.refresh_memory_accounting();
  const uint64_t baseline = node.mem_account().governor_external_bytes();
  EXPECT_EQ(node.governor().external_bytes(), baseline);

  // A few hundred distinct subscriptions: the held summary's wire image
  // and the frozen index dwarf the 4KB budget.
  auto client = cluster.connect(0);
  for (int i = 0; i < 300; ++i) {
    client->subscribe(SubscriptionBuilder(s)
                          .where("price", Op::kGt, static_cast<double>(i))
                          .where("volume", Op::kLt, int64_t{1000 + i})
                          .build());
  }
  cluster.run_propagation_period();

  node.refresh_memory_accounting();
  const auto& acct = node.mem_account();
  const uint64_t external = acct.governor_external_bytes();
  EXPECT_GT(external, baseline);
  EXPECT_GT(external, 4096u);
  // The governor sees exactly the account's summed growth components...
  EXPECT_EQ(node.governor().external_bytes(), external);
  EXPECT_GE(node.governor().ladder_bytes(), external);
  // ...and the ladder reacts to it: 4KB budget, tens of KB of summary.
  EXPECT_EQ(node.governor().rung(), 4);
  // The attribution itself is live: summary bytes are the big owner here.
  EXPECT_GT(acct.get(obs::MemComponent::kHeldSummary), 0u);
}

}  // namespace
}  // namespace subsum::net
