#include <gtest/gtest.h>

#include <set>

#include "core/matcher.h"
#include "overlay/topologies.h"
#include "siena/covering.h"
#include "siena/poset.h"
#include "siena/siena_network.h"
#include "util/rng.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace subsum::siena {
namespace {

using model::Event;
using model::EventBuilder;
using model::Op;
using model::OwnedSubscription;
using model::Schema;
using model::SubId;
using model::Subscription;
using model::SubscriptionBuilder;
using overlay::BrokerId;
using overlay::Graph;

Schema schema_v() { return workload::stock_schema(); }

TEST(Covering, ArithmeticContainment) {
  const Schema s = schema_v();
  const Subscription wide = SubscriptionBuilder(s).where("price", Op::kGt, 1.0).build();
  const Subscription narrow = SubscriptionBuilder(s)
                                  .where("price", Op::kGt, 2.0)
                                  .where("price", Op::kLt, 5.0)
                                  .build();
  EXPECT_TRUE(covers(wide, narrow, s));
  EXPECT_FALSE(covers(narrow, wide, s));
  EXPECT_TRUE(covers(wide, wide, s));
}

TEST(Covering, ExtraAttributesNarrow) {
  const Schema s = schema_v();
  const Subscription wide = SubscriptionBuilder(s).where("price", Op::kGt, 1.0).build();
  const Subscription narrow = SubscriptionBuilder(s)
                                  .where("price", Op::kGt, 1.0)
                                  .where("symbol", Op::kEq, "OTE")
                                  .build();
  EXPECT_TRUE(covers(wide, narrow, s));
  EXPECT_FALSE(covers(narrow, wide, s));
}

TEST(Covering, StringPatterns) {
  const Schema s = schema_v();
  const Subscription pre = SubscriptionBuilder(s).where("symbol", Op::kPrefix, "OT").build();
  const Subscription eq = SubscriptionBuilder(s).where("symbol", Op::kEq, "OTE").build();
  EXPECT_TRUE(covers(pre, eq, s));
  EXPECT_FALSE(covers(eq, pre, s));
}

TEST(Covering, SoundOnRandomPairs) {
  // covers(a, b) must imply: every event matching b matches a.
  const Schema s = schema_v();
  workload::SubGenParams sp;
  sp.subsumption = 0.9;  // shared values make covering pairs common
  sp.arith_attrs = 1;    // single-attribute subs overlap often
  sp.string_attrs = 1;
  sp.pool_size = 4;
  sp.prefix_fraction = 0.5;
  workload::SubscriptionGenerator gen(s, sp, 5150);
  workload::EventGenerator events(s, gen.pools(), {}, 5151);
  std::vector<Subscription> subs;
  for (int i = 0; i < 60; ++i) subs.push_back(gen.next());
  size_t covering_pairs = 0;
  for (const auto& a : subs) {
    for (const auto& b : subs) {
      if (!covers(a, b, s)) continue;
      ++covering_pairs;
    }
  }
  EXPECT_GT(covering_pairs, subs.size());  // beyond reflexivity
  for (int i = 0; i < 200; ++i) {
    const Event e = events.next();
    for (const auto& a : subs) {
      for (const auto& b : subs) {
        if (covers(a, b, s) && b.matches(e)) {
          EXPECT_TRUE(a.matches(e));
        }
      }
    }
  }
}

TEST(CoverTable, InsertAndPrune) {
  const Schema s = schema_v();
  CoverTable t(s);
  const Subscription narrow = SubscriptionBuilder(s)
                                  .where("price", Op::kGt, 2.0)
                                  .where("price", Op::kLt, 5.0)
                                  .build();
  const Subscription wide = SubscriptionBuilder(s).where("price", Op::kGt, 1.0).build();
  EXPECT_TRUE(t.add({SubId{0, 0, narrow.mask()}, narrow}));
  EXPECT_EQ(t.size(), 1u);
  // The wide subscription covers (and prunes) the narrow one.
  EXPECT_TRUE(t.add({SubId{0, 1, wide.mask()}, wide}));
  EXPECT_EQ(t.size(), 1u);
  // A covered subscription is rejected.
  EXPECT_FALSE(t.add({SubId{0, 2, narrow.mask()}, narrow}));
  EXPECT_EQ(t.size(), 1u);
}

TEST(CoverTable, Match) {
  const Schema s = schema_v();
  CoverTable t(s);
  const Subscription sub = SubscriptionBuilder(s).where("price", Op::kGt, 1.0).build();
  t.add({SubId{0, 0, sub.mask()}, sub});
  EXPECT_EQ(t.match(EventBuilder(s).set("price", 2.0).build()).size(), 1u);
  EXPECT_TRUE(t.match(EventBuilder(s).set("price", 0.5).build()).empty());
}

TEST(SienaNetwork, IdenticalSubscriptionsSuppressed) {
  const Schema s = schema_v();
  const Graph g = overlay::line(4);
  SienaNetwork net(s, g);
  const Subscription sub = SubscriptionBuilder(s).where("symbol", Op::kEq, "X").build();
  const auto first = net.subscribe(0, {SubId{0, 0, sub.mask()}, sub});
  EXPECT_EQ(first.messages, 3u);  // floods the whole line
  // The identical subscription is covered at the first hop: zero messages.
  const auto second = net.subscribe(0, {SubId{0, 1, sub.mask()}, sub});
  EXPECT_EQ(second.messages, 0u);
}

TEST(SienaNetwork, WideAfterNarrowFloodsAgainButNarrowAfterWideDoesNot) {
  const Schema s = schema_v();
  const Graph g = overlay::line(3);
  SienaNetwork net(s, g);
  const Subscription narrow = SubscriptionBuilder(s)
                                  .where("price", Op::kGt, 2.0)
                                  .where("price", Op::kLt, 5.0)
                                  .build();
  const Subscription wide = SubscriptionBuilder(s).where("price", Op::kGt, 1.0).build();
  EXPECT_EQ(net.subscribe(0, {SubId{0, 0, narrow.mask()}, narrow}).messages, 2u);
  EXPECT_EQ(net.subscribe(0, {SubId{0, 1, wide.mask()}, wide}).messages, 2u);
  EXPECT_EQ(net.subscribe(0, {SubId{0, 2, narrow.mask()}, narrow}).messages, 0u);
}

TEST(SienaNetwork, PublishFollowsReversePaths) {
  const Schema s = schema_v();
  const Graph g = overlay::fig7_tree();
  SienaNetwork net(s, g);
  const Subscription sub = SubscriptionBuilder(s).where("symbol", Op::kEq, "evt").build();
  // Brokers at nodes 3, 7, 12 subscribe (the paper's example 3 trio).
  for (BrokerId b : {3u, 7u, 12u}) {
    net.subscribe(b, {SubId{b, 0, sub.mask()}, sub});
  }
  const auto r = net.publish(0, EventBuilder(s).set("symbol", "evt").build());
  ASSERT_EQ(r.delivered.size(), 3u);
  std::set<BrokerId> owners;
  for (const auto& id : r.delivered) owners.insert(id.broker);
  EXPECT_EQ(owners, (std::set<BrokerId>{3, 7, 12}));
  // Reverse-path hops: union of tree paths from node 0 to {3, 7, 12}:
  // 0-1-4-3 (3 edges) + 4-6-7 (2) + 7-9-10-12 (3) = 8.
  EXPECT_EQ(r.forward_hops, 8u);
}

TEST(SienaNetwork, NoMatchNoForwarding) {
  const Schema s = schema_v();
  const Graph g = overlay::fig7_tree();
  SienaNetwork net(s, g);
  const Subscription sub = SubscriptionBuilder(s).where("symbol", Op::kEq, "evt").build();
  net.subscribe(3, {SubId{3, 0, sub.mask()}, sub});
  const auto r = net.publish(0, EventBuilder(s).set("symbol", "miss").build());
  EXPECT_TRUE(r.delivered.empty());
  EXPECT_EQ(r.forward_hops, 0u);
}

TEST(SienaNetwork, DeliveredMatchesOracleOnRandomWorkload) {
  const Schema s = schema_v();
  const Graph g = overlay::cable_wireless_24();
  SienaNetwork net(s, g);
  workload::SubGenParams sp;
  sp.subsumption = 0.5;
  workload::SubscriptionGenerator gen(s, sp, 31337);
  workload::EventGenerator events(s, gen.pools(), {}, 31338);
  util::Rng rng(31339);

  core::NaiveMatcher oracle;
  for (uint32_t i = 0; i < 150; ++i) {
    const auto home = static_cast<BrokerId>(rng.below(g.size()));
    Subscription sub = gen.next();
    const SubId id{home, i, sub.mask()};
    net.subscribe(home, {id, sub});
    oracle.add({id, std::move(sub)});
  }
  size_t total = 0;
  for (int i = 0; i < 100; ++i) {
    Event e = events.next();
    if (i % 2 == 1) {
      // Half the events are derived from a stored subscription, so matches
      // are guaranteed to occur and the equality check is non-vacuous.
      const auto& os = oracle.subs()[rng.below(oracle.size())];
      if (auto derived = workload::matching_event(s, os.sub)) e = *std::move(derived);
    }
    const auto origin = static_cast<BrokerId>(rng.below(g.size()));
    const auto r = net.publish(origin, e);
    EXPECT_EQ(r.delivered, oracle.match(e));
    total += r.delivered.size();
  }
  EXPECT_GT(total, 0u);
}

TEST(SienaNetwork, StorageGrowsWithSubscriptions) {
  const Schema s = schema_v();
  const Graph g = overlay::line(4);
  SienaNetwork net(s, g);
  EXPECT_EQ(net.stored_entries(), 0u);
  const Subscription sub = SubscriptionBuilder(s).where("symbol", Op::kEq, "A").build();
  net.subscribe(0, {SubId{0, 0, sub.mask()}, sub});
  // Stored at the home broker plus one interface table at each of the
  // three downstream brokers.
  EXPECT_EQ(net.stored_entries(), 4u);
  EXPECT_GT(net.stored_bytes(), 0u);
}

TEST(SienaNetwork, SubscribeRejectsWrongHome) {
  const Schema s = schema_v();
  const Graph g = overlay::line(2);
  SienaNetwork net(s, g);
  const Subscription sub = SubscriptionBuilder(s).where("symbol", Op::kEq, "A").build();
  EXPECT_THROW(net.subscribe(0, {SubId{1, 0, sub.mask()}, sub}), std::invalid_argument);
}

TEST(SienaModel, ZeroSubsumptionFloodsEverything) {
  const Graph g = overlay::fig7_tree();
  util::Rng rng(1);
  const auto r = propagate_model(g, 2, {0.0, 50}, rng);
  // Every subscription reaches every broker: sigma * n subs, each crossing
  // n-1 tree edges.
  EXPECT_EQ(r.messages, 2u * 13u * 12u);
  EXPECT_EQ(r.bytes, r.messages * 50);
  EXPECT_EQ(r.stored_total(), 2u * 13u * 13u);
}

TEST(SienaModel, FullSubsumptionStopsAtHome) {
  const Graph g = overlay::fig7_tree();
  util::Rng rng(2);
  // p_B = 1 * deg/max_deg: only the maximum-degree broker (node 4) drops
  // with certainty; others still forward sometimes. Use a star where the
  // hub is the only non-leaf: subscriptions from the hub die immediately.
  const Graph star = overlay::star(8);
  const auto r = propagate_model(star, 5, {1.0, 50}, rng);
  // Hub's own subs: dropped at the hub (p = 1). Leaf subs: forwarded to
  // the hub with p_leaf = 1/7 drop... just sanity-check monotonicity:
  util::Rng rng2(2);
  const auto r0 = propagate_model(star, 5, {0.0, 50}, rng2);
  EXPECT_LT(r.messages, r0.messages);
  EXPECT_GT(r0.messages, 0u);
}

TEST(SienaModel, SubsumptionMonotone) {
  const Graph g = overlay::cable_wireless_24();
  size_t prev = SIZE_MAX;
  for (double p : {0.1, 0.5, 0.9}) {
    util::Rng rng(77);
    const auto r = propagate_model(g, 20, {p, 50}, rng);
    EXPECT_LT(r.messages, prev);
    prev = r.messages;
  }
}

TEST(SienaModel, EventHopsModel) {
  const Graph g = overlay::fig7_tree();
  const auto tree = overlay::bfs_tree(g, 0);
  EXPECT_EQ(event_hops_model(tree, {3, 7, 12}), 8u);
  EXPECT_EQ(event_hops_model(tree, {}), 0u);
  EXPECT_EQ(event_hops_model(tree, {0}), 0u);
}

}  // namespace
}  // namespace subsum::siena
