#include <gtest/gtest.h>

#include "model/sub_id.h"
#include "util/rng.h"

namespace subsum::model {
namespace {

TEST(BitsFor, MatchesPaperExamples) {
  // "in a system with 1000 brokers, c1 would be 10 bits long"
  EXPECT_EQ(bits_for(1000), 10);
  // "if each broker needs to manage 1,000,000 subscriptions, c2 is 20 bits"
  EXPECT_EQ(bits_for(1000000), 20);
  EXPECT_EQ(bits_for(1), 1);
  EXPECT_EQ(bits_for(2), 1);
  EXPECT_EQ(bits_for(3), 2);
  EXPECT_EQ(bits_for(4), 2);
  EXPECT_EQ(bits_for(5), 3);
  EXPECT_EQ(bits_for(256), 8);
  EXPECT_EQ(bits_for(257), 9);
}

TEST(SubIdCodec, PaperFigure6Example) {
  // 4 brokers, 8 outstanding subscriptions, 7 attributes: subscription 1 of
  // broker 2 constraining attributes 3, 5 and 6 (bits counted from the
  // right, 1-based in the figure => zero-based ids 2, 4, 5).
  const SubIdCodec codec(4, 8, 7);
  EXPECT_EQ(codec.c1_bits(), 2);
  EXPECT_EQ(codec.c2_bits(), 3);
  EXPECT_EQ(codec.c3_bits(), 7);
  EXPECT_EQ(codec.encoded_size(), 2u);  // 12 bits -> 2 bytes

  SubId id;
  id.broker = 2;
  id.local = 1;
  id.attrs = attr_bit(2) | attr_bit(4) | attr_bit(5);
  const auto bits = codec.pack(id);
  // Layout: c1 | c2 | c3 = 10 | 001 | 0110100 (binary, figure 6).
  EXPECT_EQ(static_cast<uint64_t>(bits), 0b10'001'0110100u);
  const SubId back = codec.unpack(bits);
  EXPECT_EQ(back, id);
}

TEST(SubIdCodec, EncodedSizeForPaperTable2) {
  // 24 brokers (5 bits), 2^20 subs (20 bits), 10 attributes => 35 bits
  // => 5 bytes; with 1000 subs (10 bits) => 25 bits => 4 bytes, the paper's
  // sid = 4.
  EXPECT_EQ(SubIdCodec(24, 1u << 20, 10).encoded_size(), 5u);
  EXPECT_EQ(SubIdCodec(24, 1000, 10).encoded_size(), 4u);
}

TEST(SubIdCodec, RejectsOutOfRangeFields) {
  const SubIdCodec codec(4, 8, 7);
  EXPECT_THROW((void)codec.pack({4, 0, 0}), std::invalid_argument);   // broker needs 3 bits
  EXPECT_THROW((void)codec.pack({0, 8, 0}), std::invalid_argument);   // local needs 4 bits
  EXPECT_THROW((void)codec.pack({0, 0, 1u << 7}), std::invalid_argument);  // mask bit 8
}

TEST(SubIdCodec, RejectsBadParameters) {
  EXPECT_THROW(SubIdCodec(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(SubIdCodec(1, 0, 1), std::invalid_argument);
  EXPECT_THROW(SubIdCodec(1, 1, 0), std::invalid_argument);
  EXPECT_THROW(SubIdCodec(1, 1, 65), std::invalid_argument);
}

TEST(SubId, OrderingAndAttrCount) {
  const SubId a{1, 2, 0b101};
  const SubId b{1, 3, 0b1};
  EXPECT_LT(a, b);
  EXPECT_EQ(a.attr_count(), 2);
  EXPECT_EQ(SubId{}.attr_count(), 0);
}

TEST(SubId, HashDistinguishes) {
  std::hash<SubId> h;
  EXPECT_NE(h({1, 2, 3}), h({2, 1, 3}));
  EXPECT_EQ(h({1, 2, 3}), h({1, 2, 3}));
}

class SubIdCodecRoundTrip : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t, size_t>> {};

TEST_P(SubIdCodecRoundTrip, RandomIdsSurvive) {
  const auto [brokers, max_subs, attrs] = GetParam();
  const SubIdCodec codec(brokers, max_subs, attrs);
  util::Rng rng(brokers * 1315423911u + attrs);
  for (int i = 0; i < 500; ++i) {
    SubId id;
    id.broker = static_cast<BrokerId>(rng.below(brokers));
    id.local = static_cast<uint32_t>(rng.below(max_subs));
    id.attrs = attrs >= 64 ? rng.next() : rng.below(uint64_t{1} << attrs);
    EXPECT_EQ(codec.unpack(codec.pack(id)), id);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, SubIdCodecRoundTrip,
    ::testing::Values(std::tuple<uint32_t, uint64_t, size_t>{1, 1, 1},
                      std::tuple<uint32_t, uint64_t, size_t>{24, 1000, 10},
                      std::tuple<uint32_t, uint64_t, size_t>{1000, 1u << 20, 10},
                      std::tuple<uint32_t, uint64_t, size_t>{13, 4096, 64},
                      std::tuple<uint32_t, uint64_t, size_t>{4, 8, 7}));

}  // namespace
}  // namespace subsum::model
