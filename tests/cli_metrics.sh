#!/usr/bin/env bash
# Metrics/trace smoke test: a 3-broker line deployment, scraped twice with
# subsum_stats. Asserts the Prometheus exposition is well-formed (TYPE
# lines, match-latency buckets), counters are monotonic across scrapes,
# and one publish produces a complete publish->deliver trace with spans
# from at least two brokers. Then the observability layer end to end:
# stage-latency histograms whose bucket exemplars resolve to span chains,
# structured JSONL logs, flight-recorder dumps over the kDump RPC
# (subsum_blackbox) and on clean shutdown, and subsum_top --once as a
# scriptable health probe (exit nonzero once a broker is down).
# Usage: cli_metrics.sh <build_dir>
set -u

# Every assertion below reads recorded telemetry (counters, exemplars, log
# lines, flight timelines); a -DSUBSUM_NO_TELEMETRY build records none of it.
# CMake sets the env var for that configuration and SKIP_RETURN_CODE=77.
if [[ -n "${SUBSUM_NO_TELEMETRY:-}" ]]; then
  echo "SKIP: telemetry compiled out (SUBSUM_NO_TELEMETRY)"
  exit 77
fi

BUILD=${1:?usage: cli_metrics.sh <build_dir>}
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$WORK"' EXIT

cat > "$WORK/deploy.conf" <<EOF
attribute symbol string
attribute price float
attribute volume int
topology line 3
EOF

started=0
for attempt in 1 2 3 4 5; do
  BASE=$(( 10000 + (RANDOM % 20000) ))
  PORTS="$BASE,$((BASE+1)),$((BASE+2))"

  for i in 0 1 2; do
    EXTRA=""
    [ "$i" = 0 ] && EXTRA="--propagate-every 1"
    "$BUILD/tools/subsum_broker" --config "$WORK/deploy.conf" --id "$i" \
        --port $((BASE+i)) --peers "$PORTS" $EXTRA \
        --flight-dump "$WORK/flight$i.bin" \
        --log-level info --log-file "$WORK/broker$i.jsonl" \
        > "$WORK/broker$i.log" 2>&1 &
    BPID[$i]=$!
  done

  started=1
  for i in 0 1 2; do
    ok=0
    for _ in $(seq 1 50); do
      if grep -q "listening" "$WORK/broker$i.log" 2>/dev/null; then ok=1; break; fi
      if grep -q "broker failed" "$WORK/broker$i.log" 2>/dev/null; then break; fi
      sleep 0.1
    done
    [ "$ok" = 1 ] || { started=0; break; }
  done
  [ "$started" = 1 ] && break
  echo "attempt $attempt: port clash at base $BASE, retrying"
  kill $(jobs -p) 2>/dev/null
  wait 2>/dev/null
done
[ "$started" = 1 ] || { echo "brokers failed to start"; cat "$WORK"/broker*.log; exit 1; }

# A subscriber on broker 2 so the publish at broker 0 must cross brokers.
timeout 60 "$BUILD/tools/subsum_sub" --config "$WORK/deploy.conf" --port $((BASE+2)) \
    --count 1 'symbol = OTE' > "$WORK/sub.log" 2>&1 &
SUB=$!
sleep 2.5  # one propagation period so broker 0 learns the summary

timeout 30 "$BUILD/tools/subsum_pub" --config "$WORK/deploy.conf" --port $BASE \
    'symbol = OTE, price = 8.40' > "$WORK/pub.log" 2>&1 \
    || { echo "publish failed"; cat "$WORK/pub.log"; exit 1; }

for _ in $(seq 1 40); do
  kill -0 "$SUB" 2>/dev/null || break
  sleep 0.25
done
kill -0 "$SUB" 2>/dev/null && { echo "notification never arrived"; cat "$WORK/sub.log"; exit 1; }

# --- scrape 1: exposition well-formed, match-latency histogram populated ---
timeout 30 "$BUILD/tools/subsum_stats" --ports "$PORTS" > "$WORK/scrape1.txt" 2>&1 \
    || { echo "scrape 1 failed"; cat "$WORK/scrape1.txt"; exit 1; }

grep -q '^# TYPE subsum_publishes_total counter' "$WORK/scrape1.txt" \
    || { echo "missing TYPE line for publishes counter"; cat "$WORK/scrape1.txt"; exit 1; }
grep -q '^# TYPE subsum_match_latency_us histogram' "$WORK/scrape1.txt" \
    || { echo "missing TYPE line for match histogram"; cat "$WORK/scrape1.txt"; exit 1; }
grep -q '^subsum_match_latency_us_bucket{le="+Inf"}' "$WORK/scrape1.txt" \
    || { echo "missing +Inf bucket"; cat "$WORK/scrape1.txt"; exit 1; }
# The walk runs the matcher on at least the origin and the forwarding hop
# (the last broker may receive a direct kDeliver instead of the event).
NONZERO=$(grep -c '^subsum_match_latency_us_count [1-9]' "$WORK/scrape1.txt")
[ "$NONZERO" -ge 2 ] || { echo "expected >=2 brokers with matches, got $NONZERO"; cat "$WORK/scrape1.txt"; exit 1; }
PUB1=$(awk '/^subsum_publishes_total/ {s += $2} END {print s}' "$WORK/scrape1.txt")
[ "$PUB1" -ge 1 ] || { echo "publishes counter not incremented"; exit 1; }

# --- the publish->deliver trace crosses brokers -----------------------------
TRACE=$(grep -o 'trace=[0-9a-f]*' "$WORK/pub.log" | cut -d= -f2)
[ -n "$TRACE" ] || { echo "publish printed no trace id"; cat "$WORK/pub.log"; exit 1; }
: > "$WORK/trace.jsonl"
for i in 0 1 2; do
  timeout 30 "$BUILD/tools/subsum_stats" --port $((BASE+i)) --trace "$TRACE" \
      >> "$WORK/trace.jsonl" 2>&1 || { echo "trace fetch failed on broker $i"; exit 1; }
done
grep -q "\"trace\":\"$TRACE\".*\"phase\":\"recv\"" "$WORK/trace.jsonl" \
    || { echo "no recv span"; cat "$WORK/trace.jsonl"; exit 1; }
grep -q "\"trace\":\"$TRACE\".*\"phase\":\"deliver\"" "$WORK/trace.jsonl" \
    || { echo "no deliver span"; cat "$WORK/trace.jsonl"; exit 1; }
BROKERS_IN_TRACE=$(grep "\"trace\":\"$TRACE\"" "$WORK/trace.jsonl" \
    | grep -o '"broker":[0-9]*' | sort -u | wc -l)
[ "$BROKERS_IN_TRACE" -ge 2 ] \
    || { echo "trace covers only $BROKERS_IN_TRACE broker(s)"; cat "$WORK/trace.jsonl"; exit 1; }

# --- identity + quality series on every broker ------------------------------
grep -q '^subsum_build_info{version="' "$WORK/scrape1.txt" \
    || { echo "missing build_info gauge"; cat "$WORK/scrape1.txt"; exit 1; }
grep -q '^subsum_uptime_seconds' "$WORK/scrape1.txt" \
    || { echo "missing uptime gauge"; exit 1; }
grep -q '^subsum_summary_precision' "$WORK/scrape1.txt" \
    || { echo "missing summary precision gauge"; exit 1; }
grep -q '^subsum_walk_visits_total' "$WORK/scrape1.txt" \
    || { echo "missing walk visit counter"; exit 1; }
grep -q '^subsum_summary_model_drift_ratio' "$WORK/scrape1.txt" \
    || { echo "missing model drift gauge"; exit 1; }

# --- subsum_top: one fleet tick over the same cluster ------------------------
timeout 30 "$BUILD/tools/subsum_top" --ports "$PORTS" --iterations 1 \
    --jsonl "$WORK/top.jsonl" > "$WORK/top.txt" 2>&1 \
    || { echo "subsum_top failed"; cat "$WORK/top.txt"; exit 1; }
grep -q '^fleet: 3/3 up' "$WORK/top.txt" \
    || { echo "subsum_top did not see all brokers"; cat "$WORK/top.txt"; exit 1; }
grep -q 'precision=' "$WORK/top.txt" \
    || { echo "subsum_top printed no fleet precision"; cat "$WORK/top.txt"; exit 1; }
grep -q 'top by fp_ids' "$WORK/top.txt" \
    || { echo "subsum_top printed no hot-broker list"; cat "$WORK/top.txt"; exit 1; }
grep -q '"model_drift_ratio":' "$WORK/top.jsonl" \
    || { echo "subsum_top JSONL missing drift field"; cat "$WORK/top.jsonl"; exit 1; }
grep -q '"fp_ids":' "$WORK/top.jsonl" \
    || { echo "subsum_top JSONL missing fp field"; cat "$WORK/top.jsonl"; exit 1; }

# --- scrape 2: counters monotonic after more traffic ------------------------
timeout 30 "$BUILD/tools/subsum_pub" --config "$WORK/deploy.conf" --port $BASE \
    'symbol = AAPL, price = 1.00' > /dev/null 2>&1 || exit 1
timeout 30 "$BUILD/tools/subsum_stats" --ports "$PORTS" > "$WORK/scrape2.txt" 2>&1 \
    || { echo "scrape 2 failed"; exit 1; }
PUB2=$(awk '/^subsum_publishes_total/ {s += $2} END {print s}' "$WORK/scrape2.txt")
[ "$PUB2" -gt "$PUB1" ] || { echo "publishes not monotonic: $PUB1 -> $PUB2"; exit 1; }
CNT1=$(awk '/^subsum_match_latency_us_count/ {s += $2} END {print s}' "$WORK/scrape1.txt")
CNT2=$(awk '/^subsum_match_latency_us_count/ {s += $2} END {print s}' "$WORK/scrape2.txt")
[ "$CNT2" -gt "$CNT1" ] || { echo "match count not monotonic: $CNT1 -> $CNT2"; exit 1; }

# --- stage-decomposed latency + exemplars -----------------------------------
grep -q '^# TYPE subsum_stage_latency_us histogram' "$WORK/scrape2.txt" \
    || { echo "missing stage latency histogram"; exit 1; }
for stage in ingress_decode match e2e; do
  grep -q "^subsum_stage_latency_us_bucket{stage=\"$stage\"" "$WORK/scrape2.txt" \
      || { echo "missing stage=$stage histogram"; cat "$WORK/scrape2.txt"; exit 1; }
done
# A populated bucket carries an exemplar trace id...
EXEMPLAR=$(grep '^subsum_stage_latency_us_bucket' "$WORK/scrape2.txt" \
    | grep -o 'trace_id="[0-9a-f]*"' | head -1 | cut -d'"' -f2)
[ -n "$EXEMPLAR" ] || { echo "no stage bucket carries an exemplar"; cat "$WORK/scrape2.txt"; exit 1; }
# ...and that id resolves to a span chain on some broker (the exemplar
# workflow: p99 spike -> trace id -> spans).
: > "$WORK/exemplar.jsonl"
for i in 0 1 2; do
  timeout 30 "$BUILD/tools/subsum_stats" --port $((BASE+i)) --trace "$EXEMPLAR" \
      >> "$WORK/exemplar.jsonl" 2>&1 || { echo "exemplar trace fetch failed"; exit 1; }
done
grep -q "\"trace\":\"$EXEMPLAR\"" "$WORK/exemplar.jsonl" \
    || { echo "exemplar trace $EXEMPLAR resolved to no spans"; cat "$WORK/exemplar.jsonl"; exit 1; }
# Trace-ring drop accounting is exported.
grep -q '^subsum_trace_spans_dropped_total' "$WORK/scrape2.txt" \
    || { echo "missing trace-spans-dropped gauge"; exit 1; }

# --- structured logs: JSONL with fixed leading fields ------------------------
grep -q '"level":"info".*"broker":0.*"msg":"started"' "$WORK/broker0.jsonl" \
    || { echo "broker 0 logged no structured start line"; cat "$WORK/broker0.jsonl"; exit 1; }

# --- flight recorder over the wire: subsum_blackbox pulls via kDump ----------
mkdir -p "$WORK/fr"
timeout 30 "$BUILD/tools/subsum_blackbox" --ports "$PORTS" --out-dir "$WORK/fr" \
    > "$WORK/blackbox1.txt" 2>&1 \
    || { echo "subsum_blackbox --ports failed"; cat "$WORK/blackbox1.txt"; exit 1; }
grep -q '^# broker 0:' "$WORK/blackbox1.txt" \
    || { echo "blackbox printed no per-broker header"; cat "$WORK/blackbox1.txt"; exit 1; }
grep -q 'broker 0 start' "$WORK/blackbox1.txt" \
    || { echo "timeline missing broker 0 start record"; cat "$WORK/blackbox1.txt"; exit 1; }
grep -q 'period-begin' "$WORK/blackbox1.txt" \
    || { echo "timeline missing propagation periods"; cat "$WORK/blackbox1.txt"; exit 1; }
grep -q 'dump' "$WORK/blackbox1.txt" \
    || { echo "kDump service not recorded"; cat "$WORK/blackbox1.txt"; exit 1; }
for i in 0 1 2; do
  [ -s "$WORK/fr/broker-$i.flight.bin" ] \
      || { echo "blackbox --out-dir saved no dump for broker $i"; exit 1; }
done

# --- subsum_top --once: healthy fleet probe exits 0 --------------------------
timeout 30 "$BUILD/tools/subsum_top" --ports "$PORTS" --once > "$WORK/once1.txt" 2>&1
RC=$?
[ "$RC" = 0 ] || { echo "subsum_top --once reported unhealthy fleet (rc=$RC)"; cat "$WORK/once1.txt"; exit 1; }
grep -c '^broker port=.* up' "$WORK/once1.txt" | grep -q '^3$' \
    || { echo "--once did not list 3 brokers up"; cat "$WORK/once1.txt"; exit 1; }

# --- clean shutdown writes the black box; --once now exits nonzero -----------
kill -TERM "${BPID[2]}" 2>/dev/null
for _ in $(seq 1 50); do kill -0 "${BPID[2]}" 2>/dev/null || break; sleep 0.1; done
kill -0 "${BPID[2]}" 2>/dev/null && { echo "broker 2 ignored SIGTERM"; exit 1; }
[ -s "$WORK/flight2.bin" ] || { echo "broker 2 left no flight dump"; exit 1; }
timeout 30 "$BUILD/tools/subsum_blackbox" "$WORK/flight2.bin" > "$WORK/blackbox2.txt" 2>&1 \
    || { echo "on-disk dump unreadable"; cat "$WORK/blackbox2.txt"; exit 1; }
grep -q 'broker 2 shutdown' "$WORK/blackbox2.txt" \
    || { echo "dump timeline missing shutdown record"; cat "$WORK/blackbox2.txt"; exit 1; }
grep -q '"msg":"stopped"' "$WORK/broker2.jsonl" \
    || { echo "broker 2 logged no stop line"; cat "$WORK/broker2.jsonl"; exit 1; }

timeout 30 "$BUILD/tools/subsum_top" --ports "$PORTS" --once > "$WORK/once2.txt" 2>&1
RC=$?
[ "$RC" != 0 ] || { echo "--once exited 0 with a broker down"; cat "$WORK/once2.txt"; exit 1; }
grep -q '^broker port=.* down' "$WORK/once2.txt" \
    || { echo "--once did not flag the dead broker"; cat "$WORK/once2.txt"; exit 1; }

echo "cli metrics test passed"
exit 0
