#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "core/matcher.h"
#include "core/serialize.h"
#include "model/subscription.h"
#include "overlay/topologies.h"
#include "routing/propagation.h"
#include "util/rng.h"
#include "workload/stock_schema.h"

namespace subsum::routing {
namespace {

using model::Op;
using model::Schema;
using model::SubId;
using model::SubscriptionBuilder;
using overlay::BrokerId;
using overlay::Graph;

Schema schema_v() { return workload::stock_schema(); }

core::WireConfig wire_for(const Schema& s, const Graph& g) {
  return {model::SubIdCodec(static_cast<uint32_t>(g.size()), 1u << 20, s.attr_count()), 8};
}

/// One distinctive subscription per broker: symbol == "b<k>".
std::vector<core::BrokerSummary> per_broker_summaries(const Schema& s, const Graph& g) {
  std::vector<core::BrokerSummary> own;
  for (BrokerId b = 0; b < g.size(); ++b) {
    core::BrokerSummary summary(s);
    const auto sub =
        SubscriptionBuilder(s).where("symbol", Op::kEq, "b" + std::to_string(b)).build();
    summary.add(sub, SubId{b, 0, sub.mask()});
    own.push_back(std::move(summary));
  }
  return own;
}

TEST(Propagation, Fig7Walkthrough) {
  const Schema s = schema_v();
  const Graph g = overlay::fig7_tree();
  const auto result = propagate(g, per_broker_summaries(s, g), wire_for(s, g));

  // Iteration 1: the seven leaves send; iteration 2: nodes 1, 6, 9 send;
  // iterations 3-5: brokers 7(8), 10(11) and 4(5) are sinks. 10 hops total.
  EXPECT_EQ(result.hops(), 10u);

  auto sends_in = [&](int it) {
    std::set<std::pair<BrokerId, BrokerId>> out;
    for (const auto& snd : result.sends) {
      if (snd.iteration == it) out.insert({snd.from, snd.to});
    }
    return out;
  };
  // Iteration 1 (paper: brokers 1,3,4,6,9,12,13 send to their neighbors).
  EXPECT_EQ(sends_in(1),
            (std::set<std::pair<BrokerId, BrokerId>>{
                {0, 1}, {2, 4}, {3, 4}, {5, 4}, {8, 7}, {11, 10}, {12, 10}}));
  // Iteration 2: node 1 (broker 2) -> 4 (broker 5); node 6 (broker 7) picks
  // the smaller-degree choice node 7 (broker 8); node 9 (broker 10) -> 7.
  EXPECT_EQ(sends_in(2),
            (std::set<std::pair<BrokerId, BrokerId>>{{1, 4}, {6, 7}, {9, 7}}));
  EXPECT_TRUE(sends_in(3).empty());
  EXPECT_TRUE(sends_in(4).empty());
  EXPECT_TRUE(sends_in(5).empty());

  // Paper: "broker 5 will have knowledge of the summaries of brokers 1-6".
  EXPECT_EQ(result.merged_brokers[4], (std::vector<BrokerId>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(result.merged_brokers[7], (std::vector<BrokerId>{6, 7, 8, 9}));
  EXPECT_EQ(result.merged_brokers[10], (std::vector<BrokerId>{10, 11, 12}));
  // A broker that only sent keeps just its own (plus earlier receipts).
  EXPECT_EQ(result.merged_brokers[0], std::vector<BrokerId>{0});
  EXPECT_EQ(result.merged_brokers[1], (std::vector<BrokerId>{0, 1}));
}

TEST(Propagation, HeldSummariesContainMergedBrokersSubscriptions) {
  const Schema s = schema_v();
  const Graph g = overlay::fig7_tree();
  const auto result = propagate(g, per_broker_summaries(s, g), wire_for(s, g));
  // held[4] must match the subscriptions of every broker in its merged set.
  for (BrokerId b : result.merged_brokers[4]) {
    const auto e =
        model::EventBuilder(s).set("symbol", "b" + std::to_string(b)).build();
    const auto m = core::match(result.held[4], e);
    ASSERT_EQ(m.size(), 1u);
    EXPECT_EQ(m[0].broker, b);
  }
  // ...and not those outside it.
  const auto e9 = model::EventBuilder(s).set("symbol", "b9").build();
  EXPECT_TRUE(core::match(result.held[4], e9).empty());
}

TEST(Propagation, RequiresOneSummaryPerBroker) {
  const Schema s = schema_v();
  const Graph g = overlay::fig7_tree();
  std::vector<core::BrokerSummary> too_few(3, core::BrokerSummary(s));
  EXPECT_THROW(propagate(g, too_few, wire_for(s, g)), std::invalid_argument);
}

TEST(Propagation, BytesAccountedPerSend) {
  const Schema s = schema_v();
  const Graph g = overlay::fig7_tree();
  const auto result = propagate(g, per_broker_summaries(s, g), wire_for(s, g));
  for (const auto& snd : result.sends) EXPECT_GT(snd.bytes, 0u);
  EXPECT_EQ(result.total_bytes(),
            std::accumulate(result.sends.begin(), result.sends.end(), size_t{0},
                            [](size_t acc, const PropagationSend& snd) {
                              return acc + snd.bytes;
                            }));
}

// Invariants on arbitrary connected topologies.
class PropagationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropagationProperty, CoverageAndBounds) {
  const Schema s = schema_v();
  util::Rng rng(GetParam());
  // (graph, has_sink): when some maximum-degree broker has no eligible
  // neighbor it sends nothing, giving the paper's "< #brokers" hop claim;
  // in locally-regular graphs (ring, line middles, some random trees)
  // same-degree neighbors exchange pairwise and hops can reach exactly n.
  std::vector<std::pair<Graph, bool>> graphs;
  graphs.emplace_back(overlay::cable_wireless_24(), true);
  graphs.emplace_back(overlay::random_tree(17, rng), false);
  graphs.emplace_back(overlay::ring(8), false);
  graphs.emplace_back(overlay::star(9), true);
  graphs.emplace_back(overlay::line(6), false);

  for (const auto& [g, has_sink] : graphs) {
    const auto result = propagate(g, per_broker_summaries(s, g), wire_for(s, g));

    // Each broker sends at most one summary message (§5.2.1).
    if (has_sink) {
      EXPECT_LT(result.hops(), g.size());
    } else {
      EXPECT_LE(result.hops(), g.size());
    }

    // Every broker appears in its own merged set.
    for (BrokerId b = 0; b < g.size(); ++b) {
      const auto& mb = result.merged_brokers[b];
      EXPECT_TRUE(std::binary_search(mb.begin(), mb.end(), b));
      EXPECT_TRUE(std::is_sorted(mb.begin(), mb.end()));
    }

    // Global coverage: the union over all brokers of Merged_Brokers is
    // everything (so the BROCLI walk can terminate having seen all).
    std::set<BrokerId> covered;
    for (const auto& mb : result.merged_brokers) covered.insert(mb.begin(), mb.end());
    EXPECT_EQ(covered.size(), g.size());

    // Knowledge soundness: if broker x is in merged_brokers[b], then
    // held[b] matches x's subscription.
    for (BrokerId b = 0; b < g.size(); ++b) {
      for (BrokerId x : result.merged_brokers[b]) {
        const auto e =
            model::EventBuilder(s).set("symbol", "b" + std::to_string(x)).build();
        EXPECT_EQ(core::match(result.held[b], e).size(), 1u)
            << "broker " << b << " claims but lacks " << x;
      }
    }

    // Sends only happen towards equal-or-higher-degree neighbors.
    for (const auto& snd : result.sends) {
      EXPECT_TRUE(g.has_edge(snd.from, snd.to));
      EXPECT_GE(g.degree(snd.to), g.degree(snd.from));
      EXPECT_EQ(g.degree(snd.from), static_cast<size_t>(snd.iteration));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationProperty, ::testing::Values(3, 7, 13, 29));

TEST(Propagation, SingleBrokerDegenerate) {
  const Schema s = schema_v();
  const Graph g(1);
  const auto result = propagate(g, per_broker_summaries(s, g), wire_for(s, g));
  EXPECT_EQ(result.hops(), 0u);
  EXPECT_EQ(result.merged_brokers[0], std::vector<BrokerId>{0});
}

TEST(Propagation, TwoBrokersExchangeBothWays) {
  // Both have degree 1 and act in iteration 1; each picks the other.
  const Schema s = schema_v();
  Graph g(2);
  g.add_edge(0, 1);
  const auto result = propagate(g, per_broker_summaries(s, g), wire_for(s, g));
  EXPECT_EQ(result.hops(), 2u);
  EXPECT_EQ(result.merged_brokers[0], (std::vector<BrokerId>{0, 1}));
  EXPECT_EQ(result.merged_brokers[1], (std::vector<BrokerId>{0, 1}));
}

}  // namespace
}  // namespace subsum::routing
