// Subscription leases end-to-end (PROTOCOL v4 soft state): TTL'd
// subscriptions expire at period boundaries unless renewed or re-attached,
// expiry acts exactly like an unsubscribe (removal piggyback included),
// lease deadlines survive broker restart re-armed to a full window, and
// Cluster::restart applies per-node config overrides.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "net/cluster.h"
#include "overlay/topologies.h"
#include "workload/stock_schema.h"

namespace subsum::net {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;
using model::EventBuilder;
using model::Op;
using model::Schema;
using model::SubId;
using model::SubscriptionBuilder;

Schema schema_v() { return workload::stock_schema(); }

RpcPolicy tight_policy() {
  RpcPolicy p;
  p.connect_timeout = 250ms;
  p.io_timeout = 1000ms;
  p.backoff = {5ms, 40ms, 2};
  return p;
}

std::string scratch_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = ::testing::TempDir() + "subsum_lease/" +
                          info->test_suite_name() + "." + info->name();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(Lease, ExpiresAtPeriodBoundaryLikeAnUnsubscribe) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, tight_policy());
  auto client = cluster.connect(1);
  client->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "ttl").build(), 2);
  EXPECT_EQ(cluster.node(1).snapshot().local_subs, 1u);
  EXPECT_EQ(cluster.node(1).snapshot().active_leases, 1u);

  // Period 1: remaining 2 -> 1, still live and propagated to broker 0.
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  EXPECT_EQ(cluster.node(1).snapshot().local_subs, 1u);

  // Period 2: lease hits zero at the boundary — expired before the
  // announcement, so the removal piggybacks to broker 0 the same period.
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  EXPECT_EQ(cluster.node(1).snapshot().local_subs, 0u);
  EXPECT_EQ(cluster.node(1).snapshot().active_leases, 0u);
#ifndef SUBSUM_NO_TELEMETRY
  EXPECT_EQ(cluster.node(1).metrics().counter_value("subsum_lease_expired_total"), 1u);
#endif

  // An event that would have matched is no longer delivered.
  auto pub = cluster.connect(0);
  pub->publish(EventBuilder(s).set("symbol", "ttl").build());
  EXPECT_FALSE(client->next_notification(300ms).has_value());
}

TEST(Lease, RenewalResetsTheFullWindow) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, tight_policy());
  auto client = cluster.connect(1);
  client->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "renew").build(), 2);

  for (int period = 0; period < 5; ++period) {
    ASSERT_TRUE(cluster.run_propagation_period().complete());
    EXPECT_EQ(cluster.node(1).snapshot().local_subs, 1u) << "period " << period;
    EXPECT_EQ(client->renew_leases(), 1u);
  }
#ifndef SUBSUM_NO_TELEMETRY
  EXPECT_GE(cluster.node(1).metrics().counter_value("subsum_lease_renewals_total"), 5u);
#endif

  // Stop renewing: two more periods exhaust the window.
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  EXPECT_EQ(cluster.node(1).snapshot().local_subs, 0u);
#ifndef SUBSUM_NO_TELEMETRY
  EXPECT_EQ(cluster.node(1).metrics().counter_value("subsum_lease_expired_total"), 1u);
#endif
}

TEST(Lease, ZeroLeaseIsPermanent) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, tight_policy());
  auto client = cluster.connect(1);
  client->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "perm").build());
  client->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "perm2").build(), 0);
  for (int period = 0; period < 4; ++period) {
    ASSERT_TRUE(cluster.run_propagation_period().complete());
  }
  EXPECT_EQ(cluster.node(1).snapshot().local_subs, 2u);
  EXPECT_EQ(cluster.node(1).snapshot().active_leases, 0u);
  EXPECT_EQ(cluster.node(1).metrics().counter_value("subsum_lease_expired_total"), 0u);
}

TEST(Lease, BrokerDefaultLeaseAppliesToPlainSubscribes) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, tight_policy(), {},
                  [](BrokerConfig& cfg) { cfg.default_lease_periods = 1; });
  auto client = cluster.connect(1);
  client->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "dflt").build());
  EXPECT_EQ(cluster.node(1).snapshot().active_leases, 1u);
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  EXPECT_EQ(cluster.node(1).snapshot().local_subs, 0u);
#ifndef SUBSUM_NO_TELEMETRY
  EXPECT_EQ(cluster.node(1).metrics().counter_value("subsum_lease_expired_total"), 1u);
#endif
}

TEST(Lease, SurvivesRestartWithTheWindowReArmed) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, tight_policy(),
                  scratch_dir());
  auto client = cluster.connect(1);
  client->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "dur").build(), 3);
  ASSERT_TRUE(cluster.run_propagation_period().complete());  // remaining 3 -> 2

  cluster.kill(1);
  cluster.restart(1);
  std::this_thread::sleep_for(50ms);

  // Recovery re-arms the lease to its full TTL: the owner gets one whole
  // window to re-attach or renew against the new incarnation. Had the
  // pre-crash remaining (2) been kept, the sub would die two periods in.
  EXPECT_EQ(cluster.node(1).snapshot().local_subs, 1u);
  EXPECT_EQ(cluster.node(1).snapshot().active_leases, 1u);
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  EXPECT_EQ(cluster.node(1).snapshot().local_subs, 1u);
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  EXPECT_EQ(cluster.node(1).snapshot().local_subs, 0u);
#ifndef SUBSUM_NO_TELEMETRY
  EXPECT_EQ(cluster.node(1).metrics().counter_value("subsum_lease_expired_total"), 1u);
#endif
}

TEST(Lease, AttachCountsAsRenewal) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, tight_policy());
  auto client = cluster.connect(1);
  const SubId id =
      client->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "att").build(), 2);

  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(cluster.run_propagation_period().complete());
    // A raw kAttach each period (what a reconnecting client sends): binds
    // the id AND refreshes its lease to the full window.
    Socket raw = connect_local(cluster.port_of(1), 500ms);
    raw.set_recv_timeout(2000ms);
    send_frame(raw, MsgKind::kAttach, encode(AttachMsg{{id}}));
    const auto ack = recv_frame(raw);
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->kind, MsgKind::kAttachAck);
  }
  EXPECT_EQ(cluster.node(1).snapshot().local_subs, 1u);
  EXPECT_EQ(cluster.node(1).metrics().counter_value("subsum_lease_expired_total"), 0u);
}

// Satellite: Cluster::restart accepts a per-node config override that
// sticks for that node (including across LATER restarts), applied on top
// of the cluster-wide tweak.
TEST(Lease, RestartConfigOverridePersists) {
  const Schema s = schema_v();
  Cluster cluster(s, overlay::line(2), core::GeneralizePolicy::kSafe, tight_policy(),
                  scratch_dir());

  cluster.kill(1);
  cluster.restart(1, [](BrokerConfig& cfg) { cfg.default_lease_periods = 1; });
  std::this_thread::sleep_for(50ms);

  auto client = cluster.connect(1);
  client->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "ovr").build());
  EXPECT_EQ(cluster.node(1).snapshot().active_leases, 1u);
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  EXPECT_EQ(cluster.node(1).snapshot().local_subs, 0u);

  // A second restart WITHOUT a tweak keeps the override.
  cluster.kill(1);
  cluster.restart(1);
  std::this_thread::sleep_for(50ms);
  auto client2 = cluster.connect(1);
  client2->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "ovr2").build());
  EXPECT_EQ(cluster.node(1).snapshot().active_leases, 1u);
  ASSERT_TRUE(cluster.run_propagation_period().complete());
  EXPECT_EQ(cluster.node(1).snapshot().local_subs, 0u);
}

}  // namespace
}  // namespace subsum::net
