#include <gtest/gtest.h>

#include <map>

#include "core/aacs.h"
#include "util/rng.h"

namespace subsum::core {
namespace {

using model::Op;
using model::SubId;

SubId sid(uint32_t n) { return SubId{0, n, 0}; }

std::vector<SubId> ids_at(const Aacs& a, double x) {
  const auto* p = a.find(x);
  return p ? *p : std::vector<SubId>{};
}

TEST(Aacs, PaperFigure4) {
  // S1: 8.30 < price < 8.70 (stored as the sub-range row 8.30..8.70);
  // S2: price = 8.20 (outside the ranges -> equality row).
  Aacs a;
  a.insert(IntervalSet::from_constraint(Op::kGt, 8.30)
               .intersect(IntervalSet::from_constraint(Op::kLt, 8.70)),
           sid(1));
  a.insert(IntervalSet::from_constraint(Op::kEq, 8.20), sid(2));

  EXPECT_EQ(a.nsr(), 1u);
  EXPECT_EQ(a.ne(), 1u);
  EXPECT_EQ(ids_at(a, 8.40), std::vector<SubId>{sid(1)});
  EXPECT_EQ(ids_at(a, 8.20), std::vector<SubId>{sid(2)});
  EXPECT_TRUE(ids_at(a, 8.00).empty());
  EXPECT_TRUE(ids_at(a, 8.30).empty());  // strict bound
  EXPECT_TRUE(ids_at(a, 9.0).empty());
}

TEST(Aacs, OverlappingInsertSplitsPieces) {
  Aacs a;
  a.insert(Interval{Pos::at(0), Pos::at(10)}, std::vector<SubId>{sid(1)});
  a.insert(Interval{Pos::at(5), Pos::at(15)}, std::vector<SubId>{sid(2)});
  // Partition: [0,5) {1}, [5,10] {1,2}, (10,15] {2}.
  EXPECT_EQ(a.pieces().size(), 3u);
  EXPECT_EQ(ids_at(a, 2), std::vector<SubId>{sid(1)});
  EXPECT_EQ(ids_at(a, 5), (std::vector<SubId>{sid(1), sid(2)}));
  EXPECT_EQ(ids_at(a, 10), (std::vector<SubId>{sid(1), sid(2)}));
  EXPECT_EQ(ids_at(a, 12), std::vector<SubId>{sid(2)});
}

TEST(Aacs, ContainedInsertSplitsInThree) {
  Aacs a;
  a.insert(Interval{Pos::at(0), Pos::at(10)}, std::vector<SubId>{sid(1)});
  a.insert(Interval{Pos::at(3), Pos::at(4)}, std::vector<SubId>{sid(2)});
  EXPECT_EQ(a.pieces().size(), 3u);
  EXPECT_EQ(ids_at(a, 3.5), (std::vector<SubId>{sid(1), sid(2)}));
  EXPECT_EQ(ids_at(a, 1), std::vector<SubId>{sid(1)});
  EXPECT_EQ(ids_at(a, 9), std::vector<SubId>{sid(1)});
}

TEST(Aacs, IdenticalRegionSharesRow) {
  Aacs a;
  a.insert(Interval{Pos::at(0), Pos::at(10)}, std::vector<SubId>{sid(1)});
  a.insert(Interval{Pos::at(0), Pos::at(10)}, std::vector<SubId>{sid(2)});
  EXPECT_EQ(a.pieces().size(), 1u);
  EXPECT_EQ(ids_at(a, 5), (std::vector<SubId>{sid(1), sid(2)}));
}

TEST(Aacs, PointInsideRangeSplits) {
  Aacs a;
  a.insert(Interval{Pos::at(0), Pos::at(10)}, std::vector<SubId>{sid(1)});
  a.insert(Interval::point(5), std::vector<SubId>{sid(2)});
  // [0,5) {1}, [5,5] {1,2}, (5,10] {1}
  EXPECT_EQ(a.pieces().size(), 3u);
  EXPECT_EQ(a.ne(), 1u);
  EXPECT_EQ(a.nsr(), 2u);
  EXPECT_EQ(ids_at(a, 5), (std::vector<SubId>{sid(1), sid(2)}));
  EXPECT_EQ(ids_at(a, 4.999), std::vector<SubId>{sid(1)});
}

TEST(Aacs, UnboundedConstraints) {
  Aacs a;
  a.insert(IntervalSet::from_constraint(Op::kGt, 100.0), sid(1));
  a.insert(IntervalSet::from_constraint(Op::kLe, 0.0), sid(2));
  EXPECT_EQ(ids_at(a, 1e12), std::vector<SubId>{sid(1)});
  EXPECT_EQ(ids_at(a, -1e12), std::vector<SubId>{sid(2)});
  EXPECT_EQ(ids_at(a, 0), std::vector<SubId>{sid(2)});
  EXPECT_TRUE(ids_at(a, 50).empty());
}

TEST(Aacs, NeProducesTwoPiecesCountedOnce) {
  Aacs a;
  a.insert(IntervalSet::from_constraint(Op::kNe, 5.0), sid(1));
  EXPECT_EQ(a.pieces().size(), 2u);
  EXPECT_EQ(ids_at(a, 4), std::vector<SubId>{sid(1)});
  EXPECT_EQ(ids_at(a, 6), std::vector<SubId>{sid(1)});
  EXPECT_TRUE(ids_at(a, 5).empty());
}

TEST(Aacs, RemoveDropsEmptyPiecesAndCoalesces) {
  Aacs a;
  a.insert(Interval{Pos::at(0), Pos::at(10)}, std::vector<SubId>{sid(1)});
  a.insert(Interval{Pos::at(3), Pos::at(4)}, std::vector<SubId>{sid(2)});
  ASSERT_EQ(a.pieces().size(), 3u);
  a.remove(sid(2));
  // The split heals back into one canonical piece.
  EXPECT_EQ(a.pieces().size(), 1u);
  EXPECT_EQ(a.pieces()[0].iv, (Interval{Pos::at(0), Pos::at(10)}));
  a.remove(sid(1));
  EXPECT_TRUE(a.empty());
}

TEST(Aacs, RemoveMissingIdIsNoop) {
  Aacs a;
  a.insert(Interval::point(1), std::vector<SubId>{sid(1)});
  a.remove(sid(99));
  EXPECT_EQ(a.pieces().size(), 1u);
}

TEST(Aacs, EmptyRegionInsertsNothing) {
  Aacs a;
  a.insert(IntervalSet::from_constraint(Op::kGt, 10.0)
               .intersect(IntervalSet::from_constraint(Op::kLt, 5.0)),
           sid(1));
  EXPECT_TRUE(a.empty());
}

TEST(Aacs, MergeIsUnion) {
  Aacs a, b;
  a.insert(Interval{Pos::at(0), Pos::at(10)}, std::vector<SubId>{sid(1)});
  b.insert(Interval{Pos::at(5), Pos::at(15)}, std::vector<SubId>{sid(2)});
  b.insert(Interval::point(100), std::vector<SubId>{sid(3)});
  a.merge(b);
  EXPECT_EQ(ids_at(a, 7), (std::vector<SubId>{sid(1), sid(2)}));
  EXPECT_EQ(ids_at(a, 100), std::vector<SubId>{sid(3)});
  EXPECT_EQ(ids_at(a, 1), std::vector<SubId>{sid(1)});
}

TEST(Aacs, MergeIdempotent) {
  Aacs a, b;
  a.insert(Interval{Pos::at(0), Pos::at(10)}, std::vector<SubId>{sid(1)});
  b.insert(Interval{Pos::at(0), Pos::at(10)}, std::vector<SubId>{sid(1)});
  a.merge(b);
  a.merge(b);
  EXPECT_EQ(a.pieces().size(), 1u);
  EXPECT_EQ(a.id_entries(), 1u);
}

// Property: after arbitrary inserts/removes, (a) pieces are sorted,
// disjoint and canonical; (b) find() agrees with re-evaluating every live
// constraint region directly.
class AacsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AacsProperty, PartitionInvariantsAndOracle) {
  util::Rng rng(GetParam());
  const Op ops[] = {Op::kEq, Op::kNe, Op::kLt, Op::kLe, Op::kGt, Op::kGe};

  Aacs a;
  std::map<uint32_t, IntervalSet> live;  // id -> its region
  uint32_t next_id = 0;

  for (int step = 0; step < 300; ++step) {
    if (!live.empty() && rng.chance(0.3)) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.below(live.size())));
      a.remove(sid(it->first));
      live.erase(it);
    } else {
      IntervalSet region = IntervalSet::all();
      const size_t k = 1 + rng.below(2);
      for (size_t i = 0; i < k; ++i) {
        region = region.intersect(IntervalSet::from_constraint(
            ops[rng.below(6)], static_cast<double>(rng.range_i64(-5, 5))));
      }
      const uint32_t id = next_id++;
      a.insert(region, sid(id));
      if (!region.empty()) live.emplace(id, std::move(region));
    }

    // (a) structural invariants.
    const auto& pieces = a.pieces();
    for (size_t i = 0; i + 1 < pieces.size(); ++i) {
      EXPECT_LT(pieces[i].iv.hi, pieces[i + 1].iv.lo);
      if (pieces[i].iv.touches(pieces[i + 1].iv)) {
        EXPECT_NE(pieces[i].ids, pieces[i + 1].ids) << "non-canonical partition";
      }
    }
    for (const auto& p : pieces) {
      EXPECT_FALSE(p.ids.empty());
      EXPECT_TRUE(std::is_sorted(p.ids.begin(), p.ids.end()));
      EXPECT_EQ(std::adjacent_find(p.ids.begin(), p.ids.end()), p.ids.end());
    }

    // (b) lookup oracle at integer and half-integer sample points.
    for (double x = -6.0; x <= 6.0; x += 0.5) {
      std::vector<SubId> expected;
      for (const auto& [id, region] : live) {
        if (region.contains(x)) expected.push_back(sid(id));
      }
      EXPECT_EQ(ids_at(a, x), expected) << "x=" << x << " step=" << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AacsProperty, ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace subsum::core
