#include <gtest/gtest.h>

#include <limits>

#include "util/bytes.h"
#include "util/rng.h"
#include "util/strings.h"

namespace subsum::util {
namespace {

TEST(Bytes, FixedWidthRoundTrip) {
  BufWriter w;
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_i64(-42);
  w.put_f64(3.14159);

  BufReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0xBEEF);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, LittleEndianLayout) {
  BufWriter w;
  w.put_u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(w.bytes()[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(w.bytes()[3]), 0x01);
}

TEST(Bytes, VarintRoundTrip) {
  const uint64_t cases[] = {0,    1,    127,        128,
                            300,  16383, 16384,     (1ULL << 32) - 1,
                            1ULL << 32, ~0ULL};
  for (uint64_t v : cases) {
    BufWriter w;
    w.put_varint(v);
    EXPECT_EQ(w.size(), varint_size(v)) << v;
    BufReader r(w.bytes());
    EXPECT_EQ(r.get_varint(), v);
  }
}

TEST(Bytes, VarintSizes) {
  EXPECT_EQ(varint_size(0), 1u);
  EXPECT_EQ(varint_size(127), 1u);
  EXPECT_EQ(varint_size(128), 2u);
  EXPECT_EQ(varint_size(~0ULL), 10u);
}

TEST(Bytes, StringRoundTrip) {
  BufWriter w;
  w.put_string("");
  w.put_string("hello");
  w.put_string(std::string(1000, 'x'));
  BufReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), std::string(1000, 'x'));
}

TEST(Bytes, TruncatedInputThrows) {
  BufWriter w;
  w.put_u32(7);
  BufReader r(w.bytes());
  r.get_u16();
  EXPECT_THROW(r.get_u32(), DecodeError);
}

TEST(Bytes, TruncatedStringThrows) {
  BufWriter w;
  w.put_varint(100);  // promises 100 bytes, delivers none
  BufReader r(w.bytes());
  EXPECT_THROW(r.get_string(), DecodeError);
}

TEST(Bytes, OverlongVarintThrows) {
  std::vector<std::byte> bad(11, std::byte{0x80});
  BufReader r(bad);
  EXPECT_THROW(r.get_varint(), DecodeError);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.range_i64(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01HalfOpen) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, AsciiLower) {
  Rng rng(19);
  const std::string s = rng.ascii_lower(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(Zipf, RankZeroMostPopular) {
  Rng rng(23);
  Zipf z(50, 1.0);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[49]);
}

TEST(Zipf, AllRanksReachable) {
  Rng rng(29);
  Zipf z(5, 0.5);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 20000; ++i) ++counts[z.sample(rng)];
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(Strings, StartsEndsContains) {
  EXPECT_TRUE(starts_with("microsoft", "micro"));
  EXPECT_TRUE(starts_with("micro", "micro"));
  EXPECT_FALSE(starts_with("mic", "micro"));
  EXPECT_TRUE(starts_with("anything", ""));

  EXPECT_TRUE(ends_with("microsoft", "soft"));
  EXPECT_TRUE(ends_with("soft", "soft"));
  EXPECT_FALSE(ends_with("of", "soft"));
  EXPECT_TRUE(ends_with("anything", ""));

  EXPECT_TRUE(contains("microsoft", "cros"));
  EXPECT_TRUE(contains("microsoft", ""));
  EXPECT_FALSE(contains("micro", "soft"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

}  // namespace
}  // namespace subsum::util
