#!/usr/bin/env bash
# End-to-end smoke test of the CLI tools: 13 broker daemons on the fig-7
# overlay, one subscriber, one publisher, exact delivery asserted.
# Usage: cli_smoke.sh <build_dir>
set -u

BUILD=${1:?usage: cli_smoke.sh <build_dir>}
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$WORK"' EXIT

cat > "$WORK/deploy.conf" <<EOF
attribute exchange string
attribute symbol string
attribute sector string
attribute currency string
attribute when int
attribute price float
attribute volume int
attribute high float
attribute low float
attribute open float
topology fig7
EOF

# Start the deployment on a random base port below the kernel's ephemeral
# range; retry with a fresh base if any port is already taken.
started=0
for attempt in 1 2 3 4 5; do
  BASE=$(( 10000 + (RANDOM % 20000) ))
  PORTS=$BASE
  for i in $(seq 1 12); do PORTS="$PORTS,$((BASE+i))"; done

  for i in $(seq 0 12); do
    EXTRA=""
    [ "$i" = 0 ] && EXTRA="--propagate-every 1"
    "$BUILD/tools/subsum_broker" --config "$WORK/deploy.conf" --id "$i" \
        --port $((BASE+i)) --peers "$PORTS" $EXTRA > "$WORK/broker$i.log" 2>&1 &
  done

  started=1
  for i in $(seq 0 12); do
    ok=0
    for _ in $(seq 1 50); do
      if grep -q "listening" "$WORK/broker$i.log" 2>/dev/null; then ok=1; break; fi
      if grep -q "broker failed" "$WORK/broker$i.log" 2>/dev/null; then break; fi
      sleep 0.1
    done
    [ "$ok" = 1 ] || { started=0; break; }
  done
  [ "$started" = 1 ] && break
  echo "attempt $attempt: port clash at base $BASE, retrying"
  kill $(jobs -p) 2>/dev/null
  wait 2>/dev/null
done
[ "$started" = 1 ] || { echo "brokers failed to start"; cat "$WORK"/broker*.log; exit 1; }

# timeout(1) guards: a wedged client must fail the test, not hang it
# until the ctest-level timeout reaps the whole script.
timeout 60 "$BUILD/tools/subsum_sub" --config "$WORK/deploy.conf" --port $((BASE+3)) --count 1 \
    'price > 8.30 AND price < 8.70 AND symbol = OTE' > "$WORK/sub.log" 2>&1 &
SUB=$!

# Wait for at least one propagation period after the subscription landed.
sleep 2.5

timeout 30 "$BUILD/tools/subsum_pub" --config "$WORK/deploy.conf" --port $BASE \
    'price = 8.40, symbol = OTE, volume = 132700' > "$WORK/pub.log" 2>&1 \
    || { echo "publish failed or timed out"; cat "$WORK/pub.log"; exit 1; }

# The subscriber exits after one notification (--count 1).
for _ in $(seq 1 40); do
  kill -0 "$SUB" 2>/dev/null || break
  sleep 0.25
done
if kill -0 "$SUB" 2>/dev/null; then
  echo "subscriber never got the notification"; cat "$WORK/sub.log"; exit 1
fi

grep -q 'event .*OTE.* -> S(3.0)' "$WORK/sub.log" || {
  echo "unexpected subscriber output:"; cat "$WORK/sub.log"; exit 1; }

# A non-matching publish must not notify anyone (run sub with a timeout).
timeout 30 "$BUILD/tools/subsum_pub" --config "$WORK/deploy.conf" --port $BASE \
    'price = 9.99, symbol = OTE' > /dev/null 2>&1 || exit 1

echo "cli smoke test passed"
exit 0
