#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.h"

namespace subsum::stats {
namespace {

TEST(Series, EmptyIsZero) {
  const Series s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Series, SingleValue) {
  Series s;
  s.add(7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Series, Moments) {
  Series s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Series, NegativeValues) {
  Series s;
  s.add(-3);
  s.add(3);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 3.0);
}

TEST(Series, StddevStableNearLargeMean) {
  // Regression for the naive sum-of-squares form: values clustered around
  // 1e9 with stddev 2 used to cancel catastrophically (sumsq/n - mean^2
  // loses ~17 significant digits), reporting garbage or 0. Welford keeps
  // full precision.
  Series s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(1e9 + v);
  EXPECT_NEAR(s.mean(), 1e9 + 5.0, 1e-3);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-6);
}

TEST(Counters, IncValueSnapshot) {
  Counters c;
  c.inc("a");
  c.inc("a", 2);
  c.inc(std::string_view("b"));
  EXPECT_EQ(c.value("a"), 3u);
  EXPECT_EQ(c.value("b"), 1u);
  EXPECT_EQ(c.value("never"), 0u);
  const auto snap = c.snapshot();
  EXPECT_EQ(snap.at("a"), 3u);
  EXPECT_NE(c.to_string().find("a=3"), std::string::npos);
}

TEST(Counters, HandleIsStableAndShared) {
  Counters c;
  auto* h = c.handle("hot.path");
  auto* again = c.handle("hot.path");
  EXPECT_EQ(h, again);  // get-or-register returns the same object
  h->inc();
  h->inc(41);
  EXPECT_EQ(h->value(), 42u);
  // The name-keyed view and the handle view are the same counter.
  EXPECT_EQ(c.value("hot.path"), 42u);
  c.inc("hot.path");
  EXPECT_EQ(h->value(), 43u);
}

TEST(Fmt, CompactNumbers) {
  EXPECT_EQ(fmt(0), "0");
  EXPECT_EQ(fmt(1.5), "1.5");
  EXPECT_EQ(fmt(12345678), "1.235e+07");
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row({"a", "1"});
  t.row({"longer", "22"});
  const std::string out = t.to_string();
  std::istringstream in(out);
  std::string header, rule, r1, r2;
  std::getline(in, header);
  std::getline(in, rule);
  std::getline(in, r1);
  std::getline(in, r2);
  // Column 2 starts at the same offset everywhere.
  const size_t col = header.find("value");
  EXPECT_NE(col, std::string::npos);
  EXPECT_EQ(r1.find('1'), col);
  EXPECT_EQ(r2.find("22"), col);
  EXPECT_EQ(rule.find('-'), 0u);
}

TEST(Table, RowfFormatsDoubles) {
  Table t({"x", "y"});
  t.rowf({1.0, 2.5});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("2.5"), std::string::npos);
}

TEST(Table, ShortRowsTolerated) {
  Table t({"a", "b", "c"});
  t.row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

}  // namespace
}  // namespace subsum::stats
