#include <gtest/gtest.h>

#include "config/config.h"
#include "model/parse.h"
#include "workload/stock_schema.h"

namespace subsum {
namespace {

using model::Constraint;
using model::Op;
using model::ParseError;
using model::Schema;

Schema schema_v() { return workload::stock_schema(); }

TEST(ParseConstraint, ArithmeticOperators) {
  const Schema s = schema_v();
  EXPECT_EQ(model::parse_constraint(s, "price > 8.30"),
            (Constraint{s.id_of("price"), Op::kGt, 8.30}));
  EXPECT_EQ(model::parse_constraint(s, "price<=8.7"),
            (Constraint{s.id_of("price"), Op::kLe, 8.7}));
  EXPECT_EQ(model::parse_constraint(s, "volume != 5"),
            (Constraint{s.id_of("volume"), Op::kNe, int64_t{5}}));
  EXPECT_EQ(model::parse_constraint(s, "volume >= 130000"),
            (Constraint{s.id_of("volume"), Op::kGe, int64_t{130000}}));
  EXPECT_EQ(model::parse_constraint(s, "when = 99"),
            (Constraint{s.id_of("when"), Op::kEq, int64_t{99}}));
}

TEST(ParseConstraint, StringOperators) {
  const Schema s = schema_v();
  EXPECT_EQ(model::parse_constraint(s, "symbol = OTE"),
            (Constraint{s.id_of("symbol"), Op::kEq, "OTE"}));
  EXPECT_EQ(model::parse_constraint(s, "symbol = \"two words\""),
            (Constraint{s.id_of("symbol"), Op::kEq, "two words"}));
  EXPECT_EQ(model::parse_constraint(s, "symbol >* OT"),
            (Constraint{s.id_of("symbol"), Op::kPrefix, "OT"}));
  EXPECT_EQ(model::parse_constraint(s, "symbol *< TE"),
            (Constraint{s.id_of("symbol"), Op::kSuffix, "TE"}));
  EXPECT_EQ(model::parse_constraint(s, "symbol * T"),
            (Constraint{s.id_of("symbol"), Op::kContains, "T"}));
  EXPECT_EQ(model::parse_constraint(s, "exchange != NASDAQ"),
            (Constraint{s.id_of("exchange"), Op::kNe, "NASDAQ"}));
}

TEST(ParseConstraint, Errors) {
  const Schema s = schema_v();
  EXPECT_THROW(model::parse_constraint(s, ""), ParseError);
  EXPECT_THROW(model::parse_constraint(s, "nosuch = 1"), ParseError);
  EXPECT_THROW(model::parse_constraint(s, "price 8.3"), ParseError);
  EXPECT_THROW(model::parse_constraint(s, "price >"), ParseError);
  EXPECT_THROW(model::parse_constraint(s, "price = abc"), ParseError);
  EXPECT_THROW(model::parse_constraint(s, "volume = 1.5"), ParseError);
  // Operator invalid for the type is rejected by constraint validation.
  EXPECT_THROW(model::parse_constraint(s, "price >* 3"), std::invalid_argument);
  EXPECT_THROW(model::parse_constraint(s, "symbol < x"), std::invalid_argument);
}

TEST(ParseSubscription, Conjunction) {
  const Schema s = schema_v();
  const auto sub = model::parse_subscription(
      s, "price > 8.30 AND price < 8.70 AND symbol = OTE");
  EXPECT_EQ(sub.constraints().size(), 3u);
  EXPECT_TRUE(sub.matches(
      model::EventBuilder(s).set("price", 8.4).set("symbol", "OTE").build()));
  EXPECT_FALSE(sub.matches(
      model::EventBuilder(s).set("price", 9.0).set("symbol", "OTE").build()));
}

TEST(ParseSubscription, CaseInsensitiveAndQuotedAnd) {
  const Schema s = schema_v();
  const auto sub = model::parse_subscription(s, "symbol = \"R AND D\" and price > 1");
  EXPECT_EQ(sub.constraints().size(), 2u);
  EXPECT_EQ(sub.constraints()[0].operand.as_string(), "R AND D");
}

TEST(ParseSubscription, SingleConstraint) {
  const Schema s = schema_v();
  EXPECT_EQ(model::parse_subscription(s, "price > 1").constraints().size(), 1u);
}

TEST(ParseEvent, Basic) {
  const Schema s = schema_v();
  const auto e =
      model::parse_event(s, "price = 8.40, symbol = OTE, volume = 132700");
  EXPECT_EQ(e.size(), 3u);
  EXPECT_DOUBLE_EQ(e.find(s.id_of("price"))->as_float(), 8.40);
  EXPECT_EQ(e.find(s.id_of("symbol"))->as_string(), "OTE");
  EXPECT_EQ(e.find(s.id_of("volume"))->as_int(), 132700);
}

TEST(ParseEvent, QuotedCommaValue) {
  const Schema s = schema_v();
  const auto e = model::parse_event(s, "symbol = \"A, B\", price = 1.0");
  EXPECT_EQ(e.find(s.id_of("symbol"))->as_string(), "A, B");
}

TEST(ParseEvent, Errors) {
  const Schema s = schema_v();
  EXPECT_THROW(model::parse_event(s, ""), ParseError);
  EXPECT_THROW(model::parse_event(s, "price"), ParseError);
  EXPECT_THROW(model::parse_event(s, "nosuch = 1"), ParseError);
  EXPECT_THROW(model::parse_event(s, "price = x"), ParseError);
  // Duplicate attribute rejected by Event validation.
  EXPECT_THROW(model::parse_event(s, "price = 1.0, price = 2.0"), std::invalid_argument);
}

TEST(Config, ParsesExplicitTopology) {
  const auto spec = config::parse_system_spec(R"(
# a comment
attribute symbol string
attribute price float   # trailing comment
attribute volume int
brokers 3
edge 0 1
edge 1 2
)");
  EXPECT_EQ(spec.schema.attr_count(), 3u);
  EXPECT_EQ(spec.schema.type_of(spec.schema.id_of("price")), model::AttrType::kFloat);
  EXPECT_EQ(spec.graph.size(), 3u);
  EXPECT_TRUE(spec.graph.has_edge(0, 1));
  EXPECT_TRUE(spec.graph.connected());
}

TEST(Config, ParsesBuiltinTopologies) {
  EXPECT_EQ(config::parse_system_spec("attribute a int\ntopology cw24\n").graph.size(), 24u);
  EXPECT_EQ(config::parse_system_spec("attribute a int\ntopology fig7\n").graph.size(), 13u);
  EXPECT_EQ(config::parse_system_spec("attribute a int\ntopology line 5\n").graph.size(), 5u);
  EXPECT_EQ(config::parse_system_spec("attribute a int\ntopology ring 6\n").graph.size(), 6u);
  EXPECT_EQ(config::parse_system_spec("attribute a int\ntopology star 4\n").graph.size(), 4u);
}

TEST(Config, Errors) {
  using config::ConfigError;
  EXPECT_THROW(config::parse_system_spec(""), ConfigError);
  EXPECT_THROW(config::parse_system_spec("attribute a int\n"), ConfigError);  // no topology
  EXPECT_THROW(config::parse_system_spec("attribute a int\nbrokers 2\n"), ConfigError);
  EXPECT_THROW(config::parse_system_spec("attribute a bogus\nbrokers 1\n"), ConfigError);
  EXPECT_THROW(config::parse_system_spec("attribute a int\nattribute a int\ntopology fig7\n"),
               ConfigError);
  EXPECT_THROW(config::parse_system_spec("attribute a int\nbrokers 2\nedge 0 5\n"),
               ConfigError);
  EXPECT_THROW(config::parse_system_spec("attribute a int\ntopology fig7\nbrokers 2\n"),
               ConfigError);
  EXPECT_THROW(config::parse_system_spec("nonsense\n"), ConfigError);
  EXPECT_THROW(config::parse_system_spec("attribute a int\ntopology blob 3\n"), ConfigError);
}

TEST(Config, RoundTripsThroughText) {
  const auto spec = config::parse_system_spec("attribute a int\ntopology fig7\n");
  const auto again = config::parse_system_spec(config::to_text(spec));
  EXPECT_EQ(again.schema, spec.schema);
  EXPECT_EQ(again.graph.edges(), spec.graph.edges());
}

TEST(Config, ErrorsCarryLineNumbers) {
  try {
    config::parse_system_spec("attribute a int\nbogus directive\n");
    FAIL() << "expected ConfigError";
  } catch (const config::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace subsum
