// Crash durability: a 3-broker line deployment where every broker keeps a
// data directory, the middle broker "crashes" and recovers, and the world
// keeps turning without anyone re-subscribing. Demonstrates the store
// layer end to end:
//
//   1. subscriptions are WAL-logged before they are acked, so a killed
//      broker recovers its full subscription set — and rebuilds a summary
//      image bit-identical to its pre-crash one;
//   2. the subscriber's client re-attaches its ids on its next poll (a
//      kAttach handshake, no re-subscribe), and a publish routed through
//      the recovered broker is delivered as if nothing happened;
//   3. every incarnation bumps the broker's on-disk epoch: announcements
//      from a pre-crash incarnation are recognizably stale, so peers never
//      resurrect zombie routing state.
//
// Exits non-zero on any wrong or missing delivery.
//
//   ./crash_recovery
#include <chrono>
#include <filesystem>
#include <iostream>

#include "net/cluster.h"
#include "overlay/topologies.h"
#include "workload/stock_schema.h"

int main() {
  using namespace subsum;
  using namespace std::chrono_literals;
  using model::Op;

  const model::Schema schema = workload::stock_schema();

  net::RpcPolicy rpc;
  rpc.connect_timeout = 250ms;
  rpc.io_timeout = 500ms;
  rpc.backoff = {5ms, 40ms, 2};

  const std::string data_dir =
      (std::filesystem::temp_directory_path() / "subsum_crash_recovery").string();
  std::filesystem::remove_all(data_dir);
  net::Cluster cluster(schema, overlay::line(3), core::GeneralizePolicy::kSafe, rpc,
                       data_dir);
  std::cout << "3 durable brokers up, stores under " << data_dir << "\n";

  const auto sub = model::SubscriptionBuilder(schema)
                       .where("symbol", Op::kEq, "OTE")
                       .where("price", Op::kGt, 8.0)
                       .build();
  auto alice = cluster.connect(0);  // publisher at one end
  auto bob = cluster.connect(1);    // subscriber on the broker we will kill
  const auto bob_id = bob->subscribe(sub);
  if (!cluster.run_propagation_period().complete()) {
    std::cerr << "FAIL: initial propagation period incomplete\n";
    return 1;
  }

  const auto event =
      model::EventBuilder(schema).set("symbol", "OTE").set("price", 8.4).build();
  const auto expect_delivery = [&](const char* stage) {
    const auto note = bob->next_notification(3000ms);
    if (!note || note->ids != std::vector<model::SubId>{bob_id}) {
      std::cerr << "FAIL (" << stage << "): bob did not get the event\n";
      std::exit(1);
    }
    std::cout << "  bob notified (" << stage << ")\n";
  };
  alice->publish(event);
  expect_delivery("before the crash");

  // --- the crash -------------------------------------------------------------
  const auto image_before = cluster.node(1).own_summary_wire();
  std::cout << "killing broker 1 (epoch " << cluster.node(1).epoch()
            << ", bob's home) and restarting it from disk...\n";
  cluster.kill(1);
  cluster.restart(1);

  const auto& revived = cluster.node(1);
  std::cout << "  back as epoch " << revived.epoch() << " with "
            << revived.snapshot().local_subs << " recovered subscription(s)\n";
  if (!revived.recovery().recovered || revived.snapshot().local_subs != 1) {
    std::cerr << "FAIL: the subscription did not survive the crash\n";
    return 1;
  }
  if (revived.own_summary_wire() != image_before) {
    std::cerr << "FAIL: recovered summary image differs from the pre-crash one\n";
    return 1;
  }
  std::cout << "  recovered summary image is bit-identical to the pre-crash one\n";

  // --- session resumption ----------------------------------------------------
  // Bob never re-subscribes: his next poll finds the connection dead,
  // reconnects, and re-binds his subscription ids with a kAttach handshake.
  (void)bob->next_notification(100ms);
  alice->publish(event);
  expect_delivery("after recovery, no re-subscribe");

  // --- epochs ----------------------------------------------------------------
  // The new incarnation's announcements carry the bumped epoch, so peers
  // replace — never duplicate — what they held on broker 1's behalf.
  if (!cluster.run_propagation_period().complete()) {
    std::cerr << "FAIL: post-recovery propagation period incomplete\n";
    return 1;
  }
  alice->publish(event);
  expect_delivery("after the new epoch propagated");

  std::filesystem::remove_all(data_dir);
  std::cout << "crash-recovery run survived: WAL replay, bit-identical summary, "
               "re-attach without re-subscribe, epoch bump\n";
  return 0;
}
