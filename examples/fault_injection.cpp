// Fault injection: a live 5-broker line deployment surviving a degraded
// link and a crashed broker. Demonstrates the robustness layer end to end:
//
//   1. a FaultInjector proxy interposed on the broker-1 -> broker-2
//      summary path first delays, then blackholes the link — propagation
//      keeps completing (deadlines + capped backoff) and the held summary
//      only ever changes by whole merges;
//   2. a broker crash mid-run (Cluster::kill) — a publish on a live broker
//      still returns within its deadline budget, deliveries to the dead
//      broker are queued;
//   3. restart + one propagation period — the queued event is redelivered
//      and the summaries re-heal, so fresh publishes reach everyone again.
//
// Exits non-zero on any wrong or missing delivery.
//
//   ./fault_injection
#include <chrono>
#include <iostream>

#include "net/cluster.h"
#include "net/fault_injector.h"
#include "overlay/topologies.h"
#include "workload/stock_schema.h"

int main() {
  using namespace subsum;
  using namespace std::chrono_literals;
  using model::Op;

  const model::Schema schema = workload::stock_schema();

  // Small deadlines so every failure below resolves in milliseconds.
  net::RpcPolicy rpc;
  rpc.connect_timeout = 250ms;
  rpc.io_timeout = 500ms;
  rpc.backoff = {5ms, 40ms, 2};
  net::Cluster cluster(schema, overlay::line(5), core::GeneralizePolicy::kSafe, rpc);

  const auto sub = model::SubscriptionBuilder(schema)
                       .where("symbol", Op::kEq, "OTE")
                       .where("price", Op::kGt, 8.0)
                       .build();
  auto alice = cluster.connect(0);  // publisher at one end of the line
  auto bob = cluster.connect(4);    // subscriber at the other end
  const auto bob_id = bob->subscribe(sub);

  const auto event =
      model::EventBuilder(schema).set("symbol", "OTE").set("price", 8.4).build();
  const auto expect_delivery = [&](const char* stage) {
    const auto note = bob->next_notification(3000ms);
    if (!note || note->ids != std::vector<model::SubId>{bob_id}) {
      std::cerr << "FAIL (" << stage << "): bob did not get the event\n";
      std::exit(1);
    }
    std::cout << "  bob notified (" << stage << ")\n";
  };

  // --- 1. degraded link ------------------------------------------------------
  net::FaultInjector injector(cluster.port_of(2));
  cluster.node(1).set_peer_ports({cluster.port_of(0), cluster.port_of(1),
                                  injector.port(), cluster.port_of(3),
                                  cluster.port_of(4)});

  injector.set_mode(net::FaultInjector::Mode::kDelay);
  injector.set_delay(30ms);
  std::cout << "propagating with a slow broker-1 -> broker-2 link...\n";
  auto report = cluster.run_propagation_period();
  std::cout << "  period complete, unreachable brokers: " << report.unreachable.size()
            << ", proxied bytes: " << injector.forwarded_bytes() << "\n";

  alice->publish(event);
  expect_delivery("slow link");

  injector.set_mode(net::FaultInjector::Mode::kBlackhole);
  std::cout << "blackholing that link; propagation must still complete...\n";
  const auto t0 = std::chrono::steady_clock::now();
  report = cluster.run_propagation_period();
  const auto period_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - t0);
  std::cout << "  period complete in " << period_ms.count()
            << " ms (broker 1 timed out on the dead link and moved on)\n";
  if (!report.complete()) {
    std::cerr << "FAIL: a blackholed link must not mark whole brokers dead\n";
    return 1;
  }
  injector.set_mode(net::FaultInjector::Mode::kPass);

  // --- 2. broker crash -------------------------------------------------------
  std::cout << "killing broker 4 (bob's home) and publishing on broker 0...\n";
  cluster.kill(4);
  const auto t1 = std::chrono::steady_clock::now();
  alice->publish(event);
  const auto walk_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - t1);
  const auto budget = rpc.backoff.max_attempts * (rpc.connect_timeout + rpc.io_timeout);
  // The kDeliver to dead broker 4 was queued at whichever live broker
  // examined bob's subscription rows during the walk.
  const auto queued_total = [&] {
    size_t total = 0;
    for (overlay::BrokerId b = 0; b < 4; ++b) {
      total += cluster.node(b).snapshot().pending_redeliveries;
    }
    return total;
  };
  std::cout << "  publish returned in " << walk_ms.count() << " ms (budget 2x "
            << budget.count() << " ms); queued redeliveries: " << queued_total() << "\n";
  if (walk_ms > 2 * budget) {
    std::cerr << "FAIL: degraded walk exceeded twice the deadline budget\n";
    return 1;
  }

  // --- 3. restart + self-healing --------------------------------------------
  std::cout << "restarting broker 4; re-subscribing and healing...\n";
  cluster.restart(4);
  bob = cluster.connect(4);
  if (bob->subscribe(sub) != bob_id) {
    std::cerr << "FAIL: restarted broker must re-issue the same id\n";
    return 1;
  }
  report = cluster.run_propagation_period();  // flushes the queued delivery
  if (!report.complete()) {
    std::cerr << "FAIL: healing period saw unreachable brokers\n";
    return 1;
  }
  expect_delivery("redelivered after restart");

  alice->publish(event);
  expect_delivery("fresh publish after heal");
  if (queued_total() != 0) {
    std::cerr << "FAIL: redelivery queues should be empty after healing\n";
    return 1;
  }

  std::cout << "fault-injection run survived: delayed link, blackholed link, "
               "broker crash, restart + redelivery\n";
  return 0;
}
