// The paper's §6 "on-going work", live: a system that (a) prunes covered
// subscriptions from the summaries (combined summarization + subsumption),
// (b) extends the attribute schema while subscriptions are outstanding,
// and (c) balances the event walk with coverage-aware forwarding.
//
//   ./evolving_system
#include <iostream>

#include "core/matcher.h"
#include "overlay/topologies.h"
#include "sim/system.h"
#include "workload/stock_schema.h"

int main() {
  using namespace subsum;
  using model::Op;

  // (a) combined summarization + subsumption -------------------------------
  sim::SystemConfig cfg;
  cfg.schema = workload::stock_schema();
  cfg.graph = overlay::cable_wireless_24();
  cfg.combine_subsumption = true;
  cfg.router.strategy = routing::ForwardStrategy::kLargestCoverage;  // (c)
  sim::SimSystem sys(std::move(cfg));

  const auto wide = model::SubscriptionBuilder(sys.schema())
                        .where("sector", Op::kEq, "tech")
                        .build();
  const auto narrow = model::SubscriptionBuilder(sys.schema())
                          .where("sector", Op::kEq, "tech")
                          .where("price", Op::kGt, 100.0)
                          .build();
  const auto wide_id = sys.subscribe(3, wide);
  const size_t rows_before = sys.state().held[3].stats().nr;
  const auto narrow_id = sys.subscribe(3, narrow);
  std::cout << "narrow subscription covered by " << wide_id.to_string()
            << ": summary rows stayed at " << rows_before << " (now "
            << sys.state().held[3].stats().nr << ")\n";
  sys.run_propagation_period();

  auto out = sys.publish(0, model::EventBuilder(sys.schema())
                                .set("sector", "tech")
                                .set("price", 150.0)
                                .build());
  std::cout << "tech@150 delivered to " << out.delivered.size()
            << " subscriptions (expected 2: wide + covered narrow)\n";
  if (out.delivered.size() != 2) return 1;

  // Unsubscribing the coverer promotes the covered subscription.
  sys.unsubscribe(wide_id);
  sys.run_propagation_period();
  out = sys.publish(0, model::EventBuilder(sys.schema())
                           .set("sector", "tech")
                           .set("price", 150.0)
                           .build());
  std::cout << "after dropping the coverer: " << out.delivered.size()
            << " delivery (promoted " << narrow_id.to_string() << ")\n";
  if (out.delivered != std::vector<model::SubId>{narrow_id}) return 1;

  // (b) dynamic schema extension -------------------------------------------
  // A core-level migration: the summary carries over verbatim because
  // appending attributes preserves ids and c3 bit positions.
  const model::Schema base = workload::stock_schema();
  const model::Schema wider =
      model::extend_schema(base, {{"esg_score", model::AttrType::kFloat}});
  core::BrokerSummary summary(base);
  const auto legacy =
      model::SubscriptionBuilder(base).where("symbol", Op::kEq, "ACME").build();
  const model::SubId legacy_id{0, 0, legacy.mask()};
  summary.add(legacy, legacy_id);
  const core::BrokerSummary migrated = summary.with_schema(wider);

  const auto esg_sub =
      model::SubscriptionBuilder(wider).where("esg_score", Op::kGt, 80.0).build();
  core::BrokerSummary grown = migrated;
  grown.add(esg_sub, model::SubId{0, 1, esg_sub.mask()});
  const auto event = model::EventBuilder(wider)
                         .set("symbol", "ACME")
                         .set("esg_score", 91.0)
                         .build();
  const auto matches = core::match(grown, event);
  std::cout << "after schema extension, " << matches.size()
            << " subscriptions match (legacy + new esg filter)\n";
  return matches.size() == 2 ? 0 : 1;
}
