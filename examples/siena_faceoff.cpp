// Side-by-side face-off: the summary-centric system vs the Siena-style
// subsumption comparator on an identical workload and topology — the
// qualitative story behind the paper's figures 8-11, at example scale.
//
//   ./siena_faceoff
#include <iostream>

#include "core/matcher.h"
#include "overlay/topologies.h"
#include "siena/siena_network.h"
#include "sim/system.h"
#include "stats/stats.h"
#include "util/rng.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

int main() {
  using namespace subsum;

  const auto schema = workload::stock_schema();
  const auto g = overlay::cable_wireless_24();

  sim::SystemConfig cfg;
  cfg.schema = schema;
  cfg.graph = g;
  cfg.arith_mode = core::AacsMode::kCoarse;
  cfg.numeric_width = 4;
  sim::SimSystem ours(std::move(cfg));
  siena::SienaNetwork theirs(schema, g);

  workload::SubGenParams sp;
  sp.subsumption = 0.5;
  workload::SubscriptionGenerator gen(schema, sp, 99);
  util::Rng rng(100);

  // Identical subscriptions into both systems.
  size_t siena_bytes = 0, siena_msgs = 0;
  core::NaiveMatcher oracle;
  for (uint32_t i = 0; i < 600; ++i) {
    const auto home = static_cast<overlay::BrokerId>(rng.below(g.size()));
    const auto sub = gen.next();
    const auto id = ours.subscribe(home, sub);
    const auto st = theirs.subscribe(home, {id, sub});
    siena_bytes += st.bytes;
    siena_msgs += st.messages;
    oracle.add({id, sub});
  }
  const auto trace = ours.run_propagation_period();

  std::cout << "subscription propagation (600 subscriptions, 24 brokers)\n";
  stats::Table prop({"system", "messages", "bytes"});
  prop.row({"summaries (Algorithm 2)", std::to_string(trace.hops()),
            std::to_string(trace.total_bytes())});
  prop.row({"siena (real covering cut-offs)", std::to_string(siena_msgs),
            std::to_string(siena_bytes)});
  prop.print(std::cout);

  // Identical events through both; both must agree with the global oracle.
  workload::EventGenerator egen(schema, gen.pools(), {}, 101);
  stats::Series our_hops, their_hops;
  size_t checked = 0, delivered_total = 0;
  for (int i = 0; i < 400; ++i) {
    auto e = egen.next();
    if (i % 2 == 1) {
      const auto& os = oracle.subs()[rng.below(oracle.size())];
      if (auto derived = workload::matching_event(schema, os.sub)) e = *std::move(derived);
    }
    const auto origin = static_cast<overlay::BrokerId>(rng.below(g.size()));
    const auto mine = ours.publish(origin, e);
    const auto other = theirs.publish(origin, e);
    const auto expected = oracle.match(e);
    if (mine.delivered != expected || other.delivered != expected) {
      std::cerr << "systems disagree with the oracle on event " << i << "\n";
      return 1;
    }
    our_hops.add(static_cast<double>(mine.route.total_hops()));
    their_hops.add(static_cast<double>(other.forward_hops));
    delivered_total += expected.size();
    ++checked;
  }

  std::cout << "\nevent processing (" << checked << " events, " << delivered_total
            << " deliveries; both systems matched the oracle exactly)\n";
  stats::Table ev({"system", "mean hops/event"});
  ev.row({"summaries (BROCLI walk)", stats::fmt(our_hops.mean())});
  ev.row({"siena (reverse paths)", stats::fmt(their_hops.mean())});
  ev.print(std::cout);

  std::cout << "\nstorage\n";
  stats::Table st({"system", "bytes"});
  st.row({"summaries (held structures)", std::to_string(ours.summary_storage_bytes())});
  st.row({"siena (stored subscriptions)", std::to_string(theirs.stored_bytes())});
  st.print(std::cout);
  return 0;
}
