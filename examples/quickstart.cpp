// Quickstart: the paper's running example (figures 2-4) on a single broker
// summary — build two subscriptions, dissolve them into AACS/SACS summary
// structures, and match the figure-2 stock event with Algorithm 1.
//
//   ./quickstart
#include <iostream>

#include "core/matcher.h"
#include "core/summary.h"
#include "workload/stock_schema.h"

int main() {
  using namespace subsum;
  using model::Op;

  const model::Schema schema = workload::stock_schema();

  // Subscription 1 (fig 3): exchange ends in "SE", symbol = OTE,
  // 8.30 < price < 8.70. Note the two conjunctive constraints on price.
  const auto s1 = model::SubscriptionBuilder(schema)
                      .where("exchange", Op::kSuffix, "SE")
                      .where("symbol", Op::kEq, "OTE")
                      .where("price", Op::kGt, 8.30)
                      .where("price", Op::kLt, 8.70)
                      .build();

  // Subscription 2 (fig 3): symbol starts with OT, price = 8.20,
  // volume > 130000, low < 8.05.
  const auto s2 = model::SubscriptionBuilder(schema)
                      .where("symbol", Op::kPrefix, "OT")
                      .where("price", Op::kEq, 8.20)
                      .where("volume", Op::kGt, int64_t{130000})
                      .where("low", Op::kLt, 8.05)
                      .build();

  // Dissolve both into a broker summary. There are no subscription objects
  // inside: only per-attribute AACS/SACS rows (the paper's key idea).
  core::BrokerSummary summary(schema);
  const model::SubId id1{/*broker=*/0, /*local=*/1, s1.mask()};
  const model::SubId id2{0, 2, s2.mask()};
  summary.add(s1, id1);
  summary.add(s2, id2);

  std::cout << "Summary structures after dissolving S1 and S2 (fig 4/5):\n"
            << summary.to_string() << "\n";

  // The figure-2 event.
  const auto event = model::EventBuilder(schema)
                         .set("exchange", "NYSE")
                         .set("symbol", "OTE")
                         .set("when", int64_t{1057057525})
                         .set("price", 8.40)
                         .set("volume", int64_t{132700})
                         .set("high", 8.80)
                         .set("low", 8.22)
                         .build();
  std::cout << "Event: " << event.to_string(schema) << "\n\n";

  core::MatchDiag diag;
  const auto matched = core::match(summary, event, &diag);

  std::cout << "Algorithm 1 collected " << diag.ids_collected
            << " ids over " << diag.attrs_satisfied << " satisfied attributes ("
            << diag.unique_ids << " unique subscriptions)\n";
  for (const auto& id : matched) {
    std::cout << "matched: " << id.to_string() << " (c3 declares " << id.attr_count()
              << " attributes)\n";
  }
  // The paper's §3.3 worked example: S1 matches, S2 does not (its counter
  // reaches 2 of the 4 attributes c3 declares).
  return matched == std::vector<model::SubId>{id1} ? 0 : 1;
}
