// Stock ticker over the 24-node ISP backbone, in process.
//
// A full SimSystem run: traders attach subscriptions at brokers across the
// overlay, a periodic propagation spreads the merged summaries (Algorithm 2),
// and ticker events published at random brokers are routed with the BROCLI
// walk (Algorithm 3). Prints the message-accounting ledger at the end —
// the same counters the paper's figures are built from.
//
//   ./stock_ticker
#include <iostream>

#include "overlay/topologies.h"
#include "sim/system.h"
#include "stats/stats.h"
#include "util/rng.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

int main() {
  using namespace subsum;
  using model::Op;

  sim::SystemConfig cfg;
  cfg.schema = workload::stock_schema();
  cfg.graph = overlay::cable_wireless_24();
  cfg.arith_mode = core::AacsMode::kCoarse;  // the paper's AACS rule
  cfg.numeric_width = 4;                     // the paper's sst = 4 bytes
  sim::SimSystem sys(std::move(cfg));
  const auto& names = overlay::cable_wireless_24_names();

  // Traders: 40 subscriptions per broker per period, three periods.
  workload::SubGenParams sp;
  sp.subsumption = 0.5;
  workload::SubscriptionGenerator gen(sys.schema(), sp, 7);
  util::Rng rng(8);
  size_t subs = 0;
  for (int period = 0; period < 3; ++period) {
    for (overlay::BrokerId b = 0; b < sys.broker_count(); ++b) {
      for (int i = 0; i < 40; ++i) {
        sys.subscribe(b, gen.next());
        ++subs;
      }
    }
    const auto trace = sys.run_propagation_period();
    std::cout << "period " << period + 1 << ": propagated " << subs
              << " total subscriptions in " << trace.hops() << " summary messages ("
              << trace.total_bytes() << " bytes)\n";
  }

  // A specific trader watching OTE on the NYSE from Boston.
  const auto boston = static_cast<overlay::BrokerId>(23);
  const auto watch = model::SubscriptionBuilder(sys.schema())
                         .where("symbol", Op::kEq, "symbol-7")
                         .where("price", Op::kGe, 5100.0)
                         .where("price", Op::kLe, 5150.0)
                         .build();
  const auto watch_id = sys.subscribe(boston, watch);
  sys.run_propagation_period();

  // Publish a tick from Seattle that hits the watch.
  const auto tick = model::EventBuilder(sys.schema())
                        .set("symbol", "symbol-7")
                        .set("price", 5120.0)
                        .set("volume", int64_t{250000})
                        .build();
  const auto out = sys.publish(/*Seattle*/ 0, tick);
  std::cout << "\ntick " << tick.to_string(sys.schema()) << " published at "
            << names[0] << ":\n  walk:";
  for (const auto b : out.route.visited) std::cout << " " << names[b];
  std::cout << "\n  " << out.route.forward_hops << " forwards + "
            << out.route.delivery_hops << " deliveries\n";
  for (const auto& id : out.delivered) {
    std::cout << "  delivered " << id.to_string() << " at " << names[id.broker] << "\n";
  }

  // Random market traffic.
  workload::EventGenerator egen(sys.schema(), gen.pools(), {}, 9);
  stats::Series hops, delivered;
  for (int i = 0; i < 2000; ++i) {
    const auto origin = static_cast<overlay::BrokerId>(rng.below(sys.broker_count()));
    const auto res = sys.publish(origin, egen.next());
    hops.add(static_cast<double>(res.route.total_hops()));
    delivered.add(static_cast<double>(res.delivered.size()));
  }
  std::cout << "\n2000 random ticks: mean " << stats::fmt(hops.mean())
            << " hops/event, mean " << stats::fmt(delivered.mean())
            << " deliveries/event\n";

  std::cout << "\nmessage ledger:\n" << sys.accounting().to_string();
  const bool ok = out.delivered == std::vector<model::SubId>{watch_id};
  std::cout << (ok ? "watch delivered exactly once: OK\n" : "watch delivery FAILED\n");
  return ok ? 0 : 1;
}
