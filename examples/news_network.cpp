// A real distributed deployment: 13 broker daemons (the paper's figure-7
// overlay) on loopback TCP, talking the subsum wire protocol. Newsroom
// clients subscribe by sector/prefix; a wire-service client publishes.
//
// Everything here crosses real sockets: subscriptions, the clocked
// Algorithm-2 summary rounds, the BROCLI event walk, owner deliveries, and
// client notifications.
//
//   ./news_network
#include <chrono>
#include <iostream>

#include "net/cluster.h"
#include "overlay/topologies.h"
#include "workload/stock_schema.h"

int main() {
  using namespace subsum;
  using namespace std::chrono_literals;
  using model::Op;

  const model::Schema schema = workload::stock_schema();
  net::Cluster cluster(schema, overlay::fig7_tree());
  std::cout << "13 brokers listening; e.g. broker 0 on 127.0.0.1:"
            << cluster.port_of(0) << "\n";

  // Newsrooms at the paper's example brokers 4, 8 and 13 (nodes 3, 7, 12).
  auto tech_desk = cluster.connect(3);
  auto energy_desk = cluster.connect(7);
  auto markets_desk = cluster.connect(12);

  const auto tech = tech_desk->subscribe(model::SubscriptionBuilder(schema)
                                             .where("sector", Op::kEq, "tech")
                                             .build());
  const auto energy = energy_desk->subscribe(model::SubscriptionBuilder(schema)
                                                 .where("sector", Op::kEq, "energy")
                                                 .where("price", Op::kGt, 100.0)
                                                 .build());
  const auto any_otc = markets_desk->subscribe(model::SubscriptionBuilder(schema)
                                                   .where("exchange", Op::kPrefix, "OTC")
                                                   .build());
  std::cout << "subscribed: tech=" << tech.to_string() << " energy=" << energy.to_string()
            << " otc=" << any_otc.to_string() << "\n";

  // Clock one propagation period across the live daemons.
  cluster.run_propagation_period();
  std::cout << "propagation period complete; broker 5 (node 4) now merges "
            << cluster.node(4).snapshot().merged_brokers << " brokers\n";

  // The wire service publishes from broker 1 (node 0).
  auto wire_service = cluster.connect(0);
  wire_service->publish(model::EventBuilder(schema)
                            .set("sector", "tech")
                            .set("exchange", "OTC-PINK")
                            .set("symbol", "ACME")
                            .set("price", 12.5)
                            .build());
  wire_service->publish(model::EventBuilder(schema)
                            .set("sector", "energy")
                            .set("exchange", "NYSE")
                            .set("symbol", "OIL")
                            .set("price", 140.0)
                            .build());
  wire_service->publish(model::EventBuilder(schema)
                            .set("sector", "energy")
                            .set("exchange", "NYSE")
                            .set("symbol", "GAS")
                            .set("price", 80.0)  // fails energy's price filter
                            .build());

  int ok = 0;
  if (auto n = tech_desk->next_notification(2000ms)) {
    std::cout << "tech desk got " << n->event.to_string(schema) << "\n";
    ++ok;
  }
  if (auto n = markets_desk->next_notification(2000ms)) {
    std::cout << "markets desk got " << n->event.to_string(schema) << "\n";
    ++ok;
  }
  if (auto n = energy_desk->next_notification(2000ms)) {
    std::cout << "energy desk got " << n->event.to_string(schema) << "\n";
    ++ok;
  }
  // The 80-dollar event must reach nobody.
  if (energy_desk->next_notification(200ms)) {
    std::cout << "unexpected extra delivery!\n";
    return 1;
  }

  std::cout << (ok == 3 ? "all three desks notified exactly once: OK\n"
                        : "missing notifications\n");
  return ok == 3 ? 0 : 1;
}
