// Overload-governor bench (net/governor.h): admission, degradation-ladder,
// and circuit-breaker behavior under a simulated publish storm, plus a
// small live-broker smoke with a stalled consumer.
//
// The gate this feeds (tools/check_bench.py "overload"): the simulated
// sections drive the governor with EXPLICIT timestamps and a synthetic
// fan-out model, so every admission count, shed count, peak byte, and
// breaker transition is exact arithmetic — those metrics are gated tight.
// The two invariants that must never drift: `*.control_sheds` stays 0
// (control-plane traffic is never shed at any rung) and `*.budget_ok`
// stays 1 (accounted bytes never exceed the memory budget). The live
// section runs a real broker with a real stalled socket; its wall-clock
// metric gets a wide band in CI (machine speed), while its delivery count
// stays tight (a healthy consumer must receive every event of the storm).
#include <chrono>
#include <cstdint>
#include <deque>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "net/cluster.h"
#include "net/governor.h"
#include "obs/metrics.h"
#include "overlay/topologies.h"
#include "stats/stats.h"
#include "util/bytes.h"
#include "workload/stock_schema.h"

namespace {

using namespace subsum;
using namespace std::chrono_literals;

// --- 1. admission schedule ---------------------------------------------------
// Offered load 2x the configured rate: the token bucket must admit exactly
// burst + rate * window and stamp exact refill hints on every refusal.
void bench_admission(stats::Table& table, bench::JsonReport& report) {
  constexpr uint64_t kRate = 1000, kBurst = 100;
  constexpr uint64_t kOffered = 3000;
  constexpr uint64_t kSpacingUs = 500;  // 2000 offers/s against 1000/s
  net::TokenBucket bucket(kRate, kBurst);
  uint64_t admitted = 0, rejected = 0, max_retry_ms = 0;
  for (uint64_t i = 0; i < kOffered; ++i) {
    uint64_t retry_ms = 0;
    if (bucket.try_acquire(i * kSpacingUs, &retry_ms)) {
      ++admitted;
    } else {
      ++rejected;
      if (retry_ms > max_retry_ms) max_retry_ms = retry_ms;
    }
  }
  table.row({"admission", std::to_string(kOffered), std::to_string(admitted),
             std::to_string(rejected), std::to_string(max_retry_ms) + "ms max hint"});
  report.metric("admission.offered", static_cast<double>(kOffered));
  report.metric("admission.admitted", static_cast<double>(admitted));
  report.metric("admission.rejected", static_cast<double>(rejected));
  report.metric("admission.max_retry_ms", static_cast<double>(max_retry_ms));
}

// --- 2. degradation ladder under a fan-out storm -----------------------------
// Synthetic broker: 4 subscriber queues (one permanently stalled), a
// redelivery buffer for a down peer, and per-event probe/trace work — all
// pushed through the real Governor's budget accounting and shed gates.
void bench_ladder(stats::Table& table, bench::JsonReport& report, size_t scale) {
  net::GovernorConfig cfg;
  cfg.memory_budget_bytes = 1u << 20;       // 1 MiB global budget
  cfg.conn_queue_max_bytes = 256u << 10;    // per-connection drop-oldest cap
  obs::MetricsRegistry m;
  net::Governor gov(cfg, /*peers=*/0, m);
  using Shed = net::Governor::Shed;

  constexpr size_t kConsumers = 4;          // consumer 0 never drains
  constexpr size_t kFrameBytes = 8u << 10;
  constexpr size_t kRedeliveryCap = 640u << 10;
  const size_t frames = 300 * scale;

  struct Queue {
    std::deque<size_t> q;
    size_t bytes = 0;
  };
  std::vector<Queue> queues(kConsumers);
  std::deque<size_t> redelivery;
  size_t redelivery_bytes = 0;
  uint64_t dropped = 0;
  int max_rung = 0;

  for (size_t e = 0; e < frames; ++e) {
    // The per-event observability work the broker sheds first.
    if (gov.shedding(Shed::kProbe)) gov.count_shed(Shed::kProbe);
    if (gov.shedding(Shed::kTrace)) gov.count_shed(Shed::kTrace);
    // One redelivery queued for a down peer, budget-capped drop-front.
    if (gov.shedding(Shed::kRedelivery)) {
      gov.count_shed(Shed::kRedelivery);
    } else {
      redelivery.push_back(kFrameBytes);
      redelivery_bytes += kFrameBytes;
      gov.add_usage(kFrameBytes);
      while (redelivery_bytes > kRedeliveryCap) {
        redelivery_bytes -= redelivery.front();
        gov.sub_usage(redelivery.front());
        redelivery.pop_front();
      }
    }
    // Fan the event out; drop-oldest on the stalled consumer's full queue.
    for (auto& qu : queues) {
      while (qu.bytes + kFrameBytes > cfg.conn_queue_max_bytes) {
        qu.bytes -= qu.q.front();
        gov.sub_usage(qu.q.front());
        qu.q.pop_front();
        gov.count_shed(Shed::kNotify);
        ++dropped;
      }
      qu.q.push_back(kFrameBytes);
      qu.bytes += kFrameBytes;
      gov.add_usage(kFrameBytes);
    }
    // Healthy consumers drain between events; consumer 0 is stalled.
    for (size_t c = 1; c < kConsumers; ++c) {
      while (!queues[c].q.empty()) {
        queues[c].bytes -= queues[c].q.front();
        gov.sub_usage(queues[c].q.front());
        queues[c].q.pop_front();
      }
    }
    if (gov.rung() > max_rung) max_rung = gov.rung();
  }

  const bool budget_ok = gov.peak_usage() <= cfg.memory_budget_bytes;
  table.row({"ladder storm", std::to_string(frames) + " ev",
             std::to_string(gov.peak_usage()) + " B peak",
             "rung<=" + std::to_string(max_rung),
             std::to_string(dropped) + " dropped"});
  report.metric("ladder.frames", static_cast<double>(frames));
  report.metric("ladder.peak_usage_bytes", static_cast<double>(gov.peak_usage()));
  report.metric("ladder.max_rung", static_cast<double>(max_rung));
  report.metric("ladder.budget_ok", budget_ok ? 1.0 : 0.0);
  report.metric("ladder.dropped_frames", static_cast<double>(dropped));
  report.metric("shed.probe", static_cast<double>(gov.shed_count(Shed::kProbe)));
  report.metric("shed.trace", static_cast<double>(gov.shed_count(Shed::kTrace)));
  report.metric("shed.redelivery",
                static_cast<double>(gov.shed_count(Shed::kRedelivery)));
  report.metric("shed.notify", static_cast<double>(gov.shed_count(Shed::kNotify)));
  report.metric("ladder.control_sheds",
                static_cast<double>(gov.shed_count(Shed::kControl)));
}

// --- 3. circuit-breaker schedule ---------------------------------------------
// A peer down for 500ms, RPCs attempted every 10ms: the breaker opens after
// 4 terminal failures, fails fast through each cooldown, burns one probe
// per cooldown, and recloses on the first probe after the peer returns.
void bench_breaker(stats::Table& table, bench::JsonReport& report) {
  net::CircuitBreaker br(/*open_after=*/4, /*cooldown=*/150ms);
  constexpr uint64_t kDownUntilUs = 500'000;
  uint64_t fastfails = 0, probe_failures = 0, attempts = 0;
  uint64_t reclose_us = 0;
  for (uint64_t t = 0; t <= 1'000'000; t += 10'000) {
    if (!br.allow(t)) {
      ++fastfails;
      continue;
    }
    ++attempts;
    const bool was_half_open = br.state() == net::CircuitBreaker::State::kHalfOpen;
    if (t < kDownUntilUs) {
      br.on_failure(t);
      if (was_half_open) ++probe_failures;
    } else {
      br.on_success();
      if (reclose_us == 0) reclose_us = t;
      break;
    }
  }
  table.row({"breaker", std::to_string(attempts) + " attempts",
             std::to_string(fastfails) + " fast-fails",
             std::to_string(probe_failures) + " failed probes",
             "reclosed @" + std::to_string(reclose_us / 1000) + "ms"});
  report.metric("breaker.fastfails", static_cast<double>(fastfails));
  report.metric("breaker.probe_failures", static_cast<double>(probe_failures));
  report.metric("breaker.reclose_ms", static_cast<double>(reclose_us / 1000));
}

// --- 4. live smoke: real broker, stalled consumer ----------------------------
// One broker, one healthy subscriber, one raw socket that subscribes and
// never reads again. The healthy subscriber must receive the whole storm;
// control traffic is never shed and the budget holds. Only wall_ms is
// machine-dependent (wide band in CI).
void bench_live(stats::Table& table, bench::JsonReport& report) {
  using model::EventBuilder;
  using model::Op;
  using model::SubscriptionBuilder;
  const auto s = workload::stock_schema();
  net::RpcPolicy rpc;
  rpc.connect_timeout = 500ms;
  rpc.io_timeout = 2000ms;
  net::Cluster cluster(s, overlay::Graph(1), core::GeneralizePolicy::kSafe, rpc, {},
                       [](net::BrokerConfig& cfg) {
                         cfg.governor.conn_queue_max_bytes = 1u << 20;
                         cfg.governor.write_stall_timeout = 500ms;
                       });

  net::Socket stalled = net::connect_local(cluster.port_of(0));
  {
    util::BufWriter w;
    net::put_subscription(
        w, SubscriptionBuilder(s).where("symbol", Op::kEq, "storm").build());
    w.put_varint(0);  // permanent
    net::send_frame(stalled, net::MsgKind::kSubscribe, w.bytes());
    (void)net::recv_frame(stalled);  // ack; then never read again
  }
  auto healthy = cluster.connect(0);
  healthy->subscribe(SubscriptionBuilder(s).where("symbol", Op::kEq, "storm").build());
  auto publisher = cluster.connect(0);

  constexpr int kEvents = 40;
  const std::string blob(8u << 10, 'b');
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvents; ++i) {
    publisher->publish(EventBuilder(s)
                           .set("symbol", "storm")
                           .set("exchange", blob)
                           .set("volume", int64_t{i})
                           .build());
  }
  int received = 0;
  while (received < kEvents) {
    const auto note = healthy->next_notification(received == 0 ? 5000ms : 2000ms);
    if (!note.has_value()) break;
    ++received;
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();

  const net::Governor& gov = cluster.node(0).governor();
  const bool budget_ok = gov.peak_usage() <= gov.config().memory_budget_bytes;
  table.row({"live storm", std::to_string(kEvents) + " ev",
             std::to_string(received) + " received",
             budget_ok ? "budget ok" : "BUDGET BLOWN",
             stats::fmt(wall_ms) + "ms"});
  report.metric("live.events", static_cast<double>(kEvents));
  report.metric("live.healthy_received", static_cast<double>(received));
  report.metric("live.budget_ok", budget_ok ? 1.0 : 0.0);
  report.metric("live.control_sheds",
                static_cast<double>(gov.shed_count(net::Governor::Shed::kControl)));
  report.metric("live.wall_ms", wall_ms);
}

}  // namespace

int main() {
  const size_t scale = bench::bench_scale();
  std::cout << "Overload governor: admission, ladder, breaker, live storm\n\n";
  stats::Table table({"section", "volume", "outcome", "policy", "detail"});
  bench::JsonReport report("overload");
  report.meta("unit", "admissions / shed counts / bytes (wall_ms: live only)");
  report.meta("scale", static_cast<double>(scale));

  bench_admission(table, report);
  bench_ladder(table, report, scale);
  bench_breaker(table, report);
  bench_live(table, report);

  table.print(std::cout);
  report.write();
  std::cout << "\npaper check: overload sheds observability before data and data "
               "before control; accounted bytes never exceed the budget\n";
  return 0;
}
