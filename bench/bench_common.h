// Shared setup for the evaluation benches: the paper's table-2 parameters
// on the 24-node backbone topology, plus helpers to build per-broker delta
// summaries from the workload generators.
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "core/serialize.h"
#include "core/summary.h"
#include "model/sub_id.h"
#include "overlay/topologies.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace subsum::bench {

/// Table 2 of the paper.
struct PaperParams {
  size_t brokers = 24;           // C&W backbone scale
  size_t outstanding = 1000;     // S
  size_t avg_sub_bytes = 50;     // average subscription/event size
  size_t sst = 4, sid = 4, ssv = 10;
};

/// Environment-tunable scale factor so `bench_*` binaries stay quick by
/// default but can reproduce the paper's full volumes
/// (SUBSUM_BENCH_SCALE=10 multiplies event/subscription counts).
inline size_t bench_scale() {
  if (const char* s = std::getenv("SUBSUM_BENCH_SCALE")) {
    const long v = std::atol(s);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 1;
}

/// The wire configuration matching the paper's sid = 4 bytes at 24 brokers
/// (5 + 10 + 10 = 25 bits) and sst = 4 bytes.
inline core::WireConfig paper_wire(const model::Schema& schema, size_t brokers,
                                   uint64_t max_subs = 1000) {
  return {model::SubIdCodec(static_cast<uint32_t>(brokers), max_subs, schema.attr_count()),
          4};
}

/// Per-broker delta summaries: sigma subscriptions each, drawn with the
/// given subsumption probability (paper §5.2 workload; AacsMode::kCoarse is
/// the paper's structure).
inline std::vector<core::BrokerSummary> delta_summaries(
    const model::Schema& schema, size_t brokers, size_t sigma, double subsumption,
    uint64_t seed, core::AacsMode mode = core::AacsMode::kCoarse) {
  workload::SubGenParams sp;
  sp.subsumption = subsumption;
  workload::SubscriptionGenerator gen(schema, sp, seed);
  std::vector<core::BrokerSummary> out;
  out.reserve(brokers);
  for (size_t b = 0; b < brokers; ++b) {
    core::BrokerSummary summary(schema, core::GeneralizePolicy::kSafe, mode);
    for (size_t i = 0; i < sigma; ++i) {
      const auto sub = gen.next();
      summary.add(sub, model::SubId{static_cast<model::BrokerId>(b),
                                    static_cast<uint32_t>(i), sub.mask()});
    }
    out.push_back(std::move(summary));
  }
  return out;
}

}  // namespace subsum::bench
