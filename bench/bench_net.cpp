// End-to-end throughput of the real TCP broker network (not a paper
// figure; the deployment-sanity numbers a production repo ships with):
// subscribe ops/s, propagation period latency, and publish->deliver
// round-trips/s on the figure-7 and 24-node overlays.
#include <chrono>
#include <iostream>

#include "net/cluster.h"
#include "overlay/topologies.h"
#include "stats/stats.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

using namespace subsum;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void run(const char* name, const overlay::Graph& g) {
  const auto schema = workload::stock_schema();
  net::Cluster cluster(schema, g);

  workload::SubGenParams sp;
  sp.subsumption = 0.5;
  workload::SubscriptionGenerator gen(schema, sp, 7);

  // Subscribe throughput (single client, synchronous acks).
  auto client = cluster.connect(0);
  const int n_subs = 400;
  auto t0 = Clock::now();
  for (int i = 0; i < n_subs; ++i) client->subscribe(gen.next());
  const double sub_rate = n_subs / seconds_since(t0);

  // Propagation period latency (all Algorithm-2 rounds, clocked).
  t0 = Clock::now();
  cluster.run_propagation_period();
  const double prop_ms = seconds_since(t0) * 1e3;

  // Publish->fully-delivered round trips (the ack returns after the whole
  // BROCLI walk and all owner deliveries).
  auto subscriber = cluster.connect(static_cast<overlay::BrokerId>(g.size() - 1));
  subscriber->subscribe(model::SubscriptionBuilder(schema)
                            .where("symbol", model::Op::kEq, "bench")
                            .build());
  cluster.run_propagation_period();
  const int n_events = 300;
  t0 = Clock::now();
  for (int i = 0; i < n_events; ++i) {
    client->publish(model::EventBuilder(schema)
                        .set("symbol", "bench")
                        .set("volume", int64_t{i})
                        .build());
  }
  const double pub_rate = n_events / seconds_since(t0);
  size_t notes = 0;
  while (subscriber->next_notification(std::chrono::milliseconds(200))) ++notes;

  stats::Table t({"metric", "value"});
  t.row({"subscribe ops/s", stats::fmt(sub_rate)});
  t.row({"propagation period (ms)", stats::fmt(prop_ms)});
  t.row({"publish round-trips/s", stats::fmt(pub_rate)});
  t.row({"notifications delivered", std::to_string(notes) + " / " + std::to_string(n_events)});
  std::cout << name << " (" << g.size() << " live TCP brokers)\n";
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Real-network throughput (loopback TCP, synchronous end-to-end "
               "publishes)\n\n";
  run("fig-7 tree", overlay::fig7_tree());
  run("cw-24 backbone", overlay::cable_wireless_24());
  return 0;
}
