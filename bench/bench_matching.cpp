// §5.2.4 computational demands: matching cost per event as the number of
// outstanding subscriptions N grows. The paper argues T1 + T2 is O(N) with
// small constants thanks to the summarized, generalized attributes; the
// comparison point is a per-subscription scan (the classic approach).
//
// google-benchmark binary; also reports the step-1 diagnostics (ids
// collected = the paper's P) as counters.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "core/batch_matcher.h"
#include "core/matcher.h"
#include "obs/flight_recorder.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "stats/stats.h"
#include "util/thread_pool.h"
#include "workload/event_gen.h"

namespace {

using namespace subsum;

struct Fixture {
  model::Schema schema = workload::stock_schema();
  core::BrokerSummary summary;
  std::vector<model::Event> events;

  explicit Fixture(size_t n, double subsumption) {
    workload::SubGenParams sp;
    sp.subsumption = subsumption;
    workload::SubscriptionGenerator gen(schema, sp, n * 7 + 1);
    summary = core::BrokerSummary(schema, core::GeneralizePolicy::kSafe,
                                  core::AacsMode::kCoarse);
    for (uint32_t i = 0; i < n; ++i) {
      auto sub = gen.next();
      summary.add(sub, model::SubId{0, i, sub.mask()});
    }
    workload::EventGenerator egen(schema, gen.pools(), {}, n * 7 + 2);
    for (int i = 0; i < 256; ++i) events.push_back(egen.next());
  }
};

// The naive per-subscription scan stores whole subscriptions (~100x the
// summary's footprint), so it lives in its own lazily-built fixture and is
// only benchmarked up to N=100k; the summary fixtures stay viable at N=1M.
struct NaiveFixture {
  core::NaiveMatcher naive;

  NaiveFixture(const model::Schema& schema, size_t n, double subsumption) {
    workload::SubGenParams sp;
    sp.subsumption = subsumption;
    workload::SubscriptionGenerator gen(schema, sp, n * 7 + 1);
    for (uint32_t i = 0; i < n; ++i) {
      auto sub = gen.next();
      const model::SubId id{0, i, sub.mask()};
      naive.add({id, std::move(sub)});
    }
  }
};

Fixture& fixture_for(size_t n, double subsumption) {
  // One fixture per (n, subsumption); benchmarks run single-threaded.
  static std::map<std::pair<size_t, int>, std::unique_ptr<Fixture>> cache;
  auto key = std::make_pair(n, static_cast<int>(subsumption * 100));
  auto& slot = cache[key];
  if (!slot) slot = std::make_unique<Fixture>(n, subsumption);
  return *slot;
}

NaiveFixture& naive_fixture_for(size_t n, double subsumption) {
  static std::map<std::pair<size_t, int>, std::unique_ptr<NaiveFixture>> cache;
  auto key = std::make_pair(n, static_cast<int>(subsumption * 100));
  auto& slot = cache[key];
  if (!slot) {
    slot = std::make_unique<NaiveFixture>(fixture_for(n, subsumption).schema, n, subsumption);
  }
  return *slot;
}

void BM_SummaryMatch(benchmark::State& state) {
  auto& f = fixture_for(static_cast<size_t>(state.range(0)),
                        static_cast<double>(state.range(1)) / 100.0);
  size_t i = 0;
  size_t collected = 0, matched = 0, events_run = 0;
  for (auto _ : state) {
    core::MatchDiag diag;
    auto m = core::match(f.summary, f.events[i++ % f.events.size()], &diag);
    benchmark::DoNotOptimize(m);
    collected += diag.ids_collected;
    matched += m.size();
    ++events_run;
  }
  state.counters["P_ids_collected"] =
      benchmark::Counter(static_cast<double>(collected) / events_run);
  state.counters["matched"] = benchmark::Counter(static_cast<double>(matched) / events_run);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// The engine through a reused caller-owned scratch: the steady-state
// allocation-free path BatchMatcher and publish_batch run on.
void BM_SummaryMatchScratch(benchmark::State& state) {
  auto& f = fixture_for(static_cast<size_t>(state.range(0)),
                        static_cast<double>(state.range(1)) / 100.0);
  core::MatchScratch scratch;
  size_t i = 0;
  for (auto _ : state) {
    auto m = core::match_into(f.summary, f.events[i++ % f.events.size()], scratch);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// The classic engine only (dense / scan / heap over the live AACS/SACS),
// frozen index forced out of the path: the comparison point the frozen
// rows are measured against.
void BM_SummaryMatchClassic(benchmark::State& state) {
  auto& f = fixture_for(static_cast<size_t>(state.range(0)),
                        static_cast<double>(state.range(1)) / 100.0);
  core::MatchScratch scratch;
  size_t i = 0;
  for (auto _ : state) {
    auto m = core::match_into_unindexed(f.summary, f.events[i++ % f.events.size()], scratch);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// The frozen index with the row-combination cache bypassed: every event
// pays the full collect + sharded counter sweep. This is the honest
// per-event cost when the event stream never repeats a row combination.
void BM_SummaryMatchFrozenCold(benchmark::State& state) {
  auto& f = fixture_for(static_cast<size_t>(state.range(0)),
                        static_cast<double>(state.range(1)) / 100.0);
  if (!f.summary.frozen_for_match()) {
    state.SkipWithError("frozen index not engaged at this N");
    return;
  }
  core::MatchScratch scratch;
  scratch.use_combo_cache = false;
  size_t i = 0;
  for (auto _ : state) {
    auto m = core::match_into(f.summary, f.events[i++ % f.events.size()], scratch);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// The pre-optimization implementation, kept for the perf trajectory.
void BM_SummaryMatchReference(benchmark::State& state) {
  auto& f = fixture_for(static_cast<size_t>(state.range(0)),
                        static_cast<double>(state.range(1)) / 100.0);
  size_t i = 0;
  for (auto _ : state) {
    auto m = core::match_reference(f.summary, f.events[i++ % f.events.size()]);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// Batched throughput: events/sec over a 256-event batch, sharded across a
// fixed-size pool (threads = arg 2). items_processed counts events.
void BM_BatchMatch(benchmark::State& state) {
  auto& f = fixture_for(static_cast<size_t>(state.range(0)),
                        static_cast<double>(state.range(1)) / 100.0);
  util::ThreadPool pool(static_cast<size_t>(state.range(2)));
  core::BatchMatcher matcher(pool);
  std::vector<std::vector<model::SubId>> results;
  for (auto _ : state) {
    matcher.match_batch(f.summary, f.events, results);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * f.events.size()));
}

// Telemetry-overhead guard: the scratch path plus exactly the
// instrumentation BrokerNode::walk_step wraps around it — a now_us()
// timing pair feeding an exemplar-retaining log2-bucket histogram plus
// the labeled stage histogram (both observe_ex with a live trace id), one
// pre-registered counter handle, and a flight-recorder breadcrumb at the
// cadence of a governor edge (1 per 4096 matches, far above real rates).
// Compare against BM_SummaryMatchScratch in a default build, and against
// the same binary built with -DSUBSUM_NO_TELEMETRY=ON (where all of it
// compiles out); the delta budget is <3%. The profiler is armed-but-idle
// here (thread registered, no start()) — registration is the broker's
// steady state, so the <3% budget includes it; bench_profile measures the
// actively-sampling cost separately.
void BM_SummaryMatchTelemetry(benchmark::State& state) {
  auto& f = fixture_for(static_cast<size_t>(state.range(0)),
                        static_cast<double>(state.range(1)) / 100.0);
  obs::Profiler::register_thread(obs::ThreadRole::kMain);
  core::MatchScratch scratch;
  obs::MetricsRegistry metrics;
  obs::Histogram* hist = metrics.histogram_ex("subsum_match_latency_us");
  obs::StageSet stages(metrics);
  obs::FlightRecorder flight(0, 1024);
  stats::Counters counters;
  stats::Counters::Handle* matched = counters.handle("events_matched");
  size_t i = 0;
  for (auto _ : state) {
    const uint64_t trace = obs::mint_trace_id(0, i, 42);
    const uint64_t t0 = obs::now_us();
    auto m = core::match_into(f.summary, f.events[i++ % f.events.size()], scratch);
    const uint64_t dt = obs::now_us() - t0;
    hist->observe_ex(dt, trace);
    stages.observe(obs::Stage::kMatch, dt, trace);
    matched->inc(m.size());
    if ((i & 0xfff) == 0) {
      flight.record(obs::FrKind::kRungChange, 0, 1, i, trace);
    }
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_NaiveMatch(benchmark::State& state) {
  auto& f = fixture_for(static_cast<size_t>(state.range(0)),
                        static_cast<double>(state.range(1)) / 100.0);
  auto& nf = naive_fixture_for(static_cast<size_t>(state.range(0)),
                               static_cast<double>(state.range(1)) / 100.0);
  size_t i = 0;
  for (auto _ : state) {
    auto m = nf.naive.match(f.events[i++ % f.events.size()]);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_SummaryInsert(benchmark::State& state) {
  const auto schema = workload::stock_schema();
  workload::SubGenParams sp;
  sp.subsumption = static_cast<double>(state.range(0)) / 100.0;
  workload::SubscriptionGenerator gen(schema, sp, 11);
  core::BrokerSummary summary(schema, core::GeneralizePolicy::kSafe,
                              core::AacsMode::kCoarse);
  uint32_t i = 0;
  for (auto _ : state) {
    const auto sub = gen.next();
    summary.add(sub, model::SubId{0, i++, sub.mask()});
    if (i % 200000 == 0) summary.clear();  // bound structure growth
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK(BM_SummaryMatch)
    ->ArgsProduct({{100, 1000, 10000, 100000}, {10, 90}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SummaryMatchScratch)
    ->ArgsProduct({{100, 1000, 10000, 100000, 1000000}, {10, 90}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SummaryMatchClassic)
    ->ArgsProduct({{100000, 1000000}, {10, 90}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SummaryMatchFrozenCold)
    ->ArgsProduct({{100000, 1000000}, {10, 90}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SummaryMatchReference)
    ->ArgsProduct({{100, 1000, 10000, 100000, 1000000}, {10, 90}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SummaryMatchTelemetry)
    ->ArgsProduct({{100, 1000, 10000, 100000}, {10, 90}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BatchMatch)
    ->ArgsProduct({{10000, 100000}, {10, 90}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_NaiveMatch)
    ->ArgsProduct({{100, 1000, 10000, 100000}, {10, 90}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SummaryInsert)->Arg(10)->Arg(90)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
