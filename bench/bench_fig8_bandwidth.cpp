// Figure 8: total network bandwidth for subscription propagation vs σ
// (new subscriptions per broker per period), log scale in the paper.
//
// Curves: Subscription Broadcast (baseline), Siena at 10% / 90% subsumption
// (probabilistic model of §5.2), Subscription Summary at 10% / 90%
// (real summaries propagated by Algorithm 2, real serialized bytes).
//
// Expected shape (paper §5.2.1): broadcast worst by orders of magnitude;
// summaries beat Siena by ~4-8x at the same subsumption probability; our
// curves are comparatively flat in σ.
#include <iostream>

#include "baseline/broadcast.h"
#include "bench_common.h"
#include "bench_report.h"
#include "routing/propagation.h"
#include "siena/siena_network.h"
#include "stats/stats.h"
#include "util/rng.h"

int main() {
  using namespace subsum;
  const bench::PaperParams pp;
  const auto schema = workload::stock_schema();
  const auto g = overlay::cable_wireless_24();
  const auto wire = bench::paper_wire(schema, g.size());

  std::cout << "Figure 8: bandwidth (bytes) for subscription propagation, "
               "24-broker backbone, one period\n\n";
  const std::vector<std::string> cols = {"broadcast",   "siena@10%",
                                         "summary@10%", "siena@90%",
                                         "summary@90%", "siena/summary@10%",
                                         "siena/summary@90%"};
  stats::Table table({"sigma", "broadcast", "siena@10%", "summary@10%", "siena@90%",
                      "summary@90%", "siena/summary@10%", "siena/summary@90%"});
  bench::JsonReport report("fig8");
  report.meta("brokers", static_cast<double>(g.size()));
  report.meta("unit", "bytes per propagation period");

  for (size_t sigma : {10u, 50u, 100u, 250u, 500u, 1000u}) {
    const double broadcast = baseline::broadcast_bandwidth_formula(
        g, {sigma, pp.avg_sub_bytes});

    auto siena_bytes = [&](double p) {
      // Average a few model runs for stability.
      stats::Series s;
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        util::Rng rng(seed * 97 + sigma);
        s.add(static_cast<double>(
            siena::propagate_model(g, sigma, {p, pp.avg_sub_bytes}, rng).bytes));
      }
      return s.mean();
    };

    auto summary_bytes = [&](double p) {
      const auto own = bench::delta_summaries(schema, g.size(), sigma, p, 42 + sigma);
      return static_cast<double>(routing::propagate(g, own, wire).total_bytes());
    };

    const double s10 = siena_bytes(0.10), s90 = siena_bytes(0.90);
    const double m10 = summary_bytes(0.10), m90 = summary_bytes(0.90);
    table.rowf({static_cast<double>(sigma), broadcast, s10, m10, s90, m90, s10 / m10,
                s90 / m90});
    report.row("sigma_" + std::to_string(sigma), cols,
               {broadcast, s10, m10, s90, m90, s10 / m10, s90 / m90});
  }
  table.print(std::cout);
  report.write();
  std::cout << "\npaper check: broadcast orders of magnitude above both; "
               "siena/summary ratio in the 4-8x band; summary curves nearly flat\n";
  return 0;
}
