// Profiler-overhead bench (obs/profiler.h): what does the sampling CPU
// profiler cost a broker that is actually working? Three phases over the
// same matching loop — cold (never registered with the profiler), armed
// (thread registered, sampling stopped: the broker's steady state), and
// sampling at the default 97 Hz — each timed best-of-reps so scheduler
// noise shrinks instead of averaging in.
//
// The gate this feeds (tools/check_bench.py "profile", CI runs it with
// --abs-tol 5.0 against a 0.0 baseline): `overhead_pct` — the sustained
// throughput cost of 97 Hz sampling — must stay ≤5%, and
// `armed_idle_overhead_pct` ≤ the same band (its design budget is <3%,
// also guarded by BM_SummaryMatchTelemetry). `attributed_pct` keeps the
// folded stacks honest: ≥90% of captured samples must root at a named
// thread role or the flamegraph runbook is attributing noise.
//
// Under -DSUBSUM_NO_TELEMETRY the profiler refuses to start, both
// overheads measure the same bare loop, and attribution is reported as
// 100 (vacuous: zero samples, nothing misattributed) so the same baseline
// gates both builds.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "core/matcher.h"
#include "core/summary.h"
#include "obs/profiler.h"
#include "stats/stats.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"

namespace {

using namespace subsum;

struct Fixture {
  model::Schema schema = workload::stock_schema();
  core::BrokerSummary summary;
  std::vector<model::Event> events;

  explicit Fixture(size_t n) {
    workload::SubGenParams sp;
    sp.subsumption = 0.10;  // low subsumption: the expensive end of matching
    workload::SubscriptionGenerator gen(schema, sp, n * 7 + 1);
    summary = core::BrokerSummary(schema, core::GeneralizePolicy::kSafe,
                                  core::AacsMode::kCoarse);
    for (uint32_t i = 0; i < n; ++i) {
      auto sub = gen.next();
      summary.add(sub, model::SubId{0, i, sub.mask()});
    }
    workload::EventGenerator egen(schema, gen.pools(), {}, n * 7 + 2);
    for (int i = 0; i < 256; ++i) events.push_back(egen.next());
  }
};

/// Runs `iters` matches and returns the wall seconds for the fastest of
/// `reps` runs. The loop is the broker's per-event hot path (walk_step's
/// core), so events/second here is publish throughput to first order.
double timed_match_loop(const Fixture& f, size_t iters, int reps) {
  core::MatchScratch scratch;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < iters; ++i) {
      auto m = core::match_into(f.summary, f.events[i % f.events.size()], scratch);
      // The result feeds back into the loop bound so it cannot fold away.
      if (m.size() > iters) return -1.0;
    }
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

double overhead_pct(double base_sec, double with_sec) {
  if (base_sec <= 0.0) return 0.0;
  return (with_sec - base_sec) / base_sec * 100.0;
}

}  // namespace

int main() {
  const size_t scale = bench::bench_scale();
  const size_t kSubs = 10000;
  // Each rep runs long enough (hundreds of ms) for 97 Hz to land dozens of
  // samples and for the overhead signal to rise above scheduler noise.
  const size_t iters = 500000 * scale;
  const int reps = 3;

  std::cout << "Profiler overhead: " << kSubs << " subs, " << iters
            << " matches/phase, best of " << reps << "\n\n";
  Fixture f(kSubs);
  stats::Table table({"phase", "wall_s", "events_per_s", "overhead_pct"});
  bench::JsonReport report("profile");
  report.meta("unit", "percent overhead vs the cold matching loop");
  report.meta("scale", static_cast<double>(scale));
  report.meta("hz", static_cast<double>(obs::kDefaultProfileHz));

  auto& prof = obs::Profiler::instance();

  // Untimed warm-up so phase 1 doesn't pay the cache-priming cost the
  // later phases inherit for free.
  (void)timed_match_loop(f, iters / 4, 1);

  // Phase 1: cold — the profiler has never seen this thread.
  const double cold = timed_match_loop(f, iters, reps);

  // Phase 2: armed — registered, not sampling. The broker's steady state.
  obs::Profiler::register_thread(obs::ThreadRole::kMain);
  const double armed = timed_match_loop(f, iters, reps);

  // Phase 3: sampling at the default 97 Hz.
  const uint64_t samples_before = prof.samples_total();
  const bool started = prof.start(obs::kDefaultProfileHz);
  const double sampling = timed_match_loop(f, iters, reps);
  uint64_t attributed = 0, captured = 0;
  if (started) {
    prof.stop();
    for (const auto& [stack, count] : obs::parse_folded(prof.folded())) {
      captured += count;
      if (stack.rfind("other", 0) != 0) attributed += count;
    }
  }
  const uint64_t samples = prof.samples_total() - samples_before;

  const double armed_pct = overhead_pct(cold, armed);
  const double sampling_pct = overhead_pct(cold, sampling);
  // Zero captured samples (NO_TELEMETRY, or a <1s phase at 97 Hz on a fast
  // machine) attributes vacuously: nothing was captured, nothing was lost.
  const double attributed_pct =
      captured > 0 ? 100.0 * static_cast<double>(attributed) / static_cast<double>(captured)
                   : 100.0;

  const auto row = [&](const char* phase, double sec, double pct) {
    table.row({phase, std::to_string(sec),
               std::to_string(static_cast<uint64_t>(static_cast<double>(iters) / sec)),
               std::to_string(pct)});
  };
  row("cold", cold, 0.0);
  row("armed", armed, armed_pct);
  row(started ? "sampling@97Hz" : "sampling (refused)", sampling, sampling_pct);
  table.print(std::cout);
  std::cout << "\n" << samples << " samples captured, " << attributed_pct
            << "% attributed to named roles\n";

  report.metric("overhead_pct", sampling_pct);
  report.metric("armed_idle_overhead_pct", armed_pct);
  report.metric("attributed_pct", attributed_pct);
  report.write();
  return 0;
}
