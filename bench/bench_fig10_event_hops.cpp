// Figure 10: mean number of hops to route an event to all matched brokers,
// vs event popularity (the fraction of brokers with a matching
// subscription). The paper publishes 24,000 events (1,000 per broker); by
// default this bench uses 100 per broker (set SUBSUM_BENCH_SCALE=10 for the
// paper's volume).
//
// Ours: the full real pipeline — per-event subscriptions installed at the
// matched brokers, summaries propagated with Algorithm 2, events routed
// with the BROCLI walk (Algorithm 3); hops = forwards + owner deliveries.
// Siena: reverse-path routing, hops = tree edges in the union of paths
// from the publisher to the matched brokers (§5.2.2).
//
// Expected shape: ours wins at popularities up to ~75%, Siena wins at very
// high popularity where its tree saturates at n-1 edges.
#include <cassert>
#include <iostream>
#include <set>

#include "bench_common.h"
#include "bench_report.h"
#include "overlay/spanning_tree.h"
#include "routing/event_router.h"
#include "routing/propagation.h"
#include "siena/siena_network.h"
#include "stats/stats.h"
#include "util/rng.h"

int main() {
  using namespace subsum;
  using model::SubId;
  using overlay::BrokerId;

  const auto schema = workload::stock_schema();
  const auto g = overlay::cable_wireless_24();
  const auto wire = bench::paper_wire(schema, g.size(), uint64_t{1} << 20);
  const size_t n = g.size();
  const size_t events = 100 * n * bench::bench_scale();
  const auto volume = schema.id_of("volume");

  std::vector<overlay::SpanningTree> trees;
  for (BrokerId b = 0; b < n; ++b) trees.push_back(overlay::bfs_tree(g, b));

  std::cout << "Figure 10: mean hops per event to reach all matched brokers, "
            << events << " events on the 24-broker backbone\n\n";
  stats::Table table({"popularity%", "ours", "ours(forward)", "ours(deliver)", "siena"});
  bench::JsonReport report("fig10");
  report.meta("brokers", static_cast<double>(n));
  report.meta("events", static_cast<double>(events));
  report.meta("unit", "mean hops per event");

  for (int pop : {10, 25, 50, 75, 90}) {
    util::Rng rng(1000 + pop);
    const size_t m = std::max<size_t>(1, (static_cast<size_t>(pop) * n + 50) / 100);

    // Per-event matched broker sets, chosen uniformly (paper: "the matched
    // brokers are randomly chosen for every event").
    std::vector<std::vector<BrokerId>> matched(events);
    std::vector<core::BrokerSummary> own(
        n, core::BrokerSummary(schema, core::GeneralizePolicy::kSafe));
    std::vector<uint32_t> next_local(n, 0);
    for (size_t idx = 0; idx < events; ++idx) {
      std::set<BrokerId> set;
      while (set.size() < m) set.insert(static_cast<BrokerId>(rng.below(n)));
      matched[idx].assign(set.begin(), set.end());
      for (BrokerId b : set) {
        const auto sub = model::SubscriptionBuilder(schema)
                             .where(volume, model::Op::kEq,
                                    static_cast<int64_t>(idx))
                             .build();
        own[b].add(sub, SubId{b, next_local[b]++, sub.mask()});
      }
    }
    // Sequential-simulator semantics (see PropagationOptions): same-degree
    // chains compose within an iteration, concentrating knowledge at the
    // hubs as in the paper's evaluation.
    routing::PropagationOptions popts;
    popts.immediate_delivery = true;
    const auto state = routing::propagate(g, own, wire, popts);

    stats::Series ours, fwd, del, siena;
    for (size_t idx = 0; idx < events; ++idx) {
      const auto origin = static_cast<BrokerId>(idx % n);
      const auto e = model::EventBuilder(schema)
                         .set(volume, static_cast<int64_t>(idx))
                         .build();
      const auto r = routing::route_event(g, state, origin, e);
      // Integrity: the real pipeline must deliver to exactly the chosen set.
      std::set<BrokerId> got;
      for (const auto& d : r.deliveries) got.insert(d.owner);
      if (got != std::set<BrokerId>(matched[idx].begin(), matched[idx].end())) {
        std::cerr << "delivery mismatch at event " << idx << "\n";
        return 1;
      }
      ours.add(static_cast<double>(r.total_hops()));
      fwd.add(static_cast<double>(r.forward_hops));
      del.add(static_cast<double>(r.delivery_hops));
      siena.add(static_cast<double>(siena::event_hops_model(trees[origin], matched[idx])));
    }
    table.rowf({static_cast<double>(pop), ours.mean(), fwd.mean(), del.mean(),
                siena.mean()});
    report.row("popularity_" + std::to_string(pop),
               {"ours", "ours(forward)", "ours(deliver)", "siena"},
               {ours.mean(), fwd.mean(), del.mean(), siena.mean()});
  }
  table.print(std::cout);
  report.write();
  std::cout << "\npaper check: ours below Siena for popularities <= ~75%, "
               "Siena better at 90% (its tree saturates at n-1 = 23 edges)\n";
  return 0;
}
