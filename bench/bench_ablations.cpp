// Ablations over the design choices DESIGN.md calls out:
//
//  (a) multi-broker merged summaries vs per-broker-only knowledge:
//      how many brokers an event must visit (the point of §4.1);
//  (b) AACS insertion mode: the paper's coarse row absorption vs our exact
//      partition — rows/bytes vs arithmetic false positives;
//  (c) SACS generalization policy: rows/bytes vs string false positives;
//  (d) BROCLI forwarding: highest-degree-first vs capped virtual degrees
//      (the paper's §6 load-balancing extension) — walk length vs how
//      heavily the walk concentrates on the busiest broker.
#include <algorithm>
#include <iostream>
#include <set>

#include "bench_common.h"
#include "bench_report.h"
#include "core/matcher.h"
#include "routing/event_router.h"
#include "routing/propagation.h"
#include "stats/stats.h"
#include "util/rng.h"
#include "workload/event_gen.h"

using namespace subsum;
using model::SubId;
using overlay::BrokerId;

namespace {

void ablation_merged_summaries(bench::JsonReport& report) {
  std::cout << "(a) merged summaries vs per-broker-only knowledge "
               "(mean brokers visited per event)\n\n";
  const auto schema = workload::stock_schema();
  const auto g = overlay::cable_wireless_24();
  const auto wire = bench::paper_wire(schema, g.size());
  const auto own = bench::delta_summaries(schema, g.size(), 50, 0.5, 3);

  const auto merged = routing::propagate(g, own, wire);
  // "Unmerged": every broker knows only itself (skip Algorithm 2).
  routing::PropagationResult unmerged;
  unmerged.held = own;
  unmerged.merged_brokers.resize(g.size());
  for (BrokerId b = 0; b < g.size(); ++b) unmerged.merged_brokers[b] = {b};

  workload::SubGenParams sp;
  workload::SubscriptionGenerator gen(schema, sp, 3);
  workload::EventGenerator egen(schema, gen.pools(), {}, 4);
  stats::Series with, without;
  for (int i = 0; i < 500; ++i) {
    const auto e = egen.next();
    const auto origin = static_cast<BrokerId>(i % g.size());
    with.add(static_cast<double>(routing::route_event(g, merged, origin, e).visited.size()));
    without.add(
        static_cast<double>(routing::route_event(g, unmerged, origin, e).visited.size()));
  }
  stats::Table t({"configuration", "mean visits", "max visits"});
  t.row({"with Algorithm 2 (merged)", stats::fmt(with.mean()), stats::fmt(with.max())});
  t.row({"without (per-broker only)", stats::fmt(without.mean()), stats::fmt(without.max())});
  report.row("merged.with_algorithm2", {"mean visits", "max visits"},
             {with.mean(), with.max()});
  report.row("merged.per_broker_only", {"mean visits", "max visits"},
             {without.mean(), without.max()});
  t.print(std::cout);
  std::cout << "\n";
}

void ablation_aacs_mode(bench::JsonReport& report) {
  // Workload shaped to separate the modes: the canonical wide range is
  // registered first (one early subscriber per range), then 2000 tight
  // windows inside it. Coarse absorbs every window into the wide row
  // (rows stay ~constant, lookups over-approximate); exact splits the
  // partition (rows grow, lookups stay precise).
  std::cout << "(b) AACS mode: paper's coarse absorption vs exact partition "
               "(wide range first, then 2000 tight windows)\n\n";
  const auto schema = workload::stock_schema();
  const auto wire = bench::paper_wire(schema, 24, /*max_subs=*/4096);
  const auto price = schema.id_of("price");

  stats::Table t({"mode", "nsr+ne rows", "wire bytes", "false-positive ids/event"});
  for (auto mode : {core::AacsMode::kCoarse, core::AacsMode::kExact}) {
    util::Rng rng(21);
    core::BrokerSummary summary(schema, core::GeneralizePolicy::kSafe, mode);
    core::NaiveMatcher naive;
    uint32_t next = 0;
    auto install = [&](double lo, double hi) {
      auto sub = model::SubscriptionBuilder(schema)
                     .where(price, model::Op::kGe, lo)
                     .where(price, model::Op::kLe, hi)
                     .build();
      const SubId id{0, next++, sub.mask()};
      summary.add(sub, id);
      naive.add({id, std::move(sub)});
    };
    install(0.0, 100.0);  // the wide canonical range
    for (int i = 0; i < 2000; ++i) {
      const double a = rng.range_f64(0.0, 95.0);
      install(a, a + 5.0);  // tight windows inside it
    }
    stats::Series fp;
    for (int i = 0; i < 500; ++i) {
      const auto e = model::EventBuilder(schema)
                         .set(price, rng.range_f64(0.0, 100.0))
                         .build();
      fp.add(static_cast<double>(core::match(summary, e).size() - naive.match(e).size()));
    }
    const auto st = summary.stats();
    t.row({mode == core::AacsMode::kCoarse ? "coarse (paper)" : "exact (ours)",
           stats::fmt(static_cast<double>(st.nsr + st.ne)),
           stats::fmt(static_cast<double>(core::wire_size(summary, wire))),
           stats::fmt(fp.mean())});
    report.row(mode == core::AacsMode::kCoarse ? "aacs.coarse" : "aacs.exact",
               {"nsr_ne rows", "wire bytes", "false positive ids per event"},
               {static_cast<double>(st.nsr + st.ne),
                static_cast<double>(core::wire_size(summary, wire)), fp.mean()});
  }
  t.print(std::cout);
  std::cout << "(false positives are pruned by the owner's exact re-filter; "
               "they cost delivery bandwidth, not correctness)\n\n";
}

void ablation_sacs_policy(bench::JsonReport& report) {
  std::cout << "(c) SACS generalization policy (rows/bytes vs string false "
               "positives)\n\n";
  const auto schema = workload::stock_schema();
  const auto wire = bench::paper_wire(schema, 24, /*max_subs=*/4096);

  const auto symbol = schema.id_of("symbol");
  stats::Table t({"policy", "nr rows", "wire bytes", "false-positive ids/event"});
  for (auto policy : {core::GeneralizePolicy::kNone, core::GeneralizePolicy::kSafe,
                      core::GeneralizePolicy::kAggressive}) {
    util::Rng rng(31);
    core::BrokerSummary summary(schema, policy, core::AacsMode::kCoarse);
    core::NaiveMatcher naive;
    uint32_t next = 0;
    // Single-constraint subscriptions over a skewed symbol universe:
    // equalities "s<k>-<j>", covering prefixes "s<k>", and occasional ≠.
    auto install = [&](model::Op op, const std::string& operand) {
      auto sub = model::SubscriptionBuilder(schema).where(symbol, op, operand).build();
      const SubId id{0, next++, sub.mask()};
      summary.add(sub, id);
      naive.add({id, std::move(sub)});
    };
    for (int i = 0; i < 2000; ++i) {
      const auto k = rng.below(16);
      const double roll = rng.uniform01();
      if (roll < 0.6) {
        install(model::Op::kEq, "s" + std::to_string(k) + "-" + std::to_string(rng.below(40)));
      } else if (roll < 0.9) {
        install(model::Op::kPrefix, "s" + std::to_string(k));
      } else {
        install(model::Op::kNe, "s" + std::to_string(k) + "-0");
      }
    }
    stats::Series fp;
    for (int i = 0; i < 500; ++i) {
      const auto e = model::EventBuilder(schema)
                         .set(symbol, "s" + std::to_string(rng.below(16)) + "-" +
                                          std::to_string(rng.below(40)))
                         .build();
      fp.add(static_cast<double>(core::match(summary, e).size() - naive.match(e).size()));
    }
    const char* name = policy == core::GeneralizePolicy::kNone     ? "none"
                       : policy == core::GeneralizePolicy::kSafe   ? "safe (default)"
                                                                   : "aggressive";
    t.row({name, stats::fmt(static_cast<double>(summary.stats().nr)),
           stats::fmt(static_cast<double>(core::wire_size(summary, wire))),
           stats::fmt(fp.mean())});
    const char* key = policy == core::GeneralizePolicy::kNone     ? "sacs.none"
                      : policy == core::GeneralizePolicy::kSafe   ? "sacs.safe"
                                                                  : "sacs.aggressive";
    report.row(key, {"nr rows", "wire bytes", "false positive ids per event"},
               {static_cast<double>(summary.stats().nr),
                static_cast<double>(core::wire_size(summary, wire)), fp.mean()});
  }
  t.print(std::cout);
  std::cout << "\n";
}

void ablation_forwarding_policy(bench::JsonReport& report) {
  std::cout << "(d) BROCLI forwarding policy (paper §6 virtual degrees): walk "
               "length vs load concentration\n\n";
  const auto schema = workload::stock_schema();
  const auto g = overlay::cable_wireless_24();
  const auto wire = bench::paper_wire(schema, g.size());
  const auto own = bench::delta_summaries(schema, g.size(), 50, 0.5, 41);
  const auto state = routing::propagate(g, own, wire);

  workload::SubGenParams sp;
  workload::SubscriptionGenerator gen(schema, sp, 41);
  workload::EventGenerator egen(schema, gen.pools(), {}, 42);
  std::vector<model::Event> events;
  for (int i = 0; i < 500; ++i) events.push_back(egen.next());

  stats::Table t({"policy", "mean visits", "hottest broker visits", "stddev of load"});
  auto run = [&](const char* name, const routing::RouterOptions& base_opts, bool salt) {
    std::vector<size_t> load(g.size(), 0);
    stats::Series visits;
    for (size_t i = 0; i < events.size(); ++i) {
      routing::RouterOptions opts = base_opts;
      if (salt) opts.tie_salt = i + 1;
      const auto r = routing::route_event(g, state, static_cast<BrokerId>(i % g.size()),
                                          events[i], opts);
      visits.add(static_cast<double>(r.visited.size()));
      for (BrokerId b : r.visited) ++load[b];
    }
    stats::Series load_series;
    for (size_t l : load) load_series.add(static_cast<double>(l));
    t.row({name, stats::fmt(visits.mean()), stats::fmt(load_series.max()),
           stats::fmt(load_series.stddev())});
    report.row(std::string("forward.") + bench::metric_key(name),
               {"mean visits", "hottest broker visits", "stddev of load"},
               {visits.mean(), load_series.max(), load_series.stddev()});
  };

  run("highest-degree (paper)", {}, false);
  routing::RouterOptions coverage;
  coverage.strategy = routing::ForwardStrategy::kLargestCoverage;
  run("largest-coverage (gossiped sets)", coverage, false);
  routing::RouterOptions cap3;
  cap3.virtual_degrees = routing::capped_virtual_degrees(g, 3);
  run("virtual degrees (cap 3)", cap3, false);
  routing::RouterOptions cap3salt = cap3;
  run("virtual degrees (cap 3) + tie rotation", cap3salt, true);
  routing::RouterOptions cap1;
  cap1.virtual_degrees = routing::capped_virtual_degrees(g, 1);
  run("flat degrees (cap 1) + tie rotation", cap1, true);
  t.print(std::cout);
  std::cout << "\n";
}

void ablation_propagation_variant(bench::JsonReport& report) {
  std::cout << "(e) Algorithm-2 ambiguity: neighbor preference x delivery "
               "timing (walk length the BROCLI phase inherits)\n\n";
  const auto schema = workload::stock_schema();
  const auto g = overlay::cable_wireless_24();
  const auto wire = bench::paper_wire(schema, g.size());
  const auto own = bench::delta_summaries(schema, g.size(), 50, 0.5, 55);
  const auto e = model::EventBuilder(schema).set("price", -1.0).build();

  stats::Table t({"preference", "delivery", "prop hops", "mean walk visits"});
  for (auto pref : {routing::NeighborPreference::kSmallestDegree,
                    routing::NeighborPreference::kLargestDegree}) {
    for (bool immediate : {false, true}) {
      routing::PropagationOptions opts;
      opts.preference = pref;
      opts.immediate_delivery = immediate;
      const auto state = routing::propagate(g, own, wire, opts);
      stats::Series visits;
      for (BrokerId o = 0; o < g.size(); ++o) {
        visits.add(static_cast<double>(routing::route_event(g, state, o, e).visited.size()));
      }
      t.row({pref == routing::NeighborPreference::kSmallestDegree ? "smallest (paper text)"
                                                                  : "largest",
             immediate ? "immediate (sequential)" : "deferred (strict)",
             stats::fmt(static_cast<double>(state.hops())), stats::fmt(visits.mean())});
      const std::string key =
          std::string("prop.") +
          (pref == routing::NeighborPreference::kSmallestDegree ? "smallest" : "largest") +
          (immediate ? "_immediate" : "_deferred");
      report.row(key, {"prop hops", "mean walk visits"},
                 {static_cast<double>(state.hops()), visits.mean()});
    }
  }
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Ablation benches over DESIGN.md design choices\n"
               "==============================================\n\n";
  subsum::bench::JsonReport report("ablations");
  ablation_merged_summaries(report);
  ablation_aacs_mode(report);
  ablation_sacs_policy(report);
  ablation_forwarding_policy(report);
  ablation_propagation_variant(report);
  report.write();
  return 0;
}
