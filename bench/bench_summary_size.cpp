// Size equations (1) and (2) of §5.1: compares the paper's analytic summary
// size model against the actual serialized wire size, sweeping σ and the
// subsumption probability, and reports the row counts (nsr, ne, nr) and id
// list totals (La, Ls) the equations consume.
#include <iostream>

#include "bench_common.h"
#include "stats/stats.h"

int main() {
  using namespace subsum;
  const bench::PaperParams pp;
  const auto schema = workload::stock_schema();
  const auto wire = bench::paper_wire(schema, pp.brokers);

  std::cout << "Equations (1)-(2): analytic summary size vs measured wire size "
               "(one broker's summary)\n\n";
  stats::Table table({"sigma", "subsum%", "nsr", "ne", "nr", "La", "Ls", "eq(1)+(2)",
                      "eq_measured_ssv", "wire", "wire/eq"});

  for (size_t sigma : {10u, 100u, 1000u}) {
    for (double p : {0.1, 0.5, 0.9}) {
      const auto own = bench::delta_summaries(schema, 1, sigma, p, 5 + sigma);
      const auto& summary = own.front();
      const auto st = summary.stats();
      const core::PaperSizeParams params{pp.sst, pp.sid, pp.ssv};
      const auto eq = core::paper_size(st, params);
      const auto eqm = core::paper_size(st, params, /*measured_ssv=*/true);
      const auto bytes = core::wire_size(summary, wire);
      table.rowf({static_cast<double>(sigma), p * 100, static_cast<double>(st.nsr),
                  static_cast<double>(st.ne), static_cast<double>(st.nr),
                  static_cast<double>(st.la_entries), static_cast<double>(st.ls_entries),
                  static_cast<double>(eq.total()), static_cast<double>(eqm.total()),
                  static_cast<double>(bytes),
                  static_cast<double>(bytes) / static_cast<double>(eqm.total())});
    }
  }
  table.print(std::cout);
  std::cout << "\npaper check: higher subsumption keeps nsr near the canonical "
               "count and shrinks ne/nr; wire size tracks the equations "
               "within a small factor (flags + varints)\n";
  return 0;
}
