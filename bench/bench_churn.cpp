// Churn bench (PROTOCOL v4 soft-state summaries): per-period announcement
// bytes under a fixed-rate Poisson subscribe/unsubscribe workload, at
// N = 100k and N = 1M outstanding subscriptions.
//
// The gate this feeds (tools/check_bench.py "churn"): delta announcements
// must scale with the CHANGE RATE, not the subscription count — so
// delta_bytes_per_period.n1m / delta_bytes_per_period.n100k (flat_ratio)
// stays ~1 while full_bytes_per_period grows ~10x, and full-image
// fallbacks (delta larger than delta_max_ratio x full) stay at zero in
// steady state. Every period the delta is also applied to a receiver-side
// shadow image and checked against the sender's digest — digest_mismatches
// must be 0, the same invariant the anti-entropy repair path enforces.
//
// Deterministic: fixed seeds, count/byte metrics only, and one shared wire
// codec across both N so byte differences reflect structure, not id width.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "core/delta.h"
#include "core/serialize.h"
#include "stats/stats.h"
#include "workload/churn.h"
#include "workload/stock_schema.h"

namespace {

using namespace subsum;

struct ChurnRun {
  double delta_bytes = 0;  // mean encoded delta bytes per period
  double full_bytes = 0;   // mean encoded full image bytes per period
  double events = 0;       // mean subscribe+unsubscribe events per period
  size_t fallbacks = 0;    // periods where the delta lost the ratio test
  size_t mismatches = 0;   // shadow digest != wire digest after apply
};

/// Builds a broker summary with `n` live subscriptions, then drives
/// `periods` periods of churn through it, diffing/encoding each period's
/// delta against the previously announced image and replaying it onto a
/// receiver shadow.
ChurnRun run_churn(const model::Schema& schema, const core::WireConfig& wire, size_t n,
                   workload::ChurnParams cp, size_t periods, uint64_t seed) {
  workload::SubGenParams sp;
  sp.subsumption = 0.95;  // high-subsumption steady state; ~5% fresh rows
  workload::ChurnStream stream(schema, sp, cp, seed);

  core::BrokerSummary held(schema, core::GeneralizePolicy::kSafe, core::AacsMode::kCoarse);
  std::vector<model::SubId> live;
  live.reserve(n);
  uint32_t next_local = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto sub = stream.generator().next();
    const model::SubId id{0, next_local++, sub.mask()};
    held.add(sub, id);
    live.push_back(id);
  }

  core::SummaryImage last_sent = core::extract_image(held);
  core::SummaryImage shadow = last_sent;  // receiver mirror of last_sent
  const core::DeltaHeader base_hdr;       // version fields unused by the bench

  ChurnRun out;
  stats::Series delta_bytes, full_bytes, events;
  for (size_t p = 0; p < periods; ++p) {
    workload::ChurnPeriod period = stream.next_period();
    for (auto& sub : period.subscribes) {
      const model::SubId id{0, next_local++, sub.mask()};
      held.add(sub, id);
      live.push_back(id);
    }
    const size_t unsubs = std::min(period.unsubscribes, live.size());
    for (size_t u = 0; u < unsubs; ++u) {
      const size_t victim = stream.pick_victim_index(live.size());
      held.remove(live[victim]);
      live[victim] = live.back();
      live.pop_back();
    }

    core::SummaryImage current = core::extract_image(held);
    core::DeltaHeader hdr = base_hdr;
    hdr.base_digest = core::image_digest(last_sent);
    hdr.new_digest = core::image_digest(current);
    const auto delta = core::diff_images(last_sent, current);
    const auto delta_payload = core::encode_delta(delta, schema, wire, hdr);
    const size_t full = core::wire_size(held, wire);

    delta_bytes.add(static_cast<double>(delta_payload.size()));
    full_bytes.add(static_cast<double>(full));
    events.add(static_cast<double>(period.subscribes.size() + unsubs));
    if (delta_payload.size() > full / 2) ++out.fallbacks;  // delta_max_ratio = 0.5

    core::apply_delta(shadow, delta);
    if (core::image_digest(shadow) != hdr.new_digest) ++out.mismatches;

    last_sent = std::move(current);
  }
  out.delta_bytes = delta_bytes.mean();
  out.full_bytes = full_bytes.mean();
  out.events = events.mean();
  return out;
}

}  // namespace

int main() {
  using namespace subsum;
  const auto schema = workload::stock_schema();
  // One codec wide enough for both population sizes, so delta bytes compare
  // structure-for-structure across N.
  const auto wire = bench::paper_wire(schema, 24, 1'100'000);

  const size_t periods = 8 * bench::bench_scale();
  workload::ChurnParams steady;  // 400 subscribes + ~400 unsubscribes / period
  steady.subscribe_rate = 400.0;
  steady.unsubscribe_rate = 400.0;
  workload::ChurnParams flash = steady;  // every period is a 10x flash crowd
  flash.flash_crowd_prob = 1.0;
  flash.flash_crowd_mult = 10.0;

  std::cout << "Churn: announcement bytes per period, fixed change rate, N = 100k vs 1M\n\n";
  stats::Table table({"N", "mode", "events/period", "delta B/period", "full B/period",
                      "delta/full", "fallbacks", "digest mismatches"});
  bench::JsonReport report("churn");
  report.meta("unit", "announcement bytes per propagation period");
  report.meta("churn_rate", steady.subscribe_rate);
  report.meta("periods", static_cast<double>(periods));

  double steady_delta[2] = {0, 0};
  size_t total_fallbacks = 0, total_mismatches = 0;
  const size_t pops[2] = {100'000, 1'000'000};
  const char* tags[2] = {"n100k", "n1m"};
  for (int i = 0; i < 2; ++i) {
    const auto s = run_churn(schema, wire, pops[i], steady, periods, 0xC4A11 + i);
    const auto f = run_churn(schema, wire, pops[i], flash, 2, 0xF1A58 + i);
    steady_delta[i] = s.delta_bytes;
    total_fallbacks += s.fallbacks + f.fallbacks;
    total_mismatches += s.mismatches + f.mismatches;
    table.row({std::to_string(pops[i]), "steady", stats::fmt(s.events),
               stats::fmt(s.delta_bytes), stats::fmt(s.full_bytes),
               stats::fmt(s.delta_bytes / s.full_bytes), std::to_string(s.fallbacks),
               std::to_string(s.mismatches)});
    table.row({std::to_string(pops[i]), "flash x10", stats::fmt(f.events),
               stats::fmt(f.delta_bytes), stats::fmt(f.full_bytes),
               stats::fmt(f.delta_bytes / f.full_bytes), std::to_string(f.fallbacks),
               std::to_string(f.mismatches)});
    report.metric(std::string("delta_bytes_per_period.") + tags[i], s.delta_bytes);
    report.metric(std::string("full_bytes_per_period.") + tags[i], s.full_bytes);
    report.metric(std::string("events_per_period.") + tags[i], s.events);
    report.metric(std::string("flash.delta_bytes_per_period.") + tags[i], f.delta_bytes);
    report.metric(std::string("flash.events_per_period.") + tags[i], f.events);
  }
  report.metric("flat_ratio", steady_delta[1] / steady_delta[0]);
  report.metric("full_image_fallbacks", static_cast<double>(total_fallbacks));
  report.metric("digest_mismatches", static_cast<double>(total_mismatches));
  table.print(std::cout);
  report.write();
  std::cout << "\npaper check: delta bytes track the change rate (flat across N, "
               "~10x under a 10x flash crowd); full image bytes track N\n";
  return 0;
}
