// Figure 9: mean number of hops for subscription propagation vs the
// maximum subsumption probability.
//
// Siena forwards every (non-subsumed) subscription neighbor-to-neighbor
// over each home broker's spanning tree: hundreds of hops per period.
// Our approach sends at most one merged-summary message per broker per
// period (Algorithm 2): always fewer hops than brokers, independent of the
// subsumption probability.
#include <iostream>

#include "bench_common.h"
#include "bench_report.h"
#include "routing/propagation.h"
#include "siena/siena_network.h"
#include "stats/stats.h"
#include "util/rng.h"

int main() {
  using namespace subsum;
  const bench::PaperParams pp;
  const auto schema = workload::stock_schema();
  const auto g = overlay::cable_wireless_24();
  const auto wire = bench::paper_wire(schema, g.size());

  // Hops are per propagated batch; Siena's count scales with σ, so the
  // paper reports mean hops per subscription batch. We propagate one
  // subscription per broker per period and average over periods.
  const size_t periods = 20 * bench::bench_scale();

  std::cout << "Figure 9: mean hops per propagation period (one new subscription "
               "per broker), 24-broker backbone\n\n";
  stats::Table table({"subsumption%", "siena", "ours"});
  bench::JsonReport report("fig9");
  report.meta("brokers", static_cast<double>(g.size()));
  report.meta("periods", static_cast<double>(periods));
  report.meta("unit", "mean hops per propagation period");

  for (double p : {0.10, 0.25, 0.50, 0.75, 0.90}) {
    stats::Series siena_hops;
    util::Rng rng(1234);
    for (size_t t = 0; t < periods; ++t) {
      siena_hops.add(static_cast<double>(
          siena::propagate_model(g, 1, {p, pp.avg_sub_bytes}, rng).messages));
    }
    // Ours: the hop count is a function of the topology only.
    const auto own = bench::delta_summaries(schema, g.size(), 1, p, 7);
    const auto ours = routing::propagate(g, own, wire).hops();
    table.rowf({p * 100, siena_hops.mean(), static_cast<double>(ours)});
    report.row("subsumption_" + std::to_string(static_cast<int>(p * 100)),
               {"siena", "ours"}, {siena_hops.mean(), static_cast<double>(ours)});
  }
  table.print(std::cout);
  report.write();
  std::cout << "\nworst case for Siena at 0% subsumption would be "
            << g.size() * (g.size() - 1) << " hops (24 x 23, paper §5.2.1); "
            << "ours stays below " << g.size() << " regardless\n";
  return 0;
}
