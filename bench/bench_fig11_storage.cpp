// Figure 11: total storage across all brokers vs the number of outstanding
// subscriptions per broker (S), log scale in the paper.
//
// Broadcast stores every subscription at every broker; Siena stores each
// subscription at every broker it reaches (probabilistic subsumption model,
// §5.2); ours stores the serialized summary structures each broker holds
// after Algorithm 2.
//
// Expected shape: Siena@10% nearly equals broadcast; ours 2-5x below Siena.
#include <iostream>

#include "baseline/broadcast.h"
#include "bench_common.h"
#include "bench_report.h"
#include "routing/propagation.h"
#include "siena/siena_network.h"
#include "stats/stats.h"
#include "util/rng.h"

int main() {
  using namespace subsum;
  const bench::PaperParams pp;
  const auto schema = workload::stock_schema();
  const auto g = overlay::cable_wireless_24();

  std::cout << "Figure 11: total subscription storage across the 24 brokers "
               "(bytes)\n\n";
  const std::vector<std::string> cols = {"broadcast",   "siena@10%",
                                         "summary@10%", "siena@90%",
                                         "summary@90%", "siena/summary@10%",
                                         "siena/summary@90%"};
  stats::Table table({"S/broker", "broadcast", "siena@10%", "summary@10%", "siena@90%",
                      "summary@90%", "siena/summary@10%", "siena/summary@90%"});
  bench::JsonReport report("fig11");
  report.meta("brokers", static_cast<double>(g.size()));
  report.meta("unit", "total stored bytes across brokers");

  for (size_t s_per_broker : {10u, 50u, 100u, 250u, 500u, 1000u}) {
    const double broadcast = static_cast<double>(
        baseline::broadcast_storage_bytes(g.size(), s_per_broker, pp.avg_sub_bytes));

    auto siena_storage = [&](double p) {
      stats::Series st;
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        util::Rng rng(seed * 131 + s_per_broker);
        st.add(static_cast<double>(
                   siena::propagate_model(g, s_per_broker, {p, pp.avg_sub_bytes}, rng)
                       .stored_total()) *
               static_cast<double>(pp.avg_sub_bytes));
      }
      return st.mean();
    };

    auto summary_storage = [&](double p) {
      const auto wire = bench::paper_wire(schema, g.size(),
                                          std::max<uint64_t>(s_per_broker, 2));
      const auto own =
          bench::delta_summaries(schema, g.size(), s_per_broker, p, 99 + s_per_broker);
      const auto state = routing::propagate(g, own, wire);
      size_t bytes = 0;
      for (const auto& held : state.held) bytes += core::wire_size(held, wire);
      return static_cast<double>(bytes);
    };

    const double s10 = siena_storage(0.10), s90 = siena_storage(0.90);
    const double m10 = summary_storage(0.10), m90 = summary_storage(0.90);
    table.rowf({static_cast<double>(s_per_broker), broadcast, s10, m10, s90, m90,
                s10 / m10, s90 / m90});
    report.row("s_" + std::to_string(s_per_broker), cols,
               {broadcast, s10, m10, s90, m90, s10 / m10, s90 / m90});
  }
  table.print(std::cout);
  report.write();
  std::cout << "\npaper check: siena@10% close to broadcast; summary 2-5x "
               "below siena at matching subsumption\n";
  return 0;
}
