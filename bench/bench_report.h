// Machine-readable output for the figure benches: every bench_fig* /
// bench_ablations run also writes BENCH_<name>.json (same spirit as
// tools/bench_json's BENCH_matching.json), so tools/check_bench.py can
// gate the paper curves against committed baselines.
//
// The fig benches are deterministic (fixed seeds, count/byte metrics, no
// wall-clock timings), so fresh runs reproduce the baseline numbers
// exactly at the same SUBSUM_BENCH_SCALE and tolerance bands can be tight.
//
// Output goes to $SUBSUM_BENCH_JSON_DIR (if set) or the working directory.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace subsum::bench {

/// Canonical metric-key fragment: lowercase, alnum words joined by '_'
/// ("siena/summary@10%" -> "siena_summary_10", "ours(forward)" ->
/// "ours_forward"). '.' is kept as the prefix separator.
inline std::string metric_key(std::string_view s) {
  std::string out;
  bool pending_sep = false;
  for (const char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (pending_sep && !out.empty()) out += '_';
      pending_sep = false;
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (c == '.') {
      out += '.';
      pending_sep = false;
    } else {
      pending_sep = true;
    }
  }
  return out;
}

class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void meta(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, "\"" + value + "\"");
  }
  void meta(const std::string& key, double value) {
    meta_.emplace_back(key, fmt(value));
  }

  void metric(std::string_view key, double value) {
    metrics_.emplace_back(metric_key(key), value);
  }

  /// One table row: emits "<prefix>.<column>" for each column/value pair
  /// (pass the data columns only, not the row-label column).
  void row(std::string_view prefix, const std::vector<std::string>& columns,
           const std::vector<double>& values) {
    const size_t n = columns.size() < values.size() ? columns.size() : values.size();
    for (size_t i = 0; i < n; ++i) {
      metric(std::string(metric_key(prefix)) + "." + metric_key(columns[i]), values[i]);
    }
  }

  /// Writes BENCH_<name>.json; returns false (with a stderr note) on I/O
  /// failure so benches can keep their human-readable output regardless.
  bool write() const {
    std::string dir;
    if (const char* d = std::getenv("SUBSUM_BENCH_JSON_DIR")) dir = d;
    const std::string path =
        (dir.empty() ? "" : dir + "/") + "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"workload\": {", name_.c_str());
    for (size_t i = 0; i < meta_.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %s", i ? ", " : "", meta_[i].first.c_str(),
                   meta_[i].second.c_str());
    }
    std::fprintf(f, "},\n  \"metrics\": {\n");
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "    \"%s\": %s%s\n", metrics_[i].first.c_str(),
                   fmt(metrics_[i].second).c_str(), i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string fmt(double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    return buf;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace subsum::bench
