// §5.2 "Tested Topologies": the paper reports results on "a number of real
// and artificial topologies" and states the findings are similar in all
// cases, showing only the 24-node backbone. This bench repeats the core
// comparisons (fig-8-style propagation bandwidth, fig-9-style propagation
// hops, fig-10-style event hops at 25% popularity) across artificial
// topologies, to verify the orderings are topology-robust.
#include <iostream>
#include <set>

#include "baseline/broadcast.h"
#include "bench_common.h"
#include "overlay/spanning_tree.h"
#include "routing/event_router.h"
#include "routing/propagation.h"
#include "siena/siena_network.h"
#include "stats/stats.h"
#include "util/rng.h"

using namespace subsum;
using overlay::BrokerId;
using overlay::Graph;

namespace {

struct Row {
  double broadcast_bytes, siena_bytes, summary_bytes;
  double siena_prop_hops, summary_prop_hops;
  double siena_event_hops, summary_event_hops;
};

Row evaluate(const Graph& g, uint64_t seed) {
  const auto schema = workload::stock_schema();
  const auto wire = bench::paper_wire(schema, g.size(), uint64_t{1} << 20);
  const bench::PaperParams pp;
  const size_t sigma = 100;
  const double subsumption = 0.5;
  Row row{};

  // Propagation bandwidth and hops.
  row.broadcast_bytes = baseline::broadcast_bandwidth_formula(g, {sigma, pp.avg_sub_bytes});
  util::Rng rng(seed);
  const auto siena_prop = siena::propagate_model(g, sigma, {subsumption, pp.avg_sub_bytes}, rng);
  row.siena_bytes = static_cast<double>(siena_prop.bytes);
  row.siena_prop_hops = static_cast<double>(siena_prop.messages) / static_cast<double>(sigma);

  const auto own = bench::delta_summaries(schema, g.size(), sigma, subsumption, seed);
  routing::PropagationOptions popts;
  popts.immediate_delivery = true;
  const auto state = routing::propagate(g, own, wire, popts);
  row.summary_bytes = static_cast<double>(state.total_bytes());
  row.summary_prop_hops = static_cast<double>(state.hops());

  // Event hops at 25% popularity (fig-10 midpoint), via the real pipeline.
  const size_t events = 20 * g.size();
  const auto volume = schema.id_of("volume");
  std::vector<core::BrokerSummary> evt_own(
      g.size(), core::BrokerSummary(schema, core::GeneralizePolicy::kSafe));
  std::vector<uint32_t> next_local(g.size(), 0);
  std::vector<std::vector<BrokerId>> matched(events);
  const size_t m = std::max<size_t>(1, g.size() / 4);
  for (size_t idx = 0; idx < events; ++idx) {
    std::set<BrokerId> set;
    while (set.size() < m) set.insert(static_cast<BrokerId>(rng.below(g.size())));
    matched[idx].assign(set.begin(), set.end());
    for (BrokerId b : set) {
      const auto sub = model::SubscriptionBuilder(schema)
                           .where(volume, model::Op::kEq, static_cast<int64_t>(idx))
                           .build();
      evt_own[b].add(sub, model::SubId{b, next_local[b]++, sub.mask()});
    }
  }
  const auto evt_state = routing::propagate(g, evt_own, wire, popts);
  std::vector<overlay::SpanningTree> trees;
  for (BrokerId b = 0; b < g.size(); ++b) trees.push_back(overlay::bfs_tree(g, b));
  stats::Series ours, siena_hops;
  for (size_t idx = 0; idx < events; ++idx) {
    const auto origin = static_cast<BrokerId>(idx % g.size());
    const auto e = model::EventBuilder(schema)
                       .set(volume, static_cast<int64_t>(idx))
                       .build();
    ours.add(static_cast<double>(
        routing::route_event(g, evt_state, origin, e).total_hops()));
    siena_hops.add(
        static_cast<double>(siena::event_hops_model(trees[origin], matched[idx])));
  }
  row.summary_event_hops = ours.mean();
  row.siena_event_hops = siena_hops.mean();
  return row;
}

}  // namespace

int main() {
  util::Rng topo_rng(1);
  // bool = backbone-like (the class the paper evaluates: 20-33 node
  // single-ISP networks and trees). The ring is included as an honest
  // degenerate extreme: there the probabilistic Siena model drops nearly
  // everything within two hops (every broker has maximal relative degree)
  // while our merged-summary chain wraps the entire cycle, so the byte
  // ordering flips — a regime outside the paper's topology class.
  std::vector<std::tuple<std::string, Graph, bool>> topologies;
  topologies.emplace_back("cw24 backbone", overlay::cable_wireless_24(), true);
  topologies.emplace_back("fig7 tree (13)", overlay::fig7_tree(), true);
  topologies.emplace_back("random tree (24)", overlay::random_tree(24, topo_rng), true);
  topologies.emplace_back("random tree (33)", overlay::random_tree(33, topo_rng), true);
  topologies.emplace_back("pref. attach (24)",
                          overlay::preferential_attachment(24, 2, topo_rng), true);
  topologies.emplace_back("star (24)", overlay::star(24), true);
  topologies.emplace_back("ring (20) [degenerate]", overlay::ring(20), false);

  std::cout << "Topology robustness (σ = 100, subsumption 50%, popularity 25%)\n"
               "paper §5.2: results \"similar in all cases\" across topologies\n\n";
  stats::Table t({"topology", "bytes: bcast", "siena", "summary", "prop hops: siena",
                  "summary", "event hops: siena", "summary"});
  bool orderings_hold = true;
  for (const auto& [name, g, backbone_like] : topologies) {
    const Row r = evaluate(g, 11);
    t.row({name, stats::fmt(r.broadcast_bytes), stats::fmt(r.siena_bytes),
           stats::fmt(r.summary_bytes), stats::fmt(r.siena_prop_hops),
           stats::fmt(r.summary_prop_hops), stats::fmt(r.siena_event_hops),
           stats::fmt(r.summary_event_hops)});
    if (backbone_like) {
      orderings_hold &= r.broadcast_bytes > r.siena_bytes;
      orderings_hold &= r.siena_bytes > r.summary_bytes;
      orderings_hold &= r.siena_prop_hops > r.summary_prop_hops;
    }
  }
  t.print(std::cout);
  std::cout << (orderings_hold
                    ? "\nbandwidth and propagation-hop orderings hold on every "
                      "backbone-like topology (the paper's claim)\n"
                    : "\nWARNING: an ordering flipped on a backbone-like topology\n");
  return orderings_hold ? 0 : 1;
}
