# Empty dependencies file for subsum_broker.
# This may be replaced when dependencies are built.
