file(REMOVE_RECURSE
  "CMakeFiles/subsum_broker.dir/subsum_broker.cpp.o"
  "CMakeFiles/subsum_broker.dir/subsum_broker.cpp.o.d"
  "subsum_broker"
  "subsum_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subsum_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
