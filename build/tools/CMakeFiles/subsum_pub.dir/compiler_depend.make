# Empty compiler generated dependencies file for subsum_pub.
# This may be replaced when dependencies are built.
