file(REMOVE_RECURSE
  "CMakeFiles/subsum_pub.dir/subsum_pub.cpp.o"
  "CMakeFiles/subsum_pub.dir/subsum_pub.cpp.o.d"
  "subsum_pub"
  "subsum_pub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subsum_pub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
