file(REMOVE_RECURSE
  "CMakeFiles/subsum_sub.dir/subsum_sub.cpp.o"
  "CMakeFiles/subsum_sub.dir/subsum_sub.cpp.o.d"
  "subsum_sub"
  "subsum_sub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subsum_sub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
