# Empty compiler generated dependencies file for subsum_sub.
# This may be replaced when dependencies are built.
