
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/broadcast.cpp" "src/CMakeFiles/subsum.dir/baseline/broadcast.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/baseline/broadcast.cpp.o.d"
  "/root/repo/src/config/config.cpp" "src/CMakeFiles/subsum.dir/config/config.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/config/config.cpp.o.d"
  "/root/repo/src/core/aacs.cpp" "src/CMakeFiles/subsum.dir/core/aacs.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/core/aacs.cpp.o.d"
  "/root/repo/src/core/interval.cpp" "src/CMakeFiles/subsum.dir/core/interval.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/core/interval.cpp.o.d"
  "/root/repo/src/core/matcher.cpp" "src/CMakeFiles/subsum.dir/core/matcher.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/core/matcher.cpp.o.d"
  "/root/repo/src/core/sacs.cpp" "src/CMakeFiles/subsum.dir/core/sacs.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/core/sacs.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/CMakeFiles/subsum.dir/core/serialize.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/core/serialize.cpp.o.d"
  "/root/repo/src/core/string_constraint.cpp" "src/CMakeFiles/subsum.dir/core/string_constraint.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/core/string_constraint.cpp.o.d"
  "/root/repo/src/core/summary.cpp" "src/CMakeFiles/subsum.dir/core/summary.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/core/summary.cpp.o.d"
  "/root/repo/src/model/constraint.cpp" "src/CMakeFiles/subsum.dir/model/constraint.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/model/constraint.cpp.o.d"
  "/root/repo/src/model/event.cpp" "src/CMakeFiles/subsum.dir/model/event.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/model/event.cpp.o.d"
  "/root/repo/src/model/parse.cpp" "src/CMakeFiles/subsum.dir/model/parse.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/model/parse.cpp.o.d"
  "/root/repo/src/model/schema.cpp" "src/CMakeFiles/subsum.dir/model/schema.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/model/schema.cpp.o.d"
  "/root/repo/src/model/sub_id.cpp" "src/CMakeFiles/subsum.dir/model/sub_id.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/model/sub_id.cpp.o.d"
  "/root/repo/src/model/subscription.cpp" "src/CMakeFiles/subsum.dir/model/subscription.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/model/subscription.cpp.o.d"
  "/root/repo/src/model/value.cpp" "src/CMakeFiles/subsum.dir/model/value.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/model/value.cpp.o.d"
  "/root/repo/src/net/broker_node.cpp" "src/CMakeFiles/subsum.dir/net/broker_node.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/net/broker_node.cpp.o.d"
  "/root/repo/src/net/client.cpp" "src/CMakeFiles/subsum.dir/net/client.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/net/client.cpp.o.d"
  "/root/repo/src/net/cluster.cpp" "src/CMakeFiles/subsum.dir/net/cluster.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/net/cluster.cpp.o.d"
  "/root/repo/src/net/framing.cpp" "src/CMakeFiles/subsum.dir/net/framing.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/net/framing.cpp.o.d"
  "/root/repo/src/net/protocol.cpp" "src/CMakeFiles/subsum.dir/net/protocol.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/net/protocol.cpp.o.d"
  "/root/repo/src/net/socket.cpp" "src/CMakeFiles/subsum.dir/net/socket.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/net/socket.cpp.o.d"
  "/root/repo/src/overlay/graph.cpp" "src/CMakeFiles/subsum.dir/overlay/graph.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/overlay/graph.cpp.o.d"
  "/root/repo/src/overlay/spanning_tree.cpp" "src/CMakeFiles/subsum.dir/overlay/spanning_tree.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/overlay/spanning_tree.cpp.o.d"
  "/root/repo/src/overlay/topologies.cpp" "src/CMakeFiles/subsum.dir/overlay/topologies.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/overlay/topologies.cpp.o.d"
  "/root/repo/src/routing/event_router.cpp" "src/CMakeFiles/subsum.dir/routing/event_router.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/routing/event_router.cpp.o.d"
  "/root/repo/src/routing/propagation.cpp" "src/CMakeFiles/subsum.dir/routing/propagation.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/routing/propagation.cpp.o.d"
  "/root/repo/src/siena/covering.cpp" "src/CMakeFiles/subsum.dir/siena/covering.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/siena/covering.cpp.o.d"
  "/root/repo/src/siena/poset.cpp" "src/CMakeFiles/subsum.dir/siena/poset.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/siena/poset.cpp.o.d"
  "/root/repo/src/siena/siena_network.cpp" "src/CMakeFiles/subsum.dir/siena/siena_network.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/siena/siena_network.cpp.o.d"
  "/root/repo/src/sim/bus.cpp" "src/CMakeFiles/subsum.dir/sim/bus.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/sim/bus.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/CMakeFiles/subsum.dir/sim/system.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/sim/system.cpp.o.d"
  "/root/repo/src/stats/stats.cpp" "src/CMakeFiles/subsum.dir/stats/stats.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/stats/stats.cpp.o.d"
  "/root/repo/src/util/bytes.cpp" "src/CMakeFiles/subsum.dir/util/bytes.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/util/bytes.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/subsum.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/subsum.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/util/strings.cpp.o.d"
  "/root/repo/src/workload/event_gen.cpp" "src/CMakeFiles/subsum.dir/workload/event_gen.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/workload/event_gen.cpp.o.d"
  "/root/repo/src/workload/stock_schema.cpp" "src/CMakeFiles/subsum.dir/workload/stock_schema.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/workload/stock_schema.cpp.o.d"
  "/root/repo/src/workload/sub_gen.cpp" "src/CMakeFiles/subsum.dir/workload/sub_gen.cpp.o" "gcc" "src/CMakeFiles/subsum.dir/workload/sub_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
