file(REMOVE_RECURSE
  "libsubsum.a"
)
