# Empty dependencies file for subsum.
# This may be replaced when dependencies are built.
