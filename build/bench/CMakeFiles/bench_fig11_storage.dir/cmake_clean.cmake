file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_storage.dir/bench_fig11_storage.cpp.o"
  "CMakeFiles/bench_fig11_storage.dir/bench_fig11_storage.cpp.o.d"
  "bench_fig11_storage"
  "bench_fig11_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
