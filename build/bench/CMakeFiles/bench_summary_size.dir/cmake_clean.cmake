file(REMOVE_RECURSE
  "CMakeFiles/bench_summary_size.dir/bench_summary_size.cpp.o"
  "CMakeFiles/bench_summary_size.dir/bench_summary_size.cpp.o.d"
  "bench_summary_size"
  "bench_summary_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summary_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
