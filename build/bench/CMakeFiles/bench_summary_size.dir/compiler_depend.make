# Empty compiler generated dependencies file for bench_summary_size.
# This may be replaced when dependencies are built.
