# Empty dependencies file for bench_fig9_prop_hops.
# This may be replaced when dependencies are built.
