# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.stock_ticker "/root/repo/build/examples/stock_ticker")
set_tests_properties(example.stock_ticker PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.news_network "/root/repo/build/examples/news_network")
set_tests_properties(example.news_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.siena_faceoff "/root/repo/build/examples/siena_faceoff")
set_tests_properties(example.siena_faceoff PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.evolving_system "/root/repo/build/examples/evolving_system")
set_tests_properties(example.evolving_system PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
