file(REMOVE_RECURSE
  "CMakeFiles/siena_faceoff.dir/siena_faceoff.cpp.o"
  "CMakeFiles/siena_faceoff.dir/siena_faceoff.cpp.o.d"
  "siena_faceoff"
  "siena_faceoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siena_faceoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
