# Empty compiler generated dependencies file for siena_faceoff.
# This may be replaced when dependencies are built.
