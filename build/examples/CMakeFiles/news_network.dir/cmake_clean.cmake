file(REMOVE_RECURSE
  "CMakeFiles/news_network.dir/news_network.cpp.o"
  "CMakeFiles/news_network.dir/news_network.cpp.o.d"
  "news_network"
  "news_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
