# Empty dependencies file for news_network.
# This may be replaced when dependencies are built.
