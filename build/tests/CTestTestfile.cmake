# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/subsum_tests[1]_include.cmake")
add_test(cli.smoke "bash" "/root/repo/tests/cli_smoke.sh" "/root/repo/build")
set_tests_properties(cli.smoke PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;32;add_test;/root/repo/tests/CMakeLists.txt;0;")
