# Empty dependencies file for subsum_tests.
# This may be replaced when dependencies are built.
