
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aacs.cpp" "tests/CMakeFiles/subsum_tests.dir/test_aacs.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_aacs.cpp.o.d"
  "/root/repo/tests/test_client_edge.cpp" "tests/CMakeFiles/subsum_tests.dir/test_client_edge.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_client_edge.cpp.o.d"
  "/root/repo/tests/test_event_routing.cpp" "tests/CMakeFiles/subsum_tests.dir/test_event_routing.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_event_routing.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/subsum_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_interval.cpp" "tests/CMakeFiles/subsum_tests.dir/test_interval.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_interval.cpp.o.d"
  "/root/repo/tests/test_mode_properties.cpp" "tests/CMakeFiles/subsum_tests.dir/test_mode_properties.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_mode_properties.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/subsum_tests.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_model.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/subsum_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_net_robustness.cpp" "tests/CMakeFiles/subsum_tests.dir/test_net_robustness.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_net_robustness.cpp.o.d"
  "/root/repo/tests/test_options.cpp" "tests/CMakeFiles/subsum_tests.dir/test_options.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_options.cpp.o.d"
  "/root/repo/tests/test_overlay.cpp" "tests/CMakeFiles/subsum_tests.dir/test_overlay.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_overlay.cpp.o.d"
  "/root/repo/tests/test_parse_config.cpp" "tests/CMakeFiles/subsum_tests.dir/test_parse_config.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_parse_config.cpp.o.d"
  "/root/repo/tests/test_propagation.cpp" "tests/CMakeFiles/subsum_tests.dir/test_propagation.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_propagation.cpp.o.d"
  "/root/repo/tests/test_sacs.cpp" "tests/CMakeFiles/subsum_tests.dir/test_sacs.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_sacs.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/subsum_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_siena.cpp" "tests/CMakeFiles/subsum_tests.dir/test_siena.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_siena.cpp.o.d"
  "/root/repo/tests/test_sim_system.cpp" "tests/CMakeFiles/subsum_tests.dir/test_sim_system.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_sim_system.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/subsum_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_sub_id.cpp" "tests/CMakeFiles/subsum_tests.dir/test_sub_id.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_sub_id.cpp.o.d"
  "/root/repo/tests/test_summary_algebra.cpp" "tests/CMakeFiles/subsum_tests.dir/test_summary_algebra.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_summary_algebra.cpp.o.d"
  "/root/repo/tests/test_summary_match.cpp" "tests/CMakeFiles/subsum_tests.dir/test_summary_match.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_summary_match.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/subsum_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/subsum_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/subsum_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/subsum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
