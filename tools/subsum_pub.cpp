// subsum_pub — publish events to a broker.
//
//   subsum_pub --config deploy.conf --port 7000 ...
//              'price = 8.40, symbol = OTE, volume = 132700'
//
// Each positional argument is one event (comma-separated attribute
// assignments). publish() is synchronous through the whole distributed
// walk, so when the tool exits every matched subscriber has been notified.
#include <cstdio>
#include <iostream>

#include "config/config.h"
#include "model/parse.h"
#include "net/client.h"
#include "tool_args.h"

namespace {

constexpr char kUsage[] =
    "usage: subsum_pub --config FILE --port BROKER_PORT 'EVENT'...\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace subsum;
  const tools::Args args(argc, argv);

  config::SystemSpec spec;
  try {
    spec = config::load_system_spec(args.required("config", kUsage));
  } catch (const config::ConfigError& e) {
    std::cerr << "config error: " << e.what() << "\n";
    return 1;
  }
  if (args.positional().empty()) {
    std::cerr << kUsage;
    return 2;
  }

  try {
    net::Client client(static_cast<uint16_t>(args.required_u64("port", kUsage)),
                       spec.schema);
    for (const auto& text : args.positional()) {
      const auto event = model::parse_event(spec.schema, text);
      const uint64_t trace = client.publish(event);
      std::cout << "published " << event.to_string(spec.schema);
      if (trace) {
        // Hex trace id, scrapeable: subsum_stats --trace <id> pulls the
        // event's span log from any broker on the walk.
        char buf[20];
        std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(trace));
        std::cout << " trace=" << buf;
      }
      std::cout << "\n";
    }
  } catch (const model::ParseError& e) {
    std::cerr << "event parse error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
