// subsum_sub — subscribe to a broker and print notifications.
//
//   subsum_sub --config deploy.conf --port 7003 ...
//              'price > 8.30 AND price < 8.70 AND symbol = OTE' ...
//              'exchange = "NYSE"'
//
// Each positional argument is one subscription (a conjunction of
// constraints joined by AND). The tool keeps running and prints every
// notification; stop with Ctrl-C. Pass --count N to exit after N
// notifications (useful for scripting). Pass --retry 1 to keep polling
// across broker outages: the client reconnects and re-attaches its
// subscriptions, so a crash-recovered broker (subsum_broker --data-dir)
// resumes notifying without a re-subscribe.
//
// Soft state (PROTOCOL v4): --lease N subscribes with an N-period lease —
// the broker expires the subscription at the Nth propagation boundary
// unless it is renewed or re-attached. --renew 1 sends a kLeaseRenew for
// every owned subscription once a second, keeping the lease alive for
// exactly as long as this process runs: kill the subscriber and its state
// ages out of the fleet on its own.
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <thread>

#include "config/config.h"
#include "model/parse.h"
#include "net/client.h"
#include "tool_args.h"

namespace {

constexpr char kUsage[] =
    "usage: subsum_sub --config FILE --port BROKER_PORT [--count N] "
    "[--retry 1] [--lease PERIODS] [--renew 1] 'SUBSCRIPTION'...\n";

std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop = true; }

}  // namespace

int main(int argc, char** argv) {
  using namespace subsum;
  using namespace std::chrono_literals;
  const tools::Args args(argc, argv);

  config::SystemSpec spec;
  try {
    spec = config::load_system_spec(args.required("config", kUsage));
  } catch (const config::ConfigError& e) {
    std::cerr << "config error: " << e.what() << "\n";
    return 1;
  }
  if (args.positional().empty()) {
    std::cerr << kUsage;
    return 2;
  }

  try {
    net::Client client(static_cast<uint16_t>(args.required_u64("port", kUsage)),
                       spec.schema);
    const auto lease = static_cast<uint32_t>(args.flag_u64("lease", 0));
    for (const auto& text : args.positional()) {
      const auto sub = model::parse_subscription(spec.schema, text);
      const auto id = lease > 0 ? client.subscribe(sub, lease) : client.subscribe(sub);
      // endl: scripts tail the redirected log to know the subscription
      // landed, so the line must not sit in a full buffer.
      std::cout << "subscribed " << id.to_string() << ": " << sub.to_string(spec.schema)
                << (lease > 0 ? " (lease " + std::to_string(lease) + " periods)" : "")
                << std::endl;
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    uint64_t remaining = args.flag_u64("count", 0);
    const bool retry = args.flag_u64("retry", 0) != 0;
    const bool renew = args.flag_u64("renew", 0) != 0;
    auto next_renew = std::chrono::steady_clock::now() + 1s;
    while (!g_stop) {
      if (renew && std::chrono::steady_clock::now() >= next_renew) {
        next_renew = std::chrono::steady_clock::now() + 1s;
        try {
          client.renew_leases();
        } catch (const net::NetError&) {
          if (!retry) throw;  // with --retry the next poll reconnects
        }
      }
      std::optional<net::NotifyMsg> note;
      try {
        note = client.next_notification(250ms);
      } catch (const net::NetError&) {
        if (!retry) throw;
        // Broker down: keep polling; each poll makes one reconnect (and
        // re-attach) attempt, so we resume once it recovers.
        std::this_thread::sleep_for(250ms);
        continue;
      }
      if (!note) continue;
      std::cout << "event " << note->event.to_string(spec.schema) << " ->";
      for (const auto& id : note->ids) std::cout << " " << id.to_string();
      std::cout << std::endl;
      if (remaining > 0 && --remaining == 0) break;
    }
  } catch (const model::ParseError& e) {
    std::cerr << "subscription parse error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
