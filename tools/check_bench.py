#!/usr/bin/env python3
"""check_bench.py — gate the paper-figure benches against committed baselines.

Compares fresh BENCH_<name>.json files (written by bench_fig8_bandwidth,
bench_fig9_prop_hops, bench_fig10_event_hops, bench_fig11_storage,
bench_ablations, and tools/bench_json for the matching-core trajectory)
against the baselines committed at the repo root, with a per-metric
tolerance band:

    pass  iff  |fresh - base| <= abs_tol + rel_tol * |base|

The fig benches are deterministic (fixed seeds, count/byte metrics — no
wall-clock timings), so the default band is tight; a failure means a real
curve shift (e.g. an AACS/SACS edit exploding the false-positive rate),
not noise. To accept an intentional shift, re-run the benches at
SUBSUM_BENCH_SCALE=1 from the repo root and commit the regenerated
BENCH_*.json files.

Usage:
    check_bench.py --baseline-dir . --fresh-dir build \\
        [--names fig8 fig9 fig10 fig11 ablations] \\
        [--rel-tol 0.05] [--abs-tol 1e-6] [--tol 'GLOB=REL' ...]

--tol widens (or tightens) the band for metrics matching a glob, e.g.
    --tol 'ablations:forward.*=0.15'    (metric keys are NAME:KEY)
The last matching --tol wins.

The profiler-overhead gate (BENCH_profile.json, written by bench_profile)
is wall-clock and is NOT in the default name set: CI runs it as a separate
invocation whose band is absolute percentage points around a 0.0 baseline —
    check_bench.py --baseline-dir . --fresh-dir build \\
        --names profile --abs-tol 5.0 --tol 'profile:attributed_pct=0.10'
i.e. sampling at 97 Hz may cost at most 5% of sustained match throughput,
and ≥85% of captured samples must attribute to named thread roles.

Exit status: 0 all gates pass, 1 any metric out of band or file/metric
missing, 2 bad invocation.
"""

import argparse
import fnmatch
import json
import os
import sys

DEFAULT_NAMES = ["fig8", "fig9", "fig10", "fig11", "ablations", "matching", "churn",
                 "overload"]


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as e:
        print(f"FAIL  {path}: not valid JSON ({e})")
        return None


def rel_tol_for(qualified, overrides, default):
    tol = default
    for glob, value in overrides:
        if fnmatch.fnmatch(qualified, glob):
            tol = value
    return tol


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline-dir", required=True)
    ap.add_argument("--fresh-dir", required=True)
    ap.add_argument("--names", nargs="+", default=DEFAULT_NAMES)
    ap.add_argument("--rel-tol", type=float, default=0.05,
                    help="default relative tolerance (fraction, default 0.05)")
    ap.add_argument("--abs-tol", type=float, default=1e-6,
                    help="absolute slack added to every band (default 1e-6)")
    ap.add_argument("--tol", action="append", default=[], metavar="GLOB=REL",
                    help="per-metric override on NAME:KEY (repeatable, last match wins)")
    args = ap.parse_args()

    overrides = []
    for spec in args.tol:
        glob, sep, value = spec.partition("=")
        if not sep:
            print(f"bad --tol {spec!r}: expected GLOB=REL", file=sys.stderr)
            return 2
        try:
            overrides.append((glob, float(value)))
        except ValueError:
            print(f"bad --tol {spec!r}: {value!r} is not a number", file=sys.stderr)
            return 2

    failures = 0
    checked = 0
    for name in args.names:
        base_path = os.path.join(args.baseline_dir, f"BENCH_{name}.json")
        fresh_path = os.path.join(args.fresh_dir, f"BENCH_{name}.json")
        base = load(base_path)
        fresh = load(fresh_path)
        if base is None:
            print(f"FAIL  {name}: baseline {base_path} missing or unreadable")
            failures += 1
            continue
        if fresh is None:
            print(f"FAIL  {name}: fresh run {fresh_path} missing or unreadable "
                  "(did the bench binary run?)")
            failures += 1
            continue

        # A workload mismatch (usually SUBSUM_BENCH_SCALE) makes every metric
        # incomparable — report it once instead of a wall of red.
        if base.get("workload") != fresh.get("workload"):
            print(f"FAIL  {name}: workload mismatch — baseline {base.get('workload')} "
                  f"vs fresh {fresh.get('workload')}; run the bench with the "
                  "baseline's SUBSUM_BENCH_SCALE")
            failures += 1
            continue

        base_metrics = base.get("metrics", {})
        fresh_metrics = fresh.get("metrics", {})
        for key, expected in sorted(base_metrics.items()):
            checked += 1
            qualified = f"{name}:{key}"
            if key not in fresh_metrics:
                print(f"FAIL  {qualified}: metric missing from fresh run")
                failures += 1
                continue
            actual = fresh_metrics[key]
            rel = rel_tol_for(qualified, overrides, args.rel_tol)
            band = args.abs_tol + rel * abs(expected)
            delta = actual - expected
            if abs(delta) > band:
                pct = (delta / expected * 100.0) if expected else float("inf")
                print(f"FAIL  {qualified}: {actual:g} vs baseline {expected:g} "
                      f"({pct:+.1f}%, band ±{band:g})")
                failures += 1
        for key in sorted(set(fresh_metrics) - set(base_metrics)):
            print(f"note  {name}:{key}: new metric not in baseline "
                  "(commit a regenerated baseline to start gating it)")

    verdict = "FAIL" if failures else "OK"
    print(f"{verdict}: {checked} metrics checked across {len(args.names)} benches, "
          f"{failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
