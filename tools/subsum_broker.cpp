// subsum_broker — run one broker daemon of a deployment.
//
//   subsum_broker --config deploy.conf --id 3 --port 7003 ...
//                 --peers 7000,7001,...,7012 [--propagate-every 10]
//                 [--data-dir DIR]
//
// With --data-dir the broker is crash-durable: subscriptions are WAL-logged
// to DIR before being acked, the state is periodically snapshotted, and a
// restart with the same --data-dir recovers the subscription set and
// summaries (clients re-attach instead of re-subscribing). Each restart
// bumps the broker's epoch so peers discard its pre-crash routing state.
//
// Every broker of the deployment is started with the same --config and
// --peers list (ports in broker-id order; peers[id] must equal --port).
// One broker (any) may be given --propagate-every N to act as the
// propagation controller, clocking Algorithm 2's iterations across the
// deployment every N seconds.
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <thread>

#include "config/config.h"
#include "net/broker_node.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "tool_args.h"

namespace {

constexpr char kUsage[] =
    "usage: subsum_broker --config FILE --id N --port P --peers P0,P1,...\n"
    "                     [--propagate-every SECONDS] [--data-dir DIR]\n"
    "overload governor (0 = unlimited unless noted):\n"
    "  [--publish-rate N]         publish admissions/sec (token bucket)\n"
    "  [--publish-burst N]        bucket burst (0 = one second of rate)\n"
    "  [--max-connections N]      concurrent connection cap\n"
    "  [--max-subscriptions N]    local subscription cap\n"
    "  [--retry-after-ms N]       hint stamped on capacity rejections\n"
    "  [--conn-queue-bytes N]     per-connection outbound queue cap\n"
    "  [--conn-queue-frames N]    per-connection outbound frame cap\n"
    "  [--write-stall-ms N]       slow-consumer disconnect deadline (0 clamps to default)\n"
    "  [--conn-sndbuf-bytes N]    SO_SNDBUF clamp on accepted connections\n"
    "  [--memory-budget-bytes N]  global budget driving the shed ladder\n"
    "  [--breaker-open-after N]   terminal failures opening a peer breaker\n"
    "  [--breaker-cooldown-ms N]  breaker cooldown before a half-open probe\n"
    "observability (obs/):\n"
    "  [--log-level LVL]          structured JSONL logging: debug|info|warn|error\n"
    "                             (default off — the broker stays silent)\n"
    "  [--log-file FILE]          log sink (append; default stderr)\n"
    "  [--log-rate N]             max log lines/sec before rate limiting (default 200)\n"
    "  [--flight-capacity N]      flight-recorder ring size (default 1024)\n"
    "  [--flight-dump FILE]       dump path for stop/fatal-signal/kDump\n"
    "                             (default <data-dir>/flight.bin when durable)\n"
    "  [--profile-hz N]           arm the sampling CPU profiler at N Hz from\n"
    "                             startup (default off; kProfile can arm it later)\n"
    "  [--profile-ring N]         profiler sample-ring capacity (default 4096)\n";

/// Governor knobs, each defaulting to the GovernorConfig default.
subsum::net::GovernorConfig governor_from_args(const subsum::tools::Args& args) {
  subsum::net::GovernorConfig g;
  g.publish_rate_per_sec = args.flag_u64("publish-rate", g.publish_rate_per_sec);
  g.publish_burst = args.flag_u64("publish-burst", g.publish_burst);
  g.max_connections = args.flag_u64("max-connections", g.max_connections);
  g.max_subscriptions = args.flag_u64("max-subscriptions", g.max_subscriptions);
  g.retry_after = std::chrono::milliseconds(
      args.flag_u64("retry-after-ms", static_cast<uint64_t>(g.retry_after.count())));
  g.conn_queue_max_bytes = args.flag_u64("conn-queue-bytes", g.conn_queue_max_bytes);
  g.conn_queue_max_frames = args.flag_u64("conn-queue-frames", g.conn_queue_max_frames);
  g.write_stall_timeout = std::chrono::milliseconds(args.flag_u64(
      "write-stall-ms", static_cast<uint64_t>(g.write_stall_timeout.count())));
  g.conn_sndbuf_bytes = args.flag_u64("conn-sndbuf-bytes", g.conn_sndbuf_bytes);
  g.memory_budget_bytes = args.flag_u64("memory-budget-bytes", g.memory_budget_bytes);
  g.breaker_open_after = static_cast<uint32_t>(
      args.flag_u64("breaker-open-after", g.breaker_open_after));
  g.breaker_cooldown = std::chrono::milliseconds(args.flag_u64(
      "breaker-cooldown-ms", static_cast<uint64_t>(g.breaker_cooldown.count())));
  return g;
}

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop = true; }

}  // namespace

int main(int argc, char** argv) {
  using namespace subsum;
  const tools::Args args(argc, argv);

  config::SystemSpec spec;
  try {
    spec = config::load_system_spec(args.required("config", kUsage));
  } catch (const config::ConfigError& e) {
    std::cerr << "config error: " << e.what() << "\n";
    return 1;
  }

  const auto id = static_cast<overlay::BrokerId>(args.required_u64("id", kUsage));
  const auto port = static_cast<uint16_t>(args.required_u64("port", kUsage));
  auto peers = args.flag_ports("peers");
  if (id >= spec.graph.size() || peers.size() != spec.graph.size() || peers[id] != port) {
    std::cerr << "--id/--port/--peers inconsistent with the config's "
              << spec.graph.size() << "-broker overlay\n"
              << kUsage;
    return 2;
  }

  const net::RpcPolicy rpc;  // deadlines + backoff for peer RPCs
  net::BrokerConfig cfg;
  cfg.id = id;
  cfg.schema = spec.schema;
  cfg.graph = spec.graph;
  cfg.port = port;
  cfg.rpc = rpc;
  if (auto dir = args.flag("data-dir")) cfg.data_dir = *dir;
  cfg.governor = governor_from_args(args);
  cfg.flight_capacity = args.flag_u64("flight-capacity", cfg.flight_capacity);
  if (auto path = args.flag("flight-dump")) cfg.flight_dump_path = *path;
  std::FILE* log_file = nullptr;
  if (auto lvl = args.flag("log-level")) cfg.log_level = obs::parse_log_level(*lvl);
  if (auto path = args.flag("log-file")) {
    log_file = std::fopen(path->c_str(), "a");
    if (!log_file) {
      std::cerr << "cannot open log file " << *path << "\n";
      return 2;
    }
    cfg.log_sink = log_file;  // outlives the node: closed at process exit
  }
  cfg.log_max_lines_per_sec = args.flag_u64("log-rate", cfg.log_max_lines_per_sec);
  cfg.profile_hz = static_cast<uint32_t>(args.flag_u64("profile-hz", cfg.profile_hz));
  cfg.profile_ring_capacity = args.flag_u64("profile-ring", cfg.profile_ring_capacity);

  try {
    net::BrokerNode node(std::move(cfg));
    node.set_peer_ports(peers);
    // Crash black box: on SIGSEGV/SIGABRT/... the handler appends a
    // fatal-signal record and dumps the ring before re-raising, so a
    // post-mortem reads the transitions that preceded death.
    static std::string fatal_path;  // must outlive the handler
    fatal_path = node.flight_dump_path();
    if (!fatal_path.empty()) {
      obs::install_fatal_dump(&node.flight_recorder(), fatal_path.c_str());
    }
    std::cout << "broker " << id << " (degree " << spec.graph.degree(id)
              << ") listening on 127.0.0.1:" << node.port();
    if (node.epoch() > 0) {
      const auto rec = node.recovery();
      std::cout << ", epoch " << node.epoch();
      if (rec.recovered) {
        std::cout << " (recovered " << node.snapshot().local_subs << " subscriptions"
                  << (rec.wal_torn ? ", torn WAL tail discarded" : "")
                  << (rec.snapshot_fell_back ? ", snapshot corrupt: log-only replay" : "")
                  << ")";
      }
    }
    std::cout << std::endl;

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    const uint64_t period = args.flag_u64("propagate-every", 0);
    auto last = std::chrono::steady_clock::now();
    while (!g_stop) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      if (period == 0) continue;
      const auto now = std::chrono::steady_clock::now();
      if (now - last < std::chrono::seconds(period)) continue;
      last = now;
      // Act as the controller: clock the iterations across all brokers.
      // An unreachable broker is skipped for the rest of the period and
      // reported; live brokers still complete the round.
      std::vector<char> failed(peers.size(), 0);
      const auto max_degree = static_cast<uint32_t>(spec.graph.max_degree());
      for (uint32_t it = 1; it <= max_degree; ++it) {
        for (size_t b = 0; b < peers.size(); ++b) {
          if (failed[b]) continue;
          try {
            net::Socket s = net::connect_local(peers[b], rpc.connect_timeout);
            s.set_send_timeout(rpc.io_timeout);
            s.set_recv_timeout(rpc.io_timeout * 10);
            net::send_frame(s, net::MsgKind::kTrigger, net::encode(net::TriggerMsg{it}));
            const auto ack = net::recv_frame(s);
            if (!ack || ack->kind != net::MsgKind::kTriggerAck) {
              throw net::NetError("trigger not acknowledged");
            }
          } catch (const std::exception& e) {
            failed[b] = 1;
            std::cerr << "propagation: broker " << b << " unreachable ("
                      << e.what() << "); continuing without it\n";
          }
        }
      }
      std::cout << "propagation period completed" << std::endl;
    }
    std::cout << "broker " << id << " shutting down\n";
    node.stop();
  } catch (const std::exception& e) {
    std::cerr << "broker failed: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
