// subsum_blackbox — read flight-recorder dumps and print one merged,
// human-readable incident timeline across brokers.
//
//   subsum_blackbox dump1.bin [dump2.bin ...]        # read dump files
//                   [--ports P0,P1,...]              # pull live dumps (kDump RPC)
//                   [--out-dir DIR]                  # save pulled dumps as
//                                                    #   DIR/broker-<id>.flight.bin
//
// Files and live pulls can be mixed; every decodable dump contributes its
// records to the single timeline (obs::format_timeline), sorted by
// wall-anchored time so lines from different brokers interleave in causal
// order. A torn dump (crash mid-write) is read up to its last intact
// record and flagged; an unreadable file (bad magic/header) is reported
// and skipped. Exit code: 0 when at least one dump was read, 1 when none
// was, 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "model/schema.h"
#include "net/client.h"
#include "obs/flight_recorder.h"
#include "tool_args.h"

namespace {

constexpr char kUsage[] =
    "usage: subsum_blackbox [FILE ...] [--ports P0,P1,...] [--out-dir DIR]\n";

using namespace subsum;

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const auto* p = reinterpret_cast<const std::byte*>(raw.data());
  return {p, p + raw.size()};
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  const std::vector<uint16_t> ports = args.flag_ports("ports");
  const auto out_dir = args.flag("out-dir");
  if (args.positional().empty() && ports.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  std::vector<obs::FrDump> dumps;

  for (const std::string& path : args.positional()) {
    const auto bytes = read_file(path);
    if (bytes.empty()) {
      std::fprintf(stderr, "subsum_blackbox: cannot read %s\n", path.c_str());
      continue;
    }
    auto dump = obs::decode_dump(bytes);
    if (!dump) {
      std::fprintf(stderr, "subsum_blackbox: %s: not a flight-recorder dump\n",
                   path.c_str());
      continue;
    }
    if (dump->truncated) {
      std::fprintf(stderr,
                   "subsum_blackbox: %s: torn tail, read %zu intact records\n",
                   path.c_str(), dump->records.size());
    }
    dumps.push_back(std::move(*dump));
  }

  if (!ports.empty()) {
    // kDump is schema-free, like kStats: an empty schema works anywhere.
    const model::Schema no_schema;
    net::ClientOptions copts;
    copts.connect_timeout = std::chrono::milliseconds(500);
    copts.rpc_timeout = std::chrono::milliseconds(5000);
    copts.auto_reconnect = false;
    for (uint16_t port : ports) {
      try {
        net::Client c(port, no_schema, copts);
        const auto bytes = c.flight_dump();
        auto dump = obs::decode_dump(bytes);
        if (!dump) {
          std::fprintf(stderr, "subsum_blackbox: port %u: bad dump reply\n", port);
          continue;
        }
        if (out_dir) {
          const std::string path =
              *out_dir + "/broker-" + std::to_string(dump->broker) + ".flight.bin";
          std::ofstream out(path, std::ios::binary | std::ios::trunc);
          out.write(reinterpret_cast<const char*>(bytes.data()),
                    static_cast<std::streamsize>(bytes.size()));
          if (!out) std::fprintf(stderr, "subsum_blackbox: cannot write %s\n", path.c_str());
        }
        dumps.push_back(std::move(*dump));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "subsum_blackbox: port %u: %s\n", port, e.what());
      }
    }
  }

  if (dumps.empty()) {
    std::fprintf(stderr, "subsum_blackbox: no readable dumps\n");
    return 1;
  }
  for (const auto& d : dumps) {
    std::printf("# broker %u: %zu records (%llu appended)%s\n", d.broker,
                d.records.size(), static_cast<unsigned long long>(d.appended),
                d.truncated ? " [truncated]" : "");
  }
  std::fputs(obs::format_timeline(dumps).c_str(), stdout);
  return 0;
}
