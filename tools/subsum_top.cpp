// subsum_top — live fleet-wide summary-quality view.
//
//   subsum_top --ports 7000,7001,7002                # live table, 2s interval
//              [--interval-ms N]                     # scrape period (default 2000)
//              [--iterations N]                      # stop after N ticks (0 = forever)
//              [--jsonl FILE]                        # append one JSON line per tick
//              [--top K]                             # hot-broker list depth (default 3)
//              [--once]                              # single health probe (see below)
//
// --once scrapes each broker exactly once, prints one plain line per broker
// (no TTY table, no ANSI), and exits nonzero when any broker is down or the
// control-plane-shed alarm fires (subsum_shed_total{class="control"} > 0 —
// "control traffic is never shed" is a hard invariant). Built for CI health
// gates and cron probes.
//
// Every tick scrapes each broker's Prometheus exposition (the kStats RPC,
// via net::Client so reconnect/backoff come for free — it works through
// the fault-injector proxy too), parses it with obs::parse_prometheus_text,
// and renders:
//
//   * one row per broker: up/down, epoch, uptime, local subs, lease
//     population and expiries, publish and walk-efficiency counters,
//     sampled summary precision, false-positive ids, wire-vs-model drift,
//     and the soft-state announcement mix (delta sends, full sends,
//     kSummarySync repair pulls);
//   * fleet aggregates: totals across live brokers, fleet precision
//     (Σ exact / Σ candidates — NOT a mean of ratios), min/max drift, and
//     the top-K brokers by false-positive count and by walk visit load.
//
// A down broker shows as "down" and is skipped in aggregates; the exit
// code is nonzero only when the final tick reached no broker at all.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "model/schema.h"
#include "net/client.h"
#include "obs/promtext.h"
#include "tool_args.h"

namespace {

constexpr char kUsage[] =
    "usage: subsum_top --ports P0,P1,... [--interval-ms N] [--iterations N]\n"
    "                  [--jsonl FILE] [--top K] [--once]\n";

using namespace subsum;

/// The metrics one broker row is built from (absent metrics read as 0).
struct BrokerRow {
  uint16_t port = 0;
  bool up = false;
  std::string version;
  double epoch = 0;
  double uptime_s = 0;
  double local_subs = 0;
  double held_wire_bytes = 0;
  double publishes = 0;
  double walk_visits = 0;
  double walk_forward = 0;
  double walk_deliver = 0;
  double walk_reselects = 0;
  // Soft-state health (PROTOCOL v4): lease population/expiries and the
  // delta-announcement machinery — a nonzero steady-state sync or mismatch
  // rate means links keep diverging and repairing instead of staying in
  // lockstep.
  double active_leases = 0;
  double lease_expired = 0;
  double delta_sends = 0;
  double full_sends = 0;
  double digest_mismatch = 0;
  double sync_pulls = 0;
  double sampled = 0;
  double candidate_ids = 0;
  double exact_ids = 0;
  double fp_ids = 0;
  double precision = 1.0;
  double drift = 0;
  // Overload health (net/governor.h): degradation-ladder rung, accounted
  // outbound bytes, shed totals (control sheds broken out — any nonzero
  // value there is a bug worth paging on), and slow-consumer disconnects.
  double health_rung = 0;
  double queue_bytes = 0;
  double sheds = 0;          // all classes summed
  double control_sheds = 0;  // must stay 0
  double slow_disconnects = 0;
  double rejected_publishes = 0;
  // Trace-ring overflow: spans silently overwritten (oldest-first) since
  // start. A climbing value means the ring is undersized for the publish
  // rate and trace chains are losing their tails.
  double trace_drops = 0;
  // Frozen matching core: shard balance from subsum_match_shard_visits_total
  // (see core/frozen_index.h). imbalance = hottest shard / mean shard, 1.0
  // meaning perfectly even counter-sweep load; 0 shards = index not engaged.
  size_t shard_count = 0;
  double shard_visits = 0;
  double shard_imbalance = 0;
  // Resource attribution (obs/memacct.h, obs/profiler.h): process RSS,
  // busy cores (sum of per-role duty cycles), the component ledger's total
  // and its largest line, and the governor's memory budget for the fleet
  // hog check.
  double rss_bytes = 0;
  double cpu_cores = 0;
  double mem_total = 0;
  std::string mem_top_component;
  double mem_top_bytes = 0;
  double mem_budget = 0;
};

double find_value(const std::vector<obs::PromSample>& samples, std::string_view name) {
  for (const auto& s : samples) {
    if (s.name == name) return s.value;
  }
  return 0;
}

BrokerRow parse_row(uint16_t port, const std::string& text) {
  BrokerRow r;
  r.port = port;
  r.up = true;
  const auto samples = obs::parse_prometheus_text(text);
  for (const auto& s : samples) {
    if (s.name == "subsum_build_info") {
      if (const auto* v = s.label("version")) r.version = *v;
    }
  }
  r.epoch = find_value(samples, "subsum_epoch");
  r.uptime_s = find_value(samples, "subsum_uptime_seconds");
  r.local_subs = find_value(samples, "subsum_local_subs");
  r.held_wire_bytes = find_value(samples, "subsum_held_wire_bytes");
  r.publishes = find_value(samples, "subsum_publishes_total");
  r.walk_visits = find_value(samples, "subsum_walk_visits_total");
  r.walk_forward = find_value(samples, "subsum_walk_forward_hops_total");
  r.walk_deliver = find_value(samples, "subsum_walk_delivery_hops_total");
  r.walk_reselects = find_value(samples, "subsum_walk_reselects_total");
  r.active_leases = find_value(samples, "subsum_active_leases");
  r.lease_expired = find_value(samples, "subsum_lease_expired_total");
  r.delta_sends = find_value(samples, "subsum_summary_delta_sends_total");
  r.full_sends = find_value(samples, "subsum_summary_full_sends_total");
  r.digest_mismatch = find_value(samples, "subsum_summary_digest_mismatch_total");
  r.sync_pulls = find_value(samples, "subsum_summary_sync_total");
  r.sampled = find_value(samples, "subsum_quality_sampled_events_total");
  r.candidate_ids = find_value(samples, "subsum_quality_candidate_ids_total");
  r.exact_ids = find_value(samples, "subsum_quality_exact_ids_total");
  r.fp_ids = find_value(samples, "subsum_summary_false_positive_ids_total");
  r.precision = r.candidate_ids > 0 ? r.exact_ids / r.candidate_ids : 1.0;
  r.drift = find_value(samples, "subsum_summary_model_drift_ratio");
  r.health_rung = find_value(samples, "subsum_health_rung");
  r.queue_bytes = find_value(samples, "subsum_outbound_usage_bytes");
  r.slow_disconnects = find_value(samples, "subsum_slow_consumer_disconnects_total");
  r.rejected_publishes = find_value(samples, "subsum_governor_rejected_publishes_total");
  r.trace_drops = find_value(samples, "subsum_trace_spans_dropped_total");
  r.rss_bytes = find_value(samples, "subsum_process_rss_bytes");
  r.mem_budget = find_value(samples, "subsum_memory_budget_bytes");
  double hottest = 0;
  for (const auto& s : samples) {
    if (s.name == "subsum_thread_duty_cycle") r.cpu_cores += s.value;
    if (s.name == "subsum_mem_bytes") {
      r.mem_total += s.value;
      if (s.value > r.mem_top_bytes) {
        r.mem_top_bytes = s.value;
        if (const auto* c = s.label("component")) r.mem_top_component = *c;
      }
    }
    if (s.name == "subsum_shed_total") {
      r.sheds += s.value;
      if (const auto* cls = s.label("class"); cls && *cls == "control") {
        r.control_sheds += s.value;
      }
    }
    if (s.name != "subsum_match_shard_visits_total") continue;
    ++r.shard_count;
    r.shard_visits += s.value;
    hottest = std::max(hottest, s.value);
  }
  if (r.shard_count > 0 && r.shard_visits > 0) {
    r.shard_imbalance = hottest / (r.shard_visits / static_cast<double>(r.shard_count));
  }
  return r;
}

void render(const std::vector<BrokerRow>& rows, size_t top_k, size_t tick) {
  std::printf("subsum_top  tick %zu\n", tick);
  std::printf("%-6s %-5s %-8s %-6s %-7s %-6s %-6s %-9s %-9s %-7s %-7s %-8s %-7s %-9s %-6s %-6s %-6s %-6s %-6s %-5s %-4s %-8s %-6s %-6s %-6s %-5s %-6s %-12s\n",
              "port", "up", "version", "epoch", "subs", "leases", "expird", "publishes",
              "visits", "fwd", "deliver", "reselect", "fp_ids", "precision", "drift",
              "shards", "sh_imb", "dsend", "fsend", "sync", "rung", "qbytes", "shed",
              "slowdc", "trdrop", "cpu%", "rssMB", "memtop");
  for (const auto& r : rows) {
    if (!r.up) {
      std::printf("%-6u %-5s %s\n", r.port, "down", "-");
      continue;
    }
    // memtop names the ledger's largest component: "where did this broker's
    // memory go" without leaving the table.
    const std::string memtop =
        r.mem_top_component.empty()
            ? "-"
            : r.mem_top_component + "(" +
                  std::to_string(static_cast<long long>(r.mem_top_bytes / 1024.0)) + "K)";
    std::printf("%-6u %-5s %-8s %-6.0f %-7.0f %-6.0f %-6.0f %-9.0f %-9.0f %-7.0f %-7.0f %-8.0f %-7.0f %-9.4f %-6.3f %-6zu %-6.2f %-6.0f %-6.0f %-5.0f %-4.0f %-8.0f %-6.0f %-6.0f %-6.0f %-5.0f %-6.1f %-12s\n",
                r.port, "up", r.version.c_str(), r.epoch, r.local_subs, r.active_leases,
                r.lease_expired, r.publishes, r.walk_visits, r.walk_forward, r.walk_deliver,
                r.walk_reselects, r.fp_ids, r.precision, r.drift, r.shard_count,
                r.shard_imbalance, r.delta_sends, r.full_sends, r.sync_pulls, r.health_rung,
                r.queue_bytes, r.sheds, r.slow_disconnects, r.trace_drops,
                r.cpu_cores * 100.0, r.rss_bytes / (1024.0 * 1024.0), memtop.c_str());
  }

  std::vector<const BrokerRow*> live;
  for (const auto& r : rows) {
    if (r.up) live.push_back(&r);
  }
  if (live.empty()) {
    std::printf("fleet: no broker reachable\n");
    return;
  }
  double cand = 0, exact = 0, fp = 0, visits = 0, fwd = 0, del = 0, resel = 0, pubs = 0;
  double leases = 0, expired = 0, dsend = 0, fsend = 0, mism = 0, syncs = 0;
  double sheds = 0, ctl_sheds = 0, qbytes = 0, slowdc = 0, rej_pubs = 0, max_rung = 0;
  double dmin = live.front()->drift, dmax = live.front()->drift;
  for (const auto* r : live) {
    sheds += r->sheds;
    ctl_sheds += r->control_sheds;
    qbytes += r->queue_bytes;
    slowdc += r->slow_disconnects;
    rej_pubs += r->rejected_publishes;
    max_rung = std::max(max_rung, r->health_rung);
    cand += r->candidate_ids;
    exact += r->exact_ids;
    fp += r->fp_ids;
    visits += r->walk_visits;
    fwd += r->walk_forward;
    del += r->walk_deliver;
    resel += r->walk_reselects;
    pubs += r->publishes;
    leases += r->active_leases;
    expired += r->lease_expired;
    dsend += r->delta_sends;
    fsend += r->full_sends;
    mism += r->digest_mismatch;
    syncs += r->sync_pulls;
    dmin = std::min(dmin, r->drift);
    dmax = std::max(dmax, r->drift);
  }
  // Fleet precision weights brokers by sampled candidate ids, as eq (1)-(2)
  // would: a ratio-of-sums, not a mean of per-broker ratios.
  const double fleet_precision = cand > 0 ? exact / cand : 1.0;
  std::printf(
      "fleet: %zu/%zu up  publishes=%.0f visits=%.0f fwd=%.0f deliver=%.0f reselect=%.0f\n",
      live.size(), rows.size(), pubs, visits, fwd, del, resel);
  std::printf("fleet: fp_ids=%.0f precision=%.4f drift=[%.3f, %.3f]\n", fp, fleet_precision,
              dmin, dmax);
  std::printf(
      "fleet: leases=%.0f expired=%.0f delta_sends=%.0f full_sends=%.0f mismatches=%.0f "
      "syncs=%.0f\n",
      leases, expired, dsend, fsend, mism, syncs);
  std::printf(
      "fleet: rung<=%.0f queue_bytes=%.0f sheds=%.0f control_sheds=%.0f "
      "slow_disconnects=%.0f rejected_publishes=%.0f%s\n",
      max_rung, qbytes, sheds, ctl_sheds, slowdc, rej_pubs,
      ctl_sheds > 0 ? "  ** CONTROL-PLANE SHED: BUG **" : "");

  auto print_top = [&](const char* label, auto key) {
    auto sorted = live;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](const BrokerRow* a, const BrokerRow* b) { return key(*a) > key(*b); });
    std::printf("top by %s:", label);
    for (size_t i = 0; i < std::min(top_k, sorted.size()); ++i) {
      std::printf(" %u(%.0f)", sorted[i]->port, key(*sorted[i]));
    }
    std::printf("\n");
  };
  print_top("fp_ids", [](const BrokerRow& r) { return r.fp_ids; });
  print_top("walk visits", [](const BrokerRow& r) { return r.walk_visits; });
  print_top("shard imbalance", [](const BrokerRow& r) { return r.shard_imbalance; });

  // Memory-budget watch: name every broker whose accounted components sit
  // above 80% of its governor budget — the ladder is one growth spurt away.
  bool header = false;
  for (const auto* r : live) {
    if (r->mem_budget <= 0 || r->mem_total < 0.8 * r->mem_budget) continue;
    if (!header) {
      std::printf("fleet: over 80%% of memory budget:");
      header = true;
    }
    std::printf(" %u(%.0f%%)", r->port, 100.0 * r->mem_total / r->mem_budget);
  }
  if (header) std::printf("\n");
}

void append_jsonl(std::ostream& os, const std::vector<BrokerRow>& rows, size_t tick) {
  const auto now = std::chrono::duration_cast<std::chrono::seconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
  os << "{\"tick\":" << tick << ",\"unix_s\":" << now << ",\"brokers\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    if (i) os << ",";
    os << "{\"port\":" << r.port << ",\"up\":" << (r.up ? "true" : "false");
    if (r.up) {
      os << ",\"epoch\":" << r.epoch << ",\"uptime_s\":" << r.uptime_s
         << ",\"local_subs\":" << r.local_subs << ",\"publishes\":" << r.publishes
         << ",\"walk_visits\":" << r.walk_visits << ",\"walk_forward\":" << r.walk_forward
         << ",\"walk_deliver\":" << r.walk_deliver
         << ",\"walk_reselects\":" << r.walk_reselects << ",\"sampled\":" << r.sampled
         << ",\"candidate_ids\":" << r.candidate_ids << ",\"exact_ids\":" << r.exact_ids
         << ",\"fp_ids\":" << r.fp_ids << ",\"precision\":" << r.precision
         << ",\"model_drift_ratio\":" << r.drift
         << ",\"held_wire_bytes\":" << r.held_wire_bytes
         << ",\"active_leases\":" << r.active_leases
         << ",\"lease_expired\":" << r.lease_expired
         << ",\"delta_sends\":" << r.delta_sends << ",\"full_sends\":" << r.full_sends
         << ",\"digest_mismatches\":" << r.digest_mismatch
         << ",\"sync_pulls\":" << r.sync_pulls
         << ",\"health_rung\":" << r.health_rung
         << ",\"queue_bytes\":" << r.queue_bytes << ",\"sheds\":" << r.sheds
         << ",\"control_sheds\":" << r.control_sheds
         << ",\"slow_disconnects\":" << r.slow_disconnects
         << ",\"rejected_publishes\":" << r.rejected_publishes
         << ",\"trace_spans_dropped\":" << r.trace_drops
         << ",\"match_shards\":" << r.shard_count
         << ",\"shard_visits\":" << r.shard_visits
         << ",\"shard_imbalance\":" << r.shard_imbalance
         << ",\"rss_bytes\":" << r.rss_bytes
         << ",\"cpu_cores\":" << r.cpu_cores
         << ",\"mem_total_bytes\":" << r.mem_total
         << ",\"mem_top_component\":\"" << r.mem_top_component << "\""
         << ",\"mem_top_bytes\":" << r.mem_top_bytes
         << ",\"mem_budget_bytes\":" << r.mem_budget;
    }
    os << "}";
  }
  os << "]}\n";
  os.flush();
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv, {"once"});
  const std::vector<uint16_t> ports = args.flag_ports("ports");
  if (ports.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  const bool once = args.flag_bool("once");
  const auto interval = std::chrono::milliseconds(args.flag_u64("interval-ms", 2000));
  const uint64_t iterations = once ? 1 : args.flag_u64("iterations", 0);
  const size_t top_k = args.flag_u64("top", 3);
  const auto jsonl_path = args.flag("jsonl");

  std::ofstream jsonl;
  if (jsonl_path) {
    jsonl.open(*jsonl_path, std::ios::app);
    if (!jsonl) {
      std::cerr << "cannot open " << *jsonl_path << " for append\n";
      return 2;
    }
  }

  // kStats is schema-free, so an empty schema works against any deployment.
  const model::Schema no_schema;
  net::ClientOptions copts;
  copts.connect_timeout = std::chrono::milliseconds(500);
  copts.rpc_timeout = std::chrono::milliseconds(5000);
  std::vector<std::unique_ptr<net::Client>> clients(ports.size());

  const bool ansi = isatty(STDOUT_FILENO) != 0 && iterations != 1 && !once;
  size_t last_live = 0;
  bool control_shed_alarm = false;
  for (uint64_t tick = 1; iterations == 0 || tick <= iterations; ++tick) {
    std::vector<BrokerRow> rows;
    rows.reserve(ports.size());
    for (size_t i = 0; i < ports.size(); ++i) {
      BrokerRow row;
      row.port = ports[i];
      try {
        if (!clients[i]) clients[i] = std::make_unique<net::Client>(ports[i], no_schema, copts);
        row = parse_row(ports[i], clients[i]->stats_text());
      } catch (const std::exception&) {
        clients[i].reset();  // rebuild the connection next tick
      }
      rows.push_back(std::move(row));
    }
    last_live = static_cast<size_t>(
        std::count_if(rows.begin(), rows.end(), [](const BrokerRow& r) { return r.up; }));
    control_shed_alarm = std::any_of(rows.begin(), rows.end(), [](const BrokerRow& r) {
      return r.control_sheds > 0;
    });

    if (once) {
      // Health-gate mode: one plain line per broker, machine-grepable.
      for (const auto& r : rows) {
        if (!r.up) {
          std::printf("broker port=%u down\n", r.port);
          continue;
        }
        std::printf(
            "broker port=%u up rung=%.0f sheds=%.0f control_sheds=%.0f "
            "slow_disconnects=%.0f trace_drops=%.0f\n",
            r.port, r.health_rung, r.sheds, r.control_sheds, r.slow_disconnects,
            r.trace_drops);
      }
      if (control_shed_alarm) std::printf("ALARM: control-plane shed (invariant violated)\n");
      if (jsonl_path) append_jsonl(jsonl, rows, tick);
      break;
    }

    if (ansi) std::printf("\x1b[H\x1b[2J");
    render(rows, top_k, tick);
    if (jsonl_path) append_jsonl(jsonl, rows, tick);

    if (iterations == 0 || tick < iterations) std::this_thread::sleep_for(interval);
  }
  if (once) return (last_live < ports.size() || control_shed_alarm) ? 1 : 0;
  return last_live == 0 ? 1 : 0;
}
