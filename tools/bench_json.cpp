// bench_json: runs the matching-engine throughput benchmarks and writes
// BENCH_matching.json, so every PR leaves a machine-readable point on the
// perf trajectory. For each N in the workload matrix (one BrokerSummary of
// N subscriptions, stock schema, AacsMode::kCoarse, the paper's workload)
// it measures, single-threaded:
//
//  * seed_us_per_event         — the pre-optimization match_reference()
//  * classic_us_per_event      — match_into_unindexed() (dense/scan/heap
//                                over the live AACS/SACS, reused scratch)
//  * frozen_cold_us_per_event  — the frozen sharded index, combo cache off
//                                (every event pays collect + counter sweep)
//  * frozen_warm_us_per_event  — the engine as shipped (frozen index +
//                                row-combination cache)
//  * p50/p99 warm match latency through obs::Histogram (log2 buckets)
//  * freeze_ms                 — one index build at this N
//  * P_ids_collected           — the paper's P (step-1 work), avg per event
//
// plus cross-N ratios (speedup vs classic, p99 flatness) and, at the
// smallest N, batch/publish throughput at 1/2/4/8 threads. The output is
// the check_bench.py contract: a "workload" block compared for exact
// equality and a flat "metrics" dict gated within tolerance bands — the
// figures-regression CI job runs it with wide bands on wall-clock metrics.
//
// Usage: bench_json [--ns 100000,1000000] [--subsumption 10] [--events 256]
//                   [--repeat 5] [--out BENCH_matching.json]
//        (--n N is accepted as a single-element matrix, for the release job)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_matcher.h"
#include "core/frozen_index.h"
#include "core/matcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "overlay/topologies.h"
#include "sim/system.h"
#include "tool_args.h"
#include "util/thread_pool.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace {

using namespace subsum;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-`repeat` wall time of fn() (returns seconds).
template <typename Fn>
double best_of(int repeat, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < repeat; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

std::vector<size_t> parse_ns(const std::string& spec) {
  std::vector<size_t> out;
  size_t pos = 0;
  while (pos < spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string tok = spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(static_cast<size_t>(std::stoull(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Ordered flat metrics dict (insertion order preserved in the JSON).
struct Metrics {
  std::vector<std::pair<std::string, double>> kv;
  void put(const std::string& key, double value) { kv.emplace_back(key, value); }
};

size_t g_sink = 0;  // defeats dead-code elimination across runs

void run_matrix_point(size_t n, double subsumption, size_t n_events, int repeat,
                      Metrics& m) {
  const std::string prefix = "n" + std::to_string(n) + ".";
  const model::Schema schema = workload::stock_schema();
  workload::SubGenParams sp;
  sp.subsumption = subsumption;
  workload::SubscriptionGenerator gen(schema, sp, n * 7 + 1);
  core::BrokerSummary summary(schema, core::GeneralizePolicy::kSafe, core::AacsMode::kCoarse);
  for (uint32_t i = 0; i < n; ++i) {
    const auto sub = gen.next();
    summary.add(sub, model::SubId{0, i, sub.mask()});
  }
  workload::EventGenerator egen(schema, gen.pools(), {}, n * 7 + 2);
  std::vector<model::Event> events;
  events.reserve(n_events);
  for (size_t i = 0; i < n_events; ++i) events.push_back(egen.next());
  const double per_event = static_cast<double>(events.size());

  std::fprintf(stderr, "bench_json: n=%zu events=%zu repeat=%d\n", n, n_events, repeat);

  // Freeze cost: drop any index built incidentally, then time one build.
  const double freeze_s = best_of(1, [&] { (void)core::FrozenIndex::build(summary); });
  m.put(prefix + "freeze_ms", freeze_s * 1e3);

  const double seed_s = best_of(repeat, [&] {
    for (const auto& e : events) g_sink += core::match_reference(summary, e).size();
  });

  core::MatchScratch classic;
  const double classic_s = best_of(repeat, [&] {
    for (const auto& e : events) {
      g_sink += core::match_into_unindexed(summary, e, classic).size();
    }
  });

  core::MatchScratch cold;
  cold.use_combo_cache = false;
  const double cold_s = best_of(repeat, [&] {
    for (const auto& e : events) g_sink += core::match_into(summary, e, cold).size();
  });

  core::MatchScratch warm;
  const double warm_s = best_of(repeat, [&] {
    for (const auto& e : events) g_sink += core::match_into(summary, e, warm).size();
  });

  // Per-event warm-latency quantiles through the same obs::Histogram the
  // live broker uses (log2 buckets, so quantiles are bucket upper bounds).
  obs::Histogram hist;
  size_t collected = 0;
  for (int r = 0; r < repeat; ++r) {
    for (const auto& e : events) {
      core::MatchDiag diag;
      const uint64_t t0 = obs::now_us();
      g_sink += core::match_into(summary, e, warm, &diag).size();
      hist.observe(obs::now_us() - t0);
      collected += diag.ids_collected;
    }
  }

  m.put(prefix + "seed_us_per_event", seed_s / per_event * 1e6);
  m.put(prefix + "classic_us_per_event", classic_s / per_event * 1e6);
  m.put(prefix + "frozen_cold_us_per_event", cold_s / per_event * 1e6);
  m.put(prefix + "frozen_warm_us_per_event", warm_s / per_event * 1e6);
  m.put(prefix + "speedup_frozen_cold_vs_classic", classic_s / cold_s);
  m.put(prefix + "speedup_frozen_warm_vs_classic", classic_s / warm_s);
  m.put(prefix + "speedup_vs_seed", seed_s / warm_s);
  m.put(prefix + "match_latency_p50_us", static_cast<double>(hist.quantile(0.50)));
  m.put(prefix + "match_latency_p99_us", static_cast<double>(hist.quantile(0.99)));
  m.put(prefix + "P_ids_collected",
        static_cast<double>(collected) / (per_event * repeat));

  const auto idx = summary.frozen_for_match();
  m.put(prefix + "index_engaged", idx ? 1.0 : 0.0);
  if (idx) m.put(prefix + "shards", static_cast<double>(idx->shard_count()));
}

void run_thread_scaling(size_t n, double subsumption, size_t n_events, int repeat,
                        Metrics& m) {
  const model::Schema schema = workload::stock_schema();
  workload::SubGenParams sp;
  sp.subsumption = subsumption;
  workload::SubscriptionGenerator gen(schema, sp, n * 7 + 1);
  core::BrokerSummary summary(schema, core::GeneralizePolicy::kSafe, core::AacsMode::kCoarse);
  for (uint32_t i = 0; i < n; ++i) {
    const auto sub = gen.next();
    summary.add(sub, model::SubId{0, i, sub.mask()});
  }
  workload::EventGenerator egen(schema, gen.pools(), {}, n * 7 + 2);
  std::vector<model::Event> events;
  for (size_t i = 0; i < n_events; ++i) events.push_back(egen.next());

  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  for (const size_t t : thread_counts) {
    util::ThreadPool pool(t);
    core::BatchMatcher matcher(pool);
    std::vector<std::vector<model::SubId>> results;
    matcher.match_batch(summary, events, results);  // warm up pool + scratches
    const double s = best_of(repeat, [&] { matcher.match_batch(summary, events, results); });
    m.put("batch_match.events_per_sec_t" + std::to_string(t),
          static_cast<double>(events.size()) / s);
  }

  // publish_batch on the 24-broker backbone: a smaller system (the walk
  // visits many brokers), so scale the subscription count down.
  sim::SystemConfig cfg;
  cfg.schema = schema;
  cfg.graph = overlay::cable_wireless_24();
  cfg.arith_mode = core::AacsMode::kCoarse;
  sim::SimSystem sys(cfg);
  workload::SubscriptionGenerator pgen(schema, sp, 1234);
  const size_t per_broker = std::max<size_t>(n / (24 * 10), 10);
  for (overlay::BrokerId b = 0; b < sys.broker_count(); ++b) {
    for (size_t i = 0; i < per_broker; ++i) sys.subscribe(b, pgen.next());
  }
  sys.run_propagation_period();
  for (const size_t t : thread_counts) {
    util::ThreadPool pool(t);
    auto warm = sys.publish_batch(0, events, pool);
    g_sink += warm.size();
    const double s = best_of(repeat, [&] {
      auto out = sys.publish_batch(0, events, pool);
      g_sink += out.back().candidates.size();
    });
    m.put("publish_batch.events_per_sec_t" + std::to_string(t),
          static_cast<double>(events.size()) / s);
  }
}

double get(const Metrics& m, const std::string& key) {
  for (const auto& [k, v] : m.kv) {
    if (k == key) return v;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  std::vector<size_t> ns = parse_ns(args.flag("ns").value_or("100000,1000000"));
  if (const auto single = args.flag("n")) ns = {static_cast<size_t>(std::stoull(*single))};
  const double subsumption = static_cast<double>(args.flag_u64("subsumption", 10)) / 100.0;
  const size_t n_events = args.flag_u64("events", 256);
  const int repeat = static_cast<int>(args.flag_u64("repeat", 5));
  const std::string out_path = args.flag("out").value_or("BENCH_matching.json");

  Metrics m;
  for (const size_t n : ns) run_matrix_point(n, subsumption, n_events, repeat, m);

  // p99 flatness across the matrix: the tentpole criterion is that warm
  // p99 at the largest N stays within 2x of the smallest N's.
  if (ns.size() >= 2) {
    const std::string lo = "n" + std::to_string(ns.front());
    const std::string hi = "n" + std::to_string(ns.back());
    const double lo_p99 = get(m, lo + ".match_latency_p99_us");
    const double hi_p99 = get(m, hi + ".match_latency_p99_us");
    if (lo_p99 > 0) {
      m.put("p99_ratio_" + std::to_string(ns.back()) + "_vs_" + std::to_string(ns.front()),
            hi_p99 / lo_p99);
    }
  }

  run_thread_scaling(ns.front(), subsumption, n_events, repeat, m);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"workload\": {\"ns\": [");
  for (size_t i = 0; i < ns.size(); ++i) {
    std::fprintf(f, "%s%zu", i ? ", " : "", ns[i]);
  }
  std::fprintf(f, "], \"subsumption\": %.2f, \"batch_events\": %zu, "
               "\"aacs_mode\": \"coarse\", \"repeat\": %d},\n",
               subsumption, n_events, repeat);
  // Thread-scaling numbers are only meaningful relative to this: on a
  // 1-core host the 8-thread batch cannot beat the 1-thread batch.
  std::fprintf(f, "  \"host\": {\"hardware_threads\": %zu},\n",
               util::ThreadPool::hardware_threads());
  std::fprintf(f, "  \"metrics\": {\n");
  for (size_t i = 0; i < m.kv.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.4f%s\n", m.kv[i].first.c_str(), m.kv[i].second,
                 i + 1 < m.kv.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (sink=%zu)\n", out_path.c_str(), g_sink);
  return 0;
}
