// bench_json: runs the matching-engine throughput benchmarks and writes
// BENCH_matching.json, so every PR leaves a machine-readable point on the
// perf trajectory. Measures, on one BrokerSummary of N subscriptions
// (stock schema, AacsMode::kCoarse, the paper's workload):
//
//  * seed_match_us        — the pre-optimization match_reference() per event
//  * match_us             — match() (per-thread scratch wrapper) per event
//  * match_scratch_us     — match_into() with a reused caller scratch
//  * match_latency_us     — per-event p50/p90/p99 through obs::Histogram
//  * batch: events/sec at threads 1/2/4/8 through BatchMatcher
//  * publish_batch: events/sec at threads 1/2/4/8 through
//    SimSystem::publish_batch on the 24-broker backbone
//
// Usage: bench_json [--n 100000] [--subsumption 10] [--events 256]
//                   [--repeat 5] [--out BENCH_matching.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/batch_matcher.h"
#include "core/matcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "overlay/topologies.h"
#include "sim/system.h"
#include "tool_args.h"
#include "util/thread_pool.h"
#include "workload/event_gen.h"
#include "workload/stock_schema.h"
#include "workload/sub_gen.h"

namespace {

using namespace subsum;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-`repeat` wall time of fn() (returns seconds).
template <typename Fn>
double best_of(int repeat, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < repeat; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  const size_t n = args.flag_u64("n", 100000);
  const double subsumption = static_cast<double>(args.flag_u64("subsumption", 10)) / 100.0;
  const size_t n_events = args.flag_u64("events", 256);
  const int repeat = static_cast<int>(args.flag_u64("repeat", 5));
  const std::string out_path = args.flag("out").value_or("BENCH_matching.json");

  const model::Schema schema = workload::stock_schema();
  workload::SubGenParams sp;
  sp.subsumption = subsumption;
  workload::SubscriptionGenerator gen(schema, sp, n * 7 + 1);
  core::BrokerSummary summary(schema, core::GeneralizePolicy::kSafe, core::AacsMode::kCoarse);
  core::NaiveMatcher naive;
  for (uint32_t i = 0; i < n; ++i) {
    auto sub = gen.next();
    const model::SubId id{0, i, sub.mask()};
    summary.add(sub, id);
    naive.add({id, std::move(sub)});
  }
  workload::EventGenerator egen(schema, gen.pools(), {}, n * 7 + 2);
  std::vector<model::Event> events;
  events.reserve(n_events);
  for (size_t i = 0; i < n_events; ++i) events.push_back(egen.next());

  std::fprintf(stderr, "bench_json: n=%zu events=%zu repeat=%d\n", n, n_events, repeat);

  size_t sink = 0;  // defeats dead-code elimination across runs
  const double seed_s = best_of(repeat, [&] {
    for (const auto& e : events) sink += core::match_reference(summary, e).size();
  });
  const double match_s = best_of(repeat, [&] {
    for (const auto& e : events) sink += core::match(summary, e).size();
  });
  core::MatchScratch scratch;
  const double scratch_s = best_of(repeat, [&] {
    for (const auto& e : events) sink += core::match_into(summary, e, scratch).size();
  });

  // Per-event match-latency quantiles through the same obs::Histogram the
  // live broker uses (log2 buckets, so quantiles are bucket upper bounds).
  obs::Histogram match_hist;
  for (int r = 0; r < repeat; ++r) {
    for (const auto& e : events) {
      const uint64_t t0 = obs::now_us();
      sink += core::match_into(summary, e, scratch).size();
      match_hist.observe(obs::now_us() - t0);
    }
  }

  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  std::vector<double> batch_eps;
  for (const size_t t : thread_counts) {
    util::ThreadPool pool(t);
    core::BatchMatcher matcher(pool);
    std::vector<std::vector<model::SubId>> results;
    matcher.match_batch(summary, events, results);  // warm up pool + scratches
    const double s = best_of(repeat, [&] { matcher.match_batch(summary, events, results); });
    batch_eps.push_back(static_cast<double>(events.size()) / s);
  }

  // publish_batch on the 24-broker backbone: a smaller system (the walk
  // visits many brokers), so scale the subscription count down.
  sim::SystemConfig cfg;
  cfg.schema = schema;
  cfg.graph = overlay::cable_wireless_24();
  cfg.arith_mode = core::AacsMode::kCoarse;
  sim::SimSystem sys(cfg);
  workload::SubscriptionGenerator pgen(schema, sp, 1234);
  const size_t per_broker = std::max<size_t>(n / (24 * 10), 10);
  for (overlay::BrokerId b = 0; b < sys.broker_count(); ++b) {
    for (size_t i = 0; i < per_broker; ++i) sys.subscribe(b, pgen.next());
  }
  sys.run_propagation_period();
  std::vector<double> publish_eps;
  for (const size_t t : thread_counts) {
    util::ThreadPool pool(t);
    auto warm = sys.publish_batch(0, events, pool);
    sink += warm.size();
    const double s = best_of(repeat, [&] {
      auto out = sys.publish_batch(0, events, pool);
      sink += out.back().candidates.size();
    });
    publish_eps.push_back(static_cast<double>(events.size()) / s);
  }

  const double per_event = static_cast<double>(events.size());
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"workload\": {\"n_subscriptions\": %zu, \"subsumption\": %.2f, "
               "\"batch_events\": %zu, \"aacs_mode\": \"coarse\", \"repeat\": %d},\n",
               n, subsumption, n_events, repeat);
  // Thread-scaling numbers are only meaningful relative to this: on a
  // 1-core host the 8-thread batch cannot beat the 1-thread batch.
  std::fprintf(f, "  \"host\": {\"hardware_threads\": %zu},\n",
               util::ThreadPool::hardware_threads());
  std::fprintf(f, "  \"single_thread\": {\n");
  std::fprintf(f, "    \"seed_match_us_per_event\": %.3f,\n", seed_s / per_event * 1e6);
  std::fprintf(f, "    \"match_us_per_event\": %.3f,\n", match_s / per_event * 1e6);
  std::fprintf(f, "    \"match_scratch_us_per_event\": %.3f,\n", scratch_s / per_event * 1e6);
  std::fprintf(f, "    \"speedup_vs_seed\": %.2f\n", seed_s / scratch_s);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"match_latency_us\": {\"p50\": %llu, \"p90\": %llu, \"p99\": %llu, "
               "\"count\": %llu},\n",
               static_cast<unsigned long long>(match_hist.quantile(0.50)),
               static_cast<unsigned long long>(match_hist.quantile(0.90)),
               static_cast<unsigned long long>(match_hist.quantile(0.99)),
               static_cast<unsigned long long>(match_hist.count()));
  const auto print_scaling = [&](const char* key, const std::vector<double>& eps,
                                 const char* tail) {
    std::fprintf(f, "  \"%s\": {\n", key);
    for (size_t i = 0; i < thread_counts.size(); ++i) {
      std::fprintf(f, "    \"events_per_sec_t%zu\": %.0f,\n", thread_counts[i], eps[i]);
    }
    std::fprintf(f, "    \"scaling_t8_vs_t1\": %.2f\n  }%s\n", eps.back() / eps.front(), tail);
  };
  print_scaling("batch_match", batch_eps, ",");
  print_scaling("publish_batch", publish_eps, "");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (sink=%zu)\n", out_path.c_str(), sink);
  return 0;
}
