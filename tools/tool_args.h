// Minimal argv handling shared by the CLI tools: --key value flags plus
// positional arguments, with typed accessors and usage errors.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace subsum::tools {

class Args {
 public:
  /// `bool_flags` names flags that take no value (e.g. --once): their
  /// presence stores "1" without consuming the next argv entry.
  Args(int argc, char** argv, std::initializer_list<const char*> bool_flags = {}) {
    const std::set<std::string> bools(bool_flags.begin(), bool_flags.end());
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        const std::string key = a.substr(2);
        if (bools.contains(key)) {
          flags_[key] = "1";
          continue;
        }
        if (i + 1 >= argc) {
          std::cerr << "missing value for " << a << "\n";
          std::exit(2);
        }
        flags_[key] = argv[++i];
      } else {
        positional_.push_back(a);
      }
    }
  }

  [[nodiscard]] bool flag_bool(const std::string& key) const {
    return flags_.contains(key);
  }

  [[nodiscard]] std::optional<std::string> flag(const std::string& key) const {
    const auto it = flags_.find(key);
    if (it == flags_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::string required(const std::string& key, const char* usage) const {
    if (auto v = flag(key)) return *v;
    std::cerr << "missing --" << key << "\n" << usage;
    std::exit(2);
  }

  [[nodiscard]] uint64_t required_u64(const std::string& key, const char* usage) const {
    return std::strtoull(required(key, usage).c_str(), nullptr, 10);
  }

  [[nodiscard]] uint64_t flag_u64(const std::string& key, uint64_t fallback) const {
    const auto v = flag(key);
    return v ? std::strtoull(v->c_str(), nullptr, 10) : fallback;
  }

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Comma-separated list of ports.
  [[nodiscard]] std::vector<uint16_t> flag_ports(const std::string& key) const {
    std::vector<uint16_t> out;
    const auto v = flag(key);
    if (!v) return out;
    size_t start = 0;
    while (start <= v->size()) {
      const size_t comma = v->find(',', start);
      const std::string part = v->substr(
          start, comma == std::string::npos ? std::string::npos : comma - start);
      if (!part.empty()) out.push_back(static_cast<uint16_t>(std::stoul(part)));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return out;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace subsum::tools
