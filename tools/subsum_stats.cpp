// subsum_stats — scrape a live broker's telemetry.
//
//   subsum_stats --port 7003                   # Prometheus text exposition
//   subsum_stats --ports 7000,7001,7002        # several brokers in one run
//   subsum_stats --port 7003 --trace all       # every retained span, JSONL
//   subsum_stats --port 7003 --trace 9f3a...   # spans of one trace id (hex)
//                [--max-spans N]               # newest N spans only
//   subsum_stats --port 7003 --profile         # sample CPU for 5s, print
//                [--profile-hz N]              #   collapsed/folded stacks
//                [--profile-seconds S]         #   (flamegraph.pl input)
//
// Metrics come back in Prometheus text exposition format 0.0.4 (kStats),
// ready for a scraper or grep; traces come back as JSON Lines (kTrace),
// one span per line. --profile drives the broker's sampling profiler over
// kProfile (start -> wait -> fetch -> stop) and prints folded stacks on
// stdout — `subsum_stats --port P --profile | flamegraph.pl > cpu.svg` is
// the whole workflow. None of these RPCs need the deployment's schema, so
// this tool works against any subsum broker, version 3 or later.
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "net/framing.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "tool_args.h"

namespace {

constexpr char kUsage[] =
    "usage: subsum_stats --port P | --ports P0,P1,...\n"
    "                    [--trace all|HEXID] [--max-spans N]\n"
    "                    [--profile [--profile-hz N] [--profile-seconds S]]\n";

using namespace subsum;
using namespace std::chrono_literals;

net::Frame rpc(uint16_t port, net::MsgKind kind, std::span<const std::byte> payload,
               net::MsgKind ack_kind) {
  net::Socket s = net::connect_local(port, 2000ms);
  s.set_send_timeout(5000ms);
  s.set_recv_timeout(5000ms);
  net::send_frame(s, kind, payload);
  auto ack = net::recv_frame(s);
  if (!ack || ack->kind != ack_kind) {
    throw net::NetError("broker on port " + std::to_string(port) +
                        " sent an unexpected reply");
  }
  return std::move(*ack);
}

int scrape_metrics(uint16_t port) {
  const net::Frame f = rpc(port, net::MsgKind::kStats, {}, net::MsgKind::kStatsAck);
  std::cout.write(reinterpret_cast<const char*>(f.payload.data()),
                  static_cast<std::streamsize>(f.payload.size()));
  return 0;
}

int fetch_trace(uint16_t port, uint64_t trace, uint32_t max_spans) {
  const net::Frame f = rpc(port, net::MsgKind::kTrace,
                           net::encode(net::TraceRequestMsg{trace, max_spans}),
                           net::MsgKind::kTraceAck);
  const auto reply = net::decode_trace_reply(f.payload);
  std::cout << obs::to_jsonl(reply.spans);
  return 0;
}

net::ProfileReplyMsg profile_rpc(uint16_t port, net::ProfileRequestMsg::Action action,
                                 uint32_t hz) {
  net::ProfileRequestMsg req;
  req.action = action;
  req.hz = hz;
  const net::Frame f =
      rpc(port, net::MsgKind::kProfile, net::encode(req), net::MsgKind::kProfileAck);
  return net::decode_profile_reply(f.payload);
}

int run_profile(uint16_t port, uint32_t hz, uint32_t seconds) {
  const auto started = profile_rpc(port, net::ProfileRequestMsg::kStart, hz);
  if (!started.running) {
    // A NO_TELEMETRY broker (or one that cannot arm per-thread timers)
    // reports a stopped profiler; say so instead of sampling nothing.
    std::cerr << "port " << port << ": broker refused to start the profiler "
              << "(telemetry compiled out, or per-thread CPU timers unavailable)\n";
    return 1;
  }
  std::cerr << "sampling port " << port << " at " << started.hz << " Hz for "
            << seconds << "s...\n";
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  const auto fetched = profile_rpc(port, net::ProfileRequestMsg::kFetch, 0);
  (void)profile_rpc(port, net::ProfileRequestMsg::kStop, 0);
  std::cout << fetched.folded;
  std::cerr << fetched.samples << " samples total, " << fetched.dropped
            << " dropped\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv, {"profile"});

  std::vector<uint16_t> ports = args.flag_ports("ports");
  if (const auto p = args.flag("port")) {
    ports.push_back(static_cast<uint16_t>(std::stoul(*p)));
  }
  if (ports.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  const auto trace_arg = args.flag("trace");
  const auto max_spans = static_cast<uint32_t>(args.flag_u64("max-spans", 0));
  const bool profile = args.flag_bool("profile");
  const auto profile_hz =
      static_cast<uint32_t>(args.flag_u64("profile-hz", subsum::obs::kDefaultProfileHz));
  const auto profile_seconds =
      static_cast<uint32_t>(args.flag_u64("profile-seconds", 5));

  // A down broker must not abort the sweep: scrape everything reachable,
  // name each failed port, and fail the exit code only when NO broker
  // answered (so `subsum_stats --ports ...` stays useful mid-outage).
  size_t failed = 0;
  for (size_t i = 0; i < ports.size(); ++i) {
    try {
      if (profile) {
        if (run_profile(ports[i], profile_hz, profile_seconds) != 0) ++failed;
      } else if (trace_arg) {
        const uint64_t id =
            *trace_arg == "all" ? 0 : std::strtoull(trace_arg->c_str(), nullptr, 16);
        fetch_trace(ports[i], id, max_spans);
      } else {
        if (ports.size() > 1) std::cout << "# broker port " << ports[i] << "\n";
        scrape_metrics(ports[i]);
      }
    } catch (const std::exception& e) {
      std::cerr << "port " << ports[i] << ": unreachable: " << e.what() << "\n";
      ++failed;
    }
  }
  if (failed > 0) {
    std::cerr << failed << "/" << ports.size() << " brokers failed to answer\n";
  }
  return failed == ports.size() ? 1 : 0;
}
