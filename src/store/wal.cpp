#include "store/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "util/bytes.h"
#include "util/crc32c.h"

namespace subsum::store {

namespace {

[[noreturn]] void fail(const std::string& op, const std::string& path) {
  throw StoreError(op + " failed for " + path + ": " + std::strerror(errno));
}

}  // namespace

WalWriter::WalWriter(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) fail("open", path_);
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void WalWriter::append(std::span<const std::byte> payload) {
  util::BufWriter w(8 + payload.size());
  w.put_u32(static_cast<uint32_t>(payload.size()));
  w.put_u32(util::crc32c(payload));
  w.put_bytes(payload);
  const auto& buf = w.bytes();
  size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write", path_);
    }
    off += static_cast<size_t>(n);
  }
  ++appended_;
  appended_bytes_ += buf.size();
}

void WalWriter::sync() {
  if (::fsync(fd_) != 0) fail("fsync", path_);
}

void WalWriter::reset() {
  if (::ftruncate(fd_, 0) != 0) fail("ftruncate", path_);
  sync();
  appended_ = 0;
  appended_bytes_ = 0;
}

void WalWriter::truncate(uint64_t bytes) {
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) fail("ftruncate", path_);
  sync();
}

WalReplay replay_wal(const std::string& path) {
  WalReplay out;
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return out;  // no log yet: clean empty state
  const std::streamoff size = in.tellg();
  std::vector<std::byte> data(size > 0 ? static_cast<size_t>(size) : 0);
  in.seekg(0);
  if (!data.empty()) in.read(reinterpret_cast<char*>(data.data()), size);
  const std::span<const std::byte> all(data);
  // Cannot use BufReader directly: its truncation errors are exceptions,
  // and here truncation is an expected, recoverable condition.
  size_t pos = 0;
  while (data.size() - pos >= 8) {
    util::BufReader hdr(all.subspan(pos, 8));
    const uint32_t len = hdr.get_u32();
    const uint32_t crc = hdr.get_u32();
    if (data.size() - pos - 8 < len) break;  // torn payload
    const auto payload = all.subspan(pos + 8, len);
    if (util::crc32c(payload) != crc) break;  // corrupt: stop, keep prefix
    out.records.emplace_back(payload.begin(), payload.end());
    pos += 8 + len;
  }
  out.valid_bytes = pos;
  out.torn_tail = pos != data.size();
  return out;
}

}  // namespace subsum::store
