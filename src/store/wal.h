// Append-only write-ahead log with CRC-32C record framing.
//
// On-disk layout, repeated per record:
//
//   u32 len   (LE)  -- payload byte count
//   u32 crc   (LE)  -- crc32c(payload)
//   payload
//
// Durability contract: append() buffers in the kernel; sync() (fsync)
// commits every record appended so far. A record is only considered
// durable once a sync() after its append returned — callers group-commit
// by batching appends between syncs.
//
// Crash tolerance on replay: a torn tail — the file ends inside a header
// or payload, or the final record's CRC does not match (a partially
// flushed write) — is DISCARDED, never fatal. A CRC mismatch anywhere
// stops replay at that point: everything before it is intact (each record
// was covered by its own checksum), everything after it is unreachable
// without trusting a corrupt length field.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace subsum::store {

/// Thrown on unrecoverable I/O failures (open/write/fsync errors). Replay
/// of damaged data never throws this — damage is handled by truncation.
class StoreError : public std::runtime_error {
 public:
  explicit StoreError(const std::string& what) : std::runtime_error(what) {}
};

class WalWriter {
 public:
  /// Opens (creating if absent) the log for appending.
  explicit WalWriter(std::string path);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one framed record (not yet durable).
  void append(std::span<const std::byte> payload);

  /// fsync: commits every append() so far. One sync covers a whole batch.
  void sync();

  /// Truncates the log to empty (after a snapshot compaction) and syncs.
  void reset();

  /// Truncates the log to `bytes` (drops a torn tail found by replay) and
  /// syncs, so fresh appends follow the last intact record.
  void truncate(uint64_t bytes);

  /// Records appended through this writer since open/reset.
  [[nodiscard]] uint64_t appended() const noexcept { return appended_; }

  /// On-disk bytes (headers included) appended since open/reset; feeds the
  /// kWalBuffers line of the memory-attribution registry (obs/memacct.h).
  [[nodiscard]] uint64_t appended_bytes() const noexcept { return appended_bytes_; }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  uint64_t appended_ = 0;
  uint64_t appended_bytes_ = 0;
};

struct WalReplay {
  std::vector<std::vector<std::byte>> records;
  /// Bytes of intact records; the file's tail beyond this was discarded.
  size_t valid_bytes = 0;
  /// True when a torn/corrupt tail was discarded.
  bool torn_tail = false;
};

/// Reads every intact record from the log at `path`. A missing file yields
/// an empty replay; a torn or corrupt tail is discarded (torn_tail set).
WalReplay replay_wal(const std::string& path);

}  // namespace subsum::store
