#include "store/broker_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "net/protocol.h"
#include "obs/trace.h"
#include "util/crc32c.h"

namespace subsum::store {

namespace {

constexpr char kSnapshotMagic[8] = {'S', 'S', 'U', 'M', 'S', 'N', 'P', '2'};
constexpr uint8_t kRecSubscribe = 1;
constexpr uint8_t kRecUnsubscribe = 2;
constexpr uint8_t kRecLease = 3;  // (sub_id, ttl): grant or renewal

std::optional<std::vector<std::byte>> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const std::streamoff size = in.tellg();
  std::vector<std::byte> out(size > 0 ? static_cast<size_t>(size) : 0);
  in.seekg(0);
  if (!out.empty() && !in.read(reinterpret_cast<char*>(out.data()), size)) return std::nullopt;
  return out;
}

/// Durable replace: write path.tmp, fsync, rename over path, fsync the
/// directory so the rename itself survives a crash.
void write_file_atomic(const std::string& dir, const std::string& path,
                       std::span<const std::byte> bytes) {
  const std::string tmp = path + ".tmp";
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) throw StoreError("open failed for " + tmp + ": " + std::strerror(errno));
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        throw StoreError("write failed for " + tmp + ": " + std::strerror(err));
      }
      off += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
      const int err = errno;
      ::close(fd);
      throw StoreError("fsync failed for " + tmp + ": " + std::strerror(err));
    }
    ::close(fd);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw StoreError("rename failed for " + path + ": " + std::strerror(errno));
  }
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

BrokerStore::BrokerStore(std::string dir, model::Schema schema, core::GeneralizePolicy policy,
                         core::WireConfig wire)
    : dir_(std::move(dir)), schema_(std::move(schema)), policy_(policy), wire_(std::move(wire)) {
  std::filesystem::create_directories(dir_);
}

BrokerStore::~BrokerStore() = default;

uint64_t BrokerStore::read_epoch_file() const {
  const auto bytes = read_file(dir_ + "/epoch");
  if (!bytes || bytes->size() != 12) return 0;
  util::BufReader r(*bytes);
  const uint64_t epoch = r.get_u64();
  const uint32_t crc = r.get_u32();
  const std::span<const std::byte> all(*bytes);
  if (util::crc32c(all.first(8)) != crc) return 0;  // corrupt: distrust
  return epoch;
}

void BrokerStore::persist_epoch(uint64_t epoch) const {
  util::BufWriter w(12);
  w.put_u64(epoch);
  w.put_u32(util::crc32c(w.bytes()));
  write_file_atomic(dir_, dir_ + "/epoch", w.bytes());
}

DurableState BrokerStore::open() {
  DurableState st;
  uint64_t snap_epoch = 0;

  // 1. Snapshot (trusted only when magic + CRC + rebuild verification pass).
  if (const auto bytes = read_file(dir_ + "/snapshot")) {
    const std::span<const std::byte> all(*bytes);
    bool trusted = false;
    try {
      if (bytes->size() >= 16 &&
          std::memcmp(bytes->data(), kSnapshotMagic, sizeof kSnapshotMagic) == 0) {
        util::BufReader hdr(all.subspan(8, 8));
        const uint32_t len = hdr.get_u32();
        const uint32_t crc = hdr.get_u32();
        if (bytes->size() == 16 + static_cast<size_t>(len)) {
          const auto payload = all.subspan(16, len);
          if (util::crc32c(payload) == crc) {
            util::BufReader r(payload);
            snap_epoch = r.get_u64();
            st.next_local = static_cast<uint32_t>(r.get_varint());
            const uint64_t nsubs = r.get_varint();
            for (uint64_t i = 0; i < nsubs; ++i) {
              const model::SubId id = net::get_sub_id(r);
              st.subs.push_back({id, net::get_subscription(r, schema_)});
            }
            const uint64_t nmerged = r.get_varint();
            for (uint64_t i = 0; i < nmerged; ++i) {
              st.merged_brokers.push_back(static_cast<overlay::BrokerId>(r.get_varint()));
              st.merged_epochs.push_back(r.get_u64());
            }
            const auto own_image = r.get_bytes(r.get_varint());
            const auto held_image = r.get_bytes(r.get_varint());
            // Optional trailing lease section (v4 soft state); snapshots
            // written before it decode with no leases.
            if (!r.done()) {
              const uint64_t nleases = r.get_varint();
              for (uint64_t i = 0; i < nleases; ++i) {
                LeaseEntry le;
                le.id = net::get_sub_id(r);
                le.ttl = static_cast<uint32_t>(r.get_varint());
                le.remaining = static_cast<uint32_t>(r.get_varint());
                st.leases.push_back(le);
              }
            }
            if (!r.done()) throw util::DecodeError("trailing bytes after snapshot");
            // Cross-check: the own-summary image must equal, bit for bit,
            // what the existing rebuild path derives from the persisted
            // subscription set. A mismatch means the snapshot lies about
            // itself — demote it rather than serve wrong routing state.
            const auto rebuilt = core::encode_summary(
                core::BrokerSummary::rebuild(schema_, policy_, st.subs), wire_, snap_epoch);
            if (rebuilt.size() == own_image.size() &&
                std::equal(rebuilt.begin(), rebuilt.end(), own_image.begin())) {
              st.held = core::decode_summary(held_image, schema_, policy_);
              st.own_image_verified = true;
              trusted = true;
            }
          }
        }
      }
    } catch (const util::DecodeError&) {
      trusted = false;
    } catch (const std::invalid_argument&) {
      trusted = false;  // e.g. a decoded subscription failing validation
    }
    if (!trusted) {
      st = DurableState{};  // discard everything the snapshot claimed
      st.snapshot_fell_back = true;
      snap_epoch = 0;
    }
  }
  if (!st.held) st.held.emplace(schema_, policy_);

  // 2. WAL tail (idempotent replay; torn tail discarded + truncated away).
  const WalReplay rep = replay_wal(dir_ + "/wal");
  st.wal_torn = rep.torn_tail;
  for (const auto& rec : rep.records) {
    try {
      util::BufReader r(rec);
      const uint8_t kind = r.get_u8();
      if (kind == kRecSubscribe) {
        const model::SubId id = net::get_sub_id(r);
        model::Subscription sub = net::get_subscription(r, schema_);
        st.next_local = std::max(st.next_local, id.local + 1);
        const bool dup = std::any_of(st.subs.begin(), st.subs.end(),
                                     [&](const auto& os) { return os.id == id; });
        if (dup) continue;  // snapshot already covers it (crash mid-compaction)
        st.held->add(sub, id);
        st.subs.push_back({id, std::move(sub)});
      } else if (kind == kRecUnsubscribe) {
        const model::SubId id = net::get_sub_id(r);
        std::erase_if(st.subs, [&](const auto& os) { return os.id == id; });
        std::erase_if(st.leases, [&](const LeaseEntry& le) { return le.id == id; });
        st.held->remove(id);
      } else if (kind == kRecLease) {
        LeaseEntry le;
        le.id = net::get_sub_id(r);
        le.ttl = static_cast<uint32_t>(r.get_varint());
        le.remaining = le.ttl;  // restart re-arms the full lease window
        std::erase_if(st.leases, [&](const LeaseEntry& e) { return e.id == le.id; });
        st.leases.push_back(le);
      }
      // Unknown kinds: skip (forward compatibility), the CRC already
      // guaranteed the record is intact.
    } catch (const util::DecodeError&) {
      // An intact-CRC record that fails decoding is a logic-version skew;
      // skip it rather than refuse to start.
    } catch (const std::invalid_argument&) {
    }
  }

  // 3. New incarnation: outrank everything persisted, and make it durable
  // BEFORE any announcement can carry it.
  epoch_ = std::max(read_epoch_file(), snap_epoch) + 1;
  persist_epoch(epoch_);
  st.epoch = epoch_;

  wal_ = std::make_unique<WalWriter>(dir_ + "/wal");
  if (rep.torn_tail) wal_->truncate(rep.valid_bytes);
  wal_base_records_ = rep.records.size();
  wal_base_bytes_ = rep.valid_bytes;
  return st;
}

void BrokerStore::log_subscribe(const model::OwnedSubscription& os) {
  util::BufWriter w;
  w.put_u8(kRecSubscribe);
  net::put_sub_id(w, os.id);
  net::put_subscription(w, os.sub);
  wal_->append(w.bytes());
}

void BrokerStore::log_unsubscribe(model::SubId id) {
  util::BufWriter w;
  w.put_u8(kRecUnsubscribe);
  net::put_sub_id(w, id);
  wal_->append(w.bytes());
}

void BrokerStore::log_lease(model::SubId id, uint32_t ttl_periods) {
  util::BufWriter w;
  w.put_u8(kRecLease);
  net::put_sub_id(w, id);
  w.put_varint(ttl_periods);
  wal_->append(w.bytes());
}

void BrokerStore::commit() {
  if (!fsync_us_ && !stage_fsync_us_) {
    wal_->sync();
    return;
  }
  const uint64_t t0 = obs::now_us();
  wal_->sync();
  const uint64_t dt = obs::now_us() - t0;
  if (fsync_us_) fsync_us_->observe(dt);
  if (stage_fsync_us_) stage_fsync_us_->observe(dt);
}

uint64_t BrokerStore::wal_records() const noexcept {
  return wal_ ? wal_base_records_ + wal_->appended() : 0;
}

uint64_t BrokerStore::wal_bytes() const noexcept {
  return wal_ ? wal_base_bytes_ + wal_->appended_bytes() : 0;
}

std::vector<std::byte> BrokerStore::encode_snapshot(const SnapshotInput& in) const {
  util::BufWriter w(4096);
  w.put_u64(epoch_);
  w.put_varint(in.next_local);
  w.put_varint(in.subs->size());
  for (const auto& os : *in.subs) {
    net::put_sub_id(w, os.id);
    net::put_subscription(w, os.sub);
  }
  w.put_varint(in.merged_brokers.size());
  for (size_t i = 0; i < in.merged_brokers.size(); ++i) {
    w.put_varint(in.merged_brokers[i]);
    w.put_u64(i < in.merged_epochs.size() ? in.merged_epochs[i] : 0);
  }
  const auto own = core::encode_summary(
      core::BrokerSummary::rebuild(schema_, policy_, *in.subs), wire_, epoch_);
  w.put_varint(own.size());
  w.put_bytes(own);
  const auto held = core::encode_summary(*in.held, wire_, epoch_);
  w.put_varint(held.size());
  w.put_bytes(held);
  // v4 trailing lease section: pre-v4 readers rejected trailing bytes, so
  // this rides behind everything they parsed; the current reader treats it
  // as optional.
  w.put_varint(in.leases.size());
  for (const auto& le : in.leases) {
    net::put_sub_id(w, le.id);
    w.put_varint(le.ttl);
    w.put_varint(le.remaining);
  }
  return std::move(w).take();
}

void BrokerStore::write_snapshot(const SnapshotInput& in) {
  const uint64_t t0 = snapshot_us_ ? obs::now_us() : 0;
  const auto payload = encode_snapshot(in);
  util::BufWriter w(16 + payload.size());
  w.put_bytes(std::span(reinterpret_cast<const std::byte*>(kSnapshotMagic),
                        sizeof kSnapshotMagic));
  w.put_u32(static_cast<uint32_t>(payload.size()));
  w.put_u32(util::crc32c(payload));
  w.put_bytes(payload);
  write_file_atomic(dir_, dir_ + "/snapshot", w.bytes());
  // Only after the snapshot is durably in place may the log shrink; a
  // crash in between just replays the log's records onto the snapshot
  // (replay is idempotent).
  wal_->reset();
  wal_base_records_ = 0;
  wal_base_bytes_ = 0;
  last_snapshot_bytes_ = static_cast<uint64_t>(w.bytes().size());
  if (snapshot_us_) snapshot_us_->observe(obs::now_us() - t0);
}

}  // namespace subsum::store
