// Crash-durable broker state: the paper's premise is that summaries ARE
// the broker's routing state (§3-§4), so that state must survive kill -9.
// A BrokerStore manages one broker's data directory:
//
//   <dir>/wal       append-only subscribe/unsubscribe log (store/wal.h)
//   <dir>/snapshot  periodic compaction of the full state
//   <dir>/epoch     the broker's incarnation counter
//
// Write path: every accepted subscribe/unsubscribe is appended to the WAL
// and fsync'd (group-committed per batch) BEFORE the client sees the ack.
// Once the log grows past a threshold, the caller compacts: the live
// subscription set, the held merged summary (its AACS/SACS wire image,
// sized per the paper's eqs. (1)-(2)), the Merged_Brokers set with their
// epochs, and an image of the broker's OWN summary are written to
// snapshot.tmp, fsync'd, atomically renamed over the old snapshot, and the
// log is truncated.
//
// Recovery (open()):
//   1. load the snapshot (magic + CRC-32C verified). The own-summary image
//      is cross-checked by REBUILDING from the persisted subscription set
//      and comparing bit-for-bit; any mismatch (or a corrupt CRC) demotes
//      the snapshot to untrusted and recovery falls back to replaying the
//      log from scratch — degraded, never a crash.
//   2. replay the WAL tail (idempotently: a duplicate subscribe or a
//      missing unsubscribe is skipped, so a crash between snapshot rename
//      and log truncation is harmless). A torn final record is discarded
//      and the file is truncated to the last intact record.
//   3. bump and persist the epoch, so the new incarnation's announcements
//      outrank anything the old one said (routing/propagation.h).
//
// All multi-byte integers little-endian, via util::BufWriter/BufReader.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/serialize.h"
#include "core/summary.h"
#include "model/subscription.h"
#include "obs/metrics.h"
#include "overlay/graph.h"
#include "store/wal.h"

namespace subsum::store {

/// One persisted subscription lease (v4 soft state). `remaining` is
/// re-armed to the full ttl on recovery: the owner gets one whole lease
/// window to renew or re-attach against the new incarnation.
struct LeaseEntry {
  model::SubId id;
  uint32_t ttl = 0;        // periods granted per renewal
  uint32_t remaining = 0;  // periods left at snapshot time
};

/// Everything recovery reconstructed from the data directory.
struct DurableState {
  /// This incarnation's epoch (already bumped past every persisted value).
  uint64_t epoch = 1;
  /// Next free local subscription id.
  uint32_t next_local = 0;
  /// The home subscription table, in original insertion order.
  std::vector<model::OwnedSubscription> subs;
  /// Merged_Brokers set from the snapshot (empty when falling back).
  std::vector<overlay::BrokerId> merged_brokers;
  /// Last known epoch per entry of merged_brokers (aligned).
  std::vector<uint64_t> merged_epochs;
  /// Held merged summary: snapshot image + WAL tail applied; on fallback,
  /// rebuilt from `subs` alone (peer state heals via resends).
  std::optional<core::BrokerSummary> held;
  /// Live subscription leases (snapshot section + WAL lease records).
  std::vector<LeaseEntry> leases;

  // Diagnostics for tests and logs.
  bool wal_torn = false;          // a torn/corrupt log tail was discarded
  bool snapshot_fell_back = false;  // snapshot missing/corrupt: log-only replay
  bool own_image_verified = false;  // rebuild matched the persisted image bit-for-bit
};

class BrokerStore {
 public:
  /// Creates `dir` if needed. The schema/policy/wire must match the
  /// broker's (they parameterize record and image encoding).
  BrokerStore(std::string dir, model::Schema schema, core::GeneralizePolicy policy,
              core::WireConfig wire);
  ~BrokerStore();

  BrokerStore(const BrokerStore&) = delete;
  BrokerStore& operator=(const BrokerStore&) = delete;

  /// Runs recovery, bumps + persists the epoch, and opens the WAL for
  /// appending. Call exactly once, before any log_* call.
  DurableState open();

  /// Appends a record (not yet durable — commit() the batch).
  void log_subscribe(const model::OwnedSubscription& os);
  void log_unsubscribe(model::SubId id);
  /// Records a lease grant or renewal for `id` (v4 soft state).
  void log_lease(model::SubId id, uint32_t ttl_periods);

  /// fsync: the records appended since the last commit become durable.
  void commit();

  /// State fed to write_snapshot(): the broker's current in-memory state.
  struct SnapshotInput {
    uint32_t next_local = 0;
    const std::vector<model::OwnedSubscription>* subs = nullptr;
    std::vector<overlay::BrokerId> merged_brokers;
    std::vector<uint64_t> merged_epochs;
    const core::BrokerSummary* held = nullptr;
    std::vector<LeaseEntry> leases;
  };

  /// Compaction: atomically replaces the snapshot and truncates the log.
  void write_snapshot(const SnapshotInput& in);

  /// Telemetry hooks (obs/metrics.h): commit() observes its fsync latency
  /// into `fsync_us` (and, when given, the stage-decomposed duplicate
  /// `stage_fsync_us` — subsum_stage_latency_us{stage="wal_fsync"}),
  /// write_snapshot() its duration into `snapshot_us`. Any may be null
  /// (the default): no timing happens.
  void set_metrics(obs::Histogram* fsync_us, obs::Histogram* snapshot_us,
                   obs::Histogram* stage_fsync_us = nullptr) noexcept {
    fsync_us_ = fsync_us;
    snapshot_us_ = snapshot_us;
    stage_fsync_us_ = stage_fsync_us;
  }

  [[nodiscard]] uint64_t epoch() const noexcept { return epoch_; }
  /// WAL records since the last compaction (or open).
  [[nodiscard]] uint64_t wal_records() const noexcept;
  /// On-disk WAL bytes since the last compaction — the replay cost a crash
  /// would pay, and the kWalBuffers input to memory attribution.
  [[nodiscard]] uint64_t wal_bytes() const noexcept;
  /// Encoded size of the most recent snapshot written this run (0 before
  /// the first compaction) — the kSnapshotBuffers attribution input.
  [[nodiscard]] uint64_t last_snapshot_bytes() const noexcept {
    return last_snapshot_bytes_;
  }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  std::vector<std::byte> encode_snapshot(const SnapshotInput& in) const;
  void persist_epoch(uint64_t epoch) const;
  [[nodiscard]] uint64_t read_epoch_file() const;

  std::string dir_;
  model::Schema schema_;
  core::GeneralizePolicy policy_;
  core::WireConfig wire_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t epoch_ = 0;
  uint64_t wal_base_records_ = 0;  // records already in the log at open()
  uint64_t wal_base_bytes_ = 0;    // intact bytes in the log at open()
  uint64_t last_snapshot_bytes_ = 0;
  obs::Histogram* fsync_us_ = nullptr;        // not owned; see set_metrics
  obs::Histogram* snapshot_us_ = nullptr;     // not owned
  obs::Histogram* stage_fsync_us_ = nullptr;  // not owned
};

}  // namespace subsum::store
