#include "baseline/broadcast.h"

namespace subsum::baseline {

double broadcast_bandwidth_formula(const overlay::Graph& g, const BroadcastParams& p) {
  const double brokers = static_cast<double>(g.size());
  return (brokers - 1) * g.mean_pairwise_distance() * brokers *
         static_cast<double>(p.sigma_per_broker) * static_cast<double>(p.avg_sub_bytes);
}

BroadcastCost broadcast_cost(const overlay::Graph& g, const BroadcastParams& p) {
  BroadcastCost c;
  for (overlay::BrokerId home = 0; home < g.size(); ++home) {
    size_t hops = 0;
    for (int d : g.distances_from(home)) {
      if (d > 0) hops += static_cast<size_t>(d);
    }
    c.messages += hops * p.sigma_per_broker;
  }
  c.bytes = c.messages * p.avg_sub_bytes;
  return c;
}

size_t broadcast_storage_bytes(size_t brokers, size_t outstanding_per_broker,
                               size_t avg_sub_bytes) {
  return brokers * brokers * outstanding_per_broker * avg_sub_bytes;
}

}  // namespace subsum::baseline
