// The baseline of §5.2: every broker broadcasts every subscription to every
// other broker. The paper measures its bandwidth as
//
//   (brokers - 1) × avg hops between brokers × brokers × σ × avg sub size
//
// and its storage as every broker holding every subscription. Both the
// closed-form accounting and a real flooding count over shortest paths are
// provided.
#pragma once

#include <cstddef>

#include "overlay/graph.h"

namespace subsum::baseline {

struct BroadcastParams {
  size_t sigma_per_broker = 10;  // σ: new subscriptions per broker per period
  size_t avg_sub_bytes = 50;     // table 2 average subscription size
};

/// The paper's closed-form bandwidth for one propagation period.
double broadcast_bandwidth_formula(const overlay::Graph& g, const BroadcastParams& p);

/// Message-accurate count: each subscription travels from its home to every
/// other broker along shortest paths (one message per edge traversed).
struct BroadcastCost {
  size_t messages = 0;
  size_t bytes = 0;
};
BroadcastCost broadcast_cost(const overlay::Graph& g, const BroadcastParams& p);

/// Storage when every broker stores all S-per-broker subscriptions.
size_t broadcast_storage_bytes(size_t brokers, size_t outstanding_per_broker,
                               size_t avg_sub_bytes);

}  // namespace subsum::baseline
