// Deployment configuration: the attribute schema plus the broker overlay,
// in a line-oriented text format shared by every CLI tool so all brokers
// agree on the attribute ordering (the paper's assumption iii).
//
//   # stock feed deployment
//   attribute exchange string
//   attribute price    float
//   attribute volume   int
//   brokers 13
//   edge 0 1
//   edge 1 4
//   ...
//
// Alternatively a built-in topology:
//
//   topology cw24          # the 24-node backbone
//   topology fig7          # the paper's figure-7 tree
//   topology line 5 | ring 6 | star 8
//
// Comments start with '#'; blank lines are ignored.
#pragma once

#include <string>
#include <string_view>

#include "model/schema.h"
#include "overlay/graph.h"

namespace subsum::config {

class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

struct SystemSpec {
  model::Schema schema;
  overlay::Graph graph;
};

/// Parses the text form; throws ConfigError with a line number on errors.
SystemSpec parse_system_spec(std::string_view text);

/// Reads and parses a config file.
SystemSpec load_system_spec(const std::string& path);

/// Renders a spec back to the text form (round-trips through parse).
std::string to_text(const SystemSpec& spec);

}  // namespace subsum::config
