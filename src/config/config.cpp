#include "config/config.h"

#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "overlay/topologies.h"

namespace subsum::config {

namespace {

[[noreturn]] void fail(size_t line, const std::string& what) {
  throw ConfigError("line " + std::to_string(line) + ": " + what);
}

std::optional<model::AttrType> type_from(const std::string& word) {
  if (word == "int") return model::AttrType::kInt;
  if (word == "float") return model::AttrType::kFloat;
  if (word == "string") return model::AttrType::kString;
  return std::nullopt;
}

}  // namespace

SystemSpec parse_system_spec(std::string_view text) {
  std::vector<model::AttributeSpec> attrs;
  std::optional<overlay::Graph> graph;
  std::vector<std::pair<overlay::BrokerId, overlay::BrokerId>> edges;
  std::optional<size_t> brokers;

  std::istringstream in{std::string(text)};
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string cmd;
    if (!(ls >> cmd)) continue;

    if (cmd == "attribute") {
      std::string name, type_word;
      if (!(ls >> name >> type_word)) fail(lineno, "attribute needs <name> <type>");
      const auto type = type_from(type_word);
      if (!type) fail(lineno, "unknown attribute type '" + type_word + "'");
      attrs.push_back({name, *type});
    } else if (cmd == "brokers") {
      size_t n = 0;
      if (!(ls >> n) || n == 0) fail(lineno, "brokers needs a positive count");
      brokers = n;
    } else if (cmd == "edge") {
      overlay::BrokerId a = 0, b = 0;
      if (!(ls >> a >> b)) fail(lineno, "edge needs two broker ids");
      edges.emplace_back(a, b);
    } else if (cmd == "topology") {
      std::string kind;
      if (!(ls >> kind)) fail(lineno, "topology needs a name");
      if (kind == "cw24") {
        graph = overlay::cable_wireless_24();
      } else if (kind == "fig7") {
        graph = overlay::fig7_tree();
      } else {
        size_t n = 0;
        if (!(ls >> n)) fail(lineno, "topology " + kind + " needs a size");
        try {
          if (kind == "line") {
            graph = overlay::line(n);
          } else if (kind == "ring") {
            graph = overlay::ring(n);
          } else if (kind == "star") {
            graph = overlay::star(n);
          } else {
            fail(lineno, "unknown topology '" + kind + "'");
          }
        } catch (const std::invalid_argument& e) {
          fail(lineno, e.what());
        }
      }
    } else {
      fail(lineno, "unknown directive '" + cmd + "'");
    }
  }

  if (attrs.empty()) throw ConfigError("config declares no attributes");
  SystemSpec spec;
  try {
    spec.schema = model::Schema(std::move(attrs));
  } catch (const std::invalid_argument& e) {
    throw ConfigError(e.what());
  }

  if (graph) {
    if (brokers || !edges.empty()) {
      throw ConfigError("use either 'topology' or 'brokers'/'edge', not both");
    }
    spec.graph = std::move(*graph);
  } else {
    if (!brokers) throw ConfigError("config declares no topology");
    spec.graph = overlay::Graph(*brokers);
    for (auto [a, b] : edges) {
      try {
        spec.graph.add_edge(a, b);
      } catch (const std::invalid_argument& e) {
        throw ConfigError(std::string("edge ") + std::to_string(a) + " " +
                          std::to_string(b) + ": " + e.what());
      }
    }
  }
  if (!spec.graph.connected()) throw ConfigError("broker overlay is not connected");
  return spec;
}

SystemSpec load_system_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_system_spec(buf.str());
}

std::string to_text(const SystemSpec& spec) {
  std::ostringstream out;
  for (const auto& a : spec.schema.specs()) {
    out << "attribute " << a.name << " " << model::to_string(a.type) << "\n";
  }
  out << "brokers " << spec.graph.size() << "\n";
  for (auto [a, b] : spec.graph.edges()) out << "edge " << a << " " << b << "\n";
  return out.str();
}

}  // namespace subsum::config
