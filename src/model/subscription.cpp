#include "model/subscription.h"

#include <stdexcept>

namespace subsum::model {

Subscription::Subscription(const Schema& schema, std::vector<Constraint> constraints)
    : constraints_(std::move(constraints)) {
  if (constraints_.empty()) {
    throw std::invalid_argument("subscription must have at least one constraint");
  }
  for (const auto& c : constraints_) {
    validate(c, schema);
    mask_ |= attr_bit(c.attr);
  }
}

bool Subscription::matches(const Event& e) const {
  if ((e.mask() & mask_) != mask_) return false;  // event lacks a constrained attribute
  for (const auto& c : constraints_) {
    const Value* v = e.find(c.attr);
    if (!c.matches(*v)) return false;
  }
  return true;
}

std::vector<Constraint> Subscription::constraints_on(AttrId id) const {
  std::vector<Constraint> out;
  for (const auto& c : constraints_) {
    if (c.attr == id) out.push_back(c);
  }
  return out;
}

std::string Subscription::to_string(const Schema& schema) const {
  std::string out = "[";
  for (size_t i = 0; i < constraints_.size(); ++i) {
    if (i) out += " AND ";
    out += constraints_[i].to_string(schema);
  }
  out += "]";
  return out;
}

SubscriptionBuilder& SubscriptionBuilder::where(std::string_view name, Op op, Value operand) {
  return where(schema_->id_of(name), op, std::move(operand));
}

SubscriptionBuilder& SubscriptionBuilder::where(AttrId id, Op op, Value operand) {
  constraints_.push_back(Constraint{id, op, std::move(operand)});
  return *this;
}

Subscription SubscriptionBuilder::build() {
  return Subscription(*schema_, std::move(constraints_));
}

}  // namespace subsum::model
