// Text forms for constraints, subscriptions and events, used by the CLI
// tools and handy in tests:
//
//   constraint:    price > 8.30        symbol >* OT      exchange = "NYSE"
//   subscription:  price > 8.30 AND price < 8.70 AND symbol = OTE
//   event:         price = 8.40, symbol = OTE, volume = 132700
//
// Operators: = != < <= > >= (arithmetic), = != >* *< * (strings; >* prefix,
// *< suffix, * containment). String values may be double-quoted (required
// when they contain spaces, commas or the word AND). Numeric literals are
// typed by the attribute's schema type.
#pragma once

#include <stdexcept>
#include <string_view>

#include "model/event.h"
#include "model/subscription.h"

namespace subsum::model {

class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses one attribute constraint, e.g. "price > 8.30".
Constraint parse_constraint(const Schema& schema, std::string_view text);

/// Parses a conjunction of constraints joined by AND (case-insensitive).
Subscription parse_subscription(const Schema& schema, std::string_view text);

/// Parses a comma-separated attribute assignment list, e.g.
/// "price = 8.40, symbol = OTE".
Event parse_event(const Schema& schema, std::string_view text);

}  // namespace subsum::model
