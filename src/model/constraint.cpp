#include "model/constraint.h"

#include <stdexcept>

#include "util/strings.h"

namespace subsum::model {

const char* to_string(Op op) noexcept {
  switch (op) {
    case Op::kEq:
      return "=";
    case Op::kNe:
      return "!=";
    case Op::kLt:
      return "<";
    case Op::kLe:
      return "<=";
    case Op::kGt:
      return ">";
    case Op::kGe:
      return ">=";
    case Op::kPrefix:
      return ">*";
    case Op::kSuffix:
      return "*<";
    case Op::kContains:
      return "*";
  }
  return "?";
}

bool op_valid_for(Op op, AttrType t) noexcept {
  switch (op) {
    case Op::kEq:
    case Op::kNe:
      return true;
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
      return is_arithmetic(t);
    case Op::kPrefix:
    case Op::kSuffix:
    case Op::kContains:
      return t == AttrType::kString;
  }
  return false;
}

bool Constraint::matches(const Value& v) const {
  if (v.type() == AttrType::kString) {
    const std::string& s = v.as_string();
    const std::string& o = operand.as_string();
    switch (op) {
      case Op::kEq:
        return s == o;
      case Op::kNe:
        return s != o;
      case Op::kPrefix:
        return util::starts_with(s, o);
      case Op::kSuffix:
        return util::ends_with(s, o);
      case Op::kContains:
        return util::contains(s, o);
      default:
        throw TypeError("ordering operator applied to string value");
    }
  }
  const double a = v.as_number();
  const double b = operand.as_number();
  switch (op) {
    case Op::kEq:
      return a == b;
    case Op::kNe:
      return a != b;
    case Op::kLt:
      return a < b;
    case Op::kLe:
      return a <= b;
    case Op::kGt:
      return a > b;
    case Op::kGe:
      return a >= b;
    default:
      throw TypeError("string operator applied to arithmetic value");
  }
}

std::string Constraint::to_string(const Schema& schema) const {
  return schema.spec(attr).name + " " + model::to_string(op) + " " + operand.to_string();
}

void validate(const Constraint& c, const Schema& schema) {
  if (c.attr >= schema.attr_count()) {
    throw std::invalid_argument("constraint attribute id out of range");
  }
  const AttrType t = schema.type_of(c.attr);
  if (!op_valid_for(c.op, t)) {
    throw std::invalid_argument(std::string("operator ") + to_string(c.op) +
                                " not valid for attribute type " + model::to_string(t));
  }
  // String operators take string operands; arithmetic comparisons take
  // arithmetic operands of the attribute's exact type.
  if (t == AttrType::kString) {
    if (c.operand.type() != AttrType::kString) {
      throw TypeError("string attribute requires string operand");
    }
  } else if (c.operand.type() != t) {
    throw TypeError("operand type mismatch for arithmetic attribute");
  }
}

}  // namespace subsum::model
