// Events. An event is a set of (attribute, value) pairs conforming to the
// schema (fig 2). An event may mention any subset of the schema's
// attributes; a subscription may constrain fewer attributes than the event
// carries (§2.1, "an event can have more attributes than those mentioned in
// the subscription attributes").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/schema.h"
#include "model/value.h"

namespace subsum::model {

/// One attribute of an event.
struct EventAttr {
  AttrId attr = 0;
  Value value;

  bool operator==(const EventAttr&) const = default;
};

/// An immutable published event. Attributes are stored sorted by AttrId
/// (the schema order the paper assumes), at most one value per attribute.
class Event {
 public:
  Event() = default;

  /// Builds an event, validating ids/types against the schema and sorting
  /// attributes by id. Throws TypeError / std::invalid_argument on
  /// type mismatch, unknown id, or duplicate attribute.
  Event(const Schema& schema, std::vector<EventAttr> attrs);

  [[nodiscard]] const std::vector<EventAttr>& attrs() const noexcept { return attrs_; }
  [[nodiscard]] size_t size() const noexcept { return attrs_.size(); }

  /// Value of an attribute, or nullptr if the event does not carry it.
  [[nodiscard]] const Value* find(AttrId id) const noexcept;

  /// Bitmask of the attributes present in this event.
  [[nodiscard]] AttrMask mask() const noexcept { return mask_; }

  [[nodiscard]] std::string to_string(const Schema& schema) const;

  bool operator==(const Event&) const = default;

 private:
  std::vector<EventAttr> attrs_;
  AttrMask mask_ = 0;
};

/// Fluent builder: EventBuilder(schema).set("price", 8.40).set(...).build().
class EventBuilder {
 public:
  /// Keeps a pointer to `schema` until build(); temporaries are rejected.
  explicit EventBuilder(const Schema& schema) : schema_(&schema) {}
  explicit EventBuilder(Schema&&) = delete;

  EventBuilder& set(std::string_view name, Value v);
  EventBuilder& set(AttrId id, Value v);

  /// Consumes the builder's accumulated attributes (single use).
  [[nodiscard]] Event build();

 private:
  const Schema* schema_;
  std::vector<EventAttr> attrs_;
};

}  // namespace subsum::model
