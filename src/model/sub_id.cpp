#include "model/sub_id.h"

#include <bit>
#include <stdexcept>

namespace subsum::model {

std::string SubId::to_string() const {
  return "S(" + std::to_string(broker) + "." + std::to_string(local) + ")";
}

int bits_for(uint64_t n) noexcept {
  if (n <= 1) return 1;
  return std::bit_width(n - 1);
}

SubIdCodec::SubIdCodec(uint32_t num_brokers, uint64_t max_subs_per_broker, size_t attr_count)
    : c1_bits_(bits_for(num_brokers)),
      c2_bits_(bits_for(max_subs_per_broker)),
      c3_bits_(static_cast<int>(attr_count)) {
  if (num_brokers == 0 || max_subs_per_broker == 0) {
    throw std::invalid_argument("codec requires at least one broker and one subscription");
  }
  if (attr_count == 0 || attr_count > Schema::kMaxAttrs) {
    throw std::invalid_argument("codec attr_count out of range");
  }
  if (c1_bits_ + c2_bits_ + c3_bits_ > 128) {
    throw std::invalid_argument("subscription id exceeds 128 bits");
  }
}

__uint128_t SubIdCodec::pack(const SubId& id) const {
  const auto check = [](uint64_t v, int bits, const char* field) {
    if (bits < 64 && v >= (uint64_t{1} << bits)) {
      throw std::invalid_argument(std::string(field) + " exceeds its bit width");
    }
  };
  check(id.broker, c1_bits_, "c1 (broker id)");
  check(id.local, c2_bits_, "c2 (local id)");
  check(id.attrs, c3_bits_, "c3 (attribute mask)");
  __uint128_t bits = id.attrs;
  bits |= static_cast<__uint128_t>(id.local) << c3_bits_;
  bits |= static_cast<__uint128_t>(id.broker) << (c3_bits_ + c2_bits_);
  return bits;
}

SubId SubIdCodec::unpack(__uint128_t bits) const noexcept {
  const auto mask = [](int n) -> __uint128_t {
    return n >= 128 ? ~__uint128_t{0} : ((__uint128_t{1} << n) - 1);
  };
  SubId id;
  id.attrs = static_cast<AttrMask>(bits & mask(c3_bits_));
  id.local = static_cast<uint32_t>((bits >> c3_bits_) & mask(c2_bits_));
  id.broker = static_cast<BrokerId>((bits >> (c3_bits_ + c2_bits_)) & mask(c1_bits_));
  return id;
}

}  // namespace subsum::model
