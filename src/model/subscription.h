// Subscriptions. A subscription is a conjunction of attribute constraints
// (fig 3): an event matches iff every constraint is satisfied. A
// subscription may carry two or more constraints on the same attribute
// (e.g. 8.30 < price < 8.70), and an event may carry attributes the
// subscription does not mention.
#pragma once

#include <string>
#include <vector>

#include "model/constraint.h"
#include "model/event.h"
#include "model/schema.h"
#include "model/sub_id.h"

namespace subsum::model {

class Subscription {
 public:
  Subscription() = default;

  /// Validates all constraints against the schema; throws on invalid
  /// constraints or an empty constraint list.
  Subscription(const Schema& schema, std::vector<Constraint> constraints);

  [[nodiscard]] const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }

  /// Bitmask of constrained attributes (the c3 field of this
  /// subscription's id).
  [[nodiscard]] AttrMask mask() const noexcept { return mask_; }

  /// Exact match: every constraint satisfied by the event's values.
  /// An event lacking a constrained attribute does not match.
  [[nodiscard]] bool matches(const Event& e) const;

  /// Constraints on one attribute, in insertion order.
  [[nodiscard]] std::vector<Constraint> constraints_on(AttrId id) const;

  [[nodiscard]] std::string to_string(const Schema& schema) const;

  bool operator==(const Subscription&) const = default;

 private:
  std::vector<Constraint> constraints_;
  AttrMask mask_ = 0;
};

/// Fluent builder mirroring EventBuilder.
class SubscriptionBuilder {
 public:
  /// Keeps a pointer to `schema` until build(); temporaries are rejected.
  explicit SubscriptionBuilder(const Schema& schema) : schema_(&schema) {}
  explicit SubscriptionBuilder(Schema&&) = delete;

  SubscriptionBuilder& where(std::string_view name, Op op, Value operand);
  SubscriptionBuilder& where(AttrId id, Op op, Value operand);

  /// Consumes the builder's accumulated constraints (single use).
  [[nodiscard]] Subscription build();

 private:
  const Schema* schema_;
  std::vector<Constraint> constraints_;
};

/// A subscription stored at its home broker together with its id.
/// The home broker keeps these to (a) deliver matched events to the right
/// consumer and (b) re-filter exactly, since SACS summarization is
/// deliberately lossy (see DESIGN.md).
struct OwnedSubscription {
  SubId id;
  Subscription sub;
};

}  // namespace subsum::model
