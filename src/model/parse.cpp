#include "model/parse.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <vector>

namespace subsum::model {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits on a separator, respecting double quotes.
std::vector<std::string_view> split_outside_quotes(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  bool quoted = false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') quoted = !quoted;
    if (s[i] == sep && !quoted) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  out.push_back(s.substr(start));
  return out;
}

/// Longest-match operator table; two-character operators first.
struct OpToken {
  std::string_view token;
  Op op;
};
constexpr OpToken kOps[] = {
    {"!=", Op::kNe},     {"<=", Op::kLe},  {">=", Op::kGe},   {">*", Op::kPrefix},
    {"*<", Op::kSuffix}, {"<", Op::kLt},   {">", Op::kGt},    {"=", Op::kEq},
    {"*", Op::kContains},
};

Value parse_value(const Schema& schema, AttrId attr, std::string_view text) {
  text = trim(text);
  if (text.empty()) throw ParseError("missing value");
  const AttrType type = schema.type_of(attr);
  if (type == AttrType::kString) {
    if (text.size() >= 2 && text.front() == '"' && text.back() == '"') {
      return Value(std::string(text.substr(1, text.size() - 2)));
    }
    return Value(std::string(text));
  }
  if (text.front() == '"') throw ParseError("quoted value for arithmetic attribute");
  if (type == AttrType::kInt) {
    int64_t v = 0;
    const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
      throw ParseError("bad integer literal: '" + std::string(text) + "'");
    }
    return Value(v);
  }
  double v = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw ParseError("bad number literal: '" + std::string(text) + "'");
  }
  return Value(v);
}

}  // namespace

Constraint parse_constraint(const Schema& schema, std::string_view text) {
  text = trim(text);
  // Attribute name: leading identifier characters.
  size_t n = 0;
  while (n < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[n])) || text[n] == '_')) {
    ++n;
  }
  if (n == 0) throw ParseError("expected attribute name in '" + std::string(text) + "'");
  const std::string_view name = text.substr(0, n);
  const auto attr = schema.find(name);
  if (!attr) throw ParseError("unknown attribute '" + std::string(name) + "'");

  std::string_view rest = trim(text.substr(n));
  for (const auto& [token, op] : kOps) {
    if (rest.substr(0, token.size()) == token) {
      Constraint c{*attr, op, parse_value(schema, *attr, rest.substr(token.size()))};
      validate(c, schema);
      return c;
    }
  }
  throw ParseError("expected operator in '" + std::string(text) + "'");
}

Subscription parse_subscription(const Schema& schema, std::string_view text) {
  std::vector<Constraint> cs;
  std::string_view rest = text;
  while (true) {
    // Find the next AND outside quotes.
    bool quoted = false;
    size_t cut = std::string_view::npos;
    for (size_t i = 0; i + 3 <= rest.size(); ++i) {
      if (rest[i] == '"') quoted = !quoted;
      if (quoted) continue;
      const bool is_and = (rest[i] == 'A' || rest[i] == 'a') &&
                          (rest[i + 1] == 'N' || rest[i + 1] == 'n') &&
                          (rest[i + 2] == 'D' || rest[i + 2] == 'd');
      const bool boundary_before =
          i == 0 || std::isspace(static_cast<unsigned char>(rest[i - 1]));
      const bool boundary_after =
          i + 3 == rest.size() || std::isspace(static_cast<unsigned char>(rest[i + 3]));
      if (is_and && boundary_before && boundary_after && i > 0) {
        cut = i;
        break;
      }
    }
    if (cut == std::string_view::npos) {
      cs.push_back(parse_constraint(schema, rest));
      break;
    }
    cs.push_back(parse_constraint(schema, rest.substr(0, cut)));
    rest = rest.substr(cut + 3);
  }
  return Subscription(schema, std::move(cs));
}

Event parse_event(const Schema& schema, std::string_view text) {
  std::vector<EventAttr> attrs;
  for (std::string_view part : split_outside_quotes(text, ',')) {
    part = trim(part);
    if (part.empty()) continue;
    bool quoted = false;
    size_t eq = std::string_view::npos;
    for (size_t i = 0; i < part.size(); ++i) {
      if (part[i] == '"') quoted = !quoted;
      if (part[i] == '=' && !quoted) {
        eq = i;
        break;
      }
    }
    if (eq == std::string_view::npos) {
      throw ParseError("expected '=' in event attribute '" + std::string(part) + "'");
    }
    const std::string_view name = trim(part.substr(0, eq));
    const auto attr = schema.find(name);
    if (!attr) throw ParseError("unknown attribute '" + std::string(name) + "'");
    attrs.push_back({*attr, parse_value(schema, *attr, part.substr(eq + 1))});
  }
  if (attrs.empty()) throw ParseError("event has no attributes");
  return Event(schema, std::move(attrs));
}

}  // namespace subsum::model
