#include "model/event.h"

#include <algorithm>
#include <stdexcept>

namespace subsum::model {

Event::Event(const Schema& schema, std::vector<EventAttr> attrs) : attrs_(std::move(attrs)) {
  std::sort(attrs_.begin(), attrs_.end(),
            [](const EventAttr& a, const EventAttr& b) { return a.attr < b.attr; });
  for (const auto& a : attrs_) {
    if (a.attr >= schema.attr_count()) {
      throw std::invalid_argument("event attribute id out of range");
    }
    if (a.value.type() != schema.type_of(a.attr)) {
      throw TypeError("event value type mismatch for attribute " + schema.spec(a.attr).name);
    }
    const AttrMask bit = attr_bit(a.attr);
    if (mask_ & bit) {
      throw std::invalid_argument("duplicate event attribute: " + schema.spec(a.attr).name);
    }
    mask_ |= bit;
  }
}

const Value* Event::find(AttrId id) const noexcept {
  if (!(mask_ & attr_bit(id))) return nullptr;
  auto it = std::lower_bound(attrs_.begin(), attrs_.end(), id,
                             [](const EventAttr& a, AttrId v) { return a.attr < v; });
  return &it->value;
}

std::string Event::to_string(const Schema& schema) const {
  std::string out = "{";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i) out += ", ";
    out += schema.spec(attrs_[i].attr).name + "=" + attrs_[i].value.to_string();
  }
  out += "}";
  return out;
}

EventBuilder& EventBuilder::set(std::string_view name, Value v) {
  return set(schema_->id_of(name), std::move(v));
}

EventBuilder& EventBuilder::set(AttrId id, Value v) {
  attrs_.push_back(EventAttr{id, std::move(v)});
  return *this;
}

Event EventBuilder::build() { return Event(*schema_, std::move(attrs_)); }

}  // namespace subsum::model
