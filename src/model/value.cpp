#include "model/value.h"

#include "util/strings.h"

namespace subsum::model {

const char* to_string(AttrType t) noexcept {
  switch (t) {
    case AttrType::kInt:
      return "int";
    case AttrType::kFloat:
      return "float";
    case AttrType::kString:
      return "string";
  }
  return "?";
}

AttrType Value::type() const noexcept {
  switch (v_.index()) {
    case 0:
      return AttrType::kInt;
    case 1:
      return AttrType::kFloat;
    default:
      return AttrType::kString;
  }
}

int64_t Value::as_int() const {
  if (const auto* p = std::get_if<int64_t>(&v_)) return *p;
  throw TypeError("value is not an int");
}

double Value::as_float() const {
  if (const auto* p = std::get_if<double>(&v_)) return *p;
  throw TypeError("value is not a float");
}

const std::string& Value::as_string() const {
  if (const auto* p = std::get_if<std::string>(&v_)) return *p;
  throw TypeError("value is not a string");
}

double Value::as_number() const {
  if (const auto* p = std::get_if<int64_t>(&v_)) return static_cast<double>(*p);
  if (const auto* p = std::get_if<double>(&v_)) return *p;
  throw TypeError("value is not arithmetic");
}

std::strong_ordering Value::operator<=>(const Value& o) const noexcept {
  if (v_.index() != o.v_.index()) return v_.index() <=> o.v_.index();
  switch (v_.index()) {
    case 0:
      return std::get<int64_t>(v_) <=> std::get<int64_t>(o.v_);
    case 1: {
      const double a = std::get<double>(v_);
      const double b = std::get<double>(o.v_);
      if (a < b) return std::strong_ordering::less;
      if (a > b) return std::strong_ordering::greater;
      return std::strong_ordering::equal;
    }
    default:
      return std::get<std::string>(v_) <=> std::get<std::string>(o.v_);
  }
}

std::string Value::to_string() const {
  switch (v_.index()) {
    case 0:
      return std::to_string(std::get<int64_t>(v_));
    case 1:
      return util::format_number(std::get<double>(v_));
    default:
      return "\"" + std::get<std::string>(v_) + "\"";
  }
}

}  // namespace subsum::model
