#include "model/schema.h"

#include <bit>
#include <stdexcept>

namespace subsum::model {

int popcount(AttrMask m) noexcept { return std::popcount(m); }

Schema::Schema(std::vector<AttributeSpec> attrs) : attrs_(std::move(attrs)) {
  if (attrs_.size() > kMaxAttrs) {
    throw std::invalid_argument("schema exceeds " + std::to_string(kMaxAttrs) + " attributes");
  }
  for (AttrId id = 0; id < attrs_.size(); ++id) {
    if (attrs_[id].name.empty()) {
      throw std::invalid_argument("attribute name must be non-empty");
    }
    auto [it, inserted] = by_name_.emplace(attrs_[id].name, id);
    (void)it;
    if (!inserted) {
      throw std::invalid_argument("duplicate attribute name: " + attrs_[id].name);
    }
    if (is_arithmetic(attrs_[id].type)) ++arithmetic_count_;
  }
}

std::optional<AttrId> Schema::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

AttrId Schema::id_of(std::string_view name) const {
  if (auto id = find(name)) return *id;
  throw std::out_of_range("unknown attribute: " + std::string(name));
}

Schema extend_schema(const Schema& base, std::vector<AttributeSpec> extra) {
  std::vector<AttributeSpec> all = base.specs();
  all.insert(all.end(), std::make_move_iterator(extra.begin()),
             std::make_move_iterator(extra.end()));
  return Schema(std::move(all));
}

bool is_extension_of(const Schema& wider, const Schema& base) {
  if (wider.attr_count() < base.attr_count()) return false;
  for (AttrId a = 0; a < base.attr_count(); ++a) {
    if (!(wider.spec(a) == base.spec(a))) return false;
  }
  return true;
}

}  // namespace subsum::model
