// Attribute values. The paper's event schema is an untyped set of typed
// attributes whose types are "primitive data types commonly found in most
// programming languages" (fig 2 shows string, date, float, integer). We
// model three physical types:
//
//   Int    -- 64-bit signed integer (also carries dates as epoch seconds)
//   Float  -- IEEE double
//   String -- byte string
//
// Int and Float are both "arithmetic" in the paper's sense and are summarized
// by AACS structures; String attributes are summarized by SACS structures.
#pragma once

#include <compare>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>

namespace subsum::model {

enum class AttrType : uint8_t {
  kInt = 0,
  kFloat = 1,
  kString = 2,
};

/// True for types summarized by AACS (numeric order semantics).
constexpr bool is_arithmetic(AttrType t) noexcept { return t != AttrType::kString; }

const char* to_string(AttrType t) noexcept;

/// Thrown on type mismatches (e.g. string constraint on an int attribute).
class TypeError : public std::runtime_error {
 public:
  explicit TypeError(const std::string& what) : std::runtime_error(what) {}
};

/// A typed attribute value.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  Value(int64_t v) : v_(v) {}                 // NOLINT(google-explicit-constructor)
  Value(int v) : v_(int64_t{v}) {}            // NOLINT(google-explicit-constructor)
  Value(double v) : v_(v) {}                  // NOLINT(google-explicit-constructor)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] AttrType type() const noexcept;

  [[nodiscard]] bool is_arithmetic() const noexcept { return model::is_arithmetic(type()); }

  /// Typed accessors; throw TypeError on mismatch.
  [[nodiscard]] int64_t as_int() const;
  [[nodiscard]] double as_float() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Numeric view of an arithmetic value (Int widened to double).
  /// Throws TypeError for strings.
  [[nodiscard]] double as_number() const;

  /// Exact equality (no numeric cross-type coercion: 1 != 1.0).
  bool operator==(const Value& o) const noexcept { return v_ == o.v_; }

  /// Ordering within a type; comparing different types orders by type tag
  /// (needed only for use as map keys, never for constraint evaluation).
  std::strong_ordering operator<=>(const Value& o) const noexcept;

  [[nodiscard]] std::string to_string() const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace subsum::model
