// Subscription attribute constraints with the paper's operator set
// (§2.1): =, ≠, <, >, (plus ≤, ≥), prefix ">*", suffix "*<",
// containment "*". Prefix/suffix/containment apply to strings only;
// ordering comparisons apply to arithmetic attributes.
#pragma once

#include <cstdint>
#include <string>

#include "model/schema.h"
#include "model/value.h"

namespace subsum::model {

enum class Op : uint8_t {
  kEq = 0,        // =
  kNe = 1,        // ≠
  kLt = 2,        // <
  kLe = 3,        // <=
  kGt = 4,        // >
  kGe = 5,        // >=
  kPrefix = 6,    // >*  (value starts with operand)
  kSuffix = 7,    // *<  (value ends with operand)
  kContains = 8,  // *   (value contains operand)
};

const char* to_string(Op op) noexcept;

/// True if `op` is meaningful for values of type `t`.
bool op_valid_for(Op op, AttrType t) noexcept;

/// One attribute-value constraint of a subscription.
struct Constraint {
  AttrId attr = 0;
  Op op = Op::kEq;
  Value operand;

  /// Does a concrete event value satisfy this constraint?
  /// The value must have the constrained attribute's type.
  [[nodiscard]] bool matches(const Value& v) const;

  [[nodiscard]] std::string to_string(const Schema& schema) const;

  bool operator==(const Constraint&) const = default;
};

/// Validates a constraint against a schema; throws TypeError /
/// std::invalid_argument if the attribute id, operand type, or operator
/// is inconsistent.
void validate(const Constraint& c, const Schema& schema);

}  // namespace subsum::model
