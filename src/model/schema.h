// Attribute schema. The paper assumes (§3): (i) a named attribute cannot
// have two different data types, (ii) the number of attributes in the system
// is predefined, together with their (name, type) specification, and
// (iii) the set of supported attributes is ordered and known to every broker.
//
// A Schema is therefore an immutable, ordered list of AttributeSpec; the
// attribute id is the position in that list and doubles as the bit index in
// the c3 field of subscription ids.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "model/value.h"

namespace subsum::model {

using AttrId = uint32_t;

/// Bitmask over attribute ids; bit i set means attribute i participates.
/// Limits the schema to 64 attributes, which covers the paper's nt = 10 with
/// ample headroom (the paper's own c3 is a plain per-attribute bit vector).
using AttrMask = uint64_t;

constexpr AttrMask attr_bit(AttrId id) noexcept { return AttrMask{1} << id; }
int popcount(AttrMask m) noexcept;

struct AttributeSpec {
  std::string name;
  AttrType type = AttrType::kInt;

  bool operator==(const AttributeSpec&) const = default;
};

/// Immutable ordered attribute specification shared by all brokers.
class Schema {
 public:
  static constexpr size_t kMaxAttrs = 64;

  Schema() = default;

  /// Throws std::invalid_argument on duplicate names or > kMaxAttrs entries.
  explicit Schema(std::vector<AttributeSpec> attrs);

  [[nodiscard]] size_t attr_count() const noexcept { return attrs_.size(); }
  [[nodiscard]] const AttributeSpec& spec(AttrId id) const { return attrs_.at(id); }
  [[nodiscard]] const std::vector<AttributeSpec>& specs() const noexcept { return attrs_; }

  /// Id for a name, or nullopt if the attribute is unknown.
  [[nodiscard]] std::optional<AttrId> find(std::string_view name) const;

  /// Id for a name; throws std::out_of_range if unknown.
  [[nodiscard]] AttrId id_of(std::string_view name) const;

  [[nodiscard]] AttrType type_of(AttrId id) const { return spec(id).type; }

  /// Number of arithmetic / string attributes in the schema.
  [[nodiscard]] size_t arithmetic_count() const noexcept { return arithmetic_count_; }
  [[nodiscard]] size_t string_count() const noexcept {
    return attrs_.size() - arithmetic_count_;
  }

  bool operator==(const Schema& o) const { return attrs_ == o.attrs_; }

 private:
  std::vector<AttributeSpec> attrs_;
  std::unordered_map<std::string, AttrId, std::hash<std::string>, std::equal_to<>> by_name_;
  size_t arithmetic_count_ = 0;
};

/// Appends attributes to an existing schema (paper §6 future work,
/// "dynamically-changing attribute schemata"): existing attribute ids —
/// and therefore the bit positions inside every issued c3 mask — are
/// preserved, so outstanding subscription ids stay valid.
Schema extend_schema(const Schema& base, std::vector<AttributeSpec> extra);

/// True if `wider` extends `base` (same leading attributes, in order).
bool is_extension_of(const Schema& wider, const Schema& base);

}  // namespace subsum::model
