// Subscription ids (§3.2). A subscription id is the concatenation of:
//
//   c1 : id of the broker owning the subscription
//        (ceil(log2(#brokers)) bits)
//   c2 : per-broker local subscription id
//        (ceil(log2(max outstanding subscriptions per broker)) bits)
//   c3 : one bit per schema attribute; bit i set iff the subscription has a
//        constraint on attribute i (total-attribute-count bits)
//
// In memory we keep the three parts unpacked; SubIdCodec packs/unpacks the
// exact paper bit layout for the wire, so measured summary sizes follow the
// paper's `sid` parameter.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "model/schema.h"

namespace subsum::model {

using BrokerId = uint32_t;

struct SubId {
  BrokerId broker = 0;  // c1
  uint32_t local = 0;   // c2
  AttrMask attrs = 0;   // c3

  /// Number of attributes the subscription constrains (= popcount(c3)).
  [[nodiscard]] int attr_count() const noexcept { return popcount(attrs); }

  bool operator==(const SubId&) const = default;
  auto operator<=>(const SubId&) const = default;

  [[nodiscard]] std::string to_string() const;
};

/// Packs SubIds into the c1|c2|c3 bit layout.
class SubIdCodec {
 public:
  /// num_brokers >= 1, max_subs_per_broker >= 1, attr_count in [1, 64].
  SubIdCodec(uint32_t num_brokers, uint64_t max_subs_per_broker, size_t attr_count);

  [[nodiscard]] int c1_bits() const noexcept { return c1_bits_; }
  [[nodiscard]] int c2_bits() const noexcept { return c2_bits_; }
  [[nodiscard]] int c3_bits() const noexcept { return c3_bits_; }

  /// Encoded size in whole bytes (the paper's `sid`).
  [[nodiscard]] size_t encoded_size() const noexcept {
    return (static_cast<size_t>(c1_bits_ + c2_bits_ + c3_bits_) + 7) / 8;
  }

  /// Packs into a little-endian bit string: c3 in the low bits, then c2,
  /// then c1 (so figure 6 reads c1|c2|c3 left to right).
  /// Throws std::invalid_argument if a field exceeds its bit width.
  [[nodiscard]] __uint128_t pack(const SubId& id) const;
  [[nodiscard]] SubId unpack(__uint128_t bits) const noexcept;

 private:
  int c1_bits_;
  int c2_bits_;
  int c3_bits_;
};

/// Bits needed to represent n distinct values (>= 1 value -> >= 1 bit).
int bits_for(uint64_t n) noexcept;

}  // namespace subsum::model

template <>
struct std::hash<subsum::model::SubId> {
  size_t operator()(const subsum::model::SubId& id) const noexcept {
    // 64-bit mix of the three parts; c3 rarely disambiguates, but include it
    // so ill-formed duplicate ids with different masks still hash apart.
    uint64_t h = (static_cast<uint64_t>(id.broker) << 32) ^ id.local;
    h ^= id.attrs + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};
