// Per-source shortest-path (BFS) spanning trees. Siena's subscription
// propagation forms, "for every broker B, a minimum spanning tree" over
// which B's subscriptions travel neighbor-to-neighbor (paper §5.2.1); with
// unit edge weights the BFS tree is such a tree.
#pragma once

#include <vector>

#include "overlay/graph.h"

namespace subsum::overlay {

struct SpanningTree {
  BrokerId root = 0;
  /// parent[v] for v != root; parent[root] == root.
  std::vector<BrokerId> parent;
  /// children lists (sorted), forming the same tree.
  std::vector<std::vector<BrokerId>> children;
  /// hop depth from the root.
  std::vector<int> depth;

  [[nodiscard]] size_t size() const noexcept { return parent.size(); }

  /// Total number of tree edges (== size()-1 for connected graphs).
  [[nodiscard]] size_t edge_count() const noexcept;

  /// Number of tree edges in the union of root->target paths: the message
  /// count for delivering one thing from the root to every target along the
  /// tree (used by Siena reverse-path event routing accounting).
  [[nodiscard]] size_t steiner_edges(const std::vector<BrokerId>& targets) const;
};

/// BFS tree rooted at `root`; ties broken towards smaller node ids
/// (deterministic). Throws std::invalid_argument if the graph is not
/// connected from root.
SpanningTree bfs_tree(const Graph& g, BrokerId root);

}  // namespace subsum::overlay
