#include "overlay/graph.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace subsum::overlay {

void Graph::add_edge(BrokerId a, BrokerId b) {
  if (a >= adj_.size() || b >= adj_.size()) {
    throw std::invalid_argument("edge endpoint out of range");
  }
  if (a == b) throw std::invalid_argument("self-loop not allowed");
  if (has_edge(a, b)) throw std::invalid_argument("duplicate edge");
  adj_[a].insert(std::lower_bound(adj_[a].begin(), adj_[a].end(), b), b);
  adj_[b].insert(std::lower_bound(adj_[b].begin(), adj_[b].end(), a), a);
}

bool Graph::has_edge(BrokerId a, BrokerId b) const noexcept {
  if (a >= adj_.size() || b >= adj_.size()) return false;
  return std::binary_search(adj_[a].begin(), adj_[a].end(), b);
}

size_t Graph::max_degree() const noexcept {
  size_t m = 0;
  for (const auto& n : adj_) m = std::max(m, n.size());
  return m;
}

size_t Graph::edge_count() const noexcept {
  size_t n = 0;
  for (const auto& a : adj_) n += a.size();
  return n / 2;
}

std::vector<std::pair<BrokerId, BrokerId>> Graph::edges() const {
  std::vector<std::pair<BrokerId, BrokerId>> out;
  for (BrokerId a = 0; a < adj_.size(); ++a) {
    for (BrokerId b : adj_[a]) {
      if (a < b) out.emplace_back(a, b);
    }
  }
  return out;
}

std::vector<int> Graph::distances_from(BrokerId src) const {
  std::vector<int> dist(adj_.size(), -1);
  dist.at(src) = 0;
  std::queue<BrokerId> q;
  q.push(src);
  while (!q.empty()) {
    const BrokerId v = q.front();
    q.pop();
    for (BrokerId w : adj_[v]) {
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

bool Graph::connected() const {
  if (adj_.empty()) return true;
  const auto d = distances_from(0);
  return std::none_of(d.begin(), d.end(), [](int x) { return x < 0; });
}

int Graph::diameter() const {
  int dia = 0;
  for (BrokerId v = 0; v < adj_.size(); ++v) {
    for (int d : distances_from(v)) {
      if (d < 0) return -1;
      dia = std::max(dia, d);
    }
  }
  return dia;
}

double Graph::mean_pairwise_distance() const {
  double sum = 0;
  size_t pairs = 0;
  for (BrokerId v = 0; v < adj_.size(); ++v) {
    for (int d : distances_from(v)) {
      if (d > 0) {
        sum += d;
        ++pairs;
      }
    }
  }
  return pairs ? sum / static_cast<double>(pairs) : 0.0;
}

std::string Graph::to_string() const {
  std::string out = "graph(" + std::to_string(size()) + " nodes, " +
                    std::to_string(edge_count()) + " edges)";
  return out;
}

}  // namespace subsum::overlay
