#include "overlay/topologies.h"

#include <stdexcept>

namespace subsum::overlay {

Graph fig7_tree() {
  Graph g(13);
  // Paper numbering in comments (node = paper broker - 1).
  const std::pair<int, int> edges[] = {
      {1, 2},    // 1-2
      {2, 5},    // 2-5
      {3, 5},    // 3-5
      {4, 5},    // 4-5
      {6, 5},    // 6-5
      {5, 7},    // 5-7
      {7, 8},    // 7-8
      {8, 9},    // 8-9
      {8, 10},   // 8-10
      {10, 11},  // 10-11
      {11, 12},  // 11-12
      {11, 13},  // 11-13
  };
  for (auto [a, b] : edges) g.add_edge(static_cast<BrokerId>(a - 1), static_cast<BrokerId>(b - 1));
  return g;
}

Graph cable_wireless_24() {
  Graph g(24);
  const std::pair<int, int> edges[] = {
      {0, 1},   {0, 9},   {1, 2},   {2, 3},   {3, 4},   {3, 9},   {4, 5},
      {5, 6},   {5, 7},   {5, 8},   {5, 11},  {6, 7},   {7, 11},  {8, 9},
      {9, 10},  {10, 11}, {10, 14}, {10, 15}, {11, 12}, {11, 13}, {11, 14},
      {12, 13}, {12, 17}, {12, 19}, {14, 15}, {14, 16}, {15, 16}, {15, 20},
      {15, 22}, {15, 23}, {16, 17}, {17, 18}, {17, 20}, {18, 19}, {20, 21},
      {21, 22}, {22, 23},
  };
  for (auto [a, b] : edges) g.add_edge(static_cast<BrokerId>(a), static_cast<BrokerId>(b));
  return g;
}

const std::vector<std::string>& cable_wireless_24_names() {
  static const std::vector<std::string> names = {
      "Seattle",     "Portland",  "Sacramento", "SanFrancisco", "SanJose",
      "LosAngeles",  "SanDiego",  "Phoenix",    "LasVegas",     "SaltLakeCity",
      "Denver",      "Dallas",    "Houston",    "Austin",       "KansasCity",
      "Chicago",     "StLouis",   "Atlanta",    "Miami",        "Tampa",
      "WashingtonDC", "Philadelphia", "NewYork", "Boston",
  };
  return names;
}

Graph random_tree(size_t n, util::Rng& rng) {
  Graph g(n);
  for (BrokerId v = 1; v < n; ++v) {
    g.add_edge(v, static_cast<BrokerId>(rng.below(v)));
  }
  return g;
}

Graph preferential_attachment(size_t n, size_t m, util::Rng& rng) {
  if (m < 1) throw std::invalid_argument("m must be >= 1");
  Graph g(n);
  std::vector<BrokerId> endpoint_pool;  // node repeated once per degree
  for (BrokerId v = 1; v < n; ++v) {
    const size_t links = std::min(m, static_cast<size_t>(v));
    std::vector<BrokerId> targets;
    while (targets.size() < links) {
      BrokerId t;
      if (endpoint_pool.empty() || rng.chance(0.1)) {
        t = static_cast<BrokerId>(rng.below(v));  // uniform fallback/mixing
      } else {
        t = endpoint_pool[rng.below(endpoint_pool.size())];
      }
      if (t < v && !g.has_edge(v, t) &&
          std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (BrokerId t : targets) {
      g.add_edge(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return g;
}

Graph line(size_t n) {
  Graph g(n);
  for (BrokerId v = 1; v < n; ++v) g.add_edge(v - 1, v);
  return g;
}

Graph ring(size_t n) {
  if (n < 3) throw std::invalid_argument("ring needs >= 3 nodes");
  Graph g = line(n);
  g.add_edge(static_cast<BrokerId>(n - 1), 0);
  return g;
}

Graph star(size_t n) {
  if (n < 2) throw std::invalid_argument("star needs >= 2 nodes");
  Graph g(n);
  for (BrokerId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph balanced_tree(size_t n, size_t arity) {
  if (arity < 1) throw std::invalid_argument("arity must be >= 1");
  Graph g(n);
  for (BrokerId v = 1; v < n; ++v) {
    g.add_edge(v, static_cast<BrokerId>((v - 1) / arity));
  }
  return g;
}

}  // namespace subsum::overlay
