// Stock topologies used by tests, examples and the evaluation benches.
#pragma once

#include <string>
#include <vector>

#include "overlay/graph.h"
#include "util/rng.h"

namespace subsum::overlay {

/// The 13-broker example tree of paper fig 7 (0-indexed: paper broker k is
/// node k-1). Node 4 (paper broker 5) has the maximum degree, 5; nodes
/// 0,2,3,5,8,11,12 are leaves; 1,6,9 have degree 2; 7 and 10 degree 3.
Graph fig7_tree();

/// 24-node US ISP-backbone-like overlay standing in for the Cable & Wireless
/// plc backbone the paper evaluates on (the cited map is no longer
/// available). Degree profile: max 6, mean ~3.1, diameter ~7 — in line with
/// published single-ISP backbones of 20-33 nodes. See DESIGN.md
/// (substitutions).
Graph cable_wireless_24();

/// City names for cable_wireless_24 nodes (for example output).
const std::vector<std::string>& cable_wireless_24_names();

/// Uniform random spanning tree over n nodes (random attachment).
Graph random_tree(size_t n, util::Rng& rng);

/// Barabási–Albert-style preferential attachment: each new node attaches to
/// m distinct existing nodes chosen proportionally to degree.
Graph preferential_attachment(size_t n, size_t m, util::Rng& rng);

Graph line(size_t n);
Graph ring(size_t n);
Graph star(size_t n);

/// Complete binary-ish tree with the given arity.
Graph balanced_tree(size_t n, size_t arity);

}  // namespace subsum::overlay
