// Undirected broker overlay graphs (paper §4.2 operates on the overlay
// topology; §5.2 evaluates on a 24-node ISP backbone).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "model/sub_id.h"

namespace subsum::overlay {

using model::BrokerId;

class Graph {
 public:
  Graph() = default;
  explicit Graph(size_t n) : adj_(n) {}

  [[nodiscard]] size_t size() const noexcept { return adj_.size(); }

  /// Adds an undirected edge; self-loops and duplicates are rejected
  /// (std::invalid_argument).
  void add_edge(BrokerId a, BrokerId b);

  [[nodiscard]] bool has_edge(BrokerId a, BrokerId b) const noexcept;

  /// Neighbors sorted ascending.
  [[nodiscard]] const std::vector<BrokerId>& neighbors(BrokerId v) const {
    return adj_.at(v);
  }

  [[nodiscard]] size_t degree(BrokerId v) const { return adj_.at(v).size(); }
  [[nodiscard]] size_t max_degree() const noexcept;
  [[nodiscard]] size_t edge_count() const noexcept;
  [[nodiscard]] std::vector<std::pair<BrokerId, BrokerId>> edges() const;

  /// BFS hop distances from src; unreachable nodes get -1.
  [[nodiscard]] std::vector<int> distances_from(BrokerId src) const;

  [[nodiscard]] bool connected() const;
  [[nodiscard]] int diameter() const;

  /// Mean BFS distance over ordered pairs of distinct reachable nodes
  /// (the "average number of hops from any broker to any other" used by
  /// the broadcast-baseline bandwidth formula, §5.2.1).
  [[nodiscard]] double mean_pairwise_distance() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::vector<BrokerId>> adj_;
};

}  // namespace subsum::overlay
