#include "overlay/spanning_tree.h"

#include <queue>
#include <stdexcept>

namespace subsum::overlay {

size_t SpanningTree::edge_count() const noexcept {
  size_t n = 0;
  for (const auto& c : children) n += c.size();
  return n;
}

size_t SpanningTree::steiner_edges(const std::vector<BrokerId>& targets) const {
  std::vector<char> on_path(parent.size(), 0);
  size_t edges = 0;
  for (BrokerId t : targets) {
    BrokerId v = t;
    while (v != root && !on_path[v]) {
      on_path[v] = 1;
      ++edges;  // edge (v, parent[v])
      v = parent[v];
    }
  }
  return edges;
}

SpanningTree bfs_tree(const Graph& g, BrokerId root) {
  SpanningTree t;
  t.root = root;
  t.parent.assign(g.size(), root);
  t.children.assign(g.size(), {});
  t.depth.assign(g.size(), -1);
  t.depth.at(root) = 0;
  std::queue<BrokerId> q;
  q.push(root);
  while (!q.empty()) {
    const BrokerId v = q.front();
    q.pop();
    for (BrokerId w : g.neighbors(v)) {  // sorted => smallest-id tie-break
      if (t.depth[w] < 0) {
        t.depth[w] = t.depth[v] + 1;
        t.parent[w] = v;
        t.children[v].push_back(w);
        q.push(w);
      }
    }
  }
  for (int d : t.depth) {
    if (d < 0) throw std::invalid_argument("graph not connected from root");
  }
  return t;
}

}  // namespace subsum::overlay
