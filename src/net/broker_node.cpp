#include "net/broker_node.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/frozen_index.h"

#ifndef SUBSUM_VERSION_STRING
#define SUBSUM_VERSION_STRING "dev"
#endif

namespace subsum::net {

using model::SubId;
using overlay::BrokerId;

BrokerNode::BrokerNode(BrokerConfig cfg)
    : cfg_(std::move(cfg)),
      wire_{model::SubIdCodec(static_cast<uint32_t>(cfg_.graph.size()),
                              cfg_.max_subs_per_broker, cfg_.schema.attr_count()),
            cfg_.numeric_width},
      listener_(cfg_.port),
      held_(cfg_.schema, cfg_.policy),
      trace_ring_(cfg_.trace_capacity),
      flight_(cfg_.id, cfg_.flight_capacity),
      stages_(metrics_),
      probe_(metrics_, core::SampleConfig{cfg_.quality_sample_shift}),
      walk_metrics_(metrics_),
      started_at_(std::chrono::steady_clock::now()) {
  if (cfg_.id >= cfg_.graph.size()) throw std::invalid_argument("broker id outside graph");
  if (cfg_.governor.write_stall_timeout.count() <= 0) {
    // An unbounded write deadline is unsupported: a writer blocked forever
    // in send_frame holds conn->write_mu, and connection teardown and
    // stop() both serialize behind that mutex — one dead consumer would
    // deadlock broker shutdown. 0 therefore clamps to the default.
    cfg_.governor.write_stall_timeout = GovernorConfig{}.write_stall_timeout;
  }
  merged_brokers_ = {cfg_.id};
  communicated_.assign(cfg_.graph.size(), 0);
  peer_wants_full_.assign(cfg_.graph.size(), 0);

  // Pre-register every hot-path metric handle; after this, instrument code
  // only does relaxed atomic adds (obs/metrics.h).
  ctr_publishes_ = metrics_.counter("subsum_publishes_total");
  ctr_stale_ = metrics_.counter("subsum_summary_stale_dropped_total");
  ctr_superseded_ = metrics_.counter("subsum_summary_peer_superseded_total");
  ctr_compactions_ = metrics_.counter("subsum_store_compactions_total");
  ctr_drop_ttl_ = metrics_.counter("subsum_redelivery_dropped_ttl_total");
  ctr_drop_overflow_ = metrics_.counter("subsum_redelivery_dropped_overflow_total");
  gauge_redelivery_depth_ = metrics_.gauge("subsum_redelivery_queue_depth");
  ctr_lease_expired_ = metrics_.counter("subsum_lease_expired_total");
  ctr_lease_renewals_ = metrics_.counter("subsum_lease_renewals_total");
  ctr_delta_sends_ = metrics_.counter("subsum_summary_delta_sends_total");
  ctr_full_sends_ = metrics_.counter("subsum_summary_full_sends_total");
  ctr_delta_bytes_ = metrics_.counter("subsum_summary_delta_bytes_total");
  ctr_full_bytes_ = metrics_.counter("subsum_summary_full_bytes_total");
  ctr_delta_fallbacks_ = metrics_.counter("subsum_summary_full_fallback_total");
  ctr_digest_mismatch_ = metrics_.counter("subsum_summary_digest_mismatch_total");
  ctr_sync_requests_ = metrics_.counter("subsum_summary_sync_total");
  ctr_shadow_expired_ = metrics_.counter("subsum_summary_shadow_expired_total");
  hist_match_ = metrics_.histogram_ex("subsum_match_latency_us");
  gauge_trace_dropped_ = metrics_.gauge("subsum_trace_spans_dropped_total");
  hist_peer_rpc_.resize(cfg_.graph.size());
  ctr_peer_retries_.resize(cfg_.graph.size());
  for (BrokerId b = 0; b < cfg_.graph.size(); ++b) {
    const std::string label = "{peer=\"" + std::to_string(b) + "\"}";
    hist_peer_rpc_[b] = metrics_.histogram("subsum_peer_rpc_latency_us" + label);
    ctr_peer_retries_[b] = metrics_.counter("subsum_peer_rpc_retries_total" + label);
  }
  governor_ = std::make_unique<Governor>(cfg_.governor, cfg_.graph.size(), metrics_);
  ctr_slow_disconnect_ = metrics_.counter("subsum_slow_consumer_disconnects_total");
  // Resource attribution + profiling handles. The constructing thread is
  // usually the process main / controller thread — register it as such.
  memacct_.bind_metrics(metrics_);
  procgauges_.bind_metrics(metrics_);
  for (size_t i = 0; i < obs::kThreadRoleCount; ++i) {
    const auto role = to_string(static_cast<obs::ThreadRole>(i));
    ctr_cpu_samples_[i] =
        metrics_.counter(obs::labeled("subsum_cpu_samples_total", "thread_role", role));
    gauge_duty_[i] =
        metrics_.fgauge(obs::labeled("subsum_thread_duty_cycle", "thread_role", role));
  }
  last_duty_scrape_ = started_at_;
  obs::Profiler::register_thread(obs::ThreadRole::kMain);
  obs::Profiler::instance().set_ring_capacity(cfg_.profile_ring_capacity);
  // Continuous profiling: an explicit config rate wins; otherwise the
  // SUBSUM_PROFILE_HZ environment arms every broker in the process (how
  // the chaos CI jobs get folded-stack artifacts without touching each
  // scenario). Folded stacks land next to flight.bin at stop().
  uint32_t profile_hz = cfg_.profile_hz;
  if (profile_hz == 0) {
    if (const char* env = std::getenv("SUBSUM_PROFILE_HZ")) {
      const long v = std::atol(env);
      if (v > 0) profile_hz = static_cast<uint32_t>(v);
    }
  }
  if (profile_hz > 0) {
    profiler_started_ = obs::Profiler::instance().start(profile_hz);
  }
  log_.configure(cfg_.log_level, cfg_.log_sink, cfg_.id, cfg_.log_max_lines_per_sec);
  governor_->set_observer(&flight_, &log_);
  // Incarnation identity for fleet collectors: constant-1 build_info with
  // the version baked into a label, plus uptime/epoch gauges (refreshed on
  // every kStats scrape) so rows can be keyed by (broker, incarnation).
  metrics_.gauge(obs::labeled("subsum_build_info", "version", SUBSUM_VERSION_STRING))->set(1);
  metrics_.gauge("subsum_uptime_seconds")->set(0);

  if (!cfg_.data_dir.empty()) {
    // Recovery runs to completion before the listener thread starts, so
    // no client or peer ever observes a half-recovered broker.
    store_ = std::make_unique<store::BrokerStore>(cfg_.data_dir, cfg_.schema, cfg_.policy, wire_);
    store_->set_metrics(metrics_.histogram("subsum_wal_fsync_us"),
                        metrics_.histogram("subsum_snapshot_us"),
                        stages_.hist(obs::Stage::kWalFsync));
    store::DurableState st = store_->open();
    epoch_ = st.epoch;
    next_local_ = st.next_local;
    recovery_.recovered = st.epoch > 1 || !st.subs.empty();
    recovery_.wal_torn = st.wal_torn;
    recovery_.snapshot_fell_back = st.snapshot_fell_back;
    recovery_.own_image_verified = st.own_image_verified;
    for (auto& os : st.subs) home_.add(std::move(os));
    if (st.held) held_ = std::move(*st.held);
    for (size_t i = 0; i < st.merged_brokers.size(); ++i) {
      const BrokerId b = st.merged_brokers[i];
      if (b >= cfg_.graph.size() || b == cfg_.id) continue;
      merged_brokers_.push_back(b);
      peer_epochs_.set(b, i < st.merged_epochs.size() ? st.merged_epochs[i] : 0);
    }
    std::sort(merged_brokers_.begin(), merged_brokers_.end());
    merged_brokers_.erase(std::unique(merged_brokers_.begin(), merged_brokers_.end()),
                          merged_brokers_.end());
    for (const auto& le : st.leases) {
      if (le.id.broker != cfg_.id || le.ttl == 0) continue;
      // Restart re-arms the full window: the owner gets one whole lease to
      // re-attach or renew against the new incarnation before expiry.
      leases_[le.id.local] = Lease{le.ttl, le.ttl};
    }
  }
  // Incarnation breadcrumbs: every dump opens with what this process knew
  // about its own birth, so a timeline stands alone without the log.
  flight_.record(obs::FrKind::kStart, 0, 0, epoch_);
  if (recovery_.wal_torn) flight_.record(obs::FrKind::kWalTruncateHeal);
  if (epoch_ > 0) flight_.record(obs::FrKind::kEpochBump, 0, 0, epoch_);
  if (log_.enabled(obs::LogLevel::kInfo)) {
    log_.log(obs::LogLevel::kInfo, "broker", "started", 0,
             {{"epoch", static_cast<int64_t>(epoch_)},
              {"recovered", recovery_.recovered ? 1 : 0},
              {"wal_torn", recovery_.wal_torn ? 1 : 0}});
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

BrokerNode::~BrokerNode() { stop(); }

std::string BrokerNode::flight_dump_path() const {
  if (!cfg_.flight_dump_path.empty()) return cfg_.flight_dump_path;
  if (!cfg_.data_dir.empty()) return cfg_.data_dir + "/flight.bin";
  return {};
}

void BrokerNode::set_peer_ports(std::vector<uint16_t> ports) {
  std::lock_guard lk(mu_);
  if (ports.size() != cfg_.graph.size()) {
    throw std::invalid_argument("one port per broker required");
  }
  peer_ports_ = std::move(ports);
}

void BrokerNode::stop() {
  if (stopping_.exchange(true)) return;
  {
    // The empty critical section orders the flag against waiters: any
    // retry sleep either saw stopping_ before waiting or is inside
    // wait_for and receives the notify. Shutdown time is thus bounded by
    // one RPC deadline, never a full backoff schedule.
    std::lock_guard sl(stop_mu_);
  }
  stop_cv_.notify_all();
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard lk(threads_mu_);
    handlers.swap(handlers_);
    // Unblock handler threads parked in recv_frame on live connections.
    for (auto& weak : conns_) {
      if (auto conn = weak.lock()) {
        std::lock_guard wl(conn->write_mu);
        if (conn->sock) conn->sock->shutdown_both();
      }
    }
    conns_.clear();
  }
  for (auto& t : handlers) {
    if (t.joinable()) t.join();
  }
  // The profiler is process-wide; only the node that armed it disarms it
  // (captured samples stay drainable for post-stop inspection) and dumps
  // the folded stacks beside the flight recorder's black box.
  if (profiler_started_) {
    auto& prof = obs::Profiler::instance();
    prof.stop();
    if (!cfg_.data_dir.empty()) {
      const std::string folded = prof.folded();
      if (!folded.empty()) {
        if (std::FILE* f = std::fopen((cfg_.data_dir + "/profile.folded").c_str(), "w")) {
          std::fwrite(folded.data(), 1, folded.size(), f);
          std::fclose(f);
        }
      }
    }
  }
  // Black-box persistence: the shutdown record itself lands in the dump,
  // so a post-mortem can tell clean stops from kills (no file at all) and
  // crashes (kFatalSignal via install_fatal_dump).
  flight_.record(obs::FrKind::kShutdown);
  if (const std::string path = flight_dump_path(); !path.empty()) {
    flight_.dump_to(path);
  }
  if (log_.enabled(obs::LogLevel::kInfo)) {
    log_.log(obs::LogLevel::kInfo, "broker", "stopped");
  }
}

BrokerNode::Snapshot BrokerNode::snapshot() const {
  std::lock_guard lk(mu_);
  Snapshot s;
  s.local_subs = home_.size();
  s.merged_brokers = merged_brokers_.size();
  s.held_wire_bytes = core::wire_size(held_, wire_);
  s.pending_redeliveries = pending_deliveries_.size();
  s.epoch = epoch_;
  s.active_leases = leases_.size();
  return s;
}

uint64_t BrokerNode::held_digest() const {
  std::lock_guard lk(mu_);
  return core::summary_digest(held_);
}

std::map<BrokerId, uint64_t> BrokerNode::shadow_digests() const {
  std::lock_guard lk(mu_);
  std::map<BrokerId, uint64_t> out;
  for (const auto& [b, sh] : shadows_) out[b] = sh.digest;
  return out;
}

std::vector<std::byte> BrokerNode::own_summary_wire() const {
  std::lock_guard lk(mu_);
  return core::encode_summary(
      core::BrokerSummary::rebuild(cfg_.schema, cfg_.policy, home_.subs()), wire_,
      /*epoch=*/0);
}

void BrokerNode::accept_loop() {
  obs::Profiler::register_thread(obs::ThreadRole::kAccept);
  while (!stopping_) {
    auto sock = listener_.accept();
    if (!sock) break;
    std::lock_guard lk(threads_mu_);
    if (stopping_) break;
    handlers_.emplace_back(
        [this, s = std::move(*sock)]() mutable { handle_connection(std::move(s)); });
  }
}

void BrokerNode::handle_connection(Socket sock) {
  obs::Profiler::register_thread(obs::ThreadRole::kConn);
  // Bounds EVERY outbound write on this connection (acks included): a
  // consumer that stalls a single write past the deadline is cut off,
  // because a mid-frame timeout leaves the stream unframeable anyway.
  // Always > 0 — the constructor clamps an unsupported 0 to the default.
  sock.set_send_timeout(cfg_.governor.write_stall_timeout);
  if (cfg_.governor.conn_sndbuf_bytes > 0) {
    try {
      sock.set_send_buffer(cfg_.governor.conn_sndbuf_bytes);
    } catch (const NetError&) {
      // Best-effort: an unclamped buffer only weakens backpressure.
    }
  }
  if (!governor_->try_acquire_connection()) {
    try {
      send_frame(sock, MsgKind::kError,
                 encode(ErrorMsg{ErrorMsg::kOverCapacity, governor_->retry_after_hint()}));
    } catch (const NetError&) {
      // Refusal is best-effort; the close itself is the message.
    }
    return;
  }
  struct ConnSlot {
    Governor* g;
    ~ConnSlot() { g->release_connection(); }
  } slot{governor_.get()};
  auto conn = std::make_shared<ClientConn>();
  conn->sock = &sock;
  {
    std::lock_guard lk(threads_mu_);
    std::erase_if(conns_, [](const std::weak_ptr<ClientConn>& w) { return w.expired(); });
    conns_.push_back(conn);
  }
  std::thread writer([this, conn] { writer_loop(conn); });
  std::vector<uint32_t> owned_locals;  // subscriptions registered on this conn
  try {
    while (true) {
      auto frame = recv_frame(sock);
      if (!frame) break;
      switch (frame->kind) {
        case MsgKind::kSubscribe:
          on_subscribe(sock, conn, *frame, owned_locals);
          break;
        case MsgKind::kAttach:
          on_attach(sock, conn, *frame, owned_locals);
          break;
        case MsgKind::kUnsubscribe:
          on_unsubscribe(sock, *conn, *frame);
          break;
        case MsgKind::kPublish:
          on_publish(sock, *conn, *frame);
          break;
        case MsgKind::kSummary:
          on_summary(sock, *conn, *frame);
          break;
        case MsgKind::kSummaryDelta:
          on_summary_delta(sock, *conn, *frame);
          break;
        case MsgKind::kSummarySync:
          on_summary_sync(sock, *conn, *frame);
          break;
        case MsgKind::kLeaseRenew:
          on_lease_renew(sock, *conn, *frame);
          break;
        case MsgKind::kEvent:
          on_event(sock, *conn, *frame);
          break;
        case MsgKind::kDeliver:
          on_deliver(sock, *conn, *frame);
          break;
        case MsgKind::kTrigger:
          on_trigger(sock, *conn, *frame);
          break;
        case MsgKind::kStats:
          on_stats(sock, *conn, *frame);
          break;
        case MsgKind::kTrace:
          on_trace(sock, *conn, *frame);
          break;
        case MsgKind::kDump:
          on_dump(sock, *conn, *frame);
          break;
        case MsgKind::kProfile:
          on_profile(sock, *conn, *frame);
          break;
        default:
          send_frame(sock, MsgKind::kError, {});
          break;
      }
    }
  } catch (const std::exception&) {
    // Connection-level failure: drop the connection; broker state stays
    // consistent because every handler completes its mutation under mu_
    // before touching the network.
  }
  {
    std::lock_guard lk(mu_);
    for (uint32_t local : owned_locals) subscribers_.erase(local);
  }
  {
    std::lock_guard qk(conn->q_mu);
    conn->writer_stop = true;
  }
  conn->q_cv.notify_all();
  if (writer.joinable()) writer.join();
  {
    // write_mu orders this against stop()'s shutdown_both on conn->sock.
    std::lock_guard wl(conn->write_mu);
    conn->sock = nullptr;
  }
}

void BrokerNode::enqueue_notify(const std::shared_ptr<ClientConn>& conn,
                                std::vector<std::byte> payload, uint64_t trace) {
  const auto& g = cfg_.governor;
  {
    std::lock_guard qk(conn->q_mu);
    if (conn->writer_stop) {
      // Consumer already cut off (slow-consumer disconnect or teardown)
      // but still racing in the subscriber map: the frame is dropped.
      governor_->count_shed(Governor::Shed::kNotify);
      return;
    }
    if (payload.size() > g.conn_queue_max_bytes) {
      // Cannot fit even into an empty queue: shed it outright.
      governor_->count_shed(Governor::Shed::kNotify);
      return;
    }
    // Drop-oldest: a consumer this far behind prefers fresh events over a
    // complete-but-stale backlog (and pub/sub makes no delivery promise to
    // a subscriber that stopped reading).
    size_t dropped_bytes = 0;
    uint32_t dropped_frames = 0;
    while (!conn->outq.empty() &&
           (conn->outq_bytes + payload.size() > g.conn_queue_max_bytes ||
            conn->outq.size() >= g.conn_queue_max_frames)) {
      dropped_bytes += conn->outq.front().payload.size();
      conn->outq_bytes -= conn->outq.front().payload.size();
      conn->outq.pop_front();
      ++dropped_frames;
      governor_->count_shed(Governor::Shed::kNotify);
    }
    if (dropped_bytes) {
      governor_->sub_usage(dropped_bytes);
      flight_.record(obs::FrKind::kDropOldest, dropped_frames, 0, dropped_bytes,
                     trace);
      if (log_.enabled(obs::LogLevel::kWarn)) {
        log_.log(obs::LogLevel::kWarn, "writer", "drop-oldest shed", trace,
                 {{"frames", dropped_frames},
                  {"bytes", static_cast<int64_t>(dropped_bytes)}});
      }
    }
    // Invariant: every frame in outq has already been added to the budget
    // before it became visible, so the matching sub_usage (writer pop,
    // drop-oldest above, or the drain on writer exit) can never run first
    // and wrap the unsigned usage counter.
    governor_->add_usage(payload.size());
    conn->outq_bytes += payload.size();
    conn->outq.push_back(QueuedFrame{std::move(payload), obs::now_us(), trace});
    governor_->observe_queue(conn->outq.size(), conn->outq_bytes);
  }
  conn->q_cv.notify_one();
}

void BrokerNode::writer_loop(std::shared_ptr<ClientConn> conn) {
  obs::Profiler::register_thread(obs::ThreadRole::kWriter);
  for (;;) {
    QueuedFrame qf;
    {
      std::unique_lock qk(conn->q_mu);
      conn->q_cv.wait(qk, [&] { return conn->writer_stop || !conn->outq.empty(); });
      if (conn->writer_stop) break;
      qf = std::move(conn->outq.front());
      conn->outq.pop_front();
      conn->outq_bytes -= qf.payload.size();
    }
    governor_->sub_usage(qf.payload.size());
    stages_.observe(obs::Stage::kOutboundQueue, obs::now_us() - qf.enqueued_us,
                    qf.trace);
    try {
      const uint64_t t0 = obs::now_us();
      std::lock_guard wl(conn->write_mu);
      if (!conn->sock) break;
      send_frame(*conn->sock, MsgKind::kNotify, qf.payload);
      stages_.observe(obs::Stage::kWriterFlush, obs::now_us() - t0, qf.trace);
    } catch (const NetError&) {
      // The send stalled past write_stall_timeout (or the socket died).
      // A timeout may have cut the frame mid-stream, so the connection is
      // unframeable: disconnect — the slow-consumer terminal policy. The
      // handler thread sees the shutdown and tears the connection down.
      governor_->count_slow_disconnect();
      ctr_slow_disconnect_->inc();
      size_t queued = 0;
      int fd = -1;
      {
        std::lock_guard qk(conn->q_mu);
        queued = conn->outq_bytes;
      }
      std::lock_guard wl(conn->write_mu);
      if (conn->sock) {
        fd = conn->sock->fd();
        conn->sock->shutdown_both();
      }
      flight_.record(obs::FrKind::kSlowConsumer, static_cast<uint32_t>(fd), 0,
                     queued, qf.trace);
      if (log_.enabled(obs::LogLevel::kWarn)) {
        log_.log(obs::LogLevel::kWarn, "writer", "slow consumer disconnected",
                 qf.trace, {{"fd", fd}, {"queued_bytes", static_cast<int64_t>(queued)}});
      }
      break;
    }
  }
  // Whatever never made it out leaves the global budget with the writer.
  size_t leftover = 0;
  {
    std::lock_guard qk(conn->q_mu);
    conn->writer_stop = true;  // late enqueues become no-ops
    for (const auto& p : conn->outq) leftover += p.payload.size();
    conn->outq.clear();
    conn->outq_bytes = 0;
  }
  if (leftover) governor_->sub_usage(leftover);
}

void BrokerNode::record_span(const obs::Span& sp) {
  if (governor_->shedding(Governor::Shed::kTrace)) {
    governor_->count_shed(Governor::Shed::kTrace);
    return;
  }
  trace_ring_.append(sp);
}

void BrokerNode::on_subscribe(Socket& s, const std::shared_ptr<ClientConn>& conn,
                              const Frame& f, std::vector<uint32_t>& owned_locals) {
  util::BufReader r(f.payload);
  auto sub = get_subscription(r, cfg_.schema);
  // Trailing v4 field: lease length in periods. Absent (v3 clients) means
  // the broker's default; an explicit 0 requests a permanent subscription.
  uint32_t lease = cfg_.default_lease_periods;
  if (!r.done()) lease = static_cast<uint32_t>(r.get_varint());
  SubId id;
  bool rejected = false;
  {
    std::lock_guard lk(mu_);
    if (next_local_ >= cfg_.max_subs_per_broker) {
      throw NetError("broker exceeded max outstanding subscriptions");
    }
    if (!governor_->admit_subscription(home_.size())) {
      rejected = true;
    } else {
        id = SubId{cfg_.id, next_local_++, sub.mask()};
      held_.add(sub, id);
      home_.add({id, std::move(sub)});
      subscribers_[id.local] = conn;
      if (lease > 0) leases_[id.local] = Lease{lease, lease};
      if (store_) {
        // Durable before acked: the client may treat the ack as a promise
        // that the subscription survives kill -9.
        store_->log_subscribe(home_.subs().back());
        if (lease > 0) store_->log_lease(id, lease);
        {
          obs::Profiler::ScopedRole fsync_role(obs::ThreadRole::kFsync);
          store_->commit();
          maybe_compact_locked();
        }
      }
    }
  }
  if (rejected) {
    // Governor capacity refusal: explicit kError with a retry-after hint
    // (the broker did NOT act), unlike the id-space exhaustion above which
    // is permanent and kills the connection.
    governor_->count_rejected_subscription();
    std::lock_guard wl(conn->write_mu);
    send_frame(s, MsgKind::kError,
               encode(ErrorMsg{ErrorMsg::kOverCapacity, governor_->retry_after_hint()}));
    return;
  }
  owned_locals.push_back(id.local);
  std::lock_guard wl(conn->write_mu);
  send_frame(s, MsgKind::kSubscribeAck, encode(SubscribeAckMsg{id}));
}

void BrokerNode::on_attach(Socket& s, const std::shared_ptr<ClientConn>& conn, const Frame& f,
                           std::vector<uint32_t>& owned_locals) {
  const auto msg = decode_attach_msg(f.payload);
  uint32_t bound = 0;
  {
    std::lock_guard lk(mu_);
    for (const SubId& id : msg.ids) {
      if (id.broker != cfg_.id) continue;
      const auto& subs = home_.subs();
      const bool known = std::any_of(subs.begin(), subs.end(),
                                     [&](const auto& os) { return os.id == id; });
      if (!known) continue;  // e.g. lost with a torn WAL tail: client must re-subscribe
      subscribers_[id.local] = conn;
      owned_locals.push_back(id.local);
      // A re-attach is a liveness signal from the owner: treat it as a
      // lease renewal so reconnecting clients never race expiry.
      if (auto lit = leases_.find(id.local); lit != leases_.end()) {
        lit->second.remaining = lit->second.ttl;
      }
      ++bound;
    }
  }
  std::lock_guard wl(conn->write_mu);
  send_frame(s, MsgKind::kAttachAck, encode(AttachAckMsg{bound}));
}

void BrokerNode::on_unsubscribe(Socket& s, ClientConn& conn, const Frame& f) {
  util::BufReader r(f.payload);
  const SubId id = get_sub_id(r);
  {
    std::lock_guard lk(mu_);
    home_.remove(id);
    held_.remove(id);
    subscribers_.erase(id.local);
    if (id.broker == cfg_.id) leases_.erase(id.local);
    pending_removals_.push_back(id);
    if (store_) {
      store_->log_unsubscribe(id);
      {
        obs::Profiler::ScopedRole fsync_role(obs::ThreadRole::kFsync);
        store_->commit();
        maybe_compact_locked();
      }
    }
  }
  std::lock_guard wl(conn.write_mu);
  send_frame(s, MsgKind::kUnsubscribeAck, {});
}

void BrokerNode::on_publish(Socket& s, ClientConn& conn, const Frame& f) {
  // Event ingress: everything to the ack folds into the e2e stage.
  const uint64_t t_in = obs::now_us();
  // Admission first, before any decode or walk work: under overload the
  // cheapest possible path is the rejection.
  const auto adm = governor_->admit_publish();
  const uint64_t t_admitted = obs::now_us();
  if (!adm.ok) {
    std::lock_guard wl(conn.write_mu);
    send_frame(s, MsgKind::kError,
               encode(ErrorMsg{adm.shed ? ErrorMsg::kShedding : ErrorMsg::kThrottled,
                               adm.retry_after_ms}));
    return;
  }
  util::BufReader r(f.payload);
  EventMsg msg;
  msg.origin = cfg_.id;
  msg.event = get_event(r, cfg_.schema);
  const uint64_t t_decoded = obs::now_us();
  msg.brocli = make_bitmap(cfg_.graph.size());
  {
    std::lock_guard lk(mu_);
    msg.seq = publish_seq_++;
  }
  // Mint the causal trace id here — the publish edge is the root of the
  // event's span tree — and hand it back in the ack (v3; v2 clients
  // ignore the payload).
  msg.trace = obs::mint_trace_id(cfg_.id, msg.seq, obs::now_us());
  const uint64_t trace = msg.trace;
  stages_.observe(obs::Stage::kAdmission, t_admitted - t_in, trace);
  stages_.observe(obs::Stage::kIngressDecode, t_decoded - t_admitted, trace);
  ctr_publishes_->inc();
  walk_metrics_.walks->inc();  // a walk is rooted at the publish edge
  walk_step(std::move(msg), f.payload.size());
  // Broker-observed e2e: publish ingress until the synchronous walk (all
  // deliveries included) finished. The exemplar makes a p99 spike here one
  // `subsum_stats --trace` away from its span chain.
  stages_.observe(obs::Stage::kE2e, obs::now_us() - t_in, trace);
  util::BufWriter w;
  w.put_u64(trace);
  std::lock_guard wl(conn.write_mu);
  send_frame(s, MsgKind::kPublishAck, w.bytes());
}

void BrokerNode::ingest_full_summary(SummaryMsg msg) {
  uint64_t image_epoch = 0;
  auto incoming = core::decode_summary(msg.summary, cfg_.schema, cfg_.policy,
                                       core::AacsMode::kExact, &image_epoch);
  std::lock_guard lk(mu_);
  // Anti-entropy by incarnation: an announcement stamped with an epoch
  // older than one already seen from that sender is a zombie of a
  // pre-crash incarnation — drop it wholesale.
  const auto from_check = peer_epochs_.observe(msg.from, image_epoch);
  if (from_check == routing::EpochCheck::kStale) {
    ctr_stale_->inc();
  } else {
    if (from_check == routing::EpochCheck::kNewer) {
      // The sender restarted: everything we hold on its behalf is from
      // the old incarnation. The image below carries its full current
      // state (sends are state-based), so discard-then-merge converges.
      held_.remove_broker(msg.from);
      ctr_superseded_->inc();
    }
    for (size_t i = 0; i < msg.merged_brokers.size(); ++i) {
      const BrokerId b = msg.merged_brokers[i];
      if (b == cfg_.id || b == msg.from) continue;
      const uint64_t e = i < msg.epochs.size() ? msg.epochs[i] : 0;
      if (peer_epochs_.observe(b, e) == routing::EpochCheck::kNewer) {
        // Transitive case: the sender aggregated b's post-restart
        // state, so our pre-restart rows for b are superseded too. (A
        // kStale entry is merged anyway: stale rows only cause spurious
        // deliveries, which the owner's exact re-filter rejects, and
        // they wash out at the next direct announcement from b.)
        held_.remove_broker(b);
        ctr_superseded_->inc();
      }
    }
    // Mirror the sender's announced image BEFORE the removal piggyback
    // touches it: the shadow is the base later deltas apply to and must
    // match the sender's last_sent copy bit for bit. v3 frames carry no
    // digest (0); computing it locally keeps them delta-upgradable if the
    // peer upgrades mid-flight.
    core::SummaryImage img = core::extract_image(incoming);
    const uint64_t digest = msg.digest ? msg.digest : core::image_digest(img);
    auto& sh = shadows_[msg.from];
    if (sh.digest != digest || sh.version != msg.version) shadows_changed_ = true;
    sh.image = std::move(img);
    sh.version = msg.version;
    sh.digest = digest;
    sh.idle_periods = 0;
    for (const SubId& id : msg.removals) incoming.remove(id);
    held_.merge(incoming);
    for (const SubId& id : msg.removals) held_.remove(id);
    std::vector<BrokerId> merged;
    std::sort(msg.merged_brokers.begin(), msg.merged_brokers.end());
    std::set_union(merged_brokers_.begin(), merged_brokers_.end(), msg.merged_brokers.begin(),
                   msg.merged_brokers.end(), std::back_inserter(merged));
    merged_brokers_ = std::move(merged);
    // The held image changed: refresh wire-vs-model drift and the
    // per-attribute row-occupancy distributions while it is current.
    core::export_model_drift(metrics_, held_, wire_);
    core::export_row_occupancy(metrics_, held_);
  }
  if (msg.from < communicated_.size()) communicated_[msg.from] = 1;
}

void BrokerNode::on_summary(Socket& s, ClientConn& conn, const Frame& f) {
  ingest_full_summary(decode_summary_msg(f.payload));
  std::lock_guard wl(conn.write_mu);
  send_frame(s, MsgKind::kSummaryAck, {});
}

void BrokerNode::on_summary_delta(Socket& s, ClientConn& conn, const Frame& f) {
  auto msg = decode_summary_delta_msg(f.payload);
  core::DeltaHeader hdr;
  const auto delta = core::decode_delta(msg.delta, cfg_.schema, &hdr);
  bool need_full = false;
  bool stale = false;
  {
    std::lock_guard lk(mu_);
    const auto from_check = peer_epochs_.observe(msg.from, hdr.epoch);
    if (from_check == routing::EpochCheck::kStale) {
      // Zombie incarnation: drop, but ack kApplied so the stale sender
      // does not spiral into repair loops against state it cannot own.
      ctr_stale_->inc();
      stale = true;
    } else {
      if (from_check == routing::EpochCheck::kNewer) {
        held_.remove_broker(msg.from);
        ctr_superseded_->inc();
        // A new incarnation deltas against a base this side cannot hold.
        shadows_.erase(msg.from);
      }
      for (size_t i = 0; i < msg.merged_brokers.size(); ++i) {
        const BrokerId b = msg.merged_brokers[i];
        if (b == cfg_.id || b == msg.from) continue;
        const uint64_t e = i < msg.epochs.size() ? msg.epochs[i] : 0;
        if (peer_epochs_.observe(b, e) == routing::EpochCheck::kNewer) {
          held_.remove_broker(b);
          ctr_superseded_->inc();
        }
      }
      auto it = shadows_.find(msg.from);
      if (it == shadows_.end() || it->second.version != hdr.base_version ||
          it->second.digest != hdr.base_digest) {
        // No shadow (first contact, restart) or a different base than the
        // diff assumes: only a full image can re-anchor this link.
        need_full = true;
      } else {
        PeerShadow& sh = it->second;
        core::apply_delta(sh.image, delta);
        const uint64_t got = core::image_digest(sh.image);
        if (got != hdr.new_digest) {
          // The edits did not land on the digest the sender stamped: the
          // link diverged. Leave the shadow as-is — the sync below
          // replaces it wholesale.
          ctr_digest_mismatch_->inc();
          need_full = true;
        } else {
          sh.version = hdr.new_version;
          sh.digest = got;
          sh.idle_periods = 0;
          if (!delta.empty()) shadows_changed_ = true;
          // Fold the delta into held_ incrementally: additions go through
          // row insertion now (matching must not miss them this period);
          // removals and dropped rows are deferred to the period-boundary
          // rebuild, which re-derives held_ from own rows + shadows.
          bool shrank = false;
          for (size_t a = 0; a < delta.arith.size(); ++a) {
            const auto attr = static_cast<model::AttrId>(a);
            for (const auto& e : delta.arith[a]) {
              if (e.drop || !e.del.empty()) shrank = true;
              if (!e.drop && !e.add.empty()) held_.insert_arith(attr, e.iv, e.add);
            }
          }
          for (size_t a = 0; a < delta.strings.size(); ++a) {
            const auto attr = static_cast<model::AttrId>(a);
            for (const auto& e : delta.strings[a]) {
              if (e.drop || !e.del.empty()) shrank = true;
              if (!e.drop && !e.add.empty()) held_.insert_string(attr, e.pattern, e.add);
            }
          }
          if (shrank) held_dirty_ = true;
          for (const SubId& id : msg.removals) held_.remove(id);
          std::vector<BrokerId> merged;
          std::sort(msg.merged_brokers.begin(), msg.merged_brokers.end());
          std::set_union(merged_brokers_.begin(), merged_brokers_.end(),
                         msg.merged_brokers.begin(), msg.merged_brokers.end(),
                         std::back_inserter(merged));
          merged_brokers_ = std::move(merged);
          core::export_model_drift(metrics_, held_, wire_);
          core::export_row_occupancy(metrics_, held_);
        }
      }
    }
    if (msg.from < communicated_.size()) communicated_[msg.from] = 1;
  }
  if (need_full && !stale) {
    // Pull the repair BEFORE acking: when the ack (kNeedFull) reaches the
    // sender, this side already converged — divergence never outlives the
    // period that detected it. No deadlock: the sender's sync handler
    // runs on its own connection thread and mu_ is never held across a
    // network call.
    try {
      sync_from_peer(msg.from);
    } catch (const PeerUnreachable&) {
      // Sender vanished mid-announcement; the shadow stays unanchored and
      // the next full (state-based resend) re-seeds it.
    }
  }
  SummaryDeltaAckMsg ack;
  ack.status = need_full ? SummaryDeltaAckMsg::kNeedFull : SummaryDeltaAckMsg::kApplied;
  std::lock_guard wl(conn.write_mu);
  send_frame(s, MsgKind::kSummaryDeltaAck, encode(ack));
}

void BrokerNode::on_summary_sync(Socket& s, ClientConn& conn, const Frame& f) {
  const auto req = decode_summary_sync_msg(f.payload);
  std::vector<std::byte> payload;
  {
    std::lock_guard lk(mu_);
    SummaryMsg msg;
    msg.from = cfg_.id;
    msg.merged_brokers = merged_brokers_;
    msg.epochs = merged_epochs_locked();
    // pending_removals_ stays queued: a sync is a repair pull, not this
    // period's announcement, and removals must reach every neighbor.
    msg.summary = core::encode_summary(held_, wire_, epoch_);
    msg.version = held_.version();
    core::SummaryImage img = core::extract_image(held_);
    msg.digest = core::image_digest(img);
    // The requester's shadow becomes exactly this image, so future deltas
    // to it must diff against it.
    if (req.from < cfg_.graph.size()) {
      last_sent_[req.from] = LastSent{std::move(img), msg.version, msg.digest, 0};
    }
    payload = encode(msg);
  }
  std::lock_guard wl(conn.write_mu);
  send_frame(s, MsgKind::kSummarySyncAck, payload);
}

void BrokerNode::sync_from_peer(BrokerId peer) {
  ctr_sync_requests_->inc();
  const auto payload = encode(SummarySyncMsg{cfg_.id});
  Frame ack = rpc_to_peer(peer, MsgKind::kSummarySync, payload, {MsgKind::kSummarySyncAck});
  ingest_full_summary(decode_summary_msg(ack.payload));
}

void BrokerNode::on_lease_renew(Socket& s, ClientConn& conn, const Frame& f) {
  const auto msg = decode_lease_renew_msg(f.payload);
  uint32_t renewed = 0;
  {
    std::lock_guard lk(mu_);
    for (const SubId& id : msg.ids) {
      if (id.broker != cfg_.id) continue;
      auto it = leases_.find(id.local);
      if (it == leases_.end()) continue;  // permanent or already expired
      it->second.remaining = it->second.ttl;
      ++renewed;
      if (store_) store_->log_lease(id, it->second.ttl);
    }
    if (store_ && renewed > 0) {
      {
        obs::Profiler::ScopedRole fsync_role(obs::ThreadRole::kFsync);
        store_->commit();
        maybe_compact_locked();
      }
    }
  }
  ctr_lease_renewals_->inc(renewed);
  std::lock_guard wl(conn.write_mu);
  send_frame(s, MsgKind::kLeaseRenewAck, encode(LeaseRenewAckMsg{renewed}));
}

void BrokerNode::begin_period() {
  std::lock_guard lk(mu_);
  flight_.record(obs::FrKind::kPeriodBegin, 0, 0, ++period_seq_);
  // 1. Subscription leases: every period costs one tick; a lease that hits
  // zero expires exactly like an unsubscribe (summary rows age out, the
  // removal piggybacks to neighbors, durable state forgets it).
  std::vector<SubId> expired;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (--it->second.remaining == 0) {
      const uint32_t local = it->first;
      it = leases_.erase(it);
      for (const auto& os : home_.subs()) {
        if (os.id.broker == cfg_.id && os.id.local == local) {
          expired.push_back(os.id);
          break;
        }
      }
    } else {
      ++it;
    }
  }
  for (const SubId& id : expired) {
    home_.remove(id);
    held_.remove(id);
    subscribers_.erase(id.local);
    pending_removals_.push_back(id);
    held_dirty_ = true;
    ctr_lease_expired_->inc();
    flight_.record(obs::FrKind::kLeaseExpired, id.local, id.broker);
    if (log_.enabled(obs::LogLevel::kInfo)) {
      log_.log(obs::LogLevel::kInfo, "lease", "subscription lease expired", 0,
               {{"local", id.local}, {"owner", id.broker}});
    }
    if (store_) store_->log_unsubscribe(id);
  }
  if (store_ && !expired.empty()) {
    {
      obs::Profiler::ScopedRole fsync_role(obs::ThreadRole::kFsync);
      store_->commit();
      maybe_compact_locked();
    }
  }
  // 2. Summary (shadow) leases: a peer that stopped announcing takes its
  // mirrored rows with it at the next rebuild.
  if (cfg_.summary_lease_periods > 0) {
    for (auto it = shadows_.begin(); it != shadows_.end();) {
      if (++it->second.idle_periods > cfg_.summary_lease_periods) {
        const BrokerId gone = it->first;
        it = shadows_.erase(it);
        std::erase(merged_brokers_, gone);
        held_dirty_ = true;
        ctr_shadow_expired_->inc();
      } else {
        ++it;
      }
    }
  }
  // 3. Rebuild held_ = own rows + surviving shadow images when anything
  // shrank (removals/drops are deferred to here) or a shadow changed.
  // Quiet periods leave both flags clear, so a converged overlay is a
  // fixed point — the convergence assertion the chaos suite keys on.
  if (held_dirty_ || shadows_changed_) {
    held_ = core::BrokerSummary::rebuild(cfg_.schema, cfg_.policy, home_.subs());
    for (const auto& [b, sh] : shadows_) core::merge_into_summary(sh.image, held_);
    held_dirty_ = false;
    shadows_changed_ = false;
    core::export_model_drift(metrics_, held_, wire_);
    core::export_row_occupancy(metrics_, held_);
  }
}

std::optional<BrokerNode::PendingSend> BrokerNode::prepare_summary_send(uint32_t iteration) {
  std::lock_guard lk(mu_);
  if (iteration == 1) {
    // A new period starts: reset per-period pairing state.
    std::fill(communicated_.begin(), communicated_.end(), 0);
  }
  const size_t my_degree = cfg_.graph.degree(cfg_.id);
  if (my_degree != iteration) return std::nullopt;

  std::optional<BrokerId> target;
  for (BrokerId nb : cfg_.graph.neighbors(cfg_.id)) {
    if (cfg_.graph.degree(nb) < my_degree) continue;
    if (communicated_[nb]) continue;
    if (!target || cfg_.graph.degree(nb) < cfg_.graph.degree(*target)) target = nb;
  }
  if (!target) return std::nullopt;
  communicated_[*target] = 1;

  PendingSend send;
  send.to = *target;
  send.removals = pending_removals_;
  pending_removals_.clear();
  send.image = core::extract_image(held_);
  send.version = held_.version();
  send.digest = core::image_digest(send.image);

  SummaryMsg full;
  full.from = cfg_.id;
  full.merged_brokers = merged_brokers_;
  full.epochs = merged_epochs_locked();
  full.removals = send.removals;
  full.summary = core::encode_summary(held_, wire_, epoch_);
  full.version = send.version;
  full.digest = send.digest;
  auto full_payload = encode(full);

  // Delta path: only against an acked base, never to a latched v3 peer,
  // and never past the periodic full-refresh backstop.
  const auto ls = last_sent_.find(*target);
  const bool refresh_due =
      cfg_.delta_full_refresh_every > 0 && ls != last_sent_.end() &&
      ls->second.sends_since_full + 1 >= cfg_.delta_full_refresh_every;
  if (cfg_.delta_announcements && ls != last_sent_.end() && !peer_wants_full_[*target] &&
      !refresh_due) {
    core::DeltaHeader hdr;
    hdr.epoch = epoch_;
    hdr.base_version = ls->second.version;
    hdr.new_version = send.version;
    hdr.base_digest = ls->second.digest;
    hdr.new_digest = send.digest;
    SummaryDeltaMsg dm;
    dm.from = cfg_.id;
    dm.merged_brokers = merged_brokers_;
    dm.epochs = full.epochs;
    dm.removals = send.removals;
    dm.delta = core::encode_delta(core::diff_images(ls->second.image, send.image),
                                  cfg_.schema, wire_, hdr);
    auto delta_payload = encode(dm);
    if (static_cast<double>(delta_payload.size()) <=
        cfg_.delta_max_ratio * static_cast<double>(full_payload.size())) {
      send.kind = MsgKind::kSummaryDelta;
      send.payload = std::move(delta_payload);
      return send;
    }
    // The change rate outgrew the diff: the full image is cheaper.
    ctr_delta_fallbacks_->inc();
  }
  send.kind = MsgKind::kSummary;
  send.payload = std::move(full_payload);
  return send;
}

void BrokerNode::record_last_sent_locked(PendingSend&& send, bool was_full) {
  LastSent& ls = last_sent_[send.to];
  const uint32_t streak = was_full ? 0 : ls.sends_since_full + 1;
  ls = LastSent{std::move(send.image), send.version, send.digest, streak};
}

std::vector<uint64_t> BrokerNode::merged_epochs_locked() const {
  std::vector<uint64_t> es;
  es.reserve(merged_brokers_.size());
  for (BrokerId b : merged_brokers_) {
    es.push_back(b == cfg_.id ? epoch_ : peer_epochs_.epoch_of(b));
  }
  return es;
}

void BrokerNode::maybe_compact_locked() {
  if (!store_ || store_->wal_records() < cfg_.snapshot_wal_threshold) return;
  store::BrokerStore::SnapshotInput in;
  in.next_local = next_local_;
  in.subs = &home_.subs();
  in.merged_brokers = merged_brokers_;
  in.merged_epochs = merged_epochs_locked();
  in.held = &held_;
  in.leases.reserve(leases_.size());
  for (const auto& [local, lease] : leases_) {
    for (const auto& os : home_.subs()) {
      if (os.id.broker == cfg_.id && os.id.local == local) {
        in.leases.push_back({os.id, lease.ttl, lease.remaining});
        break;
      }
    }
  }
  store_->write_snapshot(in);
  ctr_compactions_->inc();
}

void BrokerNode::on_trigger(Socket& s, ClientConn& conn, const Frame& f) {
  const auto msg = decode_trigger_msg(f.payload);
  if (msg.iteration == 1) {
    begin_period();
    flush_pending_deliveries();
    // Period boundaries re-measure attribution even without a scraper, so
    // the ladder reacts to summary/index growth within one period.
    refresh_memory_accounting();
  }
  auto send = prepare_summary_send(msg.iteration);
  if (send) {
    try {
      if (send->kind == MsgKind::kSummaryDelta) {
        Frame ack = rpc_to_peer(send->to, MsgKind::kSummaryDelta, send->payload,
                                {MsgKind::kSummaryDeltaAck, MsgKind::kError});
        if (ack.kind == MsgKind::kError) {
          // A v3 peer rejects the whole kSummaryDelta frame. Latch it and
          // resend this period's announcement as a full image — it must
          // carry the same removals, which the peer never saw. Re-encode
          // under the lock so the image recorded below is the one on the
          // wire even if held_ moved meanwhile.
          ctr_delta_fallbacks_->inc();
          std::vector<std::byte> full_payload;
          {
            std::lock_guard lk(mu_);
            peer_wants_full_[send->to] = 1;
            SummaryMsg full;
            full.from = cfg_.id;
            full.merged_brokers = merged_brokers_;
            full.epochs = merged_epochs_locked();
            full.removals = send->removals;
            full.summary = core::encode_summary(held_, wire_, epoch_);
            send->image = core::extract_image(held_);
            send->version = held_.version();
            send->digest = core::image_digest(send->image);
            full.version = send->version;
            full.digest = send->digest;
            full_payload = encode(full);
          }
          send_to_peer_sync(send->to, MsgKind::kSummary, full_payload, MsgKind::kSummaryAck);
          ctr_full_sends_->inc();
          ctr_full_bytes_->inc(full_payload.size());
          std::lock_guard lk(mu_);
          record_last_sent_locked(std::move(*send), /*was_full=*/true);
        } else {
          ctr_delta_sends_->inc();
          ctr_delta_bytes_->inc(send->payload.size());
          const auto st = decode_summary_delta_ack(ack.payload);
          if (st.status == SummaryDeltaAckMsg::kApplied) {
            std::lock_guard lk(mu_);
            record_last_sent_locked(std::move(*send), /*was_full=*/false);
          }
          // kNeedFull: the receiver already pulled a full image through
          // kSummarySync before acking, and on_summary_sync reset this
          // peer's last_sent to that image — nothing more to record.
        }
      } else {
        send_to_peer_sync(send->to, MsgKind::kSummary, send->payload, MsgKind::kSummaryAck);
        ctr_full_sends_->inc();
        ctr_full_bytes_->inc(send->payload.size());
        std::lock_guard lk(mu_);
        record_last_sent_locked(std::move(*send), /*was_full=*/true);
      }
    } catch (const PeerUnreachable&) {
      // Dead neighbor: the summary itself is not lost — the state-based
      // resend repeats every period — but the removal piggyback must
      // survive for a later period. Ack the trigger so the controller's
      // round continues for live brokers.
      std::lock_guard lk(mu_);
      pending_removals_.insert(pending_removals_.end(), send->removals.begin(),
                               send->removals.end());
    }
  }
  std::lock_guard wl(conn.write_mu);
  send_frame(s, MsgKind::kTriggerAck, {});
}

void BrokerNode::on_event(Socket& s, ClientConn& conn, const Frame& f) {
  const uint64_t t0 = obs::now_us();
  auto msg = decode_event_msg(f.payload, cfg_.schema);
  stages_.observe(obs::Stage::kIngressDecode, obs::now_us() - t0, msg.trace);
  walk_step(std::move(msg), f.payload.size());
  std::lock_guard wl(conn.write_mu);
  send_frame(s, MsgKind::kEventAck, {});
}

void BrokerNode::on_deliver(Socket& s, ClientConn& conn, const Frame& f) {
  const auto msg = decode_deliver_msg(f.payload, cfg_.schema);
  if (msg.trace) {
    // The owner-side deliver span: together with the sender's spans this
    // closes the publish -> deliver causal chain across brokers.
    record_span({msg.trace, cfg_.id, obs::Phase::kDeliver, msg.examined_at,
                 obs::now_us(), f.payload.size()});
  }
  // Exact re-filter against the home table, then notify the owning client
  // connections, grouped per connection.
  std::map<std::shared_ptr<ClientConn>, std::vector<SubId>> per_conn;
  {
    std::lock_guard lk(mu_);
    for (const SubId& id : msg.ids) {
      if (id.broker != cfg_.id) continue;
      for (const auto& os : home_.subs()) {
        if (os.id == id && os.sub.matches(msg.event)) {
          auto it = subscribers_.find(id.local);
          if (it != subscribers_.end()) per_conn[it->second].push_back(id);
          break;
        }
      }
    }
  }
  for (auto& [client, ids] : per_conn) {
    enqueue_notify(client, encode(NotifyMsg{std::move(ids), msg.event}, cfg_.schema),
                   msg.trace);
  }
  std::lock_guard wl(conn.write_mu);
  send_frame(s, MsgKind::kDeliverAck, {});
}

namespace {
/// Estimated resident bytes of one mirrored summary image (rows, id
/// vectors, pattern operands). An estimate, not an allocator audit.
uint64_t image_bytes(const core::SummaryImage& im) noexcept {
  uint64_t b = sizeof(im);
  for (const auto& rows : im.arith) {
    b += rows.capacity() * sizeof(core::SummaryImage::ArithRow);
    for (const auto& r : rows) b += r.ids.capacity() * sizeof(model::SubId);
  }
  for (const auto& rows : im.strings) {
    b += rows.capacity() * sizeof(core::SummaryImage::StringRow);
    for (const auto& r : rows) {
      b += r.ids.capacity() * sizeof(model::SubId) + r.pattern.operand.capacity();
    }
  }
  return b;
}
}  // namespace

void BrokerNode::refresh_memory_accounting() {
  using obs::MemComponent;
  uint64_t index_b = 0, held_b = 0, shadow_b = 0, wal_b = 0, snap_b = 0;
  uint64_t redeliver_b = 0;
  {
    std::lock_guard lk(mu_);
    held_b = core::wire_size(held_, wire_);
    if (const auto idx = held_.frozen_if_built()) index_b = idx->memory_bytes();
    for (const auto& [b, sh] : shadows_) shadow_b += image_bytes(sh.image);
    // The last_sent_ delta bases are full images this broker retains too.
    for (const auto& [b, ls] : last_sent_) shadow_b += image_bytes(ls.image);
    if (store_) {
      wal_b = store_->wal_bytes();
      snap_b = store_->last_snapshot_bytes();
    }
    for (const auto& pd : pending_deliveries_) redeliver_b += pd.payload.size();
  }
  memacct_.set(MemComponent::kIndexArenas, index_b);
  memacct_.set(MemComponent::kHeldSummary, held_b);
  memacct_.set(MemComponent::kShadowSummaries, shadow_b);
  memacct_.set(MemComponent::kWalBuffers, wal_b);
  memacct_.set(MemComponent::kSnapshotBuffers, snap_b);
  memacct_.set(MemComponent::kRedeliveryQueue, redeliver_b);
  memacct_.set(MemComponent::kOutboundQueues, governor_->usage());
  memacct_.set(MemComponent::kTraceRing,
               cfg_.trace_capacity * sizeof(obs::Span));
  memacct_.set(MemComponent::kFlightRing,
               flight_.capacity() * sizeof(obs::FrRecord));
  // Exemplar retention: the stage histograms plus the match histogram each
  // keep one small slot per bucket (estimated at 32 bytes/slot).
  memacct_.set(MemComponent::kExemplarSlots,
               (obs::kStageCount + 1) * (obs::Histogram::kBuckets + 1) * 32);
  memacct_.set(MemComponent::kProfilerRing, obs::Profiler::instance().ring_bytes());
  // Feed the degradation ladder everything its own outbound/redelivery
  // accounting does not already stream in (double-count free).
  governor_->set_external_bytes(memacct_.governor_external_bytes());
}

void BrokerNode::on_stats(Socket& s, ClientConn& conn, const Frame&) {
  // Refresh the level gauges from a consistent snapshot, then serve the
  // whole registry as Prometheus text (v3; the v2 varint triple is gone —
  // nothing ever parsed it). get-or-register is fine here: this is the
  // admin path, not a hot path.
  const Snapshot snap = snapshot();
  metrics_.gauge("subsum_local_subs")->set(static_cast<int64_t>(snap.local_subs));
  metrics_.gauge("subsum_merged_brokers")->set(static_cast<int64_t>(snap.merged_brokers));
  metrics_.gauge("subsum_held_wire_bytes")->set(static_cast<int64_t>(snap.held_wire_bytes));
  metrics_.gauge("subsum_epoch")->set(static_cast<int64_t>(snap.epoch));
  metrics_.gauge("subsum_active_leases")->set(static_cast<int64_t>(snap.active_leases));
  metrics_.gauge("subsum_summary_digest")->set(static_cast<int64_t>(held_digest()));
  gauge_redelivery_depth_->set(static_cast<int64_t>(snap.pending_redeliveries));
  metrics_.gauge("subsum_health_rung")->set(governor_->rung());
  metrics_.gauge("subsum_outbound_usage_bytes")
      ->set(static_cast<int64_t>(governor_->usage()));
  metrics_.gauge("subsum_outbound_peak_bytes")
      ->set(static_cast<int64_t>(governor_->peak_usage()));
  metrics_.gauge("subsum_governor_connections")
      ->set(static_cast<int64_t>(governor_->connections()));
  gauge_trace_dropped_->set(static_cast<int64_t>(trace_ring_.dropped()));
  metrics_.gauge("subsum_uptime_seconds")
      ->set(std::chrono::duration_cast<std::chrono::seconds>(std::chrono::steady_clock::now() -
                                                             started_at_)
                .count());
  {
    // Quality exports track subscribes too, not just merges, so a scrape
    // is always current.
    std::lock_guard lk(mu_);
    core::export_model_drift(metrics_, held_, wire_);
    core::export_row_occupancy(metrics_, held_);
    core::export_shard_metrics(metrics_, held_);
  }
  refresh_memory_accounting();
  procgauges_.refresh();
  {
    // Profiler mirrors: cumulative per-role sample counters, and duty
    // cycle as each role's CPU-seconds delta over the wall-clock delta
    // since the previous scrape (busy cores per role).
    auto& prof = obs::Profiler::instance();
    metrics_.gauge("subsum_profiler_running")->set(prof.running() ? 1 : 0);
    metrics_.gauge("subsum_profiler_samples")
        ->set(static_cast<int64_t>(prof.samples_total()));
    metrics_.gauge("subsum_profiler_dropped_samples")
        ->set(static_cast<int64_t>(prof.dropped_total()));
    double cpu[obs::kThreadRoleCount];
    prof.cpu_seconds(cpu);
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard sk(scrape_mu_);
    const double wall = std::chrono::duration<double>(now - last_duty_scrape_).count();
    for (size_t i = 0; i < obs::kThreadRoleCount; ++i) {
      const uint64_t n = prof.samples_for(static_cast<obs::ThreadRole>(i));
      if (n > last_cpu_samples_[i]) ctr_cpu_samples_[i]->inc(n - last_cpu_samples_[i]);
      last_cpu_samples_[i] = n;
      // Sub-50ms re-scrapes keep the previous reading: a duty cycle from a
      // near-zero wall delta is all noise.
      if (wall > 0.05) {
        gauge_duty_[i]->set((cpu[i] - last_cpu_sec_[i]) / wall);
        last_cpu_sec_[i] = cpu[i];
      }
    }
    if (wall > 0.05) last_duty_scrape_ = now;
  }
  const std::string text = metrics_.prometheus_text();
  std::lock_guard wl(conn.write_mu);
  send_frame(s, MsgKind::kStatsAck,
             std::span(reinterpret_cast<const std::byte*>(text.data()), text.size()));
}

void BrokerNode::on_trace(Socket& s, ClientConn& conn, const Frame& f) {
  const auto req = decode_trace_request(f.payload);
  TraceReplyMsg reply;
  reply.spans = req.trace ? trace_ring_.for_trace(req.trace) : trace_ring_.snapshot();
  if (req.max_spans && reply.spans.size() > req.max_spans) {
    reply.spans.erase(reply.spans.begin(), reply.spans.end() - req.max_spans);  // keep newest
  }
  const auto payload = encode(reply);
  std::lock_guard wl(conn.write_mu);
  send_frame(s, MsgKind::kTraceAck, payload);
}

void BrokerNode::on_dump(Socket& s, ClientConn& conn, const Frame&) {
  // Serve the ring as the dump file format, verbatim: the on-disk and
  // over-the-wire shapes are identical, so tools/subsum_blackbox reads
  // both. The request itself is recorded — a dump that shows its own
  // collection is self-dating.
  flight_.record(obs::FrKind::kDump);
  const auto bytes = flight_.serialize();
  if (const std::string path = flight_dump_path(); !path.empty()) {
    flight_.dump_to(path);  // best-effort: the RPC reply is the contract
  }
  std::lock_guard wl(conn.write_mu);
  send_frame(s, MsgKind::kDumpAck, bytes);
}

void BrokerNode::on_profile(Socket& s, ClientConn& conn, const Frame& f) {
  // Control plane, like kStats/kDump: never shed. The sampler is
  // process-wide, so on an in-process cluster any node's kProfile drives
  // the same instance; under -DSUBSUM_NO_TELEMETRY every action reports a
  // stopped profiler with empty folded stacks (wire format intact).
  const auto req = decode_profile_request(f.payload);
  auto& prof = obs::Profiler::instance();
  ProfileReplyMsg reply;
  switch (req.action) {
    case ProfileRequestMsg::kStart:
      prof.start(req.hz ? req.hz : obs::kDefaultProfileHz);
      break;
    case ProfileRequestMsg::kStop:
      prof.stop();
      break;
    case ProfileRequestMsg::kFetch:
      reply.folded = prof.folded();
      break;
    case ProfileRequestMsg::kStatus:
    default:
      break;
  }
  reply.running = prof.running() ? 1 : 0;
  reply.hz = prof.running() ? prof.hz() : 0;
  reply.samples = prof.samples_total();
  reply.dropped = prof.dropped_total();
  const auto payload = encode(reply);
  std::lock_guard wl(conn.write_mu);
  send_frame(s, MsgKind::kProfileAck, payload);
}

void BrokerNode::walk_step(EventMsg msg, size_t frame_bytes) {
  // Samples taken while this conn thread executes the walk attribute to
  // the walk role — the "is matching/forwarding the bottleneck" signal.
  obs::Profiler::ScopedRole walk_role(obs::ThreadRole::kWalk);
  const uint64_t trace = msg.trace;
  if (trace) {
    record_span({trace, cfg_.id, obs::Phase::kRecv, obs::Span::kNoPeer,
                 obs::now_us(), frame_bytes});
  }
  walk_metrics_.visits->inc();  // this broker examines the event
  // Snapshot what we need under the lock; all networking happens after.
  std::vector<SubId> matched;
  std::vector<BrokerId> merged;
  {
    std::lock_guard lk(mu_);
    const uint64_t t0 = obs::now_us();
    matched = core::match(held_, msg.event);
    const uint64_t dt = obs::now_us() - t0;
    hist_match_->observe_ex(dt, trace);
    stages_.observe(obs::Stage::kMatch, dt, trace);
    merged = merged_brokers_;
    // Shadow-sampled quality probe: a broker can verify exactly only its
    // OWN subscriptions (the home table is the oracle; summaries never
    // lose matches, so exact ⊆ summary-local). Sampled events also get a
    // match_into-vs-match_reference differential run on the held summary.
    if (probe_.should_sample(msg.event)) {
      if (governor_->shedding(Governor::Shed::kProbe)) {
        // Rung 1: the shadow sample (an extra exact match + reference
        // run) is the first thing to go under pressure.
        governor_->count_shed(Governor::Shed::kProbe);
      } else {
        const size_t local_candidates = static_cast<size_t>(std::count_if(
            matched.begin(), matched.end(),
            [this](const SubId& id) { return id.broker == cfg_.id; }));
        const size_t local_exact = home_.match(msg.event).size();
        const bool diverged = core::match_reference(held_, msg.event) != matched;
        probe_.record(local_candidates, local_exact, diverged);
      }
    }
  }
  if (trace) {
    // bytes carries the matched-id count for match spans (there is no
    // frame to account).
    record_span({trace, cfg_.id, obs::Phase::kMatch, obs::Span::kNoPeer,
                 obs::now_us(), matched.size()});
  }

  // Owners already in the incoming BROCLI were handled upstream.
  std::map<BrokerId, std::vector<SubId>> fresh;
  for (const SubId& id : matched) {
    if (!bitmap_get(msg.brocli, id.broker)) fresh[id.broker].push_back(id);
  }
  for (BrokerId b : merged) bitmap_set(msg.brocli, b);

  for (auto& [owner, ids] : fresh) {
    const size_t id_count = ids.size();
    const DeliverMsg dm{cfg_.id, std::move(ids), msg.event, trace};
    if (owner == cfg_.id) {
      // Local delivery without a network hop: reuse the deliver path
      // in-process.
      std::map<std::shared_ptr<ClientConn>, std::vector<SubId>> per_conn;
      {
        std::lock_guard lk(mu_);
        for (const SubId& id : dm.ids) {
          for (const auto& os : home_.subs()) {
            if (os.id == id && os.sub.matches(dm.event)) {
              auto it = subscribers_.find(id.local);
              if (it != subscribers_.end()) per_conn[it->second].push_back(id);
              break;
            }
          }
        }
      }
      for (auto& [client, cids] : per_conn) {
        enqueue_notify(client, encode(NotifyMsg{std::move(cids), dm.event}, cfg_.schema),
                       trace);
      }
      if (trace) {
        record_span({trace, cfg_.id, obs::Phase::kDeliver, cfg_.id,
                     obs::now_us(), id_count});
      }
    } else {
      auto payload = encode(dm, cfg_.schema);
      const uint64_t frame_size = payload.size();
      try {
        send_to_peer_sync(owner, MsgKind::kDeliver, payload, MsgKind::kDeliverAck, {}, trace);
        walk_metrics_.delivery_hops->inc();
        if (trace) {
          record_span({trace, cfg_.id, obs::Phase::kDeliver, owner,
                       obs::now_us(), frame_size});
        }
      } catch (const PeerUnreachable&) {
        // The owner is down: keep the delivery for the redelivery pass so
        // a restarted broker (whose client re-attached) still hears it.
        walk_metrics_.undeliverable->inc();
        queue_redelivery(PendingDelivery{owner, std::move(payload), cfg_.redelivery_ttl, trace});
      }
    }
  }

  // Forward to the highest-degree broker not yet in BROCLI. A hop that
  // stays unreachable after the retry budget is marked examined (its
  // subscribers are unreachable too) and the walk degrades to the
  // next-highest-degree live broker, so one dead broker cannot stall a
  // publish or strand the remaining subscribers.
  while (!bitmap_all(msg.brocli, cfg_.graph.size())) {
    std::optional<BrokerId> next;
    size_t remaining = 0;
    for (BrokerId b = 0; b < cfg_.graph.size(); ++b) {
      if (bitmap_get(msg.brocli, b)) continue;
      ++remaining;
      if (!next || cfg_.graph.degree(b) > cfg_.graph.degree(*next)) next = b;
    }
    // The peer acks kEvent only after finishing its own downstream walk,
    // so the ack deadline scales with the work left, not one io_timeout.
    const auto ack_budget = cfg_.rpc.io_timeout * static_cast<int>(remaining + 1);
    const auto payload = encode(msg, cfg_.schema);
    try {
      send_to_peer_sync(*next, MsgKind::kEvent, payload, MsgKind::kEventAck, ack_budget, trace);
      walk_metrics_.forward_hops->inc();
      if (trace) {
        record_span({trace, cfg_.id, obs::Phase::kForward, *next,
                     obs::now_us(), payload.size()});
      }
      return;
    } catch (const PeerUnreachable&) {
      // Unexamined re-select: the hop is marked in BROCLI without its
      // subscriptions having been examined, and the walk degrades.
      walk_metrics_.reselects->inc();
      bitmap_set(msg.brocli, *next);
    }
  }
}

void BrokerNode::queue_redelivery(PendingDelivery pd) {
  if (governor_->shedding(Governor::Shed::kRedelivery)) {
    // Rung 3: redeliveries are best-effort (TTL-bounded) by contract, so
    // under pressure new ones are dropped before touching the queue.
    governor_->count_shed(Governor::Shed::kRedelivery);
    return;
  }
  governor_->add_usage(pd.payload.size());
  std::lock_guard lk(mu_);
  if (pending_deliveries_.size() >= kMaxPendingDeliveries) {
    governor_->sub_usage(pending_deliveries_.front().payload.size());
    pending_deliveries_.pop_front();
    ctr_drop_overflow_->inc();
  }
  pending_deliveries_.push_back(std::move(pd));
  gauge_redelivery_depth_->set(static_cast<int64_t>(pending_deliveries_.size()));
}

void BrokerNode::flush_pending_deliveries() {
  std::deque<PendingDelivery> work;
  {
    std::lock_guard lk(mu_);
    work.swap(pending_deliveries_);
    gauge_redelivery_depth_->set(0);
  }
  if (work.empty()) return;
  // The swapped-out batch leaves the budget; survivors re-enter through
  // queue_redelivery below.
  size_t batch_bytes = 0;
  for (const auto& pd : work) batch_bytes += pd.payload.size();
  governor_->sub_usage(batch_bytes);
  std::vector<char> down(cfg_.graph.size(), 0);  // short-circuit per owner
  for (auto& pd : work) {
    if (!down[pd.owner]) {
      if (pd.trace) {
        record_span({pd.trace, cfg_.id, obs::Phase::kRedeliver, pd.owner,
                     obs::now_us(), pd.payload.size()});
      }
      try {
        send_to_peer_sync(pd.owner, MsgKind::kDeliver, pd.payload, MsgKind::kDeliverAck, {},
                          pd.trace);
        continue;
      } catch (const PeerUnreachable&) {
        down[pd.owner] = 1;
      }
    }
    if (--pd.ttl > 0) {
      queue_redelivery(std::move(pd));
    } else {
      // The at-most-once bound kicked in: record it so operators (and the
      // fault suite) can see deliveries aged out rather than vanishing.
      ctr_drop_ttl_->inc();
    }
  }
}

void BrokerNode::send_to_peer_sync(BrokerId peer, MsgKind kind,
                                   std::span<const std::byte> payload, MsgKind ack_kind,
                                   std::optional<std::chrono::milliseconds> ack_timeout,
                                   uint64_t trace) {
  rpc_to_peer(peer, kind, payload, {ack_kind}, ack_timeout, trace);
}

Frame BrokerNode::rpc_to_peer(BrokerId peer, MsgKind kind,
                              std::span<const std::byte> payload,
                              std::initializer_list<MsgKind> acceptable_acks,
                              std::optional<std::chrono::milliseconds> ack_timeout,
                              uint64_t trace) {
  uint16_t port;
  {
    std::lock_guard lk(mu_);
    if (peer_ports_.size() != cfg_.graph.size()) throw NetError("peer ports not configured");
    port = peer_ports_.at(peer);
  }
  // Circuit-break only the latency-sensitive data plane (walk forwards and
  // deliveries): a fast PeerUnreachable lets the walk re-select around a
  // sick peer without burning its RPC deadline. Control-plane sends
  // (summaries, deltas, anti-entropy) keep probing every period — their
  // cadence IS the period clock, and their success is what closes the
  // breaker early; this is the breaker-shaped face of "control traffic is
  // never shed".
  const bool data_plane = kind == MsgKind::kEvent || kind == MsgKind::kDeliver;
  if (data_plane && !governor_->breaker_allow(peer)) {
    throw PeerUnreachable(peer, "broker " + std::to_string(peer) +
                                    " skipped: circuit breaker open");
  }
  util::Backoff backoff(cfg_.rpc.backoff,
                        (uint64_t{cfg_.id} << 32) ^ rpc_seq_.fetch_add(1));
  for (;;) {
    try {
      const uint64_t t0 = obs::now_us();
      Socket s = connect_local(port, cfg_.rpc.connect_timeout);
      s.set_send_timeout(cfg_.rpc.io_timeout);
      s.set_recv_timeout(ack_timeout.value_or(cfg_.rpc.io_timeout));
      send_frame(s, kind, payload);
      auto ack = recv_frame(s);
      if (!ack || std::find(acceptable_acks.begin(), acceptable_acks.end(), ack->kind) ==
                      acceptable_acks.end()) {
        throw NetError("peer did not acknowledge message");
      }
      const uint64_t dt = obs::now_us() - t0;
      hist_peer_rpc_[peer]->observe(dt);
      if (data_plane) stages_.observe(obs::Stage::kRouteHop, dt, trace);
      governor_->breaker_success(peer);
      return std::move(*ack);
    } catch (const NetError& e) {
      // Counted per failed attempt, whether or not budget remains; the
      // blackholed-link tests key off exactly this per-peer signal.
      ctr_peer_retries_[peer]->inc();
      if (trace) {
        record_span({trace, cfg_.id, obs::Phase::kRetry, peer,
                     obs::now_us(), payload.size()});
      }
      std::optional<std::chrono::milliseconds> delay;
      if (!stopping_) delay = backoff.next_delay();
      if (!delay) {
        // Terminal: only exhausted-budget failures feed the breaker, so
        // one flaky attempt never trips it — N whole RPCs must fail.
        governor_->breaker_failure(peer);
        throw PeerUnreachable(peer, "broker " + std::to_string(peer) +
                                        " unreachable: " + e.what());
      }
      // Interruptible: stop() notifies, so shutdown never waits out a
      // backoff schedule.
      std::unique_lock sl(stop_mu_);
      stop_cv_.wait_for(sl, *delay, [this] { return stopping_.load(); });
    }
  }
}

}  // namespace subsum::net
