// Client-side API: connect to a broker, subscribe/publish synchronously,
// and receive notifications. A background reader thread demultiplexes the
// connection: RPC replies complete the pending call; kNotify frames are
// queued for next_notification()/drain_notifications().
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include "model/event.h"
#include "model/subscription.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace subsum::net {

class Client {
 public:
  /// Connects to a broker on 127.0.0.1:port. The schema must match the
  /// broker's.
  Client(uint16_t port, const model::Schema& schema);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Registers a subscription; blocks for the broker's ack.
  model::SubId subscribe(const model::Subscription& sub);

  /// Removes a subscription; blocks for the ack.
  void unsubscribe(model::SubId id);

  /// Publishes an event; returns after the full distributed walk (and all
  /// deliveries) completed.
  void publish(const model::Event& event);

  /// Next queued notification, waiting up to `timeout`.
  std::optional<NotifyMsg> next_notification(std::chrono::milliseconds timeout);

  /// All currently queued notifications (non-blocking).
  std::vector<NotifyMsg> drain_notifications();

  void close();

 private:
  Frame rpc(MsgKind kind, std::span<const std::byte> payload, MsgKind expected_ack);
  void reader_loop();

  const model::Schema* schema_;
  Socket sock_;
  std::thread reader_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;        // connection unusable (EOF, error, or close())
  bool close_called_ = false;  // close() ran; guards the reader join
  bool rpc_in_flight_ = false;
  std::optional<Frame> reply_;
  std::deque<NotifyMsg> notifications_;
};

}  // namespace subsum::net
