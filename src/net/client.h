// Client-side API: connect to a broker, subscribe/publish synchronously,
// and receive notifications. A background reader thread demultiplexes the
// connection: RPC replies complete the pending call; kNotify frames are
// queued for next_notification()/drain_notifications().
//
// Fault tolerance: connects and RPC round-trips run under ClientOptions
// deadlines. When an RPC finds the connection already dead (broker
// restarted), it transparently reconnects with backoff BEFORE sending —
// a failure after the request was sent is never retried (the broker may
// have acted on it), it surfaces as NetError/NetTimeout.
//
// Session resumption: the client remembers the SubIds it owns and, on
// every reconnect, re-binds them to the new connection with a kAttach
// handshake. Against a crash-recovered broker (one with a data dir) the
// old subscriptions keep notifying this client without any re-subscribe;
// a broker that lost them (ephemeral restart) simply binds none, and the
// caller re-subscribes as before.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include "model/event.h"
#include "model/subscription.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "util/backoff.h"

namespace subsum::net {

struct ClientOptions {
  std::chrono::milliseconds connect_timeout{1000};
  /// Deadline for one RPC round-trip. publish() spans the broker's whole
  /// BROCLI walk, so this must cover the broker-side walk budget.
  /// Zero waits forever.
  std::chrono::milliseconds rpc_timeout{30000};
  /// Reconnect (with backoff) when an RPC finds the connection dead.
  bool auto_reconnect = true;
  util::BackoffPolicy backoff{std::chrono::milliseconds{20},
                              std::chrono::milliseconds{500}, 3};
  /// Ceiling on any server retry-after hint this client will honor. A
  /// shedding broker's hint raises the backoff delay to at least the hint
  /// (util::Backoff::next_delay(floor)), clamped here so a bogus hint
  /// cannot park the client forever.
  std::chrono::milliseconds retry_after_ceiling{5000};
};

/// An RPC was explicitly rejected by broker admission control (a kError
/// reply with a non-generic ErrorMsg code) and the client's retry budget is
/// spent. The broker did NOT act on the request.
class Throttled : public NetError {
 public:
  Throttled(uint8_t code, uint32_t retry_after_ms, const std::string& what)
      : NetError(what), code_(code), retry_after_ms_(retry_after_ms) {}
  [[nodiscard]] uint8_t code() const noexcept { return code_; }
  [[nodiscard]] uint32_t retry_after_ms() const noexcept { return retry_after_ms_; }

 private:
  uint8_t code_;
  uint32_t retry_after_ms_;
};

class Client {
 public:
  /// Connects to a broker on 127.0.0.1:port. The schema must match the
  /// broker's.
  Client(uint16_t port, const model::Schema& schema, ClientOptions opts = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Registers a subscription; blocks for the broker's ack.
  model::SubId subscribe(const model::Subscription& sub);

  /// Registers a subscription with an explicit soft-state lease (v4):
  /// unless renewed (renew_leases) or re-attached within `lease_periods`
  /// propagation periods, the broker expires it like an unsubscribe.
  /// An explicit 0 pins it permanent even against a broker that defaults
  /// new subscriptions to leased.
  model::SubId subscribe(const model::Subscription& sub, uint32_t lease_periods);

  /// Resets the lease window on the given owned subscriptions (or, with no
  /// argument, on everything this client owns). Returns how many ids had a
  /// live lease to refresh; permanent subscriptions never count.
  uint32_t renew_leases(const std::vector<model::SubId>& ids);
  uint32_t renew_leases();

  /// Removes a subscription; blocks for the ack.
  void unsubscribe(model::SubId id);

  /// Publishes an event; returns after the full distributed walk (and all
  /// deliveries) completed. The returned value is the trace id the broker
  /// minted for the event (PROTOCOL v3) — feed it to fetch_trace() to pull
  /// the event's span log; 0 against a v2 broker.
  uint64_t publish(const model::Event& event);

  /// Scrapes the broker's metrics registry: Prometheus text exposition.
  std::string stats_text();

  /// Fetches spans from the broker's trace ring. trace 0 = all retained
  /// spans; max_spans 0 = uncapped, otherwise the newest N.
  std::vector<obs::Span> fetch_trace(uint64_t trace = 0, uint32_t max_spans = 0);

  /// Pulls the broker's flight-recorder dump (kDump). The bytes are the
  /// dump FILE format verbatim — feed them to obs::decode_dump() or write
  /// them to disk for tools/subsum_blackbox.
  std::vector<std::byte> flight_dump();

  /// Next queued notification, waiting up to `timeout`. Returns nullopt on
  /// a genuine timeout. Once the connection is closed and the queue is
  /// drained, makes one reconnect (+ attach) attempt when auto_reconnect
  /// is on; a failed attempt — or auto_reconnect off — throws NetError (so
  /// pollers cannot spin on a dead connection).
  std::optional<NotifyMsg> next_notification(std::chrono::milliseconds timeout);

  /// Subscription ids currently owned by this client (subscribed minus
  /// unsubscribed); these are re-attached on reconnect.
  [[nodiscard]] std::vector<model::SubId> owned_subscriptions() const;

  /// All currently queued notifications (non-blocking).
  std::vector<NotifyMsg> drain_notifications();

  /// Whether the connection is currently usable.
  [[nodiscard]] bool connected() const;

  void close();

 private:
  Frame rpc(MsgKind kind, std::span<const std::byte> payload, MsgKind expected_ack);
  /// One send/await-reply round, reconnecting first if the connection is
  /// dead (paced by the persistent reconnect backoff; budgeted per rpc()
  /// call via `reconnect_failures`). Returns whatever frame replied.
  Frame rpc_attempt(MsgKind kind, std::span<const std::byte> payload,
                    int& reconnect_failures);
  void reader_loop();
  /// Re-establishes the connection if it is dead; single attempt, throws
  /// NetError on failure. No-op when the connection is healthy.
  void reconnect();
  void mark_dead();

  const model::Schema* schema_;
  uint16_t port_;
  ClientOptions opts_;
  Socket sock_;
  std::thread reader_;
  std::mutex lifecycle_mu_;  // serializes close() and reconnect()

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;        // connection unusable (EOF, error, or close())
  bool close_called_ = false;  // close() ran; reconnects refused
  bool rpc_in_flight_ = false;
  std::optional<Frame> reply_;
  std::deque<NotifyMsg> notifications_;
  std::vector<model::SubId> owned_;  // re-attached on reconnect
  uint64_t rpc_seq_ = 0;  // jitter seed stream for throttle-retry backoff

  /// Reconnect pacing persists ACROSS rpc calls (reset only on a successful
  /// reconnect), so a poller retrying against a dead broker climbs to the
  /// policy cap instead of restarting from base each call — the reconnect-
  /// storm fix. The per-call retry BUDGET still comes from
  /// opts_.backoff.max_attempts; this object only supplies delays.
  std::mutex backoff_mu_;
  util::Backoff reconnect_backoff_;
};

}  // namespace subsum::net
