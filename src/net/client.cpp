#include "net/client.h"

#include <limits>
#include <random>

namespace subsum::net {

namespace {

// Seeding from the port alone would hand every client of one broker the
// same decorrelated-jitter schedule — a fleet reconnecting in lockstep is
// exactly the retry storm the backoff exists to avoid. Mix per-process and
// per-instance entropy in so schedules decorrelate across clients.
uint64_t backoff_seed(const void* self, uint16_t port) {
  return (static_cast<uint64_t>(std::random_device{}()) << 32) ^
         reinterpret_cast<uintptr_t>(self) ^ port;
}

}  // namespace

Client::Client(uint16_t port, const model::Schema& schema, ClientOptions opts)
    : schema_(&schema),
      port_(port),
      opts_(opts),
      sock_(connect_local(port, opts_.connect_timeout)),
      reconnect_backoff_(
          util::BackoffPolicy{opts.backoff.base, opts.backoff.cap,
                              std::numeric_limits<int>::max()},
          backoff_seed(this, port)) {
  if (opts_.rpc_timeout.count() > 0) sock_.set_send_timeout(opts_.rpc_timeout);
  reader_ = std::thread([this] { reader_loop(); });
}

Client::~Client() { close(); }

void Client::close() {
  std::lock_guard lc(lifecycle_mu_);
  {
    std::lock_guard lk(mu_);
    if (close_called_) return;
    close_called_ = true;
    closed_ = true;
  }
  sock_.shutdown_both();
  if (reader_.joinable()) reader_.join();
  cv_.notify_all();
}

bool Client::connected() const {
  std::lock_guard lk(mu_);
  return !closed_;
}

void Client::mark_dead() {
  {
    std::lock_guard lk(mu_);
    closed_ = true;
  }
  sock_.shutdown_both();
  cv_.notify_all();
}

void Client::reconnect() {
  std::lock_guard lc(lifecycle_mu_);
  {
    std::lock_guard lk(mu_);
    if (close_called_) throw NetError("client connection closed");
    if (!closed_) return;  // someone else already reconnected
  }
  // The old reader observed closed_ (EOF or our shutdown) and is exiting.
  if (reader_.joinable()) reader_.join();
  Socket fresh = connect_local(port_, opts_.connect_timeout);
  if (opts_.rpc_timeout.count() > 0) fresh.set_send_timeout(opts_.rpc_timeout);
  std::vector<model::SubId> owned;
  {
    std::lock_guard lk(mu_);
    owned = owned_;
  }
  if (!owned.empty()) {
    // Re-bind our subscriptions inline, before the reader thread owns the
    // socket (no demux needed): a crash-recovered broker then notifies
    // this connection without any re-subscribe. A broker that lost them
    // binds none; either way the handshake must complete.
    fresh.set_recv_timeout(opts_.rpc_timeout.count() > 0 ? opts_.rpc_timeout
                                                         : opts_.connect_timeout);
    send_frame(fresh, MsgKind::kAttach, encode(AttachMsg{std::move(owned)}));
    const auto ack = recv_frame(fresh);
    if (!ack || ack->kind != MsgKind::kAttachAck) throw NetError("attach not acknowledged");
    fresh.set_recv_timeout(std::chrono::milliseconds{0});  // reader blocks again
  }
  {
    std::lock_guard lk(mu_);
    sock_ = std::move(fresh);
    closed_ = false;
    reply_.reset();
  }
  {
    // Back in contact: the next outage starts its pacing from base again.
    std::lock_guard bk(backoff_mu_);
    reconnect_backoff_.reset();
  }
  reader_ = std::thread([this] { reader_loop(); });
}

void Client::reader_loop() {
  try {
    while (true) {
      auto frame = recv_frame(sock_);
      if (!frame) break;
      std::lock_guard lk(mu_);
      if (frame->kind == MsgKind::kNotify) {
        notifications_.push_back(decode_notify_msg(frame->payload, *schema_));
      } else {
        reply_ = std::move(*frame);
      }
      cv_.notify_all();
    }
  } catch (const std::exception&) {
    // Fall through to mark the connection dead.
  }
  std::lock_guard lk(mu_);
  closed_ = true;
  cv_.notify_all();
}

Frame Client::rpc(MsgKind kind, std::span<const std::byte> payload, MsgKind expected_ack) {
  uint64_t seq;
  {
    std::lock_guard lk(mu_);
    seq = rpc_seq_++;
  }
  util::Backoff throttle_backoff(opts_.backoff, port_ ^ (seq << 16));
  int reconnect_failures = 0;
  for (;;) {
    Frame f = rpc_attempt(kind, payload, reconnect_failures);
    if (f.kind == expected_ack) return f;
    if (f.kind != MsgKind::kError) throw NetError("unexpected reply kind");
    const ErrorMsg err = decode_error_msg(f.payload);
    if (err.code == ErrorMsg::kGeneric || expected_ack == MsgKind::kError) {
      throw NetError("broker rejected request");
    }
    // Admission rejection: the broker explicitly did NOT act, so retrying
    // is safe — and the retry-after hint raises the backoff floor, so a
    // fleet of rejected clients drains back in at the broker's pace
    // instead of hammering it.
    const auto hint = std::min(std::chrono::milliseconds(err.retry_after_ms),
                               opts_.retry_after_ceiling);
    const auto delay = throttle_backoff.next_delay(hint);
    if (!delay) {
      throw Throttled(err.code, err.retry_after_ms,
                      "broker admission control rejected request (code " +
                          std::to_string(err.code) + ", retry after " +
                          std::to_string(err.retry_after_ms) + "ms)");
    }
    std::this_thread::sleep_for(*delay);
  }
}

Frame Client::rpc_attempt(MsgKind kind, std::span<const std::byte> payload,
                          int& reconnect_failures) {
  for (;;) {
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return !rpc_in_flight_; });
      if (!closed_) {
        rpc_in_flight_ = true;
        reply_.reset();
        break;
      }
      if (close_called_ || !opts_.auto_reconnect) {
        throw NetError("client connection closed");
      }
    }
    // Dead but reconnectable: nothing has been sent yet, so retrying is
    // safe. The delay sequence persists across rpc calls (reconnect-storm
    // fix); the attempt budget is per call.
    try {
      reconnect();
    } catch (const NetError&) {
      if (++reconnect_failures >= opts_.backoff.max_attempts) throw;
      std::chrono::milliseconds delay;
      {
        std::lock_guard bk(backoff_mu_);
        delay = reconnect_backoff_.next_delay().value_or(opts_.backoff.cap);
      }
      std::this_thread::sleep_for(delay);
    }
  }

  struct InFlightGuard {
    Client* c;
    ~InFlightGuard() {
      std::lock_guard lk(c->mu_);
      c->rpc_in_flight_ = false;
      c->cv_.notify_all();
    }
  } guard{this};

  try {
    send_frame(sock_, kind, payload);
  } catch (const NetError&) {
    mark_dead();
    throw;
  }

  std::unique_lock lk(mu_);
  const auto ready = [this] { return reply_.has_value() || closed_; };
  if (opts_.rpc_timeout.count() > 0) {
    if (!cv_.wait_for(lk, opts_.rpc_timeout, ready)) {
      lk.unlock();
      // The request may have been acted on; the reply is lost. Kill the
      // connection (the demux has an orphan reply pending) and surface it.
      mark_dead();
      throw NetTimeout("rpc timed out awaiting reply");
    }
  } else {
    cv_.wait(lk, ready);
  }
  if (!reply_) throw NetError("connection closed awaiting reply");
  Frame f = std::move(*reply_);
  reply_.reset();
  return f;
}

model::SubId Client::subscribe(const model::Subscription& sub) {
  util::BufWriter w;
  put_subscription(w, sub);
  const Frame f = rpc(MsgKind::kSubscribe, w.bytes(), MsgKind::kSubscribeAck);
  const model::SubId id = decode_subscribe_ack(f.payload).id;
  std::lock_guard lk(mu_);
  owned_.push_back(id);
  return id;
}

model::SubId Client::subscribe(const model::Subscription& sub, uint32_t lease_periods) {
  util::BufWriter w;
  put_subscription(w, sub);
  // Trailing v4 field; explicit 0 pins the subscription permanent even
  // when the broker defaults new subscriptions to leased.
  w.put_varint(lease_periods);
  const Frame f = rpc(MsgKind::kSubscribe, w.bytes(), MsgKind::kSubscribeAck);
  const model::SubId id = decode_subscribe_ack(f.payload).id;
  std::lock_guard lk(mu_);
  owned_.push_back(id);
  return id;
}

uint32_t Client::renew_leases(const std::vector<model::SubId>& ids) {
  const Frame f =
      rpc(MsgKind::kLeaseRenew, encode(LeaseRenewMsg{ids}), MsgKind::kLeaseRenewAck);
  return decode_lease_renew_ack(f.payload).renewed;
}

uint32_t Client::renew_leases() { return renew_leases(owned_subscriptions()); }

void Client::unsubscribe(model::SubId id) {
  util::BufWriter w;
  put_sub_id(w, id);
  rpc(MsgKind::kUnsubscribe, w.bytes(), MsgKind::kUnsubscribeAck);
  std::lock_guard lk(mu_);
  std::erase(owned_, id);
}

std::vector<model::SubId> Client::owned_subscriptions() const {
  std::lock_guard lk(mu_);
  return owned_;
}

uint64_t Client::publish(const model::Event& event) {
  util::BufWriter w;
  put_event(w, event);
  const Frame f = rpc(MsgKind::kPublish, w.bytes(), MsgKind::kPublishAck);
  if (f.payload.size() < 8) return 0;  // v2 broker: empty ack, no trace id
  util::BufReader r(f.payload);
  return r.get_u64();
}

std::string Client::stats_text() {
  const Frame f = rpc(MsgKind::kStats, {}, MsgKind::kStatsAck);
  return std::string(reinterpret_cast<const char*>(f.payload.data()), f.payload.size());
}

std::vector<obs::Span> Client::fetch_trace(uint64_t trace, uint32_t max_spans) {
  const Frame f =
      rpc(MsgKind::kTrace, encode(TraceRequestMsg{trace, max_spans}), MsgKind::kTraceAck);
  return decode_trace_reply(f.payload).spans;
}

std::vector<std::byte> Client::flight_dump() {
  Frame f = rpc(MsgKind::kDump, {}, MsgKind::kDumpAck);
  return std::move(f.payload);
}

std::optional<NotifyMsg> Client::next_notification(std::chrono::milliseconds timeout) {
  {
    std::unique_lock lk(mu_);
    cv_.wait_for(lk, timeout, [this] { return !notifications_.empty() || closed_; });
    if (!notifications_.empty()) {
      NotifyMsg m = std::move(notifications_.front());
      notifications_.pop_front();
      return m;
    }
    if (!closed_) return std::nullopt;
    // Distinguish "nothing yet" from "nothing will ever come": a dead,
    // non-reconnectable connection with a drained queue is an error, not
    // an empty optional.
    if (close_called_ || !opts_.auto_reconnect) {
      throw NetError("connection closed while awaiting notifications");
    }
  }
  // Dead but reconnectable: one attempt (which re-attaches owned
  // subscriptions), so a poller rides out a broker crash-recovery without
  // re-subscribing. Failure throws NetError, preserving the no-spin rule.
  reconnect();
  return std::nullopt;
}

std::vector<NotifyMsg> Client::drain_notifications() {
  std::lock_guard lk(mu_);
  std::vector<NotifyMsg> out(notifications_.begin(), notifications_.end());
  notifications_.clear();
  return out;
}

}  // namespace subsum::net
