#include "net/client.h"

namespace subsum::net {

Client::Client(uint16_t port, const model::Schema& schema)
    : schema_(&schema), sock_(connect_local(port)) {
  reader_ = std::thread([this] { reader_loop(); });
}

Client::~Client() { close(); }

void Client::close() {
  {
    std::lock_guard lk(mu_);
    if (close_called_) return;
    close_called_ = true;
    closed_ = true;
  }
  sock_.shutdown_both();
  if (reader_.joinable()) reader_.join();
  cv_.notify_all();
}

void Client::reader_loop() {
  try {
    while (true) {
      auto frame = recv_frame(sock_);
      if (!frame) break;
      std::lock_guard lk(mu_);
      if (frame->kind == MsgKind::kNotify) {
        notifications_.push_back(decode_notify_msg(frame->payload, *schema_));
      } else {
        reply_ = std::move(*frame);
      }
      cv_.notify_all();
    }
  } catch (const std::exception&) {
    // Fall through to mark the connection dead.
  }
  std::lock_guard lk(mu_);
  closed_ = true;
  cv_.notify_all();
}

Frame Client::rpc(MsgKind kind, std::span<const std::byte> payload, MsgKind expected_ack) {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [this] { return !rpc_in_flight_ || closed_; });
  if (closed_) throw NetError("client connection closed");
  rpc_in_flight_ = true;
  reply_.reset();
  lk.unlock();

  send_frame(sock_, kind, payload);

  lk.lock();
  cv_.wait(lk, [this] { return reply_.has_value() || closed_; });
  rpc_in_flight_ = false;
  cv_.notify_all();
  if (!reply_) throw NetError("connection closed awaiting reply");
  Frame f = std::move(*reply_);
  reply_.reset();
  if (f.kind != expected_ack) throw NetError("unexpected reply kind");
  return f;
}

model::SubId Client::subscribe(const model::Subscription& sub) {
  util::BufWriter w;
  put_subscription(w, sub);
  const Frame f = rpc(MsgKind::kSubscribe, w.bytes(), MsgKind::kSubscribeAck);
  return decode_subscribe_ack(f.payload).id;
}

void Client::unsubscribe(model::SubId id) {
  util::BufWriter w;
  put_sub_id(w, id);
  rpc(MsgKind::kUnsubscribe, w.bytes(), MsgKind::kUnsubscribeAck);
}

void Client::publish(const model::Event& event) {
  util::BufWriter w;
  put_event(w, event);
  rpc(MsgKind::kPublish, w.bytes(), MsgKind::kPublishAck);
}

std::optional<NotifyMsg> Client::next_notification(std::chrono::milliseconds timeout) {
  std::unique_lock lk(mu_);
  cv_.wait_for(lk, timeout, [this] { return !notifications_.empty() || closed_; });
  if (notifications_.empty()) return std::nullopt;
  NotifyMsg m = std::move(notifications_.front());
  notifications_.pop_front();
  return m;
}

std::vector<NotifyMsg> Client::drain_notifications() {
  std::lock_guard lk(mu_);
  std::vector<NotifyMsg> out(notifications_.begin(), notifications_.end());
  notifications_.clear();
  return out;
}

}  // namespace subsum::net
