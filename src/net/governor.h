// Broker-wide resource governor: the overload-protection policy layer.
//
// Four concerns, one budget:
//
//   1. Bounded per-connection outbound queues. The broker enqueues data
//      frames (kNotify) instead of writing them inline; the governor
//      accounts every queued byte against a global memory budget and the
//      per-connection caps live in GovernorConfig. Slow-consumer policy is
//      drop-oldest data frames on overflow, then disconnect once a single
//      write stalls past write_stall_timeout (a mid-frame send timeout
//      corrupts the stream, so disconnecting is the only safe option).
//
//   2. Admission control. A token-bucket paces publish admissions and hard
//      caps bound subscriptions/connections; rejections carry a
//      retry-after hint on the wire (net/protocol.h ErrorMsg) that
//      net::Client folds into its backoff instead of hammering a shedding
//      broker.
//
//   3. Per-peer circuit breakers. N consecutive terminal RPC failures
//      (NetTimeout/PeerUnreachable after the retry budget) open the
//      breaker; calls then fail fast — BROCLI walks re-select around the
//      sick peer without burning the RPC deadline — until a cooldown
//      admits one half-open probe.
//
//   4. A degradation ladder driven by usage/budget. Rungs shed in strict
//      priority order: quality-probe shadow samples, then trace spans,
//      then TTL'd redeliveries, then new publish admissions. Control-plane
//      traffic (summary announcements, deltas, leases, kSummarySync
//      anti-entropy) is NEVER shed — soft-state convergence must survive
//      overload — and the `control` shed counter exists only so tests and
//      operators can assert it stays zero.
//
// Timing and accounting use std::chrono::steady_clock and the governor's
// own atomics — NOT obs::now_us(), which compiles to a constant 0 under
// -DSUBSUM_NO_TELEMETRY. Policy decisions are therefore identical in both
// builds; the obs registry only mirrors them. TokenBucket and
// CircuitBreaker take explicit timestamps so tests can pin schedules.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "overlay/graph.h"

namespace subsum::net {

struct GovernorConfig {
  // --- admission control ----------------------------------------------------
  /// Publish admissions per second (token bucket). 0 = unlimited.
  uint64_t publish_rate_per_sec = 0;
  /// Bucket capacity (burst size). 0 = one second's worth of rate.
  uint64_t publish_burst = 0;
  /// Concurrent client/peer connections served. 0 = unlimited.
  uint64_t max_connections = 0;
  /// Outstanding local subscriptions admitted by the governor. 0 = only the
  /// (much larger) BrokerConfig::max_subs_per_broker id-space bound applies.
  uint64_t max_subscriptions = 0;
  /// Base retry-after hint stamped on capacity/shed rejections; rate-limit
  /// rejections compute the exact token-refill time instead.
  std::chrono::milliseconds retry_after{250};

  // --- per-connection outbound queues ---------------------------------------
  /// Queued outbound data bytes per connection before drop-oldest engages.
  size_t conn_queue_max_bytes = 1u << 20;
  /// Queued outbound data frames per connection before drop-oldest engages.
  size_t conn_queue_max_frames = 1024;
  /// Deadline for any single outbound write (covers acks too, via the
  /// socket send timeout). A write that stalls past it disconnects the
  /// connection: the frame boundary is lost mid-stream, and a consumer
  /// this far behind is not coming back. 0 (unbounded) is unsupported —
  /// a writer blocked forever under conn->write_mu would deadlock broker
  /// shutdown — so BrokerNode clamps <= 0 back to this default.
  std::chrono::milliseconds write_stall_timeout{2000};
  /// Kernel send-buffer clamp (SO_SNDBUF) on accepted connections. The
  /// byte budget above only bounds user-space queues; without this clamp
  /// Linux autotuning parks up to tcp_wmem[2] (often 4 MB) per stalled
  /// consumer in the kernel before the writer ever blocks. 0 = kernel
  /// default (unclamped).
  size_t conn_sndbuf_bytes = 0;

  // --- peer circuit breakers ------------------------------------------------
  /// Consecutive terminal failures before a peer's breaker opens.
  /// 0 disables circuit breaking entirely.
  uint32_t breaker_open_after = 4;
  /// How long an open breaker fails fast before admitting one half-open
  /// probe. Kept short relative to a propagation period so a recovered
  /// peer rejoins within the next period.
  std::chrono::milliseconds breaker_cooldown{150};

  // --- degradation ladder ---------------------------------------------------
  /// Global budget for governor-accounted bytes (outbound queues + the
  /// redelivery queue). Usage/budget drives the ladder rung.
  size_t memory_budget_bytes = 8u << 20;
};

/// Deterministic token bucket; the caller supplies timestamps (µs on any
/// monotone clock). Internally synchronized.
class TokenBucket {
 public:
  /// rate 0 = unlimited (try_acquire always succeeds).
  TokenBucket(uint64_t rate_per_sec, uint64_t burst) noexcept;

  /// Takes one token accrued as of now_us. On refusal returns false and,
  /// when retry_after_ms is non-null, stores the ceiling of the time until
  /// a token will be available (>= 1).
  bool try_acquire(uint64_t now_us, uint64_t* retry_after_ms = nullptr) noexcept;

  [[nodiscard]] uint64_t rate() const noexcept { return rate_; }

 private:
  uint64_t rate_;        // tokens per second
  uint64_t capacity_;    // micro-tokens (token * 1e6)
  std::mutex mu_;
  uint64_t micro_tokens_;
  uint64_t last_us_ = 0;
};

/// Per-peer circuit breaker: closed -> open after N consecutive terminal
/// failures; open -> half-open after the cooldown, admitting exactly one
/// probe; probe success closes, probe failure re-opens. Internally
/// synchronized; timestamps are caller-supplied for determinism.
class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  /// open_after 0 disables the breaker (allow() is always true).
  CircuitBreaker(uint32_t open_after, std::chrono::milliseconds cooldown) noexcept;

  /// Whether a call may proceed at now_us. An open breaker inside the
  /// cooldown refuses; past it, transitions to half-open and admits ONE
  /// in-flight probe (concurrent callers are refused until it resolves).
  bool allow(uint64_t now_us) noexcept;
  void on_success() noexcept;
  void on_failure(uint64_t now_us) noexcept;

  [[nodiscard]] State state() const noexcept;

 private:
  uint32_t open_after_;
  uint64_t cooldown_us_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  uint32_t consecutive_failures_ = 0;
  uint64_t opened_at_us_ = 0;
  bool probe_in_flight_ = false;
};

class Governor {
 public:
  /// Shed classes, in strict ladder order. kNotify is the slow-consumer
  /// drop-oldest policy (not a ladder rung: it is per-connection); kControl
  /// is never shed and exists so its counter can be asserted zero.
  enum class Shed : uint8_t { kProbe = 0, kTrace, kRedelivery, kPublish, kNotify, kControl };

  /// `peers` sizes the breaker array (one per broker id); `m` receives the
  /// mirror metrics (health gauge, shed counters, queue histograms).
  Governor(GovernorConfig cfg, size_t peers, obs::MetricsRegistry& m);

  [[nodiscard]] const GovernorConfig& config() const noexcept { return cfg_; }

  // --- degradation ladder ---------------------------------------------------
  /// Current rung from usage/budget: 0 healthy; 1 sheds probes (>=50%);
  /// 2 also sheds trace spans (>=65%); 3 also sheds new redeliveries
  /// (>=80%); 4 also rejects new publishes (>=95%).
  [[nodiscard]] int rung() const noexcept;
  /// Whether class c is shed at the current rung (always false for
  /// kControl and kNotify).
  [[nodiscard]] bool shedding(Shed c) const noexcept;
  /// Bumps the per-class shed counter (mirror metric).
  void count_shed(Shed c) noexcept;
  [[nodiscard]] uint64_t shed_count(Shed c) const noexcept;

  // --- budget accounting (outbound queues + redeliveries) -------------------
  void add_usage(size_t bytes) noexcept;
  void sub_usage(size_t bytes) noexcept;
  [[nodiscard]] size_t usage() const noexcept {
    return usage_bytes_.load(std::memory_order_relaxed);
  }
  /// Injects the summed per-component memory accounting (obs/memacct.h)
  /// for everything the add_usage/sub_usage stream does NOT cover —
  /// frozen-index arenas, summary images, WAL/snapshot buffers, telemetry
  /// rings. The ladder degrades on usage() + external, i.e. on measured
  /// broker memory, not outbound-queue bytes alone. Deterministic for
  /// tests: nothing is read from the OS — callers push readings.
  void set_external_bytes(uint64_t bytes) noexcept;
  [[nodiscard]] uint64_t external_bytes() const noexcept {
    return external_bytes_.load(std::memory_order_relaxed);
  }
  /// The degradation ladder's input: usage() + external_bytes().
  [[nodiscard]] uint64_t ladder_bytes() const noexcept {
    return usage_bytes_.load(std::memory_order_relaxed) +
           external_bytes_.load(std::memory_order_relaxed);
  }
  /// High-water mark of usage() since construction.
  [[nodiscard]] size_t peak_usage() const noexcept {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  /// Record one enqueue into a connection queue (depth/bytes histograms).
  void observe_queue(size_t depth, size_t bytes) noexcept;
  /// A writer hit the stall deadline and cut the connection. Kept on the
  /// governor's own atomics so tests can observe the slow-consumer policy
  /// without telemetry.
  void count_slow_disconnect() noexcept {
    slow_disconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t slow_disconnects() const noexcept {
    return slow_disconnects_.load(std::memory_order_relaxed);
  }

  // --- admission ------------------------------------------------------------
  struct Admission {
    bool ok = true;
    bool shed = false;  // refused by the ladder (rung 4), not the rate limit
    uint32_t retry_after_ms = 0;
  };
  /// Token bucket + rung-4 shedding, in that order of reporting (a shed
  /// rejection wins: its hint is the base retry_after, not a refill time).
  Admission admit_publish() noexcept;
  /// Whether one more local subscription may be admitted given the current
  /// count (the caller holds its own table lock and passes the count).
  [[nodiscard]] bool admit_subscription(uint64_t current) const noexcept;
  /// Counts a refused subscribe (the admission check itself is const and
  /// lock-free so the caller can probe without committing).
  void count_rejected_subscription() noexcept;
  /// Connection slots. try_acquire_connection/release_connection bracket a
  /// connection handler's lifetime.
  bool try_acquire_connection() noexcept;
  void release_connection() noexcept;
  [[nodiscard]] uint64_t connections() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }

  /// Retry-after hint for capacity/shed rejections, in ms.
  [[nodiscard]] uint32_t retry_after_hint() const noexcept {
    return static_cast<uint32_t>(cfg_.retry_after.count());
  }

  // --- peer circuit breakers ------------------------------------------------
  /// Whether an RPC to `peer` may proceed now; false = fail fast.
  bool breaker_allow(overlay::BrokerId peer) noexcept;
  void breaker_success(overlay::BrokerId peer) noexcept;
  void breaker_failure(overlay::BrokerId peer) noexcept;
  [[nodiscard]] CircuitBreaker::State breaker_state(overlay::BrokerId peer) const noexcept;
  [[nodiscard]] uint64_t breaker_fastfails() const noexcept;

  /// µs on the process-wide steady clock (independent of SUBSUM_NO_TELEMETRY).
  static uint64_t steady_now_us() noexcept;

  /// Incident observers: rung changes and breaker flips are edge-detected
  /// here (the policy's own state machine) and recorded to the flight
  /// recorder / logger. Either may be null; call before traffic. Policy
  /// decisions never read these — they are write-only breadcrumbs, so the
  /// ladder behaves identically under -DSUBSUM_NO_TELEMETRY.
  void set_observer(obs::FlightRecorder* flight, obs::Logger* log) noexcept;

 private:
  void refresh_rung_gauge() noexcept;
  void set_breaker_gauge(overlay::BrokerId peer) noexcept;

  GovernorConfig cfg_;
  TokenBucket publish_bucket_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  obs::FlightRecorder* flight_ = nullptr;  // not owned; see set_observer
  obs::Logger* log_ = nullptr;             // not owned
  std::atomic<int> last_rung_{0};
  std::unique_ptr<std::atomic<uint8_t>[]> last_breaker_;  // per-peer state
  std::atomic<uint64_t> usage_bytes_{0};
  std::atomic<uint64_t> external_bytes_{0};  // memacct components, pushed
  std::atomic<uint64_t> peak_bytes_{0};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> fastfails_{0};
  std::atomic<uint64_t> slow_disconnects_{0};
  std::atomic<uint64_t> shed_counts_[6] = {};  // own copy: valid sans telemetry

  // Mirror metrics (no-ops under SUBSUM_NO_TELEMETRY; never read back for
  // policy).
  obs::Gauge* gauge_rung_ = nullptr;            // subsum_health_rung
  obs::Gauge* gauge_usage_ = nullptr;           // subsum_outbound_usage_bytes
  obs::Gauge* gauge_ladder_ = nullptr;          // subsum_governor_memory_bytes
  obs::Gauge* gauge_budget_ = nullptr;          // subsum_memory_budget_bytes
  obs::Counter* ctr_shed_[6] = {};              // subsum_shed_total{class=...}
  obs::Counter* ctr_rejected_publish_ = nullptr;
  obs::Counter* ctr_rejected_subscribe_ = nullptr;
  obs::Counter* ctr_rejected_connection_ = nullptr;
  obs::Counter* ctr_breaker_fastfail_ = nullptr;
  obs::Histogram* hist_queue_depth_ = nullptr;  // subsum_outbound_queue_depth
  obs::Histogram* hist_queue_bytes_ = nullptr;  // subsum_outbound_queue_bytes
  std::vector<obs::Gauge*> gauge_breaker_;      // subsum_peer_circuit_state{peer=N}
};

}  // namespace subsum::net
