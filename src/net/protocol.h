// Wire payloads for the broker protocol. Model objects are encoded with the
// util::BufWriter primitives; summaries reuse the core wire format
// (core/serialize.h) embedded as an opaque byte string.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/event.h"
#include "model/subscription.h"
#include "obs/trace.h"
#include "overlay/graph.h"
#include "util/bytes.h"

namespace subsum::net {

// --- model primitives -------------------------------------------------------

void put_value(util::BufWriter& w, const model::Value& v);
model::Value get_value(util::BufReader& r, model::AttrType type);

void put_event(util::BufWriter& w, const model::Event& e);
model::Event get_event(util::BufReader& r, const model::Schema& schema);

void put_subscription(util::BufWriter& w, const model::Subscription& s);
model::Subscription get_subscription(util::BufReader& r, const model::Schema& schema);

/// Uncompressed SubId (12 bytes + varint mask); peer-to-peer messages favor
/// simplicity over the packed c1|c2|c3 form used inside summaries.
void put_sub_id(util::BufWriter& w, const model::SubId& id);
model::SubId get_sub_id(util::BufReader& r);

// --- message payloads --------------------------------------------------------

struct SubscribeAckMsg {
  model::SubId id;
};

/// kError payload (optional — pre-governor brokers send kError with an
/// empty payload, which decodes as {kGeneric, 0}; v3/v4 clients that never
/// look at the payload see a plain error, so no protocol version bump).
/// Non-generic codes mean the broker explicitly did NOT act on the request
/// and the client may retry after retry_after_ms.
struct ErrorMsg {
  enum Code : uint8_t {
    kGeneric = 0,       // unknown frame kind / malformed request
    kThrottled = 1,     // publish token bucket empty
    kOverCapacity = 2,  // subscription/connection cap reached
    kShedding = 3,      // degradation ladder is rejecting this class
  };
  uint8_t code = kGeneric;
  uint32_t retry_after_ms = 0;  // 0 = no hint
};

struct SummaryMsg {
  overlay::BrokerId from = 0;
  std::vector<overlay::BrokerId> merged_brokers;
  std::vector<uint64_t> epochs;           // aligned with merged_brokers; 0 = ephemeral
  std::vector<model::SubId> removals;     // maintenance piggyback
  std::vector<std::byte> summary;         // core/serialize wire format
  /// v4 trailing fields: the sender's summary version and image digest at
  /// encode time, used to seed the receiver's shadow for later delta
  /// bases. Absent (0) on frames from v3 peers.
  uint64_t version = 0;
  uint64_t digest = 0;
};

/// v4 delta announcement: same envelope as SummaryMsg, but the payload is a
/// core/delta wire blob (its DeltaHeader carries epoch, base/new versions
/// and digests).
struct SummaryDeltaMsg {
  overlay::BrokerId from = 0;
  std::vector<overlay::BrokerId> merged_brokers;
  std::vector<uint64_t> epochs;
  std::vector<model::SubId> removals;
  std::vector<std::byte> delta;  // core/delta wire format
};

/// Delta-ack status: whether the receiver's shadow landed on the digest the
/// sender stamped. kNeedFull receivers follow up with kSummarySync.
struct SummaryDeltaAckMsg {
  enum Status : uint8_t { kApplied = 0, kNeedFull = 1 };
  uint8_t status = kApplied;
};

/// Anti-entropy repair request: "send me your full current image". The ack
/// payload is an encoded SummaryMsg (version/digest stamped).
struct SummarySyncMsg {
  overlay::BrokerId from = 0;  // requester, so the sender can reset last_sent
};

/// Sent by a reconnecting client to re-bind subscription ids it already
/// owns (e.g. after the broker crash-recovered them from its store) to the
/// new connection, without re-subscribing.
struct AttachMsg {
  std::vector<model::SubId> ids;
};

struct AttachAckMsg {
  uint32_t bound = 0;  // how many of the requested ids the broker knew
};

/// Refreshes the soft-state lease on subscriptions this client owns; each
/// listed id gets its remaining lifetime reset to its full TTL.
struct LeaseRenewMsg {
  std::vector<model::SubId> ids;
};

struct LeaseRenewAckMsg {
  uint32_t renewed = 0;  // how many ids had a live lease to refresh
};

struct EventMsg {
  overlay::BrokerId origin = 0;
  uint64_t seq = 0;                 // publisher-assigned, for tie rotation
  std::vector<std::byte> brocli;    // bitmap, one bit per broker
  model::Event event;
  /// Trace id minted at publish (PROTOCOL v3). Encoded as a trailing
  /// field, so v2 frames decode with trace 0 and v2 peers ignore it.
  uint64_t trace = 0;
};

struct DeliverMsg {
  overlay::BrokerId examined_at = 0;
  std::vector<model::SubId> ids;
  model::Event event;
  uint64_t trace = 0;  // trailing v3 field; 0 from v2 peers
};

/// Admin RPC: drive the sampling CPU profiler (obs/profiler.h). Added
/// without a version bump, like kDump: pre-profiler brokers answer
/// kError, and NO_TELEMETRY brokers answer a stopped profiler with empty
/// folded stacks — both of which clients must tolerate.
struct ProfileRequestMsg {
  enum Action : uint8_t {
    kStatus = 0,  // report state only
    kStart = 1,   // arm sampling at `hz` (0 = the broker's default, 97)
    kStop = 2,    // disarm sampling; captured samples stay fetchable
    kFetch = 3,   // drain + symbolize: the reply carries folded stacks
  };
  uint8_t action = kStatus;
  uint32_t hz = 0;
};

struct ProfileReplyMsg {
  uint8_t running = 0;
  uint32_t hz = 0;          // active rate; 0 when stopped
  uint64_t samples = 0;     // captured since process start
  uint64_t dropped = 0;     // lost to ring overwrite before a drain
  std::string folded;       // collapsed stacks (kFetch only; else empty)
};

/// Admin RPC: fetch recent spans from a broker's trace ring.
struct TraceRequestMsg {
  uint64_t trace = 0;      // 0 = all retained spans
  uint32_t max_spans = 0;  // 0 = no cap; otherwise the newest N
};

struct TraceReplyMsg {
  std::vector<obs::Span> spans;  // oldest first
};

struct NotifyMsg {
  std::vector<model::SubId> ids;
  model::Event event;
};

struct TriggerMsg {
  uint32_t iteration = 0;
};

std::vector<std::byte> encode(const SubscribeAckMsg& m);
SubscribeAckMsg decode_subscribe_ack(std::span<const std::byte> b);

std::vector<std::byte> encode(const ErrorMsg& m);
/// Tolerant: an empty or truncated payload decodes as {kGeneric, 0}.
ErrorMsg decode_error_msg(std::span<const std::byte> b);

std::vector<std::byte> encode(const SummaryMsg& m);
SummaryMsg decode_summary_msg(std::span<const std::byte> b);

std::vector<std::byte> encode(const SummaryDeltaMsg& m);
SummaryDeltaMsg decode_summary_delta_msg(std::span<const std::byte> b);

std::vector<std::byte> encode(const SummaryDeltaAckMsg& m);
SummaryDeltaAckMsg decode_summary_delta_ack(std::span<const std::byte> b);

std::vector<std::byte> encode(const SummarySyncMsg& m);
SummarySyncMsg decode_summary_sync_msg(std::span<const std::byte> b);

std::vector<std::byte> encode(const LeaseRenewMsg& m);
LeaseRenewMsg decode_lease_renew_msg(std::span<const std::byte> b);

std::vector<std::byte> encode(const LeaseRenewAckMsg& m);
LeaseRenewAckMsg decode_lease_renew_ack(std::span<const std::byte> b);

std::vector<std::byte> encode(const EventMsg& m, const model::Schema& schema);
EventMsg decode_event_msg(std::span<const std::byte> b, const model::Schema& schema);

std::vector<std::byte> encode(const DeliverMsg& m, const model::Schema& schema);
DeliverMsg decode_deliver_msg(std::span<const std::byte> b, const model::Schema& schema);

std::vector<std::byte> encode(const NotifyMsg& m, const model::Schema& schema);
NotifyMsg decode_notify_msg(std::span<const std::byte> b, const model::Schema& schema);

std::vector<std::byte> encode(const TriggerMsg& m);
TriggerMsg decode_trigger_msg(std::span<const std::byte> b);

std::vector<std::byte> encode(const AttachMsg& m);
AttachMsg decode_attach_msg(std::span<const std::byte> b);

std::vector<std::byte> encode(const AttachAckMsg& m);
AttachAckMsg decode_attach_ack(std::span<const std::byte> b);

std::vector<std::byte> encode(const TraceRequestMsg& m);
TraceRequestMsg decode_trace_request(std::span<const std::byte> b);

std::vector<std::byte> encode(const ProfileRequestMsg& m);
ProfileRequestMsg decode_profile_request(std::span<const std::byte> b);

std::vector<std::byte> encode(const ProfileReplyMsg& m);
ProfileReplyMsg decode_profile_reply(std::span<const std::byte> b);

std::vector<std::byte> encode(const TraceReplyMsg& m);
TraceReplyMsg decode_trace_reply(std::span<const std::byte> b);

// --- BROCLI bitmap helpers ---------------------------------------------------

std::vector<std::byte> make_bitmap(size_t bits);
bool bitmap_get(std::span<const std::byte> bm, size_t i);
void bitmap_set(std::span<std::byte> bm, size_t i);
bool bitmap_all(std::span<const std::byte> bm, size_t bits);

}  // namespace subsum::net
