// A TCP fault-injection proxy for tests and demos. It listens on its own
// loopback port and forwards byte streams to a target port, applying a
// switchable fault mode per chunk:
//
//   kPass       forward faithfully
//   kDelay      forward after sleeping `delay` per chunk (slow link)
//   kDrop       close every new connection immediately (refused service)
//   kBlackhole  accept and read, but never forward and never reply
//   kTruncate   forward only the first `truncate_after` bytes of the
//               client->server stream, then hard-close both ends
//               (mid-frame cut)
//   kThrottle   forward at `throttle(bytes_per_sec)` — pacing is computed
//               from byte counts on the steady clock, with optional
//               per-chunk jitter drawn from set_seed() (deterministic
//               given the seed and chunk sequence)
//
// stall_reads(duration) is orthogonal to the mode: every pump simply stops
// reading its source for the window, so the kernel buffers fill and REAL
// TCP backpressure propagates to whoever writes into the proxied path —
// the tool for simulating a consumer that stops draining its socket.
//
// Point a broker's peer-port entry (BrokerNode::set_peer_ports) or a
// client at port() to interpose on that path. Mode changes apply to new
// chunks immediately; sever_connections() additionally resets everything
// in flight (simulating a crashed link).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "util/rng.h"

namespace subsum::net {

class FaultInjector {
 public:
  enum class Mode : uint8_t { kPass = 0, kDelay, kDrop, kBlackhole, kTruncate, kThrottle };

  explicit FaultInjector(uint16_t target_port);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] uint16_t port() const noexcept { return listener_.port(); }
  [[nodiscard]] uint16_t target_port() const noexcept { return target_port_; }

  void set_mode(Mode m) noexcept { mode_.store(m); }
  [[nodiscard]] Mode mode() const noexcept { return mode_.load(); }
  void set_delay(std::chrono::milliseconds d) noexcept { delay_ms_.store(d.count()); }
  void set_truncate_after(size_t bytes) noexcept { truncate_after_.store(bytes); }

  /// Switches to kThrottle: both directions forwarded at ~bytes_per_sec.
  void throttle(uint64_t bytes_per_sec) noexcept {
    throttle_bps_.store(bytes_per_sec == 0 ? 1 : bytes_per_sec);
    mode_.store(Mode::kThrottle);
  }

  /// Seeds the throttle's per-chunk pacing jitter (±25%). 0 (the default)
  /// disables jitter; either way pacing is deterministic for a given seed
  /// and chunk sequence.
  void set_seed(uint64_t seed) noexcept { seed_.store(seed); }

  /// Pauses ALL proxied reads for `d` from now: kernel buffers upstream of
  /// the proxy fill and the writer side experiences genuine TCP
  /// backpressure (a stalled consumer). Forwarding resumes by itself when
  /// the window passes; calling again extends or shortens the window.
  void stall_reads(std::chrono::milliseconds d) noexcept;

  /// Whether a stall_reads() window is currently in force.
  [[nodiscard]] bool stalled() const noexcept;

  /// Hard-closes every connection currently proxied (both ends see a
  /// reset/EOF) without changing the mode.
  void sever_connections();

  /// Bytes forwarded client->server since construction.
  [[nodiscard]] uint64_t forwarded_bytes() const noexcept { return forwarded_.load(); }

  void stop();

 private:
  struct Conn {
    Socket down;  // accepted client side
    Socket up;    // connection to the real target
    std::atomic<size_t> sent_up{0};
    // Throttle pacing state, indexed by direction (0 = upstream pump,
    // 1 = downstream pump); each slot is touched by exactly one thread.
    uint64_t pace_start_us[2] = {0, 0};
    uint64_t paced_bytes[2] = {0, 0};
    util::Rng pace_rng[2]{util::Rng(0), util::Rng(0)};
  };

  void accept_loop();
  void pump(const std::shared_ptr<Conn>& conn, bool upstream);

  /// µs since an arbitrary steady-clock origin; pacing/stall arithmetic.
  static uint64_t now_us() noexcept;

  uint16_t target_port_;
  Listener listener_;
  std::atomic<Mode> mode_{Mode::kPass};
  std::atomic<int64_t> delay_ms_{0};
  std::atomic<size_t> truncate_after_{0};
  std::atomic<uint64_t> throttle_bps_{1};
  std::atomic<uint64_t> seed_{0};
  std::atomic<uint64_t> stall_until_us_{0};
  std::atomic<uint64_t> forwarded_{0};
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::vector<std::thread> threads_;
  std::vector<std::weak_ptr<Conn>> conns_;
  std::thread accept_thread_;
};

}  // namespace subsum::net
