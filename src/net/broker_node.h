// A real broker daemon speaking the subsum protocol over TCP.
//
// Each BrokerNode runs a listener plus one handler thread per connection.
// It keeps the same state as a SimSystem broker: the home subscription
// table (exact), the held merged summary, and the Merged_Brokers set.
//
// Algorithm 2 runs as externally clocked rounds: a controller (see
// cluster.h) sends kTrigger(iteration) to every node; a node whose degree
// equals the iteration performs its single summary send synchronously
// (connect -> kSummary -> kSummaryAck) before acknowledging the trigger, so
// a round barrier at the controller yields exactly the paper's iteration
// semantics. Unlike the bandwidth-measured sim layer, the node sends its
// full held summary each period (a state-based, self-healing variant;
// merging is idempotent so this only trades bytes for robustness).
//
// Algorithm 3 runs fully in-band: kPublish starts the BROCLI walk at the
// client's broker; each broker matches, sends kDeliver to fresh owners,
// and forwards kEvent to the highest-degree broker not in the BROCLI
// bitmap. Event forwarding is synchronous end-to-end, so a client's
// publish() returns only after the whole walk (and all deliveries) have
// completed — which makes the distributed system deterministic to test.
//
// Locking: `mu_` guards all broker state and is NEVER held across a
// network call; peer RPCs therefore cannot deadlock (a blocked walk thread
// at broker A does not prevent A from serving kDeliver on another
// connection).
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/matcher.h"
#include "core/serialize.h"
#include "model/schema.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "overlay/graph.h"

namespace subsum::net {

struct BrokerConfig {
  overlay::BrokerId id = 0;
  model::Schema schema;
  overlay::Graph graph;  // the full overlay: ids, adjacency, degrees
  core::GeneralizePolicy policy = core::GeneralizePolicy::kSafe;
  uint64_t max_subs_per_broker = uint64_t{1} << 20;
  uint8_t numeric_width = 8;
  uint16_t port = 0;  // 0 = ephemeral (in-process clusters); fixed for CLI use
};

class BrokerNode {
 public:
  /// Binds an ephemeral loopback port and starts serving.
  explicit BrokerNode(BrokerConfig cfg);
  ~BrokerNode();

  BrokerNode(const BrokerNode&) = delete;
  BrokerNode& operator=(const BrokerNode&) = delete;

  [[nodiscard]] uint16_t port() const noexcept { return listener_.port(); }
  [[nodiscard]] overlay::BrokerId id() const noexcept { return cfg_.id; }

  /// Ports of all brokers, indexed by broker id. Must be set (by the
  /// controller) before any propagation or publish traffic.
  void set_peer_ports(std::vector<uint16_t> ports);

  /// Stops the listener and joins all handler threads.
  void stop();

  /// Introspection for tests: current held-summary stats and counts.
  struct Snapshot {
    size_t local_subs = 0;
    size_t merged_brokers = 0;
    size_t held_wire_bytes = 0;
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  struct ClientConn {
    Socket* sock = nullptr;  // valid while the handler thread runs
    std::mutex write_mu;
  };

  void accept_loop();
  void handle_connection(Socket sock);

  // Frame handlers; `conn` is this connection's shared write handle.
  void on_subscribe(Socket& s, const std::shared_ptr<ClientConn>& conn, const Frame& f,
                    std::vector<uint32_t>& owned_locals);
  void on_unsubscribe(Socket& s, ClientConn& conn, const Frame& f);
  void on_publish(Socket& s, ClientConn& conn, const Frame& f);
  void on_summary(Socket& s, ClientConn& conn, const Frame& f);
  void on_event(Socket& s, ClientConn& conn, const Frame& f);
  void on_deliver(Socket& s, ClientConn& conn, const Frame& f);
  void on_trigger(Socket& s, ClientConn& conn, const Frame& f);
  void on_stats(Socket& s, ClientConn& conn, const Frame& f);

  /// One step of the BROCLI walk executed at this broker. Mutates the
  /// bitmap in `msg`, performs deliveries and the onward forward (both
  /// synchronous), then returns.
  void walk_step(EventMsg msg);

  void send_to_peer_sync(overlay::BrokerId peer, MsgKind kind,
                         std::span<const std::byte> payload, MsgKind ack_kind);

  /// Builds the SummaryMsg for this period under `mu_`, choosing the
  /// eligible neighbor; returns nullopt when there is nothing to send.
  struct PendingSend {
    overlay::BrokerId to = 0;
    std::vector<std::byte> payload;
  };
  std::optional<PendingSend> prepare_summary_send(uint32_t iteration);

  BrokerConfig cfg_;
  core::WireConfig wire_;
  Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex threads_mu_;
  std::vector<std::thread> handlers_;
  std::vector<std::weak_ptr<ClientConn>> conns_;  // for shutdown on stop()

  mutable std::mutex mu_;
  core::NaiveMatcher home_;                      // exact table, maps ids->subs
  core::BrokerSummary held_;                     // own + everything received
  std::vector<overlay::BrokerId> merged_brokers_;
  std::vector<model::SubId> pending_removals_;
  std::vector<char> communicated_;               // per neighbor id, this period
  uint32_t next_local_ = 0;
  uint64_t publish_seq_ = 0;
  std::vector<uint16_t> peer_ports_;
  std::map<uint32_t, std::shared_ptr<ClientConn>> subscribers_;  // local c2 -> conn
};

}  // namespace subsum::net
