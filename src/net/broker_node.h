// A real broker daemon speaking the subsum protocol over TCP.
//
// Each BrokerNode runs a listener plus one handler thread per connection.
// It keeps the same state as a SimSystem broker: the home subscription
// table (exact), the held merged summary, and the Merged_Brokers set.
//
// Algorithm 2 runs as externally clocked rounds: a controller (see
// cluster.h) sends kTrigger(iteration) to every node; a node whose degree
// equals the iteration performs its single summary send synchronously
// (connect -> kSummary -> kSummaryAck) before acknowledging the trigger, so
// a round barrier at the controller yields exactly the paper's iteration
// semantics. Unlike the bandwidth-measured sim layer, the node sends its
// full held summary each period (a state-based, self-healing variant;
// merging is idempotent so this only trades bytes for robustness).
//
// Algorithm 3 runs fully in-band: kPublish starts the BROCLI walk at the
// client's broker; each broker matches, sends kDeliver to fresh owners,
// and forwards kEvent to the highest-degree broker not in the BROCLI
// bitmap. Event forwarding is synchronous end-to-end, so a client's
// publish() returns only after the whole walk (and all deliveries) have
// completed — which makes the distributed system deterministic to test.
//
// Locking: `mu_` guards all broker state and is NEVER held across a
// network call; peer RPCs therefore cannot deadlock (a blocked walk thread
// at broker A does not prevent A from serving kDeliver on another
// connection).
//
// Fault tolerance: every peer RPC runs under RpcPolicy deadlines and a
// backoff-paced retry loop, so no broker call can block forever on a dead
// or stalled peer. When the chosen walk hop stays unreachable after
// retries, the walk marks it in the BROCLI bitmap (its subscribers are
// unreachable too) and forwards to the next-highest-degree live broker;
// failed kDelivers are queued and re-tried at the start of each
// propagation period (at-most-once overall: the queue is bounded and
// in-memory). A restarted broker re-learns routing state from the
// state-based full-summary sends within the following periods.
//
// Durability: with BrokerConfig::data_dir set, every accepted subscribe/
// unsubscribe is WAL-logged and fsync'd before the ack (store/
// broker_store.h), the state is periodically compacted to a snapshot, and
// construction runs crash recovery before the listener starts. Each
// incarnation gets a monotonically increasing epoch, stamped on summary
// announcements; peers discard held rows from older incarnations when a
// higher epoch appears (see on_summary), so a crash-restart cannot leave
// zombie routing state in the overlay. Ephemeral brokers stamp epoch 0,
// which opts out of staleness ordering entirely.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/delta.h"
#include "core/matcher.h"
#include "core/quality.h"
#include "core/serialize.h"
#include "model/schema.h"
#include "net/framing.h"
#include "net/governor.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/flight_recorder.h"
#include "obs/latency.h"
#include "obs/log.h"
#include "obs/memacct.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "overlay/graph.h"
#include "routing/event_router.h"
#include "routing/propagation.h"
#include "store/broker_store.h"
#include "util/backoff.h"

namespace subsum::net {

/// Deadlines and retry pacing for every RPC a broker (or the cluster
/// controller) makes to a peer.
struct RpcPolicy {
  std::chrono::milliseconds connect_timeout{500};
  std::chrono::milliseconds io_timeout{2000};
  util::BackoffPolicy backoff{std::chrono::milliseconds{20},
                              std::chrono::milliseconds{500}, 3};
};

/// A peer RPC failed even after the policy's retry budget.
class PeerUnreachable : public NetError {
 public:
  PeerUnreachable(overlay::BrokerId peer, const std::string& what)
      : NetError(what), peer_(peer) {}
  [[nodiscard]] overlay::BrokerId peer() const noexcept { return peer_; }

 private:
  overlay::BrokerId peer_;
};

struct BrokerConfig {
  overlay::BrokerId id = 0;
  model::Schema schema;
  overlay::Graph graph;  // the full overlay: ids, adjacency, degrees
  core::GeneralizePolicy policy = core::GeneralizePolicy::kSafe;
  uint64_t max_subs_per_broker = uint64_t{1} << 20;
  uint8_t numeric_width = 8;
  uint16_t port = 0;  // 0 = ephemeral (in-process clusters); fixed for CLI use
  RpcPolicy rpc;
  /// Data directory for crash durability. Empty = ephemeral: no WAL, no
  /// snapshots, epoch 0 on announcements (the pre-durability behavior).
  std::string data_dir;
  /// Compact (snapshot + WAL truncate) once this many records accumulate.
  uint64_t snapshot_wal_threshold = 256;
  /// Propagation periods a failed delivery is retried before dropping.
  int redelivery_ttl = 8;
  /// Spans retained in the trace ring (obs/trace.h); oldest overwritten.
  size_t trace_capacity = 4096;
  /// Shadow-sampling fraction for the summary-quality probe: 1 in
  /// 2^quality_sample_shift events (by deterministic content hash) re-run
  /// the exact local oracle next to the summary match (core/quality.h).
  uint32_t quality_sample_shift = 6;
  // --- soft-state summaries (PROTOCOL v4) -----------------------------------
  /// Lease length, in propagation periods, stamped on subscriptions that do
  /// not carry their own TTL. 0 = permanent (the pre-v4 behavior). A leased
  /// subscription whose owner neither renews (kLeaseRenew) nor re-attaches
  /// within the window is expired at the period boundary exactly like an
  /// unsubscribe.
  uint32_t default_lease_periods = 0;
  /// Announce summary changes as row deltas against the last acked image.
  /// Full images are still sent on first contact, to v3 peers (latched on a
  /// kError ack), on the periodic refresh below, and whenever the delta
  /// would not pay for itself.
  bool delta_announcements = true;
  /// Send the full image instead when the encoded delta frame exceeds this
  /// fraction of the full frame (counted in subsum_summary_full_fallback_total).
  double delta_max_ratio = 0.5;
  /// Unconditional full-image refresh every N consecutive delta sends to a
  /// peer — an anti-entropy backstop on top of digest repair. 0 = never.
  uint32_t delta_full_refresh_every = 16;
  /// Age out a peer's mirrored summary after this many periods without an
  /// announcement from it (its rows leave held_ at the next rebuild).
  /// 0 = mirrors never expire.
  uint32_t summary_lease_periods = 0;
  // --- overload governor (net/governor.h) -----------------------------------
  /// Backpressure, admission control, peer circuit breakers, and the
  /// degradation ladder. Defaults are permissive (no rate limit, no
  /// connection cap) so existing deployments see only the new bounded
  /// outbound queues and breakers.
  GovernorConfig governor;
  // --- observability (obs/) -------------------------------------------------
  /// Flight-recorder ring capacity (state-transition records retained).
  size_t flight_capacity = 1024;
  /// Where stop() and the kDump RPC write the flight-recorder dump file.
  /// Empty with a data_dir set => "<data_dir>/flight.bin"; empty without
  /// a data_dir => no file is written (kDump still serves the bytes).
  std::string flight_dump_path;
  /// Structured logging (obs/log.h). kOff (the default) keeps the broker
  /// exactly as silent as before.
  obs::LogLevel log_level = obs::LogLevel::kOff;
  std::FILE* log_sink = nullptr;  // null = stderr; must outlive the node
  uint64_t log_max_lines_per_sec = 200;
  /// Arm the sampling CPU profiler (obs/profiler.h) at this rate from
  /// startup; 0 = registered-but-idle (arm later via the kProfile RPC, or
  /// fleet-wide via the SUBSUM_PROFILE_HZ environment — how the chaos CI
  /// jobs collect folded-stack artifacts). The profiler is process-wide,
  /// so in an in-process cluster the first node to start it wins; the node
  /// that started it stops it and, when durable, dumps profile.folded
  /// into its data_dir beside flight.bin.
  uint32_t profile_hz = 0;
  /// Sample-ring capacity handed to the profiler before arming.
  size_t profile_ring_capacity = obs::Profiler::kDefaultRingCapacity;
};

class BrokerNode {
 public:
  /// Binds an ephemeral loopback port and starts serving.
  explicit BrokerNode(BrokerConfig cfg);
  ~BrokerNode();

  BrokerNode(const BrokerNode&) = delete;
  BrokerNode& operator=(const BrokerNode&) = delete;

  [[nodiscard]] uint16_t port() const noexcept { return listener_.port(); }
  [[nodiscard]] overlay::BrokerId id() const noexcept { return cfg_.id; }

  /// Ports of all brokers, indexed by broker id. Must be set (by the
  /// controller) before any propagation or publish traffic.
  void set_peer_ports(std::vector<uint16_t> ports);

  /// Stops the listener and joins all handler threads.
  void stop();

  /// Whether stop() has run (a killed broker in a Cluster).
  [[nodiscard]] bool stopped() const noexcept { return stopping_.load(); }

  /// Introspection for tests: current held-summary stats and counts.
  struct Snapshot {
    size_t local_subs = 0;
    size_t merged_brokers = 0;
    size_t held_wire_bytes = 0;
    size_t pending_redeliveries = 0;
    uint64_t epoch = 0;  // 0 when ephemeral (no data dir)
    size_t active_leases = 0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Order-independent content digest of the held summary (core/delta.h).
  /// The anti-entropy convergence criterion for tests: after quiet periods,
  /// a receiver's shadow digest for a sender equals the sender's announced
  /// digest link by link.
  [[nodiscard]] uint64_t held_digest() const;

  /// Per-sender digests of the mirrored (shadow) images this broker holds.
  [[nodiscard]] std::map<overlay::BrokerId, uint64_t> shadow_digests() const;

  /// This incarnation's epoch; 0 when the broker is ephemeral.
  [[nodiscard]] uint64_t epoch() const noexcept { return epoch_; }

  /// Telemetry registry (counters, gauges, histograms). Thread-safe; the
  /// kStats admin RPC serves its Prometheus text exposition. Migrated
  /// event counters live here under Prometheus names
  /// (`subsum_summary_stale_dropped_total`, ...).
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Recent spans (publish walks, deliveries, retries); served by kTrace.
  [[nodiscard]] const obs::TraceRing& trace_ring() const noexcept { return trace_ring_; }

  /// Black-box state-transition ring (rung changes, breaker flips, sheds,
  /// lease expiries, ...); dumped on stop(), fatal signal, and kDump.
  [[nodiscard]] const obs::FlightRecorder& flight_recorder() const noexcept {
    return flight_;
  }
  /// Mutable handle for obs::install_fatal_dump (the handler appends a
  /// fatal-signal record before dumping).
  [[nodiscard]] obs::FlightRecorder& flight_recorder() noexcept { return flight_; }

  /// Where dumps go: cfg.flight_dump_path, or "<data_dir>/flight.bin"
  /// when a data dir is set; empty = file dumps disabled.
  [[nodiscard]] std::string flight_dump_path() const;

  /// Structured logger (configured from BrokerConfig; kOff by default).
  [[nodiscard]] obs::Logger& log() noexcept { return log_; }

  /// What recovery found in the data directory (all false when ephemeral
  /// or the directory was empty).
  struct RecoveryInfo {
    bool recovered = false;           // any durable state was loaded
    bool wal_torn = false;            // a torn/corrupt log tail was discarded
    bool snapshot_fell_back = false;  // snapshot corrupt: log-only replay
    bool own_image_verified = false;  // snapshot's own image matched rebuild
  };
  [[nodiscard]] RecoveryInfo recovery() const noexcept { return recovery_; }

  /// Test hook: the wire image of the broker's OWN summary (rebuilt from
  /// the home table, epoch field zeroed) — comparable bit-for-bit across
  /// restarts.
  [[nodiscard]] std::vector<std::byte> own_summary_wire() const;

  /// The overload governor: budget usage, shed counters, breaker states.
  [[nodiscard]] const Governor& governor() const noexcept { return *governor_; }

  /// Recomputes per-component memory attribution (obs/memacct.h) from the
  /// live owners — frozen index, held/shadow images, WAL/snapshot bytes,
  /// queues, rings — and pushes the governor-external sum into the
  /// degradation ladder. Called on every kStats scrape and at each period
  /// boundary; tests call it directly for deterministic rung assertions.
  void refresh_memory_accounting();

  /// The component byte ledger (read-side for tests and subsum_top).
  [[nodiscard]] const obs::MemAccount& mem_account() const noexcept { return memacct_; }

 private:
  /// One queued outbound data frame; the enqueue timestamp and trace id
  /// feed the outbound_queue / writer_flush stage histograms.
  struct QueuedFrame {
    std::vector<std::byte> payload;
    uint64_t enqueued_us = 0;
    uint64_t trace = 0;
  };

  struct ClientConn {
    Socket* sock = nullptr;  // valid while the handler thread runs
    std::mutex write_mu;     // serializes direct (ack) writes with the writer
    /// Bounded outbound data queue (encoded kNotify payloads), drained by
    /// this connection's writer thread. Overflow drops the OLDEST frames
    /// (a consumer this far behind prefers fresh events); a single write
    /// stalling past GovernorConfig::write_stall_timeout disconnects.
    std::mutex q_mu;
    std::condition_variable q_cv;
    std::deque<QueuedFrame> outq;
    size_t outq_bytes = 0;
    bool writer_stop = false;
  };

  void accept_loop();
  void handle_connection(Socket sock);

  /// Queues one kNotify payload on `conn`, enforcing the per-connection
  /// byte/frame budgets (drop-oldest) and the global governor accounting.
  /// `trace` rides along for the outbound-queue stage histograms.
  void enqueue_notify(const std::shared_ptr<ClientConn>& conn,
                      std::vector<std::byte> payload, uint64_t trace);
  /// Per-connection writer: drains outq under the write deadline; a
  /// stalled or dead consumer is disconnected (slow-consumer policy).
  void writer_loop(std::shared_ptr<ClientConn> conn);

  /// Trace-span sink, shed-gated by the degradation ladder (rung >= 2
  /// drops spans instead of appending).
  void record_span(const obs::Span& sp);

  // Frame handlers; `conn` is this connection's shared write handle.
  void on_subscribe(Socket& s, const std::shared_ptr<ClientConn>& conn, const Frame& f,
                    std::vector<uint32_t>& owned_locals);
  void on_attach(Socket& s, const std::shared_ptr<ClientConn>& conn, const Frame& f,
                 std::vector<uint32_t>& owned_locals);
  void on_unsubscribe(Socket& s, ClientConn& conn, const Frame& f);
  void on_publish(Socket& s, ClientConn& conn, const Frame& f);
  void on_summary(Socket& s, ClientConn& conn, const Frame& f);
  void on_summary_delta(Socket& s, ClientConn& conn, const Frame& f);
  void on_summary_sync(Socket& s, ClientConn& conn, const Frame& f);
  void on_lease_renew(Socket& s, ClientConn& conn, const Frame& f);
  void on_event(Socket& s, ClientConn& conn, const Frame& f);
  void on_deliver(Socket& s, ClientConn& conn, const Frame& f);
  void on_trigger(Socket& s, ClientConn& conn, const Frame& f);
  void on_stats(Socket& s, ClientConn& conn, const Frame& f);
  void on_trace(Socket& s, ClientConn& conn, const Frame& f);
  void on_dump(Socket& s, ClientConn& conn, const Frame& f);
  void on_profile(Socket& s, ClientConn& conn, const Frame& f);

  /// One step of the BROCLI walk executed at this broker. Mutates the
  /// bitmap in `msg`, performs deliveries and the onward forward (both
  /// synchronous), then returns. Unreachable hops are marked in the bitmap
  /// and skipped; unreachable delivery owners are queued for redelivery.
  /// `frame_bytes` is the wire size of the kPublish/kEvent payload that
  /// carried the event; it sizes the recv span.
  void walk_step(EventMsg msg, size_t frame_bytes);

  /// Connects, sends, and awaits the ack, all under RpcPolicy deadlines,
  /// retrying with backoff. Throws PeerUnreachable once the retry budget
  /// is spent. `ack_timeout` overrides io_timeout for the ack wait (the
  /// kEvent ack covers the peer's whole downstream walk). Each successful
  /// round-trip lands in the per-peer latency histogram; each failed
  /// attempt bumps the per-peer retry counter and, when `trace` is
  /// nonzero, records a retry span.
  void send_to_peer_sync(overlay::BrokerId peer, MsgKind kind,
                         std::span<const std::byte> payload, MsgKind ack_kind,
                         std::optional<std::chrono::milliseconds> ack_timeout = {},
                         uint64_t trace = 0);

  /// Generalized peer RPC: like send_to_peer_sync but returns the ack
  /// frame, and any kind in `acceptable_acks` completes the call instead
  /// of triggering a retry. Lets the delta path treat a peer's kError
  /// (v3: unknown frame kind) as a negotiation signal rather than a fault.
  Frame rpc_to_peer(overlay::BrokerId peer, MsgKind kind,
                    std::span<const std::byte> payload,
                    std::initializer_list<MsgKind> acceptable_acks,
                    std::optional<std::chrono::milliseconds> ack_timeout = {},
                    uint64_t trace = 0);

  /// Shared full-image ingest for kSummary frames and kSummarySync acks:
  /// epoch anti-entropy, shadow refresh, merge, Merged_Brokers union.
  void ingest_full_summary(SummaryMsg msg);

  /// Period-boundary soft-state maintenance, run at trigger iteration 1:
  /// decrements and expires subscription leases, ages out silent peers'
  /// shadow images, and — when either (or a received delta's removals)
  /// dirtied the held state — rebuilds held_ as own-table rows plus the
  /// surviving shadow images.
  void begin_period();

  /// Anti-entropy pull: fetches `peer`'s full image over kSummarySync and
  /// ingests it. Called on a delta base/digest mismatch, BEFORE the delta
  /// ack goes out, so divergence heals within the same period.
  void sync_from_peer(overlay::BrokerId peer);

  /// Failed kDeliver payloads, re-tried at the start of each propagation
  /// period until their ttl expires (at-most-once: bounded, in-memory).
  struct PendingDelivery {
    overlay::BrokerId owner = 0;
    std::vector<std::byte> payload;  // encoded DeliverMsg
    int ttl = 8;                     // periods left before dropping
    uint64_t trace = 0;              // redeliver spans keep the causal chain
  };
  static constexpr size_t kMaxPendingDeliveries = 1024;  // oldest dropped beyond
  void queue_redelivery(PendingDelivery pd);
  void flush_pending_deliveries();

  /// Builds this period's announcement under `mu_`, choosing the eligible
  /// neighbor and full-vs-delta encoding; returns nullopt when there is
  /// nothing to send. The announced image rides along so the sender can
  /// install it as the peer's delta base once the ack lands.
  struct PendingSend {
    overlay::BrokerId to = 0;
    MsgKind kind = MsgKind::kSummary;
    std::vector<std::byte> payload;
    std::vector<model::SubId> removals;  // re-queued if the send fails
    core::SummaryImage image;            // the image this payload announces
    uint64_t version = 0;
    uint64_t digest = 0;
  };
  std::optional<PendingSend> prepare_summary_send(uint32_t iteration);

  /// Installs `send`'s image as the peer's delta base. Caller holds mu_.
  void record_last_sent_locked(PendingSend&& send, bool was_full);

  /// Compacts to a snapshot when the WAL has grown past the threshold.
  /// Caller must hold mu_. No-op for ephemeral brokers.
  void maybe_compact_locked();

  /// Epochs aligned with merged_brokers_ (own id -> epoch_). Under mu_.
  [[nodiscard]] std::vector<uint64_t> merged_epochs_locked() const;

  BrokerConfig cfg_;
  core::WireConfig wire_;
  Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;                // pairs with stop_cv_ for retry sleeps
  std::condition_variable stop_cv_;   // woken by stop(): bounded shutdown

  std::mutex threads_mu_;
  std::vector<std::thread> handlers_;
  std::vector<std::weak_ptr<ClientConn>> conns_;  // for shutdown on stop()

  /// Per-sender mirror of the last announced image: the base a delta from
  /// that sender applies to, and the unit of soft-state aging.
  struct PeerShadow {
    core::SummaryImage image;
    uint64_t version = 0;
    uint64_t digest = 0;
    uint32_t idle_periods = 0;  // periods since the sender last announced
  };
  /// Per-neighbor copy of the image we last announced (and the peer
  /// acked): the base the next outgoing delta is diffed against.
  struct LastSent {
    core::SummaryImage image;
    uint64_t version = 0;
    uint64_t digest = 0;
    uint32_t sends_since_full = 0;
  };
  /// Soft-state subscription lease, keyed by local id in leases_.
  struct Lease {
    uint32_t ttl = 0;        // periods granted per renewal
    uint32_t remaining = 0;  // periods left; expires when it hits 0
  };

  mutable std::mutex mu_;
  core::NaiveMatcher home_;                      // exact table, maps ids->subs
  core::BrokerSummary held_;                     // own + everything received
  std::vector<overlay::BrokerId> merged_brokers_;
  std::vector<model::SubId> pending_removals_;
  std::vector<char> communicated_;               // per neighbor id, this period
  std::map<overlay::BrokerId, PeerShadow> shadows_;  // guarded by mu_
  std::map<overlay::BrokerId, LastSent> last_sent_;  // guarded by mu_
  std::vector<char> peer_wants_full_;  // latched when a peer kErrors a delta (v3)
  bool held_dirty_ = false;       // rows were removed: rebuild at the boundary
  bool shadows_changed_ = false;  // a shadow image changed since the rebuild
  std::map<uint32_t, Lease> leases_;  // local id -> lease; guarded by mu_
  uint32_t next_local_ = 0;
  uint64_t publish_seq_ = 0;
  uint64_t period_seq_ = 0;  // propagation periods seen; guarded by mu_
  std::atomic<uint64_t> rpc_seq_{0};  // jitter seed stream for peer RPCs
  std::deque<PendingDelivery> pending_deliveries_;
  std::vector<uint16_t> peer_ports_;
  std::map<uint32_t, std::shared_ptr<ClientConn>> subscribers_;  // local c2 -> conn

  // Durability (null/0 when cfg_.data_dir is empty).
  std::unique_ptr<store::BrokerStore> store_;  // guarded by mu_
  uint64_t epoch_ = 0;                         // immutable after construction
  routing::EpochTable peer_epochs_;            // guarded by mu_
  RecoveryInfo recovery_;                      // immutable after construction

  // Telemetry (obs/). The registry owns the metrics; the raw pointers are
  // handles pre-registered in the constructor so hot paths never take the
  // registration lock. All internally synchronized.
  obs::MetricsRegistry metrics_;
  obs::TraceRing trace_ring_;
  obs::FlightRecorder flight_;  // black-box incident ring (ctor-initialized)
  obs::Logger log_;             // structured JSONL (kOff unless configured)
  obs::StageSet stages_;        // per-stage latency histograms w/ exemplars
  obs::Gauge* gauge_trace_dropped_ = nullptr;  // subsum_trace_spans_dropped_total
  core::QualityProbe probe_;          // shadow-sampled FP probe (quality.h)
  routing::WalkMetrics walk_metrics_;  // BROCLI walk-efficiency counters
  std::chrono::steady_clock::time_point started_at_;  // for subsum_uptime_seconds
  obs::Counter* ctr_publishes_ = nullptr;       // subsum_publishes_total
  obs::Counter* ctr_stale_ = nullptr;           // subsum_summary_stale_dropped_total
  obs::Counter* ctr_superseded_ = nullptr;      // subsum_summary_peer_superseded_total
  obs::Counter* ctr_compactions_ = nullptr;     // subsum_store_compactions_total
  obs::Counter* ctr_drop_ttl_ = nullptr;        // subsum_redelivery_dropped_ttl_total
  obs::Counter* ctr_drop_overflow_ = nullptr;   // subsum_redelivery_dropped_overflow_total
  obs::Gauge* gauge_redelivery_depth_ = nullptr;  // subsum_redelivery_queue_depth
  obs::Counter* ctr_lease_expired_ = nullptr;    // subsum_lease_expired_total
  obs::Counter* ctr_lease_renewals_ = nullptr;   // subsum_lease_renewals_total
  obs::Counter* ctr_delta_sends_ = nullptr;      // subsum_summary_delta_sends_total
  obs::Counter* ctr_full_sends_ = nullptr;       // subsum_summary_full_sends_total
  obs::Counter* ctr_delta_bytes_ = nullptr;      // subsum_summary_delta_bytes_total
  obs::Counter* ctr_full_bytes_ = nullptr;       // subsum_summary_full_bytes_total
  obs::Counter* ctr_delta_fallbacks_ = nullptr;  // subsum_summary_full_fallback_total
  obs::Counter* ctr_digest_mismatch_ = nullptr;  // subsum_summary_digest_mismatch_total
  obs::Counter* ctr_sync_requests_ = nullptr;    // subsum_summary_sync_total
  obs::Counter* ctr_shadow_expired_ = nullptr;   // subsum_summary_shadow_expired_total
  obs::Histogram* hist_match_ = nullptr;        // subsum_match_latency_us
  std::vector<obs::Histogram*> hist_peer_rpc_;  // subsum_peer_rpc_latency_us{peer="N"}
  std::vector<obs::Counter*> ctr_peer_retries_;  // subsum_peer_rpc_retries_total{peer="N"}

  // Overload protection (net/governor.h). The governor keeps its own
  // steady-clock timing and atomics, so policy is identical with telemetry
  // compiled out; the registry handles above only mirror its decisions.
  std::unique_ptr<Governor> governor_;
  obs::Counter* ctr_slow_disconnect_ = nullptr;  // subsum_slow_consumer_disconnects_total

  // Continuous profiling & resource attribution (obs/profiler.h,
  // obs/memacct.h). The byte ledger exists in both builds (it feeds
  // governor policy); only the gauge mirrors compile out.
  obs::MemAccount memacct_;
  obs::ProcessGauges procgauges_;
  bool profiler_started_ = false;  // this node armed the process profiler
  std::mutex scrape_mu_;           // guards the per-scrape delta state below
  obs::Counter* ctr_cpu_samples_[obs::kThreadRoleCount] = {};  // subsum_cpu_samples_total{thread_role}
  obs::FGauge* gauge_duty_[obs::kThreadRoleCount] = {};  // subsum_thread_duty_cycle{thread_role}
  uint64_t last_cpu_samples_[obs::kThreadRoleCount] = {};
  double last_cpu_sec_[obs::kThreadRoleCount] = {};
  std::chrono::steady_clock::time_point last_duty_scrape_{};
};

}  // namespace subsum::net
