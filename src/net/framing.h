// Length-prefixed message framing: u32 payload length (LE), u8 kind,
// payload bytes. The 64 MiB frame cap bounds memory against malformed or
// hostile peers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/socket.h"

namespace subsum::net {

enum class MsgKind : uint8_t {
  // client <-> broker
  kSubscribe = 1,
  kSubscribeAck = 2,
  kUnsubscribe = 3,
  kUnsubscribeAck = 4,
  kPublish = 5,
  kPublishAck = 6,
  kNotify = 7,
  kAttach = 8,  // re-bind recovered subscription ids after reconnect
  kAttachAck = 9,
  kLeaseRenew = 10,  // refresh the soft-state lease on owned subscriptions
  kLeaseRenewAck = 11,
  // broker <-> broker
  kSummary = 16,
  kSummaryAck = 17,
  kEvent = 18,  // BROCLI walk forward
  kEventAck = 19,
  kDeliver = 20,  // event + matched ids to the owner broker
  kDeliverAck = 21,
  kSummaryDelta = 22,  // v4: row edits against an (epoch, version) base
  kSummaryDeltaAck = 23,
  kSummarySync = 24,  // v4: anti-entropy repair — request a full image
  kSummarySyncAck = 25,
  // control plane
  kTrigger = 32,  // run propagation iteration i
  kTriggerAck = 33,
  kStats = 34,   // empty request; ack carries Prometheus text exposition
  kStatsAck = 35,
  kTrace = 36,   // TraceRequestMsg; ack carries recent spans (obs/trace.h)
  kTraceAck = 37,
  kDump = 38,    // empty request; ack carries a flight-recorder dump
  kDumpAck = 39,  //   (obs/flight_recorder.h file format, verbatim)
  kProfile = 40,  // ProfileRequestMsg: start/stop/fetch the CPU profiler
  kProfileAck = 41,  //   ack carries ProfileReplyMsg (folded stacks)
  kError = 63,
};

constexpr size_t kMaxFrameBytes = 64u << 20;

struct Frame {
  MsgKind kind = MsgKind::kError;
  std::vector<std::byte> payload;
};

/// Writes one frame; throws NetError.
void send_frame(Socket& s, MsgKind kind, std::span<const std::byte> payload);

/// Reads one frame. nullopt on clean EOF; throws NetError on malformed or
/// oversized frames.
std::optional<Frame> recv_frame(Socket& s);

}  // namespace subsum::net
