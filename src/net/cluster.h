// Spawns a whole broker network in one process: one BrokerNode per overlay
// node on ephemeral loopback ports, peer tables wired automatically. Also
// acts as the propagation controller, clocking Algorithm 2's iterations
// across the live TCP brokers.
#pragma once

#include <memory>
#include <vector>

#include "net/broker_node.h"
#include "net/client.h"

namespace subsum::net {

class Cluster {
 public:
  Cluster(const model::Schema& schema, const overlay::Graph& graph,
          core::GeneralizePolicy policy = core::GeneralizePolicy::kSafe);
  ~Cluster() { stop(); }

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] uint16_t port_of(overlay::BrokerId b) const { return nodes_.at(b)->port(); }
  [[nodiscard]] BrokerNode& node(overlay::BrokerId b) { return *nodes_.at(b); }

  /// New client connection to broker b.
  [[nodiscard]] std::unique_ptr<Client> connect(overlay::BrokerId b) const;

  /// Clocks one full propagation period: for i = 1..max_degree, triggers
  /// iteration i on every broker and barriers on the acks (each broker's
  /// summary send is synchronous, so the barrier gives exactly the paper's
  /// iteration semantics).
  void run_propagation_period();

  void stop();

 private:
  const model::Schema* schema_;
  overlay::Graph graph_;
  std::vector<std::unique_ptr<BrokerNode>> nodes_;
};

}  // namespace subsum::net
