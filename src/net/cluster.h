// Spawns a whole broker network in one process: one BrokerNode per overlay
// node on loopback ports, peer tables wired automatically. Also acts as
// the propagation controller, clocking Algorithm 2's iterations across the
// live TCP brokers.
//
// Fault tolerance: kill(b) stops a broker mid-run (its port is remembered)
// and restart(b) brings a fresh, empty broker back on the same port; the
// state-based summary sends re-heal its routing state over the following
// propagation periods. A propagation round skips unreachable brokers and
// reports them instead of aborting.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/broker_node.h"
#include "net/client.h"

namespace subsum::net {

/// Outcome of one propagation period under churn.
struct PropagationReport {
  /// Brokers that failed to take (or ack) at least one trigger this
  /// period, in first-failure order; live brokers completed the round.
  std::vector<overlay::BrokerId> unreachable;

  [[nodiscard]] bool complete() const noexcept { return unreachable.empty(); }
};

class Cluster {
 public:
  /// Per-broker configuration hook, applied to the generated BrokerConfig
  /// before the node starts (both initial construction and restarts).
  using ConfigTweak = std::function<void(BrokerConfig&)>;

  /// `data_dir`, when non-empty, makes every broker durable: broker b
  /// stores its WAL/snapshot/epoch under <data_dir>/broker-<b>, and
  /// restart(b) recovers from it instead of coming back empty.
  /// `tweak`, when set, customizes every broker's config (lease defaults,
  /// delta knobs, ...) at construction and on every restart.
  Cluster(const model::Schema& schema, const overlay::Graph& graph,
          core::GeneralizePolicy policy = core::GeneralizePolicy::kSafe,
          RpcPolicy rpc = {}, std::string data_dir = {}, ConfigTweak tweak = {});
  ~Cluster() { stop(); }

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] uint16_t port_of(overlay::BrokerId b) const { return ports_.at(b); }
  [[nodiscard]] BrokerNode& node(overlay::BrokerId b) { return *nodes_.at(b); }

  /// New client connection to broker b.
  [[nodiscard]] std::unique_ptr<Client> connect(overlay::BrokerId b,
                                                ClientOptions opts = {}) const;

  /// Clocks one full propagation period: for i = 1..max_degree, triggers
  /// iteration i on every broker and barriers on the acks (each broker's
  /// summary send is synchronous, so the barrier gives exactly the paper's
  /// iteration semantics). Unreachable brokers are skipped for the rest of
  /// the period and reported; the round continues for live brokers.
  PropagationReport run_propagation_period();

  /// Simulates a crash: stops broker b (connections reset, state lost).
  void kill(overlay::BrokerId b);

  /// Brings a killed broker back on its original port and re-wires peers.
  /// Without a cluster data_dir the broker returns empty (clients must
  /// reconnect and re-subscribe); with one, it crash-recovers its
  /// subscription set and summaries from disk, and reconnecting clients
  /// re-attach their existing subscriptions.
  ///
  /// `tweak`, when set, becomes broker b's persistent config override: it
  /// is applied (after the cluster-wide tweak) to this restart and every
  /// later one — e.g. shrink lease windows or force full-image
  /// announcements on a single node without rebuilding the cluster.
  void restart(overlay::BrokerId b, ConfigTweak tweak = {});

  [[nodiscard]] bool alive(overlay::BrokerId b) const { return !nodes_.at(b)->stopped(); }

  void stop();

 private:
  const model::Schema* schema_;
  overlay::Graph graph_;
  core::GeneralizePolicy policy_;
  RpcPolicy rpc_;
  std::string data_dir_;  // empty = ephemeral brokers
  ConfigTweak tweak_;     // cluster-wide; applied before per-node overrides
  [[nodiscard]] BrokerConfig make_config(overlay::BrokerId b) const;
  std::vector<uint16_t> ports_;  // fixed for the cluster's lifetime
  std::vector<std::unique_ptr<BrokerNode>> nodes_;
  std::vector<ConfigTweak> overrides_;  // per node, set by restart(b, tweak)
};

}  // namespace subsum::net
