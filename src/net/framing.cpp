#include "net/framing.h"

#include "util/bytes.h"

namespace subsum::net {

void send_frame(Socket& s, MsgKind kind, std::span<const std::byte> payload) {
  if (payload.size() > kMaxFrameBytes) throw NetError("frame too large to send");
  util::BufWriter w(5 + payload.size());
  w.put_u32(static_cast<uint32_t>(payload.size()));
  w.put_u8(static_cast<uint8_t>(kind));
  w.put_bytes(payload);
  s.send_all(w.bytes());
}

std::optional<Frame> recv_frame(Socket& s) {
  std::byte header[5];
  if (!s.recv_exact(header)) return std::nullopt;
  util::BufReader r(header);
  const uint32_t len = r.get_u32();
  const auto kind = static_cast<MsgKind>(r.get_u8());
  if (len > kMaxFrameBytes) throw NetError("frame exceeds size cap");
  Frame f;
  f.kind = kind;
  f.payload.resize(len);
  if (len > 0 && !s.recv_exact(f.payload)) {
    throw NetError("connection closed mid-frame");
  }
  return f;
}

}  // namespace subsum::net
