#include "net/cluster.h"

namespace subsum::net {

Cluster::Cluster(const model::Schema& schema, const overlay::Graph& graph,
                 core::GeneralizePolicy policy)
    : schema_(&schema), graph_(graph) {
  nodes_.reserve(graph_.size());
  for (overlay::BrokerId b = 0; b < graph_.size(); ++b) {
    BrokerConfig cfg;
    cfg.id = b;
    cfg.schema = schema;
    cfg.graph = graph_;
    cfg.policy = policy;
    nodes_.push_back(std::make_unique<BrokerNode>(std::move(cfg)));
  }
  std::vector<uint16_t> ports;
  ports.reserve(nodes_.size());
  for (const auto& n : nodes_) ports.push_back(n->port());
  for (const auto& n : nodes_) n->set_peer_ports(ports);
}

std::unique_ptr<Client> Cluster::connect(overlay::BrokerId b) const {
  return std::make_unique<Client>(nodes_.at(b)->port(), *schema_);
}

void Cluster::run_propagation_period() {
  const auto max_degree = static_cast<uint32_t>(graph_.max_degree());
  for (uint32_t it = 1; it <= max_degree; ++it) {
    // Trigger every broker; brokers whose degree != it ack immediately.
    for (const auto& n : nodes_) {
      Socket s = connect_local(n->port());
      send_frame(s, MsgKind::kTrigger, encode(TriggerMsg{it}));
      const auto ack = recv_frame(s);
      if (!ack || ack->kind != MsgKind::kTriggerAck) {
        throw NetError("broker failed to complete propagation iteration");
      }
    }
  }
}

void Cluster::stop() {
  for (const auto& n : nodes_) {
    if (n) n->stop();
  }
}

}  // namespace subsum::net
