#include "net/cluster.h"

#include <algorithm>

namespace subsum::net {

Cluster::Cluster(const model::Schema& schema, const overlay::Graph& graph,
                 core::GeneralizePolicy policy, RpcPolicy rpc, std::string data_dir,
                 ConfigTweak tweak)
    : schema_(&schema), graph_(graph), policy_(policy), rpc_(rpc),
      data_dir_(std::move(data_dir)), tweak_(std::move(tweak)) {
  overrides_.resize(graph_.size());
  nodes_.reserve(graph_.size());
  for (overlay::BrokerId b = 0; b < graph_.size(); ++b) {
    nodes_.push_back(std::make_unique<BrokerNode>(make_config(b)));
  }
  ports_.reserve(nodes_.size());
  for (const auto& n : nodes_) ports_.push_back(n->port());
  for (const auto& n : nodes_) n->set_peer_ports(ports_);
}

std::unique_ptr<Client> Cluster::connect(overlay::BrokerId b, ClientOptions opts) const {
  return std::make_unique<Client>(ports_.at(b), *schema_, opts);
}

PropagationReport Cluster::run_propagation_period() {
  PropagationReport report;
  std::vector<char> failed(nodes_.size(), 0);
  // A trigger ack can lag behind the broker's summary send plus its
  // redelivery flush, each paced by the backoff budget; size the wait
  // accordingly rather than one io_timeout.
  const auto ack_timeout = rpc_.io_timeout * 10 + std::chrono::seconds(1);
  const auto max_degree = static_cast<uint32_t>(graph_.max_degree());
  for (uint32_t it = 1; it <= max_degree; ++it) {
    for (overlay::BrokerId b = 0; b < nodes_.size(); ++b) {
      if (failed[b]) continue;  // already reported; skip for this period
      try {
        Socket s = connect_local(ports_[b], rpc_.connect_timeout);
        s.set_send_timeout(rpc_.io_timeout);
        s.set_recv_timeout(ack_timeout);
        send_frame(s, MsgKind::kTrigger, encode(TriggerMsg{it}));
        const auto ack = recv_frame(s);
        if (!ack || ack->kind != MsgKind::kTriggerAck) {
          throw NetError("trigger not acknowledged");
        }
      } catch (const NetError&) {
        // Report which broker failed and continue the round: the paper's
        // iteration semantics degrade gracefully (the broker simply sends
        // nothing this period; state-based resends cover it later).
        failed[b] = 1;
        report.unreachable.push_back(b);
      }
    }
  }
  return report;
}

void Cluster::kill(overlay::BrokerId b) { nodes_.at(b)->stop(); }

BrokerConfig Cluster::make_config(overlay::BrokerId b) const {
  BrokerConfig cfg;
  cfg.id = b;
  cfg.schema = *schema_;
  cfg.graph = graph_;
  cfg.policy = policy_;
  cfg.rpc = rpc_;
  if (!data_dir_.empty()) cfg.data_dir = data_dir_ + "/broker-" + std::to_string(b);
  if (tweak_) tweak_(cfg);
  if (b < overrides_.size() && overrides_[b]) overrides_[b](cfg);
  return cfg;
}

void Cluster::restart(overlay::BrokerId b, ConfigTweak tweak) {
  if (tweak) overrides_.at(b) = std::move(tweak);
  if (alive(b)) return;
  nodes_.at(b).reset();  // release the old port before rebinding
  BrokerConfig cfg = make_config(b);
  cfg.port = ports_.at(b);
  nodes_.at(b) = std::make_unique<BrokerNode>(std::move(cfg));
  nodes_.at(b)->set_peer_ports(ports_);
}

void Cluster::stop() {
  for (const auto& n : nodes_) {
    if (n) n->stop();
  }
}

}  // namespace subsum::net
