#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace subsum::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

void set_sock_timeout(int fd, int opt, std::chrono::milliseconds d, const char* what) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(d.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((d.count() % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof tv) < 0) throw_errno(what);
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::set_send_timeout(std::chrono::milliseconds d) {
  set_sock_timeout(fd_, SO_SNDTIMEO, d, "setsockopt(SO_SNDTIMEO)");
}

void Socket::set_recv_timeout(std::chrono::milliseconds d) {
  set_sock_timeout(fd_, SO_RCVTIMEO, d, "setsockopt(SO_RCVTIMEO)");
}

void Socket::set_recv_buffer(size_t bytes) {
  const int v = static_cast<int>(bytes);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &v, sizeof v) < 0) {
    throw_errno("setsockopt(SO_RCVBUF)");
  }
}

void Socket::set_send_buffer(size_t bytes) {
  const int v = static_cast<int>(bytes);
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &v, sizeof v) < 0) {
    throw_errno("setsockopt(SO_SNDBUF)");
  }
}

void Socket::send_all(std::span<const std::byte> data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) throw NetTimeout("send timed out");
      throw_errno("send");
    }
    sent += static_cast<size_t>(n);
  }
}

bool Socket::recv_exact(std::span<std::byte> data) {
  size_t got = 0;
  while (got < data.size()) {
    const ssize_t n = ::recv(fd_, data.data() + got, data.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) throw NetTimeout("recv timed out");
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF between messages
      throw NetError("connection closed mid-message");
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

size_t Socket::recv_some(std::span<std::byte> data) {
  for (;;) {
    const ssize_t n = ::recv(fd_, data.data(), data.size(), 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) throw NetTimeout("recv timed out");
    throw_errno("recv");
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    throw_errno("bind");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    throw_errno("listen");
  }
  fd_.store(fd);
}

std::optional<Socket> Listener::accept() {
  while (true) {
    const int lfd = fd_.load();
    if (lfd < 0) return std::nullopt;  // already closed
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return std::nullopt;  // listener closed (EBADF/EINVAL) or fatal
  }
}

void Listener::close() noexcept {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() unblocks a concurrent accept() reliably on Linux.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Socket connect_local(uint16_t port, std::chrono::milliseconds timeout) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket s(fd);  // owns fd from here on
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  if (timeout.count() <= 0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
      throw_errno("connect");
    }
  } else {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) throw_errno("fcntl");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
      if (errno != EINPROGRESS) throw_errno("connect");
      pollfd pfd{fd, POLLOUT, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) throw_errno("poll");
      if (rc == 0) throw NetTimeout("connect timed out");
      int err = 0;
      socklen_t len = sizeof err;
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) throw_errno("getsockopt");
      if (err != 0) {
        errno = err;
        throw_errno("connect");
      }
    }
    if (::fcntl(fd, F_SETFL, flags) < 0) throw_errno("fcntl");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return s;
}

}  // namespace subsum::net
