#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace subsum::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::send_all(std::span<const std::byte> data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<size_t>(n);
  }
}

bool Socket::recv_exact(std::span<std::byte> data) {
  size_t got = 0;
  while (got < data.size()) {
    const ssize_t n = ::recv(fd_, data.data() + got, data.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF between messages
      throw NetError("connection closed mid-message");
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw_errno("bind");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd_, 64) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw_errno("listen");
  }
}

std::optional<Socket> Listener::accept() {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return std::nullopt;  // listener closed (EBADF/EINVAL) or fatal
  }
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    // shutdown() unblocks a concurrent accept() reliably on Linux.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_local(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    throw_errno("connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

}  // namespace subsum::net
