// Minimal RAII TCP sockets over IPv4 loopback. Blocking I/O with optional
// per-call deadlines; every error surfaces as NetError (timeouts as the
// NetTimeout subclass). Enough to run a real multi-broker deployment on one
// machine (the paper's evaluation scale) without external dependencies.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

namespace subsum::net {

class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// A deadline expired (connect, send, or recv). Distinct from other
/// NetErrors so callers can tell a stalled peer from a dead one.
class NetTimeout : public NetError {
 public:
  explicit NetTimeout(const std::string& what) : NetError(what) {}
};

/// A connected TCP socket (move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();

  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Deadline for each subsequent send/recv syscall (SO_SNDTIMEO /
  /// SO_RCVTIMEO); zero disables. An expired deadline throws NetTimeout.
  void set_send_timeout(std::chrono::milliseconds d);
  void set_recv_timeout(std::chrono::milliseconds d);
  void set_io_timeout(std::chrono::milliseconds d) {
    set_send_timeout(d);
    set_recv_timeout(d);
  }

  /// Clamps SO_RCVBUF (disables receive autotuning). Backpressure tests use
  /// this to bound how much a non-reading peer's kernel will absorb — with
  /// default autotuning, loopback swallows many MB before a writer blocks.
  void set_recv_buffer(size_t bytes);

  /// Clamps SO_SNDBUF (disables send autotuning). The broker applies this
  /// to accepted connections so a stalled consumer backpressures the
  /// user-space queue instead of parking megabytes in the kernel.
  void set_send_buffer(size_t bytes);

  /// Writes the whole buffer; throws NetError on failure.
  void send_all(std::span<const std::byte> data);

  /// Reads exactly data.size() bytes. Returns false on clean EOF at a
  /// message boundary (nothing read); throws NetError on partial reads or
  /// errors.
  bool recv_exact(std::span<std::byte> data);

  /// Reads up to data.size() bytes; returns 0 on EOF. Throws NetError.
  size_t recv_some(std::span<std::byte> data);

  /// Half-closes the write side (wakes a blocked reader on the peer).
  void shutdown_both() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1. Port 0 picks an ephemeral port.
/// close() may race a blocked accept() from another thread, so the fd is
/// atomic (close exchanges it out exactly once).
class Listener {
 public:
  explicit Listener(uint16_t port);
  ~Listener() { close(); }

  Listener(Listener&& o) noexcept
      : fd_(o.fd_.exchange(-1)), port_(o.port_) {}
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener& operator=(Listener&&) = delete;

  [[nodiscard]] uint16_t port() const noexcept { return port_; }

  /// Blocks for the next connection; nullopt once the listener was closed.
  std::optional<Socket> accept();

  /// Unblocks accept() from another thread.
  void close() noexcept;

 private:
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port; throws NetError on failure. A non-zero
/// timeout bounds the connect itself (non-blocking connect + poll) and
/// throws NetTimeout when it expires; zero blocks indefinitely.
Socket connect_local(uint16_t port, std::chrono::milliseconds timeout = {});

}  // namespace subsum::net
