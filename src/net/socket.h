// Minimal RAII TCP sockets over IPv4 loopback. Blocking I/O; every error
// surfaces as NetError. Enough to run a real multi-broker deployment on one
// machine (the paper's evaluation scale) without external dependencies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

namespace subsum::net {

class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// A connected TCP socket (move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();

  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Writes the whole buffer; throws NetError on failure.
  void send_all(std::span<const std::byte> data);

  /// Reads exactly data.size() bytes. Returns false on clean EOF at a
  /// message boundary (nothing read); throws NetError on partial reads or
  /// errors.
  bool recv_exact(std::span<std::byte> data);

  /// Half-closes the write side (wakes a blocked reader on the peer).
  void shutdown_both() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1. Port 0 picks an ephemeral port.
class Listener {
 public:
  explicit Listener(uint16_t port);
  ~Listener() { close(); }

  Listener(Listener&& o) noexcept : fd_(o.fd_), port_(o.port_) { o.fd_ = -1; }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener& operator=(Listener&&) = delete;

  [[nodiscard]] uint16_t port() const noexcept { return port_; }

  /// Blocks for the next connection; nullopt once the listener was closed.
  std::optional<Socket> accept();

  /// Unblocks accept() from another thread.
  void close() noexcept;

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port; throws NetError on failure.
Socket connect_local(uint16_t port);

}  // namespace subsum::net
