#include "net/governor.h"

#include <algorithm>

namespace subsum::net {

// --- TokenBucket -------------------------------------------------------------

TokenBucket::TokenBucket(uint64_t rate_per_sec, uint64_t burst) noexcept
    : rate_(rate_per_sec),
      capacity_((burst > 0 ? burst : rate_per_sec) * 1'000'000),
      micro_tokens_(capacity_) {}

bool TokenBucket::try_acquire(uint64_t now_us, uint64_t* retry_after_ms) noexcept {
  if (rate_ == 0) return true;
  std::lock_guard lk(mu_);
  if (now_us > last_us_) {
    // Accrual: `rate_` micro-tokens per µs (= rate_ tokens per second).
    // The elapsed span is clamped to the time that fills an empty bucket —
    // any longer interval fills it to capacity anyway — which bounds the
    // multiply against uint64 overflow (the first call sees last_us_ == 0
    // against a since-boot steady-clock timestamp).
    const uint64_t fill_us = capacity_ / rate_ + 1;
    const uint64_t elapsed = std::min(now_us - last_us_, fill_us);
    micro_tokens_ = std::min(capacity_, micro_tokens_ + elapsed * rate_);
    last_us_ = now_us;
  }
  if (micro_tokens_ >= 1'000'000) {
    micro_tokens_ -= 1'000'000;
    return true;
  }
  if (retry_after_ms) {
    const uint64_t deficit = 1'000'000 - micro_tokens_;
    const uint64_t wait_us = (deficit + rate_ - 1) / rate_;
    *retry_after_ms = std::max<uint64_t>(1, (wait_us + 999) / 1000);
  }
  return false;
}

// --- CircuitBreaker ----------------------------------------------------------

CircuitBreaker::CircuitBreaker(uint32_t open_after,
                               std::chrono::milliseconds cooldown) noexcept
    : open_after_(open_after),
      cooldown_us_(static_cast<uint64_t>(std::max<int64_t>(0, cooldown.count())) * 1000) {}

bool CircuitBreaker::allow(uint64_t now_us) noexcept {
  if (open_after_ == 0) return true;
  std::lock_guard lk(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_us - opened_at_us_ < cooldown_us_) return false;
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::on_success() noexcept {
  if (open_after_ == 0) return;
  std::lock_guard lk(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::on_failure(uint64_t now_us) noexcept {
  if (open_after_ == 0) return;
  std::lock_guard lk(mu_);
  probe_in_flight_ = false;
  if (state_ == State::kHalfOpen) {
    // The probe failed: straight back to open, cooldown restarted.
    state_ = State::kOpen;
    opened_at_us_ = now_us;
    return;
  }
  if (++consecutive_failures_ >= open_after_) {
    state_ = State::kOpen;
    opened_at_us_ = now_us;
  }
}

CircuitBreaker::State CircuitBreaker::state() const noexcept {
  std::lock_guard lk(mu_);
  return state_;
}

// --- Governor ----------------------------------------------------------------

namespace {
constexpr const char* kShedClassNames[6] = {"probe",  "trace",  "redelivery",
                                            "publish", "notify", "control"};
}  // namespace

Governor::Governor(GovernorConfig cfg, size_t peers, obs::MetricsRegistry& m)
    : cfg_(cfg), publish_bucket_(cfg.publish_rate_per_sec, cfg.publish_burst) {
  breakers_.reserve(peers);
  for (size_t i = 0; i < peers; ++i) {
    breakers_.push_back(
        std::make_unique<CircuitBreaker>(cfg_.breaker_open_after, cfg_.breaker_cooldown));
  }
  gauge_rung_ = m.gauge("subsum_health_rung");
  gauge_usage_ = m.gauge("subsum_outbound_usage_bytes");
  gauge_ladder_ = m.gauge("subsum_governor_memory_bytes");
  gauge_budget_ = m.gauge("subsum_memory_budget_bytes");
  gauge_budget_->set(static_cast<int64_t>(cfg_.memory_budget_bytes));
  for (size_t c = 0; c < 6; ++c) {
    ctr_shed_[c] = m.counter(obs::labeled("subsum_shed_total", "class", kShedClassNames[c]));
  }
  ctr_rejected_publish_ = m.counter("subsum_governor_rejected_publishes_total");
  ctr_rejected_subscribe_ = m.counter("subsum_governor_rejected_subscribes_total");
  ctr_rejected_connection_ = m.counter("subsum_governor_rejected_connections_total");
  ctr_breaker_fastfail_ = m.counter("subsum_circuit_fastfail_total");
  hist_queue_depth_ = m.histogram("subsum_outbound_queue_depth");
  hist_queue_bytes_ = m.histogram("subsum_outbound_queue_bytes");
  gauge_breaker_.resize(peers);
  for (size_t b = 0; b < peers; ++b) {
    gauge_breaker_[b] =
        m.gauge(obs::labeled("subsum_peer_circuit_state", "peer", std::to_string(b)));
  }
  last_breaker_ = std::make_unique<std::atomic<uint8_t>[]>(peers);
}

void Governor::set_observer(obs::FlightRecorder* flight, obs::Logger* log) noexcept {
  flight_ = flight;
  log_ = log;
}

uint64_t Governor::steady_now_us() noexcept {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

int Governor::rung() const noexcept {
  if (cfg_.memory_budget_bytes == 0) return 0;
  // Queue bytes (the add_usage/sub_usage stream) PLUS the injected
  // per-component accounting: the ladder reacts to the broker's measured
  // memory, not just what it has queued for slow consumers.
  const auto used = ladder_bytes();
  // Integer thresholds of usage/budget: 50% / 65% / 80% / 95%.
  const uint64_t pct = used * 100 / cfg_.memory_budget_bytes;
  if (pct >= 95) return 4;
  if (pct >= 80) return 3;
  if (pct >= 65) return 2;
  if (pct >= 50) return 1;
  return 0;
}

bool Governor::shedding(Shed c) const noexcept {
  switch (c) {
    case Shed::kProbe:
      return rung() >= 1;
    case Shed::kTrace:
      return rung() >= 2;
    case Shed::kRedelivery:
      return rung() >= 3;
    case Shed::kPublish:
      return rung() >= 4;
    case Shed::kNotify:   // per-connection drop-oldest, not a ladder rung
    case Shed::kControl:  // never shed, by design
      return false;
  }
  return false;
}

void Governor::count_shed(Shed c) noexcept {
  const auto i = static_cast<size_t>(c);
  shed_counts_[i].fetch_add(1, std::memory_order_relaxed);
  ctr_shed_[i]->inc();
}

uint64_t Governor::shed_count(Shed c) const noexcept {
  return shed_counts_[static_cast<size_t>(c)].load(std::memory_order_relaxed);
}

void Governor::add_usage(size_t bytes) noexcept {
  const uint64_t now = usage_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_bytes_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  gauge_usage_->set(static_cast<int64_t>(now));
  gauge_ladder_->set(static_cast<int64_t>(ladder_bytes()));
  refresh_rung_gauge();
}

void Governor::sub_usage(size_t bytes) noexcept {
  const uint64_t now = usage_bytes_.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
  gauge_usage_->set(static_cast<int64_t>(now));
  gauge_ladder_->set(static_cast<int64_t>(ladder_bytes()));
  refresh_rung_gauge();
}

void Governor::set_external_bytes(uint64_t bytes) noexcept {
  external_bytes_.store(bytes, std::memory_order_relaxed);
  gauge_ladder_->set(static_cast<int64_t>(ladder_bytes()));
  refresh_rung_gauge();
}

void Governor::observe_queue(size_t depth, size_t bytes) noexcept {
  hist_queue_depth_->observe(depth);
  hist_queue_bytes_->observe(bytes);
}

void Governor::refresh_rung_gauge() noexcept {
  const int r = rung();
  gauge_rung_->set(r);
  // Edge-detect rung transitions for the flight recorder: the CAS makes
  // exactly one racing accountant own each transition.
  int prev = last_rung_.load(std::memory_order_relaxed);
  if (r != prev &&
      last_rung_.compare_exchange_strong(prev, r, std::memory_order_relaxed)) {
    const auto used = ladder_bytes();
    if (flight_ != nullptr) {
      flight_->record(obs::FrKind::kRungChange, static_cast<uint32_t>(prev),
                      static_cast<uint32_t>(r), used);
    }
    if (log_ != nullptr && log_->enabled(obs::LogLevel::kWarn)) {
      log_->log(obs::LogLevel::kWarn, "governor", "degradation rung change", 0,
                {{"old", prev},
                 {"new", r},
                 {"usage_bytes", static_cast<int64_t>(used)}});
    }
  }
}

Governor::Admission Governor::admit_publish() noexcept {
  if (shedding(Shed::kPublish)) {
    count_shed(Shed::kPublish);
    ctr_rejected_publish_->inc();
    return {false, true, retry_after_hint()};
  }
  uint64_t wait_ms = 0;
  if (!publish_bucket_.try_acquire(steady_now_us(), &wait_ms)) {
    ctr_rejected_publish_->inc();
    return {false, false, static_cast<uint32_t>(std::min<uint64_t>(wait_ms, UINT32_MAX))};
  }
  return {true, false, 0};
}

bool Governor::admit_subscription(uint64_t current) const noexcept {
  return cfg_.max_subscriptions == 0 || current < cfg_.max_subscriptions;
}

void Governor::count_rejected_subscription() noexcept { ctr_rejected_subscribe_->inc(); }

bool Governor::try_acquire_connection() noexcept {
  for (;;) {
    uint64_t cur = connections_.load(std::memory_order_relaxed);
    if (cfg_.max_connections != 0 && cur >= cfg_.max_connections) {
      ctr_rejected_connection_->inc();
      return false;
    }
    if (connections_.compare_exchange_weak(cur, cur + 1, std::memory_order_relaxed)) {
      return true;
    }
  }
}

void Governor::release_connection() noexcept {
  connections_.fetch_sub(1, std::memory_order_relaxed);
}

bool Governor::breaker_allow(overlay::BrokerId peer) noexcept {
  if (peer >= breakers_.size()) return true;
  const bool ok = breakers_[peer]->allow(steady_now_us());
  if (!ok) {
    fastfails_.fetch_add(1, std::memory_order_relaxed);
    ctr_breaker_fastfail_->inc();
  }
  set_breaker_gauge(peer);
  return ok;
}

void Governor::breaker_success(overlay::BrokerId peer) noexcept {
  if (peer >= breakers_.size()) return;
  breakers_[peer]->on_success();
  set_breaker_gauge(peer);
}

void Governor::breaker_failure(overlay::BrokerId peer) noexcept {
  if (peer >= breakers_.size()) return;
  breakers_[peer]->on_failure(steady_now_us());
  set_breaker_gauge(peer);
}

CircuitBreaker::State Governor::breaker_state(overlay::BrokerId peer) const noexcept {
  if (peer >= breakers_.size()) return CircuitBreaker::State::kClosed;
  return breakers_[peer]->state();
}

uint64_t Governor::breaker_fastfails() const noexcept {
  return fastfails_.load(std::memory_order_relaxed);
}

void Governor::set_breaker_gauge(overlay::BrokerId peer) noexcept {
  const auto st = static_cast<uint8_t>(breakers_[peer]->state());
  gauge_breaker_[peer]->set(st);
  uint8_t prev = last_breaker_[peer].load(std::memory_order_relaxed);
  if (st != prev &&
      last_breaker_[peer].compare_exchange_strong(prev, st, std::memory_order_relaxed)) {
    if (flight_ != nullptr) {
      flight_->record(obs::FrKind::kBreakerFlip, peer, st, prev);
    }
    if (log_ != nullptr && log_->enabled(obs::LogLevel::kWarn)) {
      log_->log(obs::LogLevel::kWarn, "governor", "peer circuit breaker flip", 0,
                {{"peer", peer}, {"old", prev}, {"new", st}});
    }
  }
}

}  // namespace subsum::net
