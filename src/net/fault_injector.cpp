#include "net/fault_injector.h"

#include <algorithm>

namespace subsum::net {

FaultInjector::FaultInjector(uint16_t target_port)
    : target_port_(target_port), listener_(0) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

FaultInjector::~FaultInjector() { stop(); }

void FaultInjector::accept_loop() {
  while (!stopping_) {
    auto down = listener_.accept();
    if (!down) break;
    if (mode_.load() == Mode::kDrop) continue;  // Socket dtor closes: refused service
    Socket up;
    try {
      up = connect_local(target_port_, std::chrono::milliseconds(1000));
    } catch (const NetError&) {
      continue;  // target gone: client sees an immediate close
    }
    auto conn = std::make_shared<Conn>();
    conn->down = std::move(*down);
    conn->up = std::move(up);
    std::lock_guard lk(mu_);
    if (stopping_) break;
    std::erase_if(conns_, [](const std::weak_ptr<Conn>& w) { return w.expired(); });
    conns_.push_back(conn);
    threads_.emplace_back([this, conn] { pump(conn, /*upstream=*/true); });
    threads_.emplace_back([this, conn] { pump(conn, /*upstream=*/false); });
  }
}

void FaultInjector::pump(const std::shared_ptr<Conn>& conn, bool upstream) {
  Socket& src = upstream ? conn->down : conn->up;
  Socket& dst = upstream ? conn->up : conn->down;
  std::byte buf[4096];
  try {
    for (;;) {
      const size_t n = src.recv_some(buf);
      if (n == 0) break;
      switch (mode_.load()) {
        case Mode::kBlackhole:
          continue;  // swallow silently, in both directions
        case Mode::kDelay:
          std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_.load()));
          break;
        case Mode::kTruncate:
          if (upstream) {
            const size_t limit = truncate_after_.load();
            const size_t already = conn->sent_up.load();
            const size_t allowed = already < limit ? limit - already : 0;
            if (allowed < n) {
              if (allowed > 0) {
                dst.send_all(std::span(buf, allowed));
                conn->sent_up.fetch_add(allowed);
                forwarded_.fetch_add(allowed);
              }
              conn->down.shutdown_both();
              conn->up.shutdown_both();
              return;
            }
          }
          break;
        default:
          break;
      }
      dst.send_all(std::span(buf, n));
      if (upstream) {
        conn->sent_up.fetch_add(n);
        forwarded_.fetch_add(n);
      }
    }
  } catch (const NetError&) {
    // Fall through: a failed pump tears the pair down.
  }
  // Half-close the forward direction so the peer sees EOF; the opposite
  // pump keeps draining until its own EOF.
  src.shutdown_both();
  dst.shutdown_both();
}

void FaultInjector::sever_connections() {
  std::lock_guard lk(mu_);
  for (auto& weak : conns_) {
    if (auto conn = weak.lock()) {
      conn->down.shutdown_both();
      conn->up.shutdown_both();
    }
  }
}

void FaultInjector::stop() {
  if (stopping_.exchange(true)) return;
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard lk(mu_);
    threads.swap(threads_);
    for (auto& weak : conns_) {
      if (auto conn = weak.lock()) {
        conn->down.shutdown_both();
        conn->up.shutdown_both();
      }
    }
    conns_.clear();
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace subsum::net
