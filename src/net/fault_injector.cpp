#include "net/fault_injector.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace subsum::net {

uint64_t FaultInjector::now_us() noexcept {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void FaultInjector::stall_reads(std::chrono::milliseconds d) noexcept {
  stall_until_us_.store(now_us() + static_cast<uint64_t>(std::max<int64_t>(0, d.count())) * 1000);
}

bool FaultInjector::stalled() const noexcept { return now_us() < stall_until_us_.load(); }

FaultInjector::FaultInjector(uint16_t target_port)
    : target_port_(target_port), listener_(0) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

FaultInjector::~FaultInjector() { stop(); }

void FaultInjector::accept_loop() {
  while (!stopping_) {
    auto down = listener_.accept();
    if (!down) break;
    if (mode_.load() == Mode::kDrop) continue;  // Socket dtor closes: refused service
    Socket up;
    try {
      up = connect_local(target_port_, std::chrono::milliseconds(1000));
    } catch (const NetError&) {
      continue;  // target gone: client sees an immediate close
    }
    auto conn = std::make_shared<Conn>();
    conn->down = std::move(*down);
    conn->up = std::move(up);
    // Clamp both receive windows so a stall window produces backpressure
    // after tens of KB, not the many MB kernel autotuning would absorb on
    // loopback. Harmless for the other modes: the pumps read actively.
    try {
      conn->down.set_recv_buffer(64u << 10);
      conn->up.set_recv_buffer(64u << 10);
    } catch (const NetError&) {
    }
    std::lock_guard lk(mu_);
    if (stopping_) break;
    std::erase_if(conns_, [](const std::weak_ptr<Conn>& w) { return w.expired(); });
    conns_.push_back(conn);
    threads_.emplace_back([this, conn] { pump(conn, /*upstream=*/true); });
    threads_.emplace_back([this, conn] { pump(conn, /*upstream=*/false); });
  }
}

void FaultInjector::pump(const std::shared_ptr<Conn>& conn, bool upstream) {
  Socket& src = upstream ? conn->down : conn->up;
  Socket& dst = upstream ? conn->up : conn->down;
  const size_t dir = upstream ? 0 : 1;
  std::byte buf[4096];
  try {
    for (;;) {
      const size_t n = src.recv_some(buf);
      if (n == 0) break;
      // A stall window holds this chunk and stops further reads: bytes
      // pile up in the kernel until the writer into this path blocks —
      // real backpressure, not a simulated drop. Checked after recv
      // because a pump parked in recv_some when the stall starts still
      // wakes with the first chunk; it must not forward it early. Sliced
      // sleeps keep stop() responsive.
      while (!stopping_ && now_us() < stall_until_us_.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (stopping_) break;
      switch (mode_.load()) {
        case Mode::kBlackhole:
          continue;  // swallow silently, in both directions
        case Mode::kDelay:
          std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_.load()));
          break;
        case Mode::kThrottle: {
          // Pace so that cumulative forwarded bytes track bytes_per_sec,
          // with optional seeded per-chunk jitter (deterministic given the
          // seed and the chunk sequence).
          if (conn->pace_start_us[dir] == 0) {
            conn->pace_start_us[dir] = now_us();
            conn->pace_rng[dir] = util::Rng(seed_.load() ^ (dir + 1));
          }
          conn->paced_bytes[dir] += n;
          const uint64_t bps = throttle_bps_.load();
          uint64_t target_us = conn->paced_bytes[dir] * 1'000'000 / bps;
          if (seed_.load() != 0) {
            // ±25% of this chunk's nominal duration.
            const uint64_t chunk_us = n * 1'000'000 / bps;
            const uint64_t span = chunk_us / 2;
            if (span > 0) {
              target_us += conn->pace_rng[dir].below(span + 1);
              target_us -= span / 2;
            }
          }
          const uint64_t deadline = conn->pace_start_us[dir] + target_us;
          while (!stopping_ && now_us() < deadline) {
            const uint64_t left = deadline - now_us();
            std::this_thread::sleep_for(
                std::chrono::microseconds(std::min<uint64_t>(left, 10'000)));
          }
          break;
        }
        case Mode::kTruncate:
          if (upstream) {
            const size_t limit = truncate_after_.load();
            const size_t already = conn->sent_up.load();
            const size_t allowed = already < limit ? limit - already : 0;
            if (allowed < n) {
              if (allowed > 0) {
                dst.send_all(std::span(buf, allowed));
                conn->sent_up.fetch_add(allowed);
                forwarded_.fetch_add(allowed);
              }
              conn->down.shutdown_both();
              conn->up.shutdown_both();
              return;
            }
          }
          break;
        default:
          break;
      }
      dst.send_all(std::span(buf, n));
      if (upstream) {
        conn->sent_up.fetch_add(n);
        forwarded_.fetch_add(n);
      }
    }
  } catch (const NetError&) {
    // Fall through: a failed pump tears the pair down.
  }
  // Half-close the forward direction so the peer sees EOF; the opposite
  // pump keeps draining until its own EOF.
  src.shutdown_both();
  dst.shutdown_both();
}

void FaultInjector::sever_connections() {
  std::lock_guard lk(mu_);
  for (auto& weak : conns_) {
    if (auto conn = weak.lock()) {
      conn->down.shutdown_both();
      conn->up.shutdown_both();
    }
  }
}

void FaultInjector::stop() {
  if (stopping_.exchange(true)) return;
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard lk(mu_);
    threads.swap(threads_);
    for (auto& weak : conns_) {
      if (auto conn = weak.lock()) {
        conn->down.shutdown_both();
        conn->up.shutdown_both();
      }
    }
    conns_.clear();
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace subsum::net
