#include "net/protocol.h"

#include <algorithm>

namespace subsum::net {

using model::AttrType;
using model::Value;

void put_value(util::BufWriter& w, const Value& v) {
  switch (v.type()) {
    case AttrType::kInt:
      w.put_i64(v.as_int());
      break;
    case AttrType::kFloat:
      w.put_f64(v.as_float());
      break;
    case AttrType::kString:
      w.put_string(v.as_string());
      break;
  }
}

Value get_value(util::BufReader& r, AttrType type) {
  switch (type) {
    case AttrType::kInt:
      return Value(r.get_i64());
    case AttrType::kFloat:
      return Value(r.get_f64());
    case AttrType::kString:
      return Value(r.get_string());
  }
  throw util::DecodeError("bad attribute type");
}

void put_event(util::BufWriter& w, const model::Event& e) {
  w.put_varint(e.attrs().size());
  for (const auto& a : e.attrs()) {
    w.put_varint(a.attr);
    put_value(w, a.value);
  }
}

model::Event get_event(util::BufReader& r, const model::Schema& schema) {
  const uint64_t n = r.get_varint();
  std::vector<model::EventAttr> attrs;
  attrs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const auto id = static_cast<model::AttrId>(r.get_varint());
    if (id >= schema.attr_count()) throw util::DecodeError("event attribute id out of range");
    attrs.push_back({id, get_value(r, schema.type_of(id))});
  }
  return model::Event(schema, std::move(attrs));
}

void put_subscription(util::BufWriter& w, const model::Subscription& s) {
  w.put_varint(s.constraints().size());
  for (const auto& c : s.constraints()) {
    w.put_varint(c.attr);
    w.put_u8(static_cast<uint8_t>(c.op));
    put_value(w, c.operand);
  }
}

model::Subscription get_subscription(util::BufReader& r, const model::Schema& schema) {
  const uint64_t n = r.get_varint();
  std::vector<model::Constraint> cs;
  cs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const auto id = static_cast<model::AttrId>(r.get_varint());
    if (id >= schema.attr_count()) throw util::DecodeError("constraint attribute out of range");
    const auto op = static_cast<model::Op>(r.get_u8());
    const AttrType t = schema.type_of(id);
    const AttrType operand_type =
        model::op_valid_for(op, t) ? t : AttrType::kString;  // validation below rejects
    cs.push_back({id, op, get_value(r, operand_type)});
  }
  return model::Subscription(schema, std::move(cs));  // validates ops/types
}

void put_sub_id(util::BufWriter& w, const model::SubId& id) {
  w.put_u32(id.broker);
  w.put_u32(id.local);
  w.put_varint(id.attrs);
}

model::SubId get_sub_id(util::BufReader& r) {
  model::SubId id;
  id.broker = r.get_u32();
  id.local = r.get_u32();
  id.attrs = r.get_varint();
  return id;
}

namespace {

void put_sub_ids(util::BufWriter& w, const std::vector<model::SubId>& ids) {
  w.put_varint(ids.size());
  for (const auto& id : ids) put_sub_id(w, id);
}

std::vector<model::SubId> get_sub_ids(util::BufReader& r) {
  const uint64_t n = r.get_varint();
  std::vector<model::SubId> ids;
  ids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) ids.push_back(get_sub_id(r));
  return ids;
}

}  // namespace

std::vector<std::byte> encode(const SubscribeAckMsg& m) {
  util::BufWriter w;
  put_sub_id(w, m.id);
  return std::move(w).take();
}

SubscribeAckMsg decode_subscribe_ack(std::span<const std::byte> b) {
  util::BufReader r(b);
  return {get_sub_id(r)};
}

std::vector<std::byte> encode(const ErrorMsg& m) {
  util::BufWriter w;
  w.put_u8(m.code);
  w.put_varint(m.retry_after_ms);
  return std::move(w).take();
}

ErrorMsg decode_error_msg(std::span<const std::byte> b) {
  // Tolerant by design: kError long predates this payload, so anything a
  // pre-governor peer sends (empty) — or a truncation — reads as generic.
  ErrorMsg m;
  try {
    util::BufReader r(b);
    if (r.done()) return m;
    m.code = r.get_u8();
    if (!r.done()) {
      m.retry_after_ms =
          static_cast<uint32_t>(std::min<uint64_t>(r.get_varint(), UINT32_MAX));
    }
  } catch (const util::DecodeError&) {
    return ErrorMsg{};
  }
  return m;
}

std::vector<std::byte> encode(const SummaryMsg& m) {
  util::BufWriter w;
  w.put_u32(m.from);
  w.put_varint(m.merged_brokers.size());
  for (auto id : m.merged_brokers) w.put_u32(id);
  for (size_t i = 0; i < m.merged_brokers.size(); ++i) {
    w.put_u64(i < m.epochs.size() ? m.epochs[i] : 0);
  }
  put_sub_ids(w, m.removals);
  w.put_varint(m.summary.size());
  w.put_bytes(m.summary);
  // v4 trailing fields; v3 decoders stop at the summary bytes and ignore
  // them, v3 frames leave them at 0.
  w.put_u64(m.version);
  w.put_u64(m.digest);
  return std::move(w).take();
}

SummaryMsg decode_summary_msg(std::span<const std::byte> b) {
  util::BufReader r(b);
  SummaryMsg m;
  m.from = r.get_u32();
  const uint64_t nb = r.get_varint();
  for (uint64_t i = 0; i < nb; ++i) m.merged_brokers.push_back(r.get_u32());
  for (uint64_t i = 0; i < nb; ++i) m.epochs.push_back(r.get_u64());
  m.removals = get_sub_ids(r);
  const uint64_t len = r.get_varint();
  const auto bytes = r.get_bytes(len);
  m.summary.assign(bytes.begin(), bytes.end());
  if (r.remaining() >= 16) {  // absent in v3 frames -> 0
    m.version = r.get_u64();
    m.digest = r.get_u64();
  }
  return m;
}

std::vector<std::byte> encode(const SummaryDeltaMsg& m) {
  util::BufWriter w;
  w.put_u32(m.from);
  w.put_varint(m.merged_brokers.size());
  for (auto id : m.merged_brokers) w.put_u32(id);
  for (size_t i = 0; i < m.merged_brokers.size(); ++i) {
    w.put_u64(i < m.epochs.size() ? m.epochs[i] : 0);
  }
  put_sub_ids(w, m.removals);
  w.put_varint(m.delta.size());
  w.put_bytes(m.delta);
  return std::move(w).take();
}

SummaryDeltaMsg decode_summary_delta_msg(std::span<const std::byte> b) {
  util::BufReader r(b);
  SummaryDeltaMsg m;
  m.from = r.get_u32();
  const uint64_t nb = r.get_varint();
  for (uint64_t i = 0; i < nb; ++i) m.merged_brokers.push_back(r.get_u32());
  for (uint64_t i = 0; i < nb; ++i) m.epochs.push_back(r.get_u64());
  m.removals = get_sub_ids(r);
  const uint64_t len = r.get_varint();
  const auto bytes = r.get_bytes(len);
  m.delta.assign(bytes.begin(), bytes.end());
  return m;
}

std::vector<std::byte> encode(const SummaryDeltaAckMsg& m) {
  util::BufWriter w;
  w.put_u8(m.status);
  return std::move(w).take();
}

SummaryDeltaAckMsg decode_summary_delta_ack(std::span<const std::byte> b) {
  util::BufReader r(b);
  SummaryDeltaAckMsg m;
  m.status = r.get_u8();
  if (m.status > SummaryDeltaAckMsg::kNeedFull) {
    throw util::DecodeError("bad delta-ack status");
  }
  return m;
}

std::vector<std::byte> encode(const SummarySyncMsg& m) {
  util::BufWriter w;
  w.put_u32(m.from);
  return std::move(w).take();
}

SummarySyncMsg decode_summary_sync_msg(std::span<const std::byte> b) {
  util::BufReader r(b);
  return {r.get_u32()};
}

std::vector<std::byte> encode(const LeaseRenewMsg& m) {
  util::BufWriter w;
  put_sub_ids(w, m.ids);
  return std::move(w).take();
}

LeaseRenewMsg decode_lease_renew_msg(std::span<const std::byte> b) {
  util::BufReader r(b);
  return {get_sub_ids(r)};
}

std::vector<std::byte> encode(const LeaseRenewAckMsg& m) {
  util::BufWriter w;
  w.put_u32(m.renewed);
  return std::move(w).take();
}

LeaseRenewAckMsg decode_lease_renew_ack(std::span<const std::byte> b) {
  util::BufReader r(b);
  return {r.get_u32()};
}

std::vector<std::byte> encode(const EventMsg& m, const model::Schema& schema) {
  (void)schema;
  util::BufWriter w;
  w.put_u32(m.origin);
  w.put_u64(m.seq);
  w.put_varint(m.brocli.size());
  w.put_bytes(m.brocli);
  put_event(w, m.event);
  w.put_u64(m.trace);  // v3 trailing field; v2 decoders ignore trailing bytes
  return std::move(w).take();
}

EventMsg decode_event_msg(std::span<const std::byte> b, const model::Schema& schema) {
  util::BufReader r(b);
  EventMsg m;
  m.origin = r.get_u32();
  m.seq = r.get_u64();
  const uint64_t len = r.get_varint();
  const auto bytes = r.get_bytes(len);
  m.brocli.assign(bytes.begin(), bytes.end());
  m.event = get_event(r, schema);
  if (r.remaining() >= 8) m.trace = r.get_u64();  // absent in v2 frames -> 0
  return m;
}

std::vector<std::byte> encode(const DeliverMsg& m, const model::Schema& schema) {
  (void)schema;
  util::BufWriter w;
  w.put_u32(m.examined_at);
  put_sub_ids(w, m.ids);
  put_event(w, m.event);
  w.put_u64(m.trace);  // v3 trailing field
  return std::move(w).take();
}

DeliverMsg decode_deliver_msg(std::span<const std::byte> b, const model::Schema& schema) {
  util::BufReader r(b);
  DeliverMsg m;
  m.examined_at = r.get_u32();
  m.ids = get_sub_ids(r);
  m.event = get_event(r, schema);
  if (r.remaining() >= 8) m.trace = r.get_u64();
  return m;
}

std::vector<std::byte> encode(const NotifyMsg& m, const model::Schema& schema) {
  (void)schema;
  util::BufWriter w;
  put_sub_ids(w, m.ids);
  put_event(w, m.event);
  return std::move(w).take();
}

NotifyMsg decode_notify_msg(std::span<const std::byte> b, const model::Schema& schema) {
  util::BufReader r(b);
  NotifyMsg m;
  m.ids = get_sub_ids(r);
  m.event = get_event(r, schema);
  return m;
}

std::vector<std::byte> encode(const TriggerMsg& m) {
  util::BufWriter w;
  w.put_u32(m.iteration);
  return std::move(w).take();
}

TriggerMsg decode_trigger_msg(std::span<const std::byte> b) {
  util::BufReader r(b);
  return {r.get_u32()};
}

std::vector<std::byte> encode(const AttachMsg& m) {
  util::BufWriter w;
  put_sub_ids(w, m.ids);
  return std::move(w).take();
}

AttachMsg decode_attach_msg(std::span<const std::byte> b) {
  util::BufReader r(b);
  return {get_sub_ids(r)};
}

std::vector<std::byte> encode(const AttachAckMsg& m) {
  util::BufWriter w;
  w.put_u32(m.bound);
  return std::move(w).take();
}

AttachAckMsg decode_attach_ack(std::span<const std::byte> b) {
  util::BufReader r(b);
  return {r.get_u32()};
}

std::vector<std::byte> encode(const TraceRequestMsg& m) {
  util::BufWriter w;
  w.put_u64(m.trace);
  w.put_u32(m.max_spans);
  return std::move(w).take();
}

TraceRequestMsg decode_trace_request(std::span<const std::byte> b) {
  util::BufReader r(b);
  TraceRequestMsg m;
  m.trace = r.get_u64();
  m.max_spans = r.get_u32();
  return m;
}

std::vector<std::byte> encode(const ProfileRequestMsg& m) {
  util::BufWriter w;
  w.put_u8(m.action);
  w.put_u32(m.hz);
  return std::move(w).take();
}

ProfileRequestMsg decode_profile_request(std::span<const std::byte> b) {
  util::BufReader r(b);
  ProfileRequestMsg m;
  m.action = r.get_u8();
  m.hz = r.get_u32();
  return m;
}

std::vector<std::byte> encode(const ProfileReplyMsg& m) {
  util::BufWriter w(32 + m.folded.size());
  w.put_u8(m.running);
  w.put_u32(m.hz);
  w.put_u64(m.samples);
  w.put_u64(m.dropped);
  w.put_string(m.folded);
  return std::move(w).take();
}

ProfileReplyMsg decode_profile_reply(std::span<const std::byte> b) {
  util::BufReader r(b);
  ProfileReplyMsg m;
  m.running = r.get_u8();
  m.hz = r.get_u32();
  m.samples = r.get_u64();
  m.dropped = r.get_u64();
  m.folded = r.get_string();
  return m;
}

std::vector<std::byte> encode(const TraceReplyMsg& m) {
  util::BufWriter w;
  w.put_varint(m.spans.size());
  for (const obs::Span& s : m.spans) {
    w.put_u64(s.trace);
    w.put_u32(s.broker);
    w.put_u8(static_cast<uint8_t>(s.phase));
    w.put_u32(s.peer);
    w.put_u64(s.t_us);
    w.put_u64(s.bytes);
  }
  return std::move(w).take();
}

TraceReplyMsg decode_trace_reply(std::span<const std::byte> b) {
  util::BufReader r(b);
  TraceReplyMsg m;
  const uint64_t n = r.get_varint();
  m.spans.reserve(n < 65536 ? n : 65536);
  for (uint64_t i = 0; i < n; ++i) {
    obs::Span s;
    s.trace = r.get_u64();
    s.broker = r.get_u32();
    const uint8_t phase = r.get_u8();
    if (phase > static_cast<uint8_t>(obs::Phase::kRedeliver)) {
      throw util::DecodeError("bad span phase");
    }
    s.phase = static_cast<obs::Phase>(phase);
    s.peer = r.get_u32();
    s.t_us = r.get_u64();
    s.bytes = r.get_u64();
    m.spans.push_back(s);
  }
  return m;
}

std::vector<std::byte> make_bitmap(size_t bits) {
  return std::vector<std::byte>((bits + 7) / 8, std::byte{0});
}

bool bitmap_get(std::span<const std::byte> bm, size_t i) {
  return (static_cast<uint8_t>(bm[i / 8]) >> (i % 8)) & 1;
}

void bitmap_set(std::span<std::byte> bm, size_t i) {
  bm[i / 8] |= std::byte{static_cast<uint8_t>(1u << (i % 8))};
}

bool bitmap_all(std::span<const std::byte> bm, size_t bits) {
  for (size_t i = 0; i < bits; ++i) {
    if (!bitmap_get(bm, i)) return false;
  }
  return true;
}

}  // namespace subsum::net
