// String Attribute Constraint Summary (paper §3.1, fig 5).
//
// One Sacs summarizes every string constraint that any subscription places
// on ONE attribute. Each row holds a pattern and the sorted list of ids of
// subscriptions whose constraint the row covers. Following the paper:
//
//  * a new constraint covered by an existing row only appends its id there;
//  * a new constraint that covers existing rows SUBSTITUTES them, absorbing
//    their id lists ("if a more general constraint appears then the current
//    is substituted by the new one");
//  * otherwise a new row is added.
//
// Substitution makes SACS lossy in the safe direction: remote matching can
// return false positives (an id attached to a more general pattern) but
// never false negatives. The GeneralizePolicy bounds how lossy.
//
// Representation: equality rows are hash-indexed by operand (the common
// case — fresh subscriptions use = — becomes O(1) on insert and lookup);
// pattern rows (≠, prefix, suffix, contains) live in a scan list.
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/string_constraint.h"
#include "model/sub_id.h"

namespace subsum::core {

class Sacs {
 public:
  struct Row {
    StringPattern pattern;
    std::vector<model::SubId> ids;  // sorted, unique

    bool operator==(const Row&) const = default;
  };

  explicit Sacs(GeneralizePolicy policy = GeneralizePolicy::kSafe) : policy_(policy) {}

  /// Adds one constraint of one subscription.
  void insert(const StringPattern& pattern, model::SubId id);

  /// Bulk variant used by merge; `ids` sorted and unique.
  void insert(const StringPattern& pattern, std::span<const model::SubId> ids);

  /// Removes a subscription id from every row. Generalized rows persist
  /// until their id list empties (the covered original patterns are gone;
  /// see BrokerSummary::rebuild for the exact-restoration path).
  void remove(model::SubId id);

  /// Removes every id owned by `broker` (epoch-based discard of a
  /// restarted broker's pre-crash rows).
  void remove_broker(model::BrokerId broker);

  /// Sorted unique ids of subscriptions whose (summarized) constraint is
  /// satisfied by `value`. A subscription with several conjunctive
  /// constraints on this attribute is reported if ANY of them matches —
  /// the per-attribute counting of Algorithm 1 cannot distinguish more, and
  /// over-approximation is the documented, safe direction.
  [[nodiscard]] std::vector<model::SubId> find(const std::string& value) const;

  /// find() into a caller-owned buffer (cleared first, capacity reused):
  /// the allocation-free path the matching engine's MatchScratch drives.
  void find_into(const std::string& value, std::vector<model::SubId>& out) const;

  /// Folds another broker's Sacs for the same attribute into this one.
  void merge(const Sacs& other);

  /// All rows: equality rows first (insertion order), then pattern rows.
  [[nodiscard]] std::vector<Row> rows() const;

  /// Zero-copy row access for the freeze pass (core/frozen_index.cpp):
  /// equality rows in insertion order, pattern rows in scan order. The
  /// frozen lookup must visit pattern rows in exactly this order to
  /// reproduce find_into() bit for bit.
  [[nodiscard]] const std::vector<Row>& eq_rows() const noexcept { return eq_rows_; }
  [[nodiscard]] const std::vector<Row>& pat_rows() const noexcept { return pat_rows_; }

  [[nodiscard]] bool empty() const noexcept { return eq_rows_.empty() && pat_rows_.empty(); }
  [[nodiscard]] size_t nr() const noexcept { return eq_rows_.size() + pat_rows_.size(); }

  /// Total number of subscription-id entries across all rows (Σ Ls).
  [[nodiscard]] size_t id_entries() const noexcept;

  /// Total bytes of string operands stored (Σ ssv contribution).
  [[nodiscard]] size_t value_bytes() const noexcept;

  [[nodiscard]] GeneralizePolicy policy() const noexcept { return policy_; }

  [[nodiscard]] std::string to_string() const;

  bool operator==(const Sacs& o) const {
    return eq_rows_ == o.eq_rows_ && pat_rows_ == o.pat_rows_;
  }

 private:
  void reindex_eq();

  GeneralizePolicy policy_;
  std::vector<Row> eq_rows_;   // pattern.op == kEq, indexed below
  std::vector<Row> pat_rows_;  // every other operator, scanned linearly
  std::unordered_map<std::string, size_t> eq_index_;  // operand -> eq_rows_ slot
};

}  // namespace subsum::core
