#include "core/interval.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.h"

namespace subsum::core {

namespace {

std::string pos_to_string(const Pos& p, bool is_lo) {
  if (std::isinf(p.v)) return p.v < 0 ? "-inf" : "+inf";
  std::string s = util::format_number(p.v);
  if (is_lo) return (p.o == +1 ? "(" : "[") + s;
  return s + (p.o == -1 ? ")" : "]");
}

}  // namespace

bool Interval::touches(const Interval& o) const noexcept {
  if (overlaps(o)) return true;
  // End offsets are in {-1,0}, so succ() always exists.
  if (hi < o.lo) return hi.succ() == o.lo;
  return o.hi.succ() == lo;
}

std::string Interval::to_string() const {
  if (is_point()) return "{" + util::format_number(lo.v) + "}";
  std::string s = std::isinf(lo.v) ? "(-inf" : pos_to_string(lo, true);
  s += ", ";
  s += std::isinf(hi.v) ? "+inf)" : pos_to_string(hi, false);
  return s;
}

IntervalSet IntervalSet::from_constraint(model::Op op, double operand) {
  using model::Op;
  switch (op) {
    case Op::kEq:
      return of({Interval::point(operand)});
    case Op::kNe: {
      return of({Interval::less_than(operand), Interval::greater_than(operand)});
    }
    case Op::kLt:
      return of({Interval::less_than(operand)});
    case Op::kLe:
      return of({Interval::at_most(operand)});
    case Op::kGt:
      return of({Interval::greater_than(operand)});
    case Op::kGe:
      return of({Interval::at_least(operand)});
    default:
      throw std::invalid_argument("string operator has no interval form");
  }
}

IntervalSet IntervalSet::of(std::vector<Interval> ivs) {
  std::sort(ivs.begin(), ivs.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  IntervalSet out;
  for (auto& iv : ivs) {
    if (iv.hi < iv.lo) continue;  // empty; skip defensively
    if (!out.ivs_.empty() && out.ivs_.back().touches(iv)) {
      out.ivs_.back().hi = std::max(out.ivs_.back().hi, iv.hi);
    } else {
      out.ivs_.push_back(iv);
    }
  }
  return out;
}

IntervalSet IntervalSet::intersect(const IntervalSet& o) const {
  std::vector<Interval> out;
  size_t i = 0, j = 0;
  while (i < ivs_.size() && j < o.ivs_.size()) {
    const Interval& a = ivs_[i];
    const Interval& b = o.ivs_[j];
    const Pos lo = std::max(a.lo, b.lo);
    const Pos hi = std::min(a.hi, b.hi);
    if (lo <= hi) out.push_back({lo, hi});
    if (a.hi < b.hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return of(std::move(out));
}

bool IntervalSet::contains(double x) const noexcept {
  const Pos p = Pos::at(x);
  // First interval whose hi >= p; it is the only candidate.
  auto it = std::lower_bound(ivs_.begin(), ivs_.end(), p,
                             [](const Interval& iv, const Pos& q) { return iv.hi < q; });
  return it != ivs_.end() && it->lo <= p;
}

std::string IntervalSet::to_string() const {
  if (ivs_.empty()) return "{}";
  std::vector<std::string> parts;
  parts.reserve(ivs_.size());
  for (const auto& iv : ivs_) parts.push_back(iv.to_string());
  return util::join(parts, " U ");
}

}  // namespace subsum::core
