#include "core/sacs.h"

#include <algorithm>

namespace subsum::core {

namespace {

using model::SubId;

void merge_into(std::vector<SubId>& dst, std::span<const SubId> src) {
  if (src.empty()) return;
  if (dst.empty() || dst.back() < src.front()) {
    // Ids are minted in increasing order per home broker, so live insertion
    // almost always appends past the end — O(1) amortized instead of the
    // full set_union reallocation (quadratic over a large build).
    dst.insert(dst.end(), src.begin(), src.end());
    return;
  }
  std::vector<SubId> out;
  out.reserve(dst.size() + src.size());
  std::set_union(dst.begin(), dst.end(), src.begin(), src.end(), std::back_inserter(out));
  dst = std::move(out);
}

void remove_id(std::vector<SubId>& ids, SubId id) {
  auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it != ids.end() && *it == id) ids.erase(it);
}

}  // namespace

void Sacs::insert(const StringPattern& pattern, model::SubId id) {
  const SubId one[] = {id};
  insert(pattern, one);
}

void Sacs::insert(const StringPattern& pattern, std::span<const model::SubId> ids) {
  if (ids.empty()) return;

  if (pattern.op == model::Op::kEq) {
    // Fast path: an identical equality row always covers the constraint.
    if (auto it = eq_index_.find(pattern.operand); it != eq_index_.end()) {
      merge_into(eq_rows_[it->second].ids, ids);
      return;
    }
    // A pattern row may cover the equality (e.g. a prefix over its value).
    for (auto& row : pat_rows_) {
      if (covers(row.pattern, pattern, policy_)) {
        merge_into(row.ids, ids);
        return;
      }
    }
    eq_index_.emplace(pattern.operand, eq_rows_.size());
    eq_rows_.push_back({pattern, {ids.begin(), ids.end()}});
    return;
  }

  // Pattern constraint: covered by an existing pattern row?
  for (auto& row : pat_rows_) {
    if (covers(row.pattern, pattern, policy_)) {
      merge_into(row.ids, ids);
      return;
    }
  }
  // It may cover (substitute) existing pattern and equality rows.
  Row fresh{pattern, {ids.begin(), ids.end()}};
  std::erase_if(pat_rows_, [&](const Row& row) {
    if (covers(pattern, row.pattern, policy_)) {
      merge_into(fresh.ids, row.ids);
      return true;
    }
    return false;
  });
  const size_t eq_before = eq_rows_.size();
  std::erase_if(eq_rows_, [&](const Row& row) {
    if (covers(pattern, row.pattern, policy_)) {
      merge_into(fresh.ids, row.ids);
      return true;
    }
    return false;
  });
  if (eq_rows_.size() != eq_before) reindex_eq();
  pat_rows_.push_back(std::move(fresh));
}

void Sacs::remove(model::SubId id) {
  for (auto& row : pat_rows_) remove_id(row.ids, id);
  std::erase_if(pat_rows_, [](const Row& row) { return row.ids.empty(); });
  bool eq_changed = false;
  for (auto& row : eq_rows_) {
    remove_id(row.ids, id);
    eq_changed |= row.ids.empty();
  }
  if (eq_changed) {
    std::erase_if(eq_rows_, [](const Row& row) { return row.ids.empty(); });
    reindex_eq();
  }
}

void Sacs::remove_broker(model::BrokerId broker) {
  const auto owned = [broker](const SubId& id) { return id.broker == broker; };
  for (auto& row : pat_rows_) std::erase_if(row.ids, owned);
  std::erase_if(pat_rows_, [](const Row& row) { return row.ids.empty(); });
  bool eq_changed = false;
  for (auto& row : eq_rows_) {
    std::erase_if(row.ids, owned);
    eq_changed |= row.ids.empty();
  }
  if (eq_changed) {
    std::erase_if(eq_rows_, [](const Row& row) { return row.ids.empty(); });
    reindex_eq();
  }
}

std::vector<model::SubId> Sacs::find(const std::string& value) const {
  std::vector<SubId> out;
  find_into(value, out);
  return out;
}

void Sacs::find_into(const std::string& value, std::vector<model::SubId>& out) const {
  out.clear();
  size_t rows_hit = 0;
  if (auto it = eq_index_.find(value); it != eq_index_.end()) {
    const auto& ids = eq_rows_[it->second].ids;
    out.insert(out.end(), ids.begin(), ids.end());
    ++rows_hit;
  }
  for (const auto& row : pat_rows_) {
    if (row.pattern.matches(value)) {
      out.insert(out.end(), row.ids.begin(), row.ids.end());
      ++rows_hit;
    }
  }
  // Each row's list is sorted and unique; a single hit needs no post-pass.
  if (rows_hit > 1) {
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
}

void Sacs::merge(const Sacs& other) {
  for (const auto& row : other.eq_rows_) insert(row.pattern, row.ids);
  for (const auto& row : other.pat_rows_) insert(row.pattern, row.ids);
}

std::vector<Sacs::Row> Sacs::rows() const {
  std::vector<Row> out;
  out.reserve(nr());
  out.insert(out.end(), eq_rows_.begin(), eq_rows_.end());
  out.insert(out.end(), pat_rows_.begin(), pat_rows_.end());
  return out;
}

size_t Sacs::id_entries() const noexcept {
  size_t n = 0;
  for (const auto& row : eq_rows_) n += row.ids.size();
  for (const auto& row : pat_rows_) n += row.ids.size();
  return n;
}

size_t Sacs::value_bytes() const noexcept {
  size_t n = 0;
  for (const auto& row : eq_rows_) n += row.pattern.operand.size();
  for (const auto& row : pat_rows_) n += row.pattern.operand.size();
  return n;
}

std::string Sacs::to_string() const {
  std::string out;
  for (const auto& row : rows()) {
    out += row.pattern.to_string() + " ->";
    for (const auto& id : row.ids) out += " " + id.to_string();
    out += "\n";
  }
  return out;
}

void Sacs::reindex_eq() {
  eq_index_.clear();
  for (size_t i = 0; i < eq_rows_.size(); ++i) {
    eq_index_.emplace(eq_rows_[i].pattern.operand, i);
  }
}

}  // namespace subsum::core
