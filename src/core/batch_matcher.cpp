#include "core/batch_matcher.h"

#include <algorithm>

namespace subsum::core {

void BatchMatcher::match_batch(const BrokerSummary& summary,
                               std::span<const model::Event> events,
                               std::vector<std::vector<model::SubId>>& results,
                               std::vector<MatchDiag>* diags) {
  results.resize(events.size());
  if (diags) diags->resize(events.size());
  if (events.empty()) return;

  const size_t shards = std::min(pool_->concurrency(), events.size());
  const size_t chunk = (events.size() + shards - 1) / shards;
  if (scratch_.size() < shards) scratch_.resize(shards);

  // Warm the frozen index once, on this thread, so the workers do not
  // race to build identical copies of it on their first events.
  (void)summary.frozen_for_match();

  for (size_t s = 0; s < shards; ++s) {
    const size_t begin = s * chunk;
    const size_t end = std::min(begin + chunk, events.size());
    if (begin >= end) break;
    pool_->submit([this, s, begin, end, &summary, events, &results, diags] {
      MatchScratch& scratch = scratch_[s];
      for (size_t i = begin; i < end; ++i) {
        MatchDiag diag;
        const auto ids = match_into(summary, events[i], scratch, diags ? &diag : nullptr);
        results[i].assign(ids.begin(), ids.end());
        if (diags) (*diags)[i] = diag;
      }
    });
  }
  pool_->wait();
}

std::vector<std::vector<model::SubId>> BatchMatcher::match_batch(
    const BrokerSummary& summary, std::span<const model::Event> events,
    std::vector<MatchDiag>* diags) {
  std::vector<std::vector<model::SubId>> results;
  match_batch(summary, events, results, diags);
  return results;
}

}  // namespace subsum::core
