#include "core/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if !defined(SUBSUM_FORCE_SCALAR) && (defined(__x86_64__) || defined(__i386__))
#define SUBSUM_SIMD_X86 1
#include <immintrin.h>
#endif

namespace subsum::core::simd {

namespace {

Level detect() noexcept {
#if defined(SUBSUM_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  // SSE2 is part of the x86-64 baseline; on 32-bit x86 it still needs a
  // CPU check before we dispatch to it.
  if (__builtin_cpu_supports("sse2")) return Level::kSse2;
#endif
  return Level::kScalar;
}

Level env_clamp(Level detected) noexcept {
  const char* env = std::getenv("SUBSUM_SIMD");
  if (!env) return detected;
  Level wanted = detected;
  if (std::strcmp(env, "scalar") == 0) wanted = Level::kScalar;
  else if (std::strcmp(env, "sse2") == 0) wanted = Level::kSse2;
  else if (std::strcmp(env, "avx2") == 0) wanted = Level::kAvx2;
  return wanted < detected ? wanted : detected;
}

std::atomic<Level>& level_slot() noexcept {
  static std::atomic<Level> level{env_clamp(detect())};
  return level;
}

// ---- scalar kernels: the reference semantics --------------------------

size_t emit_req1_scalar(const uint32_t* e, size_t n, uint32_t* out) {
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    out[w] = e[i] >> 6;
    w += (e[i] & 63u) == 0;
  }
  return w;
}

size_t emit_matches_scalar(const uint32_t* e, size_t n, uint32_t* cells, uint32_t mask,
                           uint32_t tag, uint32_t* out) {
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t slot = e[i] >> 6;
    const uint32_t idx = slot & mask;
    if (cells[idx] == tag + (e[i] & 63u) + 1) {
      out[w++] = slot;
      cells[idx] = tag;  // count 0: suppress re-emission from later lists
    }
  }
  return w;
}

uint32_t min_u32_scalar(const uint32_t* v, size_t n) {
  uint32_t m = v[0];
  for (size_t i = 1; i < n; ++i) {
    if (v[i] < m) m = v[i];
  }
  return m;
}

#if defined(SUBSUM_SIMD_X86)

// ---- SSE2 -------------------------------------------------------------

size_t emit_req1_sse2(const uint32_t* e, size_t n, uint32_t* out) {
  size_t w = 0;
  size_t i = 0;
  const __m128i low6 = _mm_set1_epi32(63);
  const __m128i zero = _mm_setzero_si128();
  for (; i + 4 <= n; i += 4) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(e + i));
    const __m128i eq = _mm_cmpeq_epi32(_mm_and_si128(v, low6), zero);
    const int m = _mm_movemask_ps(_mm_castsi128_ps(eq));
    if (m == 0xF) {
      // Whole lane matches (common: a run of single-attribute subs) —
      // store the four slots in one shot.
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + w), _mm_srli_epi32(v, 6));
      w += 4;
    } else if (m != 0) {
      for (int j = 0; j < 4; ++j) {
        out[w] = e[i + j] >> 6;
        w += (m >> j) & 1;
      }
    }
  }
  w += emit_req1_scalar(e + i, n - i, out + w);
  return w;
}

// ---- AVX2 (compiled with a target attribute; only dispatched to after
// a cpuid check, so no global -mavx2 is needed) -------------------------

__attribute__((target("avx2"))) size_t emit_req1_avx2(const uint32_t* e, size_t n,
                                                      uint32_t* out) {
  size_t w = 0;
  size_t i = 0;
  const __m256i low6 = _mm256_set1_epi32(63);
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 8 <= n; i += 8) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e + i));
    const __m256i eq = _mm256_cmpeq_epi32(_mm256_and_si256(v, low6), zero);
    const int m = _mm256_movemask_ps(_mm256_castsi256_ps(eq));
    if (m == 0xFF) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), _mm256_srli_epi32(v, 6));
      w += 8;
    } else if (m != 0) {
      for (int j = 0; j < 8; ++j) {
        out[w] = e[i + j] >> 6;
        w += (m >> j) & 1;
      }
    }
  }
  w += emit_req1_scalar(e + i, n - i, out + w);
  return w;
}

__attribute__((target("avx2"))) size_t emit_matches_avx2(const uint32_t* e, size_t n,
                                                         uint32_t* cells, uint32_t mask,
                                                         uint32_t tag, uint32_t* out) {
  // Gather each entry's cell and compare against tag + req in one shot;
  // matches are rare (the match set is tiny next to P), so the per-hit
  // suppression write stays scalar. Slots within one list are strictly
  // increasing, so the eight gathered indexes are distinct and the lane
  // reads cannot race the lane writes.
  size_t w = 0;
  size_t i = 0;
  const __m256i low6 = _mm256_set1_epi32(63);
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
  const __m256i want_base = _mm256_set1_epi32(static_cast<int>(tag + 1));
  for (; i + 8 <= n; i += 8) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e + i));
    const __m256i slot = _mm256_srli_epi32(v, 6);
    const __m256i idx = _mm256_and_si256(slot, vmask);
    const __m256i cell =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(cells), idx, 4);
    const __m256i want = _mm256_add_epi32(_mm256_and_si256(v, low6), want_base);
    const __m256i eq = _mm256_cmpeq_epi32(cell, want);
    int m = _mm256_movemask_ps(_mm256_castsi256_ps(eq));
    while (m != 0) {
      const int j = __builtin_ctz(static_cast<unsigned>(m));
      m &= m - 1;
      const uint32_t s = e[i + static_cast<size_t>(j)] >> 6;
      out[w++] = s;
      cells[s & mask] = tag;
    }
  }
  w += emit_matches_scalar(e + i, n - i, cells, mask, tag, out + w);
  return w;
}

__attribute__((target("avx2"))) uint32_t min_u32_avx2(const uint32_t* v, size_t n) {
  if (n < 8) return min_u32_scalar(v, n);
  __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
  size_t i = 8;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_min_epu32(acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
  }
  if (i < n) {
    // Re-read the (possibly overlapping) final lane.
    acc = _mm256_min_epu32(acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + n - 8)));
  }
  alignas(32) uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return min_u32_scalar(lanes, 8);
}

#endif  // SUBSUM_SIMD_X86

}  // namespace

Level detected_level() noexcept {
  static const Level detected = detect();
  return detected;
}

Level active_level() noexcept { return level_slot().load(std::memory_order_relaxed); }

void set_level_for_test(Level level) noexcept {
  const Level max = detected_level();
  level_slot().store(level < max ? level : max, std::memory_order_relaxed);
}

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSse2: return "sse2";
    case Level::kAvx2: return "avx2";
  }
  return "?";
}

size_t emit_req1(const uint32_t* entries, size_t n, uint32_t* out) {
#if defined(SUBSUM_SIMD_X86)
  switch (active_level()) {
    case Level::kAvx2: return emit_req1_avx2(entries, n, out);
    case Level::kSse2: return emit_req1_sse2(entries, n, out);
    case Level::kScalar: break;
  }
#endif
  return emit_req1_scalar(entries, n, out);
}

size_t emit_matches(const uint32_t* entries, size_t n, uint32_t* cells, uint32_t mask,
                    uint32_t tag, uint32_t* out) {
#if defined(SUBSUM_SIMD_X86)
  // SSE2 has no gather, so the vector win starts at AVX2 here.
  if (active_level() == Level::kAvx2) {
    return emit_matches_avx2(entries, n, cells, mask, tag, out);
  }
#endif
  return emit_matches_scalar(entries, n, cells, mask, tag, out);
}

uint32_t min_u32(const uint32_t* v, size_t n) {
#if defined(SUBSUM_SIMD_X86)
  if (active_level() == Level::kAvx2) return min_u32_avx2(v, n);
#endif
  return min_u32_scalar(v, n);
}

}  // namespace subsum::core::simd
