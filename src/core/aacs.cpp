#include "core/aacs.h"

#include <algorithm>
#include <cassert>

namespace subsum::core {

namespace {

using model::SubId;

std::vector<SubId> union_ids(const std::vector<SubId>& a, std::span<const SubId> b) {
  std::vector<SubId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

/// In-place union for the coarse included-row fast path. Ids are minted in
/// increasing order per home broker, so live insertion almost always appends
/// past the end — O(1) amortized instead of a full reallocation (quadratic
/// over a large build).
void merge_ids(std::vector<SubId>& dst, std::span<const SubId> src) {
  if (src.empty()) return;
  if (dst.empty() || dst.back() < src.front()) {
    dst.insert(dst.end(), src.begin(), src.end());
    return;
  }
  dst = union_ids(dst, src);
}

}  // namespace

void Aacs::insert(const Interval& iv, std::span<const model::SubId> ids) {
  if (ids.empty()) return;
  assert(std::is_sorted(ids.begin(), ids.end()));

  // Locate the run of existing pieces overlapping iv.
  auto first = std::lower_bound(
      pieces_.begin(), pieces_.end(), iv.lo,
      [](const Piece& p, const Pos& lo) { return p.iv.hi < lo; });

  if (mode_ == AacsMode::kCoarse && first != pieces_.end() && first->iv.lo <= iv.lo &&
      iv.hi <= first->iv.hi) {
    // Included in an existing row: just extend its id list (paper §3.1).
    merge_ids(first->ids, ids);
    coalesce(static_cast<size_t>(first - pieces_.begin()),
             static_cast<size_t>(first - pieces_.begin()) + 1);
    return;
  }
  auto last = first;
  while (last != pieces_.end() && last->iv.lo <= iv.hi) ++last;

  std::vector<Piece> repl;
  const std::vector<SubId> fresh(ids.begin(), ids.end());
  Pos cursor = iv.lo;

  for (auto it = first; it != last; ++it) {
    const Piece& p = *it;
    if (p.iv.lo < cursor) {
      // p starts before the inserted region: keep its left part untouched.
      repl.push_back({{p.iv.lo, cursor.pred()}, p.ids});
    } else if (cursor < p.iv.lo) {
      // Gap before p inside iv: new piece carrying only the fresh ids.
      repl.push_back({{cursor, p.iv.lo.pred()}, fresh});
      cursor = p.iv.lo;
    }
    const Pos seg_hi = std::min(p.iv.hi, iv.hi);
    repl.push_back({{cursor, seg_hi}, union_ids(p.ids, ids)});
    if (iv.hi < p.iv.hi) {
      // p extends past the inserted region: keep its right part untouched.
      repl.push_back({{iv.hi.succ(), p.iv.hi}, p.ids});
    }
    cursor = seg_hi.succ();
  }
  if (cursor <= iv.hi) repl.push_back({{cursor, iv.hi}, fresh});

  const size_t at = static_cast<size_t>(first - pieces_.begin());
  pieces_.erase(first, last);
  pieces_.insert(pieces_.begin() + static_cast<ptrdiff_t>(at), repl.begin(), repl.end());
  coalesce(at, at + repl.size());
}

void Aacs::insert(const IntervalSet& region, model::SubId id) {
  const SubId one[] = {id};
  for (const auto& iv : region.intervals()) insert(iv, one);
}

void Aacs::remove(model::SubId id) {
  bool changed = false;
  for (auto& p : pieces_) {
    auto it = std::lower_bound(p.ids.begin(), p.ids.end(), id);
    if (it != p.ids.end() && *it == id) {
      p.ids.erase(it);
      changed = true;
    }
  }
  if (!changed) return;
  std::erase_if(pieces_, [](const Piece& p) { return p.ids.empty(); });
  coalesce(0, pieces_.size());
}

void Aacs::remove_broker(model::BrokerId broker) {
  bool changed = false;
  for (auto& p : pieces_) {
    const size_t before = p.ids.size();
    std::erase_if(p.ids, [broker](const SubId& id) { return id.broker == broker; });
    changed |= p.ids.size() != before;
  }
  if (!changed) return;
  std::erase_if(pieces_, [](const Piece& p) { return p.ids.empty(); });
  coalesce(0, pieces_.size());
}

const std::vector<model::SubId>* Aacs::find(double x) const noexcept {
  const Pos p = Pos::at(x);
  auto it = std::lower_bound(pieces_.begin(), pieces_.end(), p,
                             [](const Piece& q, const Pos& pos) { return q.iv.hi < pos; });
  if (it == pieces_.end() || !(it->iv.lo <= p)) return nullptr;
  return &it->ids;
}

void Aacs::merge(const Aacs& other) {
  for (const auto& p : other.pieces_) insert(p.iv, p.ids);
}

size_t Aacs::nsr() const noexcept {
  size_t n = 0;
  for (const auto& p : pieces_) n += p.iv.is_point() ? 0 : 1;
  return n;
}

size_t Aacs::ne() const noexcept { return pieces_.size() - nsr(); }

size_t Aacs::id_entries() const noexcept {
  size_t n = 0;
  for (const auto& p : pieces_) n += p.ids.size();
  return n;
}

std::string Aacs::to_string() const {
  std::string out;
  for (const auto& p : pieces_) {
    out += p.iv.to_string() + " ->";
    for (const auto& id : p.ids) out += " " + id.to_string();
    out += "\n";
  }
  return out;
}

void Aacs::coalesce(size_t begin_hint, size_t end_hint) {
  if (pieces_.empty()) return;
  // Include one neighbour on each side of the touched region.
  size_t begin = begin_hint > 0 ? begin_hint - 1 : 0;
  size_t end = std::min(end_hint + 1, pieces_.size());
  size_t write = begin;
  for (size_t read = begin; read < end; ++read) {
    if (write > begin && pieces_[write - 1].ids == pieces_[read].ids &&
        pieces_[write - 1].iv.touches(pieces_[read].iv)) {
      pieces_[write - 1].iv.hi = pieces_[read].iv.hi;
    } else {
      if (write != read) pieces_[write] = std::move(pieces_[read]);
      ++write;
    }
  }
  pieces_.erase(pieces_.begin() + static_cast<ptrdiff_t>(write),
                pieces_.begin() + static_cast<ptrdiff_t>(end));
}

}  // namespace subsum::core
