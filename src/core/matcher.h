// The matching algorithm (paper §3.3, Algorithm 1) plus a per-subscription
// naive matcher used as the exactness oracle in tests and as the comparison
// point for the §5.2.4 computational-cost benches.
#pragma once

#include <cstdint>
#include <vector>

#include "core/summary.h"
#include "model/event.h"
#include "model/subscription.h"

namespace subsum::core {

/// Diagnostics from one match() call (step-1 work, for the cost analysis).
struct MatchDiag {
  size_t ids_collected = 0;   // Σ lengths of collected id lists (P in §5.2.4)
  size_t unique_ids = 0;      // distinct subscription ids seen in step 1
  size_t attrs_satisfied = 0;  // event attributes with at least one hit
};

/// Algorithm 1. Step 1 scans the summary structures per event attribute and
/// counts, per subscription id, in how many per-attribute id lists it
/// appears; step 2 keeps the ids whose counter equals popcount(c3).
/// Returned ids are sorted.
std::vector<model::SubId> match(const BrokerSummary& summary, const model::Event& event,
                                MatchDiag* diag = nullptr);

/// Oracle/baseline: stores whole subscriptions and scans them per event.
class NaiveMatcher {
 public:
  void add(model::OwnedSubscription sub) { subs_.push_back(std::move(sub)); }
  void remove(model::SubId id);

  /// Exact matches, sorted by id.
  [[nodiscard]] std::vector<model::SubId> match(const model::Event& event) const;

  [[nodiscard]] const std::vector<model::OwnedSubscription>& subs() const noexcept {
    return subs_;
  }
  [[nodiscard]] size_t size() const noexcept { return subs_.size(); }

 private:
  std::vector<model::OwnedSubscription> subs_;
};

}  // namespace subsum::core
