// The matching algorithm (paper §3.3, Algorithm 1) plus a per-subscription
// naive matcher used as the exactness oracle in tests and as the comparison
// point for the §5.2.4 computational-cost benches.
//
// Two implementations of Algorithm 1 live here:
//
//  * match_into() — the engine: a two-pass dense-counter fast path when
//    every collected id belongs to one broker and the local-id range fits
//    the gate (O(P + memset(range)), the big-N hot case), a compacting
//    linear min-scan for k <= kScanMaxLists lists, and a binary-heap k-way
//    merge (O(P log k)) otherwise. All working memory lives in a
//    caller-owned MatchScratch, so steady-state matching performs zero
//    heap allocations.
//  * match_reference() — the original straightforward implementation,
//    kept verbatim as the differential-testing oracle and as the "seed"
//    comparison point in bench/bench_matching and tools/bench_json.
//
// match() keeps the historic signature as a thin wrapper over match_into()
// with a per-thread scratch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/summary.h"
#include "model/event.h"
#include "model/subscription.h"

namespace subsum::core {

/// Diagnostics from one match() call (step-1 work, for the cost analysis).
struct MatchDiag {
  size_t ids_collected = 0;   // Σ lengths of collected id lists (P in §5.2.4)
  size_t unique_ids = 0;      // distinct subscription ids seen in step 1
  size_t attrs_satisfied = 0;  // event attributes with at least one hit
};

/// Reusable working memory for match_into(). One scratch serves any number
/// of sequential match_into() calls (buffers grow to the workload's
/// high-water mark and are then reused, so steady state allocates
/// nothing); results live in `out` and are overwritten by the next call.
/// A scratch must not be shared between concurrent calls — use one per
/// thread (see BatchMatcher).
struct MatchScratch {
  /// Matched ids of the most recent match_into() call (sorted).
  std::vector<model::SubId> out;

  // -- internals, exposed so the struct stays an aggregate --
  struct Cursor {
    const model::SubId* cur;
    const model::SubId* end;
  };
  std::vector<std::vector<model::SubId>> owned;  // reused Sacs::find_into buffers
  std::vector<Cursor> lists;                     // step-1 id list cursors
  std::vector<uint32_t> heap;                    // k-way merge heap (list indices)
  std::vector<uint8_t> dense_count;              // fast path: per-local-id counters
};

/// Dense fast-path gate: all collected ids must share one broker and span a
/// local-id range of at most kDenseSlack × P + kDenseMinWidth slots (the
/// only O(range) work is a memset, so the slack can be generous) and at
/// most kDenseMaxWidth slots (bounds scratch memory at 1 byte per slot).
/// Outside the gate, k <= kScanMaxLists uses a compacting linear min-scan
/// (heap bookkeeping loses at tiny k) and larger k the heap merge.
inline constexpr size_t kDenseSlack = 64;
inline constexpr size_t kDenseMinWidth = 4096;
inline constexpr size_t kDenseMaxWidth = size_t{1} << 24;
inline constexpr size_t kScanMaxLists = 4;

/// Algorithm 1. Step 1 scans the summary structures per event attribute and
/// counts, per subscription id, in how many per-attribute id lists it
/// appears; step 2 keeps the ids whose counter equals popcount(c3).
/// The result is sorted, lives in `scratch.out`, and is valid until the
/// next call using the same scratch.
std::span<const model::SubId> match_into(const BrokerSummary& summary,
                                         const model::Event& event, MatchScratch& scratch,
                                         MatchDiag* diag = nullptr);

/// Historic signature: match_into() over a per-thread scratch, copied out.
std::vector<model::SubId> match(const BrokerSummary& summary, const model::Event& event,
                                MatchDiag* diag = nullptr);

/// The pre-optimization implementation (repeated linear min-scan over the
/// k lists, fresh allocations per call). Oracle for differential tests and
/// the "seed" baseline for the perf trajectory in BENCH_matching.json.
std::vector<model::SubId> match_reference(const BrokerSummary& summary,
                                          const model::Event& event,
                                          MatchDiag* diag = nullptr);

/// Oracle/baseline: stores whole subscriptions and scans them per event.
class NaiveMatcher {
 public:
  void add(model::OwnedSubscription sub) { subs_.push_back(std::move(sub)); }
  void remove(model::SubId id);

  /// Exact matches, sorted by id.
  [[nodiscard]] std::vector<model::SubId> match(const model::Event& event) const;

  [[nodiscard]] const std::vector<model::OwnedSubscription>& subs() const noexcept {
    return subs_;
  }
  [[nodiscard]] size_t size() const noexcept { return subs_.size(); }

 private:
  std::vector<model::OwnedSubscription> subs_;
};

}  // namespace subsum::core
