// The matching algorithm (paper §3.3, Algorithm 1) plus a per-subscription
// naive matcher used as the exactness oracle in tests and as the comparison
// point for the §5.2.4 computational-cost benches.
//
// Two implementations of Algorithm 1 live here:
//
//  * match_into() — the engine. Summaries large enough to carry a frozen
//    index (core/frozen_index.h) dispatch to its sharded SoA + SIMD
//    counter sweep; below the index threshold (and while an index rebuild
//    is pending) the classic engine runs: a two-pass dense-counter fast
//    path when every collected id belongs to one broker and the local-id
//    range fits the gate (epoch-tagged counters, so the per-event reset
//    is O(1), not a memset of the range), a compacting linear min-scan
//    for k <= kScanMaxLists lists, and a binary-heap k-way merge
//    (O(P log k)) otherwise. All working memory lives in a caller-owned
//    MatchScratch, so steady-state matching performs zero heap
//    allocations.
//  * match_reference() — the original straightforward implementation,
//    kept verbatim as the differential-testing oracle and as the "seed"
//    comparison point in bench/bench_matching and tools/bench_json.
//
// match() keeps the historic signature as a thin wrapper over match_into()
// with a per-thread scratch.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/summary.h"
#include "model/event.h"
#include "model/subscription.h"

namespace subsum::core {

/// Diagnostics from one match() call (step-1 work, for the cost analysis).
struct MatchDiag {
  size_t ids_collected = 0;   // Σ lengths of collected id lists (P in §5.2.4)
  size_t unique_ids = 0;      // distinct subscription ids seen in step 1
  size_t attrs_satisfied = 0;  // event attributes with at least one hit
};

/// Reusable working memory for match_into(). One scratch serves any number
/// of sequential match_into() calls (buffers grow to the workload's
/// high-water mark and are then reused, so steady state allocates
/// nothing); results live in `out` and are overwritten by the next call.
/// A scratch must not be shared between concurrent calls — use one per
/// thread (see BatchMatcher).
struct MatchScratch {
  /// Matched ids of the most recent match_into() call (sorted).
  std::vector<model::SubId> out;

  /// Set false to bypass the frozen index's row-combination result cache
  /// (bench "cold" mode; correctness is identical either way).
  bool use_combo_cache = true;

  // -- internals, exposed so the struct stays an aggregate --
  struct Cursor {
    const model::SubId* cur;
    const model::SubId* end;
  };
  std::vector<std::vector<model::SubId>> owned;  // reused Sacs::find_into buffers
  std::vector<Cursor> lists;                     // step-1 id list cursors
  std::vector<uint32_t> heap;                    // k-way merge heap (list indices)

  /// Epoch-tagged counter cells `(epoch << 8) | count`, shared by the
  /// legacy dense fast path and the frozen index's tiled counter window.
  /// A cell whose epoch field differs from `dense_epoch` is logically
  /// zero, so per-event resets cost one epoch bump instead of a memset of
  /// the whole local-id range; the array is only zero-filled on growth
  /// (vector zero-init) and when the 24-bit epoch wraps.
  std::vector<uint32_t> dense_cells;
  uint32_t dense_epoch = 0;

  // -- frozen-index internals (see core/frozen_index.h) --
  struct FrozenList {
    uint32_t off;      // into the index arena, or into `merged`
    uint32_t len;
    bool in_merged;    // multi-row SACS hit, deduplicated into `merged`
  };
  std::vector<FrozenList> flists;     // step-1 entry lists (one per satisfied attr)
  std::vector<uint32_t> merged;       // dedup buffer for multi-row SACS hits
  std::vector<uint32_t> out_slots;    // emitted slots, sorted then translated to ids
  std::vector<uint32_t> sig;          // row-combination signature (frozen row ids)

  /// Row-combination result cache: two events satisfying exactly the same
  /// summary rows have identical match sets, so repeated combinations are
  /// answered by one lookup (keyed by the owning index's build id plus
  /// the exact signature — a hash collision degrades to a miss).
  struct ComboEntry {
    uint64_t build_id = 0;
    std::vector<uint32_t> sig;
    std::vector<model::SubId> out;
    MatchDiag diag;
  };
  std::unordered_map<uint64_t, ComboEntry> combo_cache;
};

/// Bound on combo_cache entries per scratch; the cache is cleared when it
/// fills (simple, and a steady workload re-warms within one pass).
inline constexpr size_t kComboCacheMaxEntries = 1024;

/// Dense fast-path gate: all collected ids must share one broker and span a
/// local-id range of at most kDenseSlack × P + kDenseMinWidth slots (the
/// only O(range) work is a memset, so the slack can be generous) and at
/// most kDenseMaxWidth slots (bounds scratch memory at 1 byte per slot).
/// Outside the gate, k <= kScanMaxLists uses a compacting linear min-scan
/// (heap bookkeeping loses at tiny k) and larger k the heap merge.
inline constexpr size_t kDenseSlack = 64;
inline constexpr size_t kDenseMinWidth = 4096;
inline constexpr size_t kDenseMaxWidth = size_t{1} << 24;
inline constexpr size_t kScanMaxLists = 4;

/// Algorithm 1. Step 1 scans the summary structures per event attribute and
/// counts, per subscription id, in how many per-attribute id lists it
/// appears; step 2 keeps the ids whose counter equals popcount(c3).
/// The result is sorted, lives in `scratch.out`, and is valid until the
/// next call using the same scratch.
std::span<const model::SubId> match_into(const BrokerSummary& summary,
                                         const model::Event& event, MatchScratch& scratch,
                                         MatchDiag* diag = nullptr);

/// match_into() restricted to the classic (unindexed) engine: the dense /
/// scan / heap step-2 over the live AACS/SACS structures, never the frozen
/// index. This is what match_into() dispatches to below the index
/// threshold; exposed for differential tests and trajectory benches.
std::span<const model::SubId> match_into_unindexed(const BrokerSummary& summary,
                                                   const model::Event& event,
                                                   MatchScratch& scratch,
                                                   MatchDiag* diag = nullptr);

/// Historic signature: match_into() over a per-thread scratch, copied out.
std::vector<model::SubId> match(const BrokerSummary& summary, const model::Event& event,
                                MatchDiag* diag = nullptr);

/// The pre-optimization implementation (repeated linear min-scan over the
/// k lists, fresh allocations per call). Oracle for differential tests and
/// the "seed" baseline for the perf trajectory in BENCH_matching.json.
std::vector<model::SubId> match_reference(const BrokerSummary& summary,
                                          const model::Event& event,
                                          MatchDiag* diag = nullptr);

/// Oracle/baseline: stores whole subscriptions and scans them per event.
class NaiveMatcher {
 public:
  void add(model::OwnedSubscription sub) { subs_.push_back(std::move(sub)); }
  void remove(model::SubId id);

  /// Exact matches, sorted by id.
  [[nodiscard]] std::vector<model::SubId> match(const model::Event& event) const;

  [[nodiscard]] const std::vector<model::OwnedSubscription>& subs() const noexcept {
    return subs_;
  }
  [[nodiscard]] size_t size() const noexcept { return subs_.size(); }

 private:
  std::vector<model::OwnedSubscription> subs_;
};

}  // namespace subsum::core
