#include "core/quality.h"

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/frozen_index.h"

namespace subsum::core {

namespace {

// FNV-1a, 64-bit: simple, stable across platforms, and good enough to make
// the 1-in-2^shift sample behave like an unbiased draw on real workloads.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t fnv_bytes(uint64_t h, const void* data, size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

uint64_t fnv_u64(uint64_t h, uint64_t v) noexcept { return fnv_bytes(h, &v, sizeof v); }

}  // namespace

uint64_t event_hash(const model::Event& event) noexcept {
  // Event attrs are stored sorted by AttrId with at most one value each, so
  // hashing in storage order is hashing in canonical order.
  uint64_t h = kFnvOffset;
  for (const auto& a : event.attrs()) {
    h = fnv_u64(h, a.attr);
    h = fnv_u64(h, static_cast<uint64_t>(a.value.type()));
    switch (a.value.type()) {
      case model::AttrType::kInt:
        h = fnv_u64(h, static_cast<uint64_t>(a.value.as_int()));
        break;
      case model::AttrType::kFloat: {
        const double d = a.value.as_float();
        h = fnv_bytes(h, &d, sizeof d);
        break;
      }
      case model::AttrType::kString: {
        const std::string& s = a.value.as_string();
        h = fnv_u64(h, s.size());
        h = fnv_bytes(h, s.data(), s.size());
        break;
      }
    }
  }
  return h;
}

QualityProbe::QualityProbe(obs::MetricsRegistry& reg, SampleConfig cfg)
    : cfg_(cfg),
      sampled_(reg.counter("subsum_quality_sampled_events_total")),
      candidates_(reg.counter("subsum_quality_candidate_ids_total")),
      exact_(reg.counter("subsum_quality_exact_ids_total")),
      false_pos_(reg.counter("subsum_summary_false_positive_ids_total")),
      divergence_(reg.counter("subsum_quality_engine_divergence_total")),
      precision_g_(reg.fgauge("subsum_summary_precision")) {
  precision_g_->set(1.0);
}

void QualityProbe::record(size_t candidate_ids, size_t exact_ids,
                          bool engine_diverged) const noexcept {
  if (exact_ids > candidate_ids) {  // impossible by construction; never hide it
    engine_diverged = true;
    exact_ids = candidate_ids;
  }
  sampled_->inc();
  candidates_->inc(candidate_ids);
  exact_->inc(exact_ids);
  false_pos_->inc(candidate_ids - exact_ids);
  if (engine_diverged) divergence_->inc();
  precision_g_->set(precision());
}

double QualityProbe::precision() const noexcept {
  const uint64_t cand = candidates_->value();
  if (cand == 0) return 1.0;
  return static_cast<double>(exact_->value()) / static_cast<double>(cand);
}

namespace {

// `base{k1="v1"[,k2="v2"]}` with values escaped; empty values drop the pair.
std::string labeled2(std::string_view base, std::string_view k1, std::string_view v1,
                     std::string_view k2, std::string_view v2) {
  std::string out(base);
  out += '{';
  bool first = true;
  for (const auto& [k, v] : {std::pair{k1, v1}, std::pair{k2, v2}}) {
    if (v.empty()) continue;
    if (!first) out += ',';
    first = false;
    out.append(k).append("=\"").append(obs::escape_label_value(v)).append("\"");
  }
  if (first) return std::string(base);  // no labels at all
  out += '}';
  return out;
}

}  // namespace

void export_row_occupancy(obs::MetricsRegistry& reg, const BrokerSummary& summary,
                          std::string_view broker) {
  const model::Schema& schema = summary.schema();
  for (model::AttrId id = 0; id < schema.attr_count(); ++id) {
    obs::Histogram* h = reg.histogram(labeled2("subsum_summary_row_ids", "attr",
                                               schema.spec(id).name, "broker", broker));
    h->reset();
    if (model::is_arithmetic(schema.type_of(id))) {
      for (const auto& piece : summary.aacs(id).pieces()) h->observe(piece.ids.size());
    } else {
      for (const auto& row : summary.sacs(id).rows()) h->observe(row.ids.size());
    }
  }
}

void export_shard_metrics(obs::MetricsRegistry& reg, const BrokerSummary& summary,
                          std::string_view broker) {
  const auto shards_gauge = [&] {
    return reg.gauge(broker.empty() ? std::string("subsum_match_shards")
                                    : obs::labeled("subsum_match_shards", "broker", broker));
  };
  const auto idx = summary.frozen_if_built();
  if (!idx) {
    shards_gauge()->set(0);
    return;
  }
  shards_gauge()->set(static_cast<int64_t>(idx->shard_count()));
  std::vector<obs::Histogram*> row_hists(idx->shard_count());
  for (uint32_t s = 0; s < idx->shard_count(); ++s) {
    const std::string shard = std::to_string(s);
    // Visit deltas fold into a monotone counter, so the series survives
    // index rebuilds (each index starts its own visit counters at 0).
    if (const uint64_t visits = idx->drain_shard_visits(s); visits > 0) {
      reg.counter(labeled2("subsum_match_shard_visits_total", "shard", shard, "broker", broker))
          ->inc(visits);
    }
    reg.gauge(labeled2("subsum_match_shard_entries", "shard", shard, "broker", broker))
        ->set(static_cast<int64_t>(idx->shard_entries(s)));
    row_hists[s] =
        reg.histogram(labeled2("subsum_summary_shard_row_ids", "shard", shard, "broker", broker));
    row_hists[s]->reset();
  }
  idx->for_each_shard_row(
      [&](uint32_t shard, uint64_t ids_in_row) { row_hists[shard]->observe(ids_in_row); });
}

double export_model_drift(obs::MetricsRegistry& reg, const BrokerSummary& summary,
                          const WireConfig& wire, const PaperSizeParams& params,
                          std::string_view broker) {
  const auto name = [broker](std::string_view base) {
    return broker.empty() ? std::string(base) : obs::labeled(base, "broker", broker);
  };
  const size_t actual = wire_size(summary, wire);
  const size_t predicted = paper_size(summary.stats(), params, /*measured_ssv=*/true).total();
  const double ratio =
      predicted == 0 ? 0.0 : static_cast<double>(actual) / static_cast<double>(predicted);
  reg.gauge(name("subsum_summary_wire_bytes"))->set(static_cast<int64_t>(actual));
  reg.gauge(name("subsum_summary_model_bytes"))->set(static_cast<int64_t>(predicted));
  reg.fgauge(name("subsum_summary_model_drift_ratio"))->set(ratio);
  return ratio;
}

}  // namespace subsum::core
