// String constraint patterns and the covering (subsumption) relation used
// by the String Attribute Constraint Summary (SACS, paper §3.1, fig 5).
//
// `covers(a, b)` is true only when we can PROVE that every string satisfying
// b also satisfies a; it is deliberately incomplete (returns false when a
// proof is not cheap), which is always safe for SACS: an uncovered
// constraint simply gets its own row.
#pragma once

#include <string>

#include "model/constraint.h"

namespace subsum::core {

/// A string attribute pattern: one of = ≠ >*(prefix) *<(suffix) *(contains).
struct StringPattern {
  model::Op op = model::Op::kEq;
  std::string operand;

  [[nodiscard]] bool matches(const std::string& value) const;

  [[nodiscard]] std::string to_string() const;

  bool operator==(const StringPattern&) const = default;
  auto operator<=>(const StringPattern&) const = default;
};

/// Provable subsumption: sat(b) ⊆ sat(a).
bool covers(const StringPattern& a, const StringPattern& b);

/// How aggressively SACS substitutes covered rows by a more general one.
enum class GeneralizePolicy : uint8_t {
  kNone = 0,        // never generalize: one row per distinct pattern
  kSafe = 1,        // generalize, but never under a ≠ pattern (default);
                    // ≠ covers nearly everything and would destroy precision
  kAggressive = 2,  // full covering relation, including ≠ as a coverer
};

/// covers(a, b) restricted by the policy (a is the prospective coverer).
bool covers(const StringPattern& a, const StringPattern& b, GeneralizePolicy policy);

}  // namespace subsum::core
