// Runtime-dispatched SIMD kernels for the frozen matching core.
//
// The frozen index (core/frozen_index.h) stores id lists as packed u32
// entries `(slot << 6) | (req - 1)` — slot is the subscription's global
// rank, req its popcount(c3). The three hot inner loops over those entries
// are implemented here in scalar, SSE2 and AVX2 variants behind one
// runtime dispatch:
//
//  * emit_req1     — the single-list fast path: emit the slot of every
//                    entry whose required count is 1.
//  * emit_matches  — pass 2 of the tiled counter sweep: gather each
//                    entry's counter cell, emit the slot when the count
//                    equals the entry's own requirement, and clear the
//                    count so duplicates across lists are suppressed.
//  * min_u32       — the block-skip min over the cursors' next slots.
//
// Dispatch policy: the scalar kernels are the semantics; the vector
// variants must be bit-identical (the differential suite in
// tests/test_frozen_index.cpp pins them against each other). Detection
// picks the widest ISA the CPU reports, an unknown architecture falls
// back to scalar, `SUBSUM_SIMD=scalar|sse2|avx2` in the environment
// clamps downward, and building with -DSUBSUM_FORCE_SCALAR=ON compiles
// the vector variants out entirely (the CI leg that proves the fallback
// keeps working).
#pragma once

#include <cstddef>
#include <cstdint>

namespace subsum::core::simd {

enum class Level : uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// The dispatch level in effect: min(detected ISA, SUBSUM_SIMD env
/// override), computed once. Always kScalar under SUBSUM_FORCE_SCALAR.
[[nodiscard]] Level active_level() noexcept;

/// The widest level this binary can run on this CPU.
[[nodiscard]] Level detected_level() noexcept;

/// Pins the dispatch level (clamped to detected_level()) — the
/// differential tests use this to run every kernel variant on one host.
void set_level_for_test(Level level) noexcept;

[[nodiscard]] const char* level_name(Level level) noexcept;

/// Appends `e >> 6` to `out` for every entry with `(e & 63) == 0`
/// (required count 1). `out` must have room for `n` values.
/// Returns the number of slots written.
size_t emit_req1(const uint32_t* entries, size_t n, uint32_t* out);

/// Pass-2 emission over one list segment of a counter block. For each
/// entry e: cell = cells[(e >> 6) & mask]; if cell == tag + (e & 63) + 1
/// (this epoch's count equals the entry's requirement) the slot `e >> 6`
/// is appended to `out` and the cell is reset to `tag` (count 0, same
/// epoch) so the same subscription in a later list cannot re-emit.
/// `out` must have room for `n` values. Returns the slots written.
size_t emit_matches(const uint32_t* entries, size_t n, uint32_t* cells, uint32_t mask,
                    uint32_t tag, uint32_t* out);

/// Minimum of `v[0..n)`; n >= 1.
[[nodiscard]] uint32_t min_u32(const uint32_t* v, size_t n);

}  // namespace subsum::core::simd
