#include "core/frozen_index.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "core/simd.h"

namespace subsum::core {

using model::AttrId;
using model::SubId;

namespace {

std::atomic<uint64_t> g_build_id{0};

// IndexOptions is process-global and read on the match path, so each
// field is a relaxed atomic rather than a locked struct.
std::atomic<size_t> g_min_id_entries{IndexOptions{}.min_id_entries};
std::atomic<uint32_t> g_shard_count{IndexOptions{}.shard_count};

// FNV-1a over the row signature, salted with the build id so entries of a
// replaced index can never be mistaken for the new one's.
uint64_t sig_hash(uint64_t build_id, const std::vector<uint32_t>& sig) noexcept {
  uint64_t h = 0xcbf29ce484222325ull ^ build_id;
  for (const uint32_t v : sig) {
    h = (h ^ v) * 0x100000001b3ull;
    h ^= h >> 29;
  }
  return h;
}

/// Branchless lower bound: index of the first element >= key. The select
/// compiles to a conditional move, so the search runs at memory latency
/// without branch mispredictions (measured faster than an Eytzinger
/// layout here because the row arrays are small enough that the log2(n)
/// cache lines stay resident across events; see DESIGN.md §10).
size_t lower_bound_pos(const Pos* a, size_t n, const Pos& key) noexcept {
  if (n == 0) return 0;
  const Pos* base = a;
  while (n > 1) {
    const size_t half = n >> 1;
    base = (base[half - 1] < key) ? base + half : base;
    n -= half;
  }
  return static_cast<size_t>(base - a) + (*base < key ? 1 : 0);
}

}  // namespace

IndexOptions index_options() noexcept {
  IndexOptions opts;
  opts.min_id_entries = g_min_id_entries.load(std::memory_order_relaxed);
  opts.shard_count = g_shard_count.load(std::memory_order_relaxed);
  return opts;
}

void set_index_options(const IndexOptions& opts) noexcept {
  g_min_id_entries.store(opts.min_id_entries, std::memory_order_relaxed);
  g_shard_count.store(opts.shard_count, std::memory_order_relaxed);
}

std::shared_ptr<const FrozenIndex> FrozenIndex::build(const BrokerSummary& summary) {
  std::shared_ptr<FrozenIndex> idx(new FrozenIndex());
  idx->build_id_ = g_build_id.fetch_add(1, std::memory_order_relaxed) + 1;
  idx->summary_version_ = summary.version();
  const model::Schema& schema = summary.schema();
  idx->schema_ = &schema;
  const size_t nattrs = schema.attr_count();
  idx->arith_.resize(nattrs);
  idx->strings_.resize(nattrs);

  // Pass 1: the distinct ids across every row become the slot space.
  size_t total_entries = 0;
  std::vector<SubId> ids;
  for (AttrId a = 0; a < nattrs; ++a) {
    if (model::is_arithmetic(schema.type_of(a))) {
      for (const auto& piece : summary.aacs(a).pieces()) {
        total_entries += piece.ids.size();
        ids.insert(ids.end(), piece.ids.begin(), piece.ids.end());
      }
    } else {
      const Sacs& sacs = summary.sacs(a);
      for (const auto& row : sacs.eq_rows()) {
        total_entries += row.ids.size();
        ids.insert(ids.end(), row.ids.begin(), row.ids.end());
      }
      for (const auto& row : sacs.pat_rows()) {
        total_entries += row.ids.size();
        ids.insert(ids.end(), row.ids.begin(), row.ids.end());
      }
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.size() > kMaxSlots || total_entries > UINT32_MAX - 1) {
    idx->usable_ = false;  // cached so the summary does not re-freeze per match
    return idx;
  }
  idx->slot_ids_ = std::move(ids);

  // Pass 2: freeze the rows. Ids within a row are sorted, and slot order
  // equals SubId order, so every encoded row is ascending in slot.
  std::unordered_map<SubId, uint32_t> slot_of;
  slot_of.reserve(idx->slot_ids_.size());
  for (uint32_t s = 0; s < idx->slot_ids_.size(); ++s) slot_of.emplace(idx->slot_ids_[s], s);

  idx->arena_.reserve(total_entries);
  const auto encode_row = [&](const std::vector<SubId>& row_ids) {
    RowRef ref{static_cast<uint32_t>(idx->arena_.size()),
               static_cast<uint32_t>(row_ids.size())};
    for (const SubId& id : row_ids) {
      const uint32_t slot = slot_of.find(id)->second;
      const uint32_t req = static_cast<uint32_t>(id.attr_count());  // in [1, 64]
      idx->arena_.push_back((slot << 6) | (req - 1));
    }
    idx->rows_.push_back(ref);
    return ref;
  };

  for (AttrId a = 0; a < nattrs; ++a) {
    if (model::is_arithmetic(schema.type_of(a))) {
      ArithAttr& fa = idx->arith_[a];
      const auto& pieces = summary.aacs(a).pieces();
      fa.row_id_base = static_cast<uint32_t>(idx->rows_.size());
      fa.hi.reserve(pieces.size());
      fa.lo.reserve(pieces.size());
      fa.rows.reserve(pieces.size());
      for (const auto& piece : pieces) {  // sorted by lo, disjoint => hi ascending
        fa.lo.push_back(piece.iv.lo);
        fa.hi.push_back(piece.iv.hi);
        fa.rows.push_back(encode_row(piece.ids));
      }
    } else {
      StringAttr& fs = idx->strings_[a];
      const Sacs& sacs = summary.sacs(a);
      fs.eq.reserve(sacs.eq_rows().size());
      for (const auto& row : sacs.eq_rows()) {
        const uint32_t row_id = static_cast<uint32_t>(idx->rows_.size());
        fs.eq.emplace(row.pattern.operand, StringRow{encode_row(row.ids), row_id});
      }
      fs.pats.reserve(sacs.pat_rows().size());
      for (const auto& row : sacs.pat_rows()) {  // scan order must match find_into
        const uint32_t row_id = static_cast<uint32_t>(idx->rows_.size());
        fs.pats.emplace_back(row.pattern, StringRow{encode_row(row.ids), row_id});
      }
    }
  }

  // Pass 3: shard the slot space. Auto sizing fixes the counter window at
  // 2^kDefaultShardShift cells (64 KiB — L1/L2-resident regardless of N);
  // an explicit shard_count asks for at most that many tiles.
  const size_t slots = idx->slot_ids_.size();
  const IndexOptions opts = index_options();
  uint32_t shift = kDefaultShardShift;
  if (opts.shard_count > 0) {
    shift = kMinShardShift;
    while (shift < 26 && ((slots + (size_t{1} << shift) - 1) >> shift) > opts.shard_count) {
      ++shift;
    }
  }
  idx->shard_shift_ = shift;
  idx->shard_count_ = slots == 0 ? 1 : static_cast<uint32_t>(((slots - 1) >> shift) + 1);
  idx->visits_ = std::make_unique<std::atomic<uint64_t>[]>(idx->shard_count_);
  for (uint32_t s = 0; s < idx->shard_count_; ++s) idx->visits_[s].store(0);
  idx->shard_entries_.assign(idx->shard_count_, 0);
  for (const uint32_t e : idx->arena_) ++idx->shard_entries_[(e >> 6) >> shift];
  return idx;
}

size_t FrozenIndex::collect(const model::Event& event, MatchScratch& s) const {
  s.flists.clear();
  s.merged.clear();
  s.sig.clear();
  size_t collected = 0;
  for (const auto& ea : event.attrs()) {
    if (model::is_arithmetic(schema_->type_of(ea.attr))) {
      const ArithAttr& fa = arith_[ea.attr];
      const size_t n = fa.hi.size();
      if (n == 0) continue;
      const Pos p = Pos::at(ea.value.as_number());
      const size_t i = lower_bound_pos(fa.hi.data(), n, p);  // == Aacs::find
      if (i >= n || !(fa.lo[i] <= p)) continue;
      s.sig.push_back(fa.row_id_base + static_cast<uint32_t>(i));
      s.flists.push_back({fa.rows[i].off, fa.rows[i].len, false});
      collected += fa.rows[i].len;
    } else {
      const StringAttr& fs = strings_[ea.attr];
      const std::string& v = ea.value.as_string();
      // Hit rows, as (off, len) pairs; s.heap is idle during collection.
      auto& hits = s.heap;
      hits.clear();
      if (auto it = fs.eq.find(v); it != fs.eq.end()) {
        s.sig.push_back(it->second.row_id);
        hits.push_back(it->second.ref.off);
        hits.push_back(it->second.ref.len);
      }
      for (const auto& [pattern, row] : fs.pats) {
        if (pattern.matches(v)) {
          s.sig.push_back(row.row_id);
          hits.push_back(row.ref.off);
          hits.push_back(row.ref.len);
        }
      }
      if (hits.empty()) continue;
      if (hits.size() == 2) {
        s.flists.push_back({hits[0], hits[1], false});
        collected += hits[1];
      } else {
        // Several rows of one attribute: union them, deduplicated, like
        // Sacs::find_into — identical ids encode to identical entries.
        const size_t m0 = s.merged.size();
        for (size_t h = 0; h < hits.size(); h += 2) {
          s.merged.insert(s.merged.end(), arena_.begin() + hits[h],
                          arena_.begin() + hits[h] + hits[h + 1]);
        }
        const auto begin = s.merged.begin() + static_cast<ptrdiff_t>(m0);
        std::sort(begin, s.merged.end());
        s.merged.erase(std::unique(begin, s.merged.end()), s.merged.end());
        const uint32_t len = static_cast<uint32_t>(s.merged.size() - m0);
        s.flists.push_back({static_cast<uint32_t>(m0), len, true});
        collected += len;
      }
    }
  }
  return collected;
}

size_t FrozenIndex::count_tiled(MatchScratch& s) const {
  const uint32_t shift = shard_shift_;
  const uint32_t mask = (uint32_t{1} << shift) - 1;
  const size_t window = size_t{1} << shift;
  if (s.dense_cells.size() < window) s.dense_cells.resize(window);
  uint32_t* cells = s.dense_cells.data();

  struct Cur {
    const uint32_t* cur;
    const uint32_t* end;
    const uint32_t* seg;
  };
  Cur curs[64];  // k <= 64 schema attributes
  size_t live = s.flists.size();
  for (size_t i = 0; i < live; ++i) {
    const uint32_t* base =
        s.flists[i].in_merged ? s.merged.data() + s.flists[i].off : arena_.data() + s.flists[i].off;
    curs[i] = {base, base + s.flists[i].len, base};
  }

  size_t unique = 0;
  size_t out_n = 0;
  uint32_t nexts[64];
  while (live) {
    // Block skip: jump to the lowest shard any cursor still has entries in.
    for (size_t i = 0; i < live; ++i) nexts[i] = *curs[i].cur >> 6;
    const uint32_t block = simd::min_u32(nexts, live) >> shift;
    visits_[block].fetch_add(1, std::memory_order_relaxed);

    // Fresh epoch per block: stale cells read as zero, so there is no
    // window reset. The 24-bit epoch wrap (every ~16M blocks) is the one
    // place the window is actually zero-filled.
    if (++s.dense_epoch >= (uint32_t{1} << 24)) {
      std::fill(s.dense_cells.begin(), s.dense_cells.end(), uint32_t{0});
      s.dense_epoch = 1;
    }
    const uint32_t tag = s.dense_epoch << 8;
    const uint64_t limit = (uint64_t{block} + 1) << (shift + 6);  // first entry past block

    // Pass 1: count this block's occurrences per slot (counts <= k <= 64
    // fit the cell's low byte).
    for (size_t i = 0; i < live; ++i) {
      Cur& c = curs[i];
      c.seg = c.cur;
      while (c.cur != c.end && *c.cur < limit) {
        const uint32_t idx = (*c.cur >> 6) & mask;
        const uint32_t cell = cells[idx];
        if ((cell & ~uint32_t{0xFF}) != tag) {
          cells[idx] = tag | 1;
          ++unique;
        } else {
          cells[idx] = cell + 1;
        }
        ++c.cur;
      }
    }
    // Pass 2: emit slots whose count equals their packed requirement
    // (SIMD gather+compare per segment; emission suppresses duplicates).
    for (size_t i = 0; i < live; ++i) {
      const size_t n = static_cast<size_t>(curs[i].cur - curs[i].seg);
      if (n == 0) continue;
      if (s.out_slots.size() < out_n + n) s.out_slots.resize(out_n + n);
      out_n += simd::emit_matches(curs[i].seg, n, cells, mask, tag, s.out_slots.data() + out_n);
    }
    for (size_t i = 0; i < live;) {
      if (curs[i].cur == curs[i].end) {
        curs[i] = curs[--live];
      } else {
        ++i;
      }
    }
  }
  s.out_slots.resize(out_n);
  return unique;
}

size_t FrozenIndex::memory_bytes() const noexcept {
  size_t total = sizeof(FrozenIndex);
  total += slot_ids_.capacity() * sizeof(model::SubId);
  total += arena_.capacity() * sizeof(uint32_t);
  total += rows_.capacity() * sizeof(RowRef);
  total += shard_entries_.capacity() * sizeof(uint64_t);
  if (visits_) total += size_t{shard_count_} * sizeof(std::atomic<uint64_t>);
  for (const auto& a : arith_) {
    total += a.hi.capacity() * sizeof(Pos) + a.lo.capacity() * sizeof(Pos) +
             a.rows.capacity() * sizeof(RowRef);
  }
  for (const auto& sa : strings_) {
    // Hash-map overhead is approximated as one bucket pointer plus the
    // node per element; operand strings count their heap storage.
    for (const auto& [operand, row] : sa.eq) {
      total += sizeof(void*) * 2 + sizeof(StringRow) + operand.capacity();
    }
    total += sa.pats.capacity() * sizeof(sa.pats[0]);
  }
  return total;
}

void FrozenIndex::match_into(const model::Event& event, MatchScratch& s,
                             MatchDiag* diag) const {
  const size_t collected = collect(event, s);
  s.out.clear();
  MatchDiag d;
  d.attrs_satisfied = s.flists.size();
  d.ids_collected = collected;
  if (s.flists.empty()) {
    if (diag) *diag = d;
    return;
  }

  uint64_t key = 0;
  if (s.use_combo_cache) {
    key = sig_hash(build_id_, s.sig);
    if (const auto it = s.combo_cache.find(key);
        it != s.combo_cache.end() && it->second.build_id == build_id_ &&
        it->second.sig == s.sig) {
      s.out.assign(it->second.out.begin(), it->second.out.end());
      if (diag) *diag = it->second.diag;
      return;
    }
  }

  s.out_slots.clear();
  if (s.flists.size() == 1) {
    // One satisfied attribute: the matches are exactly the entries that
    // require one attribute.
    const MatchScratch::FrozenList& L = s.flists.front();
    const uint32_t* e = L.in_merged ? s.merged.data() + L.off : arena_.data() + L.off;
    s.out_slots.resize(L.len);
    s.out_slots.resize(simd::emit_req1(e, L.len, s.out_slots.data()));
    d.unique_ids = L.len;
    // Shard visits for the single sweep: one bump per shard the sorted
    // list touches, found by jumping to each shard boundary.
    const uint32_t* p = e;
    const uint32_t* end = e + L.len;
    while (p != end) {
      const uint32_t shard = (*p >> 6) >> shard_shift_;
      visits_[shard].fetch_add(1, std::memory_order_relaxed);
      const uint64_t limit = (uint64_t{shard} + 1) << (shard_shift_ + 6);
      if (limit > UINT32_MAX) break;
      p = std::lower_bound(p, end, static_cast<uint32_t>(limit));
    }
  } else {
    d.unique_ids = count_tiled(s);
    // Blocks are visited in ascending order but pass-2 emission within a
    // block follows list order; one sort restores global slot order.
    std::sort(s.out_slots.begin(), s.out_slots.end());
  }

  // Slot order equals SubId order, so the translated result is sorted.
  s.out.reserve(s.out_slots.size());
  for (const uint32_t slot : s.out_slots) s.out.push_back(slot_ids_[slot]);
  if (diag) *diag = d;

  if (s.use_combo_cache) {
    if (s.combo_cache.size() >= kComboCacheMaxEntries) s.combo_cache.clear();
    MatchScratch::ComboEntry& e = s.combo_cache[key];
    e.build_id = build_id_;
    e.sig = s.sig;
    e.out = s.out;
    e.diag = d;
  }
}

}  // namespace subsum::core
